// Shared helpers for the experiment harness (bench_e*). Every binary
// prints (a) the experiment id and the paper claim it regenerates, and
// (b) one or more markdown tables whose rows are recorded in
// EXPERIMENTS.md as paper-vs-measured.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sort_report.h"
#include "pdm/pdm_context.h"
#include "pdm/striped_run.h"
#include "util/cli.h"
#include "util/generators.h"
#include "util/table.h"
#include "util/timer.h"

namespace pdm::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << "\n" << claim << "\n"
            << "================================================================\n\n";
}

/// Standard geometry: B = sqrt(M), D = sqrt(M)/C.
struct Geom {
  u64 mem;
  u64 rpb;
  u32 disks;

  static Geom square(u64 mem, u64 c = 4) {
    const u64 s = isqrt(mem);
    PDM_CHECK(s * s == mem, "M must be a perfect square");
    return Geom{mem, s, static_cast<u32>(std::max<u64>(1, s / c))};
  }
};

template <Record R = u64>
std::unique_ptr<PdmContext> make_ctx(const Geom& g, u64 seed = 1) {
  return make_memory_context(g.disks, g.rpb * sizeof(R), seed);
}

/// Stages input and zeroes stats so only the sorter's I/O is measured.
template <Record R>
StripedRun<R> stage(PdmContext& ctx, const std::vector<R>& data) {
  auto run = write_input_run<R>(ctx, std::span<const R>(data));
  ctx.io().reset_stats();
  return run;
}

/// Fails loudly (benches must not silently report on wrong output).
template <Record R>
void check_sorted(const StripedRun<R>& out, u64 expect_n) {
  PDM_CHECK(out.size() == expect_n, "bench: output size mismatch");
  auto v = out.read_all();
  for (usize i = 1; i < v.size(); ++i) {
    PDM_CHECK(!(v[i] < v[i - 1]), "bench: output not sorted");
  }
}

inline void add_report_cells(Table& t, const SortReport& r) {
  t.cell(r.passes, 3)
      .cell(r.read_passes, 3)
      .cell(r.write_passes, 3)
      .cell(fmt_double(r.utilization, 2) + "/" + std::to_string(r.disks))
      .cell(r.fallback_taken);
}

inline std::vector<std::string> report_headers() {
  return {"passes", "read-passes", "write-passes", "util", "fallback"};
}

}  // namespace pdm::bench
