// Shared helpers for the experiment harness (bench_e*). Every binary
// prints (a) the experiment id and the paper claim it regenerates, and
// (b) one or more markdown tables whose rows are recorded in
// EXPERIMENTS.md as paper-vs-measured. Benches that track the perf
// trajectory additionally emit a machine-readable section into a shared
// JSON file (JsonWriter + json_file_update below).
#pragma once

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/sort_report.h"
#include "pdm/pdm_context.h"
#include "pdm/striped_run.h"
#include "util/cli.h"
#include "util/generators.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/trace.h"

namespace pdm::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << "\n" << claim << "\n"
            << "================================================================\n\n";
}

/// Standard geometry: B = sqrt(M), D = sqrt(M)/C.
struct Geom {
  u64 mem;
  u64 rpb;
  u32 disks;

  static Geom square(u64 mem, u64 c = 4) {
    const u64 s = isqrt(mem);
    PDM_CHECK(s * s == mem, "M must be a perfect square");
    return Geom{mem, s, static_cast<u32>(std::max<u64>(1, s / c))};
  }
};

template <Record R = u64>
std::unique_ptr<PdmContext> make_ctx(const Geom& g, u64 seed = 1) {
  return make_memory_context(g.disks, g.rpb * sizeof(R), seed);
}

/// Stages input and zeroes stats so only the sorter's I/O is measured.
template <Record R>
StripedRun<R> stage(PdmContext& ctx, const std::vector<R>& data) {
  auto run = write_input_run<R>(ctx, std::span<const R>(data));
  ctx.io().reset_stats();
  return run;
}

/// Fails loudly (benches must not silently report on wrong output).
template <Record R>
void check_sorted(const StripedRun<R>& out, u64 expect_n) {
  PDM_CHECK(out.size() == expect_n, "bench: output size mismatch");
  auto v = out.read_all();
  for (usize i = 1; i < v.size(); ++i) {
    PDM_CHECK(!(v[i] < v[i - 1]), "bench: output not sorted");
  }
}

inline void add_report_cells(Table& t, const SortReport& r) {
  t.cell(r.passes, 3)
      .cell(r.read_passes, 3)
      .cell(r.write_passes, 3)
      .cell(fmt_double(r.utilization, 2) + "/" + std::to_string(r.disks))
      .cell(r.fallback_taken);
}

inline std::vector<std::string> report_headers() {
  return {"passes", "read-passes", "write-passes", "util", "fallback"};
}

// --- machine-readable benchmark output ---------------------------------

/// Streaming JSON builder, just enough for bench payloads: objects,
/// arrays, string/number/bool scalars, automatic commas.
class JsonWriter {
 public:
  std::string str() const { return out_.str(); }

  JsonWriter& begin_obj() {
    sep();
    out_ << '{';
    nest_.push_back(false);
    return *this;
  }
  JsonWriter& end_obj() {
    nest_.pop_back();
    out_ << '}';
    done();
    return *this;
  }
  JsonWriter& begin_arr() {
    sep();
    out_ << '[';
    nest_.push_back(false);
    return *this;
  }
  JsonWriter& end_arr() {
    nest_.pop_back();
    out_ << ']';
    done();
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    sep();
    out_ << '"' << escaped(k) << "\": ";
    after_key_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    sep();
    out_ << '"' << escaped(v) << '"';
    done();
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    sep();
    out_ << buf;
    done();
    return *this;
  }
  JsonWriter& value(u64 v) {
    sep();
    out_ << v;
    done();
    return *this;
  }
  JsonWriter& value(int v) {
    sep();
    out_ << v;
    done();
    return *this;
  }
  JsonWriter& value(bool v) {
    sep();
    out_ << (v ? "true" : "false");
    done();
    return *this;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!nest_.empty() && nest_.back()) out_ << ", ";
  }
  void done() {
    if (!nest_.empty()) nest_.back() = true;
  }

  std::ostringstream out_;
  std::vector<bool> nest_;
  bool after_key_ = false;
};

/// Inserts or replaces the top-level entry `key` in the JSON object file
/// at `path` (created if missing), preserving the other entries. The
/// parser handles exactly what these helpers emit — a one-level object of
/// balanced values — so several bench binaries can share one output file
/// (BENCH_PR2.json) without a JSON dependency.
inline void json_file_update(const std::string& path, const std::string& key,
                             const std::string& payload) {
  std::vector<std::pair<std::string, std::string>> entries;
  if (std::ifstream in(path); in) {
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    usize i = text.find('{');
    i = i == std::string::npos ? text.size() : i + 1;
    while (i < text.size()) {
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == ',')) {
        ++i;
      }
      if (i >= text.size() || text[i] != '"') break;
      usize j = i + 1;
      std::string k;
      while (j < text.size() && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < text.size()) ++j;
        k += text[j];
        ++j;
      }
      j = text.find(':', j);
      if (j == std::string::npos) break;
      ++j;
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j])) != 0) {
        ++j;
      }
      const usize start = j;
      int depth = 0;
      bool in_str = false;
      for (; j < text.size(); ++j) {
        const char c = text[j];
        if (in_str) {
          if (c == '\\') {
            ++j;
          } else if (c == '"') {
            in_str = false;
          }
          continue;
        }
        if (c == '"') {
          in_str = true;
        } else if (c == '{' || c == '[') {
          ++depth;
        } else if (c == '}' || c == ']') {
          if (depth == 0) break;
          --depth;
        } else if (c == ',' && depth == 0) {
          break;
        }
      }
      usize end = j;
      while (end > start &&
             std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
        --end;
      }
      entries.emplace_back(k, text.substr(start, end - start));
      i = j;
    }
  }
  bool replaced = false;
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = payload;
      replaced = true;
    }
  }
  if (!replaced) entries.emplace_back(key, payload);
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (usize e = 0; e < entries.size(); ++e) {
    out << "  \"" << entries[e].first << "\": " << entries[e].second
        << (e + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

/// Observability flag parity across the serving benches:
/// --trace_out=FILE enables the phase tracer for the whole bench;
/// --metrics=1 prints the metrics registry after the run. Call
/// trace_begin() before the workload and observability_finish() at exit
/// (it writes the Chrome JSON and/or the registry text as requested).
inline std::string trace_begin(const Cli& cli) {
  const std::string trace_out = cli.get("trace_out", "");
  if (!trace_out.empty()) {
    trace::TraceLog::instance().set_enabled(true);
    trace::TraceLog::instance().set_thread_name("bench-main");
  }
  return trace_out;
}

inline void observability_finish(const Cli& cli,
                                 const std::string& trace_out) {
  if (cli.get_u64("metrics", 0) != 0) {
    std::cout << "\n-- metrics --\n" << metrics::Registry::global().text();
  }
  if (!trace_out.empty()) {
    if (trace::TraceLog::instance().write_chrome_json(trace_out)) {
      std::cout << "wrote trace -> " << trace_out << " ("
                << trace::TraceLog::instance().snapshot().size()
                << " events, " << trace::TraceLog::instance().dropped()
                << " dropped)\n";
    } else {
      std::cerr << "trace: could not write " << trace_out << "\n";
    }
  }
}

/// Metrics registry snapshot as a one-key JSON object (the exposition
/// text, newline-escaped) — attached to the bench JSON so a perf run
/// carries its counters next to its timings.
inline std::string metrics_json_section() {
  JsonWriter jm;
  jm.begin_obj();
  jm.key("registry_text").value(metrics::Registry::global().text());
  jm.end_obj();
  return jm.str();
}

}  // namespace pdm::bench
