// E10 — Theorem 3.3 (generalized 0-1 principle): if a circuit sorts an
// alpha fraction of every S_k, it sorts >= 1 - (1-alpha)(n+1) of all
// permutations. Sweeps truncated odd-even-transposition networks and
// under-iterated shearsort meshes through the bound.
#include "bench_support.h"
#include "theory/network.h"
#include "theory/zero_one.h"

using namespace pdm;
using namespace pdm::bench;
using namespace pdm::theory;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E10 / Theorem 3.3",
         "Generalized 0-1 principle: permutation success rate >= "
         "1 - (1 - min_k alpha_k)(n+1). alpha_k measured exhaustively per "
         "k; permutation rate by Monte Carlo.");

  Rng rng(cli.get_u64("seed", 42));
  const u64 trials = cli.get_u64("trials", 20000);

  {
    const u32 n = 12;
    Table t({"network", "ops", "min alpha_k", "bound", "measured perm rate",
             "bound holds"});
    for (u32 rounds : {6u, 8u, 9u, 10u, 11u, 12u}) {
      auto net = odd_even_transposition(n, rounds);
      auto per_k = estimate_alpha_per_k(net, 0, rng);
      const double bound = generalized_zero_one_bound(per_k.min_alpha, n);
      const double rate = permutation_success_rate(net, trials, rng);
      t.row()
          .cell("oe-transposition(" + std::to_string(n) + ", rounds=" +
                std::to_string(rounds) + ")")
          .cell(net.num_ops())
          .cell(per_k.min_alpha, 5)
          .cell(bound, 4)
          .cell(rate, 4)
          .cell(rate + 0.01 >= bound);
    }
    std::cout << "-- truncated odd-even transposition, n = 12 --\n";
    t.print(std::cout);
  }
  {
    Table t({"network", "min alpha_k", "bound", "measured perm rate",
             "bound holds"});
    for (u32 iters : {1u, 2u, 3u}) {
      const u32 rows = 4, cols = 4;
      auto net = shearsort(rows, cols, iters);
      auto order = snake_order(rows, cols);
      auto per_k =
          estimate_alpha_per_k(net, 0, rng, std::span<const u32>(order));
      const double bound =
          generalized_zero_one_bound(per_k.min_alpha, rows * cols);
      const double rate = permutation_success_rate(
          net, trials, rng, std::span<const u32>(order));
      t.row()
          .cell("shearsort(4x4, iters=" + std::to_string(iters) + ")")
          .cell(per_k.min_alpha, 5)
          .cell(bound, 4)
          .cell(rate, 4)
          .cell(rate + 0.01 >= bound);
    }
    std::cout << "-- under-iterated shearsort (Chlebus's setting, which "
                 "the paper formalizes) --\n";
    t.print(std::cout);
  }
  std::cout
      << "Expected shape: every row satisfies rate >= bound; the bound is "
         "vacuous (0) until alpha gets within 1/(n+1) of 1, then climbs "
         "steeply — exactly the regime the theorem targets. Full networks "
         "(alpha = 1) show rate = bound = 1.\n";
  return 0;
}
