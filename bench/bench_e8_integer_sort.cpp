// E8 — Theorem 7.1: IntegerSort takes (1+mu) passes without the placement
// step and 2(1+mu) with it, mu < 1, for keys in [0, M/B). Sweeps C
// (= M/(D*B)), key distribution, and the two implementation ablations:
// staged partial blocks (extension) and bucket block placement.
#include "bench_support.h"
#include "core/integer_sort.h"

using namespace pdm;
using namespace pdm::bench;

namespace {

struct Config {
  const char* name;
  bool staged;
  BucketPlacement placement;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E8 / Theorem 7.1",
         "IntegerSort (keys in [0, M/B)): (1+mu) passes without placement, "
         "2(1+mu) with, mu < 1. Ablations: staged partial blocks; bucket "
         "placement policy.");

  const u64 mem = cli.get_u64("m", 4096);
  const u64 n = cli.get_u64("n", 16 * mem);
  const u64 s = isqrt(mem);

  // Part 1: C sweep (D = sqrt(M)/C) at fixed N, uniform keys.
  {
    Table t({"C", "D", "passes (no placement)", "mu", "passes (with placement)",
             "pad fraction"});
    for (u64 c : {2ull, 4ull, 8ull}) {
      const u32 disks = static_cast<u32>(s / c);
      const Geom g{mem, s, disks};
      const u64 range = mem / s;
      Rng rng(c);
      auto data = make_int_keys(static_cast<usize>(n), range, rng);
      double p_no, p_with, padfrac;
      {
        auto ctx = make_ctx(g);
        auto in = stage<u64>(*ctx, data);
        IntegerSortOptions opt;
        opt.mem_records = mem;
        opt.range = range;
        opt.placement_pass = false;
        auto res = integer_sort<u64>(*ctx, in, opt);
        p_no = res.report.passes;
        padfrac = static_cast<double>(res.pad_records) /
                  static_cast<double>(n);
      }
      {
        auto ctx = make_ctx(g);
        auto in = stage<u64>(*ctx, data);
        IntegerSortOptions opt;
        opt.mem_records = mem;
        opt.range = range;
        auto res = integer_sort<u64>(*ctx, in, opt);
        check_sorted<u64>(res.output, n);
        p_with = res.report.passes;
      }
      t.row()
          .cell(c)
          .cell(u64{disks})
          .cell(p_no, 3)
          .cell(p_no - 1.0, 3)
          .cell(p_with, 3)
          .cell(padfrac, 3);
    }
    std::cout << "-- C sweep (uniform keys, N = " << fmt_count(n)
              << ", range = M/B = " << mem / s << ") --\n";
    t.print(std::cout);
  }

  // Part 2: ablations at C = 4, uniform vs zipf.
  {
    const Geom g = Geom::square(mem);
    const u64 range = mem / s;
    Table t({"distribution", "mode", "passes", "read-passes", "write-passes",
             "pad fraction", "util"});
    const Config configs[] = {
        {"paper/rotation", false, BucketPlacement::kRotation},
        {"paper/balanced", false, BucketPlacement::kBalancedBatch},
        {"staged/rotation", true, BucketPlacement::kRotation},
        {"staged/balanced", true, BucketPlacement::kBalancedBatch},
    };
    for (bool zipf : {false, true}) {
      Rng rng(99);
      auto data = zipf ? make_skewed_int_keys(static_cast<usize>(n), range,
                                              rng)
                       : make_int_keys(static_cast<usize>(n), range, rng);
      for (const auto& cfg : configs) {
        auto ctx = make_ctx(g);
        auto in = stage<u64>(*ctx, data);
        IntegerSortOptions opt;
        opt.mem_records = mem;
        opt.range = range;
        opt.staged = cfg.staged;
        opt.placement = cfg.placement;
        auto res = integer_sort<u64>(*ctx, in, opt);
        check_sorted<u64>(res.output, n);
        t.row()
            .cell(zipf ? "zipf" : "uniform")
            .cell(cfg.name)
            .cell(res.report.passes, 3)
            .cell(res.report.read_passes, 3)
            .cell(res.report.write_passes, 3)
            .cell(static_cast<double>(res.pad_records) /
                      static_cast<double>(n),
                  3)
            .cell(res.report.utilization, 2);
      }
    }
    std::cout << "-- ablations (C = 4, with placement pass) --\n";
    t.print(std::cout);
  }
  std::cout << "Expected shape: mu < 1 in every configuration (Theorem "
               "7.1); the staged extension removes nearly all padding; "
               "rotation placement keeps reads parallel and wins "
               "overall.\n";
  return 0;
}
