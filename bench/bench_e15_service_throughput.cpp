// E15 — SortService throughput under concurrency: the same mixed job set
// is served at worker counts 1/2/4/8 over one simulated-latency memory
// backend with a FIXED aggregate async-I/O budget. Reported: makespan,
// jobs/sec, p50/p99 queue latency, speedup vs the serial arm, and whether
// every job's pass count matches its single-worker baseline (contention
// must never change a job's I/O complexity — only its wall clock).
//
// Gate (PR acceptance): at 4 workers the job throughput must be at least
// `--gate` (default 1.3) times the serial arm. Sleep-driven latency makes
// this robust on loaded CI machines; --gate=0 disables the check.
#include "bench_support.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E15 / service throughput",
         "Concurrent sort jobs over shared disks + memory: jobs/sec and "
         "queue latency vs worker count, aggregate async depth fixed.");

  const u64 mem = cli.get_u64("m", 4096);
  const auto g = Geom::square(mem);
  const u64 latency_us = cli.get_u64("latency_us", 200);
  const u64 num_jobs = cli.get_u64("jobs", 8);
  const double gate = cli.get_double("gate", 1.3);
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");
  // --trace_out=FILE / --metrics=1: phase-tracer dump and metrics
  // registry exposition (shared serving-bench flags, bench_support.h).
  const std::string trace_out = trace_begin(cli);

  // The job mix: alternating medium (4M) and large (8M) u64 sorts, all
  // block- and M-aligned so the planner stays on the paper algorithms.
  Rng rng(5);
  std::vector<std::vector<u64>> datasets;
  for (u64 j = 0; j < num_jobs; ++j) {
    const u64 n = (j % 2 == 0 ? 4 : 8) * mem;
    datasets.push_back(make_keys(static_cast<usize>(n), Dist::kPermutation,
                                 rng));
  }
  std::cout << num_jobs << " jobs (" << 4 * mem << " / " << 8 * mem
            << " records), M = " << mem << ", B = " << g.rpb
            << ", D = " << g.disks << ", latency = " << latency_us
            << "us/op, io_depth_total = 8\n\n";

  Table t({"workers", "makespan_s", "jobs_per_sec", "p50_queue_s",
           "p99_queue_s", "speedup", "passes_equal"});
  std::vector<double> base_passes;
  double serial_makespan = 0;
  double speedup_at_4 = 0;

  JsonWriter jw;
  jw.begin_obj();
  jw.key("m").value(mem);
  jw.key("jobs").value(num_jobs);
  jw.key("latency_us").value(latency_us);
  jw.key("arms").begin_arr();

  for (const usize workers : {1, 2, 4, 8}) {
    auto backend =
        std::make_shared<MemoryDiskBackend>(g.disks, g.rpb * sizeof(u64));
    backend->set_simulated_latency_us(latency_us);
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.io_depth_total = 8;  // arbitrated across however many jobs run
    cfg.seed = 42;
    SortService svc(backend, cfg);

    Timer timer;
    std::vector<JobId> ids;
    for (u64 j = 0; j < num_jobs; ++j) {
      SortJobSpec spec;
      spec.name = "job" + std::to_string(j);
      spec.mem_records = mem;
      ids.push_back(svc.submit<u64>(
          spec, datasets[j], std::less<u64>{},
          [n = datasets[j].size()](const SortResult<u64>& res) {
            PDM_CHECK(res.output.size() == n, "E15: wrong output size");
            auto v = res.output.read_all();
            for (usize i = 1; i < v.size(); ++i) {
              PDM_CHECK(v[i - 1] <= v[i], "E15: output not sorted");
            }
          }));
    }
    svc.drain();
    const double makespan = timer.seconds();

    const ServiceStats st = svc.stats();
    PDM_CHECK(st.completed == num_jobs, "E15: a job did not complete");
    bool passes_equal = true;
    for (usize j = 0; j < ids.size(); ++j) {
      const JobInfo info = svc.info(ids[j]);
      PDM_CHECK(info.report.n == datasets[j].size(),
                "E15: report size mismatch");
      if (workers == 1) {
        base_passes.push_back(info.report.passes);
      } else {
        passes_equal =
            passes_equal && info.report.passes == base_passes[j];
      }
    }
    if (workers == 1) serial_makespan = makespan;
    const double speedup = serial_makespan / std::max(1e-9, makespan);
    if (workers == 4) speedup_at_4 = speedup;
    const double jps = static_cast<double>(num_jobs) / makespan;
    t.row()
        .cell(u64{workers})
        .cell(makespan, 3)
        .cell(jps, 2)
        .cell(st.queue_p50_s, 4)
        .cell(st.queue_p99_s, 4)
        .cell(speedup, 2)
        .cell(passes_equal);
    jw.begin_obj();
    jw.key("workers").value(u64{workers});
    jw.key("makespan_s").value(makespan);
    jw.key("jobs_per_sec").value(jps);
    jw.key("queue_p50_s").value(st.queue_p50_s);
    jw.key("queue_p99_s").value(st.queue_p99_s);
    jw.key("speedup_vs_serial").value(speedup);
    jw.key("passes_equal").value(passes_equal);
    jw.end_obj();
  }
  jw.end_arr();
  jw.key("speedup_at_4_workers").value(speedup_at_4);
  jw.key("gate").value(gate);
  jw.end_obj();

  t.print(std::cout);
  std::cout << "Expected shape: jobs/sec grows with workers while every "
               "job's pass count stays at its single-job baseline — "
               "concurrency buys wall-clock overlap of the per-op "
               "latency, never extra I/O.\n";
  if (!json_out.empty()) {
    json_file_update(json_out, "e15_service_throughput", jw.str());
    std::cout << "wrote section e15_service_throughput -> " << json_out
              << "\n";
    // Attach the metrics registry snapshot so the perf JSON carries its
    // counters (queue-wait histograms, tenant rollups, trace drops) next
    // to the timings.
    json_file_update(json_out, "metrics", metrics_json_section());
    std::cout << "wrote section metrics -> " << json_out << "\n";
  }
  std::cout << "throughput gate (4 workers vs serial): " << speedup_at_4
            << "x, need >= " << gate << "x: "
            << (gate <= 0 || speedup_at_4 >= gate ? "PASS" : "FAIL")
            << "\n";
  PDM_CHECK(gate <= 0 || speedup_at_4 >= gate,
            "E15 gate failed: concurrent throughput below threshold");
  observability_finish(cli, trace_out);
  return 0;
}
