// E4 — Theorem 6.1: ExpectedThreePass sorts ~M^{7/4}/lambda^{3/2} keys in
// three expected passes. Sweeps N up to the capacity bound and reports
// pass counts and fallback rates; contrast row: the same N through
// SevenPass (deterministic 7 passes) per Observation 6.1's discussion of
// why the probabilistic route beats subblock columnsort's regime.
#include "bench_support.h"
#include "core/capacity.h"
#include "core/expected_three_pass.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E4 / Theorem 6.1",
         "ExpectedThreePass sorts M^1.75/((a+2)ln M + 2)^(3/4) keys in 3 "
         "expected passes; Obs 6.1: this beats the (non-probabilistic) "
         "subblock-columnsort route toward M^(5/3).");

  const u64 mem = cli.get_u64("m", 4096);
  const u64 trials = cli.get_u64("trials", 10);
  const double alpha = cli.get_double("alpha", 1.0);
  const auto g = Geom::square(mem);
  const u64 cap3 = cap_expected_three_pass(mem, alpha);

  std::cout << "M = " << mem << ", B = " << g.rpb << ", D = " << g.disks
            << "; Theorem 6.1 capacity = " << fmt_count(cap3) << " ("
            << fmt_double(static_cast<double>(cap3) /
                              std::pow(static_cast<double>(mem), 1.75),
                          3)
            << " of M^1.75); M^(5/3)/4^(2/3) (subblock columnsort, 4 "
               "passes, Obs 6.1) = "
            << fmt_count(cap_subblock_columnsort(mem)) << "\n\n";

  Table t({"N", "N/cap3", "segments", "trials", "fallbacks", "mean passes"});
  for (double frac : {0.25, 0.5, 1.0}) {
    u64 n = round_down(static_cast<u64>(frac * static_cast<double>(cap3)),
                       mem);
    // Round to a segment-friendly shape.
    const u64 seg = round_down(
        std::min<u64>(cap_expected_two_pass(mem, alpha), n), mem);
    if (seg == 0) continue;
    const u64 segs = std::max<u64>(1, n / seg);
    n = segs * seg;
    if (n == 0 || segs * g.rpb > mem) continue;
    u64 fallbacks = 0;
    double pass_sum = 0;
    for (u64 s = 0; s < trials; ++s) {
      auto ctx = make_ctx(g, s + 1);
      Rng rng(s * 104729 + 7);
      auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
      auto in = stage<u64>(*ctx, data);
      ExpectedThreePassOptions opt;
      opt.mem_records = mem;
      opt.alpha = alpha;
      opt.segment_len = seg;
      auto res = expected_three_pass_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      if (res.report.fallback_taken) ++fallbacks;
      pass_sum += res.report.passes;
    }
    t.row()
        .cell(fmt_count(n))
        .cell(static_cast<double>(n) / static_cast<double>(cap3), 2)
        .cell(segs)
        .cell(trials)
        .cell(fallbacks)
        .cell(pass_sum / static_cast<double>(trials), 3);
  }
  t.print(std::cout);
  std::cout << "Expected shape: ~3 passes with zero fallbacks within "
               "capacity — i.e. Omega(M^1.75/log M) keys in three passes "
               "w.h.p., as Observation 6.1 highlights.\n";
  return 0;
}
