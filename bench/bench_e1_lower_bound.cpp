// E1 — Lemma 2.1: the I/O lower bound vs what the paper's algorithms
// achieve. Regenerates the paper's claims that 2 passes are necessary for
// N = M^{3/2} (B = sqrt(M)), 3 passes for N = M^2, and 1.75 passes when
// B = M^{1/3} (§8), and shows the measured pass counts of the matching
// upper-bound algorithms against them.
#include "bench_support.h"
#include "core/capacity.h"
#include "core/expected_two_pass.h"
#include "core/seven_pass.h"
#include "core/three_pass_lmm.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E1 / Lemma 2.1",
         "Lower bound (Arge-Knudsen-Larsen) vs measured passes. Paper: >=2 "
         "passes for M^1.5 keys, >=3 for M^2 (B=sqrt(M)); 1.75 for "
         "B=M^(1/3).");

  Table t({"regime", "M", "B", "N", "LB exact", "LB asymptotic",
           "algorithm", "measured passes"});

  // Regime 1: N = M^{3/2}, B = sqrt(M) — ExpectedTwoPass nearly meets the
  // bound (2 passes on random inputs, at slightly reduced N).
  {
    const u64 mem = cli.get_u64("m", 4096);
    const auto g = Geom::square(mem);
    auto ctx = make_ctx(g);
    const u64 cap2 = round_down(cap_expected_two_pass(mem, 1.0), mem);
    Rng rng(1);
    auto data = make_keys(static_cast<usize>(cap2), Dist::kUniform, rng);
    auto in = stage<u64>(*ctx, data);
    ExpectedTwoPassOptions opt;
    opt.mem_records = mem;
    auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
    check_sorted<u64>(res.output, cap2);
    t.row()
        .cell("N ~ M^1.5 (Thm 5.1 N)")
        .cell(mem)
        .cell(g.rpb)
        .cell(fmt_count(cap2))
        .cell(lower_bound_passes(cap2, mem, g.rpb), 3)
        .cell(lower_bound_passes_asymptotic(cap2, mem, g.rpb), 3)
        .cell("ExpectedTwoPass")
        .cell(res.report.passes, 3);
  }
  {
    const u64 mem = cli.get_u64("m", 4096);
    const auto g = Geom::square(mem);
    auto ctx = make_ctx(g);
    const u64 n = mem * g.rpb;
    Rng rng(2);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = stage<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
    check_sorted<u64>(res.output, n);
    t.row()
        .cell("N = M^1.5")
        .cell(mem)
        .cell(g.rpb)
        .cell(fmt_count(n))
        .cell(lower_bound_passes(n, mem, g.rpb), 3)
        .cell(lower_bound_passes_asymptotic(n, mem, g.rpb), 3)
        .cell("ThreePass2(LMM)")
        .cell(res.report.passes, 3);
  }
  // Regime 2: N = M^2.
  {
    const u64 mem = cli.get_u64("m2", 1024);
    const auto g = Geom::square(mem);
    auto ctx = make_ctx(g);
    const u64 n = mem * mem;
    Rng rng(3);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    auto in = stage<u64>(*ctx, data);
    SevenPassOptions opt;
    opt.mem_records = mem;
    auto res = seven_pass_sort<u64>(*ctx, in, opt);
    check_sorted<u64>(res.output, n);
    t.row()
        .cell("N = M^2")
        .cell(mem)
        .cell(g.rpb)
        .cell(fmt_count(n))
        .cell(lower_bound_passes(n, mem, g.rpb), 3)
        .cell(lower_bound_passes_asymptotic(n, mem, g.rpb), 3)
        .cell("SevenPass")
        .cell(res.report.passes, 3);
  }
  // Regime 3 (analytic row): B = M^{1/3}, N = M^{3/2} — the Chaudhry-
  // Cormen block-size regime the paper contrasts in §8.
  {
    const u64 mem = 1u << 18;
    const u64 b = 1u << 6;  // M^{1/3}
    const u64 n = static_cast<u64>(std::pow(2.0, 27.0));
    t.row()
        .cell("N = M^1.5, B = M^(1/3)")
        .cell(mem)
        .cell(b)
        .cell(fmt_count(n))
        .cell(lower_bound_passes(n, mem, b), 3)
        .cell(lower_bound_passes_asymptotic(n, mem, b), 3)
        .cell("(analytic only)")
        .cell("-");
  }

  t.print(std::cout);
  std::cout << "Reading: the asymptotic column is the bound Lemma 2.1 "
               "quotes (2 / 3 / 1.75); the exact column is the finite-M "
               "Arge bound, which the paper's own expression\n"
               "2M(1-1.45/lg M)/(1+6/lg M) evaluates to. Our algorithms "
               "sit within one pass of the asymptotic bound, as claimed.\n";
  return 0;
}
