// E17 — extent-based allocation + multi-block I/O coalescing, end to end.
//
// The paper's pass bounds assume each pass streams data in large
// sequential transfers per disk; a block-at-a-time I/O path turns every
// logical transfer into one syscall (or one simulated seek) per block,
// and block-granular bump allocation interleaves concurrent jobs' runs so
// nothing is ever physically adjacent. This bench measures what the
// extent layer buys back, holding the paper accounting fixed:
//
//  - File arm (gated): the same multi-tenant workload on FileDiskBackend
//    at 4 concurrent workers, extents+coalescing ON vs the block-at-a-
//    time baseline (extent_blocks=1, coalescing off). Wall clock must
//    improve by >= --gate (default 1.3x), with per-job pass counts equal
//    and aggregate IoStats block counts identical — only read_calls/
//    write_calls (syscalls) may differ.
//
//  - Memory arm (reported + sanity-gated): the same workload on one
//    shared MemoryDiskBackend under the StreamModel. Four tenants cycle
//    more working regions than the per-disk stream cache holds, so the
//    block-at-a-time arm pays a positioning charge on nearly every
//    block; extent transfers amortize one seek over the whole span, so
//    the stream hit rate must improve within this single shard.
#include <filesystem>
#include <memory>

#include "bench_support.h"
#include "pdm/file_backend.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"

using namespace pdm;
using namespace pdm::bench;

namespace {

struct ArmResult {
  double makespan_s = 0;
  double coalesced_ratio = 0;
  u64 blocks = 0;
  u64 calls = 0;
  double stream_hit_rate = 0;
  std::vector<double> passes;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E17 / extent I/O",
         "Extent-based allocation + multi-block coalescing through the "
         "whole disk path: wall clock and syscall counts at 4 concurrent "
         "jobs, block counts and pass counts pinned to the "
         "block-at-a-time baseline.");

  // Default geometry: fine blocks (128 bytes) over a narrow array, jobs
  // a few memory-loads deep — the regime where per-block syscall overhead
  // and per-block positioning charges dominate, i.e. exactly what the
  // paper's large-sequential-transfer assumption abstracts away and the
  // extent layer restores.
  const u64 mem = cli.get_u64("m", 4096);
  const u64 rpb = cli.get_u64("rpb", 16);
  const u32 disks = static_cast<u32>(cli.get_u64("disks", 4));
  const usize workers = static_cast<usize>(cli.get_u64("workers", 4));
  const u64 num_jobs = cli.get_u64("jobs", 24);
  const u64 n_mult = cli.get_u64("n_mult", 4);  // records per job = n_mult*M
  const u64 repeats = cli.get_u64("repeats", 3);
  const double gate = cli.get_double("gate", 1.3);
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");

  StreamModel stream;
  stream.seq_us = cli.get_u64("seq_us", 4);
  stream.seek_us = cli.get_u64("seek_us", 120);
  stream.streams = static_cast<u32>(cli.get_u64("streams", 2));
  stream.window_blocks = cli.get_u64("window", 8);

  Rng rng(11);
  std::vector<std::vector<u64>> datasets;
  for (u64 j = 0; j < num_jobs; ++j) {
    datasets.push_back(make_keys(static_cast<usize>(n_mult * mem),
                                 Dist::kPermutation, rng));
  }
  std::cout << num_jobs << " jobs x " << n_mult * mem << " u64 records, M = "
            << mem << ", B = " << rpb << " records (" << rpb * sizeof(u64)
            << " bytes), D = " << disks << ", " << workers
            << " concurrent workers\n\n";

  ServiceConfig base_cfg;
  base_cfg.workers = workers;
  base_cfg.io_depth_total = 8;
  base_cfg.total_memory_bytes = usize{256} << 20;
  base_cfg.seed = 42;

  auto run_jobs = [&](SortService& svc, ArmResult& r) {
    std::vector<JobId> ids;
    for (u64 j = 0; j < num_jobs; ++j) {
      SortJobSpec spec;
      spec.name = "job" + std::to_string(j);
      spec.mem_records = mem;
      ids.push_back(svc.submit<u64>(
          spec, datasets[static_cast<usize>(j)], std::less<u64>{},
          [n = datasets[static_cast<usize>(j)].size()](
              const SortResult<u64>& res) {
            PDM_CHECK(res.output.size() == n, "E17: wrong output size");
            auto v = res.output.read_all();
            for (usize i = 1; i < v.size(); ++i) {
              PDM_CHECK(v[i - 1] <= v[i], "E17: output not sorted");
            }
          }));
    }
    svc.drain();
    for (JobId id : ids) {
      const JobInfo info = svc.wait(id);
      PDM_CHECK(info.state == JobState::kDone, "E17: job not done: " +
                                                   info.error);
      r.passes.push_back(info.report.passes);
    }
  };

  auto config_arm = [&](bool extents) {
    ServiceConfig cfg = base_cfg;
    if (!extents) {
      cfg.extent_blocks = 1;  // legacy block-interleaved bump allocation
      cfg.coalesce_io = false;
    }
    return cfg;
  };

  // --- file arm: real syscalls, gated -----------------------------------
  const std::string dir = "/tmp/pdmsort_e17_files";
  auto run_file_arm = [&](bool extents) {
    ArmResult r;
    double best = -1;
    for (u64 rep = 0; rep < repeats; ++rep) {
      ArmResult cur;
      auto backend = std::make_shared<FileDiskBackend>(
          disks, static_cast<usize>(rpb) * sizeof(u64), dir);
      SortService svc(backend, config_arm(extents));
      Timer timer;
      run_jobs(svc, cur);
      cur.makespan_s = timer.seconds();
      const IoStats io = svc.stats().io;
      cur.blocks = io.total_blocks();
      cur.calls = io.total_calls();
      cur.coalesced_ratio = io.coalesced_ratio();
      if (best < 0 || cur.makespan_s < best) {
        best = cur.makespan_s;
        r = cur;
      }
    }
    std::filesystem::remove_all(dir);
    return r;
  };

  // --- memory arm: StreamModel occupancy, single shard ------------------
  auto run_memory_arm = [&](bool extents) {
    ArmResult r;
    auto backend = std::make_shared<MemoryDiskBackend>(
        disks, static_cast<usize>(rpb) * sizeof(u64));
    backend->set_stream_model(stream);
    SortService svc(backend, config_arm(extents));
    Timer timer;
    run_jobs(svc, r);
    r.makespan_s = timer.seconds();
    const IoStats io = svc.stats().io;
    r.blocks = io.total_blocks();
    r.calls = io.total_calls();
    r.coalesced_ratio = io.coalesced_ratio();
    const u64 hits = backend->stream_hits();
    const u64 misses = backend->stream_misses();
    r.stream_hit_rate = hits + misses == 0
                            ? 0
                            : static_cast<double>(hits) /
                                  static_cast<double>(hits + misses);
    return r;
  };

  const ArmResult fbase = run_file_arm(false);
  const ArmResult fext = run_file_arm(true);
  const ArmResult mbase = run_memory_arm(false);
  const ArmResult mext = run_memory_arm(true);

  const bool passes_equal =
      fbase.passes == fext.passes && mbase.passes == mext.passes;
  const bool blocks_equal =
      fbase.blocks == fext.blocks && mbase.blocks == mext.blocks;
  const double file_speedup =
      fbase.makespan_s / std::max(1e-9, fext.makespan_s);
  const double mem_speedup =
      mbase.makespan_s / std::max(1e-9, mext.makespan_s);

  Table t({"arm", "io_path", "makespan_s", "speedup", "blocks", "calls",
           "coalesced", "stream_hits", "passes_eq"});
  auto add_row = [&](const std::string& arm, const std::string& path,
                     const ArmResult& r, double speedup) {
    t.row()
        .cell(arm)
        .cell(path)
        .cell(r.makespan_s, 3)
        .cell(speedup, 2)
        .cell(r.blocks)
        .cell(r.calls)
        .cell(r.coalesced_ratio, 2)
        .cell(r.stream_hit_rate, 2)
        .cell(passes_equal);
  };
  add_row("file", "block-at-a-time", fbase, 1.0);
  add_row("file", "extents", fext, file_speedup);
  add_row("memory+stream", "block-at-a-time", mbase, 1.0);
  add_row("memory+stream", "extents", mext, mem_speedup);
  t.print(std::cout);

  std::cout
      << "\nExpected shape: the baseline issues one pread/pwrite (or one "
         "simulated positioning charge) per block and interleaves "
         "the four tenants block-by-block on every disk; the extent layer "
         "gives each run physically contiguous spans and moves them with "
         "one syscall / one seek per extent. Paper accounting is pinned: "
         "same ops, same blocks, same passes — only calls shrink.\n\n";

  JsonWriter jw;
  jw.begin_obj();
  jw.key("m").value(mem);
  jw.key("rpb").value(rpb);
  jw.key("disks").value(u64{disks});
  jw.key("workers").value(u64{workers});
  jw.key("jobs").value(num_jobs);
  jw.key("n_per_job").value(n_mult * mem);
  auto arm_json = [&](const char* key, const ArmResult& r, double speedup) {
    jw.key(key).begin_obj();
    jw.key("makespan_s").value(r.makespan_s);
    jw.key("speedup").value(speedup);
    jw.key("blocks").value(r.blocks);
    jw.key("calls").value(r.calls);
    jw.key("coalesced_ratio").value(r.coalesced_ratio);
    jw.key("stream_hit_rate").value(r.stream_hit_rate);
    jw.end_obj();
  };
  arm_json("file_baseline", fbase, 1.0);
  arm_json("file_extents", fext, file_speedup);
  arm_json("memory_baseline", mbase, 1.0);
  arm_json("memory_extents", mext, mem_speedup);
  jw.key("passes_equal").value(passes_equal);
  jw.key("blocks_equal").value(blocks_equal);
  jw.key("gate").value(gate);
  jw.end_obj();
  if (!json_out.empty()) {
    json_file_update(json_out, "e17_extent_io", jw.str());
    std::cout << "wrote section e17_extent_io -> " << json_out << "\n";
  }

  PDM_CHECK(passes_equal, "E17: extent path changed a job's pass count");
  PDM_CHECK(blocks_equal, "E17: extent path changed IoStats block counts");
  PDM_CHECK(fext.coalesced_ratio > 1.5,
            "E17: file arm did not coalesce (ratio <= 1.5)");
  std::cout << "stream hit rate (1 shard, 4 tenants): "
            << fmt_double(mbase.stream_hit_rate, 3) << " -> "
            << fmt_double(mext.stream_hit_rate, 3) << "\n";
  PDM_CHECK(mext.stream_hit_rate > mbase.stream_hit_rate,
            "E17: extents did not improve the StreamModel hit rate");
  std::cout << "extent gate (file backend, " << workers
            << " concurrent jobs): " << fmt_double(file_speedup, 2)
            << "x, need >= " << gate << "x: "
            << (gate <= 0 || file_speedup >= gate ? "PASS" : "FAIL") << "\n";
  PDM_CHECK(gate <= 0 || file_speedup >= gate,
            "E17 gate failed: extent wall-clock speedup below threshold");
  return 0;
}
