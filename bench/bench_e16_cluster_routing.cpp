// E16 — cluster routing: jobs/sec and shard imbalance vs shard count and
// placement policy, on a FIXED aggregate hardware budget (total disks,
// workers, memory and async depth are divided among the shards).
//
// The backend runs the locality-aware occupancy model (StreamModel): each
// disk serves a handful of sequential streams cheaply and charges a seek
// for anything past its stream cache, against a per-disk busy-until
// clock. One big shard interleaves every tenant on every disk — the
// stream caches thrash and ops cost seeks; sharding gives each disk group
// one job at a time, accesses stay sequential, and the same aggregate
// hardware serves a multiple of the jobs/sec. Pass counts are unchanged
// throughout (the paper's bounds are per-array properties — asserted
// against the one-shard baseline per job).
//
// Gates (PR acceptance): at 4 shards under least_loaded, jobs/sec must
// be at least `--gate` (default 1.5) times the 1-shard arm; and the
// elasticity arm — a live 2→4 scale-out mid-workload (add_shard while
// jobs are parked in the cluster hold queue; the newcomers steal the
// backlog) — must complete every job and reach `--elastic_gate`
// (default 1.2) times the static 2-shard baseline's jobs/sec, with
// per-job pass counts still pinned to the 1-shard baseline. --gate=0 /
// --elastic_gate=0 disable. The static policy arms run with the hold
// queue off so they measure the routing policies in isolation; the
// elastic arm runs the full hold-queue + stealing machinery. An
// optional arm repeats 1-vs-4 shards over FileDiskBackend (real fds +
// page cache, no simulated latency; reported, not gated).
#include <filesystem>
#include <memory>

#include "bench_support.h"
#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "pdm/memory_backend.h"

using namespace pdm;
using namespace pdm::bench;

namespace {

struct ArmResult {
  usize shards = 0;
  std::string policy;
  double makespan_s = 0;
  double jobs_per_sec = 0;
  double speedup = 0;
  double job_imbalance = 0;
  double io_imbalance = 0;
  double stream_hit_rate = 0;
  bool passes_equal = true;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E16 / cluster routing",
         "Sharded multi-context serving on a fixed aggregate hardware "
         "budget: jobs/sec and imbalance vs shard count and routing "
         "policy, per-job pass counts pinned to the 1-shard baseline.");

  const u64 mem = cli.get_u64("m", 16384);
  const u64 rpb = isqrt(mem);
  PDM_CHECK(rpb * rpb == mem, "--m must be a perfect square");
  const u32 disks_total = static_cast<u32>(cli.get_u64("disks", 8));
  const usize workers_total = static_cast<usize>(cli.get_u64("workers", 4));
  const u64 num_jobs = cli.get_u64("jobs", 48);
  const u64 tenants = cli.get_u64("tenants", 8);
  const double gate = cli.get_double("gate", 1.5);
  const double elastic_gate = cli.get_double("elastic_gate", 1.2);
  const bool file_arm = cli.get_u64("file_arm", 1) != 0;
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");
  // --trace_out=FILE / --metrics=1: phase-tracer dump and metrics
  // registry exposition (shared serving-bench flags, bench_support.h).
  const std::string trace_out = trace_begin(cli);

  StreamModel stream;
  stream.seq_us = cli.get_u64("seq_us", 10);
  stream.seek_us = cli.get_u64("seek_us", 200);
  stream.streams = static_cast<u32>(cli.get_u64("streams", 2));
  stream.window_blocks = cli.get_u64("window", 8);

  // Internal-sort-sized tenant jobs in three sizes: each needs at most
  // two streams per disk (its staged input region and its output
  // frontier), so a dedicated disk group serves it at seq_us, while
  // mixed-size tenants interleaving on one big array cycle more distant
  // regions than the stream cache holds and pay seek_us. Sizes are
  // multiples of rpb * disks_total so pass counts round identically at
  // every shard count.
  Rng rng(7);
  std::vector<std::vector<u64>> datasets;
  std::vector<std::string> keys;
  for (u64 j = 0; j < num_jobs; ++j) {
    const u64 n = (j % 3 + 1) * (mem / 4);
    datasets.push_back(
        make_keys(static_cast<usize>(n), Dist::kPermutation, rng));
    keys.push_back("tenant-" + std::to_string(j % tenants));
  }
  std::cout << num_jobs << " jobs of " << mem / 4 << ".." << 3 * (mem / 4)
            << " records from " << tenants
            << " tenants; aggregate budget: D = " << disks_total
            << ", workers = " << workers_total << ", io_depth = 8; stream "
            << "model: seq " << stream.seq_us << "us / seek "
            << stream.seek_us << "us, window " << stream.window_blocks
            << " blocks\n\n";

  auto run_arm = [&](usize shards, RoutePolicy policy,
                     std::vector<double>* passes_out,
                     const std::vector<double>* passes_base) {
    PDM_CHECK(disks_total % shards == 0 && workers_total % shards == 0,
              "shard count must divide the aggregate budget");
    std::vector<std::shared_ptr<MemoryDiskBackend>> backends;
    ClusterConfig cfg;
    cfg.shards = shards;
    cfg.policy = policy;
    cfg.shard.workers = workers_total / shards;
    cfg.shard.io_depth_total = 8 / shards;
    cfg.shard.total_memory_bytes = (usize{256} << 20) / shards;
    cfg.shard.seed = 42;
    cfg.hold_queue = false;  // measure the routing policy in isolation
    Cluster cluster(
        [&](u32) -> std::shared_ptr<DiskBackend> {
          auto b = std::make_shared<MemoryDiskBackend>(
              disks_total / static_cast<u32>(shards),
              static_cast<usize>(rpb) * sizeof(u64));
          b->set_stream_model(stream);
          backends.push_back(b);
          return b;
        },
        cfg);

    Timer timer;
    std::vector<JobId> ids;
    for (u64 j = 0; j < num_jobs; ++j) {
      SortJobSpec spec;
      spec.name = "job" + std::to_string(j);
      spec.mem_records = mem;
      spec.locality_key = keys[static_cast<usize>(j)];
      ids.push_back(cluster.submit<u64>(
          spec, datasets[static_cast<usize>(j)], std::less<u64>{},
          [n = datasets[static_cast<usize>(j)].size()](
              const SortResult<u64>& res) {
            PDM_CHECK(res.output.size() == n, "E16: wrong output size");
            auto v = res.output.read_all();
            for (usize i = 1; i < v.size(); ++i) {
              PDM_CHECK(v[i - 1] <= v[i], "E16: output not sorted");
            }
          }));
    }
    cluster.drain();
    ArmResult r;
    r.makespan_s = timer.seconds();
    r.shards = shards;
    r.policy = shards == 1 ? "single" : route_policy_name(policy);
    r.jobs_per_sec = static_cast<double>(num_jobs) / r.makespan_s;

    const ClusterStats st = cluster.stats();
    PDM_CHECK(st.completed == num_jobs, "E16: a job did not complete");
    r.job_imbalance = st.job_imbalance;
    r.io_imbalance = st.io_imbalance;
    u64 hits = 0;
    u64 misses = 0;
    for (const auto& b : backends) {
      hits += b->stream_hits();
      misses += b->stream_misses();
    }
    r.stream_hit_rate = hits + misses == 0
                            ? 0
                            : static_cast<double>(hits) /
                                  static_cast<double>(hits + misses);
    for (usize j = 0; j < ids.size(); ++j) {
      const double p = cluster.info(ids[j]).report.passes;
      if (passes_out != nullptr) passes_out->push_back(p);
      if (passes_base != nullptr) {
        r.passes_equal = r.passes_equal && p == (*passes_base)[j];
      }
    }
    return r;
  };

  Table t({"shards", "policy", "makespan_s", "jobs_per_sec", "speedup",
           "job_imbal", "io_imbal", "stream_hits", "passes_equal"});
  auto add_row = [&](const ArmResult& r) {
    t.row()
        .cell(u64{r.shards})
        .cell(r.policy)
        .cell(r.makespan_s, 3)
        .cell(r.jobs_per_sec, 1)
        .cell(r.speedup, 2)
        .cell(r.job_imbalance, 2)
        .cell(r.io_imbalance, 2)
        .cell(r.stream_hit_rate, 2)
        .cell(r.passes_equal);
  };

  std::vector<double> base_passes;
  ArmResult base = run_arm(1, RoutePolicy::kLeastLoaded, &base_passes,
                           nullptr);
  base.speedup = 1.0;
  add_row(base);

  JsonWriter jw;
  jw.begin_obj();
  jw.key("m").value(mem);
  jw.key("jobs").value(num_jobs);
  jw.key("tenants").value(tenants);
  jw.key("disks_total").value(u64{disks_total});
  jw.key("workers_total").value(u64{workers_total});
  jw.key("stream_seq_us").value(stream.seq_us);
  jw.key("stream_seek_us").value(stream.seek_us);
  jw.key("arms").begin_arr();
  auto add_json = [&](const ArmResult& r) {
    jw.begin_obj();
    jw.key("shards").value(u64{r.shards});
    jw.key("policy").value(r.policy);
    jw.key("makespan_s").value(r.makespan_s);
    jw.key("jobs_per_sec").value(r.jobs_per_sec);
    jw.key("speedup_vs_one_shard").value(r.speedup);
    jw.key("job_imbalance").value(r.job_imbalance);
    jw.key("io_imbalance").value(r.io_imbalance);
    jw.key("stream_hit_rate").value(r.stream_hit_rate);
    jw.key("passes_equal").value(r.passes_equal);
    jw.end_obj();
  };
  add_json(base);

  double gate_speedup = 0;
  for (const usize shards : {usize{2}, usize{4}}) {
    for (const RoutePolicy policy :
         {RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
          RoutePolicy::kLocalityHash}) {
      ArmResult r = run_arm(shards, policy, nullptr, &base_passes);
      r.speedup = base.makespan_s / std::max(1e-9, r.makespan_s);
      if (shards == 4 && policy == RoutePolicy::kLeastLoaded) {
        gate_speedup = r.speedup;
      }
      PDM_CHECK(r.passes_equal,
                "E16: sharding changed a job's pass count");
      add_row(r);
      add_json(r);
    }
  }
  jw.end_arr();

  // Elasticity arm: the same workload against (a) a static 2-shard
  // cluster and (b) a cluster that starts at 2 shards and live-scales to
  // 4 after a third of the submissions — per-shard hardware identical to
  // the 4-shard arms, hold queue ON. The backlog parks in the cluster
  // hold queue; the two newcomers join the consistent-hash ring and
  // steal it. Gate: every job completes, and the scale-out beats the
  // static 2-shard baseline's jobs/sec by >= --elastic_gate.
  auto run_elastic = [&](bool grow) {
    ClusterConfig cfg;
    cfg.shards = 2;
    cfg.policy = RoutePolicy::kLeastLoaded;
    cfg.shard.workers = std::max<usize>(1, workers_total / 4);
    cfg.shard.io_depth_total = 2;
    cfg.shard.total_memory_bytes = (usize{256} << 20) / 4;
    cfg.shard.seed = 42;
    Cluster cluster(
        [&](u32) -> std::shared_ptr<DiskBackend> {
          auto b = std::make_shared<MemoryDiskBackend>(
              disks_total / 4, static_cast<usize>(rpb) * sizeof(u64));
          b->set_stream_model(stream);
          return b;
        },
        cfg);
    Timer timer;
    std::vector<JobId> ids;
    for (u64 j = 0; j < num_jobs; ++j) {
      if (grow && j == num_jobs / 3) {
        cluster.add_shard();
        cluster.add_shard();
      }
      SortJobSpec spec;
      spec.name = "ejob" + std::to_string(j);
      spec.mem_records = mem;
      spec.locality_key = keys[static_cast<usize>(j)];
      ids.push_back(
          cluster.submit<u64>(spec, datasets[static_cast<usize>(j)]));
    }
    cluster.drain();
    const double makespan = timer.seconds();
    const ClusterStats st = cluster.stats();
    PDM_CHECK(st.completed == num_jobs,
              "E16 elastic arm: a job was lost");
    for (usize j = 0; j < ids.size(); ++j) {
      PDM_CHECK(cluster.info(ids[j]).report.passes == base_passes[j],
                "E16 elastic arm: scale-out changed a job's pass count");
    }
    return std::make_pair(makespan, st);
  };
  const auto [static2_s, static2_st] = run_elastic(false);
  const auto [elastic_s, elastic_st] = run_elastic(true);
  const double elastic_speedup = static2_s / std::max(1e-9, elastic_s);
  std::cout << "\nElasticity arm (2 -> 4 live scale-out at 1/3 of "
            << "submissions, hold queue + stealing on):\n";
  Table et({"arm", "makespan_s", "jobs_per_sec", "speedup", "held",
            "stolen"});
  et.row()
      .cell(std::string("static-2"))
      .cell(static2_s, 3)
      .cell(static_cast<double>(num_jobs) / static2_s, 1)
      .cell(1.0, 2)
      .cell(static2_st.held_total)
      .cell(static2_st.stolen);
  et.row()
      .cell(std::string("elastic-2to4"))
      .cell(elastic_s, 3)
      .cell(static_cast<double>(num_jobs) / elastic_s, 1)
      .cell(elastic_speedup, 2)
      .cell(elastic_st.held_total)
      .cell(elastic_st.stolen);
  et.print(std::cout);
  jw.key("elastic").begin_obj();
  jw.key("static2_makespan_s").value(static2_s);
  jw.key("static2_jobs_per_sec")
      .value(static_cast<double>(num_jobs) / static2_s);
  jw.key("elastic_makespan_s").value(elastic_s);
  jw.key("elastic_jobs_per_sec")
      .value(static_cast<double>(num_jobs) / elastic_s);
  jw.key("speedup_vs_static2").value(elastic_speedup);
  jw.key("shards_added").value(elastic_st.shards_added);
  jw.key("held_total").value(elastic_st.held_total);
  jw.key("stolen").value(elastic_st.stolen);
  jw.key("completed").value(elastic_st.completed);
  jw.key("gate").value(elastic_gate);
  jw.end_obj();

  // Real-file arm: same job set, 1 vs 4 shards over FileDiskBackend
  // (page cache + fd contention instead of the stream model; reported,
  // not gated — FS timing is too machine-dependent for CI).
  if (file_arm) {
    jw.key("file_arms").begin_arr();
    const std::string dir = "/tmp/pdmsort_e16_files";
    Table ft({"shards", "makespan_s", "jobs_per_sec"});
    for (const usize shards : {usize{1}, usize{4}}) {
      ClusterConfig cfg;
      cfg.shards = shards;
      cfg.policy = RoutePolicy::kLeastLoaded;
      cfg.shard.workers = workers_total / shards;
      cfg.shard.io_depth_total = 8 / shards;
      cfg.shard.total_memory_bytes = (usize{256} << 20) / shards;
      cfg.shard.seed = 42;
      Timer timer;
      {
        Cluster cluster(
            file_backend_factory(disks_total / static_cast<u32>(shards),
                                 static_cast<usize>(rpb) * sizeof(u64), dir),
            cfg);
        for (u64 j = 0; j < num_jobs; ++j) {
          SortJobSpec spec;
          spec.name = "fjob" + std::to_string(j);
          spec.mem_records = mem;
          spec.locality_key = keys[static_cast<usize>(j)];
          cluster.submit<u64>(spec, datasets[static_cast<usize>(j)]);
        }
        cluster.drain();
        const ClusterStats st = cluster.stats();
        PDM_CHECK(st.completed == num_jobs, "E16 file arm: incomplete");
      }
      const double makespan = timer.seconds();
      ft.row()
          .cell(u64{shards})
          .cell(makespan, 3)
          .cell(static_cast<double>(num_jobs) / makespan, 1);
      jw.begin_obj();
      jw.key("shards").value(u64{shards});
      jw.key("makespan_s").value(makespan);
      jw.key("jobs_per_sec").value(static_cast<double>(num_jobs) /
                                   makespan);
      jw.end_obj();
    }
    std::filesystem::remove_all(dir);
    jw.end_arr();
    t.print(std::cout);
    std::cout << "\nFileDiskBackend arm (real I/O, not gated):\n";
    ft.print(std::cout);
  } else {
    t.print(std::cout);
  }

  jw.key("speedup_at_4_shards").value(gate_speedup);
  jw.key("gate").value(gate);
  jw.end_obj();

  std::cout
      << "Expected shape: one shard interleaves every tenant on every "
         "disk, so per-disk stream caches thrash and most ops pay seeks; "
         "dedicated shard groups keep accesses sequential. Same aggregate "
         "hardware, multiplied jobs/sec, per-job pass counts untouched.\n";
  if (!json_out.empty()) {
    json_file_update(json_out, "e16_cluster_routing", jw.str());
    std::cout << "wrote section e16_cluster_routing -> " << json_out << "\n";
  }
  std::cout << "routing gate (4 shards least_loaded vs 1 shard): "
            << fmt_double(gate_speedup, 2) << "x, need >= " << gate
            << "x: "
            << (gate <= 0 || gate_speedup >= gate ? "PASS" : "FAIL") << "\n";
  std::cout << "elasticity gate (live 2->4 scale-out vs static 2 shards): "
            << fmt_double(elastic_speedup, 2) << "x, need >= "
            << elastic_gate << "x: "
            << (elastic_gate <= 0 || elastic_speedup >= elastic_gate
                    ? "PASS"
                    : "FAIL")
            << "\n";
  PDM_CHECK(gate <= 0 || gate_speedup >= gate,
            "E16 gate failed: sharded throughput below threshold");
  PDM_CHECK(elastic_gate <= 0 || elastic_speedup >= elastic_gate,
            "E16 elasticity gate failed: live scale-out below the static "
            "2-shard baseline threshold");
  observability_finish(cli, trace_out);
  return 0;
}
