// E2 — Theorem 3.1 + Lemma 4.1: both deterministic algorithms sort
// N = M^{3/2} records in exactly three passes (B = sqrt(M)). Also checks
// the Conclusions' remark that ThreePass1 and ThreePass2 "seem to have
// similar performance".
#include "bench_support.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E2 / Theorem 3.1 + Lemma 4.1",
         "ThreePass1 (mesh) and ThreePass2 (LMM) sort M*sqrt(M) keys in "
         "exactly 3 passes with B = sqrt(M). Paper claim: 3 passes, full "
         "parallelism.");

  const u64 max_m = cli.get_u64("max_m", 16384);
  std::vector<std::string> headers{"algorithm", "M", "B", "D", "N"};
  for (auto& h : report_headers()) headers.push_back(h);
  headers.push_back("wall_s");
  headers.push_back("sim_s");
  Table t(headers);

  for (u64 mem : {1024ull, 4096ull, 16384ull}) {
    if (mem > max_m) continue;
    const auto g = Geom::square(mem);
    const u64 n = mem * g.rpb;
    Rng rng(mem);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    {
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      ThreePassMeshOptions opt;
      opt.mem_records = mem;
      auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row().cell("ThreePass1(mesh)").cell(mem).cell(g.rpb).cell(
          u64{g.disks});
      t.cell(fmt_count(n));
      add_report_cells(t, res.report);
      t.cell(res.report.wall_seconds, 3).cell(res.report.sim_seconds, 1);
    }
    {
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      ThreePassLmmOptions opt;
      opt.mem_records = mem;
      auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row().cell("ThreePass2(LMM)").cell(mem).cell(g.rpb).cell(
          u64{g.disks});
      t.cell(fmt_count(n));
      add_report_cells(t, res.report);
      t.cell(res.report.wall_seconds, 3).cell(res.report.sim_seconds, 1);
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: passes = 3.0 for every row (paper: exactly "
               "three passes in the worst case); util ~= D; the two "
               "algorithms within noise of each other (paper Conclusions).\n";
  return 0;
}
