// E19 — parallel in-core kernels: multi-core inside one job. Three arms:
//
//  1. Kernel speedup: internal_sort_budgeted on an in-memory slab at CPU
//     budgets {1, 2, 4}, byte-equality against the serial std::sort and a
//     wall-clock gate (--gate=S asserts >= S x at 4 threads; CI passes
//     2.0 on its 4-core runners, --gate=0 skips the assertion on
//     single-core boxes where the helpers just time-slice the caller).
//  2. External invariance: ExpectedTwoPass on the memory backend at
//     budgets 1 vs 4 — records, op/block counts and the schedule hash
//     must be byte-identical (the determinism bar), wall clock reported.
//  3. Allocator microbench: alloc/free churn against a fragmented free
//     list; the size-indexed buckets must keep reusing a large span
//     parked behind > kMaxFreeScan small fragments (asserted: the bump
//     cursor does not move during the churn).
//
// A small 3-job SortService contention run at cpu_threads_total=4 seeds
// the cpu.granted / cpu.waiting gauges so the metrics section of the
// bench JSON carries the arbiter's counters.
#include "bench_support.h"
#include "core/expected_two_pass.h"
#include "internal/insort.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "util/cpu_pool.h"
#include "util/trace.h"

using namespace pdm;
using namespace pdm::bench;

namespace {

double best_of(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E19 / parallel in-core kernels",
         "Work-span CpuPool under the in-core leaves: kernel speedup, "
         "byte-for-byte budget invariance, size-indexed allocator reuse.");
  const std::string trace_out = trace_begin(cli);

  const u64 n_kernel = cli.get_u64("n_kernel", u64{1} << 21);
  const double gate = cli.get_double("gate", 0.0);
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");

  JsonWriter jw;
  jw.begin_obj();
  jw.key("n_kernel").value(n_kernel);
  jw.key("gate").value(gate);

  // --- Arm 1: in-core kernel speedup --------------------------------
  Rng rng(1);
  auto base = make_keys(static_cast<usize>(n_kernel), Dist::kUniform, rng);
  auto expected = base;
  std::sort(expected.begin(), expected.end());

  std::cout << "-- kernel: internal_sort_budgeted, n = "
            << fmt_count(n_kernel) << " records --\n";
  Table kt({"threads", "wall_s", "speedup", "bytes_equal"});
  jw.key("cpu").begin_arr();
  double wall1 = 0;
  double speedup4 = 0;
  bool all_equal = true;
  for (usize threads : {usize{1}, usize{2}, usize{4}}) {
    CpuPool pool(threads);
    std::vector<u64> scratch(base.size());
    std::vector<u64> out;
    const double wall = best_of(3, [&] {
      out = base;
      Timer t;
      internal_sort_budgeted(std::span<u64>(out), std::less<u64>{}, pool,
                             std::span<u64>(scratch));
      return t.seconds();
    });
    const bool equal = out == expected;
    all_equal = all_equal && equal;
    if (threads == 1) wall1 = wall;
    const double speedup = wall1 / std::max(1e-9, wall);
    if (threads == 4) speedup4 = speedup;
    kt.row().cell(threads).cell(wall, 4).cell(speedup, 2).cell(equal);
    jw.begin_obj();
    jw.key("threads").value(u64{threads});
    jw.key("wall_s").value(wall);
    jw.key("speedup").value(speedup);
    jw.key("bytes_equal").value(equal);
    jw.end_obj();
  }
  jw.end_arr();
  kt.print(std::cout);
  if (!all_equal) {
    std::cerr << "FAIL: parallel kernel output differs from serial\n";
    return 1;
  }

  // --- Arm 2: external sorter invariance + wall clock ----------------
  const u64 mem = cli.get_u64("m", 16384);
  const auto g = Geom::square(mem);
  const u64 n_ext = cli.get_u64("n", 8 * mem);
  std::cout << "\n-- external: ExpectedTwoPass, memory backend, N = "
            << fmt_count(n_ext) << ", M = " << mem << " --\n";
  Rng erng(2);
  auto edata = make_keys(static_cast<usize>(n_ext), Dist::kUniform, erng);
  Table et({"threads", "wall_s", "speedup", "records_equal", "hash_equal"});
  jw.key("external").begin_arr();
  std::vector<u64> eout0;
  IoStats estats0;
  double ewall1 = 0;
  bool invariant = true;
  for (usize threads : {usize{1}, usize{4}}) {
    auto ctx = make_ctx(g);
    auto in = stage<u64>(*ctx, edata);
    ctx->set_cpu_budget(threads);
    Timer t;
    ExpectedTwoPassOptions o;
    o.mem_records = mem;
    auto res = expected_two_pass_sort<u64>(*ctx, in, o);
    const double wall = t.seconds();
    check_sorted<u64>(res.output, edata.size());
    auto out = res.output.read_all();
    bool records_equal = true;
    bool hash_equal = true;
    if (threads == 1) {
      eout0 = std::move(out);
      estats0 = ctx->stats();
      ewall1 = wall;
    } else {
      records_equal = out == eout0;
      hash_equal =
          ctx->stats().schedule_hash == estats0.schedule_hash &&
          ctx->stats().total_ops() == estats0.total_ops() &&
          ctx->stats().total_blocks() == estats0.total_blocks();
      invariant = invariant && records_equal && hash_equal;
    }
    et.row()
        .cell(threads)
        .cell(wall, 4)
        .cell(ewall1 / std::max(1e-9, wall), 2)
        .cell(records_equal)
        .cell(hash_equal);
    jw.begin_obj();
    jw.key("threads").value(u64{threads});
    jw.key("wall_s").value(wall);
    jw.key("records_equal").value(records_equal);
    jw.key("hash_equal").value(hash_equal);
    jw.end_obj();
  }
  jw.end_arr();
  et.print(std::cout);
  if (!invariant) {
    std::cerr << "FAIL: CPU budget changed records or I/O schedule\n";
    return 1;
  }

  // --- Arm 3: size-indexed allocator reuse ---------------------------
  std::cout << "\n-- allocator: reuse behind " << 2 * DiskAllocator::kMaxFreeScan
            << " fragments --\n";
  DiskAllocator alloc(1);
  std::vector<Extent> freed;
  for (usize i = 0; i < 4 * DiskAllocator::kMaxFreeScan; ++i) {
    Extent e = alloc.alloc_extent(0, 1);
    if (i % 2 == 0) freed.push_back(e);
  }
  for (const auto& e : freed) alloc.free_extent(e);
  Extent big = alloc.alloc_extent(0, 64);
  alloc.free_extent(big);
  const u64 high_water = alloc.used(0);
  const u64 churn = cli.get_u64("alloc_churn", 20000);
  Timer at;
  for (u64 i = 0; i < churn; ++i) {
    Extent e = alloc.alloc_extent(0, 64);
    alloc.free_extent(e);
  }
  const double alloc_s = at.seconds();
  const bool no_bump = alloc.used(0) == high_water;
  const double per_us = 1e6 * alloc_s / static_cast<double>(churn);
  std::cout << churn << " alloc/free cycles of a 64-block span: "
            << per_us << " us/cycle, cursor moved: "
            << (no_bump ? "no" : "YES") << "\n";
  jw.key("allocator").begin_obj();
  jw.key("churn").value(churn);
  jw.key("us_per_cycle").value(per_us);
  jw.key("reused_without_bump").value(no_bump);
  jw.end_obj();
  if (!no_bump) {
    std::cerr << "FAIL: size-indexed free list leaked the span to the "
                 "bump cursor\n";
    return 1;
  }

  // --- Service contention: seed the cpu.* gauges ---------------------
  {
    ServiceConfig cfg;
    cfg.workers = 3;
    cfg.cpu_threads_total = 4;
    SortService svc(std::make_shared<MemoryDiskBackend>(8, 256), cfg);
    Rng srng(3);
    for (int j = 0; j < 3; ++j) {
      SortJobSpec spec;
      spec.name = "e19-contend";
      spec.mem_records = 1024;
      auto data = make_keys(usize{8 * 1024}, Dist::kUniform, srng);
      svc.submit<u64>(std::move(spec), std::move(data), std::less<u64>{},
                      [](const SortResult<u64>&) {});
    }
    svc.drain();
    const ShardLoad l = svc.load();
    std::cout << "\nservice contention: cpu_in_use=" << l.cpu_in_use << "/"
              << l.cpu_total << " after drain (gauges registered)\n";
  }

  const bool gate_pass = gate <= 0.0 || speedup4 >= gate;
  jw.key("speedup4").value(speedup4);
  jw.key("gate_pass").value(gate_pass);
  jw.end_obj();
  if (!json_out.empty()) {
    json_file_update(json_out, "e19_incore_parallel", jw.str());
    json_file_update(json_out, "metrics", metrics_json_section());
    std::cout << "wrote section e19_incore_parallel -> " << json_out << "\n";
  }
  std::cout << "Expected shape: near-linear kernel speedup to the core "
               "count (merge tree is work-span optimal up to the log-depth "
               "merge passes), identical records and schedule hash at "
               "every budget, and allocator reuse that never advances the "
               "high-water mark.\n";
  observability_finish(cli, trace_out);
  if (!gate_pass) {
    std::cerr << "FAIL: kernel speedup at 4 threads " << speedup4
              << "x < gate " << gate << "x\n";
    return 1;
  }
  return 0;
}
