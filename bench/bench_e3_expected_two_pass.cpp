// E3 — Theorems 3.2 + 5.1: ExpectedTwoPass sorts ~M^{3/2}/lambda keys in
// two passes on all but a ~M^-alpha fraction of inputs. This bench sweeps
// N across and beyond the capacity bound, measuring the empirical
// fallback rate and the expected pass count, and compares the §5 engine
// with the §3.2 mesh formulation and Observation 5.1's columnsort-based
// variant capacity.
#include "bench_support.h"
#include "core/capacity.h"
#include "core/expected_two_pass.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E3 / Theorems 3.2 + 5.1",
         "ExpectedTwoPass: 2 passes w.p. >= 1 - M^-alpha for N <= "
         "M^1.5/sqrt((a+2)ln M + 2); on-line detection + 3-pass fallback "
         "otherwise.");

  const u64 mem = cli.get_u64("m", 1024);
  const u64 trials = cli.get_u64("trials", 40);
  const double alpha = cli.get_double("alpha", 1.0);
  const auto g = Geom::square(mem);
  const u64 cap = cap_expected_two_pass(mem, alpha);

  std::cout << "M = " << mem << ", B = " << g.rpb << ", D = " << g.disks
            << ", alpha = " << alpha << "\n"
            << "Theorem 5.1 capacity = " << cap << " records ("
            << fmt_double(static_cast<double>(cap) /
                              (static_cast<double>(mem) * isqrt(mem)),
                          3)
            << " of M^1.5); Theorem 3.2 (mesh) capacity = "
            << cap_expected_two_pass_mesh(mem, alpha)
            << "; Obs 5.1 (columnsort variant) = "
            << static_cast<u64>(static_cast<double>(mem) * isqrt(mem) /
                                std::sqrt(4.0 * ((alpha + 2) *
                                                     std::log(double(mem)) +
                                                 2.0)))
            << "\n\n";

  Table t({"N (runs of M)", "N/cap", "trials", "fallbacks", "fallback rate",
           "mean passes", "theory: 2(1-p)+5p"});
  for (double frac : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    const u64 n = round_down(
        static_cast<u64>(frac * static_cast<double>(cap)), mem);
    if (n == 0 || n > mem * g.rpb) continue;
    u64 fallbacks = 0;
    double pass_sum = 0;
    for (u64 seed = 0; seed < trials; ++seed) {
      auto ctx = make_ctx(g, seed + 1);
      Rng rng(seed * 7919 + 13);
      auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
      auto in = stage<u64>(*ctx, data);
      ExpectedTwoPassOptions opt;
      opt.mem_records = mem;
      opt.alpha = alpha;
      auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      if (res.report.fallback_taken) ++fallbacks;
      pass_sum += res.report.passes;
    }
    const double p = static_cast<double>(fallbacks) /
                     static_cast<double>(trials);
    t.row()
        .cell(fmt_count(n))
        .cell(static_cast<double>(n) / static_cast<double>(cap), 2)
        .cell(trials)
        .cell(fallbacks)
        .cell(p, 3)
        .cell(pass_sum / static_cast<double>(trials), 3)
        .cell(2.0 * (1 - p) + 5.0 * p, 3);
  }
  t.print(std::cout);
  std::cout
      << "Expected shape: zero fallbacks at N/cap <= 1 (Theorem 5.1: "
         "failure prob <= M^-alpha = "
      << fmt_double(std::pow(static_cast<double>(mem), -alpha), 6)
      << "); the failure rate climbs to 1 a small constant factor past "
         "the bound, and mean passes tracks 2(1-p)+(2+3)p.\n";
  return 0;
}
