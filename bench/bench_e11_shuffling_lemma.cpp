// E11 — Lemma 4.2 (the shuffling lemma): after sorting the q-record parts
// of a random permutation and shuffling them, every record is within
// (n/sqrt(q)) sqrt((a+2) ln n + 1) + n/q of its sorted position w.p.
// >= 1 - n^-a. Monte-Carlo sweep over (n, q).
#include "bench_support.h"
#include "theory/shuffling_lemma.h"

using namespace pdm;
using namespace pdm::bench;
using namespace pdm::theory;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E11 / Lemma 4.2",
         "Shuffling lemma: measured max displacement vs the bound "
         "(n/sqrt(q))*sqrt((a+2)ln n + 1) + n/q.");

  Rng rng(cli.get_u64("seed", 7));
  const u64 trials = cli.get_u64("trials", 30);
  const double alpha = cli.get_double("alpha", 1.0);

  Table t({"n", "q", "trials", "worst max-disp", "mean disp (worst trial)",
           "bound", "worst/bound", "violations"});
  for (u64 n : {u64{1} << 12, u64{1} << 14, u64{1} << 16}) {
    for (u64 q : {n / 64, n / 16, n / 4}) {
      if (q == 0 || n % q != 0) continue;
      auto agg = shuffling_trials(n, q, alpha, trials, rng);
      t.row()
          .cell(fmt_count(n))
          .cell(q)
          .cell(trials)
          .cell(agg.worst.max_displacement)
          .cell(agg.worst.mean_displacement, 1)
          .cell(agg.worst.bound, 1)
          .cell(static_cast<double>(agg.worst.max_displacement) /
                    agg.worst.bound,
                3)
          .cell(agg.violations);
    }
  }
  t.print(std::cout);
  std::cout
      << "Expected shape: zero violations everywhere (the lemma holds "
         "w.p. >= 1 - n^-alpha) and worst/bound well below 1 — the bound "
         "is conservative by roughly the sqrt(ln n) factor, which is why "
         "the paper notes it \"yields better constants than the "
         "generalized zero-one principle\" yet is still loose.\n";
  return 0;
}
