// E12 — the §1 motivation: oblivious algorithms *guarantee* full disk
// parallelism; merge-based sorts only achieve it in expectation, and only
// with enough prefetching. Measures parallel-I/O utilization of the
// forecasting multiway merge across lookahead depths and disk counts,
// against the oblivious ThreePass2 at the same N.
#include "bench_support.h"
#include "baselines/multiway_merge.h"
#include "core/three_pass_lmm.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E12 / obliviousness vs forecasting",
         "Disk utilization (mean blocks per parallel I/O): oblivious "
         "ThreePass2 vs multiway merge at increasing prefetch lookahead. "
         "Paper (§1): oblivious algorithms make guaranteed parallelism; "
         "merge sorts depend on data and prefetch luck.");

  const u64 mem = cli.get_u64("m", 4096);
  const u64 s = isqrt(mem);
  const u64 runs = cli.get_u64("runs", 8);
  const u64 n = runs * mem;  // single merge level at fan-in = runs

  Table t({"D", "algorithm", "read ops", "read util", "total passes"});
  for (u64 c : {8ull, 4ull, 2ull}) {  // D = s/c
    const u32 disks = static_cast<u32>(s / c);
    const Geom g{mem, s, disks};
    Rng rng(c);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    {
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      ThreePassLmmOptions opt;
      opt.mem_records = mem;
      auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      const double util = static_cast<double>(res.report.io.blocks_read) /
                          static_cast<double>(res.report.io.read_ops);
      t.row()
          .cell(u64{disks})
          .cell("ThreePass2 (oblivious)")
          .cell(res.report.io.read_ops)
          .cell(fmt_double(util, 2) + "/" + std::to_string(disks))
          .cell(res.report.passes, 3);
    }
    for (usize lookahead : {0ull, 1ull, 2ull, 4ull}) {
      // Skip configurations whose buffer pool does not fit in M.
      if ((runs * (1 + lookahead) + disks) * s > mem) continue;
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      MultiwaySortOptions opt;
      opt.mem_records = mem;
      opt.lookahead = lookahead;
      opt.fan_in = runs;  // one merge level for every configuration
      auto res = multiway_merge_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      const double util = static_cast<double>(res.report.io.blocks_read) /
                          static_cast<double>(res.report.io.read_ops);
      t.row()
          .cell(u64{disks})
          .cell("Multiway lookahead=" + std::to_string(lookahead))
          .cell(res.report.io.read_ops)
          .cell(fmt_double(util, 2) + "/" + std::to_string(disks))
          .cell(res.report.passes, 3);
    }
  }
  t.print(std::cout);

  // Part 2: the adversary. Keys arranged so every merge "wave" needs all
  // runs' next blocks on the same disk — no lookahead depth helps. The
  // oblivious sort's schedule is input-independent, so it is unaffected
  // by construction.
  {
    Table t2({"D", "input", "algorithm", "read util", "total passes"});
    const u64 c = 4;
    const u32 disks = static_cast<u32>(s / c);
    const Geom g{mem, s, disks};
    auto adv = make_merge_adversary(runs, mem, static_cast<usize>(s), disks,
                                    flat_run_start_stride(disks));
    Rng rng(3);
    auto rnd = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    for (bool adversarial : {false, true}) {
      const auto& data = adversarial ? adv : rnd;
      for (usize lookahead : {1ull, 4ull}) {
        if ((runs * (1 + lookahead) + disks) * s > mem) continue;
        auto ctx = make_ctx(g);
        auto in = stage<u64>(*ctx, data);
        MultiwaySortOptions opt;
        opt.mem_records = mem;
        opt.lookahead = lookahead;
        opt.fan_in = runs;
        auto res = multiway_merge_sort<u64>(*ctx, in, opt);
        check_sorted<u64>(res.output, n);
        const double util =
            static_cast<double>(res.report.io.blocks_read) /
            static_cast<double>(res.report.io.read_ops);
        t2.row()
            .cell(u64{disks})
            .cell(adversarial ? "adversarial" : "random")
            .cell("Multiway lookahead=" + std::to_string(lookahead))
            .cell(fmt_double(util, 2) + "/" + std::to_string(disks))
            .cell(res.report.passes, 3);
      }
      {
        auto ctx = make_ctx(g);
        auto in = stage<u64>(*ctx, data);
        ThreePassLmmOptions opt;
        opt.mem_records = mem;
        auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
        check_sorted<u64>(res.output, n);
        const double util =
            static_cast<double>(res.report.io.blocks_read) /
            static_cast<double>(res.report.io.read_ops);
        t2.row()
            .cell(u64{disks})
            .cell(adversarial ? "adversarial" : "random")
            .cell("ThreePass2 (oblivious)")
            .cell(fmt_double(util, 2) + "/" + std::to_string(disks))
            .cell(res.report.passes, 3);
      }
    }
    std::cout << "-- adversarial merge-order input (defeats any lookahead) "
                 "--\n";
    t2.print(std::cout);
  }
  std::cout
      << "Expected shape: the oblivious sort reads at ~D blocks per op at "
         "every D, on every input. Multiway with lookahead 0 collapses "
         "toward 1 block/op; forecasting with lookahead >= 1-2 recovers "
         "most of the gap on random data — but the adversarial input "
         "pins its utilization near 1 at ANY depth, while ThreePass2 is "
         "untouched. Guaranteed vs expected parallelism: the paper's "
         "argument for oblivious algorithms, quantified.\n";
  return 0;
}
