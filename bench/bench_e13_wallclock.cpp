// E13 — end-to-end comparison on file-backed disks (the Dementiev-Sanders
// contrast the paper cites): wall-clock, simulated disk time, and passes
// for every sorter at a common N, plus the same on the in-memory backend
// to separate CPU from I/O.
#include "bench_support.h"
#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/expected_two_pass.h"
#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "pdm/memory_backend.h"
#include "util/trace.h"

#include <filesystem>

using namespace pdm;
using namespace pdm::bench;

namespace {

template <class Fn>
void run_case(Table& t, const char* name, PdmContext& ctx,
              const std::vector<u64>& data, Fn&& fn) {
  auto in = stage<u64>(ctx, data);
  Timer timer;
  auto res = fn(ctx, in);
  check_sorted<u64>(res.output, data.size());
  const double mbps = static_cast<double>(data.size()) * sizeof(u64) /
                      (1e6 * std::max(1e-9, timer.seconds()));
  t.row()
      .cell(name)
      .cell(res.report.passes, 3)
      .cell(res.report.wall_seconds, 3)
      .cell(mbps, 1)
      .cell(res.report.sim_seconds, 1)
      .cell(res.report.fallback_taken);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E13 / end-to-end",
         "Wall-clock + simulated disk time at a common N, file-backed "
         "disks (one file per disk, parallel pread/pwrite) and in-memory "
         "backend.");

  // --trace_out=FILE enables the phase tracer for the whole bench and
  // dumps Chrome trace_event JSON at exit (chrome://tracing / Perfetto);
  // --metrics=1 prints the metrics registry after the run.
  const std::string trace_out = trace_begin(cli);

  const u64 mem = cli.get_u64("m", 16384);
  const auto g = Geom::square(mem);
  const u64 n = cli.get_u64("n", round_down(
                                     cap_expected_two_pass(mem, 1.0), mem));
  Rng rng(1);
  auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
  std::cout << "N = " << fmt_count(n) << " records ("
            << fmt_count(n * sizeof(u64)) << "B), M = " << mem
            << ", B = " << g.rpb << ", D = " << g.disks << "\n";

  for (bool file_backed : {false, true}) {
    Table t({"algorithm", "passes", "wall_s", "MB/s", "sim_disk_s",
             "fallback"});
    auto make = [&]() -> std::unique_ptr<PdmContext> {
      if (file_backed) {
        return make_file_context(g.disks, g.rpb * sizeof(u64),
                                 "/tmp/pdmsort_bench_disks");
      }
      return make_ctx(g);
    };
    {
      auto ctx = make();
      run_case(t, "ExpectedTwoPass", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ExpectedTwoPassOptions o;
                 o.mem_records = mem;
                 return expected_two_pass_sort<u64>(c, in, o);
               });
    }
    {
      auto ctx = make();
      run_case(t, "ThreePass2(LMM)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ThreePassLmmOptions o;
                 o.mem_records = mem;
                 return three_pass_lmm_sort<u64>(c, in, o);
               });
    }
    if (n == mem * g.rpb) {  // the mesh algorithm's exact shape
      auto ctx = make();
      run_case(t, "ThreePass1(mesh)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ThreePassMeshOptions o;
                 o.mem_records = mem;
                 return three_pass_mesh_sort<u64>(c, in, o);
               });
    }
    if (columnsort_geometry(n, mem, g.rpb).ok) {
      auto ctx = make();
      run_case(t, "Columnsort-CC", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ColumnsortOptions o;
                 o.mem_records = mem;
                 return columnsort_cc_sort<u64>(c, in, o);
               });
    }
    {
      auto ctx = make();
      run_case(t, "MultiwayMerge(la=2)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 MultiwaySortOptions o;
                 o.mem_records = mem;
                 o.lookahead = 2;
                 return multiway_merge_sort<u64>(c, in, o);
               });
    }
    std::cout << "-- backend: " << (file_backed ? "files" : "memory")
              << " --\n";
    t.print(std::cout);
  }
  std::filesystem::remove_all("/tmp/pdmsort_bench_disks");
  std::cout
      << "Expected shape: sim_disk_s orders the algorithms by pass count "
         "(2 < 3 < merge-with-misses); wall-clock on the memory backend "
         "is CPU-dominated and much flatter — consistent with the "
         "paper's premise that I/O, not computation, is the metric.\n";

  // --- Async overlap: synchronous vs double-buffered pipeline under a
  // simulated per-op disk latency. Parallel-op accounting must be
  // identical; only the wall clock may move.
  const u64 latency_us = cli.get_u64("latency_us", 200);
  const usize async_depth = static_cast<usize>(cli.get_u64("async_depth", 4));
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");
  std::cout << "\n-- async pipeline overlap (memory backend, simulated "
            << latency_us << "us/op latency, depth " << async_depth
            << ") --\n";
  Table at({"algorithm", "passes", "sync_wall_s", "async_wall_s", "speedup",
            "ops_equal"});
  JsonWriter jw;
  jw.begin_obj();
  jw.key("m").value(mem);
  jw.key("n").value(n);
  jw.key("latency_us").value(latency_us);
  jw.key("async_depth").value(u64{async_depth});
  jw.key("overlap").begin_arr();
  auto make_latency_ctx = [&]() {
    auto ctx = make_ctx(g);
    static_cast<MemoryDiskBackend&>(ctx->backend())
        .set_simulated_latency_us(latency_us);
    return ctx;
  };
  auto overlap_case = [&](const char* name, auto&& fn) {
    double wall[2];
    u64 ops[2];
    for (int pass = 0; pass < 2; ++pass) {
      auto ctx = make_latency_ctx();
      auto in = stage<u64>(*ctx, data);
      const usize depth = pass == 0 ? 0 : async_depth;
      auto res = fn(*ctx, in, depth);
      check_sorted<u64>(res.output, data.size());
      wall[pass] = res.report.wall_seconds;
      ops[pass] = res.report.io.total_ops();
    }
    const double passes = static_cast<double>(ops[0]) /
                          (2.0 * static_cast<double>(n) / (g.rpb * g.disks));
    const double speedup = wall[0] / std::max(1e-9, wall[1]);
    at.row()
        .cell(name)
        .cell(passes, 3)
        .cell(wall[0], 3)
        .cell(wall[1], 3)
        .cell(speedup, 2)
        .cell(ops[0] == ops[1]);
    jw.begin_obj();
    jw.key("algorithm").value(name);
    jw.key("passes").value(passes);
    jw.key("sync_wall_s").value(wall[0]);
    jw.key("async_wall_s").value(wall[1]);
    jw.key("speedup").value(speedup);
    jw.key("ops_equal").value(ops[0] == ops[1]);
    jw.end_obj();
  };
  overlap_case("ExpectedTwoPass",
               [&](PdmContext& c, const StripedRun<u64>& in, usize depth) {
                 ExpectedTwoPassOptions o;
                 o.mem_records = mem;
                 o.async_depth = depth == 0 ? usize{1} : depth;
                 return expected_two_pass_sort<u64>(c, in, o);
               });
  overlap_case("MultiwayMerge(la=2)",
               [&](PdmContext& c, const StripedRun<u64>& in, usize depth) {
                 MultiwaySortOptions o;
                 o.mem_records = mem;
                 o.lookahead = 2;
                 o.async_depth = depth == 0 ? usize{1} : depth;
                 return multiway_merge_sort<u64>(c, in, o);
               });
  overlap_case("RadixSort",
               [&](PdmContext& c, const StripedRun<u64>& in, usize depth) {
                 RadixSortOptions o;
                 o.mem_records = mem;
                 o.key_bits = 32;
                 o.async_depth = depth == 0 ? usize{1} : depth;
                 auto capped = in.read_all();
                 for (auto& k : capped) k &= 0xFFFFFFFFULL;
                 auto run = write_input_run<u64>(c, std::span<const u64>(capped));
                 c.io().reset_stats();
                 return radix_sort<u64>(c, run, o);
               });
  at.print(std::cout);
  jw.end_arr();
  jw.end_obj();
  if (!json_out.empty()) {
    json_file_update(json_out, "e13_wallclock", jw.str());
    std::cout << "wrote section e13_wallclock -> " << json_out << "\n";
  }
  std::cout
      << "Expected shape: identical parallel-op counts (the accounting is "
         "charged at submission), with async wall-clock below sync by up "
         "to the latency fraction of the run — prefetch and write-behind "
         "overlap the simulated positioning delay with computation and "
         "across the D disks.\n";
  observability_finish(cli, trace_out);
  return 0;
}
