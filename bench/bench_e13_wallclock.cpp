// E13 — end-to-end comparison on file-backed disks (the Dementiev-Sanders
// contrast the paper cites): wall-clock, simulated disk time, and passes
// for every sorter at a common N, plus the same on the in-memory backend
// to separate CPU from I/O.
#include "bench_support.h"
#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/expected_two_pass.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"

#include <filesystem>

using namespace pdm;
using namespace pdm::bench;

namespace {

template <class Fn>
void run_case(Table& t, const char* name, PdmContext& ctx,
              const std::vector<u64>& data, Fn&& fn) {
  auto in = stage<u64>(ctx, data);
  Timer timer;
  auto res = fn(ctx, in);
  check_sorted<u64>(res.output, data.size());
  const double mbps = static_cast<double>(data.size()) * sizeof(u64) /
                      (1e6 * std::max(1e-9, timer.seconds()));
  t.row()
      .cell(name)
      .cell(res.report.passes, 3)
      .cell(res.report.wall_seconds, 3)
      .cell(mbps, 1)
      .cell(res.report.sim_seconds, 1)
      .cell(res.report.fallback_taken);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E13 / end-to-end",
         "Wall-clock + simulated disk time at a common N, file-backed "
         "disks (one file per disk, parallel pread/pwrite) and in-memory "
         "backend.");

  const u64 mem = cli.get_u64("m", 16384);
  const auto g = Geom::square(mem);
  const u64 n = cli.get_u64("n", round_down(
                                     cap_expected_two_pass(mem, 1.0), mem));
  Rng rng(1);
  auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
  std::cout << "N = " << fmt_count(n) << " records ("
            << fmt_count(n * sizeof(u64)) << "B), M = " << mem
            << ", B = " << g.rpb << ", D = " << g.disks << "\n";

  for (bool file_backed : {false, true}) {
    Table t({"algorithm", "passes", "wall_s", "MB/s", "sim_disk_s",
             "fallback"});
    auto make = [&]() -> std::unique_ptr<PdmContext> {
      if (file_backed) {
        return make_file_context(g.disks, g.rpb * sizeof(u64),
                                 "/tmp/pdmsort_bench_disks");
      }
      return make_ctx(g);
    };
    {
      auto ctx = make();
      run_case(t, "ExpectedTwoPass", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ExpectedTwoPassOptions o;
                 o.mem_records = mem;
                 return expected_two_pass_sort<u64>(c, in, o);
               });
    }
    {
      auto ctx = make();
      run_case(t, "ThreePass2(LMM)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ThreePassLmmOptions o;
                 o.mem_records = mem;
                 return three_pass_lmm_sort<u64>(c, in, o);
               });
    }
    if (n == mem * g.rpb) {  // the mesh algorithm's exact shape
      auto ctx = make();
      run_case(t, "ThreePass1(mesh)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ThreePassMeshOptions o;
                 o.mem_records = mem;
                 return three_pass_mesh_sort<u64>(c, in, o);
               });
    }
    if (columnsort_geometry(n, mem, g.rpb).ok) {
      auto ctx = make();
      run_case(t, "Columnsort-CC", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 ColumnsortOptions o;
                 o.mem_records = mem;
                 return columnsort_cc_sort<u64>(c, in, o);
               });
    }
    {
      auto ctx = make();
      run_case(t, "MultiwayMerge(la=2)", *ctx, data,
               [&](PdmContext& c, const StripedRun<u64>& in) {
                 MultiwaySortOptions o;
                 o.mem_records = mem;
                 o.lookahead = 2;
                 return multiway_merge_sort<u64>(c, in, o);
               });
    }
    std::cout << "-- backend: " << (file_backed ? "files" : "memory")
              << " --\n";
    t.print(std::cout);
  }
  std::filesystem::remove_all("/tmp/pdmsort_bench_disks");
  std::cout
      << "Expected shape: sim_disk_s orders the algorithms by pass count "
         "(2 < 3 < merge-with-misses); wall-clock on the memory backend "
         "is CPU-dominated and much flatter — consistent with the "
         "paper's premise that I/O, not computation, is the metric.\n";
  return 0;
}
