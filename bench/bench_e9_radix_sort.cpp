// E9 — Theorem 7.2 + Observation 7.2: RadixSort takes about
// (1+nu) log(N/M)/log(M/B) + 1 passes; at N = M^2, B = sqrt(M), C = 4 the
// paper quotes <= 3.6. Sweeps N and the key range; reports the measured
// gap (padding compounding across MSD rounds) and the staged ablation.
#include "bench_support.h"
#include "core/radix_sort.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E9 / Theorem 7.2 + Observation 7.2",
         "RadixSort: (1+nu) log(N/M)/log(M/B) + 1 passes for random "
         "integers; Obs 7.2 example (N = M^2, C = 4) quotes <= 3.6.");

  const u64 mem = cli.get_u64("m", 1024);
  const auto g = Geom::square(mem);
  const double digits = std::log2(static_cast<double>(mem) / g.rpb);

  Table t({"N", "key bits", "mode", "rounds formula", "paper passes",
           "measured passes", "read-p", "write-p"});
  for (u64 n : {16 * mem, 128 * mem, mem * mem}) {
    const double rounds =
        std::log2(static_cast<double>(n) / static_cast<double>(mem)) /
        digits;
    const double paper = 1.25 * std::ceil(rounds) + 1.0;  // mu = 1/C = 0.25
    for (bool staged : {false, true}) {
      auto ctx = make_ctx(g);
      Rng rng(n + staged);
      std::vector<u64> data(static_cast<usize>(n));
      for (auto& x : data) x = rng.below(mem * mem);
      auto in = stage<u64>(*ctx, data);
      RadixSortOptions opt;
      opt.mem_records = mem;
      opt.key_bits = static_cast<u32>(2 * ilog2(mem));
      opt.staged = staged;
      auto res = radix_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row()
          .cell(fmt_count(n))
          .cell(u64{opt.key_bits})
          .cell(staged ? "staged" : "paper")
          .cell(rounds, 2)
          .cell(paper, 2)
          .cell(res.report.passes, 3)
          .cell(res.report.read_passes, 3)
          .cell(res.report.write_passes, 3);
    }
  }
  t.print(std::cout);
  std::cout
      << "Expected shape: a small constant number of passes at every N "
         "(the theorem's substance: ~rounds+1, not log N). The measured "
         "figure exceeds the paper's 3.6 at N = M^2 because the paper's "
         "write-step analysis counts each round's padding but not its "
         "compounding: every MSD round rereads the previous round's "
         "padded blocks (~1.5x per level in paper mode). The staged "
         "extension (carrying partial bucket blocks in memory) removes "
         "most of the gap; EXPERIMENTS.md E9 tabulates the decomposition.\n";
  return 0;
}
