// E14 — in-memory kernel microbenchmarks (google-benchmark): the local
// computation the PDM model treats as free. Quantifies the premise that
// CPU work per pass is far cheaper than the I/O it accompanies.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "internal/insort.h"
#include "internal/loser_tree.h"
#include "internal/radix_partition.h"
#include "util/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pdm {
namespace {

void BM_StdSort(benchmark::State& state) {
  const usize n = static_cast<usize>(state.range(0));
  Rng rng(1);
  auto base = make_keys(n, Dist::kUniform, rng);
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_StdSort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_ParallelSort(benchmark::State& state) {
  const usize n = static_cast<usize>(state.range(0));
  ThreadPool pool(8);
  Rng rng(1);
  auto base = make_keys(n, Dist::kUniform, rng);
  std::vector<u64> scratch(n);
  for (auto _ : state) {
    auto v = base;
    internal_sort(std::span<u64>(v), std::less<u64>{}, &pool,
                  std::span<u64>(scratch));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 18)->Arg(1 << 21);

void BM_LoserTreeMerge(benchmark::State& state) {
  const usize k = static_cast<usize>(state.range(0));
  const usize per = 1 << 14;
  Rng rng(2);
  std::vector<std::vector<u64>> runs(k);
  for (auto& r : runs) {
    r = make_keys(per, Dist::kUniform, rng);
    std::sort(r.begin(), r.end());
  }
  std::vector<u64> out(k * per);
  for (auto _ : state) {
    LoserTree<u64> tree(k);
    std::vector<usize> pos(k, 1);
    for (usize i = 0; i < k; ++i) tree.set_initial(i, runs[i][0]);
    tree.build();
    usize o = 0;
    while (!tree.empty()) {
      const usize s = tree.min_source();
      out[o++] = tree.min_value();
      if (pos[s] < per) {
        tree.replace_min(runs[s][pos[s]++]);
      } else {
        tree.exhaust_min();
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(k * per));
}
BENCHMARK(BM_LoserTreeMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RadixPartition(benchmark::State& state) {
  const usize n = 1 << 20;
  const u32 bits = static_cast<u32>(state.range(0));
  Rng rng(3);
  auto v = make_keys(n, Dist::kUniform, rng);
  std::vector<u64> out(n);
  for (auto _ : state) {
    auto bounds = partition_by_digit<u64>(std::span<const u64>(v),
                                          std::span<u64>(out), 32, bits);
    benchmark::DoNotOptimize(bounds.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_RadixPartition)->Arg(4)->Arg(6)->Arg(8);

void BM_UnshuffleGather(benchmark::State& state) {
  // The stride-m gather of run formation's unshuffled write.
  const usize n = 1 << 20;
  const usize m = static_cast<usize>(state.range(0));
  Rng rng(4);
  auto v = make_keys(n, Dist::kUniform, rng);
  std::vector<u64> out(n);
  const usize p = n / m;
  for (auto _ : state) {
    for (usize j = 0; j < m; ++j) {
      u64* dst = out.data() + j * p;
      for (usize t = 0; t < p; ++t) dst[t] = v[t * m + j];
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_UnshuffleGather)->Arg(16)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace pdm
