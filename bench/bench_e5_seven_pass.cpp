// E5 — Theorem 6.2: SevenPass sorts M^2 keys in seven passes
// (B = sqrt(M)). Sweeps M and the segment count k (N = k * M^{3/2}).
#include "bench_support.h"
#include "core/seven_pass.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E5 / Theorem 6.2",
         "SevenPass sorts M^2 keys in 7 passes with B = sqrt(M): 3 (runs "
         "of M^1.5 via ThreePass2 + folded unshuffle) + 3 (outer group "
         "merges) + 1 (final shuffle-cleanup).");

  const u64 max_m = cli.get_u64("max_m", 4096);
  std::vector<std::string> headers{"M", "B", "D", "N", "N/M^2"};
  for (auto& h : report_headers()) headers.push_back(h);
  headers.push_back("wall_s");
  Table t(headers);

  for (u64 mem : {256ull, 1024ull, 4096ull}) {
    if (mem > max_m) continue;
    const auto g = Geom::square(mem);
    const u64 seg = mem * g.rpb;
    // Full M^2 for the small geometries; cap the largest one by memory.
    std::vector<u64> sizes;
    if (mem <= 1024) {
      sizes = {seg * 2, mem * mem};
    } else {
      sizes = {seg * 4};  // 4 * M^1.5 = 1G records would be M^2; keep RAM sane
    }
    for (u64 n : sizes) {
      const auto geom = Geom::square(mem);
      auto ctx = make_ctx(geom);
      Rng rng(mem + n);
      auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
      auto in = stage<u64>(*ctx, data);
      SevenPassOptions opt;
      opt.mem_records = mem;
      auto res = seven_pass_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row().cell(mem).cell(geom.rpb).cell(u64{geom.disks}).cell(
          fmt_count(n));
      t.cell(static_cast<double>(n) / (static_cast<double>(mem) * mem), 3);
      add_report_cells(t, res.report);
      t.cell(res.report.wall_seconds, 2);
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: ~7.0 passes at every size (deterministic; "
               "independent of input), full utilization.\n";
  return 0;
}
