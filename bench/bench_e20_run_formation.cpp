// E20 — order-adaptive run formation. Three arms:
//
//  1. Near-sorted gate: at N = 8M, a k-displaced near-sorted input under
//     the probing planner must sort in STRICTLY fewer passes than the
//     kFixed baseline plan, with wall clock to match (adaptive wall <=
//     --wall_slack x the baseline; the adaptive plan does half the I/O,
//     so this holds with margin on any backend).
//  2. Determinism bar: random input under the default (probe-less) path,
//     twice — records, op/block counts and the schedule hash must be
//     byte-identical, and the probing planner must pick the SAME plan on
//     random input (the probe estimate ties, ties keep legacy), so seed
//     behavior is untouched where the input has no order to exploit.
//  3. Run-length survey: replacement selection and up/down run counts
//     across the workload generators — expected 2M runs on random input
//     (i.e. about half the fixed-run count), one run on sorted and
//     k-displaced input, and <= 3 runs on reverse input under up/down.
#include "bench_support.h"
#include "core/adaptive.h"
#include "util/trace.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E20 / order-adaptive run formation",
         "Replacement-selection + up/down runs (Bender et al.): near-sorted "
         "inputs plan strictly fewer merge passes; random inputs keep the "
         "byte-identical legacy schedule.");
  const std::string trace_out = trace_begin(cli);

  const u64 mem = cli.get_u64("m", 16384);
  const auto g = Geom::square(mem);
  const u64 n = cli.get_u64("n", 8 * mem);
  const double wall_slack = cli.get_double("wall_slack", 1.25);
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");

  JsonWriter jw;
  jw.begin_obj();
  jw.key("n").value(n);
  jw.key("m").value(mem);

  // --- Arm 1: near-sorted fewer-passes + wall-clock gate --------------
  std::cout << "-- near-sorted (k-displaced), N = " << fmt_count(n)
            << ", M = " << mem << " --\n";
  Rng nrng(1);
  auto near = make_keys(static_cast<usize>(n), Dist::kNearSortedDisplaced,
                        nrng);
  double fixed_passes = 0, fixed_wall = 0, adaptive_passes = 0,
         adaptive_wall = 0;
  std::string fixed_algo, adaptive_algo;
  for (const bool probe : {false, true}) {
    auto ctx = make_ctx(g);
    auto in = stage<u64>(*ctx, near);
    AdaptiveOptions o;
    o.mem_records = mem;
    o.probe = probe;
    Timer t;
    auto res = pdm_sort<u64>(*ctx, in, o);
    const double wall = t.seconds();
    check_sorted<u64>(res.output, n);
    if (probe) {
      adaptive_passes = res.report.passes;
      adaptive_wall = wall;
      adaptive_algo = res.report.algorithm;
    } else {
      fixed_passes = res.report.passes;
      fixed_wall = wall;
      fixed_algo = res.report.algorithm;
    }
  }
  const double wall_ratio = adaptive_wall / std::max(1e-9, fixed_wall);
  const bool gate_fewer_passes = adaptive_passes < fixed_passes;
  const bool gate_wall = wall_ratio <= wall_slack;
  Table nt({"planner", "algo", "passes", "wall_s"});
  nt.row().cell("fixed").cell(fixed_algo).cell(fixed_passes, 2).cell(
      fixed_wall, 4);
  nt.row().cell("probed").cell(adaptive_algo).cell(adaptive_passes, 2).cell(
      adaptive_wall, 4);
  nt.print(std::cout);
  std::cout << "wall ratio (probed/fixed): " << wall_ratio << "\n";
  jw.key("near_sorted").begin_obj();
  jw.key("fixed_algo").value(fixed_algo);
  jw.key("fixed_passes").value(fixed_passes);
  jw.key("fixed_wall_s").value(fixed_wall);
  jw.key("adaptive_algo").value(adaptive_algo);
  jw.key("adaptive_passes").value(adaptive_passes);
  jw.key("adaptive_wall_s").value(adaptive_wall);
  jw.key("wall_ratio").value(wall_ratio);
  jw.key("fewer_passes").value(gate_fewer_passes);
  jw.key("wall_ok").value(gate_wall);
  jw.end_obj();

  // --- Arm 2: random-input determinism bar ----------------------------
  std::cout << "\n-- random input: kFixed default, byte-identical reps --\n";
  Rng rrng(2);
  auto rnd = make_keys(static_cast<usize>(n), Dist::kUniform, rrng);
  std::vector<u64> rec0;
  IoStats stats0;
  std::string random_algo_default, random_algo_probed;
  bool records_equal = true, hash_equal = true;
  for (int rep = 0; rep < 2; ++rep) {
    auto ctx = make_ctx(g);
    auto in = stage<u64>(*ctx, rnd);
    AdaptiveOptions o;
    o.mem_records = mem;
    auto res = pdm_sort<u64>(*ctx, in, o);
    const IoStats s = ctx->stats();
    auto rec = res.output.read_all();
    random_algo_default = res.report.algorithm;
    if (rep == 0) {
      rec0 = std::move(rec);
      stats0 = s;
    } else {
      records_equal = rec == rec0;
      hash_equal = s.schedule_hash == stats0.schedule_hash &&
                   s.total_ops() == stats0.total_ops() &&
                   s.total_blocks() == stats0.total_blocks();
    }
  }
  {
    // The probing planner on the same random input must not change plans.
    auto ctx = make_ctx(g);
    auto in = stage<u64>(*ctx, rnd);
    AdaptiveOptions o;
    o.mem_records = mem;
    o.probe = true;
    auto res = pdm_sort<u64>(*ctx, in, o);
    check_sorted<u64>(res.output, n);
    random_algo_probed = res.report.algorithm;
  }
  const bool plan_unchanged = random_algo_probed == random_algo_default;
  std::cout << "records_equal=" << records_equal
            << " hash_equal=" << hash_equal << " plan(default)="
            << random_algo_default << " plan(probed)=" << random_algo_probed
            << "\n";
  jw.key("random_invariance").begin_obj();
  jw.key("records_equal").value(records_equal);
  jw.key("hash_equal").value(hash_equal);
  jw.key("algo").value(random_algo_default);
  jw.key("plan_unchanged").value(plan_unchanged);
  jw.end_obj();

  // --- Arm 3: run-length survey across workloads ----------------------
  std::cout << "\n-- run formation survey (runs; fixed would be "
            << n / mem << ") --\n";
  Table st({"mode", "dist", "runs", "mean_len/M"});
  jw.key("survey").begin_arr();
  bool survey_ok = true;
  for (auto mode : {RunFormationMode::kReplacementSelection,
                    RunFormationMode::kUpDown}) {
    for (Dist d : {Dist::kUniform, Dist::kSorted, Dist::kReverse,
                   Dist::kNearSortedDisplaced, Dist::kClustered}) {
      Rng rng(7);
      auto data = make_keys(static_cast<usize>(n), d, rng);
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      RunFormationOptions opt;
      opt.run_len = mem;
      opt.mode = mode;
      auto runs = form_runs_flat<u64>(*ctx, in, opt);
      const double mean_len =
          static_cast<double>(n) / static_cast<double>(runs.size());
      st.row()
          .cell(run_formation_mode_name(mode))
          .cell(dist_name(d))
          .cell(u64{runs.size()})
          .cell(mean_len / static_cast<double>(mem), 2);
      jw.begin_obj();
      jw.key("mode").value(run_formation_mode_name(mode));
      jw.key("dist").value(dist_name(d));
      jw.key("runs").value(u64{runs.size()});
      jw.key("mean_len_over_m").value(mean_len / static_cast<double>(mem));
      jw.end_obj();
      if (d == Dist::kSorted || d == Dist::kNearSortedDisplaced) {
        survey_ok = survey_ok && runs.size() == 1;
      }
      if (d == Dist::kUniform &&
          mode == RunFormationMode::kReplacementSelection) {
        // Expected run length 2M: strictly fewer runs than fixed N/M.
        // (Up/down is not gated here: on random input alternating runs
        // are shorter in expectation and each descending run can split
        // off a sub-block mini-run; its win is the reverse/clustered
        // collapse, gated below.)
        survey_ok = survey_ok && runs.size() < n / mem;
      }
      if (d == Dist::kReverse && mode == RunFormationMode::kUpDown) {
        survey_ok = survey_ok && runs.size() <= 3;
      }
    }
  }
  jw.end_arr();
  st.print(std::cout);

  const bool gate_pass =
      gate_fewer_passes && gate_wall && records_equal && hash_equal &&
      plan_unchanged && survey_ok;
  jw.key("survey_ok").value(survey_ok);
  jw.key("gate_pass").value(gate_pass);
  jw.end_obj();
  if (!json_out.empty()) {
    json_file_update(json_out, "e20_run_formation", jw.str());
    json_file_update(json_out, "metrics", metrics_json_section());
    std::cout << "wrote section e20_run_formation -> " << json_out << "\n";
  }
  std::cout << "Expected shape: the probed planner sorts the near-sorted "
               "input in a single formation pass (runs collapse to 1) while "
               "the fixed plan pays its full pass budget — and this input's "
               "key concentration even trips ExpectedTwoPass's fallback; "
               "random input keeps the legacy plan, records and schedule "
               "hash bit for bit; replacement selection cuts the run count "
               "on random input (expected 2M run length).\n";
  observability_finish(cli, trace_out);
  if (!gate_pass) {
    std::cerr << "FAIL: "
              << (!gate_fewer_passes ? "near-sorted did not plan fewer passes"
                  : !gate_wall       ? "wall clock did not match fewer passes"
                  : !records_equal || !hash_equal
                      ? "kFixed default no longer byte-identical"
                  : !plan_unchanged ? "probe changed the random-input plan"
                                    : "run-length survey violated bounds")
              << "\n";
    return 1;
  }
  return 0;
}
