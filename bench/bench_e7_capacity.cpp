// E7 — the capacity table (Observations 4.1, 5.1, 6.1 and the §1 "New
// Results" list): how many keys each method sorts at its pass budget.
// Analytic columns for every method; runnable methods verified by an
// actual sort at (a divisor-friendly fraction of) the stated capacity.
#include "bench_support.h"
#include "baselines/columnsort.h"
#include "core/capacity.h"
#include "core/expected_six_pass.h"
#include "core/expected_three_pass.h"
#include "core/expected_two_pass.h"
#include "core/seven_pass.h"
#include "core/three_pass_lmm.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E7 / capacity table",
         "Keys sorted per pass budget at B = sqrt(M) (except columnsort "
         "rows). Paper: ThreePass sorts M^1.5 vs columnsort's "
         "M*sqrt(M/2) (Obs 4.1); ExpectedTwoPass ~M^1.5/lambda (Thm 5.1) "
         "vs the columnsort variant's /2*lambda (Obs 5.1).");

  const u64 mem = cli.get_u64("m", 4096);
  const double alpha = cli.get_double("alpha", 1.0);
  const auto g = Geom::square(mem);
  const double m15 = static_cast<double>(mem) * isqrt(mem);

  Table t({"method", "passes", "capacity (records)", "vs M^1.5", "verified"});

  auto verify = [&](auto&& fn, u64 n) -> bool {
    auto ctx = make_ctx(g);
    Rng rng(n);
    auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
    auto in = stage<u64>(*ctx, data);
    auto res = fn(*ctx, in);
    check_sorted<u64>(res.output, n);
    return !res.report.fallback_taken;
  };

  {
    const u64 cap = round_down(cap_expected_two_pass(mem, alpha), mem);
    const bool ok = verify(
        [&](PdmContext& c, const StripedRun<u64>& in) {
          ExpectedTwoPassOptions o;
          o.mem_records = mem;
          o.alpha = alpha;
          return expected_two_pass_sort<u64>(c, in, o);
        },
        cap);
    t.row()
        .cell("ExpectedTwoPass (Thm 5.1)")
        .cell("2 expected")
        .cell(fmt_count(cap))
        .cell(static_cast<double>(cap) / m15, 3)
        .cell(ok);
  }
  {
    const u64 cap = cap_expected_two_pass_mesh(mem, alpha);
    t.row()
        .cell("mesh variant (Thm 3.2)")
        .cell("2 expected")
        .cell(fmt_count(cap))
        .cell(static_cast<double>(cap) / m15, 3)
        .cell("(same engine)");
  }
  {
    // Observation 5.1: columnsort-based expected-two-pass variant sorts
    // M^1.5/sqrt(4((a+2)ln M + 2)) — half of Theorem 5.1's count.
    const u64 cap = static_cast<u64>(
        m15 / std::sqrt(4.0 * ((alpha + 2.0) *
                                   std::log(static_cast<double>(mem)) +
                               2.0)));
    t.row()
        .cell("columnsort variant (Obs 5.1)")
        .cell("2 expected")
        .cell(fmt_count(cap))
        .cell(static_cast<double>(cap) / m15, 3)
        .cell("(analytic)");
  }
  {
    const u64 cap = cap_three_pass(mem, g.rpb);
    const bool ok = verify(
        [&](PdmContext& c, const StripedRun<u64>& in) {
          ThreePassLmmOptions o;
          o.mem_records = mem;
          return three_pass_lmm_sort<u64>(c, in, o);
        },
        cap);
    t.row()
        .cell("ThreePass1/2 (Thm 3.1, Lem 4.1)")
        .cell("3")
        .cell(fmt_count(cap))
        .cell(1.0, 3)
        .cell(ok);
  }
  {
    const u64 cap = max_columnsort_n(mem, g.rpb);
    const bool ok = verify(
        [&](PdmContext& c, const StripedRun<u64>& in) {
          ColumnsortOptions o;
          o.mem_records = mem;
          return columnsort_cc_sort<u64>(c, in, o);
        },
        cap);
    t.row()
        .cell("CC columnsort [7] (Obs 4.1)")
        .cell("3")
        .cell(fmt_count(cap) + " (theory " +
              fmt_count(cap_columnsort_cc(mem)) + ")")
        .cell(static_cast<double>(cap_columnsort_cc(mem)) / m15, 3)
        .cell(ok);
  }
  {
    const u64 cap = cap_expected_three_pass(mem, alpha);
    t.row()
        .cell("ExpectedThreePass (Thm 6.1)")
        .cell("3 expected")
        .cell(fmt_count(cap))
        .cell(static_cast<double>(cap) / m15, 3)
        .cell("(E4 verifies)");
  }
  {
    t.row()
        .cell("subblock columnsort [8] (Obs 6.1)")
        .cell("4")
        .cell(fmt_count(cap_subblock_columnsort(mem)))
        .cell(static_cast<double>(cap_subblock_columnsort(mem)) / m15, 3)
        .cell("(analytic; paper argues no expected-pass version exists)");
  }
  {
    t.row()
        .cell("ExpectedSixPass (Thm 6.3)")
        .cell("6 expected")
        .cell(fmt_count(cap_expected_six_pass(mem, alpha)))
        .cell(static_cast<double>(cap_expected_six_pass(mem, alpha)) / m15, 3)
        .cell("(E6 verifies)");
  }
  {
    t.row()
        .cell("SevenPass (Thm 6.2)")
        .cell("7")
        .cell(fmt_count(cap_seven_pass(mem)))
        .cell(static_cast<double>(cap_seven_pass(mem)) / m15, 3)
        .cell("(E5 verifies)");
  }
  t.print(std::cout);
  std::cout << "Expected shape: ThreePass capacity / columnsort capacity "
               "~= sqrt(2) (Obs 4.1; block-alignment shaves the realized "
               "columnsort figure further); Thm 5.1's capacity ~2x Obs "
               "5.1's.\n";
  return 0;
}
