// E6 — Theorem 6.3: ExpectedSixPass sorts M^2/lambda keys in six expected
// passes; head-to-head with SevenPass at the same N.
#include "bench_support.h"
#include "core/capacity.h"
#include "core/expected_six_pass.h"
#include "core/seven_pass.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E6 / Theorem 6.3",
         "ExpectedSixPass sorts M^2/sqrt((a+2)ln M + 2) keys in 6 expected "
         "passes (SevenPass with the run-formation stage replaced by "
         "ExpectedTwoPass).");

  const u64 mem = cli.get_u64("m", 1024);
  const double alpha = cli.get_double("alpha", 1.0);
  const auto g = Geom::square(mem);
  const u64 cap6 = cap_expected_six_pass(mem, alpha);
  const u64 seg = mem * g.rpb;

  std::cout << "M = " << mem << ", B = " << g.rpb << ", D = " << g.disks
            << "; Theorem 6.3 capacity = " << fmt_count(cap6) << " ("
            << fmt_double(static_cast<double>(cap6) /
                              (static_cast<double>(mem) * mem),
                          3)
            << " of M^2)\n\n";

  std::vector<std::string> headers{"algorithm", "N"};
  for (auto& h : report_headers()) headers.push_back(h);
  Table t(headers);

  for (u64 k : {2ull, 4ull, 8ull}) {
    const u64 n = k * seg;
    if (n > cap6) continue;
    Rng rng(k);
    auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);
    {
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      ExpectedSixPassOptions opt;
      opt.mem_records = mem;
      opt.alpha = alpha;
      auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row().cell("ExpectedSixPass").cell(fmt_count(n));
      add_report_cells(t, res.report);
    }
    {
      auto ctx = make_ctx(g);
      auto in = stage<u64>(*ctx, data);
      SevenPassOptions opt;
      opt.mem_records = mem;
      auto res = seven_pass_sort<u64>(*ctx, in, opt);
      check_sorted<u64>(res.output, n);
      t.row().cell("SevenPass").cell(fmt_count(n));
      add_report_cells(t, res.report);
    }
  }
  t.print(std::cout);
  std::cout << "Expected shape: ExpectedSixPass ~6.0 passes without "
               "fallback vs SevenPass 7.0 at the same N — the one-pass "
               "saving Theorem 6.3 claims.\n";
  return 0;
}
