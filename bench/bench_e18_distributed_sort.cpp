// E18 — one giant sort across the cluster (distributed sample-sort).
//
// The paper's bounds are per-array: a dataset several times one shard's
// working size either doesn't fit a single shard or falls off the small-
// pass capacity cliff (cap_expected_two_pass ~ M^1.5) and pays extra
// passes. Cluster::submit_distributed splits the giant dataset by sampled
// splitters into P contiguous key ranges, sorts each range on its own
// shard with the paper's small-pass algorithms, exports the sorted ranges
// through the extent layer and concatenates in splitter order.
//
// This bench sorts a dataset ~P x one shard's job size two ways:
//
//  - baseline: a 1-shard cluster runs the whole dataset as one job
//    (feasible here — the memory backend grows on demand — but over the
//    2-pass capacity, so the planner falls back to ThreePassLmm);
//  - distributed: a P-shard cluster runs the same dataset through
//    submit_distributed; every range stays under the 2-pass capacity.
//
// Gated: distributed wall clock must beat the single shard by
// >= --dist_gate (default 2.5x at P = 4; P-way parallelism multiplied by
// the 3-pass -> 2-pass cliff can push well past Px, the export read and
// splitter work eat some of it back). Correctness is checked
// exactly (distributed output == baseline output), and every range's
// algorithm + pass count must match choose_plan for its size — the
// per-shard paper bounds.
#include <algorithm>

#include "bench_support.h"
#include "cluster/cluster.h"
#include "core/adaptive.h"
#include "pdm/backend_factory.h"

using namespace pdm;
using namespace pdm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  banner("E18 / distributed sample-sort",
         "One dataset ~4x a shard's job size: single-shard sort vs "
         "sample-sort split across 4 shards, each range at its "
         "single-shard pass count, concatenated in splitter order.");

  const u64 mem = cli.get_u64("m", 4096);
  const u64 rpb = cli.get_u64("rpb", 64);
  const u32 disks = static_cast<u32>(cli.get_u64("disks", 4));
  const u32 shards = static_cast<u32>(cli.get_u64("shards", 4));
  const u64 n = cli.get_u64("n", 0) != 0 ? cli.get_u64("n", 0)
                                         : u64{16} * mem;  // 4x per shard
  const u64 latency_us = cli.get_u64("latency_us", 60);
  const u32 oversample = static_cast<u32>(cli.get_u64("oversample", 64));
  const u64 repeats = cli.get_u64("repeats", 3);
  const double gate = cli.get_double("dist_gate", 2.5);
  const std::string json_out = cli.get("json_out", "BENCH_PR10.json");
  // --trace_out=FILE / --metrics=1: phase-tracer dump and metrics
  // registry exposition (shared serving-bench flags, bench_support.h).
  const std::string trace_out = trace_begin(cli);
  PDM_CHECK(n % mem == 0, "E18: n must be a multiple of m");

  Rng rng(18);
  const auto data = make_keys(static_cast<usize>(n), Dist::kPermutation, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());

  std::cout << n << " u64 records, M = " << mem << ", B = " << rpb
            << " records (" << rpb * sizeof(u64) << " bytes), D = " << disks
            << " per shard, " << shards << " shards, disk latency "
            << latency_us << " us/op\n\n";

  ClusterConfig cfg;
  cfg.shard.workers = 1;
  cfg.shard.io_depth_total = 4;
  cfg.shard.seed = 42;

  SortJobSpec spec;
  spec.mem_records = mem;

  // --- baseline: the whole dataset as one job on one shard --------------
  double base_s = -1;
  SortReport base_report;
  for (u64 rep = 0; rep < repeats; ++rep) {
    ClusterConfig c1 = cfg;
    c1.shards = 1;
    Cluster one(memory_backend_factory(disks, rpb * sizeof(u64), latency_us),
                c1);
    std::vector<u64> out;
    SortReport report;
    SortJobSpec s = spec;
    s.name = "e18-baseline";
    Timer timer;
    const JobId id = one.submit<u64>(
        s, data, std::less<u64>{}, [&](const SortResult<u64>& res) {
          out = res.output.read_all();
          report = res.report;
        });
    PDM_CHECK(one.wait(id).state == JobState::kDone, "E18: baseline failed");
    const double secs = timer.seconds();
    PDM_CHECK(out == expected, "E18: baseline output wrong");
    if (base_s < 0 || secs < base_s) {
      base_s = secs;
      base_report = report;
    }
  }

  // --- distributed: the same dataset via submit_distributed -------------
  double dist_s = -1;
  DistributedInfo best;
  for (u64 rep = 0; rep < repeats; ++rep) {
    ClusterConfig cp = cfg;
    cp.shards = shards;
    Cluster cluster(
        memory_backend_factory(disks, rpb * sizeof(u64), latency_us), cp);
    std::vector<u64> out;
    DistributedOptions opts;
    opts.oversample = oversample;
    SortJobSpec s = spec;
    s.name = "e18-dist";
    Timer timer;
    const JobId id = cluster.submit_distributed<u64>(
        s, data, opts, std::less<u64>{},
        [&](const DistributedSortResult<u64>& res) { out = res.output; });
    const DistributedInfo info = cluster.distributed_wait(id);
    const double secs = timer.seconds();
    PDM_CHECK(info.state == JobState::kDone, "E18: distributed sort failed");
    PDM_CHECK(out == expected, "E18: distributed output wrong");
    if (dist_s < 0 || secs < dist_s) {
      dist_s = secs;
      best = info;
    }
  }

  // Per-range paper bounds: each range must run the planner's algorithm
  // for its size at the planner's pass count (within report noise).
  double max_range_passes = 0;
  for (usize r = 0; r < best.range_records.size(); ++r) {
    const u64 nr = best.range_records[r];
    if (nr == 0) continue;
    const PlanEntry plan = choose_plan(nr, mem, rpb, 1.0);
    const SortReport& rep = best.range_reports[r];
    PDM_CHECK(rep.algorithm == algo_name(plan.algo),
              "E18: range " + std::to_string(r) + " ran " + rep.algorithm +
                  ", planner says " + algo_name(plan.algo));
    PDM_CHECK(rep.passes <= plan.expected_passes + 0.25,
              "E18: range " + std::to_string(r) +
                  " exceeded its paper pass bound");
    max_range_passes = std::max(max_range_passes, rep.passes);
  }

  const double speedup = base_s / std::max(1e-9, dist_s);

  Table t({"arm", "shards", "records", "algo", "passes", "wall_s",
           "speedup"});
  t.row()
      .cell("single-shard")
      .cell(u64{1})
      .cell(n)
      .cell(base_report.algorithm)
      .cell(base_report.passes, 3)
      .cell(base_s, 3)
      .cell(1.0, 2);
  t.row()
      .cell("distributed")
      .cell(u64{shards})
      .cell(n)
      .cell("per-range max")
      .cell(max_range_passes, 3)
      .cell(dist_s, 3)
      .cell(speedup, 2);
  t.print(std::cout);

  std::cout << "\nranges:";
  for (u64 r : best.range_records) std::cout << " " << r;
  std::cout << "  (skew " << fmt_double(best.skew, 3) << ", oversample "
            << oversample << ")\n";
  std::cout << "Expected shape: the giant dataset is over the 2-pass "
               "capacity cliff, so the single shard pays "
            << fmt_double(base_report.passes, 1)
            << " passes over 4x the data; each range stays under the "
               "cliff at ~"
            << fmt_double(max_range_passes, 1)
            << " passes over N/4, and the shards run them in parallel. "
               "The two effects multiply — the speedup can exceed the "
            << shards
            << "x parallelism alone — while the export read and splitter "
               "selection eat some of it back.\n\n";

  JsonWriter jw;
  jw.begin_obj();
  jw.key("n").value(n);
  jw.key("m").value(mem);
  jw.key("rpb").value(rpb);
  jw.key("disks").value(u64{disks});
  jw.key("shards").value(u64{shards});
  jw.key("latency_us").value(latency_us);
  jw.key("oversample").value(u64{oversample});
  jw.key("baseline_algo").value(base_report.algorithm);
  jw.key("baseline_passes").value(base_report.passes);
  jw.key("baseline_wall_s").value(base_s);
  jw.key("dist_wall_s").value(dist_s);
  jw.key("speedup").value(speedup);
  jw.key("max_range_passes").value(max_range_passes);
  jw.key("skew").value(best.skew);
  jw.key("range_records").begin_arr();
  for (u64 r : best.range_records) jw.value(r);
  jw.end_arr();
  jw.key("gate").value(gate);
  jw.end_obj();
  if (!json_out.empty()) {
    json_file_update(json_out, "e18_distributed_sort", jw.str());
    std::cout << "wrote section e18_distributed_sort -> " << json_out
              << "\n";
  }

  std::cout << "distributed gate (" << shards
            << " shards): " << fmt_double(speedup, 2) << "x, need >= "
            << gate << "x: "
            << (gate <= 0 || speedup >= gate ? "PASS" : "FAIL") << "\n";
  PDM_CHECK(gate <= 0 || speedup >= gate,
            "E18 gate failed: distributed speedup below threshold");
  observability_finish(cli, trace_out);
  return 0;
}
