// Cluster-wide serving metrics: per-shard ServiceStats rolled up into
// cluster totals, plus the routing-quality figures (placement counts,
// spills, imbalance) that the cluster benches gate on.
//
// The exact-sum invariant composes across the layers: within a shard,
// per-job IoStats deltas sum exactly to that shard's SharedIoTotals
// (PR 2's invariant); here, the per-shard totals sum exactly to
// ClusterStats::io — nothing double-counted, nothing lost, at either
// level. tests/cluster_test.cpp asserts both under a concurrent stress.
#pragma once

#include <vector>

#include "service/service_stats.h"

namespace pdm {

struct ClusterStats {
  usize shards = 0;  // slots ever created, retired ones included
  usize active = 0;  // currently active (placeable) shards

  /// Sums of the per-shard lifetime counters (live shards at their
  /// current values, retired shards at their final snapshot), plus the
  /// cluster-side hold-queue terminals — so submitted always equals
  /// completed + failed + cancelled + rejected + still-live jobs.
  u64 submitted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 rejected = 0;
  u64 deadline_missed = 0;
  u64 retained = 0;
  u64 batches_run = 0;

  /// Routing outcomes (counted by the cluster, not the shards): jobs
  /// placed off their preferred shard because its budget could never
  /// admit them, and jobs no shard could admit (a subset of `rejected`).
  u64 spilled = 0;
  u64 rejected_cluster_wide = 0;

  /// Hold queue + work stealing: jobs currently parked, jobs that ever
  /// parked, parked jobs cancelled/rejected before reaching a shard,
  /// and held jobs dispatched to a shard other than their placed one.
  u64 held_now = 0;
  u64 held_total = 0;
  u64 held_cancelled = 0;
  u64 held_rejected = 0;
  /// Subset of held_rejected: parked jobs rejected by the pump's deadline
  /// admission check (calibrated run estimate exceeded the remaining
  /// deadline budget, so dispatch could only have produced a late job).
  u64 held_rejected_deadline = 0;
  u64 stolen = 0;

  /// Elasticity: queued jobs moved off a draining shard, and lifetime
  /// topology changes. cluster_records counts terminal records held at
  /// cluster level (retired shards' jobs + hold-queue terminals),
  /// included in `retained`.
  u64 migrated = 0;
  u64 shards_added = 0;
  u64 shards_drained = 0;
  u64 cluster_records = 0;

  /// Distributed sample-sorts (submit_distributed). Coordinators are not
  /// jobs — `submitted` etc. count their per-range sub-jobs, these count
  /// whole distributed sorts. dist_range_records / dist_skew describe
  /// the most recently finished one (per-range record counts after
  /// feasibility rounding; skew = max/mean of the splitter partition —
  /// 1.0 is perfect balance); dist_skew_max is the lifetime worst.
  u64 distributed_jobs = 0;
  u64 distributed_active = 0;
  u64 distributed_completed = 0;
  u64 distributed_cancelled = 0;
  u64 distributed_failed = 0;
  std::vector<u64> dist_range_records;
  double dist_skew = 0;
  double dist_skew_max = 0;

  /// Exact sum of the per-shard SharedIoTotals snapshots.
  IoStats io;

  /// Sum of per-shard peak reservations (shards peak independently).
  usize peak_memory_bytes = 0;

  /// Completed jobs over the widest per-shard busy window: a cluster-level
  /// throughput figure (shards run concurrently, so the max window is the
  /// cluster's busy time up to skew in shard start times).
  double jobs_per_sec = 0;

  /// Jobs routed to each shard, and the resulting imbalance ratios
  /// (max/mean; 1.0 = perfectly even, higher = hotter hot shard). I/O
  /// imbalance weighs by blocks moved, so a shard stuck with all the big
  /// jobs shows up even when job counts look even.
  std::vector<u64> jobs_per_shard;
  double job_imbalance = 0;
  std::vector<u64> blocks_per_shard;
  double io_imbalance = 0;

  /// Full per-shard snapshots, indexed by shard.
  std::vector<ServiceStats> per_shard;
};

/// max/mean of a non-negative sample; 0 when the sample is empty or all
/// zero (no traffic = no imbalance to speak of).
inline double imbalance_ratio(const std::vector<u64>& xs) {
  if (xs.empty()) return 0;
  u64 max = 0;
  u64 sum = 0;
  for (u64 x : xs) {
    max = std::max(max, x);
    sum += x;
  }
  if (sum == 0) return 0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(xs.size());
  return static_cast<double>(max) / mean;
}

}  // namespace pdm
