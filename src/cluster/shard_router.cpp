#include "cluster/shard_router.h"

namespace pdm {

RoutePolicy route_policy_from_name(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_loaded") return RoutePolicy::kLeastLoaded;
  if (name == "locality_hash") return RoutePolicy::kLocalityHash;
  fail("unknown routing policy: " + name +
       " (want round_robin | least_loaded | locality_hash)");
}

u64 locality_hash(const std::string& key) {
  u64 h = 14695981039346656037ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

ShardRouter::ShardRouter(usize shards, RoutePolicy policy, u64 seed)
    : shards_(shards), policy_(policy), rng_(seed) {
  PDM_CHECK(shards > 0, "router needs at least one shard");
}

u32 ShardRouter::round_robin() {
  return static_cast<u32>(rr_++ % shards_);
}

void ShardRouter::note_spill(const std::string& key, u32 to_shard) {
  if (spill_promote_after_ == 0 || key.empty()) return;
  if (sticky_.size() >= kStickyCap && !sticky_.contains(key)) {
    // Bounded tenant tracking: drop an arbitrary entry (re-promotion only
    // costs the evicted tenant spill_promote_after more scans).
    sticky_.erase(sticky_.begin());
  }
  Sticky& s = sticky_[key];
  s.target = to_shard;
  if (!s.pinned && ++s.streak >= spill_promote_after_) s.pinned = true;
}

void ShardRouter::note_preferred_ok(const std::string& key) {
  if (key.empty()) return;
  sticky_.erase(key);
}

std::optional<u32> ShardRouter::pinned_shard(const std::string& key) const {
  auto it = sticky_.find(key);
  if (it == sticky_.end() || !it->second.pinned) return std::nullopt;
  return it->second.target;
}

u32 ShardRouter::place(const SortJobSpec& spec,
                       std::span<const ShardLoad> loads) {
  PDM_CHECK(loads.size() == shards_,
            "router: loads snapshot does not match the shard count");
  if (shards_ == 1) return 0;
  if (auto pinned = pinned_shard(spec.locality_key)) return *pinned;
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      return round_robin();
    case RoutePolicy::kLeastLoaded: {
      // Power of two choices; distinct samples, ties to the first.
      const u32 a = static_cast<u32>(rng_.below(shards_));
      u32 b = static_cast<u32>(rng_.below(shards_ - 1));
      if (b >= a) ++b;
      return loads[b].score() < loads[a].score() ? b : a;
    }
    case RoutePolicy::kLocalityHash:
      if (spec.locality_key.empty()) return round_robin();
      return static_cast<u32>(locality_hash(spec.locality_key) % shards_);
  }
  return 0;
}

}  // namespace pdm
