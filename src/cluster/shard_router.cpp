#include "cluster/shard_router.h"

#include <algorithm>

namespace pdm {

RoutePolicy route_policy_from_name(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_loaded") return RoutePolicy::kLeastLoaded;
  if (name == "locality_hash") return RoutePolicy::kLocalityHash;
  fail("unknown routing policy: " + name +
       " (want round_robin | least_loaded | locality_hash)");
}

u64 locality_hash(const std::string& key) {
  u64 h = 14695981039346656037ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

ShardRouter::ShardRouter(usize shards, RoutePolicy policy, u64 seed,
                         u32 ring_vnodes)
    : policy_(policy), ring_(ring_vnodes), rng_(seed) {
  PDM_CHECK(shards > 0, "router needs at least one shard");
  active_.reserve(shards);
  for (u32 i = 0; i < shards; ++i) {
    active_.push_back(i);
    ring_.add(i);
  }
}

void ShardRouter::add_shard(u32 id) {
  PDM_CHECK(!is_active(id), "router: shard already active");
  active_.insert(std::lower_bound(active_.begin(), active_.end(), id), id);
  ring_.add(id);
}

void ShardRouter::remove_shard(u32 id) {
  PDM_CHECK(is_active(id), "router: shard not active");
  PDM_CHECK(active_.size() > 1, "router: cannot remove the last shard");
  active_.erase(std::lower_bound(active_.begin(), active_.end(), id));
  ring_.remove(id);
  // Pins and streaks aimed at the leaving shard dissolve; the tenants
  // re-learn their homes on the shrunken topology.
  std::erase_if(sticky_,
                [&](const auto& kv) { return kv.second.target == id; });
}

bool ShardRouter::is_active(u32 id) const {
  return std::binary_search(active_.begin(), active_.end(), id);
}

u32 ShardRouter::round_robin() {
  return active_[static_cast<usize>(rr_++ % active_.size())];
}

void ShardRouter::note_spill(const std::string& key, u32 to_shard) {
  if (spill_promote_after_ == 0 || key.empty()) return;
  if (sticky_.size() >= kStickyCap && !sticky_.contains(key)) {
    // Bounded tenant tracking: drop an arbitrary entry (re-promotion only
    // costs the evicted tenant spill_promote_after more scans).
    sticky_.erase(sticky_.begin());
  }
  Sticky& s = sticky_[key];
  s.target = to_shard;
  if (!s.pinned && ++s.streak >= spill_promote_after_) s.pinned = true;
}

void ShardRouter::note_preferred_ok(const std::string& key) {
  if (key.empty()) return;
  sticky_.erase(key);
}

std::optional<u32> ShardRouter::pinned_shard(const std::string& key) const {
  auto it = sticky_.find(key);
  if (it == sticky_.end() || !it->second.pinned) return std::nullopt;
  if (!is_active(it->second.target)) return std::nullopt;
  return it->second.target;
}

u32 ShardRouter::place(const SortJobSpec& spec,
                       std::span<const ShardLoad> loads) {
  PDM_CHECK(!active_.empty(), "router: no active shards");
  PDM_CHECK(loads.size() > active_.back(),
            "router: loads snapshot does not cover the active shards");
  // A hard pin (SortJobSpec::target_shard) overrides every policy while
  // its target is active; a pin on a drained shard dissolves to normal
  // placement.
  if (spec.target_shard != SortJobSpec::kAnyShard &&
      is_active(spec.target_shard)) {
    return spec.target_shard;
  }
  if (auto pinned = pinned_shard(spec.locality_key)) return *pinned;
  if (active_.size() == 1) return active_.front();
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      return round_robin();
    case RoutePolicy::kLeastLoaded: {
      // Power of two choices over the active list; distinct samples,
      // ties to the first.
      const usize n = active_.size();
      const usize ia = static_cast<usize>(rng_.below(n));
      usize ib = static_cast<usize>(rng_.below(n - 1));
      if (ib >= ia) ++ib;
      const u32 a = active_[ia];
      const u32 b = active_[ib];
      return loads[b].score() < loads[a].score() ? b : a;
    }
    case RoutePolicy::kLocalityHash:
      if (spec.locality_key.empty()) return round_robin();
      return ring_.route(locality_hash(spec.locality_key));
  }
  return active_.front();
}

}  // namespace pdm
