// Consistent-hash ring with virtual nodes: the placement structure that
// makes cluster topology changes cheap.
//
// Each shard owns `vnodes` points on a u64 ring (splitmix64 of the
// (shard, replica) pair — deterministic across processes, so tests can
// script exact topologies). A key routes to the shard owning the first
// point clockwise from the key's hash. Adding a shard claims only the
// arcs its new points cut out of existing owners — every remapped key
// moves TO the new shard, nothing else moves at all — and the claimed
// fraction concentrates around vnodes independent draws of arc length,
// i.e. ~1/N of the keyspace with relative spread ~1/sqrt(vnodes).
// Removing a shard is the mirror image: only its own keys move, released
// to the clockwise survivors. That is the property the elastic cluster
// leans on: a topology change disturbs ~1/N of the locality keys (plan
// caches, page caches, sticky pins) instead of rehashing everybody, and
// tests/cluster_scenarios_test.cpp asserts it exactly.
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.h"

namespace pdm {

class HashRing {
 public:
  explicit HashRing(u32 vnodes_per_shard = 256)
      : vnodes_(std::max<u32>(1, vnodes_per_shard)) {}

  u32 vnodes_per_shard() const noexcept { return vnodes_; }
  bool empty() const noexcept { return points_.empty(); }
  usize size() const noexcept { return points_.size(); }

  /// Inserts `shard`'s virtual nodes (no-op guard: a shard must not be
  /// added twice — the points would double and skew its arc share).
  void add(u32 shard) {
    PDM_CHECK(!contains(shard), "hash ring: shard already present");
    points_.reserve(points_.size() + vnodes_);
    for (u32 r = 0; r < vnodes_; ++r) {
      points_.push_back(Point{point_hash(shard, r), shard});
    }
    std::sort(points_.begin(), points_.end());
  }

  /// Removes every point of `shard`; its arcs fall to the clockwise
  /// neighbors, which is exactly the keys that remap.
  void remove(u32 shard) {
    std::erase_if(points_, [&](const Point& p) { return p.shard == shard; });
  }

  bool contains(u32 shard) const {
    return std::any_of(points_.begin(), points_.end(),
                       [&](const Point& p) { return p.shard == shard; });
  }

  /// The shard owning `hash`: first ring point at or clockwise of it,
  /// wrapping at the top of the u64 range. The hash is finalized through
  /// splitmix64 first — ring position compares full-width u64s, and
  /// caller hashes with weak high-bit avalanche (FNV-1a of short keys)
  /// would otherwise cluster on a few arcs.
  u32 route(u64 hash) const {
    PDM_CHECK(!points_.empty(), "hash ring: no shards");
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{finalize(hash), 0});
    if (it == points_.end()) it = points_.begin();
    return it->shard;
  }

 private:
  struct Point {
    u64 where = 0;
    u32 shard = 0;
    friend bool operator<(const Point& a, const Point& b) {
      return a.where != b.where ? a.where < b.where : a.shard < b.shard;
    }
  };

  /// splitmix64 finalizer: stateless, stable, full-avalanche.
  static u64 finalize(u64 x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Ring position of a shard's replica: well-mixed and a pure function
  /// of the ids, never of insertion order.
  static u64 point_hash(u32 shard, u32 replica) {
    return finalize((u64{shard} << 32) | u64{replica});
  }

  u32 vnodes_;
  std::vector<Point> points_;  // sorted by ring position
};

}  // namespace pdm
