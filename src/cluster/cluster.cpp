#include "cluster/cluster.h"

#include <algorithm>

#include "util/jobtrace.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pdm {

namespace {

double seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// Hold-queue depth on both telemetry planes: a counter track in the trace
// (renders as a graph in Perfetto) and a gauge in the metrics registry.
void note_hold_depth(usize depth) {
  PDM_TRACE_COUNTER("cluster", "hold_depth", depth);
  metrics::Registry::global().gauge("cluster.hold_depth").set(
      static_cast<i64>(depth));
}

}  // namespace

Cluster::Cluster(BackendFactory make_backend, ClusterConfig cfg)
    : make_backend_(std::move(make_backend)),
      cfg_(cfg),
      router_(cfg.shards, cfg.policy, cfg.router_seed, cfg.ring_vnodes),
      jobs_per_shard_(cfg.shards, 0) {
  router_.set_spill_promote_after(cfg.spill_promote_after);
  // Mirror span durations into the metrics registry so metrics_text()
  // shows per-phase totals next to the trace (idempotent).
  metrics::install_span_histograms();
  PDM_CHECK(cfg.shards > 0, "Cluster needs at least one shard");
  PDM_CHECK(make_backend_ != nullptr, "Cluster needs a backend factory");
  PDM_CHECK(cfg.shard_configs.empty() || cfg.shard_configs.size() == cfg.shards,
            "shard_configs must be empty or have one entry per shard");
  slots_.reserve(cfg.shards);
  for (usize i = 0; i < cfg.shards; ++i) {
    ServiceConfig sc =
        cfg.shard_configs.empty() ? cfg.shard : cfg.shard_configs[i];
    slots_.push_back(Slot{make_service(static_cast<u32>(i), std::move(sc)),
                          SlotState::kActive, 0});
  }
}

Cluster::~Cluster() {
  // Coordinator threads first, before anything stops: they only wait on
  // ordinary sub-jobs, which the still-live shards finish normally.
  std::vector<std::thread> coords;
  {
    std::lock_guard g(mu_);
    for (auto& [token, t] : dist_threads_) coords.push_back(std::move(t));
    dist_threads_.clear();
    dist_finished_threads_.clear();
  }
  for (auto& t : coords) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard g(mu_);
    stopping_ = true;  // pumps and new submissions stop
  }
  // Disconnect the capacity callbacks so shard workers stop calling into
  // a dying cluster; an invocation already in flight blocks on mu_, sees
  // stopping_, and returns before the services (and then mu_) go away.
  for (auto& slot : slots_) {
    if (slot.service) slot.service->set_capacity_callback(nullptr);
  }
}

std::shared_ptr<SortService> Cluster::make_service(u32 id, ServiceConfig sc) {
  sc.shard_id = id;
  auto backend = make_backend_(id);
  PDM_CHECK(backend != nullptr, "backend factory returned null");
  auto svc = std::make_shared<SortService>(std::move(backend), sc);
  svc->set_capacity_callback([this] { on_capacity_freed(); });
  return svc;
}

std::vector<ShardLoad> Cluster::shard_loads() const {
  // Copy the live service handles under the lock, poll loads outside it
  // (each load() briefly takes its shard's mutex).
  std::vector<std::shared_ptr<SortService>> svcs;
  {
    std::lock_guard g(mu_);
    svcs.reserve(slots_.size());
    for (const Slot& s : slots_) {
      svcs.push_back(s.state == SlotState::kActive ? s.service : nullptr);
    }
  }
  std::vector<ShardLoad> loads(svcs.size());
  for (usize i = 0; i < svcs.size(); ++i) {
    if (svcs[i]) {
      loads[i] = svcs[i]->load();
    } else {
      loads[i].shard = static_cast<u32>(i);  // retired placeholder
    }
  }
  return loads;
}

Cluster::PlaceResult Cluster::place_locked(const SortJobSpec& spec,
                                           usize record_bytes, u64 n,
                                           std::span<const ShardLoad> loads) {
  const bool was_pinned = router_.pinned_shard(spec.locality_key).has_value();
  // A hard pin (distributed range jobs) must land on its target or
  // nowhere: no spill scan, no sticky-spill bookkeeping.
  const bool hard_pinned = spec.target_shard != SortJobSpec::kAnyShard &&
                           router_.is_active(spec.target_shard);
  const u32 preferred = router_.place(spec, loads);
  usize carve = 0;  // of the last shard probed = the one returned
  auto fits_ever = [&](u32 i) {
    if (slots_[i].state != SlotState::kActive) return false;
    carve = slots_[i].service->admission_carve(spec, record_bytes, n);
    return carve <= slots_[i].service->budget().limit();
  };
  if (fits_ever(preferred)) {
    // A fit on the tenant's *policy-preferred* shard ends any spill
    // streak; a fit on its pinned spill target keeps the pin sticky.
    if (!was_pinned && !hard_pinned) {
      router_.note_preferred_ok(spec.locality_key);
    }
    return {preferred, true, carve};
  }
  if (hard_pinned) {
    // The pinned shard can never admit it and nothing else is allowed
    // to: reject cluster-wide (the shard writes the rejection record).
    ++rejected_cluster_wide_;
    return {preferred, false, 0};
  }
  // Overflow spill: the preferred shard would reject this job outright
  // (its carve exceeds the whole shard budget). Retry on the least-loaded
  // shard that can admit it before letting the rejection stand; after
  // spill_promote_after consecutive spills the router pins the tenant to
  // its spill target and stops re-scanning (sticky spill-back).
  const u32 alt = router_.least_loaded_where(loads, preferred, fits_ever);
  if (alt != ShardRouter::kNone) {
    ++spilled_;
    router_.note_spill(spec.locality_key, alt);
    // The scan probed several shards; re-ask the winner for its carve.
    return {alt, true,
            slots_[alt].service->admission_carve(spec, record_bytes, n)};
  }
  // No shard fits: submit to the preferred shard anyway so the tenant
  // gets a job record with the rejection reason. (The carve is unused —
  // rejects dispatch directly.)
  ++rejected_cluster_wide_;
  return {preferred, false, 0};
}

void Cluster::add_record_locked(JobId id, JobInfo rec) {
  records_.emplace(id, std::move(rec));
  record_fifo_.push_back(id);
  if (cfg_.retain_cluster_records_max == 0) return;
  // FIFO entries may be stale (forget() erases records without scrubbing
  // the queue); popping a stale id just advances the cursor.
  while (records_.size() > cfg_.retain_cluster_records_max &&
         !record_fifo_.empty()) {
    records_.erase(record_fifo_.front());
    record_fifo_.pop_front();
  }
}

JobInfo Cluster::held_snapshot(const HeldJob& h, JobState state) {
  JobInfo out;
  out.id = h.id;
  out.shard = h.home;
  out.name = h.job.spec.name;
  out.state = state;
  out.n = h.job.n;
  out.priority = h.job.spec.priority;
  out.trace_id = h.job.spec.trace_id;
  out.parent_trace_id = h.job.spec.parent_trace_id;
  out.queue_s = seconds(Clock::now() - h.t_submit);
  return out;
}

bool Cluster::held_before(const HeldJob& a, const HeldJob& b) {
  if (a.job.spec.priority != b.job.spec.priority) {
    return a.job.spec.priority > b.job.spec.priority;
  }
  if (a.deadline_abs != b.deadline_abs) return a.deadline_abs < b.deadline_abs;
  return a.id < b.id;
}

void Cluster::hold_insert_locked(HeldJob h) {
  const JobId id = h.id;
  jobtrace::FlightRecorder::instance().record(
      h.job.spec.trace_id, jobtrace::EventKind::kParked,
      h.park_reason.c_str(), h.home);
  jobtrace::Scope scope(h.job.spec.trace_id, h.job.spec.parent_trace_id);
  auto pos = std::upper_bound(hold_.begin(), hold_.end(), h, held_before);
  hold_.insert(pos, std::move(h));
  PDM_TRACE_INSTANT_ARG("cluster", "job_parked", "job", id);
  note_hold_depth(hold_.size());
}

void Cluster::on_capacity_freed() {
  std::lock_guard g(mu_);
  if (stopping_) return;
  pump_locked();
}

void Cluster::pump_locked() {
  if (stopping_ || hold_.empty() || router_.num_active() == 0) return;
  const std::vector<u32> act = router_.active();  // copy: dispatch mutates
  // Fresh headroom snapshot (each load() briefly takes its shard's
  // mutex; lock order is always cluster -> shard).
  std::vector<ShardLoad> loads(slots_.size());
  for (u32 s : act) loads[s] = slots_[s].service->load();

  auto& flight = jobtrace::FlightRecorder::instance();
  for (usize i = 0; i < hold_.size();) {
    HeldJob& h = hold_[i];
    // Stamp this iteration's instants/retro-spans with the held job's id.
    jobtrace::Scope trace_scope(h.job.spec.trace_id,
                                h.job.spec.parent_trace_id);
    auto carve_on = [&](u32 s) {
      return slots_[s].service->admission_carve(h.job.spec,
                                                h.job.record_bytes, h.job.n);
    };
    // A home that was drained re-routes once (and sticks, so repeated
    // pumps don't re-roll round-robin state for the same job). A hard
    // pin on a drained shard dissolves back to router placement first
    // (cannot happen to distributed ranges — their shards are fenced).
    if (!router_.is_active(h.home)) {
      if (h.job.spec.target_shard != SortJobSpec::kAnyShard &&
          !router_.is_active(h.job.spec.target_shard)) {
        h.job.spec.target_shard = SortJobSpec::kAnyShard;
      }
      h.home = router_.place(h.job.spec, loads);
    }
    // Deadline pump admission: a parked deadline job whose calibrated run
    // estimate no longer fits inside the time it has left can only be
    // dispatched to miss — reject it at the pump instead of burning a
    // shard slot on a hopeless run. Gated on the home shard's
    // deadline_admission flag, like the shard-side check it front-runs,
    // and calibrated by the same EMA the shard feeds (deadline_cal).
    if (h.job.spec.deadline_s > 0 &&
        slots_[h.home].service->config().deadline_admission) {
      SortService& svc = *slots_[h.home].service;
      const double est =
          svc.estimate_run_s(h.job.spec, h.job.record_bytes, h.job.n);
      const double ratio = svc.deadline_cal();
      const double cal =
          svc.config().deadline_calibration && ratio > 0 ? ratio : 1.0;
      const double remaining =
          h.job.spec.deadline_s - seconds(Clock::now() - h.t_submit);
      if (est > 0 && est * cal > remaining) {
        JobInfo rec = held_snapshot(h, JobState::kRejected);
        rec.error = "deadline admission (pump): calibrated run estimate " +
                    std::to_string(est * cal) +
                    "s exceeds the deadline's remaining " +
                    std::to_string(std::max(0.0, remaining)) + "s";
        flight.note_end(h.job.spec.trace_id, jobtrace::EventKind::kRejected,
                        rec.error.c_str(), /*bad=*/true, h.home);
        PDM_TRACE_INSTANT_ARG("cluster", "held_rejected_deadline", "job",
                              h.id);
        add_record_locked(h.id, std::move(rec));
        jobs_.erase(h.id);
        ++held_rejected_;
        ++held_rejected_deadline_;
        ++rejected_cluster_wide_;
        hold_.erase(hold_.begin() + static_cast<std::ptrdiff_t>(i));
        note_hold_depth(hold_.size());
        continue;
      }
    }
    // A hard-pinned job dispatches to its pin or stays parked: no steal.
    const bool hard_pinned =
        h.job.spec.target_shard != SortJobSpec::kAnyShard &&
        router_.is_active(h.job.spec.target_shard);
    u32 target = ShardRouter::kNone;
    usize target_carve = 0;
    bool fits_somewhere = false;
    {
      const usize c = carve_on(h.home);
      if (c <= slots_[h.home].service->budget().limit()) {
        fits_somewhere = true;
        if (!cfg_.hold_queue || loads[h.home].fits_now(c)) {
          target = h.home;
          target_carve = c;
        }
      }
    }
    if (target == ShardRouter::kNone && !hard_pinned) {
      // Steal scan: the least-loaded other shard that can take it now
      // (or, with the hold queue disabled — migration-only mode — that
      // can ever take it).
      double best = 0;
      for (u32 s : act) {
        if (s == h.home) continue;
        const usize c = carve_on(s);
        if (c > slots_[s].service->budget().limit()) continue;
        fits_somewhere = true;
        if (cfg_.hold_queue && !loads[s].fits_now(c)) continue;
        if (target == ShardRouter::kNone || loads[s].score() < best) {
          target = s;
          target_carve = c;
          best = loads[s].score();
        }
      }
    }
    if (!fits_somewhere) {
      // Every shard that could ever have admitted it was drained:
      // reject cluster-side with a terminal record.
      JobInfo rec = held_snapshot(h, JobState::kRejected);
      rec.error =
          "admission control: no active shard can fit the job's memory "
          "carve (its fitting shards were drained)";
      flight.note_end(h.job.spec.trace_id, jobtrace::EventKind::kRejected,
                      rec.error.c_str(), /*bad=*/true, h.home);
      add_record_locked(h.id, std::move(rec));
      jobs_.erase(h.id);
      ++held_rejected_;
      ++rejected_cluster_wide_;
      hold_.erase(hold_.begin() + static_cast<std::ptrdiff_t>(i));
      note_hold_depth(hold_.size());
      continue;
    }
    if (target == ShardRouter::kNone) {
      ++i;  // nobody has headroom yet; a capacity callback will retry
      continue;
    }
    // Dispatch. Deadlines are wall-clock promises made at submission:
    // charge the time spent parked against the relative deadline the
    // serving shard sees.
    const double parked_s = seconds(Clock::now() - h.t_submit);
    if (h.job.spec.deadline_s > 0) {
      h.job.spec.deadline_s = std::max(1e-9, h.job.spec.deadline_s - parked_s);
    }
    metrics::Registry::global().histogram("cluster.hold_park_ns").record(
        parked_s > 0 ? static_cast<u64>(parked_s * 1e9) : 0);
    if (trace::TraceLog::instance().enabled()) {
      // Retro-span covering the park: submission to this dispatch.
      const u64 now_ns = trace::TraceLog::now_ns();
      const u64 dur = std::min(
          now_ns, parked_s > 0 ? static_cast<u64>(parked_s * 1e9) : 0);
      trace::TraceLog::instance().complete("cluster", "hold_park",
                                           now_ns - dur, dur, "job", h.id);
    }
    if (target != h.home) {
      // Steal: record both shard ids — where the job was placed (home)
      // and where it actually dispatched.
      flight.record(h.job.spec.trace_id, jobtrace::EventKind::kStolen,
                    nullptr, h.home, target);
    }
    flight.record(h.job.spec.trace_id, jobtrace::EventKind::kDispatched,
                  nullptr, target);
    const JobId local =
        slots_[target].service->submit_prepared(std::move(h.job));
    jobs_[h.id] = Placement{target, local};
    ++jobs_per_shard_[target];
    if (target != h.home) {
      ++stolen_;
      trace::TraceLog::instance().instant("cluster", "job_stolen", "from",
                                          h.home, "to", target);
    }
    // Reflect the reservation in our load copy so later holds in this
    // pump see the shard as (possibly) full again.
    loads[target].queued += 1;
    loads[target].reserved_bytes += target_carve;
    hold_.erase(hold_.begin() + static_cast<std::ptrdiff_t>(i));
    note_hold_depth(hold_.size());
  }
  place_cv_.notify_all();
}

JobId Cluster::submit_prepared(PreparedJob job) {
  PDM_CHECK(job.run != nullptr, "submit_prepared: empty job");
  // Cluster admission is the id minting point for routed jobs (range
  // sub-jobs arrive with ids already assigned by submit_distributed).
  if (job.spec.trace_id == 0) job.spec.trace_id = jobtrace::mint();
  jobtrace::Scope trace_scope(job.spec.trace_id, job.spec.parent_trace_id);
  // Placement cost = load polling + lock wait + routing decision.
  trace::TraceSpan place_span("cluster", "placement", "n", job.n);
  std::vector<ShardLoad> loads = shard_loads();
  std::unique_lock lock(mu_);
  PDM_CHECK(!stopping_, "Cluster is shutting down");
  // An add_shard may have landed between the loads snapshot and the
  // lock: top the snapshot up so it covers every slot (each load()
  // briefly takes its shard's mutex — cluster -> shard order).
  while (loads.size() < slots_.size()) {
    const usize i = loads.size();
    loads.push_back(slots_[i].state == SlotState::kActive
                        ? slots_[i].service->load()
                        : ShardLoad{.shard = static_cast<u32>(i)});
  }
  const JobId id = next_id_++;
  const PlaceResult pr =
      place_locked(job.spec, job.record_bytes, job.n, loads);
  place_span.end();
  // Direct dispatch when the hold queue is off, the job is a cluster-wide
  // reject (the shard produces the rejection record), or the placed shard
  // has headroom AND no earlier job is parked (order preservation: a
  // non-empty queue means everything routes through it).
  const bool direct = !cfg_.hold_queue || !pr.admissible ||
                      (hold_.empty() && loads[pr.shard].fits_now(pr.carve));
  if (direct) {
    auto svc = slots_[pr.shard].service;
    ++slots_[pr.shard].in_flight_submits;
    lock.unlock();
    JobId local = 0;
    try {
      local = svc->submit_prepared(std::move(job));
    } catch (...) {
      lock.lock();
      --slots_[pr.shard].in_flight_submits;
      place_cv_.notify_all();
      throw;
    }
    lock.lock();
    --slots_[pr.shard].in_flight_submits;
    jobs_.emplace(id, Placement{pr.shard, local});
    ++jobs_per_shard_[pr.shard];
    place_cv_.notify_all();
  } else {
    HeldJob h;
    h.id = id;
    h.home = pr.shard;
    h.t_submit = Clock::now();
    if (job.spec.deadline_s > 0) {
      h.deadline_abs =
          h.t_submit + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(job.spec.deadline_s));
    }
    h.park_reason = !hold_.empty()
                        ? "queued behind earlier parked jobs"
                        : "no headroom on home shard";
    h.job = std::move(job);
    hold_insert_locked(std::move(h));
    jobs_.emplace(id, Placement{});  // kHeldShard
    ++held_total_;
    pump_locked();  // may dispatch immediately (idle shards steal)
  }
  maybe_prune_locked();
  return id;
}

u32 Cluster::add_shard() { return add_shard(cfg_.shard); }

u32 Cluster::add_shard(ServiceConfig sc) {
  std::lock_guard topo(topo_mu_);
  u32 id = 0;
  {
    std::lock_guard g(mu_);
    PDM_CHECK(!stopping_, "Cluster is shutting down");
    id = static_cast<u32>(slots_.size());
  }
  // Build the service outside the cluster mutex (its workers start
  // immediately); topo_mu_ keeps the id reservation safe.
  auto svc = make_service(id, std::move(sc));
  std::lock_guard g(mu_);
  slots_.push_back(Slot{std::move(svc), SlotState::kActive, 0});
  jobs_per_shard_.push_back(0);
  router_.add_shard(id);
  ++shards_added_;
  // The newcomer steals parked backlog right away.
  pump_locked();
  place_cv_.notify_all();
  return id;
}

void Cluster::drain_shard(u32 id) {
  std::lock_guard topo(topo_mu_);
  std::shared_ptr<SortService> svc;
  {
    std::unique_lock lock(mu_);
    PDM_CHECK(id < slots_.size(), "drain_shard: unknown shard");
    PDM_CHECK(slots_[id].state == SlotState::kActive,
              "drain_shard: shard is not active");
    PDM_CHECK(router_.num_active() > 1,
              "drain_shard: cannot drain the last active shard");
    // Graceful-shrink guard: a shard that owns an in-flight distributed
    // range cannot retire — pinned ranges do not migrate. Checked under
    // mu_ BEFORE any state changes (dist_begin assigns targets under the
    // same mutex, so the fence cannot be raced), so a veto leaves the
    // topology untouched.
    for (const auto& [did, dj] : dist_jobs_) {
      for (u32 owner : dj.info.range_shards) {
        PDM_CHECK(owner != id,
                  "drain_shard: shard owns an in-flight range of "
                  "distributed job '" +
                      dj.info.name + "' (id " + std::to_string(did) +
                      "); distributed_wait() it before retiring the shard");
      }
    }
    slots_[id].state = SlotState::kDraining;
    router_.remove_shard(id);  // placement and pumps stop picking it
    // Direct submits that chose this shard before the drain settle
    // first, so extraction sees every queued job.
    place_cv_.wait(lock,
                   [&] { return slots_[id].in_flight_submits == 0; });
    svc = slots_[id].service;
  }
  // Phase A: pull every still-queued job off the shard. Their shard
  // records go kMigrated (waiters bounce back to us); running jobs are
  // untouched and finish below.
  auto extracted = svc->extract_queued();
  {
    std::lock_guard g(mu_);
    // Reverse-map this shard's local ids to cluster ids.
    std::map<JobId, JobId> to_cluster;
    for (const auto& [cid, p] : jobs_) {
      if (p.shard == id) to_cluster[p.local] = cid;
    }
    for (auto& ex : extracted) {
      auto found = to_cluster.find(ex.local_id);
      // Jobs submitted directly to the shard (bypassing the cluster)
      // have no cluster id; adopt them under a fresh one so they are
      // not lost.
      const JobId cid =
          found != to_cluster.end() ? found->second : next_id_++;
      if (found != to_cluster.end() && jobs_per_shard_[id] > 0) {
        --jobs_per_shard_[id];  // it re-counts where it re-places
      }
      HeldJob h;
      h.id = cid;
      h.home = id;  // inactive now; pump re-routes it once
      h.t_submit = ex.t_submit;
      if (ex.job.spec.deadline_s > 0) {
        h.deadline_abs =
            ex.t_submit +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(ex.job.spec.deadline_s));
      }
      h.park_reason = "migrated off draining shard " + std::to_string(id);
      jobtrace::FlightRecorder::instance().record(
          ex.job.spec.trace_id, jobtrace::EventKind::kMigrated, nullptr, id);
      jobtrace::Scope scope(ex.job.spec.trace_id,
                            ex.job.spec.parent_trace_id);
      h.job = std::move(ex.job);
      hold_insert_locked(std::move(h));
      jobs_[cid] = Placement{};  // kHeldShard
      ++migrated_;
      PDM_TRACE_INSTANT_ARG("cluster", "job_migrated", "job", cid);
    }
    // Phase B: re-place the migrants immediately where possible, and
    // wake waiters that saw kMigrated so they re-resolve.
    pump_locked();
    place_cv_.notify_all();
  }
  // Phase C: running (and claimed) jobs finish on the shard.
  svc->drain();
  // Phase D: move the shard's terminal records and final stats into
  // cluster-held storage, then retire the slot. Waiters still blocked
  // inside svc->wait() hold their own shared_ptr — the service object
  // outlives them.
  {
    std::lock_guard g(mu_);
    std::map<JobId, JobId> to_cluster;
    for (const auto& [cid, p] : jobs_) {
      if (p.shard == id) to_cluster[p.local] = cid;
    }
    for (JobInfo ji : svc->jobs()) {
      auto found = to_cluster.find(ji.id);
      if (found == to_cluster.end()) continue;  // direct-to-shard submit
      ji.id = found->second;
      const JobId cid = found->second;
      add_record_locked(cid, std::move(ji));
      jobs_.erase(cid);
    }
    // Placements still pointing here belong to records the shard's
    // retention policy evicted before the drain: drop them, so lookups
    // throw "unknown job id" exactly as post-eviction lookups always
    // have (instead of dangling on a retired slot).
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      it = it->second.shard == id ? jobs_.erase(it) : ++it;
    }
    ServiceStats fin = svc->stats();
    fin.retained = 0;  // its records are cluster-held now
    retired_stats_.emplace(id, std::move(fin));
    slots_[id].service.reset();  // svc still holds a ref; dtor runs below
    slots_[id].state = SlotState::kRetired;
    ++shards_drained_;
    place_cv_.notify_all();
  }
  svc->set_capacity_callback(nullptr);
  // svc's destructor (joining the shard's idle workers) runs here if we
  // held the last reference — outside every lock.
}

bool Cluster::shard_active(u32 id) const {
  std::lock_guard g(mu_);
  return id < slots_.size() && slots_[id].state == SlotState::kActive;
}

std::vector<u32> Cluster::active_shards() const {
  std::lock_guard g(mu_);
  return router_.active();
}

usize Cluster::num_shards() const {
  std::lock_guard g(mu_);
  return slots_.size();
}

SortService& Cluster::shard(usize i) {
  std::lock_guard g(mu_);
  PDM_CHECK(i < slots_.size(), "cluster: unknown shard");
  PDM_CHECK(slots_[i].service != nullptr, "cluster: shard is retired");
  return *slots_[i].service;
}

Cluster::Placement Cluster::placement_of(JobId id) const {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "cluster: unknown job id");
  return it->second;
}

JobInfo Cluster::wait(JobId id) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (auto r = records_.find(id); r != records_.end()) return r->second;
    auto it = jobs_.find(id);
    PDM_CHECK(it != jobs_.end(), "cluster: unknown job id");
    const Placement p = it->second;
    if (p.shard == kHeldShard || slots_[p.shard].service == nullptr) {
      // Parked (or racing a retirement that is about to publish the
      // record): wait for the placement or record to change.
      place_cv_.wait(lock);
      continue;
    }
    auto svc = slots_[p.shard].service;
    lock.unlock();
    JobInfo info = svc->wait(p.local);
    lock.lock();
    if (info.state == JobState::kMigrated) {
      // Extracted off a draining shard between our placement read and
      // the shard-side wait; wait for the re-placement to land.
      place_cv_.wait(lock, [&] {
        if (records_.count(id) != 0) return true;
        auto again = jobs_.find(id);
        return again == jobs_.end() ||
               again->second.shard != p.shard ||
               again->second.local != p.local;
      });
      continue;
    }
    info.id = id;
    return info;
  }
}

JobInfo Cluster::info(JobId id) const {
  std::unique_lock lock(mu_);
  for (;;) {
    if (auto r = records_.find(id); r != records_.end()) return r->second;
    auto it = jobs_.find(id);
    PDM_CHECK(it != jobs_.end(), "cluster: unknown job id");
    const Placement p = it->second;
    if (p.shard == kHeldShard) {
      // Synthesize a queued snapshot from the hold entry.
      auto held = std::find_if(hold_.begin(), hold_.end(),
                               [&](const HeldJob& h) { return h.id == id; });
      PDM_ASSERT(held != hold_.end(), "held placement without a hold entry");
      return held_snapshot(*held, JobState::kQueued);
    }
    if (slots_[p.shard].service == nullptr) {
      place_cv_.wait(lock);  // racing a retirement's record publication
      continue;
    }
    auto svc = slots_[p.shard].service;
    lock.unlock();
    bool migrated = false;
    try {
      JobInfo out = svc->info(p.local);
      if (out.state != JobState::kMigrated) {
        out.id = id;
        return out;
      }
      migrated = true;
    } catch (const Error&) {
      // The record vanished under us (extraction or retention); if the
      // placement moved on, retry against the new home — otherwise it
      // really is gone.
      lock.lock();
      auto again = jobs_.find(id);
      if (again != jobs_.end() && again->second.shard == p.shard &&
          again->second.local == p.local && records_.count(id) == 0) {
        throw;
      }
      continue;
    }
    lock.lock();
    if (migrated) {
      // Extracted off a draining shard; wait for the re-placement.
      place_cv_.wait(lock, [&] {
        if (records_.count(id) != 0) return true;
        auto again = jobs_.find(id);
        return again == jobs_.end() || again->second.shard != p.shard ||
               again->second.local != p.local;
      });
    }
  }
}

bool Cluster::cancel(JobId id) {
  {
    std::lock_guard g(mu_);
    if (dist_records_.count(id) != 0) return false;  // terminal distributed
  }
  if (dist_cancel(id)) return true;
  std::unique_lock lock(mu_);
  for (;;) {
    if (records_.count(id) != 0) return false;  // already terminal
    auto held = std::find_if(hold_.begin(), hold_.end(),
                             [&](const HeldJob& h) { return h.id == id; });
    if (held != hold_.end()) {
      jobtrace::FlightRecorder::instance().note_end(
          held->job.spec.trace_id, jobtrace::EventKind::kCancelled,
          "cancelled while parked", /*bad=*/true, held->home);
      add_record_locked(id, held_snapshot(*held, JobState::kCancelled));
      hold_.erase(held);
      note_hold_depth(hold_.size());
      jobs_.erase(id);  // the record answers lookups from here on
      ++held_cancelled_;
      place_cv_.notify_all();
      return true;
    }
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const Placement p = it->second;
    if (p.shard == kHeldShard) {
      // Placement says held but the hold entry is gone: a pump is
      // mid-dispatch is impossible (both happen under mu_), so this is
      // a record transition we raced; retry.
      place_cv_.wait(lock);
      continue;
    }
    if (slots_[p.shard].service == nullptr) {
      place_cv_.wait(lock);  // racing retirement's record publication
      continue;
    }
    auto svc = slots_[p.shard].service;
    lock.unlock();
    const bool ok = svc->cancel(p.local);
    lock.lock();
    if (ok) return true;
    // A false may mean "terminal" — or "migrated away mid-call". Retry
    // only if the placement moved.
    auto again = jobs_.find(id);
    if (again == jobs_.end() || (again->second.shard == p.shard &&
                                 again->second.local == p.local)) {
      return false;
    }
  }
}

bool Cluster::forget(JobId id) {
  std::unique_lock lock(mu_);
  if (auto r = records_.find(id); r != records_.end()) {
    records_.erase(r);
    jobs_.erase(id);
    return true;
  }
  if (auto d = dist_records_.find(id); d != dist_records_.end()) {
    dist_records_.erase(d);
    place_cv_.notify_all();  // racing distributed_wait()ers must throw
    return true;
  }
  if (dist_jobs_.count(id) != 0) return false;  // coordinator still live
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const Placement p = it->second;
  if (p.shard == kHeldShard) return false;  // still queued (held)
  if (slots_[p.shard].service == nullptr) return false;  // racing retirement
  auto svc = slots_[p.shard].service;
  lock.unlock();
  // The shard refuses while the job is queued/running; a record the
  // shard's retention policy already dropped counts as forgotten.
  const bool dropped = svc->forget(p.local) || !svc->known(p.local);
  lock.lock();
  auto again = jobs_.find(id);
  if (again == jobs_.end() || again->second.shard != p.shard ||
      again->second.local != p.local) {
    return false;  // migrated away mid-call: the job lives elsewhere
  }
  if (!dropped) return false;
  jobs_.erase(again);
  return true;
}

void Cluster::maybe_prune_locked() {
  if (++submits_since_prune_ < kPruneInterval) return;
  submits_since_prune_ = 0;
  // Amortized O(1) per submit: without this, shard-side retention would
  // leave the cluster's id map growing one dead mapping per evicted job.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const Placement& p = it->second;
    if (p.shard != kHeldShard && slots_[p.shard].service != nullptr &&
        !slots_[p.shard].service->known(p.local)) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Cluster::drain() {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      place_cv_.wait(lock,
                     [&] { return hold_.empty() && dist_jobs_.empty(); });
    }
    // Everything is dispatched; drain the active shards (outside mu_ —
    // capacity callbacks must be able to pump while we block).
    std::vector<std::shared_ptr<SortService>> svcs;
    {
      std::lock_guard g(mu_);
      for (const Slot& s : slots_) {
        if (s.state == SlotState::kActive) svcs.push_back(s.service);
      }
    }
    for (auto& s : svcs) s->drain();
    std::lock_guard g(mu_);
    bool settled = hold_.empty() && dist_jobs_.empty();
    for (const Slot& s : slots_) settled = settled && s.in_flight_submits == 0;
    if (settled) return;
  }
}

double Cluster::seconds_since(Clock::time_point t0) {
  return seconds(Clock::now() - t0);
}

Cluster::DistBegin Cluster::dist_begin(const std::string& name,
                                       const RangePartitionStats& pst,
                                       u64 trace_id) {
  std::lock_guard g(mu_);
  PDM_CHECK(!stopping_, "Cluster is shutting down");
  PDM_CHECK(router_.num_active() > 0, "submit_distributed: no active shards");
  DistBegin b;
  b.id = next_id_++;
  const std::vector<u32>& act = router_.active();
  b.targets.reserve(pst.ranges);
  for (u32 r = 0; r < pst.ranges; ++r) {
    b.targets.push_back(act[r % act.size()]);
  }
  DistJob dj;
  dj.info.id = b.id;
  dj.info.name = name;
  dj.info.trace_id = trace_id;
  dj.info.state = JobState::kRunning;
  dj.info.n = pst.n;
  dj.info.oversample = pst.oversample;
  dj.info.skew = pst.skew;
  dj.info.range_shards = b.targets;
  dj.info.sub_jobs.assign(pst.ranges, 0);
  dj.info.range_records = pst.sizes;
  dj.info.range_reports.resize(pst.ranges);
  dist_jobs_.emplace(b.id, std::move(dj));
  ++dist_submitted_;
  return b;
}

void Cluster::dist_set_sub(JobId dist, u32 range, JobId sub) {
  bool cancel_now = false;
  {
    std::lock_guard g(mu_);
    auto it = dist_jobs_.find(dist);
    PDM_ASSERT(it != dist_jobs_.end(), "dist_set_sub: unknown job");
    it->second.info.sub_jobs[range] = sub;
    cancel_now = it->second.cancel_requested;
  }
  // cancel() raced the submission loop: the latch covers the gap.
  if (cancel_now) cancel(sub);
}

void Cluster::dist_spawn(JobId dist, std::function<void()> body) {
  std::vector<std::thread> reap;
  {
    std::lock_guard g(mu_);
    PDM_CHECK(!stopping_, "Cluster is shutting down");
    auto dj = dist_jobs_.find(dist);
    PDM_ASSERT(dj != dist_jobs_.end(), "dist_spawn: unknown job");
    const u64 trace_id = dj->second.info.trace_id;
    reap = reap_dist_threads_locked();
    const u64 token = next_dist_thread_++;
    dist_threads_.emplace(
        token, std::thread([this, token, trace_id, b = std::move(body)] {
          trace::TraceLog::instance().set_thread_name("dist-coord");
          {
            // The coordinator works on the distributed job's behalf:
            // dist_coordinate and the dist_concat inside the body carry
            // its id.
            jobtrace::Scope scope(trace_id);
            trace::TraceSpan span("cluster", "dist_coordinate");
            b();
          }
          // Last touch of the cluster: queue this thread for reaping by
          // the next dist_spawn (or the destructor, which joins the
          // whole registry regardless).
          std::lock_guard done(mu_);
          dist_finished_threads_.push_back(token);
        }));
  }
  for (auto& t : reap) t.join();
}

std::vector<std::thread> Cluster::reap_dist_threads_locked() {
  std::vector<std::thread> done;
  done.reserve(dist_finished_threads_.size());
  for (u64 token : dist_finished_threads_) {
    if (auto it = dist_threads_.find(token); it != dist_threads_.end()) {
      done.push_back(std::move(it->second));
      dist_threads_.erase(it);
    }
  }
  dist_finished_threads_.clear();
  return done;
}

DistributedInfo Cluster::dist_seal(JobId dist, JobState fin,
                                   std::vector<SortReport> reports,
                                   std::string error, double wall_s) {
  std::lock_guard g(mu_);
  auto it = dist_jobs_.find(dist);
  PDM_ASSERT(it != dist_jobs_.end(), "dist_seal: unknown job");
  DistributedInfo& info = it->second.info;
  info.state = fin;
  if (reports.size() == info.range_reports.size()) {
    info.range_reports = std::move(reports);
  }
  info.error = std::move(error);
  info.wall_s = wall_s;
  return info;
}

void Cluster::dist_publish(JobId dist) {
  std::lock_guard g(mu_);
  auto it = dist_jobs_.find(dist);
  PDM_ASSERT(it != dist_jobs_.end(), "dist_publish: unknown job");
  DistributedInfo info = std::move(it->second.info);
  switch (info.state) {
    case JobState::kDone: ++dist_completed_; break;
    case JobState::kCancelled: ++dist_cancelled_; break;
    default: ++dist_failed_; break;
  }
  jobtrace::FlightRecorder::instance().note_end(
      info.trace_id,
      info.state == JobState::kCancelled ? jobtrace::EventKind::kCancelled
                                         : jobtrace::EventKind::kFinished,
      job_state_name(info.state), /*bad=*/info.state != JobState::kDone);
  dist_last_range_records_ = info.range_records;
  dist_last_skew_ = info.skew;
  dist_max_skew_ = std::max(dist_max_skew_, info.skew);
  dist_jobs_.erase(it);
  dist_records_.emplace(dist, std::move(info));
  place_cv_.notify_all();  // distributed_wait()ers and drain()
}

bool Cluster::dist_cancel(JobId id) {
  std::vector<JobId> subs;
  {
    std::lock_guard g(mu_);
    auto it = dist_jobs_.find(id);
    if (it == dist_jobs_.end()) return false;
    it->second.cancel_requested = true;
    for (JobId s : it->second.info.sub_jobs) {
      if (s != 0) subs.push_back(s);
    }
  }
  // Sub-job cancellation outside mu_ (cancel() relocks it). Best effort:
  // ranges already past their last checkpoint finish regardless.
  for (JobId s : subs) cancel(s);
  return true;
}

DistributedInfo Cluster::distributed_wait(JobId id) {
  std::unique_lock lock(mu_);
  PDM_CHECK(dist_jobs_.count(id) != 0 || dist_records_.count(id) != 0,
            "cluster: unknown distributed job id");
  // "No longer live" also covers a record forget() dropped mid-wait —
  // without it a forgotten id would block here forever.
  place_cv_.wait(lock, [&] {
    return dist_records_.count(id) != 0 || dist_jobs_.count(id) == 0;
  });
  auto it = dist_records_.find(id);
  PDM_CHECK(it != dist_records_.end(),
            "cluster: distributed job record was forgotten");
  return it->second;
}

DistributedInfo Cluster::distributed_info(JobId id) const {
  std::lock_guard g(mu_);
  if (auto r = dist_records_.find(id); r != dist_records_.end()) {
    return r->second;
  }
  auto it = dist_jobs_.find(id);
  PDM_CHECK(it != dist_jobs_.end(), "cluster: unknown distributed job id");
  return it->second.info;
}

u32 Cluster::shard_of(JobId id) const {
  {
    std::lock_guard g(mu_);
    if (auto r = records_.find(id); r != records_.end()) {
      return r->second.shard;
    }
  }
  return placement_of(id).shard;
}

ClusterStats Cluster::stats() const {
  ClusterStats c;
  // Live shard snapshots are taken outside the cluster lock (each
  // stats() takes its shard's mutex); retired snapshots and the
  // cluster-side counters come after, under it.
  std::vector<std::shared_ptr<SortService>> svcs;
  {
    std::lock_guard g(mu_);
    svcs.reserve(slots_.size());
    for (const Slot& s : slots_) svcs.push_back(s.service);
  }
  std::vector<ServiceStats> per_shard(svcs.size());
  for (usize i = 0; i < svcs.size(); ++i) {
    if (svcs[i]) per_shard[i] = svcs[i]->stats();
  }
  {
    std::lock_guard g(mu_);
    c.shards = slots_.size();
    c.active = router_.num_active();
    for (usize i = 0; i < slots_.size(); ++i) {
      if (auto it = retired_stats_.find(static_cast<u32>(i));
          it != retired_stats_.end()) {
        per_shard[i] = it->second;  // final snapshot of a drained shard
      }
    }
    c.jobs_per_shard = jobs_per_shard_;
    c.spilled = spilled_;
    c.rejected_cluster_wide = rejected_cluster_wide_;
    c.held_now = hold_.size();
    c.held_total = held_total_;
    c.held_cancelled = held_cancelled_;
    c.held_rejected = held_rejected_;
    c.held_rejected_deadline = held_rejected_deadline_;
    c.stolen = stolen_;
    c.migrated = migrated_;
    c.shards_added = shards_added_;
    c.shards_drained = shards_drained_;
    c.cluster_records = records_.size();
    c.distributed_jobs = dist_submitted_;
    c.distributed_active = dist_jobs_.size();
    c.distributed_completed = dist_completed_;
    c.distributed_cancelled = dist_cancelled_;
    c.distributed_failed = dist_failed_;
    c.dist_range_records = dist_last_range_records_;
    c.dist_skew = dist_last_skew_;
    c.dist_skew_max = dist_max_skew_;
  }
  c.per_shard = std::move(per_shard);
  c.io.reset(0);
  double max_window = 0;
  for (const ServiceStats& s : c.per_shard) {
    c.submitted += s.submitted;
    c.completed += s.completed;
    c.failed += s.failed;
    c.cancelled += s.cancelled;
    c.rejected += s.rejected;
    c.deadline_missed += s.deadline_missed;
    c.retained += s.retained;
    c.batches_run += s.batches_run;
    c.peak_memory_bytes += s.peak_memory_bytes;
    max_window = std::max(max_window, s.busy_window_s);
    c.io.read_ops += s.io.read_ops;
    c.io.write_ops += s.io.write_ops;
    c.io.blocks_read += s.io.blocks_read;
    c.io.blocks_written += s.io.blocks_written;
    c.io.sim_time_s += s.io.sim_time_s;
    c.io.disk_reads.insert(c.io.disk_reads.end(), s.io.disk_reads.begin(),
                           s.io.disk_reads.end());
    c.io.disk_writes.insert(c.io.disk_writes.end(), s.io.disk_writes.begin(),
                            s.io.disk_writes.end());
    c.blocks_per_shard.push_back(s.io.total_blocks());
  }
  // Hold-queue terminals never reached a shard; parked jobs have not
  // yet: account them cluster-side so submitted = terminal sums + live.
  c.submitted += c.held_now + c.held_cancelled + c.held_rejected;
  c.cancelled += c.held_cancelled;
  c.rejected += c.held_rejected;
  c.retained += c.cluster_records;
  if (c.completed > 0 && max_window > 0) {
    c.jobs_per_sec = static_cast<double>(c.completed) / max_window;
  }
  c.job_imbalance = imbalance_ratio(c.jobs_per_shard);
  c.io_imbalance = imbalance_ratio(c.blocks_per_shard);
  return c;
}

std::string Cluster::metrics_text() const {
  {
    std::lock_guard g(mu_);
    note_hold_depth(hold_.size());
  }
  return metrics::Registry::global().text();
}

introspect::StateDump Cluster::dump_state() const {
  introspect::StateDump d;
  auto& flight = jobtrace::FlightRecorder::instance();
  {
    std::lock_guard g(mu_);
    // Reverse-map local shard ids to cluster ids so the dump's job ids
    // answer to wait()/info()/cancel().
    std::vector<std::map<JobId, JobId>> to_cluster(slots_.size());
    for (const auto& [cid, p] : jobs_) {
      if (p.shard != kHeldShard) to_cluster[p.shard][p.local] = cid;
    }
    for (usize i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      introspect::ShardSnapshot ss;
      ss.shard = static_cast<u32>(i);
      ss.active = slot.state == SlotState::kActive;
      if (slot.service) {
        // Shard calls under mu_ follow the established cluster -> shard
        // lock order (same as pump_locked's load() polls).
        const ShardLoad l = slot.service->load();
        ss.queued = l.queued;
        ss.running = l.running;
        ss.workers = l.workers;
        ss.reserved_bytes = l.reserved_bytes;
        ss.budget_limit = l.budget_limit;
        ss.cpu_in_use = l.cpu_in_use;
        ss.cpu_total = l.cpu_total;
        for (const JobInfo& ji : slot.service->jobs()) {
          if (job_state_terminal(ji.state)) continue;
          introspect::JobSnapshot js;
          auto found = to_cluster[i].find(ji.id);
          js.id = found != to_cluster[i].end() ? found->second : ji.id;
          js.trace_id = ji.trace_id;
          js.name = ji.name;
          js.shard = static_cast<u32>(i);
          js.state = job_state_name(ji.state);
          js.phase = flight.last_event_name(ji.trace_id);
          js.n = ji.n;
          js.priority = ji.priority;
          js.queue_s = ji.queue_s;
          js.run_s = ji.run_s;
          d.in_flight.push_back(std::move(js));
        }
      }
      d.shards.push_back(ss);
    }
    for (const HeldJob& h : hold_) {
      introspect::HeldSnapshot hs;
      hs.id = h.id;
      hs.trace_id = h.job.spec.trace_id;
      hs.name = h.job.spec.name;
      hs.home = h.home;
      hs.park_reason = h.park_reason;
      hs.n = h.job.n;
      hs.priority = h.job.spec.priority;
      hs.parked_s = seconds(Clock::now() - h.t_submit);
      d.held.push_back(std::move(hs));
    }
    d.distributed_active = dist_jobs_.size();
    note_hold_depth(hold_.size());
  }
  // Registry text after releasing mu_ (it refreshes trace gauges and
  // takes its own lock).
  d.metrics = metrics::Registry::global().text();
  return d;
}

std::string Cluster::introspect_text() const {
  return introspect::to_text(dump_state());
}

}  // namespace pdm
