#include "cluster/cluster.h"

namespace pdm {

Cluster::Cluster(BackendFactory make_backend, ClusterConfig cfg)
    : router_(cfg.shards, cfg.policy, cfg.router_seed),
      jobs_per_shard_(cfg.shards, 0) {
  router_.set_spill_promote_after(cfg.spill_promote_after);
  PDM_CHECK(cfg.shards > 0, "Cluster needs at least one shard");
  PDM_CHECK(make_backend != nullptr, "Cluster needs a backend factory");
  PDM_CHECK(cfg.shard_configs.empty() || cfg.shard_configs.size() == cfg.shards,
            "shard_configs must be empty or have one entry per shard");
  shards_.reserve(cfg.shards);
  for (usize i = 0; i < cfg.shards; ++i) {
    ServiceConfig sc =
        cfg.shard_configs.empty() ? cfg.shard : cfg.shard_configs[i];
    sc.shard_id = static_cast<u32>(i);
    auto backend = make_backend(static_cast<u32>(i));
    PDM_CHECK(backend != nullptr, "backend factory returned null");
    shards_.push_back(
        std::make_unique<SortService>(std::move(backend), sc));
  }
}

std::vector<ShardLoad> Cluster::shard_loads() const {
  std::vector<ShardLoad> loads;
  loads.reserve(shards_.size());
  for (const auto& s : shards_) loads.push_back(s->load());
  return loads;
}

u32 Cluster::place_locked(const SortJobSpec& spec, usize record_bytes, u64 n,
                          std::span<const ShardLoad> loads) {
  const bool was_pinned = router_.pinned_shard(spec.locality_key).has_value();
  const u32 preferred = router_.place(spec, loads);
  auto fits = [&](u32 i) {
    return shards_[i]->admission_carve(spec, record_bytes, n) <=
           shards_[i]->budget().limit();
  };
  if (fits(preferred)) {
    // A fit on the tenant's *policy-preferred* shard ends any spill
    // streak; a fit on its pinned spill target keeps the pin sticky.
    if (!was_pinned) router_.note_preferred_ok(spec.locality_key);
    return preferred;
  }
  // Overflow spill: the preferred shard would reject this job outright
  // (its carve exceeds the whole shard budget). Retry on the least-loaded
  // shard that can admit it before letting the rejection stand; after
  // spill_promote_after consecutive spills the router pins the tenant to
  // its spill target and stops re-scanning (sticky spill-back).
  const u32 alt = router_.least_loaded_where(loads, preferred, fits);
  if (alt < shards_.size()) {
    ++spilled_;
    router_.note_spill(spec.locality_key, alt);
    return alt;
  }
  // No shard fits: submit to the preferred shard anyway so the tenant
  // gets a job record with the rejection reason.
  ++rejected_cluster_wide_;
  return preferred;
}

Cluster::Placement Cluster::placement_of(JobId id) const {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "cluster: unknown job id");
  return it->second;
}

JobInfo Cluster::wait(JobId id) {
  const Placement p = placement_of(id);
  JobInfo info = shards_[p.shard]->wait(p.local);
  info.id = id;
  return info;
}

JobInfo Cluster::info(JobId id) const {
  const Placement p = placement_of(id);
  JobInfo info = shards_[p.shard]->info(p.local);
  info.id = id;
  return info;
}

bool Cluster::cancel(JobId id) {
  std::unique_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const Placement p = it->second;
  lock.unlock();
  return shards_[p.shard]->cancel(p.local);
}

bool Cluster::forget(JobId id) {
  std::unique_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const Placement p = it->second;
  lock.unlock();
  // The shard refuses while the job is queued/running; a record the
  // shard's retention policy already dropped counts as forgotten.
  if (!shards_[p.shard]->forget(p.local) &&
      shards_[p.shard]->known(p.local)) {
    return false;
  }
  lock.lock();
  jobs_.erase(id);
  return true;
}

void Cluster::maybe_prune_locked() {
  if (++submits_since_prune_ < kPruneInterval) return;
  submits_since_prune_ = 0;
  // Amortized O(1) per submit: without this, shard-side retention would
  // leave the cluster's id map growing one dead mapping per evicted job.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (!shards_[it->second.shard]->known(it->second.local)) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Cluster::drain() {
  for (auto& s : shards_) s->drain();
}

u32 Cluster::shard_of(JobId id) const { return placement_of(id).shard; }

ClusterStats Cluster::stats() const {
  ClusterStats c;
  c.shards = shards_.size();
  c.per_shard.reserve(shards_.size());
  for (const auto& s : shards_) c.per_shard.push_back(s->stats());
  // Shard snapshots are taken before the cluster lock (each stats() takes
  // its shard's mutex); the cluster-side counters come after.
  {
    std::lock_guard g(mu_);
    c.jobs_per_shard = jobs_per_shard_;
    c.spilled = spilled_;
    c.rejected_cluster_wide = rejected_cluster_wide_;
  }
  c.io.reset(0);
  double max_window = 0;
  for (const ServiceStats& s : c.per_shard) {
    c.submitted += s.submitted;
    c.completed += s.completed;
    c.failed += s.failed;
    c.cancelled += s.cancelled;
    c.rejected += s.rejected;
    c.deadline_missed += s.deadline_missed;
    c.retained += s.retained;
    c.batches_run += s.batches_run;
    c.peak_memory_bytes += s.peak_memory_bytes;
    max_window = std::max(max_window, s.busy_window_s);
    c.io.read_ops += s.io.read_ops;
    c.io.write_ops += s.io.write_ops;
    c.io.blocks_read += s.io.blocks_read;
    c.io.blocks_written += s.io.blocks_written;
    c.io.sim_time_s += s.io.sim_time_s;
    c.io.disk_reads.insert(c.io.disk_reads.end(), s.io.disk_reads.begin(),
                           s.io.disk_reads.end());
    c.io.disk_writes.insert(c.io.disk_writes.end(), s.io.disk_writes.begin(),
                            s.io.disk_writes.end());
    c.blocks_per_shard.push_back(s.io.total_blocks());
  }
  if (c.completed > 0 && max_window > 0) {
    c.jobs_per_sec = static_cast<double>(c.completed) / max_window;
  }
  c.job_imbalance = imbalance_ratio(c.jobs_per_shard);
  c.io_imbalance = imbalance_ratio(c.blocks_per_shard);
  return c;
}

}  // namespace pdm
