// Types for Cluster::submit_distributed — one sort spanning every shard.
//
// A distributed job is a coordinator around P ordinary range sub-jobs:
// sample splitters partition the input into P contiguous key ranges
// (range_partition.h), each range is pinned to one shard
// (SortJobSpec::target_shard) and rides the normal hold-queue/placement
// machinery, each shard sorts its range with the paper's small-pass
// algorithms at its single-shard pass count, and the coordinator
// concatenates the sorted ranges in splitter order. See cluster.h for the
// lifecycle and docs/ARCHITECTURE.md ("One giant sort") for the design.
#pragma once

#include <string>
#include <vector>

#include "core/sort_report.h"
#include "pdm/record.h"
#include "service/sort_job.h"

namespace pdm {

struct DistributedOptions {
  /// Ranges to split into; 0 = one per currently active shard.
  u32 ranges = 0;

  /// Oversampling factor: oversample * ranges sampled splitter
  /// candidates. Larger = tighter balance bound, more sampling work.
  u32 oversample = 32;

  /// Seed for splitter sampling (deterministic partitions per seed).
  u64 sample_seed = 1;

  /// Blocks per batched read when exporting sorted ranges off their
  /// shards; 0 = one allocation extent per disk (see extent_exchange.h).
  u64 exchange_span_blocks = 0;
};

/// Type-erased snapshot of a distributed job (Cluster::distributed_info /
/// distributed_wait). `state` is kRunning until every range sub-job is
/// terminal, then kDone / kCancelled / kFailed (failure wins over
/// cancellation when both occur).
struct DistributedInfo {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kRunning;
  u64 n = 0;
  u32 oversample = 0;
  double skew = 0;  // max/mean of the splitter partition sizes

  /// jobtrace causal id of the distributed job. Every range sub-job
  /// carries it as parent_trace_id, so one Chrome trace reconstructs the
  /// whole tree: this id's spans (partition, coordinate, concat) parent
  /// the per-range ids' phase spans and I/O tickets.
  u64 trace_id = 0;

  /// Per range: serving shard, cluster id of the sub-job, record count
  /// (after feasibility rounding) and — once terminal — the sub-job's
  /// report. Empty ranges have sub_jobs[i] == 0 and a default report.
  std::vector<u32> range_shards;
  std::vector<JobId> sub_jobs;
  std::vector<u64> range_records;
  std::vector<SortReport> range_reports;

  std::string error;  // first failing range's error, for kFailed
  double wall_s = 0;  // submit -> terminal, coordinator wall clock
};

/// Delivered to submit_distributed's completion callback. `output` is the
/// concatenated sorted dataset when info.state == kDone, empty otherwise.
template <Record R>
struct DistributedSortResult {
  std::vector<R> output;
  DistributedInfo info;
};

}  // namespace pdm
