// pdm::Cluster — elastic sharded multi-context serving.
//
// One SortService is one machine's worth of shared resources: one disk
// array, one memory budget, one worker pool. A Cluster owns N such shards
// — each with its own DiskBackend (stamped out by a BackendFactory), its
// own DiskAllocator, MemoryBudget and workers — behind a ShardRouter that
// places incoming jobs by policy (round-robin / power-of-two-choices
// least-loaded / consistent-hash locality ring). Shards share nothing, so
// jobs on different shards never contend for disks, allocator cursors,
// budget or the service mutex; routing multiplies jobs/sec while every
// job's pass count stays exactly its single-shard value (the paper's
// bounds are per-array properties — see bench_e16_cluster_routing).
//
// Elasticity: the topology is live. add_shard() stamps out a fresh
// SortService through the retained BackendFactory and inserts it into
// the router (the consistent-hash ring means only ~1/N locality keys
// remap to it). drain_shard(id) retires a shard without losing a job:
// placement stops, in-flight submissions settle, still-queued jobs are
// extracted (their shard records go kMigrated) and re-parked in the
// cluster hold queue for the surviving shards, running jobs finish, and
// the shard's terminal records and final stats move into cluster-held
// storage before the service is destroyed. Shard ids are slot indices
// and are never reused.
//
// Hold queue + work stealing: a job whose placed shard cannot admit it
// *right now* (no free worker or no memory headroom — ShardLoad::
// fits_now) parks in a cluster-level queue ordered priority-desc /
// EDF / FIFO instead of burying itself in the hot shard's local queue.
// Every time any shard finishes a task it pumps the queue (SortService
// capacity callback): the head jobs go to their home shard if it now
// has headroom, else the least-loaded other shard that can ever fit
// them steals them. Overflow spill (a job whose carve can NEVER fit its
// preferred shard) still rescans for a fitting shard at placement, and
// jobs no active shard can ever admit are rejected.
//
// Job ids are cluster-global; wait/info/cancel/forget proxy to the
// owning shard, follow migrations, and fall back to cluster-held records
// for retired shards and hold-queue terminals. ClusterStats rolls the
// per-shard ServiceStats (live and retired) up into cluster totals with
// the same exact-sum I/O invariant the service established, plus
// per-shard imbalance and elasticity figures the benches gate on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/cluster_stats.h"
#include "cluster/shard_router.h"
#include "pdm/backend_factory.h"
#include "service/sort_service.h"

namespace pdm {

struct ClusterConfig {
  usize shards = 2;

  /// Template for every shard. workers / total_memory_bytes /
  /// io_depth_total are PER SHARD: a cluster on the same aggregate
  /// hardware as one big service divides them by the shard count.
  /// (ServiceConfig::shard_id is overwritten with the shard index.)
  /// add_shard() without an explicit config also clones this template.
  ServiceConfig shard;

  /// Optional per-shard overrides (size must equal `shards` when
  /// non-empty): heterogeneous clusters, e.g. one big-memory shard.
  std::vector<ServiceConfig> shard_configs;

  RoutePolicy policy = RoutePolicy::kLeastLoaded;
  u64 router_seed = 1;

  /// Sticky spill-back: after this many consecutive overflow spills of one
  /// locality key, the router pins the key to its latest spill target
  /// instead of re-scanning every submission (0 disables); the target
  /// becomes the tenant's new preferred shard until it, too, stops
  /// fitting (which re-pins on the next spill) or is drained (which
  /// dissolves the pin).
  u32 spill_promote_after = 3;

  /// Virtual nodes per shard on the kLocalityHash consistent-hash ring;
  /// more vnodes = more uniform shard shares and remap fractions closer
  /// to 1/N (relative spread ~1/sqrt(vnodes)), at O(vnodes * shards)
  /// ring memory.
  u32 ring_vnodes = 256;

  /// Retention for cluster-held terminal records (retired shards' jobs
  /// and hold-queue terminals): keep at most this many, FIFO-evicted
  /// (0 = unbounded, matching ServiceConfig::retain_terminal_max).
  /// Lookups of an evicted id throw, exactly like shard-side retention.
  usize retain_cluster_records_max = 0;

  /// Cluster hold queue with work stealing: park jobs their placed shard
  /// lacks the headroom to start now and let other shards steal them
  /// (see the class comment). Off restores strict PR 3 placement —
  /// every job queues on the shard the router picked, however hot.
  /// Drain-time migration uses the queue regardless (migrated jobs
  /// dispatch as soon as any shard can take them).
  bool hold_queue = true;
};

class Cluster {
 public:
  /// Calls `make_backend(shard)` once per shard (and again for every
  /// add_shard); shards start their workers immediately.
  Cluster(BackendFactory make_backend, ClusterConfig cfg);

  /// Destroys the shards (joining their workers). Jobs still parked in
  /// the hold queue are dropped — drain() first if you care.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes and submits a sort job (same contract as SortService::submit,
  /// plus placement). Returns a cluster-global job id immediately. Only
  /// placement and id registration serialize on the cluster mutex; a
  /// direct shard submit (the common, headroom-available case) runs
  /// outside it, so submitters scale with the shards.
  template <Record R, class Cmp = std::less<R>>
  JobId submit(SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
               std::function<void(const SortResult<R>&)> on_complete = {}) {
    return submit_prepared(SortService::prepare<R>(
        std::move(spec), std::move(data), cmp, std::move(on_complete)));
  }

  /// Type-erased submission (see SortService::prepare): routing,
  /// headroom probe, hold-queue parking and id registration.
  JobId submit_prepared(PreparedJob job);

  /// Adds a live shard built from the config template (or an explicit
  /// one) and the retained BackendFactory; returns its id. The new shard
  /// joins the router — ~1/N of locality keys remap to it — and
  /// immediately steals any parked backlog it can admit.
  u32 add_shard();
  u32 add_shard(ServiceConfig sc);

  /// Retires shard `id` without losing a job: stops placements, migrates
  /// its still-queued jobs into the hold queue (they re-place on the
  /// surviving shards), lets running jobs finish, snapshots its terminal
  /// records and final stats into cluster-held storage, and destroys the
  /// service. Blocks until retirement completes. Topology changes
  /// serialize against each other; the last active shard cannot be
  /// drained.
  void drain_shard(u32 id);

  bool shard_active(u32 id) const;
  std::vector<u32> active_shards() const;

  /// Blocks until the job is terminal; returns its record (JobInfo::id is
  /// the cluster id, JobInfo::shard the serving shard). Follows hold-
  /// queue parking and drain migrations to wherever the job ends up.
  /// Like the service, throws for ids whose record the shard's retention
  /// policy already dropped — size the shards' retention to cover the
  /// waiting window.
  JobInfo wait(JobId id);

  /// Snapshot of one job (throws on unknown or retention-evicted id).
  /// Held jobs read as kQueued on their placed shard.
  JobInfo info(JobId id) const;

  /// Cancels the job wherever it currently is: in the hold queue (goes
  /// terminal immediately, cluster-side), or on its shard (same
  /// semantics as SortService::cancel). Follows migrations.
  bool cancel(JobId id);

  /// Drops a terminal job's record — on its shard, or from cluster-held
  /// storage for retired-shard and hold-queue terminals. Also returns
  /// true (and drops the mapping) when the shard's retention policy
  /// already evicted the record; false only while the job is still
  /// queued, held or running.
  bool forget(JobId id);

  /// Blocks until the hold queue is empty and every active shard is idle.
  void drain();

  ClusterStats stats() const;

  /// Slots ever created, including retired ones (shard ids are stable).
  usize num_shards() const;
  /// The live service on an active (or draining) slot; throws for
  /// retired slots. The reference stays valid until drain_shard(i)
  /// retires the slot — do not race the two (waiters that entered via
  /// wait()/info() are safe; this raw handle is an inspection hook).
  SortService& shard(usize i);
  /// Placement/topology introspection (ring, pins, active set). The
  /// router mutates under the cluster mutex on every placement and
  /// topology change; read it only while the cluster is quiescent
  /// (tests, telemetry after drain()).
  const ShardRouter& router() const noexcept { return router_; }

  /// The shard a submitted job is currently placed on (throws on unknown
  /// id); kHeldShard while it is parked in the hold queue.
  u32 shard_of(JobId id) const;

  static constexpr u32 kHeldShard = std::numeric_limits<u32>::max();

 private:
  using Clock = std::chrono::steady_clock;

  enum class SlotState { kActive, kDraining, kRetired };

  struct Slot {
    std::shared_ptr<SortService> service;  // null once retired
    SlotState state = SlotState::kActive;
    u64 in_flight_submits = 0;  // direct submits between unlock/relock
  };

  struct Placement {
    u32 shard = kHeldShard;  // kHeldShard = parked in the hold queue
    JobId local = 0;
  };

  struct HeldJob {
    JobId id = 0;   // cluster id
    u32 home = 0;   // placed shard that lacked headroom (re-routed if
                    // the home is drained before dispatch)
    PreparedJob job;
    Clock::time_point t_submit;
    Clock::time_point deadline_abs = Clock::time_point::max();
  };

  u32 make_shard_locked_id();
  std::shared_ptr<SortService> make_service(u32 id, ServiceConfig sc);
  std::vector<ShardLoad> shard_loads() const;

  struct PlaceResult {
    u32 shard = 0;
    bool admissible = false;  // false: no active shard can ever fit it
    usize carve = 0;          // admission carve on `shard` (0 on reject)
  };
  PlaceResult place_locked(const SortJobSpec& spec, usize record_bytes,
                           u64 n, std::span<const ShardLoad> loads);

  /// Dispatches every held job some active shard has headroom for (in
  /// queue order; home shard first, else steal to the least-loaded
  /// fitting shard), and cluster-rejects jobs no active shard can ever
  /// admit. Called on submit-park, capacity-freed callbacks, add_shard
  /// and migration.
  void pump_locked();
  void hold_insert_locked(HeldJob h);
  void on_capacity_freed();
  /// Stores a cluster-held terminal record, FIFO-evicting past
  /// ClusterConfig::retain_cluster_records_max.
  void add_record_locked(JobId id, JobInfo rec);

  static JobInfo held_snapshot(const HeldJob& h, JobState state);
  static bool held_before(const HeldJob& a, const HeldJob& b);
  Placement placement_of(JobId id) const;
  /// Every kPruneInterval submissions, drops mappings whose shard record
  /// is gone (forgotten or retention-evicted) so a long-lived cluster's
  /// id map stays bounded alongside the shards' own retention.
  void maybe_prune_locked();

  BackendFactory make_backend_;
  ClusterConfig cfg_;

  // mu_ is declared before the slots so it outlives the services during
  // destruction: shard workers may still call on_capacity_freed() (which
  // locks mu_ and observes stopping_) until their service joins them.
  mutable std::mutex mu_;
  // mutable: info() is a const snapshot but may briefly wait out a
  // migration race.
  mutable std::condition_variable place_cv_;
  std::mutex topo_mu_;                // serializes add_shard/drain_shard

  std::vector<Slot> slots_;
  ShardRouter router_;
  std::map<JobId, Placement> jobs_;
  /// Cluster-held terminal records: jobs cancelled or rejected out of
  /// the hold queue, and every job of a retired shard. Bounded by
  /// retain_cluster_records_max via the insertion-order FIFO (entries
  /// may be stale after forget()).
  std::map<JobId, JobInfo> records_;
  std::deque<JobId> record_fifo_;
  std::vector<HeldJob> hold_;  // sorted: priority desc, EDF, id asc
  /// Final ServiceStats snapshot of each retired slot (retained zeroed —
  /// those records live in records_ now).
  std::map<u32, ServiceStats> retired_stats_;
  JobId next_id_ = 1;
  bool stopping_ = false;
  std::vector<u64> jobs_per_shard_;
  u64 spilled_ = 0;
  u64 rejected_cluster_wide_ = 0;
  u64 held_total_ = 0;
  u64 held_cancelled_ = 0;
  u64 held_rejected_ = 0;
  u64 stolen_ = 0;
  u64 migrated_ = 0;
  u64 shards_added_ = 0;
  u64 shards_drained_ = 0;
  u64 submits_since_prune_ = 0;
  static constexpr u64 kPruneInterval = 1024;
};

}  // namespace pdm
