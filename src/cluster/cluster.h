// pdm::Cluster — elastic sharded multi-context serving.
//
// One SortService is one machine's worth of shared resources: one disk
// array, one memory budget, one worker pool. A Cluster owns N such shards
// — each with its own DiskBackend (stamped out by a BackendFactory), its
// own DiskAllocator, MemoryBudget and workers — behind a ShardRouter that
// places incoming jobs by policy (round-robin / power-of-two-choices
// least-loaded / consistent-hash locality ring). Shards share nothing, so
// jobs on different shards never contend for disks, allocator cursors,
// budget or the service mutex; routing multiplies jobs/sec while every
// job's pass count stays exactly its single-shard value (the paper's
// bounds are per-array properties — see bench_e16_cluster_routing).
//
// Elasticity: the topology is live. add_shard() stamps out a fresh
// SortService through the retained BackendFactory and inserts it into
// the router (the consistent-hash ring means only ~1/N locality keys
// remap to it). drain_shard(id) retires a shard without losing a job:
// placement stops, in-flight submissions settle, still-queued jobs are
// extracted (their shard records go kMigrated) and re-parked in the
// cluster hold queue for the surviving shards, running jobs finish, and
// the shard's terminal records and final stats move into cluster-held
// storage before the service is destroyed. Shard ids are slot indices
// and are never reused.
//
// Hold queue + work stealing: a job whose placed shard cannot admit it
// *right now* (no free worker or no memory headroom — ShardLoad::
// fits_now) parks in a cluster-level queue ordered priority-desc /
// EDF / FIFO instead of burying itself in the hot shard's local queue.
// Every time any shard finishes a task it pumps the queue (SortService
// capacity callback): the head jobs go to their home shard if it now
// has headroom, else the least-loaded other shard that can ever fit
// them steals them. Overflow spill (a job whose carve can NEVER fit its
// preferred shard) still rescans for a fitting shard at placement, and
// jobs no active shard can ever admit are rejected.
//
// Job ids are cluster-global; wait/info/cancel/forget proxy to the
// owning shard, follow migrations, and fall back to cluster-held records
// for retired shards and hold-queue terminals. ClusterStats rolls the
// per-shard ServiceStats (live and retired) up into cluster totals with
// the same exact-sum I/O invariant the service established, plus
// per-shard imbalance and elasticity figures the benches gate on.
//
// One giant sort: submit_distributed<R>() sorts a dataset no single
// shard could hold at one shard's wall clock divided by ~P. Sampled
// splitters partition the input into P contiguous key ranges
// (range_partition.h), each range is pinned to a shard
// (SortJobSpec::target_shard) and submitted through the normal
// hold-queue/placement path, each shard sorts its range locally at its
// paper-bound pass count, the sorted ranges are exported over the extent
// layer (extent_exchange.h) and concatenated in splitter order by a
// per-job coordinator thread. While any range is in flight its shard is
// fenced: drain_shard() on it throws (the graceful-shrink guard);
// add_shard() mid-sort is always safe — ranges were already placed, the
// newcomer just serves other traffic. cancel() on the distributed id
// cancels every range sub-job.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_stats.h"
#include "cluster/distributed_sort.h"
#include "cluster/range_partition.h"
#include "cluster/shard_router.h"
#include "pdm/backend_factory.h"
#include "pdm/extent_exchange.h"
#include "service/sort_service.h"
#include "util/introspect.h"
#include "util/jobtrace.h"
#include "util/trace.h"

namespace pdm {

struct ClusterConfig {
  usize shards = 2;

  /// Template for every shard. workers / total_memory_bytes /
  /// io_depth_total are PER SHARD: a cluster on the same aggregate
  /// hardware as one big service divides them by the shard count.
  /// (ServiceConfig::shard_id is overwritten with the shard index.)
  /// add_shard() without an explicit config also clones this template.
  ServiceConfig shard;

  /// Optional per-shard overrides (size must equal `shards` when
  /// non-empty): heterogeneous clusters, e.g. one big-memory shard.
  std::vector<ServiceConfig> shard_configs;

  RoutePolicy policy = RoutePolicy::kLeastLoaded;
  u64 router_seed = 1;

  /// Sticky spill-back: after this many consecutive overflow spills of one
  /// locality key, the router pins the key to its latest spill target
  /// instead of re-scanning every submission (0 disables); the target
  /// becomes the tenant's new preferred shard until it, too, stops
  /// fitting (which re-pins on the next spill) or is drained (which
  /// dissolves the pin).
  u32 spill_promote_after = 3;

  /// Virtual nodes per shard on the kLocalityHash consistent-hash ring;
  /// more vnodes = more uniform shard shares and remap fractions closer
  /// to 1/N (relative spread ~1/sqrt(vnodes)), at O(vnodes * shards)
  /// ring memory.
  u32 ring_vnodes = 256;

  /// Retention for cluster-held terminal records (retired shards' jobs
  /// and hold-queue terminals): keep at most this many, FIFO-evicted
  /// (0 = unbounded, matching ServiceConfig::retain_terminal_max).
  /// Lookups of an evicted id throw, exactly like shard-side retention.
  usize retain_cluster_records_max = 0;

  /// Cluster hold queue with work stealing: park jobs their placed shard
  /// lacks the headroom to start now and let other shards steal them
  /// (see the class comment). Off restores strict PR 3 placement —
  /// every job queues on the shard the router picked, however hot.
  /// Drain-time migration uses the queue regardless (migrated jobs
  /// dispatch as soon as any shard can take them).
  bool hold_queue = true;
};

class Cluster {
 public:
  /// Calls `make_backend(shard)` once per shard (and again for every
  /// add_shard); shards start their workers immediately.
  Cluster(BackendFactory make_backend, ClusterConfig cfg);

  /// Destroys the shards (joining their workers). In-flight distributed
  /// jobs are joined first (their sub-jobs run to completion on the
  /// still-live shards); jobs still parked in the hold queue are then
  /// dropped — drain() first if you care.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes and submits a sort job (same contract as SortService::submit,
  /// plus placement). Returns a cluster-global job id immediately. Only
  /// placement and id registration serialize on the cluster mutex; a
  /// direct shard submit (the common, headroom-available case) runs
  /// outside it, so submitters scale with the shards.
  template <Record R, class Cmp = std::less<R>>
  JobId submit(SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
               std::function<void(const SortResult<R>&)> on_complete = {}) {
    return submit_prepared(SortService::prepare<R>(
        std::move(spec), std::move(data), cmp, std::move(on_complete)));
  }

  /// Type-erased submission (see SortService::prepare): routing,
  /// headroom probe, hold-queue parking and id registration.
  JobId submit_prepared(PreparedJob job);

  /// One sort spanning the cluster (see the class comment): partitions
  /// `data` into contiguous key ranges by sampled splitters, pins one
  /// range per target shard, sorts each range locally with the paper's
  /// small-pass algorithms, and concatenates the results in splitter
  /// order. Returns a cluster-global id immediately; the id answers to
  /// distributed_wait / distributed_info / cancel (NOT to wait/info —
  /// those track the per-range sub-jobs, whose ids the info exposes).
  /// `on_complete`, if given, runs on the coordinator thread with the
  /// fully assembled output (empty unless the job completed). If it
  /// throws, the exception is swallowed and the job's final state
  /// becomes kFailed with the exception message as the error.
  ///
  /// Requirements: data.size() % spec.mem_records == 0 (feasibility
  /// rounding keeps every range a multiple of M so per-range plans stay
  /// within the paper's pass bounds), and every target shard must be
  /// able to admit a job of spec.mem_records (a pinned range is never
  /// spilled; an unfittable pin fails that range and the job).
  template <Record R, class Cmp = std::less<R>>
  JobId submit_distributed(
      SortJobSpec spec, std::vector<R> data, DistributedOptions opts = {},
      Cmp cmp = {},
      std::function<void(const DistributedSortResult<R>&)> on_complete = {}) {
    PDM_CHECK(!data.empty(), "submit_distributed: empty dataset");
    PDM_CHECK(spec.mem_records > 0,
              "submit_distributed: SortJobSpec.mem_records must be > 0");
    const auto t0 = Clock::now();
    // The distributed job's causal id: partition/coordinate/concat spans
    // are stamped with it, and every range sub-job carries it as parent.
    if (spec.trace_id == 0) spec.trace_id = jobtrace::mint();
    jobtrace::Scope trace_scope(spec.trace_id, spec.parent_trace_id);
    const u32 ranges = opts.ranges != 0
                           ? opts.ranges
                           : static_cast<u32>(active_shards().size());
    RangePartitionStats pst;
    trace::TraceSpan part_span("cluster", "dist_partition", "ranges", ranges);
    auto parts = partition_ranges<R, Cmp>(std::span<const R>(data), ranges,
                                          opts.oversample, spec.mem_records,
                                          opts.sample_seed, cmp, &pst);
    part_span.end();
    data.clear();
    data.shrink_to_fit();
    // Registers the job and fences its target shards against drains.
    const DistBegin begun = dist_begin(spec.name, pst, spec.trace_id);
    jobtrace::FlightRecorder::instance().record(
        spec.trace_id, jobtrace::EventKind::kAdmitted, spec.name.c_str(),
        ranges);
    auto gathered = std::make_shared<std::vector<std::vector<R>>>(ranges);
    std::vector<JobId> subs(ranges, 0);
    try {
      for (u32 r = 0; r < ranges; ++r) {
        if (parts[r].empty()) continue;
        SortJobSpec rs = spec;
        rs.name = spec.name + "/range" + std::to_string(r);
        rs.target_shard = begun.targets[r];
        rs.locality_key.clear();
        // Each range is its own causal node, parented by the distributed
        // job: the sub-job's spans carry (trace_id, parent_trace_id).
        rs.trace_id = jobtrace::mint();
        rs.parent_trace_id = spec.trace_id;
        const u64 span = opts.exchange_span_blocks;
        // The completion callback runs on the range's shard worker while
        // its output run and context are alive: exporting there is the
        // only window, and each range writes a distinct slot (the
        // coordinator reads it only after wait() observes kDone).
        PreparedJob pj = SortService::prepare<R>(
            std::move(rs), std::move(parts[r]), cmp,
            [gathered, r, span](const SortResult<R>& res) {
              (*gathered)[r] = export_run<R>(res.output, span);
            });
        const JobId sub = submit_prepared(std::move(pj));
        subs[r] = sub;
        dist_set_sub(begun.id, r, sub);
      }
      dist_spawn(begun.id, [this, id = begun.id, gathered, subs,
                            cb = std::move(on_complete), t0]() mutable {
        JobState fin = JobState::kDone;
        std::string error;
        std::vector<SortReport> reports(subs.size());
        for (usize r = 0; r < subs.size(); ++r) {
          if (subs[r] == 0) continue;  // empty range, never submitted
          JobInfo ji;
          try {
            ji = wait(subs[r]);
          } catch (const Error& e) {
            fin = JobState::kFailed;
            if (error.empty()) error = e.what();
            continue;
          }
          switch (ji.state) {
            case JobState::kDone:
              reports[r] = ji.report;
              break;
            case JobState::kCancelled:
              if (fin == JobState::kDone) fin = JobState::kCancelled;
              break;
            default:  // kFailed / kRejected
              fin = JobState::kFailed;
              if (error.empty()) {
                error = ji.error.empty() ? "range sub-job failed" : ji.error;
              }
              break;
          }
        }
        DistributedSortResult<R> result;
        if (fin == JobState::kDone) {
          usize total = 0;
          for (const auto& s : *gathered) total += s.size();
          trace::TraceSpan concat_span("cluster", "dist_concat", "records",
                                       total);
          result.output.reserve(total);
          for (auto& s : *gathered) {
            result.output.insert(result.output.end(), s.begin(), s.end());
            s.clear();
            s.shrink_to_fit();
          }
        }
        result.info = dist_seal(id, fin, std::move(reports),
                                std::move(error), seconds_since(t0));
        if (cb) {
          // A throwing callback must not escape the thread (that would
          // std::terminate) or leave the fence held: it becomes the
          // job's failure and the record publishes regardless. Empty
          // reports leave the already sealed per-range reports intact.
          try {
            cb(result);
          } catch (const std::exception& e) {
            dist_seal(id, JobState::kFailed, {},
                      std::string("on_complete threw: ") + e.what(),
                      result.info.wall_s);
          } catch (...) {
            dist_seal(id, JobState::kFailed, {}, "on_complete threw",
                      result.info.wall_s);
          }
        }
        dist_publish(id);  // callback done: release fence, wake waiters
      });
    } catch (...) {
      // Registration stands but no coordinator will run (submission or
      // spawn threw, e.g. during shutdown): retire the record so the
      // fence lifts and waiters see a terminal state.
      dist_seal(begun.id, JobState::kFailed, {},
                "submit_distributed aborted before coordination", 0);
      dist_publish(begun.id);
      throw;
    }
    return begun.id;
  }

  /// Blocks until the distributed job is terminal; returns its final
  /// info (throws on unknown distributed id).
  DistributedInfo distributed_wait(JobId id);

  /// Snapshot of a distributed job, live or terminal (throws on unknown
  /// distributed id).
  DistributedInfo distributed_info(JobId id) const;

  /// Adds a live shard built from the config template (or an explicit
  /// one) and the retained BackendFactory; returns its id. The new shard
  /// joins the router — ~1/N of locality keys remap to it — and
  /// immediately steals any parked backlog it can admit.
  u32 add_shard();
  u32 add_shard(ServiceConfig sc);

  /// Retires shard `id` without losing a job: stops placements, migrates
  /// its still-queued jobs into the hold queue (they re-place on the
  /// surviving shards), lets running jobs finish, snapshots its terminal
  /// records and final stats into cluster-held storage, and destroys the
  /// service. Blocks until retirement completes. Topology changes
  /// serialize against each other; the last active shard cannot be
  /// drained. Graceful-shrink guard: throws (before any state changes)
  /// while the shard owns an in-flight distributed range — pinned ranges
  /// cannot migrate, so retire the shard after distributed_wait().
  void drain_shard(u32 id);

  bool shard_active(u32 id) const;
  std::vector<u32> active_shards() const;

  /// Blocks until the job is terminal; returns its record (JobInfo::id is
  /// the cluster id, JobInfo::shard the serving shard). Follows hold-
  /// queue parking and drain migrations to wherever the job ends up.
  /// Like the service, throws for ids whose record the shard's retention
  /// policy already dropped — size the shards' retention to cover the
  /// waiting window.
  JobInfo wait(JobId id);

  /// Snapshot of one job (throws on unknown or retention-evicted id).
  /// Held jobs read as kQueued on their placed shard.
  JobInfo info(JobId id) const;

  /// Cancels the job wherever it currently is: in the hold queue (goes
  /// terminal immediately, cluster-side), or on its shard (same
  /// semantics as SortService::cancel). Follows migrations. A
  /// distributed id cancels every still-live range sub-job; the job goes
  /// kCancelled once they settle (ranges past their last checkpoint may
  /// still finish — if ALL did, the job completes anyway).
  bool cancel(JobId id);

  /// Drops a terminal job's record — on its shard, or from cluster-held
  /// storage for retired-shard and hold-queue terminals. Also returns
  /// true (and drops the mapping) when the shard's retention policy
  /// already evicted the record; false only while the job is still
  /// queued, held or running. Distributed ids work too: a terminal
  /// distributed record is dropped (a concurrent distributed_wait then
  /// throws instead of returning it), a still-running distributed job
  /// returns false.
  bool forget(JobId id);

  /// Blocks until the hold queue is empty, every active shard is idle
  /// and every distributed job's coordinator has retired its record.
  void drain();

  ClusterStats stats() const;

  /// Text exposition of the process-global metrics registry (counters,
  /// gauges, histograms — including per-span duration histograms when
  /// tracing is on), with the cluster's hold-queue depth gauge refreshed
  /// first. One `name value` line per metric; see metrics::Registry.
  std::string metrics_text() const;

  /// One coherent live snapshot: every queued/running job with its
  /// current phase (from the flight recorder) and elapsed times, the
  /// hold queue with park reasons, per-shard loads, the count of live
  /// distributed jobs, and the metrics exposition. Safe to call at any
  /// time from any thread: shard snapshots are taken outside the cluster
  /// mutex (same lock order as stats()).
  introspect::StateDump dump_state() const;
  /// introspect::to_text(dump_state()).
  std::string introspect_text() const;

  /// Slots ever created, including retired ones (shard ids are stable).
  usize num_shards() const;
  /// The live service on an active (or draining) slot; throws for
  /// retired slots. The reference stays valid until drain_shard(i)
  /// retires the slot — do not race the two (waiters that entered via
  /// wait()/info() are safe; this raw handle is an inspection hook).
  SortService& shard(usize i);
  /// Placement/topology introspection (ring, pins, active set). The
  /// router mutates under the cluster mutex on every placement and
  /// topology change; read it only while the cluster is quiescent
  /// (tests, telemetry after drain()).
  const ShardRouter& router() const noexcept { return router_; }

  /// The shard a submitted job is currently placed on (throws on unknown
  /// id); kHeldShard while it is parked in the hold queue.
  u32 shard_of(JobId id) const;

  static constexpr u32 kHeldShard = std::numeric_limits<u32>::max();

 private:
  using Clock = std::chrono::steady_clock;

  enum class SlotState { kActive, kDraining, kRetired };

  struct Slot {
    std::shared_ptr<SortService> service;  // null once retired
    SlotState state = SlotState::kActive;
    u64 in_flight_submits = 0;  // direct submits between unlock/relock
  };

  struct Placement {
    u32 shard = kHeldShard;  // kHeldShard = parked in the hold queue
    JobId local = 0;
  };

  struct HeldJob {
    JobId id = 0;   // cluster id
    u32 home = 0;   // placed shard that lacked headroom (re-routed if
                    // the home is drained before dispatch)
    PreparedJob job;
    Clock::time_point t_submit;
    Clock::time_point deadline_abs = Clock::time_point::max();
    std::string park_reason;  // why it parked (introspection + flight ring)
  };

  u32 make_shard_locked_id();
  std::shared_ptr<SortService> make_service(u32 id, ServiceConfig sc);
  std::vector<ShardLoad> shard_loads() const;

  struct PlaceResult {
    u32 shard = 0;
    bool admissible = false;  // false: no active shard can ever fit it
    usize carve = 0;          // admission carve on `shard` (0 on reject)
  };
  PlaceResult place_locked(const SortJobSpec& spec, usize record_bytes,
                           u64 n, std::span<const ShardLoad> loads);

  /// Dispatches every held job some active shard has headroom for (in
  /// queue order; home shard first, else steal to the least-loaded
  /// fitting shard), and cluster-rejects jobs no active shard can ever
  /// admit. Called on submit-park, capacity-freed callbacks, add_shard
  /// and migration.
  void pump_locked();
  void hold_insert_locked(HeldJob h);
  void on_capacity_freed();
  /// Stores a cluster-held terminal record, FIFO-evicting past
  /// ClusterConfig::retain_cluster_records_max.
  void add_record_locked(JobId id, JobInfo rec);

  static JobInfo held_snapshot(const HeldJob& h, JobState state);
  static bool held_before(const HeldJob& a, const HeldJob& b);
  Placement placement_of(JobId id) const;
  static double seconds_since(Clock::time_point t0);

  // --- distributed jobs (submit_distributed) ---------------------------
  /// A live distributed job: the progressively filled info (range ->
  /// shard ownership in range_shards is the drain fence) plus the cancel
  /// latch for sub-jobs registered after cancel() raced submission.
  struct DistJob {
    DistributedInfo info;
    bool cancel_requested = false;
  };
  struct DistBegin {
    JobId id = 0;
    std::vector<u32> targets;  // one target shard per range
  };
  /// Registers a distributed job under a fresh cluster id: assigns each
  /// range a target from the active set (round-robin over actives) and
  /// publishes the ownership that fences those shards against drains.
  /// `trace_id` is the job's jobtrace id; the coordinator thread re-
  /// establishes it as its scope.
  DistBegin dist_begin(const std::string& name, const RangePartitionStats& pst,
                       u64 trace_id);
  /// Records a submitted range sub-job's cluster id; cancels it
  /// immediately when cancel() already hit the distributed job.
  void dist_set_sub(JobId dist, u32 range, JobId sub);
  /// Starts the coordinator thread for a registered distributed job
  /// (reaping any previously finished coordinators on the way).
  void dist_spawn(JobId dist, std::function<void()> body);
  /// Moves the threads whose bodies have finished out of dist_threads_;
  /// the caller joins them outside mu_ (the joins return immediately —
  /// a finished body has only the thread exit left).
  std::vector<std::thread> reap_dist_threads_locked();
  /// Seals a distributed job's final state + per-range reports into its
  /// live registration and returns the final info. The job stays live
  /// (fence held, distributed_wait() still blocked) until dist_publish —
  /// the coordinator runs the completion callback in between, so waiters
  /// never observe a terminal job whose callback hasn't finished.
  DistributedInfo dist_seal(JobId dist, JobState fin,
                            std::vector<SortReport> reports,
                            std::string error, double wall_s);
  /// Retires a sealed distributed job: stats roll-up, fence release;
  /// wakes distributed_wait()ers and drain().
  void dist_publish(JobId dist);
  /// cancel() for distributed ids: true when cancellation was initiated
  /// on a live job (sub-jobs already terminal may still complete).
  bool dist_cancel(JobId id);
  /// Every kPruneInterval submissions, drops mappings whose shard record
  /// is gone (forgotten or retention-evicted) so a long-lived cluster's
  /// id map stays bounded alongside the shards' own retention.
  void maybe_prune_locked();

  BackendFactory make_backend_;
  ClusterConfig cfg_;

  // mu_ is declared before the slots so it outlives the services during
  // destruction: shard workers may still call on_capacity_freed() (which
  // locks mu_ and observes stopping_) until their service joins them.
  mutable std::mutex mu_;
  // mutable: info() is a const snapshot but may briefly wait out a
  // migration race.
  mutable std::condition_variable place_cv_;
  std::mutex topo_mu_;                // serializes add_shard/drain_shard

  std::vector<Slot> slots_;
  ShardRouter router_;
  std::map<JobId, Placement> jobs_;
  /// Cluster-held terminal records: jobs cancelled or rejected out of
  /// the hold queue, and every job of a retired shard. Bounded by
  /// retain_cluster_records_max via the insertion-order FIFO (entries
  /// may be stale after forget()).
  std::map<JobId, JobInfo> records_;
  std::deque<JobId> record_fifo_;
  std::vector<HeldJob> hold_;  // sorted: priority desc, EDF, id asc
  /// Final ServiceStats snapshot of each retired slot (retained zeroed —
  /// those records live in records_ now).
  std::map<u32, ServiceStats> retired_stats_;
  /// Distributed jobs: live (coordinator running; keys fence their range
  /// shards against drain_shard) and terminal records (droppable via
  /// forget()). Coordinator threads register under a token; a finished
  /// coordinator queues its token in dist_finished_threads_ as its last
  /// cluster touch, and the next dist_spawn (or the destructor) joins
  /// and erases it — finished threads do not accumulate across a
  /// long-lived cluster's many distributed sorts.
  std::map<JobId, DistJob> dist_jobs_;
  std::map<JobId, DistributedInfo> dist_records_;
  std::map<u64, std::thread> dist_threads_;
  std::vector<u64> dist_finished_threads_;
  u64 next_dist_thread_ = 0;
  u64 dist_submitted_ = 0;
  u64 dist_completed_ = 0;
  u64 dist_cancelled_ = 0;
  u64 dist_failed_ = 0;
  std::vector<u64> dist_last_range_records_;
  double dist_last_skew_ = 0;
  double dist_max_skew_ = 0;
  JobId next_id_ = 1;
  bool stopping_ = false;
  std::vector<u64> jobs_per_shard_;
  u64 spilled_ = 0;
  u64 rejected_cluster_wide_ = 0;
  u64 held_total_ = 0;
  u64 held_cancelled_ = 0;
  u64 held_rejected_ = 0;
  u64 held_rejected_deadline_ = 0;  // subset of held_rejected_ (pump check)
  u64 stolen_ = 0;
  u64 migrated_ = 0;
  u64 shards_added_ = 0;
  u64 shards_drained_ = 0;
  u64 submits_since_prune_ = 0;
  static constexpr u64 kPruneInterval = 1024;
};

}  // namespace pdm
