// pdm::Cluster — sharded multi-context serving.
//
// One SortService is one machine's worth of shared resources: one disk
// array, one memory budget, one worker pool. A Cluster owns N such shards
// — each with its own DiskBackend (stamped out by a BackendFactory), its
// own DiskAllocator, MemoryBudget and workers — behind a ShardRouter that
// places incoming jobs by policy (round-robin / power-of-two-choices
// least-loaded / locality hash). Shards share nothing, so jobs on
// different shards never contend for disks, allocator cursors, budget or
// the service mutex; routing multiplies jobs/sec while every job's pass
// count stays exactly its single-shard value (the paper's bounds are
// per-array properties — see bench_e16_cluster_routing).
//
// Overflow spill: a job whose memory carve can never fit its preferred
// shard's budget is retried on the least-loaded shard where it does fit
// before being rejected cluster-wide, so heterogeneous shards (one big-
// memory shard among small ones) serve oversized tenants without pinning
// every job to the big shard.
//
// Job ids are cluster-global; wait/info/cancel/forget proxy to the owning
// shard. ClusterStats rolls the per-shard ServiceStats up into cluster
// totals with the same exact-sum I/O invariant the service established,
// plus per-shard imbalance figures the benches gate on.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster_stats.h"
#include "cluster/shard_router.h"
#include "pdm/backend_factory.h"
#include "service/sort_service.h"

namespace pdm {

struct ClusterConfig {
  usize shards = 2;

  /// Template for every shard. workers / total_memory_bytes /
  /// io_depth_total are PER SHARD: a cluster on the same aggregate
  /// hardware as one big service divides them by the shard count.
  /// (ServiceConfig::shard_id is overwritten with the shard index.)
  ServiceConfig shard;

  /// Optional per-shard overrides (size must equal `shards` when
  /// non-empty): heterogeneous clusters, e.g. one big-memory shard.
  std::vector<ServiceConfig> shard_configs;

  RoutePolicy policy = RoutePolicy::kLeastLoaded;
  u64 router_seed = 1;

  /// Sticky spill-back: after this many consecutive overflow spills of one
  /// locality key, the router pins the key to its latest spill target
  /// instead of re-scanning every submission (0 disables); the target
  /// becomes the tenant's new preferred shard until it, too, stops
  /// fitting (which re-pins on the next spill).
  u32 spill_promote_after = 3;
};

class Cluster {
 public:
  /// Calls `make_backend(shard)` once per shard; shards start their
  /// workers immediately.
  Cluster(BackendFactory make_backend, ClusterConfig cfg);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes and submits a sort job (same contract as SortService::submit,
  /// plus placement). Returns a cluster-global job id immediately. Only
  /// placement and id registration serialize on the cluster mutex; the
  /// shard submit itself (staging the closure, admission checks) runs
  /// outside it, so submitters scale with the shards.
  template <Record R, class Cmp = std::less<R>>
  JobId submit(SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
               std::function<void(const SortResult<R>&)> on_complete = {}) {
    // Load snapshots are taken outside the router lock (each one briefly
    // takes its shard's mutex).
    std::vector<ShardLoad> loads = shard_loads();
    u32 shard = 0;
    {
      std::lock_guard g(mu_);
      shard = place_locked(spec, sizeof(R), data.size(), loads);
    }
    const JobId local = shards_[shard]->submit<R>(
        std::move(spec), std::move(data), cmp, std::move(on_complete));
    std::lock_guard g(mu_);
    const JobId id = next_id_++;
    jobs_.emplace(id, Placement{shard, local});
    ++jobs_per_shard_[shard];
    maybe_prune_locked();
    return id;
  }

  /// Blocks until the job is terminal; returns its record (JobInfo::id is
  /// the cluster id, JobInfo::shard the serving shard). Like the service,
  /// throws for ids whose record the shard's retention policy already
  /// dropped — size the shards' retention to cover the waiting window.
  JobInfo wait(JobId id);

  /// Snapshot of one job (throws on unknown or retention-evicted id).
  JobInfo info(JobId id) const;

  /// Cancels on the owning shard (same semantics as SortService::cancel).
  bool cancel(JobId id);

  /// Drops a terminal job's record on its shard and the cluster mapping.
  /// Also returns true (and drops the mapping) when the shard's retention
  /// policy already evicted the record; false only while the job is still
  /// queued or running.
  bool forget(JobId id);

  /// Blocks until every shard is idle.
  void drain();

  ClusterStats stats() const;

  usize num_shards() const noexcept { return shards_.size(); }
  SortService& shard(usize i) { return *shards_.at(i); }
  const ShardRouter& router() const noexcept { return router_; }

  /// The shard a submitted job was placed on (throws on unknown id).
  u32 shard_of(JobId id) const;

 private:
  struct Placement {
    u32 shard = 0;
    JobId local = 0;
  };

  std::vector<ShardLoad> shard_loads() const;
  u32 place_locked(const SortJobSpec& spec, usize record_bytes, u64 n,
                   std::span<const ShardLoad> loads);
  Placement placement_of(JobId id) const;
  /// Every kPruneInterval submissions, drops mappings whose shard record
  /// is gone (forgotten or retention-evicted) so a long-lived cluster's
  /// id map stays bounded alongside the shards' own retention.
  void maybe_prune_locked();

  std::vector<std::unique_ptr<SortService>> shards_;

  mutable std::mutex mu_;
  ShardRouter router_;
  std::map<JobId, Placement> jobs_;
  JobId next_id_ = 1;
  std::vector<u64> jobs_per_shard_;
  u64 spilled_ = 0;
  u64 rejected_cluster_wide_ = 0;
  u64 submits_since_prune_ = 0;
  static constexpr u64 kPruneInterval = 1024;
};

}  // namespace pdm
