// Splitter sampling and range partitioning for distributed sample-sort
// (Rahn/Sanders/Singler: sample -> distribute -> local sort -> concat).
//
// Splitter math. We draw s = oversample * P sample positions uniformly at
// random (with replacement), sort the samples, and take every (s/P)-th as
// a splitter — the classic sample-sort estimate of the input's P-quantiles.
// With oversampling factor k, the largest of the P ranges exceeds
// (1 + eps) * N / P with probability at most P * exp(-(eps^2/2) * k / (1+eps))
// (Chernoff over the binomial count of samples falling in an interval of
// more than (1+eps)N/P keys); k in the tens already keeps eps around 1/4
// w.h.p., which tests/distributed_sort_test.cpp asserts as a property
// across input distributions.
//
// Duplicate keys would void that bound (an all-equal input has no
// splitters at all under plain cmp), so splitters are (record, original
// position) pairs compared lexicographically under (cmp, position).
// Position tie-breaking refines cmp into a total order with all N
// elements distinct, so the balance bound holds for ANY input — including
// adversarially skewed and all-equal ones — and records with equal keys
// split cleanly across a range boundary. Ranges stay contiguous in key
// order: max(range i) <= min(range i+1) under cmp, which is what lets the
// cluster concatenate locally sorted ranges into one sorted output.
//
// Feasibility rounding. The paper's small-pass algorithms want n to be a
// multiple of the memory budget M (choose_plan's feasibility rules), so
// each sampled splitter's rank is rounded to the nearest multiple of M
// and replaced by the EXACT order statistic at that rank (successive
// nth_element over a tag-index array — O(N * P) worst case, one pass in
// practice). Records are then classified against those exact boundary
// elements in a single order-preserving scan. This matters for more than
// feasibility: because each range is exactly the records of a contiguous
// rank interval, in their original relative order, a range of a random
// permutation is itself a random permutation of its key set — so the
// expected-pass algorithms' displacement bound (shuffling lemma) applies
// to every range sub-job exactly as it does to a standalone job. A
// donation-style rounding that moved boundary records between already
// built ranges would perturb positions by up to M-1 and trip the on-line
// displacement check's fallback. Requires N % M == 0 so the last
// boundary lands exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "cluster/cluster_stats.h"
#include "pdm/record.h"
#include "util/common.h"
#include "util/rng.h"

namespace pdm {

/// Partition quality figures, as tracked into ClusterStats.
struct RangePartitionStats {
  u64 n = 0;
  u32 ranges = 0;
  u32 oversample = 0;
  /// Range sizes straight from the splitters (the property the sampling
  /// bound speaks about) and after feasibility rounding (what each shard
  /// actually sorts).
  std::vector<u64> raw_sizes;
  std::vector<u64> sizes;
  /// max/mean of raw_sizes: 1.0 = perfect splitters.
  double skew = 0;
};

/// Splits `data` into `ranges` contiguous key ranges using sampled
/// splitters (seeded, deterministic). With mem_records > 1 and more than
/// one range, splitter ranks are rounded so every range size is a
/// multiple of mem_records (data size must then be a multiple too).
/// Ranges may be empty. The concatenation of the returned ranges is an
/// exact permutation of `data`, every range preserves its records'
/// original relative order, and ranges are ordered: no record in range i
/// compares greater under `cmp` than any record in range i+1.
template <Record R, class Cmp = std::less<R>>
std::vector<std::vector<R>> partition_ranges(
    std::span<const R> data, u32 ranges, u32 oversample, u64 mem_records,
    u64 seed, Cmp cmp = {}, RangePartitionStats* stats = nullptr) {
  PDM_CHECK(ranges > 0, "partition_ranges: need at least one range");
  PDM_CHECK(oversample > 0, "partition_ranges: oversample must be > 0");
  const u64 n = data.size();
  std::vector<std::vector<R>> out(ranges);
  RangePartitionStats st;
  st.n = n;
  st.ranges = ranges;
  st.oversample = oversample;
  if (ranges == 1 || n == 0) {
    out[0].assign(data.begin(), data.end());
    st.raw_sizes.assign(ranges, 0);
    st.raw_sizes[0] = n;
    st.sizes = st.raw_sizes;
    st.skew = imbalance_ratio(st.raw_sizes);
    if (stats != nullptr) *stats = std::move(st);
    return out;
  }
  if (mem_records > 1) {
    PDM_CHECK(n % mem_records == 0,
              "partition_ranges: n must be a multiple of mem_records so "
              "rounded range boundaries stay plan-feasible");
  }

  // (record, original position) with position tie-break: a total order
  // refining cmp, under which all N elements are distinct.
  struct Tagged {
    R rec;
    u64 pos;
  };
  auto tagged_less = [&cmp](const Tagged& a, const Tagged& b) {
    if (cmp(a.rec, b.rec)) return true;
    if (cmp(b.rec, a.rec)) return false;
    return a.pos < b.pos;
  };

  // Sample s = oversample * P positions, sort, take the P-quantiles.
  Rng rng(seed);
  const u64 s = static_cast<u64>(oversample) * ranges;
  std::vector<Tagged> sample;
  sample.reserve(static_cast<usize>(s));
  for (u64 i = 0; i < s; ++i) {
    const u64 p = rng.below(n);
    sample.push_back(Tagged{data[static_cast<usize>(p)], p});
  }
  std::sort(sample.begin(), sample.end(), tagged_less);
  std::vector<Tagged> splitters;
  splitters.reserve(ranges - 1);
  for (u32 i = 1; i < ranges; ++i) {
    splitters.push_back(sample[static_cast<usize>(i * s / ranges)]);
  }

  // Raw partition sizes under the sampled splitters — a counting pass
  // only; this is the partition the sampling balance bound speaks about.
  st.raw_sizes.assign(ranges, 0);
  for (u64 p = 0; p < n; ++p) {
    const Tagged t{data[static_cast<usize>(p)], p};
    const auto it =
        std::upper_bound(splitters.begin(), splitters.end(), t, tagged_less);
    ++st.raw_sizes[static_cast<usize>(it - splitters.begin())];
  }
  st.skew = imbalance_ratio(st.raw_sizes);

  // Boundary ranks: the raw splitters' ranks, rounded to the nearest
  // multiple of M (kept monotone; rounding moves each boundary < M).
  std::vector<u64> cuts;  // interior boundaries; cuts[r] ends range r
  cuts.reserve(ranges - 1);
  {
    u64 cum = 0;
    u64 prev = 0;
    for (u32 i = 0; i + 1 < ranges; ++i) {
      cum += st.raw_sizes[i];
      u64 t = cum;
      if (mem_records > 1) {
        t = ((cum + mem_records / 2) / mem_records) * mem_records;
      }
      t = std::max(std::min(t, n), prev);
      cuts.push_back(t);
      prev = t;
    }
  }

  // Exact order statistics at the cut ranks, via successive nth_element
  // over a tag-index array: after cutting at absolute rank t, idx[t] is
  // the rank-t element (the first record of the next range). Cuts at n
  // have no element — they close empty tail ranges.
  std::vector<Tagged> bounds;  // boundary element per cut with rank < n
  {
    std::vector<u64> idx(static_cast<usize>(n));
    std::iota(idx.begin(), idx.end(), u64{0});
    auto idx_less = [&](u64 a, u64 b) {
      const Tagged ta{data[static_cast<usize>(a)], a};
      const Tagged tb{data[static_cast<usize>(b)], b};
      return tagged_less(ta, tb);
    };
    u64 lo = 0;
    for (u64 t : cuts) {
      if (t >= n) break;  // monotone: all further cuts are n too
      // The very first cut must select even at t == lo == 0 (a rank that
      // rounded down to zero): idx[0] still holds iota's position 0
      // there, not the rank-0 minimum, and a wrong first bound can leave
      // `bounds` unsorted — UB in the upper_bound classification below.
      // Later cuts equal to lo reuse the element a prior nth_element
      // already placed at that rank.
      if (t > lo || bounds.empty()) {
        std::nth_element(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                         idx.begin() + static_cast<std::ptrdiff_t>(t),
                         idx.end(), idx_less);
        lo = t;
      }
      const u64 b = idx[static_cast<usize>(t)];
      bounds.push_back(Tagged{data[static_cast<usize>(b)], b});
    }
  }

  // Classify: record (r, p) goes to the first range whose boundary
  // element is strictly greater under the tagged order; past the last
  // real boundary it goes to the range that boundary count names (any
  // trailing ranges are empty). One scan, original relative order
  // preserved within every range.
  for (auto& r : out) r.reserve(static_cast<usize>(n / ranges + 1));
  for (u64 p = 0; p < n; ++p) {
    const Tagged t{data[static_cast<usize>(p)], p};
    const auto it =
        std::upper_bound(bounds.begin(), bounds.end(), t, tagged_less);
    out[static_cast<usize>(it - bounds.begin())].push_back(t.rec);
  }

  st.sizes.reserve(ranges);
  for (const auto& r : out) st.sizes.push_back(r.size());
  if (stats != nullptr) *stats = std::move(st);
  return out;
}

}  // namespace pdm
