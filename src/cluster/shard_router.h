// ShardRouter: decides which SortService shard serves a job.
//
// Placement is the whole game once I/O bandwidth is the bottleneck
// (Rahn/Sanders/Singler, "Scalable Distributed-Memory External Sorting"):
// throughput tracks how evenly work spreads over independent disk groups,
// while per-job pass counts stay the paper-optimal ones no matter where a
// job lands. Three policies cover the classic tradeoffs:
//
//  - kRoundRobin: perfectly even job counts, blind to job size and to
//    shard state. The baseline the benches compare against.
//  - kLeastLoaded: power-of-two-choices — sample two random shards, take
//    the one with the lower ShardLoad::score() (queue depth + reserved-
//    memory fraction). Near-optimal balance at O(1) cost, and sampling
//    avoids the stampede of every router chasing one idle shard.
//  - kLocalityHash: stable placement by SortJobSpec::locality_key, so a
//    returning tenant lands where its plan-cache entries and (for file
//    backends) page-cache pages are still warm. Jobs without a key fall
//    back to round-robin.
//
// Sticky spill-back: a keyed tenant whose preferred shard keeps refusing
// its jobs (admission carve above the shard budget) spills on every
// submission — a full load scan each time, landing wherever happens to be
// lightest. After `spill_promote_after` consecutive spills of one key the
// router pins that key to its latest spill target: subsequent placements
// go there directly (any policy), no re-scan — the spill target becomes
// the tenant's new preferred home. If the pinned shard later stops
// fitting, the next spill re-pins to the new target. A streak that has
// not yet promoted resets when the tenant fits its policy-preferred
// shard. The owning Cluster reports spills/successes via note_spill()/
// note_preferred_ok().
//
// The router is a placement function over a loads snapshot plus a little
// mixing state (round-robin cursor, RNG, sticky map); it is NOT
// thread-safe — the owning Cluster serializes placement under its own
// mutex.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>

#include "service/service_stats.h"
#include "service/sort_job.h"
#include "util/rng.h"

namespace pdm {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kLocalityHash,
};

inline const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
    case RoutePolicy::kLocalityHash: return "locality_hash";
  }
  return "?";
}

/// Parses a policy name as printed by route_policy_name (CLI flags);
/// throws pdm::Error on anything else.
RoutePolicy route_policy_from_name(const std::string& name);

/// FNV-1a of the locality key; exposed so tests can pick keys that land
/// on specific shards.
u64 locality_hash(const std::string& key);

class ShardRouter {
 public:
  ShardRouter(usize shards, RoutePolicy policy, u64 seed = 1);

  RoutePolicy policy() const noexcept { return policy_; }

  /// Preferred shard for `spec` given the current loads (loads.size() must
  /// equal the shard count). A key pinned by sticky spill-back overrides
  /// the policy.
  u32 place(const SortJobSpec& spec, std::span<const ShardLoad> loads);

  /// Consecutive spills of one locality key before its placement sticks
  /// to the spill target; 0 (default) disables sticky spill-back.
  void set_spill_promote_after(u32 n) { spill_promote_after_ = n; }
  u32 spill_promote_after() const noexcept { return spill_promote_after_; }

  /// Records that a keyed job spilled from its preferred shard to
  /// `to_shard`; promotes the key after spill_promote_after consecutive
  /// spills. Unkeyed jobs (empty key) are ignored.
  void note_spill(const std::string& key, u32 to_shard);

  /// Records a successful placement on the key's policy-preferred shard:
  /// resets its spill streak and clears any pin.
  void note_preferred_ok(const std::string& key);

  /// The shard `key` is currently pinned to, if any.
  std::optional<u32> pinned_shard(const std::string& key) const;

  /// Lowest-score shard for which `admissible(shard)` holds, excluding
  /// `exclude` (pass >= shard count to exclude nothing). Returns the shard
  /// count when no shard qualifies. This is the overflow-spill scan: a
  /// full scan, not a sample — spills are rare and worth the extra looks.
  template <class Pred>
  u32 least_loaded_where(std::span<const ShardLoad> loads, u32 exclude,
                         Pred admissible) const {
    u32 best = static_cast<u32>(loads.size());
    for (u32 i = 0; i < loads.size(); ++i) {
      if (i == exclude || !admissible(i)) continue;
      if (best == loads.size() || loads[i].score() < loads[best].score()) {
        best = i;
      }
    }
    return best;
  }

 private:
  struct Sticky {
    u32 streak = 0;       // consecutive spills
    u32 target = 0;       // latest spill destination
    bool pinned = false;  // streak reached spill_promote_after
  };

  u32 round_robin();

  usize shards_;
  RoutePolicy policy_;
  u64 rr_ = 0;
  Rng rng_;
  u32 spill_promote_after_ = 0;
  std::map<std::string, Sticky> sticky_;
  static constexpr usize kStickyCap = 4096;  // bound on tracked tenants
};

}  // namespace pdm
