// ShardRouter: decides which SortService shard serves a job.
//
// Placement is the whole game once I/O bandwidth is the bottleneck
// (Rahn/Sanders/Singler, "Scalable Distributed-Memory External Sorting"):
// throughput tracks how evenly work spreads over independent disk groups,
// while per-job pass counts stay the paper-optimal ones no matter where a
// job lands. Three policies cover the classic tradeoffs:
//
//  - kRoundRobin: perfectly even job counts, blind to job size and to
//    shard state. The baseline the benches compare against.
//  - kLeastLoaded: power-of-two-choices — sample two random shards, take
//    the one with the lower ShardLoad::score() (queue depth + reserved-
//    memory fraction). Near-optimal balance at O(1) cost, and sampling
//    avoids the stampede of every router chasing one idle shard.
//  - kLocalityHash: stable placement by SortJobSpec::locality_key on a
//    consistent-hash ring (HashRing, virtual nodes), so a returning
//    tenant lands where its plan-cache entries and (for file backends)
//    page-cache pages are still warm. Jobs without a key fall back to
//    round-robin.
//
// The router owns the cluster's live topology: shards are added and
// removed at runtime (add_shard / remove_shard) and every policy places
// over the *active* set only. The locality ring is the reason this is
// cheap — a topology change remaps only the ~1/N of keys whose arcs the
// joining shard claims (or the leaving shard releases); everyone else
// keeps their warm shard. Load snapshots stay indexed by shard id (slot),
// covering retired slots with placeholders, so ids never shift under a
// drain.
//
// Sticky spill-back: a keyed tenant whose preferred shard keeps refusing
// its jobs (admission carve above the shard budget) spills on every
// submission — a full load scan each time, landing wherever happens to be
// lightest. After `spill_promote_after` consecutive spills of one key the
// router pins that key to its latest spill target: subsequent placements
// go there directly (any policy), no re-scan — the spill target becomes
// the tenant's new preferred home. If the pinned shard later stops
// fitting, the next spill re-pins to the new target; if it is drained
// from the cluster, the pin dissolves and the tenant re-learns. A streak
// that has not yet promoted resets when the tenant fits its
// policy-preferred shard. The owning Cluster reports spills/successes via
// note_spill()/note_preferred_ok().
//
// The router is a placement function over a loads snapshot plus a little
// mixing state (round-robin cursor, RNG, sticky map, ring); it is NOT
// thread-safe — the owning Cluster serializes placement and topology
// changes under its own mutex.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "service/service_stats.h"
#include "service/sort_job.h"
#include "util/rng.h"

namespace pdm {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kLocalityHash,
};

inline const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
    case RoutePolicy::kLocalityHash: return "locality_hash";
  }
  return "?";
}

/// Parses a policy name as printed by route_policy_name (CLI flags);
/// throws pdm::Error on anything else.
RoutePolicy route_policy_from_name(const std::string& name);

/// FNV-1a of the locality key; exposed so tests can pick keys that land
/// on specific shards.
u64 locality_hash(const std::string& key);

class ShardRouter {
 public:
  /// "No shard" sentinel returned by the scans below.
  static constexpr u32 kNone = 0xffffffffu;

  /// Starts with shards 0..shards-1 active. `ring_vnodes` is the virtual
  /// node count per shard on the locality ring (see HashRing).
  ShardRouter(usize shards, RoutePolicy policy, u64 seed = 1,
              u32 ring_vnodes = 256);

  RoutePolicy policy() const noexcept { return policy_; }

  /// Topology: shard ids are slot indices assigned by the cluster and
  /// never reused. Adding inserts the id into the active set and the
  /// ring; removing drops it (and dissolves sticky pins that target it).
  void add_shard(u32 id);
  void remove_shard(u32 id);
  bool is_active(u32 id) const;
  const std::vector<u32>& active() const noexcept { return active_; }
  usize num_active() const noexcept { return active_.size(); }
  const HashRing& ring() const noexcept { return ring_; }

  /// Preferred shard for `spec` given the current loads. `loads` is
  /// indexed by shard id and must cover every active id (retired slots
  /// may hold placeholders). A hard pin (SortJobSpec::target_shard, used
  /// by distributed range jobs) overrides everything while its target is
  /// active; below that, a key pinned by sticky spill-back overrides the
  /// policy while its target is active.
  u32 place(const SortJobSpec& spec, std::span<const ShardLoad> loads);

  /// Consecutive spills of one locality key before its placement sticks
  /// to the spill target; 0 (default) disables sticky spill-back.
  void set_spill_promote_after(u32 n) { spill_promote_after_ = n; }
  u32 spill_promote_after() const noexcept { return spill_promote_after_; }

  /// Records that a keyed job spilled from its preferred shard to
  /// `to_shard`; promotes the key after spill_promote_after consecutive
  /// spills. Unkeyed jobs (empty key) are ignored.
  void note_spill(const std::string& key, u32 to_shard);

  /// Records a successful placement on the key's policy-preferred shard:
  /// resets its spill streak and clears any pin.
  void note_preferred_ok(const std::string& key);

  /// The active shard `key` is currently pinned to, if any (a pin whose
  /// target was drained reads as no pin).
  std::optional<u32> pinned_shard(const std::string& key) const;

  /// Lowest-score active shard for which `admissible(shard)` holds,
  /// excluding `exclude` (pass kNone to exclude nothing). Returns kNone
  /// when no shard qualifies. This is the overflow-spill / work-steal
  /// scan: a full scan, not a sample — these are rare and worth the
  /// extra looks.
  template <class Pred>
  u32 least_loaded_where(std::span<const ShardLoad> loads, u32 exclude,
                         Pred admissible) const {
    u32 best = kNone;
    for (u32 i : active_) {
      if (i == exclude || !admissible(i)) continue;
      if (best == kNone || loads[i].score() < loads[best].score()) {
        best = i;
      }
    }
    return best;
  }

 private:
  struct Sticky {
    u32 streak = 0;       // consecutive spills
    u32 target = 0;       // latest spill destination
    bool pinned = false;  // streak reached spill_promote_after
  };

  u32 round_robin();

  std::vector<u32> active_;  // sorted ascending
  RoutePolicy policy_;
  HashRing ring_;
  u64 rr_ = 0;
  Rng rng_;
  u32 spill_promote_after_ = 0;
  std::map<std::string, Sticky> sticky_;
  static constexpr usize kStickyCap = 4096;  // bound on tracked tenants
};

}  // namespace pdm
