// ShardRouter: decides which SortService shard serves a job.
//
// Placement is the whole game once I/O bandwidth is the bottleneck
// (Rahn/Sanders/Singler, "Scalable Distributed-Memory External Sorting"):
// throughput tracks how evenly work spreads over independent disk groups,
// while per-job pass counts stay the paper-optimal ones no matter where a
// job lands. Three policies cover the classic tradeoffs:
//
//  - kRoundRobin: perfectly even job counts, blind to job size and to
//    shard state. The baseline the benches compare against.
//  - kLeastLoaded: power-of-two-choices — sample two random shards, take
//    the one with the lower ShardLoad::score() (queue depth + reserved-
//    memory fraction). Near-optimal balance at O(1) cost, and sampling
//    avoids the stampede of every router chasing one idle shard.
//  - kLocalityHash: stable placement by SortJobSpec::locality_key, so a
//    returning tenant lands where its plan-cache entries and (for file
//    backends) page-cache pages are still warm. Jobs without a key fall
//    back to round-robin.
//
// The router is a pure placement function over a loads snapshot plus a
// little mixing state (round-robin cursor, RNG); it is NOT thread-safe —
// the owning Cluster serializes placement under its own mutex.
#pragma once

#include <span>
#include <string>

#include "service/service_stats.h"
#include "service/sort_job.h"
#include "util/rng.h"

namespace pdm {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kLocalityHash,
};

inline const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
    case RoutePolicy::kLocalityHash: return "locality_hash";
  }
  return "?";
}

/// Parses a policy name as printed by route_policy_name (CLI flags);
/// throws pdm::Error on anything else.
RoutePolicy route_policy_from_name(const std::string& name);

/// FNV-1a of the locality key; exposed so tests can pick keys that land
/// on specific shards.
u64 locality_hash(const std::string& key);

class ShardRouter {
 public:
  ShardRouter(usize shards, RoutePolicy policy, u64 seed = 1);

  RoutePolicy policy() const noexcept { return policy_; }

  /// Preferred shard for `spec` given the current loads (loads.size() must
  /// equal the shard count).
  u32 place(const SortJobSpec& spec, std::span<const ShardLoad> loads);

  /// Lowest-score shard for which `admissible(shard)` holds, excluding
  /// `exclude` (pass >= shard count to exclude nothing). Returns the shard
  /// count when no shard qualifies. This is the overflow-spill scan: a
  /// full scan, not a sample — spills are rare and worth the extra looks.
  template <class Pred>
  u32 least_loaded_where(std::span<const ShardLoad> loads, u32 exclude,
                         Pred admissible) const {
    u32 best = static_cast<u32>(loads.size());
    for (u32 i = 0; i < loads.size(); ++i) {
      if (i == exclude || !admissible(i)) continue;
      if (best == loads.size() || loads[i].score() < loads[best].score()) {
        best = i;
      }
    }
    return best;
  }

 private:
  u32 round_robin();

  usize shards_;
  RoutePolicy policy_;
  u64 rr_ = 0;
  Rng rng_;
};

}  // namespace pdm
