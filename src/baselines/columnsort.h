// Chaudhry–Cormen three-pass out-of-core columnsort [7, 9] — the baseline
// the paper compares its three-pass algorithms against (Observations 4.1
// and 5.1).
//
// Leighton's columnsort on an r x c matrix (r >= 2(c-1)^2) is 8 steps:
// (1) sort columns, (2) transpose+reshape, (3) sort columns,
// (4) untranspose, (5) sort columns, (6) shift down r/2, (7) sort columns,
// (8) unshift. Chaudhry & Cormen fold these into 3 passes by attaching
// each permutation to the neighbouring pass's read or write; we realize
// the same folding on the PDM:
//   pass 1 = steps 1+2: sort each input column, write it decimated
//            stride-c into c part-runs (the transpose read pattern);
//   pass 2 = steps 3+4: gather each transposed column from its c parts,
//            sort, write as c contiguous segments (the untranspose
//            pattern);
//   pass 3 = steps 5-8: gather each final column (segment i of every
//            pass-2 column — their interleave order is irrelevant because
//            the column gets sorted), sort, and apply the shift/sort/
//            unshift as a stream of disjoint r-record windows offset by
//            r/2: emit sort(held_upper_half ∪ next_lower_half), retain the
//            next upper half.
// Capacity: r <= M and r >= 2(c-1)^2 give N = r*c <= M*sqrt(M/2); block
// alignment additionally needs B | r/c. Oblivious.
#pragma once

#include "core/capacity.h"
#include "core/sort_report.h"
#include "internal/insort.h"
#include "pdm/memory_budget.h"
#include "pdm/striped_run.h"

namespace pdm {

struct ColumnsortOptions {
  u64 mem_records = 0;
  u64 rows = 0;  // 0 = derive from N (largest feasible c)
  u64 cols = 0;
  ThreadPool* pool = nullptr;
};

struct ColumnsortGeometry {
  u64 rows = 0;
  u64 cols = 0;
  bool ok = false;
};

/// Finds (r, c) with r*c == n, r <= M, r >= 2(c-1)^2, B | r/c.
inline ColumnsortGeometry columnsort_geometry(u64 n, u64 mem, u64 rpb) {
  for (u64 c = isqrt(mem); c >= 2; --c) {
    if (n % c != 0) continue;
    const u64 r = n / c;
    if (r > mem) continue;
    if (r < 2 * (c - 1) * (c - 1)) continue;
    if ((r % c) != 0 || ((r / c) % rpb) != 0) continue;
    return {r, c, true};
  }
  return {};
}

/// Largest feasible N <= M*sqrt(M/2) for the given geometry constraints.
inline u64 max_columnsort_n(u64 mem, u64 rpb) {
  u64 best = 0;
  for (u64 c = 2; 2 * (c - 1) * (c - 1) <= mem; ++c) {
    const u64 r = round_down(mem, c * rpb);
    if (r == 0 || r < 2 * (c - 1) * (c - 1)) continue;
    best = std::max(best, r * c);
  }
  return best;
}

template <Record R, class Cmp = std::less<R>>
SortResult<R> columnsort_cc_sort(PdmContext& ctx, const StripedRun<R>& input,
                                 const ColumnsortOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  ColumnsortGeometry g{opt.rows, opt.cols, opt.rows != 0 && opt.cols != 0};
  if (!g.ok) g = columnsort_geometry(n, mem, rpb);
  PDM_CHECK(g.ok, "no feasible columnsort geometry for this N, M, B");
  const u64 r = g.rows;
  const u64 c = g.cols;
  PDM_CHECK(r * c == n && r <= mem && r >= 2 * (c - 1) * (c - 1),
            "invalid columnsort geometry");
  PDM_CHECK(r % c == 0 && (r / c) % rpb == 0,
            "columnsort parts must be block aligned (B | r/c)");
  const u64 p = r / c;  // part/segment length

  ReportBuilder rb(ctx, "Columnsort-CC", n, mem, rpb);

  TrackedBuffer<R> col(ctx.budget(), static_cast<usize>(r));
  TrackedBuffer<R> gather(ctx.budget(), static_cast<usize>(r));
  TrackedBuffer<R> scratch;
  if (opt.pool != nullptr) {
    scratch = TrackedBuffer<R>(ctx.budget(), static_cast<usize>(r));
  }
  auto sort_col = [&](std::span<R> data) {
    internal_sort(data, cmp, opt.pool,
                  opt.pool != nullptr ? scratch.span() : std::span<R>{});
  };

  // Pass 1: steps 1+2.
  std::vector<std::vector<StripedRun<R>>> part1(static_cast<usize>(c));
  for (u64 i = 0; i < c; ++i) {
    input.read_blocks(i * r / rpb, r / rpb, col.data());
    sort_col(col.span());
    // Decimate stride-c: part t = sorted positions congruent t (mod c).
    for (u64 t = 0; t < c; ++t) {
      R* dst = gather.data() + t * p;
      for (u64 j = 0; j < p; ++j) dst[j] = col[j * c + t];
    }
    auto& parts = part1[static_cast<usize>(i)];
    std::vector<WriteReq> reqs;
    for (u64 t = 0; t < c; ++t) {
      parts.emplace_back(ctx, static_cast<u32>((i + t) % ctx.D()));
    }
    for (u64 b = 0; b < p / rpb; ++b) {
      for (u64 t = 0; t < c; ++t) {
        reqs.push_back(parts[static_cast<usize>(t)].stage_append_block(
            gather.data() + t * p + b * rpb));
      }
    }
    ctx.io().write(reqs);
    for (auto& part : parts) part.finish();
  }

  // Pass 2: steps 3+4. Transposed column i' = concat over q of part
  // d(q, i') = (i' - q*r) mod c of pass-1 column q.
  std::vector<std::vector<StripedRun<R>>> part2(static_cast<usize>(c));
  for (u64 i2 = 0; i2 < c; ++i2) {
    {
      std::vector<ReadReq> reqs;
      for (u64 q = 0; q < c; ++q) {
        const u64 qr = (q * r) % c;
        const u64 d = (i2 + c - qr) % c;
        const auto& part = part1[static_cast<usize>(q)][static_cast<usize>(d)];
        for (u64 b = 0; b < p / rpb; ++b) {
          reqs.push_back(part.read_req(b, col.data() + q * p + b * rpb));
        }
      }
      ctx.io().read(reqs);
    }
    sort_col(col.span());
    // Write as c contiguous segments (untranspose read pattern).
    auto& segs = part2[static_cast<usize>(i2)];
    std::vector<WriteReq> reqs;
    for (u64 t = 0; t < c; ++t) {
      segs.emplace_back(ctx, static_cast<u32>((i2 + t) % ctx.D()));
    }
    for (u64 b = 0; b < p / rpb; ++b) {
      for (u64 t = 0; t < c; ++t) {
        reqs.push_back(segs[static_cast<usize>(t)].stage_append_block(
            col.data() + t * p + b * rpb));
      }
    }
    ctx.io().write(reqs);
    for (auto& seg : segs) seg.finish();
  }

  // Pass 3: steps 5-8. Final column i = segment i of every pass-2 column
  // (interleave order irrelevant: the column is sorted next); then the
  // shift/sort/unshift as disjoint r-windows offset r/2.
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);
  TrackedBuffer<R> window(ctx.budget(), static_cast<usize>(r));  // H ∪ lower
  u64 held = 0;  // records carried in window[0..held)
  for (u64 i = 0; i < c; ++i) {
    {
      std::vector<ReadReq> reqs;
      for (u64 y = 0; y < c; ++y) {
        const auto& seg = part2[static_cast<usize>(y)][static_cast<usize>(i)];
        for (u64 b = 0; b < p / rpb; ++b) {
          reqs.push_back(seg.read_req(b, gather.data() + y * p + b * rpb));
        }
      }
      ctx.io().read(reqs);
    }
    sort_col(gather.span());  // step 5 for this column
    if (i == 0) {
      // W'_0: the first half-window is already final.
      result.output.append(std::span<const R>(gather.data(), r / 2));
    } else {
      // Window = held upper half + this column's lower half.
      std::copy(gather.data(), gather.data() + r / 2, window.data() + held);
      sort_col(std::span<R>(window.data(), static_cast<usize>(held + r / 2)));
      result.output.append(
          std::span<const R>(window.data(), static_cast<usize>(held + r / 2)));
    }
    std::copy(gather.data() + r / 2, gather.data() + r, window.data());
    held = r - r / 2;
  }
  result.output.append(std::span<const R>(window.data(), held));
  result.output.finish();
  PDM_ASSERT(result.output.size() == n, "columnsort record count mismatch");

  result.report = rb.finish();
  return result;
}

}  // namespace pdm
