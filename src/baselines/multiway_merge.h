// External multiway mergesort with forecasting prefetch — the
// STXXL/Dementiev–Sanders-style baseline. Run formation (one pass), then
// merge levels of fan-in F; each level is one pass over the data but its
// parallel-I/O count depends on forecasting quality (see
// primitives/multiway.h). Not oblivious: the I/O schedule is data
// dependent, which is precisely the contrast with the paper's algorithms
// that bench_e12_parallelism quantifies.
#pragma once

#include <optional>

#include "core/sort_report.h"
#include "primitives/multiway.h"
#include "primitives/run_formation.h"

namespace pdm {

struct MultiwaySortOptions {
  u64 mem_records = 0;
  usize lookahead = 1;     // prefetched blocks per run (0 = naive)
  usize refill_batch = 0;  // 0 = D
  u64 fan_in = 0;          // 0 = maximum that fits in memory
  ThreadPool* pool = nullptr;
  usize async_depth = 0;  // >= 2: async I/O pipeline depth; 0 = inherit
};

/// Predicted pass count: 1 + ceil(log_F(N/M)) for fan-in F.
inline double multiway_predicted_passes(u64 n, u64 mem, u64 fan_in) {
  if (n <= mem) return 2.0;  // read + write
  double levels = 0;
  u64 runs = ceil_div(n, mem);
  while (runs > 1) {
    runs = ceil_div(runs, fan_in);
    levels += 1;
  }
  return 1.0 + levels;
}

template <Record R, class Cmp = std::less<R>>
SortResult<R> multiway_merge_sort(PdmContext& ctx,
                                  const StripedRun<R>& input,
                                  const MultiwaySortOptions& opt,
                                  Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  PDM_CHECK(mem % rpb == 0, "M must be a multiple of B");
  u64 fan = opt.fan_in;
  if (fan == 0) {
    const u64 slots = mem / rpb;
    PDM_CHECK(slots > ctx.D() + 2, "memory too small for merging");
    fan = std::max<u64>(2, (slots - ctx.D()) / (1 + opt.lookahead));
  }

  std::optional<AsyncDepthScope> async_scope;
  if (opt.async_depth != 0) async_scope.emplace(ctx.aio(), opt.async_depth);
  ReportBuilder rb(ctx, "MultiwayMerge", n, mem, rpb);

  RunFormationOptions fopt;
  fopt.run_len = mem;
  fopt.pool = opt.pool;
  auto runs = form_runs_flat<R>(ctx, input, fopt, cmp);

  SortResult<R> result;
  u64 level = 0;
  while (true) {
    if (runs.size() == 1) {
      // Already one sorted run: it is the output (no extra pass).
      result.output = std::move(runs[0]);
      break;
    }
    std::vector<StripedRun<R>> next;
    const bool final_level = runs.size() <= fan;
    for (usize g = 0; g < runs.size(); g += fan) {
      const usize cnt = std::min<usize>(fan, runs.size() - g);
      std::span<const StripedRun<R>> group(runs.data() + g, cnt);
      StripedRun<R> merged(ctx, static_cast<u32>(g % ctx.D()));
      RunSink<R> sink(merged);
      MergePassOptions mopt;
      mopt.mem_records = mem;
      mopt.lookahead = opt.lookahead;
      mopt.refill_batch = opt.refill_batch;
      multiway_merge_pass<R>(ctx, group, sink, mopt, cmp);
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
    ++level;
    if (final_level) {
      PDM_ASSERT(runs.size() == 1, "final merge level left multiple runs");
      result.output = std::move(runs[0]);
      break;
    }
  }
  PDM_ASSERT(result.output.size() == n, "multiway record count mismatch");
  result.report = rb.finish();
  return result;
}

}  // namespace pdm
