// BlockMatrix: a 2-D grid of blocks with diagonal striping, the layout the
// mesh algorithm of §3.1 needs. Cell (r, c) lives on disk (r + c) mod D,
// so both a full block-row and a full block-column of the grid touch every
// disk and can be moved at full parallelism — the property the paper uses
// to make each mesh phase one pass.
#pragma once

#include <span>
#include <vector>

#include "pdm/pdm_context.h"
#include "pdm/record.h"

namespace pdm {

template <Record R>
class BlockMatrix {
 public:
  BlockMatrix(PdmContext& ctx, u64 block_rows, u64 block_cols)
      : ctx_(&ctx),
        block_rows_(block_rows),
        block_cols_(block_cols),
        rpb_(ctx.rpb<R>()),
        cells_(static_cast<usize>(block_rows * block_cols)) {
    for (u64 r = 0; r < block_rows; ++r) {
      for (u64 c = 0; c < block_cols; ++c) {
        const u32 disk = static_cast<u32>((r + c) % ctx.D());
        cells_[idx(r, c)] = ctx.alloc_block(disk);
      }
    }
  }

  u64 block_rows() const noexcept { return block_rows_; }
  u64 block_cols() const noexcept { return block_cols_; }
  usize rpb() const noexcept { return rpb_; }
  u64 records() const noexcept { return block_rows_ * block_cols_ * rpb_; }

  ReadReq read_req(u64 r, u64 c, R* dst) const {
    return ReadReq{cells_[idx(r, c)], reinterpret_cast<std::byte*>(dst)};
  }

  WriteReq write_req(u64 r, u64 c, const R* src) const {
    return WriteReq{cells_[idx(r, c)],
                    reinterpret_cast<const std::byte*>(src)};
  }

  /// Reads block-row r (all columns) into dst, one parallel batch.
  void read_block_row(u64 r, R* dst) const {
    std::vector<ReadReq> reqs;
    reqs.reserve(static_cast<usize>(block_cols_));
    for (u64 c = 0; c < block_cols_; ++c) {
      reqs.push_back(read_req(r, c, dst + c * rpb_));
    }
    ctx_->io().read(reqs);
  }

  void write_block_row(u64 r, const R* src) const {
    std::vector<WriteReq> reqs;
    reqs.reserve(static_cast<usize>(block_cols_));
    for (u64 c = 0; c < block_cols_; ++c) {
      reqs.push_back(write_req(r, c, src + c * rpb_));
    }
    ctx_->io().write(reqs);
  }

  /// Reads block-column c (all rows) into dst, one parallel batch.
  void read_block_col(u64 c, R* dst) const {
    std::vector<ReadReq> reqs;
    reqs.reserve(static_cast<usize>(block_rows_));
    for (u64 r = 0; r < block_rows_; ++r) {
      reqs.push_back(read_req(r, c, dst + r * rpb_));
    }
    ctx_->io().read(reqs);
  }

  void write_block_col(u64 c, const R* src) const {
    std::vector<WriteReq> reqs;
    reqs.reserve(static_cast<usize>(block_rows_));
    for (u64 r = 0; r < block_rows_; ++r) {
      reqs.push_back(write_req(r, c, src + r * rpb_));
    }
    ctx_->io().write(reqs);
  }

 private:
  usize idx(u64 r, u64 c) const {
    PDM_CHECK(r < block_rows_ && c < block_cols_, "matrix cell out of range");
    return static_cast<usize>(r * block_cols_ + c);
  }

  PdmContext* ctx_;
  u64 block_rows_;
  u64 block_cols_;
  usize rpb_;
  std::vector<BlockRef> cells_;
};

}  // namespace pdm
