// Prefetch / write-behind ring buffers for the asynchronous I/O pipeline.
//
// Two building blocks sit between the algorithms and AsyncIoScheduler:
//
//  - WriteBehindRing: a fixed ring of staging slabs. submit_copy() copies
//    a write batch's payload into the next slab and submits it
//    asynchronously, so the caller's buffers are reusable the moment the
//    call returns — the write "lands" later, but per-disk FIFO ordering in
//    the scheduler guarantees any subsequent read of those blocks sees the
//    new data. Re-acquiring a slab waits for its previous submission: the
//    ring depth is the write-behind distance.
//
//  - ReadAheadRing<R>: a fixed ring of record slabs for streaming reads.
//    The producer stages the next batch into stage(), push()es it (which
//    submits the reads), and the consumer takes filled slabs in FIFO order
//    with front()/pop() — front() blocks only if the oldest read has not
//    landed yet. With depth 2 this is classic double buffering.
//
// Both rings wait out their in-flight tickets on destruction, so no
// asynchronous request can outlive the buffers it targets.
//
// Extent behaviour: a ring submission is one batch, and the scheduler's
// coalescing pass runs per batch — so a read-ahead chunk or a write-
// behind slab goes to each disk as extent-sized transfers (the slab copy
// preserves the producer's per-disk strides, which is what makes the
// rewritten requests coalescible). Requests are never merged *across*
// submissions: each ticket must remain an independently completable unit.
#pragma once

#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "pdm/async_io.h"
#include "pdm/memory_budget.h"

namespace pdm {

class WriteBehindRing {
 public:
  /// Staging slabs are charged to `budget` when one is supplied, so the
  /// write-behind distance shows up in reported memory peaks like every
  /// other working buffer.
  explicit WriteBehindRing(AsyncIoScheduler& aio,
                           MemoryBudget* budget = nullptr, usize depth = 2)
      : aio_(&aio), budget_(budget), slots_(depth == 0 ? 1 : depth) {}

  ~WriteBehindRing() {
    try {
      drain();
    } catch (...) {
      // Destruction during unwinding: the error stays sticky in the
      // scheduler and surfaces at the next pipeline interaction.
    }
    if (budget_ != nullptr) {
      for (auto& s : slots_) budget_->release(s.buf.size());
    }
  }

  WriteBehindRing(const WriteBehindRing&) = delete;
  WriteBehindRing& operator=(const WriteBehindRing&) = delete;

  /// Caps the staging copy: batches larger than this bypass the ring and
  /// run as ordered submit-and-wait writes (stats-identical, no copy, no
  /// slab). Bounds write-behind memory to depth * cap — without a cap a
  /// bulk producer staging a whole dataset in one batch would charge its
  /// full size to the budget, which a service carving per-job budgets
  /// cannot afford.
  void set_max_slab_bytes(usize bytes) { max_slab_bytes_ = bytes; }
  usize max_slab_bytes() const noexcept { return max_slab_bytes_; }

  /// Submits the batch with its payload copied into an internal slab; the
  /// caller's source buffers may be reused immediately. Extent requests
  /// (count > 1, possibly strided) are flattened contiguously into the
  /// slab. Synchronous (and copy-free) while the pipeline is disabled or
  /// the batch exceeds the slab cap.
  IoTicket submit_copy(std::span<const WriteReq> reqs) {
    if (reqs.empty()) return 0;
    if (!aio_->enabled()) {
      aio_->sync().write(reqs);
      return 0;
    }
    const usize bb = aio_->sync().backend().block_bytes();
    u64 total_blocks = 0;
    for (const auto& w : reqs) total_blocks += w.count;
    if (total_blocks * bb > max_slab_bytes_) {
      aio_->write(reqs);  // ordered through the per-disk queues
      return 0;
    }
    Slot& s = slots_[cur_];
    cur_ = (cur_ + 1) % slots_.size();
    aio_->wait(s.ticket);
    const usize want = static_cast<usize>(total_blocks) * bb;
    if (budget_ != nullptr && want != s.buf.size()) {
      if (want > s.buf.size()) budget_->acquire(want - s.buf.size());
      else budget_->release(s.buf.size() - want);
    }
    s.buf.resize(want);
    s.reqs.assign(reqs.begin(), reqs.end());
    usize off = 0;
    for (usize i = 0; i < reqs.size(); ++i) {
      const i64 stride = reqs[i].stride_or(bb);
      s.reqs[i].src = s.buf.data() + off;
      s.reqs[i].src_stride_bytes = 0;  // flattened: contiguous in the slab
      for (u64 b = 0; b < reqs[i].count; ++b) {
        std::memcpy(s.buf.data() + off,
                    reqs[i].src + static_cast<i64>(b) * stride, bb);
        off += bb;
      }
    }
    s.ticket = aio_->write_async(s.reqs);
    return s.ticket;
  }

  /// Blocks until every submitted write has landed.
  void drain() {
    for (auto& s : slots_) {
      aio_->wait(s.ticket);
      s.ticket = 0;
    }
  }

 private:
  struct Slot {
    std::vector<std::byte> buf;
    std::vector<WriteReq> reqs;
    IoTicket ticket = 0;
  };

  AsyncIoScheduler* aio_;
  MemoryBudget* budget_;
  std::vector<Slot> slots_;
  usize cur_ = 0;
  usize max_slab_bytes_ = std::numeric_limits<usize>::max();
};

template <class R>
class ReadAheadRing {
 public:
  /// `slab_records` must fit the largest staged batch; slabs are charged
  /// to `budget` (documented pipeline slack, not algorithm working set).
  ReadAheadRing(AsyncIoScheduler& aio, MemoryBudget& budget,
                usize slab_records, usize depth)
      : aio_(&aio) {
    PDM_CHECK(depth >= 1, "ReadAheadRing needs at least one slab");
    slots_.reserve(depth);
    for (usize i = 0; i < depth; ++i) {
      slots_.emplace_back(budget, slab_records);
    }
  }

  ~ReadAheadRing() {
    for (auto& s : slots_) {
      try {
        aio_->wait(s.ticket);
      } catch (...) {
      }
    }
  }

  ReadAheadRing(const ReadAheadRing&) = delete;
  ReadAheadRing& operator=(const ReadAheadRing&) = delete;

  usize capacity() const { return slots_.size(); }
  usize filled() const { return filled_; }
  bool full() const { return filled_ == slots_.size(); }
  bool empty() const { return filled_ == 0; }

  /// Staging buffer for the next push (only valid while !full()).
  R* stage() {
    PDM_CHECK(!full(), "ReadAheadRing overflow");
    return slots_[head_].buf.data();
  }

  /// Submits `reqs` (which must read into stage()) and marks the slab
  /// filled; `valid[i]` = records block i of the slab will hold.
  void push(std::span<const ReadReq> reqs, std::vector<usize> valid) {
    PDM_CHECK(!full(), "ReadAheadRing overflow");
    Slot& s = slots_[head_];
    s.ticket = aio_->read_async(reqs);
    s.valid = std::move(valid);
    head_ = (head_ + 1) % slots_.size();
    ++filled_;
  }

  struct View {
    R* data;
    const std::vector<usize>* valid;
  };

  /// Oldest filled slab; blocks until its read has landed.
  View front() {
    PDM_CHECK(!empty(), "ReadAheadRing underflow");
    Slot& s = slots_[tail_];
    aio_->wait(s.ticket);
    s.ticket = 0;
    return View{s.buf.data(), &s.valid};
  }

  void pop() {
    PDM_CHECK(!empty(), "ReadAheadRing underflow");
    tail_ = (tail_ + 1) % slots_.size();
    --filled_;
  }

 private:
  struct Slot {
    TrackedBuffer<R> buf;
    std::vector<usize> valid;
    IoTicket ticket = 0;

    Slot(MemoryBudget& budget, usize records) : buf(budget, records) {}
  };

  AsyncIoScheduler* aio_;
  std::vector<Slot> slots_;
  usize head_ = 0;
  usize tail_ = 0;
  usize filled_ = 0;
};

/// Scope guard: drains the pipeline on destruction so that no in-flight
/// request outlives stack buffers declared before it (declare the guard
/// *after* the buffers it protects).
class PipelineDrainGuard {
 public:
  explicit PipelineDrainGuard(AsyncIoScheduler& aio) : aio_(&aio) {}
  ~PipelineDrainGuard() {
    try {
      aio_->drain();
    } catch (...) {
    }
  }

  PipelineDrainGuard(const PipelineDrainGuard&) = delete;
  PipelineDrainGuard& operator=(const PipelineDrainGuard&) = delete;

 private:
  AsyncIoScheduler* aio_;
};

}  // namespace pdm
