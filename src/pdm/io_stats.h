// Parallel-I/O accounting: the figures of merit for every experiment.
//
// A "pass" over N records is N/(D*B) parallel reads plus N/(D*B) parallel
// writes (paper, §1). The scheduler counts every parallel operation and
// every block moved, so utilization (blocks per op / D) and pass counts are
// exact, not assumed.
#pragma once

#include <mutex>
#include <vector>

#include "util/common.h"

namespace pdm {

/// Cost model for simulated time: a parallel I/O costs one seek plus one
/// block transfer (disks work in parallel, so a round costs the max over
/// its members, which is this same constant).
struct CostModel {
  double seek_s = 0.004;           // average positioning time
  double bytes_per_s = 100.0e6;    // sustained transfer rate per disk

  double round_cost(usize block_bytes) const {
    return seek_s + static_cast<double>(block_bytes) / bytes_per_s;
  }
};

struct IoStats {
  u64 read_ops = 0;        // parallel read operations
  u64 write_ops = 0;       // parallel write operations
  u64 blocks_read = 0;
  u64 blocks_written = 0;
  // Physical-transfer accounting: backend requests actually issued after
  // extent coalescing — one per syscall on the file backend. The paper's
  // op counts above are block-granular and unaffected by coalescing, so
  // pass counts stay exact while calls shrink as transfers grow.
  u64 read_calls = 0;
  u64 write_calls = 0;
  double sim_time_s = 0.0;  // simulated elapsed time under CostModel
  std::vector<u64> disk_reads;   // blocks read per disk
  std::vector<u64> disk_writes;  // blocks written per disk
  std::vector<u64> disk_read_calls;   // coalesced requests per disk
  std::vector<u64> disk_write_calls;

  /// FNV-1a hash of the full I/O schedule (disk, index, r/w per request in
  /// order). Two runs of an oblivious algorithm on same-sized inputs must
  /// produce identical hashes; this is how the obliviousness tests work.
  u64 schedule_hash = 14695981039346656037ULL;

  void reset(u32 num_disks) {
    *this = IoStats{};
    disk_reads.assign(num_disks, 0);
    disk_writes.assign(num_disks, 0);
    disk_read_calls.assign(num_disks, 0);
    disk_write_calls.assign(num_disks, 0);
  }

  void hash_request(u32 disk, u64 index, bool is_write) {
    auto mix = [this](u64 v) {
      schedule_hash ^= v;
      schedule_hash *= 1099511628211ULL;
    };
    mix(disk);
    mix(index);
    mix(is_write ? 0x77 : 0x52);
  }

  u64 total_ops() const { return read_ops + write_ops; }
  u64 total_blocks() const { return blocks_read + blocks_written; }

  /// Pass count as defined in the paper: ops normalized by N/(D*B) reads
  /// plus the same number of writes.
  double passes(u64 n_records, u64 records_per_block, u32 num_disks) const {
    const double per_pass =
        static_cast<double>(n_records) /
        (static_cast<double>(records_per_block) * num_disks);
    return static_cast<double>(total_ops()) / (2.0 * per_pass);
  }

  double read_passes(u64 n, u64 rpb, u32 d) const {
    return static_cast<double>(read_ops) /
           (static_cast<double>(n) / (static_cast<double>(rpb) * d));
  }

  double write_passes(u64 n, u64 rpb, u32 d) const {
    return static_cast<double>(write_ops) /
           (static_cast<double>(n) / (static_cast<double>(rpb) * d));
  }

  /// Mean blocks moved per parallel op, in [1, D]: the disk utilization.
  double utilization() const {
    return total_ops() == 0
               ? 0.0
               : static_cast<double>(total_blocks()) /
                     static_cast<double>(total_ops());
  }

  u64 total_calls() const { return read_calls + write_calls; }

  /// Mean blocks moved per backend request (>= 1): how well the extent
  /// layer coalesced the logical block stream into physical transfers.
  /// 1.0 = block-at-a-time; extent_blocks is the ceiling.
  double coalesced_ratio() const {
    return total_calls() == 0
               ? 0.0
               : static_cast<double>(total_blocks()) /
                     static_cast<double>(total_calls());
  }

  /// Per-disk coalescing ratio (0 when the disk saw no requests).
  double coalesced_ratio(u32 disk) const {
    if (disk >= disk_read_calls.size()) return 0.0;
    const u64 calls = disk_read_calls[disk] + disk_write_calls[disk];
    const u64 blocks = disk_reads[disk] + disk_writes[disk];
    return calls == 0 ? 0.0
                      : static_cast<double>(blocks) /
                            static_cast<double>(calls);
  }
};

/// Difference of two snapshots (for per-phase reporting). Per-disk counts
/// are subtracted when both snapshots carry them.
inline IoStats delta(const IoStats& after, const IoStats& before) {
  IoStats d;
  d.read_ops = after.read_ops - before.read_ops;
  d.write_ops = after.write_ops - before.write_ops;
  d.blocks_read = after.blocks_read - before.blocks_read;
  d.blocks_written = after.blocks_written - before.blocks_written;
  d.read_calls = after.read_calls - before.read_calls;
  d.write_calls = after.write_calls - before.write_calls;
  d.sim_time_s = after.sim_time_s - before.sim_time_s;
  if (after.disk_reads.size() == before.disk_reads.size()) {
    d.disk_reads.resize(after.disk_reads.size());
    d.disk_writes.resize(after.disk_writes.size());
    for (usize i = 0; i < after.disk_reads.size(); ++i) {
      d.disk_reads[i] = after.disk_reads[i] - before.disk_reads[i];
      d.disk_writes[i] = after.disk_writes[i] - before.disk_writes[i];
    }
  }
  if (after.disk_read_calls.size() == before.disk_read_calls.size()) {
    d.disk_read_calls.resize(after.disk_read_calls.size());
    d.disk_write_calls.resize(after.disk_write_calls.size());
    for (usize i = 0; i < after.disk_read_calls.size(); ++i) {
      d.disk_read_calls[i] =
          after.disk_read_calls[i] - before.disk_read_calls[i];
      d.disk_write_calls[i] =
          after.disk_write_calls[i] - before.disk_write_calls[i];
    }
  }
  return d;
}

/// Thread-safe aggregate of accounting deltas from many IoSchedulers.
///
/// A sort service gives every job its own context (hence its own
/// IoScheduler and IoStats) and attaches one SharedIoTotals to all of
/// them, so the service-wide totals are maintained live, at the same
/// submission-time points as the per-job stats — per-job deltas sum
/// exactly to these totals. The order-sensitive schedule_hash is not
/// aggregated: interleaving across jobs is scheduler-dependent by design.
class SharedIoTotals {
 public:
  explicit SharedIoTotals(u32 num_disks = 0) { total_.reset(num_disks); }

  void reset(u32 num_disks) {
    std::lock_guard g(mu_);
    total_.reset(num_disks);
  }

  IoStats snapshot() const {
    std::lock_guard g(mu_);
    return total_;
  }

  /// Runs `fn(IoStats&)` under the lock; used by IoScheduler accounting.
  template <class Fn>
  void update(Fn&& fn) {
    std::lock_guard g(mu_);
    fn(total_);
  }

 private:
  mutable std::mutex mu_;
  IoStats total_;
};

}  // namespace pdm
