// Backend factories: how a cluster stamps out one disk array per shard.
//
// A pdm::Cluster owns N independent SortService shards, each over its own
// DiskBackend; the factory is called once per shard with the shard index
// so file-backed shards get distinct directories and memory-backed shards
// share one latency/stream model. The cluster retains the factory for
// its whole lifetime: every live Cluster::add_shard() calls it again
// with a fresh index (shard ids are slot indices and are never reused,
// even after drain_shard retires one — so a file-backed shard's
// directory is never resurrected under a new tenant's feet). Factories
// are plain std::functions, so benches and tests can also hand the
// cluster arbitrary custom backends.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "pdm/disk_backend.h"
#include "pdm/memory_backend.h"

namespace pdm {

/// Called once per shard at cluster construction; must return a fresh
/// backend (shards never share disks — independent arrays are the whole
/// point of sharding).
using BackendFactory = std::function<std::shared_ptr<DiskBackend>(u32 shard)>;

/// Per-shard MemoryDiskBackend arrays with an optional flat per-op latency
/// and an optional locality-aware stream model (see StreamModel).
BackendFactory memory_backend_factory(u32 disks_per_shard, usize block_bytes,
                                      u64 latency_us = 0,
                                      StreamModel stream = {});

/// Per-shard FileDiskBackend arrays under `base_dir`/shard000, 001, ...
/// The directories are created on demand and removed with the backends
/// unless keep_files is true.
BackendFactory file_backend_factory(u32 disks_per_shard, usize block_bytes,
                                    std::string base_dir,
                                    bool keep_files = false);

}  // namespace pdm
