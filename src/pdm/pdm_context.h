// PdmContext bundles everything a sorter needs: the disk array, the
// parallel-I/O scheduler (with its optional asynchronous pipeline), the
// block allocator, the memory budget and a seeded RNG. One context = one
// PDM machine.
#pragma once

#include <memory>
#include <string>

#include "pdm/async_io.h"
#include "pdm/disk_allocator.h"
#include "pdm/disk_backend.h"
#include "pdm/io_scheduler.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "util/rng.h"

namespace pdm {

class PdmContext {
 public:
  /// Takes ownership of the backend.
  explicit PdmContext(std::unique_ptr<DiskBackend> backend,
                      CostModel cost = {}, u64 seed = 1);

  PdmContext(const PdmContext&) = delete;
  PdmContext& operator=(const PdmContext&) = delete;

  u32 D() const noexcept { return backend_->num_disks(); }
  usize block_bytes() const noexcept { return backend_->block_bytes(); }

  IoScheduler& io() noexcept { return sched_; }
  const IoScheduler& io() const noexcept { return sched_; }
  IoStats& stats() noexcept { return sched_.stats(); }
  DiskAllocator& alloc() noexcept { return alloc_; }
  MemoryBudget& budget() noexcept { return budget_; }
  Rng& rng() noexcept { return rng_; }
  DiskBackend& backend() noexcept { return *backend_; }

  /// The asynchronous pipeline (disabled unless async_depth >= 2).
  AsyncIoScheduler& aio() noexcept { return aio_; }

  /// Opt-in knob for the double-buffered pipeline: >= 2 enables it with
  /// that many in-flight submissions; 0/1 keeps every I/O synchronous.
  /// Sorters override it per-invocation via their options' async_depth.
  /// Overlap costs memory, all budget-tracked: the ping-pong hot paths
  /// hold one extra load buffer (up to +M records) and the write-behind
  /// ring stages up to 2 in-flight batches — so do not enable it on a
  /// context whose MemoryBudget limit is sized to the synchronous slack.
  void set_async_depth(usize depth) { aio_.set_depth(depth); }
  usize async_depth() const noexcept { return aio_.depth(); }

  /// Writes a batch with write-behind when the pipeline is enabled (the
  /// payload is copied; callers may reuse their buffers immediately) and
  /// synchronously otherwise. All bulk producers route writes here.
  void write_batch(std::span<const WriteReq> reqs) {
    write_behind_.submit_copy(reqs);
  }

  /// The shared write-behind ring (for drain/flush control).
  WriteBehindRing& write_behind() noexcept { return write_behind_; }

  /// Records-per-block for a given record type.
  template <class R>
  usize rpb() const {
    PDM_CHECK(block_bytes() % sizeof(R) == 0,
              "block_bytes not a multiple of record size");
    return block_bytes() / sizeof(R);
  }

 private:
  std::unique_ptr<DiskBackend> backend_;
  IoScheduler sched_;
  AsyncIoScheduler aio_;
  MemoryBudget budget_;  // before write_behind_, whose slabs it tracks
  WriteBehindRing write_behind_;
  DiskAllocator alloc_;
  Rng rng_;
};

/// Convenience factories.
std::unique_ptr<PdmContext> make_memory_context(u32 num_disks,
                                                usize block_bytes,
                                                u64 seed = 1);

std::unique_ptr<PdmContext> make_file_context(u32 num_disks, usize block_bytes,
                                              const std::string& dir,
                                              u64 seed = 1,
                                              bool keep_files = false);

}  // namespace pdm
