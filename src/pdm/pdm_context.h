// PdmContext bundles everything a sorter needs: the disk array, the
// parallel-I/O scheduler, the block allocator, the memory budget and a
// seeded RNG. One context = one PDM machine.
#pragma once

#include <memory>
#include <string>

#include "pdm/disk_allocator.h"
#include "pdm/disk_backend.h"
#include "pdm/io_scheduler.h"
#include "pdm/memory_budget.h"
#include "util/rng.h"

namespace pdm {

class PdmContext {
 public:
  /// Takes ownership of the backend.
  explicit PdmContext(std::unique_ptr<DiskBackend> backend,
                      CostModel cost = {}, u64 seed = 1);

  PdmContext(const PdmContext&) = delete;
  PdmContext& operator=(const PdmContext&) = delete;

  u32 D() const noexcept { return backend_->num_disks(); }
  usize block_bytes() const noexcept { return backend_->block_bytes(); }

  IoScheduler& io() noexcept { return sched_; }
  const IoScheduler& io() const noexcept { return sched_; }
  IoStats& stats() noexcept { return sched_.stats(); }
  DiskAllocator& alloc() noexcept { return alloc_; }
  MemoryBudget& budget() noexcept { return budget_; }
  Rng& rng() noexcept { return rng_; }
  DiskBackend& backend() noexcept { return *backend_; }

  /// Records-per-block for a given record type.
  template <class R>
  usize rpb() const {
    PDM_CHECK(block_bytes() % sizeof(R) == 0,
              "block_bytes not a multiple of record size");
    return block_bytes() / sizeof(R);
  }

 private:
  std::unique_ptr<DiskBackend> backend_;
  IoScheduler sched_;
  DiskAllocator alloc_;
  MemoryBudget budget_;
  Rng rng_;
};

/// Convenience factories.
std::unique_ptr<PdmContext> make_memory_context(u32 num_disks,
                                                usize block_bytes,
                                                u64 seed = 1);

std::unique_ptr<PdmContext> make_file_context(u32 num_disks, usize block_bytes,
                                              const std::string& dir,
                                              u64 seed = 1,
                                              bool keep_files = false);

}  // namespace pdm
