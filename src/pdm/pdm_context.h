// PdmContext bundles everything a sorter needs: the disk array, the
// parallel-I/O scheduler (with its optional asynchronous pipeline), the
// block allocator, the memory budget and a seeded RNG. One context = one
// PDM machine.
//
// Two ownership modes:
//  - Standalone (the classic one): the context owns its backend and its
//    allocator; one machine, one algorithm thread.
//  - Job context: shares a backend and a block allocator with other
//    contexts (the sort service's multi-tenant mode). The context still
//    owns its scheduler, pipeline, write-behind ring, budget and RNG, so
//    per-job IoStats, async depth and memory carve stay isolated, while
//    the shared thread-safe allocator guarantees two jobs are never handed
//    the same block. An optional SharedIoTotals mirrors every accounting
//    charge into a service-wide aggregate.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "pdm/async_io.h"
#include "pdm/disk_allocator.h"
#include "pdm/disk_backend.h"
#include "pdm/io_scheduler.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "util/cpu_pool.h"
#include "util/rng.h"

namespace pdm {

class PdmContext {
 public:
  /// Standalone machine: takes ownership of the backend.
  explicit PdmContext(std::unique_ptr<DiskBackend> backend,
                      CostModel cost = {}, u64 seed = 1);

  /// Job context over a shared machine: co-owns `backend`, allocates from
  /// `shared_alloc` (which must outlive this context), and carves its own
  /// MemoryBudget limited to `memory_limit_bytes`. When `totals` is
  /// non-null every accounting charge is mirrored into it.
  PdmContext(std::shared_ptr<DiskBackend> backend, DiskAllocator& shared_alloc,
             usize memory_limit_bytes, CostModel cost = {}, u64 seed = 1,
             SharedIoTotals* totals = nullptr);

  PdmContext(const PdmContext&) = delete;
  PdmContext& operator=(const PdmContext&) = delete;

  /// Closes this context's allocator region (recycling its arena tails).
  ~PdmContext();

  u32 D() const noexcept { return backend_->num_disks(); }
  usize block_bytes() const noexcept { return backend_->block_bytes(); }

  IoScheduler& io() noexcept { return sched_; }
  const IoScheduler& io() const noexcept { return sched_; }
  IoStats& stats() noexcept { return sched_.stats(); }
  DiskAllocator& alloc() noexcept { return *alloc_; }
  MemoryBudget& budget() noexcept { return budget_; }
  Rng& rng() noexcept { return rng_; }
  DiskBackend& backend() noexcept { return *backend_; }

  /// This context's allocator region: every run/matrix of this context
  /// allocates inside it, so concurrent jobs' data occupy disjoint disk
  /// regions instead of interleaving block-by-block.
  u32 alloc_region() const noexcept { return region_; }

  /// Blocks per allocation extent for this context's runs (the ceiling on
  /// per-syscall coalescing). <= 1 restores legacy single-block bump
  /// allocation in the shared default region — the block-interleaved
  /// baseline the extent benches compare against.
  usize extent_blocks() const noexcept { return extent_blocks_; }
  void set_extent_blocks(usize blocks) { extent_blocks_ = blocks; }

  /// Allocates one block on `disk` inside this context's region (or the
  /// shared default region when extents are disabled).
  BlockRef alloc_block(u32 disk) {
    return alloc_->alloc(disk, extent_blocks_ > 1 ? region_ : 0);
  }

  /// The co-ownable backend handle, for spawning job contexts that share
  /// this machine's disks.
  std::shared_ptr<DiskBackend> shared_backend() const noexcept {
    return backend_;
  }

  /// The asynchronous pipeline (disabled unless async_depth >= 2).
  AsyncIoScheduler& aio() noexcept { return aio_; }

  /// Opt-in knob for the double-buffered pipeline: >= 2 enables it with
  /// that many in-flight submissions; 0/1 keeps every I/O synchronous.
  /// Sorters override it per-invocation via their options' async_depth.
  /// Overlap costs memory, all budget-tracked: the ping-pong hot paths
  /// hold one extra load buffer (up to +M records) and the write-behind
  /// ring stages up to 2 in-flight batches — so do not enable it on a
  /// context whose MemoryBudget limit is sized to the synchronous slack.
  void set_async_depth(usize depth) { aio_.set_depth(depth); }
  usize async_depth() const noexcept { return aio_.depth(); }

  /// Grow-only mid-flight variant: raises the async depth bound without
  /// quiescing in-flight submissions (the service's depth re-arbiter uses
  /// it to top up long-running jobs as capacity frees). Shrinking still
  /// goes through set_async_depth's quiesce.
  void raise_async_depth(usize depth) { aio_.raise_depth(depth); }

  /// The in-core kernel budget: how many threads (the algorithm thread
  /// included) the parallel kernels may use. 1 (the default) keeps every
  /// kernel on the legacy serial code path — bit-identical output, stats
  /// and schedule hashes. The service's CPU arbiter grants and re-grants
  /// this out of ServiceConfig::cpu_threads_total; the setter is
  /// thread-safe and takes effect at the next parallel region.
  usize cpu_budget() const noexcept { return cpu_pool_.budget(); }
  void set_cpu_budget(usize threads) { cpu_pool_.set_budget(threads); }
  CpuPool& cpu_pool() noexcept { return cpu_pool_; }

  /// Writes a batch with write-behind when the pipeline is enabled (the
  /// payload is copied; callers may reuse their buffers immediately) and
  /// synchronously otherwise. All bulk producers route writes here.
  void write_batch(std::span<const WriteReq> reqs) {
    write_behind_.submit_copy(reqs);
  }

  /// The shared write-behind ring (for drain/flush control).
  WriteBehindRing& write_behind() noexcept { return write_behind_; }

  /// Cooperative cancellation: an external owner (the sort service) may
  /// point the context at a flag it sets from another thread; sorters poll
  /// it at run-formation / merge / distribution batch boundaries via
  /// check_cancelled(). Null (the default) disables the checks. The flag
  /// must outlive the context or be reset to null first.
  void set_cancel_flag(const std::atomic<bool>* flag) noexcept {
    cancel_ = flag;
  }

  bool cancel_requested() const noexcept {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// Job-scoped causal attribution (pdm::jobtrace): the owning service
  /// stamps the job's trace id (and, for distributed range sub-jobs, the
  /// parent id) here before running the closure, so sorters and helper
  /// threads working through this context can re-establish the jobtrace
  /// scope without signature churn. 0 = unattributed (standalone use).
  void set_trace(u64 trace_id, u64 parent_trace_id = 0) noexcept {
    trace_id_ = trace_id;
    parent_trace_id_ = parent_trace_id;
  }
  u64 trace_id() const noexcept { return trace_id_; }
  u64 parent_trace_id() const noexcept { return parent_trace_id_; }

  /// Throws pdm::Cancelled if the cancellation flag is set. Safe at any
  /// batch boundary: the pass loops are exception-safe there (the same
  /// unwind path an I/O error takes), so a cancelled sort releases its
  /// buffers and drains its pipeline on the way out.
  void check_cancelled() const {
    if (cancel_requested()) {
      throw Cancelled("sort cancelled at a batch boundary");
    }
  }

  /// Records-per-block for a given record type.
  template <class R>
  usize rpb() const {
    PDM_CHECK(block_bytes() % sizeof(R) == 0,
              "block_bytes not a multiple of record size");
    return block_bytes() / sizeof(R);
  }

 private:
  std::shared_ptr<DiskBackend> backend_;
  IoScheduler sched_;
  AsyncIoScheduler aio_;
  MemoryBudget budget_;  // before write_behind_, whose slabs it tracks
  WriteBehindRing write_behind_;
  std::unique_ptr<DiskAllocator> own_alloc_;  // null for job contexts
  DiskAllocator* alloc_;
  u32 region_ = 0;
  usize extent_blocks_ = kDefaultExtentBlocks;
  Rng rng_;
  CpuPool cpu_pool_;  // kernel threads; budget 1 = serial (default)
  const std::atomic<bool>* cancel_ = nullptr;
  u64 trace_id_ = 0;
  u64 parent_trace_id_ = 0;

 public:
  /// Default run-extent size: big enough that a memory-load read costs a
  /// handful of syscalls per disk, small enough that tail waste (recycled
  /// at finish()) stays negligible.
  static constexpr usize kDefaultExtentBlocks = 32;
};

/// Convenience factories.
std::unique_ptr<PdmContext> make_memory_context(u32 num_disks,
                                                usize block_bytes,
                                                u64 seed = 1);

std::unique_ptr<PdmContext> make_file_context(u32 num_disks, usize block_bytes,
                                              const std::string& dir,
                                              u64 seed = 1,
                                              bool keep_files = false);

}  // namespace pdm
