// RaggedRun: a striped run whose blocks may each hold fewer than B records.
//
// IntegerSort (§7) writes every bucket's in-memory blocks at the end of a
// phase, padding the final block of each bucket; the pads are what cost the
// extra µ fraction of a pass that Theorem 7.1 accounts for. RaggedRun keeps
// the per-block occupancy so readers can skip the padding.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "pdm/pdm_context.h"
#include "pdm/record.h"

namespace pdm {

template <Record R>
class RaggedRun {
 public:
  struct Segment {
    BlockRef where;
    u32 count = 0;  // valid records in this block
  };

  RaggedRun() = default;

  explicit RaggedRun(PdmContext& ctx, u32 start_disk = 0)
      : ctx_(&ctx), start_disk_(start_disk % ctx.D()), rpb_(ctx.rpb<R>()) {}

  u64 size() const noexcept { return size_; }
  usize rpb() const noexcept { return rpb_; }
  u64 num_segments() const noexcept { return segs_.size(); }
  const Segment& segment(u64 i) const { return segs_[i]; }

  /// Total blocks including padding: the write-amplification measure.
  u64 blocks_on_disk() const noexcept { return segs_.size(); }

  /// Stages one block holding `count <= rpb` valid records. `block_buf`
  /// must hold rpb records, already padded by the caller, and stay alive
  /// until the returned request is submitted.
  WriteReq stage_block(const R* block_buf, usize count) {
    return stage_block_on(
        static_cast<u32>((start_disk_ + segs_.size()) % ctx_->D()), block_buf,
        count);
  }

  /// As stage_block but on an explicit disk: lets a writer that stages
  /// blocks for many ragged runs at once balance the whole batch over the
  /// disks (the distribution pass does this).
  WriteReq stage_block_on(u32 disk, const R* block_buf, usize count) {
    PDM_CHECK(count > 0 && count <= rpb_, "bad ragged block count");
    BlockRef ref = ctx_->alloc_block(disk % ctx_->D());
    segs_.push_back(Segment{ref, static_cast<u32>(count)});
    size_ += count;
    return WriteReq{ref, reinterpret_cast<const std::byte*>(block_buf)};
  }

  /// Reads segments [first, first+count) batched, compacting the valid
  /// records to the front of dst (which must hold count*rpb records).
  /// Returns the number of valid records.
  usize read_segments(u64 first, u64 count, R* dst) const {
    ctx_->aio().wait(read_segments_async(first, count, dst));
    return compact_segments(first, count, dst);
  }

  /// Asynchronous half: stages the segment reads block-granular into dst
  /// and returns the completion ticket. After waiting it, call
  /// compact_segments with the same arguments to squeeze out the padding.
  IoTicket read_segments_async(u64 first, u64 count, R* dst) const {
    PDM_CHECK(first + count <= segs_.size(), "segment range out of bounds");
    std::vector<ReadReq> reqs;
    reqs.reserve(static_cast<usize>(count));
    for (u64 i = 0; i < count; ++i) {
      reqs.push_back(ReadReq{segs_[first + i].where,
                             reinterpret_cast<std::byte*>(dst + i * rpb_)});
    }
    return ctx_->aio().read_async(reqs);
  }

  /// Compacts block-granular data staged by read_segments_async in place;
  /// returns the number of valid records.
  usize compact_segments(u64 first, u64 count, R* dst) const {
    usize valid = 0;
    for (u64 i = 0; i < count; ++i) {
      const usize c = segs_[first + i].count;
      if (valid != i * rpb_ && c > 0) {
        std::memmove(dst + valid, dst + i * rpb_, c * sizeof(R));
      }
      valid += c;
    }
    return valid;
  }

  /// Sum of valid records over a segment range (metadata only).
  usize valid_in_segments(u64 first, u64 count) const {
    PDM_CHECK(first + count <= segs_.size(), "segment range out of bounds");
    usize valid = 0;
    for (u64 i = 0; i < count; ++i) valid += segs_[first + i].count;
    return valid;
  }

  std::vector<R> read_all() const {
    std::vector<R> out(segs_.size() * rpb_);
    usize n = segs_.empty() ? 0 : read_segments(0, segs_.size(), out.data());
    out.resize(n);
    return out;
  }

 private:
  PdmContext* ctx_ = nullptr;
  std::vector<Segment> segs_;
  u64 size_ = 0;
  u32 start_disk_ = 0;
  usize rpb_ = 0;
};

}  // namespace pdm
