// In-memory disk array: the default backend for tests and model-level
// benches. Reads of never-written blocks throw, which catches allocator and
// layout bugs early.
//
// Thread-safe: a sort service shares one backend across concurrent job
// contexts, each with its own async pipeline workers, so transfers on the
// same disk can race. Each disk has its own mutex; the simulated latency
// sleep stays outside the locks so overlapping jobs overlap their delays
// (which is the whole point of measuring the service's throughput win).
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "pdm/disk_backend.h"

namespace pdm {

/// Locality-dependent service-time model. A real disk serves a
/// couple of sequential streams at full bandwidth — its cache is
/// segmented for a read stream here, a write stream there — but cycling
/// between more distant regions than that pays a positioning delay on
/// every alternation. Each disk keeps an LRU of `streams` recent
/// positions: a request within `window_blocks` of one of them is a
/// stream hit (seq_us) and advances that stream; anything else is a seek
/// (seek_us) and replaces the oldest stream. Service time is charged
/// against a per-disk busy-until clock, so a disk is a serial server:
/// concurrent jobs queue behind each other on shared disks, and the
/// seeks from interleaving several tenants' working regions show up as
/// real elapsed time. A sort job alone on a disk group needs ~2 streams
/// (its input region and its output frontier) and runs at seq_us; four
/// tenants cycling 4+ distant regions through a 2-stream cache thrash it
/// and run at seek_us. This is the contention that cluster sharding
/// removes (bench_e16); the flat set_simulated_latency_us model is
/// work-conserving by design and cannot show it.
///
/// Extent requests are priced as one positioning decision plus `count`
/// sequential transfers: the first block classifies against the stream
/// cache (seq_us or seek_us), the remaining count-1 blocks are charged
/// seq_us and counted as stream hits — so even under a thrashing cache,
/// extent-sized transfers amortize the seek over the whole span. This is
/// how the coalescing win shows up in the simulator (bench_e17).
struct StreamModel {
  u64 seq_us = 0;         // per-block service time on a stream hit
  u64 seek_us = 0;        // per-block service time on a stream miss
  u32 streams = 2;        // per-disk stream-cache capacity (LRU)
  u64 window_blocks = 8;  // |index - stream head| <= window => same stream

  bool enabled() const noexcept { return seq_us > 0 || seek_us > 0; }
};

class MemoryDiskBackend final : public DiskBackend {
 public:
  MemoryDiskBackend(u32 num_disks, usize block_bytes);

  u32 num_disks() const noexcept override { return num_disks_; }
  usize block_bytes() const noexcept override { return block_bytes_; }

  void read_batch(std::span<const ReadReq> reqs) override;
  void write_batch(std::span<const WriteReq> reqs) override;
  u64 disk_blocks(u32 disk) const override;

  /// Total bytes currently held across all disks (for reporting).
  usize resident_bytes() const;

  /// Simulated per-op latency: every read_batch/write_batch call sleeps
  /// this long, modelling one positioning delay per parallel-op visit to a
  /// disk. A synchronous pipeline pays it serially on the caller thread;
  /// the async pipeline overlaps it with computation and across disks —
  /// which is what bench_e13 measures. 0 (default) disables the sleep.
  /// Set before any concurrent use; the sleep itself is lock-free.
  void set_simulated_latency_us(u64 micros) { latency_us_ = micros; }
  u64 simulated_latency_us() const noexcept { return latency_us_; }

  /// Enables the locality-aware occupancy model above (replaces the flat
  /// per-op sleep while enabled). Set before any concurrent use.
  void set_stream_model(const StreamModel& m) { stream_ = m; }
  const StreamModel& stream_model() const noexcept { return stream_; }

  /// Stream-cache hits/misses under the stream model (for benches).
  u64 stream_hits() const;
  u64 stream_misses() const;

 private:
  // Per-disk simulator state, guarded by that disk's mutex.
  struct DiskSim {
    std::vector<u64> lru;   // stream head positions, front = most recent
    i64 busy_until_us = 0;  // serial-server clock, relative to epoch_
    u64 hits = 0;
    u64 misses = 0;
  };

  void simulate_latency() const;
  /// Classifies the extent [index, index+count) against disk `d`'s stream
  /// cache (first block decides seek vs hit, the rest stream sequentially)
  /// and advances its busy-until clock; returns the completion time.
  /// Caller holds the disk's mutex.
  i64 charge_stream_locked(u32 d, u64 index, u64 count);
  i64 now_us() const;
  void wait_until_us(i64 target) const;

  u32 num_disks_;
  usize block_bytes_;
  u64 latency_us_ = 0;
  StreamModel stream_{};
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<std::mutex[]> disk_mu_;
  std::vector<std::vector<std::byte>> disks_;
  std::vector<DiskSim> sims_;
};

}  // namespace pdm
