// In-memory disk array: the default backend for tests and model-level
// benches. Reads of never-written blocks throw, which catches allocator and
// layout bugs early.
//
// Thread-safe: a sort service shares one backend across concurrent job
// contexts, each with its own async pipeline workers, so transfers on the
// same disk can race. Each disk has its own mutex; the simulated latency
// sleep stays outside the locks so overlapping jobs overlap their delays
// (which is the whole point of measuring the service's throughput win).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "pdm/disk_backend.h"

namespace pdm {

class MemoryDiskBackend final : public DiskBackend {
 public:
  MemoryDiskBackend(u32 num_disks, usize block_bytes);

  u32 num_disks() const noexcept override { return num_disks_; }
  usize block_bytes() const noexcept override { return block_bytes_; }

  void read_batch(std::span<const ReadReq> reqs) override;
  void write_batch(std::span<const WriteReq> reqs) override;
  u64 disk_blocks(u32 disk) const override;

  /// Total bytes currently held across all disks (for reporting).
  usize resident_bytes() const;

  /// Simulated per-op latency: every read_batch/write_batch call sleeps
  /// this long, modelling one positioning delay per parallel-op visit to a
  /// disk. A synchronous pipeline pays it serially on the caller thread;
  /// the async pipeline overlaps it with computation and across disks —
  /// which is what bench_e13 measures. 0 (default) disables the sleep.
  /// Set before any concurrent use; the sleep itself is lock-free.
  void set_simulated_latency_us(u64 micros) { latency_us_ = micros; }
  u64 simulated_latency_us() const noexcept { return latency_us_; }

 private:
  void simulate_latency() const;

  u32 num_disks_;
  usize block_bytes_;
  u64 latency_us_ = 0;
  std::unique_ptr<std::mutex[]> disk_mu_;
  std::vector<std::vector<std::byte>> disks_;
};

}  // namespace pdm
