// In-memory disk array: the default backend for tests and model-level
// benches. Reads of never-written blocks throw, which catches allocator and
// layout bugs early.
#pragma once

#include <memory>
#include <vector>

#include "pdm/disk_backend.h"

namespace pdm {

class MemoryDiskBackend final : public DiskBackend {
 public:
  MemoryDiskBackend(u32 num_disks, usize block_bytes);

  u32 num_disks() const noexcept override { return num_disks_; }
  usize block_bytes() const noexcept override { return block_bytes_; }

  void read_batch(std::span<const ReadReq> reqs) override;
  void write_batch(std::span<const WriteReq> reqs) override;
  u64 disk_blocks(u32 disk) const override;

  /// Total bytes currently held across all disks (for reporting).
  usize resident_bytes() const;

 private:
  u32 num_disks_;
  usize block_bytes_;
  std::vector<std::vector<std::byte>> disks_;
};

}  // namespace pdm
