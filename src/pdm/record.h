// Record concept and key traits.
//
// Sortable records must be trivially copyable (they are moved with memcpy
// through block buffers). Integer sorting additionally needs a u64 key
// projection, supplied via KeyTraits (specialize for custom records).
//
// Built-in projections:
//  - unsigned integrals: identity (zero-extended);
//  - signed integrals: the order-preserving bias map that flips the sign
//    bit within the type's width, so negative keys sort below
//    non-negative ones in unsigned key space;
//  - KeyPair<A, B>: lexicographic packing of two projectable keys whose
//    widths sum to at most 64 bits (std::pair itself is not trivially
//    copyable, so records use this aggregate instead).
#pragma once

#include <concepts>
#include <type_traits>

#include "util/common.h"

namespace pdm {

template <class R>
concept Record = std::is_trivially_copyable_v<R> && std::default_initializable<R>;

/// u64 key projection used by IntegerSort / RadixSort.
template <class R>
struct KeyTraits;

/// Types with a usable KeyTraits projection.
template <class R>
concept ProjectableKey = requires(const R& r) {
  { KeyTraits<R>::key(r) } -> std::convertible_to<u64>;
};

template <std::unsigned_integral R>
struct KeyTraits<R> {
  static constexpr u64 key(R r) noexcept { return static_cast<u64>(r); }
};

template <std::signed_integral R>
struct KeyTraits<R> {
  /// Bias map: XOR the sign bit at the type's own width. Monotone in the
  /// signed order, and the result stays below 2^(8*sizeof(R)), which is
  /// what lets KeyPair pack members by width.
  static constexpr u64 key(R r) noexcept {
    using U = std::make_unsigned_t<R>;
    const U biased =
        static_cast<U>(static_cast<U>(r) ^ (U{1} << (sizeof(R) * 8 - 1)));
    return static_cast<u64>(biased);
  }
};

/// Trivially copyable composite key ordered lexicographically
/// (first, then second). Nests: KeyPair<KeyPair<u16, u16>, u32> works.
template <class A, class B>
struct KeyPair {
  A first{};
  B second{};

  friend bool operator==(const KeyPair&, const KeyPair&) = default;
  friend auto operator<=>(const KeyPair&, const KeyPair&) = default;
};

template <ProjectableKey A, ProjectableKey B>
  requires(sizeof(A) + sizeof(B) <= sizeof(u64))
struct KeyTraits<KeyPair<A, B>> {
  /// Packs first above second by B's width. Each member's projection is
  /// bounded by 2^(8*sizeof(member)) (identity, bias map and nested packs
  /// all preserve this), so the pack is lexicographic-order-preserving.
  static constexpr u64 key(const KeyPair<A, B>& r) noexcept {
    constexpr unsigned b_bits = 8 * sizeof(B);
    constexpr u64 b_mask =
        b_bits >= 64 ? ~u64{0} : (u64{1} << b_bits) - 1;
    return (KeyTraits<A>::key(r.first) << b_bits) |
           (KeyTraits<B>::key(r.second) & b_mask);
  }
};

/// Extracts the radix key of a record through KeyTraits.
template <class R>
constexpr u64 record_key(const R& r) noexcept {
  return KeyTraits<R>::key(r);
}

}  // namespace pdm
