// Record concept and key traits.
//
// Sortable records must be trivially copyable (they are moved with memcpy
// through block buffers). Integer sorting additionally needs a u64 key
// projection, supplied via KeyTraits (specialize for custom records).
#pragma once

#include <concepts>
#include <type_traits>

#include "util/common.h"

namespace pdm {

template <class R>
concept Record = std::is_trivially_copyable_v<R> && std::default_initializable<R>;

/// u64 key projection used by IntegerSort / RadixSort.
template <class R>
struct KeyTraits;

template <std::unsigned_integral R>
struct KeyTraits<R> {
  static constexpr u64 key(R r) noexcept { return static_cast<u64>(r); }
};

/// Extracts the radix key of a record through KeyTraits.
template <class R>
constexpr u64 record_key(const R& r) noexcept {
  return KeyTraits<R>::key(r);
}

}  // namespace pdm
