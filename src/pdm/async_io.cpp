#include "pdm/async_io.h"

#include <algorithm>
#include <string>

#include "util/jobtrace.h"
#include "util/trace.h"

namespace pdm {

namespace {

// One worker per disk gives full simulated-latency overlap; the cap keeps
// thread counts sane for very wide arrays.
constexpr usize kMaxWorkers = 64;

}  // namespace

AsyncIoScheduler::AsyncIoScheduler(IoScheduler& sync)
    : sync_(&sync),
      queues_(sync.backend().num_disks()),
      read_ticket_ns_(metrics::Registry::global().histogram("io.read_ticket_ns")),
      write_ticket_ns_(
          metrics::Registry::global().histogram("io.write_ticket_ns")) {}

AsyncIoScheduler::~AsyncIoScheduler() {
  // stop_workers lets the workers finish every queued job before joining,
  // so destruction implicitly drains.
  stop_workers();
}

void AsyncIoScheduler::quiesce() noexcept {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return pending_.empty(); });
}

void AsyncIoScheduler::set_depth(usize depth) {
  if (depth == this->depth()) return;
  quiesce();
  depth_.store(depth, std::memory_order_relaxed);
  if (depth >= 2 && workers_.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    start_workers_locked();
  } else if (depth < 2 && !workers_.empty()) {
    stop_workers();
  }
}

void AsyncIoScheduler::raise_depth(usize depth) {
  std::unique_lock<std::mutex> lk(mu_);
  if (depth <= depth_.load(std::memory_order_relaxed)) return;
  // Grow without a quiesce: widening the backpressure bound cannot break
  // the per-disk FIFO ordering (queues are untouched) and accounting is
  // charged at submission, so mid-flight raises leave IoStats byte-equal.
  // Going 0/1 -> >=2 also flips enabled(): in-flight state is empty in
  // that case (the sync path never queued), so spawning workers suffices.
  depth_.store(depth, std::memory_order_relaxed);
  if (workers_.empty()) start_workers_locked();
  lk.unlock();
  // Wake submitters parked on the old, narrower bound.
  done_cv_.notify_all();
}

void AsyncIoScheduler::start_workers_locked() {
  stop_ = false;
  const usize n = std::min<usize>(queues_.size(), kMaxWorkers);
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void AsyncIoScheduler::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void AsyncIoScheduler::rethrow_error_locked() {
  // Deliberately sticky (error_ is not cleared): a failed backend op means
  // the disk state is suspect, and unwind-time drains that swallow the
  // throw (drain guards, ring destructors) must not lose it — the next
  // wait/drain/submit rethrows until the scheduler is destroyed.
  if (error_) std::rethrow_exception(error_);
}

template <class Req>
IoTicket AsyncIoScheduler::submit(std::span<const Req> reqs) {
  constexpr bool kIsWrite = std::is_same_v<Req, WriteReq>;
  static_assert(std::is_same_v<Req, ReadReq> || kIsWrite);
  if (reqs.empty()) return 0;

  std::unique_lock<std::mutex> lk(mu_);
  // Backpressure: at most depth_ submissions in flight. Workers always
  // drain pending jobs (even after an error), so this cannot stall.
  done_cv_.wait(lk, [this] { return pending_.size() < depth_; });
  rethrow_error_locked();

  const IoTicket ticket = ++next_ticket_;
  // Split into one job per disk, preserving submission order within each.
  usize njobs = 0;
  std::vector<u32> touched;  // disks this ticket queued on (counter tracks)
  for (const auto& r : reqs) {
    DiskQueue& q = queues_[r.where.disk];
    if (q.jobs.empty() || q.jobs.back().ticket != ticket) {
      Job j;
      j.ticket = ticket;
      j.is_write = kIsWrite;
      q.jobs.push_back(std::move(j));
      ++njobs;
      touched.push_back(r.where.disk);
    }
    if constexpr (kIsWrite) {
      q.jobs.back().writes.push_back(r);
    } else {
      q.jobs.back().reads.push_back(r);
    }
  }
  PendingTicket pt;
  pt.outstanding = njobs;
  pt.is_write = kIsWrite;
  pt.t_submit = std::chrono::steady_clock::now();
  // Capture the submitting thread's job attribution: the completion
  // retro-span is emitted on an aio-worker thread, whose own jobtrace
  // scope (if any) belongs to a different job.
  pt.job = jobtrace::current();
  pt.parent = jobtrace::current_parent();
  pending_[ticket] = pt;
  if (trace::TraceLog::instance().enabled()) {
    PDM_TRACE_COUNTER("io", "tickets_in_flight", pending_.size());
    for (u32 d : touched) {
      trace::TraceLog::instance().counter_dyn(
          "io", "disk" + std::to_string(d) + ".queue", queues_[d].jobs.size());
    }
  }
  lk.unlock();
  work_cv_.notify_all();
  return ticket;
}

IoTicket AsyncIoScheduler::read_async(std::span<const ReadReq> reqs,
                                      u64* rounds_out) {
  if (!enabled()) {
    // Disabled: exactly the synchronous scheduler path.
    const u64 rounds = sync_->read(reqs);
    if (rounds_out != nullptr) *rounds_out = rounds;
    return 0;
  }
  // Charge first, on the submitting thread: identical stats to sync. The
  // coalesced form of the batch is what the workers execute — one backend
  // call per extent, same per-disk order as the raw requests.
  const u64 rounds = sync_->account_read(reqs);
  if (rounds_out != nullptr) *rounds_out = rounds;
  return submit<ReadReq>(sync_->last_coalesced_reads());
}

IoTicket AsyncIoScheduler::write_async(std::span<const WriteReq> reqs,
                                       u64* rounds_out) {
  if (!enabled()) {
    const u64 rounds = sync_->write(reqs);
    if (rounds_out != nullptr) *rounds_out = rounds;
    return 0;
  }
  const u64 rounds = sync_->account_write(reqs);
  if (rounds_out != nullptr) *rounds_out = rounds;
  return submit<WriteReq>(sync_->last_coalesced_writes());
}

u64 AsyncIoScheduler::read(std::span<const ReadReq> reqs) {
  u64 rounds = 0;
  wait(read_async(reqs, &rounds));
  return rounds;
}

u64 AsyncIoScheduler::write(std::span<const WriteReq> reqs) {
  u64 rounds = 0;
  wait(write_async(reqs, &rounds));
  return rounds;
}

void AsyncIoScheduler::wait(IoTicket t) {
  std::unique_lock<std::mutex> lk(mu_);
  if (t != 0) {
    done_cv_.wait(lk, [this, t] { return !pending_.contains(t); });
  }
  rethrow_error_locked();
}

bool AsyncIoScheduler::complete(IoTicket t) {
  if (t == 0) return true;
  std::lock_guard<std::mutex> lk(mu_);
  return !pending_.contains(t);
}

void AsyncIoScheduler::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return pending_.empty(); });
  rethrow_error_locked();
}

void AsyncIoScheduler::worker_loop() {
  trace::TraceLog::instance().set_thread_name("aio-worker");
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Find a disk with a runnable job, round-robin from the shared cursor.
    const u32 nd = static_cast<u32>(queues_.size());
    u32 disk = nd;
    for (u32 i = 0; i < nd; ++i) {
      const u32 d = (scan_cursor_ + i) % nd;
      if (!queues_[d].busy && !queues_[d].jobs.empty()) {
        disk = d;
        break;
      }
    }
    if (disk == nd) {
      if (stop_) return;
      work_cv_.wait(lk);
      continue;
    }
    scan_cursor_ = (disk + 1) % nd;
    DiskQueue& q = queues_[disk];
    Job job = std::move(q.jobs.front());
    q.jobs.pop_front();
    q.busy = true;
    lk.unlock();

    try {
      // One backend call per request: a single-request batch is a legal
      // "parallel op slice" (<= 1 request per disk trivially), and it lets
      // the backend charge its simulated per-op latency per disk visit.
      // Requests here are already coalesced, so one call moves a whole
      // extent (one syscall / one StreamModel seek + count transfers).
      if (job.is_write) {
        for (const auto& w : job.writes) {
          sync_->backend().write_batch(std::span<const WriteReq>(&w, 1));
        }
      } else {
        for (const auto& r : job.reads) {
          sync_->backend().read_batch(std::span<const ReadReq>(&r, 1));
        }
      }
    } catch (...) {
      lk.lock();
      if (!error_) error_ = std::current_exception();
      lk.unlock();
    }

    lk.lock();
    q.busy = false;
    auto it = pending_.find(job.ticket);
    PDM_ASSERT(it != pending_.end(), "completion for unknown ticket");
    if (--it->second.outstanding == 0) {
      // Ticket fully complete: attribute its submit->complete latency.
      // Measured with chrono directly so the histogram works even in
      // tracing-disabled builds; the retro-span reuses the same duration.
      const auto lat = std::chrono::steady_clock::now() - it->second.t_submit;
      const u64 lat_ns = lat.count() > 0
                             ? static_cast<u64>(
                                   std::chrono::duration_cast<
                                       std::chrono::nanoseconds>(lat)
                                       .count())
                             : 0;
      (it->second.is_write ? write_ticket_ns_ : read_ticket_ns_)
          .record(lat_ns);
      if (trace::TraceLog::instance().enabled()) {
        const u64 now_ns = trace::TraceLog::now_ns();
        const u64 dur = std::min(now_ns, lat_ns);
        // Re-establish the submitter's attribution around the retro-span
        // (TLS stores only — safe under mu_).
        jobtrace::Scope scope(it->second.job, it->second.parent);
        trace::TraceLog::instance().complete(
            "io", it->second.is_write ? "write_ticket" : "read_ticket",
            now_ns - dur, dur, "ticket", job.ticket);
      }
      pending_.erase(it);
      done_cv_.notify_all();
    }
    // The disk we just released may have more queued jobs.
    if (!q.jobs.empty()) work_cv_.notify_one();
  }
}

}  // namespace pdm
