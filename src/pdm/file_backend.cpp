#include "pdm/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/thread_pool.h"

namespace pdm {

namespace fs = std::filesystem;

FileDiskBackend::FileDiskBackend(u32 num_disks, usize block_bytes,
                                 std::string dir, bool keep_files)
    : num_disks_(num_disks),
      block_bytes_(block_bytes),
      dir_(std::move(dir)),
      keep_files_(keep_files),
      blocks_written_(num_disks, 0) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
  fs::create_directories(dir_);
  fds_.reserve(num_disks);
  for (u32 d = 0; d < num_disks; ++d) {
    char name[32];
    std::snprintf(name, sizeof name, "disk%03u.bin", d);
    const std::string path = dir_ + "/" + name;
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    PDM_CHECK(fd >= 0, "open failed for " + path + ": " + std::strerror(errno));
    fds_.push_back(fd);
  }
}

FileDiskBackend::~FileDiskBackend() {
  for (u32 d = 0; d < num_disks_; ++d) {
    if (fds_[d] >= 0) ::close(fds_[d]);
    if (!keep_files_) {
      char name[32];
      std::snprintf(name, sizeof name, "disk%03u.bin", d);
      std::error_code ec;
      fs::remove(dir_ + "/" + name, ec);
    }
  }
}

void FileDiskBackend::read_batch(std::span<const ReadReq> reqs) {
  auto& pool = ThreadPool::global();
  if (reqs.size() <= 1) {
    for (const auto& r : reqs) {
      const auto off =
          static_cast<off_t>(r.where.index) * static_cast<off_t>(block_bytes_);
      ssize_t n = ::pread(fds_.at(r.where.disk), r.dst, block_bytes_, off);
      PDM_CHECK(n == static_cast<ssize_t>(block_bytes_), "pread short/failed");
    }
    return;
  }
  pool.parallel_for(0, reqs.size(), [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) {
      const auto& r = reqs[i];
      const auto off =
          static_cast<off_t>(r.where.index) * static_cast<off_t>(block_bytes_);
      ssize_t n = ::pread(fds_.at(r.where.disk), r.dst, block_bytes_, off);
      PDM_CHECK(n == static_cast<ssize_t>(block_bytes_), "pread short/failed");
    }
  });
}

void FileDiskBackend::write_batch(std::span<const WriteReq> reqs) {
  auto& pool = ThreadPool::global();
  auto do_write = [&](const WriteReq& w) {
    const auto off =
        static_cast<off_t>(w.where.index) * static_cast<off_t>(block_bytes_);
    ssize_t n = ::pwrite(fds_.at(w.where.disk), w.src, block_bytes_, off);
    PDM_CHECK(n == static_cast<ssize_t>(block_bytes_), "pwrite short/failed");
  };
  if (reqs.size() <= 1) {
    for (const auto& w : reqs) do_write(w);
  } else {
    pool.parallel_for(0, reqs.size(), [&](usize lo, usize hi) {
      for (usize i = lo; i < hi; ++i) do_write(reqs[i]);
    });
  }
  std::lock_guard g(marks_mu_);
  for (const auto& w : reqs) {
    blocks_written_[w.where.disk] =
        std::max(blocks_written_[w.where.disk], w.where.index + 1);
  }
}

u64 FileDiskBackend::disk_blocks(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "disk out of range");
  std::lock_guard g(marks_mu_);
  return blocks_written_[disk];
}

}  // namespace pdm
