#include "pdm/file_backend.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/thread_pool.h"

namespace pdm {

namespace fs = std::filesystem;

namespace {

// One iovec per block, capped by the OS vector limit; callers chunk.
constexpr usize kIovBatch = 512;

// pread/pwrite the full range, resuming after short transfers (the
// kernel caps a single call at MAX_RW_COUNT ≈ 2 GiB, which a fully
// coalesced extent of large blocks can exceed; regular files otherwise
// only transfer short at EOF or on error).
void pread_full(int fd, std::byte* dst, usize len, off_t off) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, dst, len, off);
    PDM_CHECK(n > 0, "pread short/failed");
    dst += n;
    len -= static_cast<usize>(n);
    off += n;
  }
}

void pwrite_full(int fd, const std::byte* src, usize len, off_t off) {
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, src, len, off);
    PDM_CHECK(n > 0, "pwrite short/failed");
    src += n;
    len -= static_cast<usize>(n);
    off += n;
  }
}

}  // namespace

FileDiskBackend::FileDiskBackend(u32 num_disks, usize block_bytes,
                                 std::string dir, bool keep_files)
    : num_disks_(num_disks),
      block_bytes_(block_bytes),
      dir_(std::move(dir)),
      keep_files_(keep_files),
      blocks_written_(num_disks, 0) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
  fs::create_directories(dir_);
  fds_.reserve(num_disks);
  for (u32 d = 0; d < num_disks; ++d) {
    char name[32];
    std::snprintf(name, sizeof name, "disk%03u.bin", d);
    const std::string path = dir_ + "/" + name;
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    PDM_CHECK(fd >= 0, "open failed for " + path + ": " + std::strerror(errno));
    fds_.push_back(fd);
  }
}

FileDiskBackend::~FileDiskBackend() {
  for (u32 d = 0; d < num_disks_; ++d) {
    if (fds_[d] >= 0) ::close(fds_[d]);
    if (!keep_files_) {
      char name[32];
      std::snprintf(name, sizeof name, "disk%03u.bin", d);
      std::error_code ec;
      fs::remove(dir_ + "/" + name, ec);
    }
  }
}

void FileDiskBackend::exec_read(const ReadReq& r) const {
  const int fd = fds_.at(r.where.disk);
  const auto bb = static_cast<ssize_t>(block_bytes_);
  const i64 stride = r.stride_or(block_bytes_);
  if (r.count == 1 || stride == static_cast<i64>(block_bytes_)) {
    // Contiguous buffer (or a single block): one pread moves the extent.
    const auto off =
        static_cast<off_t>(r.where.index) * static_cast<off_t>(block_bytes_);
    pread_full(fd, r.dst, static_cast<usize>(r.count) * block_bytes_, off);
    return;
  }
  // Strided scatter (e.g. a striped run reading into an interleaved load
  // buffer): one preadv per iovec chunk gathers the extent. A short
  // vectored transfer (kernel per-call byte cap) finishes block-by-block.
  struct iovec iov[kIovBatch];
  for (u64 b0 = 0; b0 < r.count; b0 += kIovBatch) {
    const usize cnt = static_cast<usize>(std::min<u64>(kIovBatch, r.count - b0));
    for (usize k = 0; k < cnt; ++k) {
      iov[k].iov_base = r.dst + static_cast<i64>(b0 + k) * stride;
      iov[k].iov_len = block_bytes_;
    }
    const auto off = static_cast<off_t>(r.where.index + b0) *
                     static_cast<off_t>(block_bytes_);
    const ssize_t n = ::preadv(fd, iov, static_cast<int>(cnt), off);
    PDM_CHECK(n > 0, "preadv short/failed");
    usize k = static_cast<usize>(n / bb);
    if (const usize part = static_cast<usize>(n % bb); part > 0) {
      pread_full(fd, r.dst + static_cast<i64>(b0 + k) * stride + part,
                 block_bytes_ - part,
                 off + static_cast<off_t>(k) * bb + static_cast<off_t>(part));
      ++k;
    }
    for (; k < cnt; ++k) {
      pread_full(fd, r.dst + static_cast<i64>(b0 + k) * stride, block_bytes_,
                 off + static_cast<off_t>(k) * bb);
    }
  }
}

void FileDiskBackend::exec_write(const WriteReq& w) const {
  const int fd = fds_.at(w.where.disk);
  const auto bb = static_cast<ssize_t>(block_bytes_);
  const i64 stride = w.stride_or(block_bytes_);
  if (w.count == 1 || stride == static_cast<i64>(block_bytes_)) {
    const auto off =
        static_cast<off_t>(w.where.index) * static_cast<off_t>(block_bytes_);
    pwrite_full(fd, w.src, static_cast<usize>(w.count) * block_bytes_, off);
    return;
  }
  struct iovec iov[kIovBatch];
  for (u64 b0 = 0; b0 < w.count; b0 += kIovBatch) {
    const usize cnt = static_cast<usize>(std::min<u64>(kIovBatch, w.count - b0));
    for (usize k = 0; k < cnt; ++k) {
      iov[k].iov_base =
          const_cast<std::byte*>(w.src) + static_cast<i64>(b0 + k) * stride;
      iov[k].iov_len = block_bytes_;
    }
    const auto off = static_cast<off_t>(w.where.index + b0) *
                     static_cast<off_t>(block_bytes_);
    const ssize_t n = ::pwritev(fd, iov, static_cast<int>(cnt), off);
    PDM_CHECK(n > 0, "pwritev short/failed");
    usize k = static_cast<usize>(n / bb);
    if (const usize part = static_cast<usize>(n % bb); part > 0) {
      pwrite_full(fd, w.src + static_cast<i64>(b0 + k) * stride + part,
                  block_bytes_ - part,
                  off + static_cast<off_t>(k) * bb + static_cast<off_t>(part));
      ++k;
    }
    for (; k < cnt; ++k) {
      pwrite_full(fd, w.src + static_cast<i64>(b0 + k) * stride, block_bytes_,
                  off + static_cast<off_t>(k) * bb);
    }
  }
}

void FileDiskBackend::read_batch(std::span<const ReadReq> reqs) {
  auto& pool = ThreadPool::global();
  if (reqs.size() <= 1) {
    for (const auto& r : reqs) exec_read(r);
    return;
  }
  pool.parallel_for(0, reqs.size(), [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) exec_read(reqs[i]);
  });
}

void FileDiskBackend::write_batch(std::span<const WriteReq> reqs) {
  auto& pool = ThreadPool::global();
  if (reqs.size() <= 1) {
    for (const auto& w : reqs) exec_write(w);
  } else {
    pool.parallel_for(0, reqs.size(), [&](usize lo, usize hi) {
      for (usize i = lo; i < hi; ++i) exec_write(reqs[i]);
    });
  }
  std::lock_guard g(marks_mu_);
  for (const auto& w : reqs) {
    blocks_written_[w.where.disk] =
        std::max(blocks_written_[w.where.disk], w.where.index + w.count);
  }
}

u64 FileDiskBackend::disk_blocks(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "disk out of range");
  std::lock_guard g(marks_mu_);
  return blocks_written_[disk];
}

}  // namespace pdm
