// Block-level addressing for the Parallel Disk Model.
//
// A PDM instance has D independent disks; each disk is an array of
// fixed-size blocks. One *parallel I/O operation* transfers at most one
// block per disk. All higher layers (runs, matrices, sorters) reduce their
// access patterns to vectors of block requests; the IoScheduler groups those
// into parallel operations and charges them to the statistics.
#pragma once

#include <cstddef>
#include <span>

#include "util/common.h"

namespace pdm {

/// Address of one block: which disk, and the block index within that disk.
struct BlockRef {
  u32 disk = 0;
  u64 index = 0;

  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

/// A single-block read into caller-owned memory (block_bytes bytes).
struct ReadReq {
  BlockRef where;
  std::byte* dst = nullptr;
};

/// A single-block write from caller-owned memory (block_bytes bytes).
struct WriteReq {
  BlockRef where;
  const std::byte* src = nullptr;
};

}  // namespace pdm
