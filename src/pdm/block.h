// Block-level addressing for the Parallel Disk Model.
//
// A PDM instance has D independent disks; each disk is an array of
// fixed-size blocks. One *parallel I/O operation* transfers at most one
// block per disk. All higher layers (runs, matrices, sorters) reduce their
// access patterns to vectors of block requests; the IoScheduler groups those
// into parallel operations and charges them to the statistics.
//
// Requests are extent-capable: a request may span `count` physically
// contiguous blocks of one disk (one backend call — one pread/pwrite or
// preadv/pwritev — moves the whole span), with the per-block memory
// buffers laid out at a uniform byte stride. The paper's parallel-op
// accounting is unaffected: a span of c blocks on one disk still counts as
// c block-transfers on that disk (see IoScheduler).
#pragma once

#include <cstddef>
#include <span>

#include "util/common.h"

namespace pdm {

/// Address of one block: which disk, and the block index within that disk.
struct BlockRef {
  u32 disk = 0;
  u64 index = 0;

  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

/// A span of physically contiguous blocks on one disk, the unit the extent
/// allocator hands out and the free list recycles.
struct Extent {
  u32 disk = 0;
  u64 index = 0;  // first block
  u64 count = 0;  // blocks [index, index + count)

  friend bool operator==(const Extent&, const Extent&) = default;
};

/// A read of `count` contiguous blocks starting at `where` into
/// caller-owned memory: block k lands at dst + k * stride bytes, where
/// stride is `dst_stride_bytes` (or block_bytes when 0, i.e. a contiguous
/// buffer). Single-block requests leave count/stride at their defaults.
struct ReadReq {
  BlockRef where;
  std::byte* dst = nullptr;
  u64 count = 1;
  i64 dst_stride_bytes = 0;  // 0 = contiguous (block_bytes)

  /// The effective buffer stride: the single place the "0 means
  /// contiguous" convention is interpreted.
  i64 stride_or(usize block_bytes) const noexcept {
    return dst_stride_bytes != 0 ? dst_stride_bytes
                                 : static_cast<i64>(block_bytes);
  }
};

/// A write of `count` contiguous blocks from caller-owned memory; block k
/// is taken from src + k * stride bytes (stride as in ReadReq).
struct WriteReq {
  BlockRef where;
  const std::byte* src = nullptr;
  u64 count = 1;
  i64 src_stride_bytes = 0;  // 0 = contiguous (block_bytes)

  i64 stride_or(usize block_bytes) const noexcept {
    return src_stride_bytes != 0 ? src_stride_bytes
                                 : static_cast<i64>(block_bytes);
  }
};

}  // namespace pdm
