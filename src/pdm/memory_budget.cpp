#include "pdm/memory_budget.h"

#include <algorithm>
#include <string>

namespace pdm {

void MemoryBudget::acquire(usize bytes) {
  if (current_ + bytes > limit_) {
    fail("memory budget exceeded: want " + std::to_string(bytes) +
         " bytes on top of " + std::to_string(current_) + ", limit " +
         std::to_string(limit_));
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryBudget::release(usize bytes) noexcept {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

}  // namespace pdm
