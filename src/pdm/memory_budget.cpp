#include "pdm/memory_budget.h"

#include <algorithm>
#include <string>

namespace pdm {

void MemoryBudget::acquire(usize bytes) {
  {
    std::lock_guard g(mu_);
    if (current_ + bytes <= limit_) {
      current_ += bytes;
      peak_ = std::max(peak_, current_);
      return;
    }
  }
  // fail() composes the message outside the lock.
  fail("memory budget exceeded: want " + std::to_string(bytes) +
       " bytes on top of " + std::to_string(current()) + ", limit " +
       std::to_string(limit()));
}

bool MemoryBudget::try_acquire(usize bytes) noexcept {
  std::lock_guard g(mu_);
  if (current_ + bytes > limit_) return false;
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  return true;
}

void MemoryBudget::release(usize bytes) noexcept {
  std::lock_guard g(mu_);
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

}  // namespace pdm
