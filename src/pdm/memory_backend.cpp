#include "pdm/memory_backend.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace pdm {

MemoryDiskBackend::MemoryDiskBackend(u32 num_disks, usize block_bytes)
    : num_disks_(num_disks),
      block_bytes_(block_bytes),
      disk_mu_(std::make_unique<std::mutex[]>(num_disks)),
      disks_(num_disks) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
  PDM_CHECK(block_bytes > 0, "block_bytes must be positive");
}

void MemoryDiskBackend::simulate_latency() const {
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
}

void MemoryDiskBackend::read_batch(std::span<const ReadReq> reqs) {
  simulate_latency();
  for (const auto& r : reqs) {
    PDM_CHECK(r.where.disk < num_disks_, "read: disk out of range");
    std::lock_guard g(disk_mu_[r.where.disk]);
    const auto& d = disks_[r.where.disk];
    const usize off = static_cast<usize>(r.where.index) * block_bytes_;
    PDM_CHECK(off + block_bytes_ <= d.size(),
              "read of unwritten block (disk " +
                  std::to_string(r.where.disk) + ", block " +
                  std::to_string(r.where.index) + ")");
    std::memcpy(r.dst, d.data() + off, block_bytes_);
  }
}

void MemoryDiskBackend::write_batch(std::span<const WriteReq> reqs) {
  simulate_latency();
  for (const auto& w : reqs) {
    PDM_CHECK(w.where.disk < num_disks_, "write: disk out of range");
    std::lock_guard g(disk_mu_[w.where.disk]);
    auto& d = disks_[w.where.disk];
    const usize off = static_cast<usize>(w.where.index) * block_bytes_;
    if (off + block_bytes_ > d.size()) d.resize(off + block_bytes_);
    std::memcpy(d.data() + off, w.src, block_bytes_);
  }
}

u64 MemoryDiskBackend::disk_blocks(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "disk out of range");
  std::lock_guard g(disk_mu_[disk]);
  return disks_[disk].size() / block_bytes_;
}

usize MemoryDiskBackend::resident_bytes() const {
  usize total = 0;
  for (u32 d = 0; d < num_disks_; ++d) {
    std::lock_guard g(disk_mu_[d]);
    total += disks_[d].size();
  }
  return total;
}

}  // namespace pdm
