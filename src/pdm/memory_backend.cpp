#include "pdm/memory_backend.h"

#include <algorithm>
#include <cstring>
#include <thread>

namespace pdm {

MemoryDiskBackend::MemoryDiskBackend(u32 num_disks, usize block_bytes)
    : num_disks_(num_disks),
      block_bytes_(block_bytes),
      epoch_(std::chrono::steady_clock::now()),
      disk_mu_(std::make_unique<std::mutex[]>(num_disks)),
      disks_(num_disks),
      sims_(num_disks) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
  PDM_CHECK(block_bytes > 0, "block_bytes must be positive");
}

void MemoryDiskBackend::simulate_latency() const {
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
}

i64 MemoryDiskBackend::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

i64 MemoryDiskBackend::charge_stream_locked(u32 d, u64 index, u64 count) {
  DiskSim& sim = sims_[d];
  auto& lru = sim.lru;
  bool hit = false;
  for (usize i = 0; i < lru.size(); ++i) {
    const u64 head = lru[i];
    const u64 dist = head > index ? head - index : index - head;
    if (dist <= stream_.window_blocks) {
      // Same stream: advance its head and move it to the front.
      lru.erase(lru.begin() + static_cast<std::ptrdiff_t>(i));
      hit = true;
      break;
    }
  }
  if (!hit && lru.size() >= stream_.streams) lru.pop_back();
  // The stream head ends at the last block of the extent: a follow-up
  // request continuing the span is a hit.
  lru.insert(lru.begin(), index + count - 1);
  // One positioning decision per extent; blocks 2..count stream
  // sequentially no matter how thrashed the cache is.
  if (hit) {
    sim.hits += count;
  } else {
    ++sim.misses;
    sim.hits += count - 1;
  }
  const i64 dur = static_cast<i64>(
      (hit ? stream_.seq_us : stream_.seek_us) + (count - 1) * stream_.seq_us);
  sim.busy_until_us = std::max(sim.busy_until_us, now_us()) + dur;
  return sim.busy_until_us;
}

void MemoryDiskBackend::wait_until_us(i64 target) const {
  // OS sleep granularity (~50us timer slack) would swamp block-scale
  // service times: sleep for the bulk of long waits, spin out the tail so
  // the occupancy clocks stay faithful.
  for (;;) {
    const i64 now = now_us();
    if (now >= target) return;
    if (target - now > 200) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(target - now - 100));
    } else {
      std::this_thread::yield();
    }
  }
}

void MemoryDiskBackend::read_batch(std::span<const ReadReq> reqs) {
  const bool occupancy = stream_.enabled();
  if (!occupancy) simulate_latency();
  i64 wait_until = 0;
  for (const auto& r : reqs) {
    PDM_CHECK(r.where.disk < num_disks_, "read: disk out of range");
    const i64 stride = r.stride_or(block_bytes_);
    std::lock_guard g(disk_mu_[r.where.disk]);
    const auto& d = disks_[r.where.disk];
    for (u64 b = 0; b < r.count; ++b) {
      const usize off = static_cast<usize>(r.where.index + b) * block_bytes_;
      PDM_CHECK(off + block_bytes_ <= d.size(),
                "read of unwritten block (disk " +
                    std::to_string(r.where.disk) + ", block " +
                    std::to_string(r.where.index + b) + ")");
      std::memcpy(r.dst + static_cast<i64>(b) * stride, d.data() + off,
                  block_bytes_);
    }
    if (occupancy) {
      wait_until = std::max(
          wait_until,
          charge_stream_locked(r.where.disk, r.where.index, r.count));
    }
  }
  if (occupancy) wait_until_us(wait_until);
}

void MemoryDiskBackend::write_batch(std::span<const WriteReq> reqs) {
  const bool occupancy = stream_.enabled();
  if (!occupancy) simulate_latency();
  i64 wait_until = 0;
  for (const auto& w : reqs) {
    PDM_CHECK(w.where.disk < num_disks_, "write: disk out of range");
    const i64 stride = w.stride_or(block_bytes_);
    std::lock_guard g(disk_mu_[w.where.disk]);
    auto& d = disks_[w.where.disk];
    const usize end =
        static_cast<usize>(w.where.index + w.count) * block_bytes_;
    if (end > d.size()) d.resize(end);
    for (u64 b = 0; b < w.count; ++b) {
      const usize off = static_cast<usize>(w.where.index + b) * block_bytes_;
      std::memcpy(d.data() + off, w.src + static_cast<i64>(b) * stride,
                  block_bytes_);
    }
    if (occupancy) {
      wait_until = std::max(
          wait_until,
          charge_stream_locked(w.where.disk, w.where.index, w.count));
    }
  }
  if (occupancy) wait_until_us(wait_until);
}

u64 MemoryDiskBackend::disk_blocks(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "disk out of range");
  std::lock_guard g(disk_mu_[disk]);
  return disks_[disk].size() / block_bytes_;
}

usize MemoryDiskBackend::resident_bytes() const {
  usize total = 0;
  for (u32 d = 0; d < num_disks_; ++d) {
    std::lock_guard g(disk_mu_[d]);
    total += disks_[d].size();
  }
  return total;
}

u64 MemoryDiskBackend::stream_hits() const {
  u64 total = 0;
  for (u32 d = 0; d < num_disks_; ++d) {
    std::lock_guard g(disk_mu_[d]);
    total += sims_[d].hits;
  }
  return total;
}

u64 MemoryDiskBackend::stream_misses() const {
  u64 total = 0;
  for (u32 d = 0; d < num_disks_; ++d) {
    std::lock_guard g(disk_mu_[d]);
    total += sims_[d].misses;
  }
  return total;
}

}  // namespace pdm
