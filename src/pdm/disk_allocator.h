// Trivial bump allocator for disk blocks: each disk has a next-free-block
// cursor. Runs allocate their blocks round-robin across disks (striping);
// the allocator only hands out fresh indices, it never reuses space (the
// simulator has no fragmentation concerns worth modelling).
//
// Thread-safe: one allocator is shared by every job context of a sort
// service, so two concurrent sorts can never be handed the same block —
// fresh indices are the entire cross-job isolation story.
#pragma once

#include <mutex>
#include <vector>

#include "pdm/block.h"
#include "util/common.h"

namespace pdm {

class DiskAllocator {
 public:
  explicit DiskAllocator(u32 num_disks);

  u32 num_disks() const noexcept { return static_cast<u32>(num_disks_); }

  /// Allocates one fresh block on `disk`.
  BlockRef alloc(u32 disk);

  /// Allocates `count` consecutive blocks on `disk`; returns the first.
  BlockRef alloc_contiguous(u32 disk, u64 count);

  /// Blocks allocated so far on `disk`.
  u64 used(u32 disk) const;

  /// Total blocks allocated across all disks.
  u64 total_used() const;

  /// Forgets all allocations (the backing store is not cleared; stale reads
  /// of reused blocks will read old bytes, as on a real disk).
  void reset();

 private:
  mutable std::mutex mu_;
  usize num_disks_;
  std::vector<u64> next_;
};

}  // namespace pdm
