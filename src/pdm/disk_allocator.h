// Extent-based disk-space allocator.
//
// Historically this was a pure bump allocator: one next-free-block cursor
// per disk, every caller interleaved block-by-block. That is exactly the
// layout that defeats large transfers — two concurrent jobs' runs end up
// zipped together on every disk, so no two logically consecutive blocks of
// a run are physically adjacent. The allocator now hands out *extents*
// (spans of physically contiguous blocks) from per-region arenas:
//
//  - alloc_extent(disk, count, region) returns `count` contiguous blocks.
//    Region-scoped allocations carve from that region's private arena on
//    the disk (refilled in arena_blocks-sized chunks from the shared
//    cursor), so different jobs' extents occupy disjoint disk regions
//    instead of interleaving — which is what keeps a run's blocks
//    syscall-coalescible and a tenant's working set within a disk's
//    stream cache (see MemoryDiskBackend::StreamModel).
//  - free_extent() returns a span to a per-disk free list (adjacent spans
//    coalesce); alloc_extent reuses free spans before bumping the cursor.
//    Reuse is size-indexed: alongside the address-ordered map (the source
//    of truth for coalescing) each disk keeps power-of-two size buckets of
//    free-span addresses. A request scans at most kMaxFreeScan candidates
//    in its own size octave (same-octave spans may still be too small),
//    then takes the lowest-addressed span from any higher octave — a
//    guaranteed fit — so a big span stays findable behind any number of
//    small fragments (the old bounded first-fit leaked it to the cursor).
//    Runs release their unused extent tails at finish(), so tail
//    fragmentation is transient.
//  - open_region()/close_region() bracket a job's lifetime (PdmContext
//    does this automatically); close recycles the region's arena tails.
//    Region 0 is the always-open default region with no arena: it
//    allocates exact-size spans straight from the free list / cursor,
//    preserving the legacy block-interleaved behaviour for callers that
//    opt out of extents.
//
// Thread-safe: one allocator is shared by every job context of a sort
// service, so two concurrent sorts can never be handed the same block.
//
// reset() forgets all allocations and is only legal on a quiescent
// allocator: calling it while regions are open (i.e. job contexts are
// live) or extents are outstanding is a bug — live runs would be handed
// out again to the next caller. It asserts that no region is open; use
// used_by()/open_regions() to probe a live allocator instead.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "pdm/block.h"
#include "util/common.h"

namespace pdm {

class DiskAllocator {
 public:
  /// Arena refill size for regions opened with arena_blocks = 0.
  static constexpr u64 kDefaultArenaBlocks = 256;

  /// Same-octave free spans examined per allocation before falling back
  /// to a higher size bucket / the cursor (bounds allocation cost under
  /// fragmentation, as the old whole-list first-fit cap did).
  static constexpr usize kMaxFreeScan = 64;

  explicit DiskAllocator(u32 num_disks);

  u32 num_disks() const noexcept { return static_cast<u32>(num_disks_); }

  /// Allocates one fresh block on `disk` (an extent of one).
  BlockRef alloc(u32 disk, u32 region = 0);

  /// Allocates `count` consecutive blocks on `disk`; returns the first.
  BlockRef alloc_contiguous(u32 disk, u64 count);

  /// Allocates `count` physically contiguous blocks on `disk`. Region-
  /// scoped calls carve from the region's arena; region 0 allocates an
  /// exact-size span (free list first, then the bump cursor).
  Extent alloc_extent(u32 disk, u64 count, u32 region = 0);

  /// Returns a span to the per-disk free list for reuse (coalescing with
  /// adjacent free spans). `region` credits the books of the region the
  /// span was allocated under.
  void free_extent(const Extent& e, u32 region = 0);

  /// Opens a tenant region: subsequent region-scoped extents come from
  /// private arena chunks of `arena_blocks` blocks (0 = default), so the
  /// region's data is physically separated from other tenants'.
  u32 open_region(u64 arena_blocks = 0);

  /// Closes a region, recycling its unconsumed arena tails to the free
  /// list. Blocks already handed out stay allocated (a finished job's
  /// output may outlive its context).
  void close_region(u32 region);

  /// Blocks ever claimed from `disk`'s bump cursor (high-water mark; the
  /// backing store beyond it has never been touched).
  u64 used(u32 disk) const;

  /// Total high-water blocks across all disks.
  u64 total_used() const;

  /// Live blocks currently held by `region` (allocated minus freed):
  /// the probe for "does this region still own disk space".
  u64 used_by(u32 region) const;

  /// Spans currently sitting in `disk`'s free list, in blocks.
  u64 free_blocks(u32 disk) const;

  /// Regions currently open (excluding the default region 0).
  usize open_regions() const;

  /// Forgets all allocations (the backing store is not cleared; stale
  /// reads of reused blocks will read old bytes, as on a real disk).
  /// Asserts that no region is open: resetting under outstanding
  /// reservations would hand live blocks out twice.
  void reset();

 private:
  struct Region {
    u64 arena_blocks = kDefaultArenaBlocks;
    std::vector<Extent> arena;  // per-disk unconsumed arena tail
    u64 live = 0;               // blocks handed out minus blocks freed
  };

  using FreeList = std::map<u64, u64>;  // index -> count, address order

  /// Takes a span of >= `want` blocks on `disk` from the free list
  /// (size-bucketed best-octave fit, remainder returned) or the bump
  /// cursor. Caller holds mu_.
  Extent take_span_locked(u32 disk, u64 want);
  void insert_free_locked(u32 disk, u64 index, u64 count);

  /// The only two mutation points of a disk's free list: keep the
  /// address-ordered map and the size-bucket index in lockstep.
  FreeList::iterator fl_add_locked(u32 disk, u64 index, u64 count);
  void fl_remove_locked(u32 disk, FreeList::iterator it);

  mutable std::mutex mu_;
  usize num_disks_;
  std::vector<u64> next_;               // bump cursors
  std::vector<FreeList> free_;          // per disk, source of truth
  // Per disk: size octave (bit_width(count) - 1) -> addresses of free
  // spans whose count is in [2^b, 2^(b+1)). Counts live in free_.
  std::vector<std::map<u32, std::set<u64>>> free_by_size_;
  std::map<u32, Region> regions_;
  u32 next_region_ = 1;
  u64 default_live_ = 0;  // live blocks of the default region 0
};

}  // namespace pdm
