#include "pdm/io_scheduler.h"

#include <functional>
#include <vector>

#include "pdm/async_io.h"

namespace pdm {

IoScheduler::IoScheduler(DiskBackend& backend, CostModel cost)
    : backend_(&backend), cost_(cost) {
  stats_.reset(backend_->num_disks());
}

namespace {

// Builds per-disk FIFO queues and executes round t = the t-th request of
// every non-empty queue, until all queues drain. Returns the round count.
template <class Req>
u64 run_rounds(std::span<const Req> reqs, u32 num_disks,
               const std::function<void(std::span<const Req>)>& exec) {
  static thread_local std::vector<Req> round_buf;
  static thread_local std::vector<std::vector<u32>> queues;
  if (queues.size() < num_disks) queues.resize(num_disks);
  for (auto& q : queues) q.clear();
  for (usize i = 0; i < reqs.size(); ++i) {
    queues[reqs[i].where.disk].push_back(static_cast<u32>(i));
  }
  u64 rounds = 0;
  for (usize t = 0;; ++t) {
    round_buf.clear();
    for (u32 d = 0; d < num_disks; ++d) {
      if (t < queues[d].size()) round_buf.push_back(reqs[queues[d][t]]);
    }
    if (round_buf.empty()) break;
    exec(std::span<const Req>(round_buf));
    ++rounds;
  }
  return rounds;
}

// Rounds of a batch without executing it: the length of the longest
// per-disk queue. Must agree with run_rounds above.
template <class Req>
u64 count_rounds(std::span<const Req> reqs, u32 num_disks) {
  static thread_local std::vector<u64> load;
  load.assign(num_disks, 0);
  u64 rounds = 0;
  for (const auto& r : reqs) {
    rounds = std::max(rounds, ++load[r.where.disk]);
  }
  return rounds;
}

}  // namespace

u64 IoScheduler::account_read(std::span<const ReadReq> reqs) {
  if (reqs.empty()) return 0;
  for (const auto& r : reqs) {
    PDM_CHECK(r.where.disk < backend_->num_disks(), "read: bad disk");
    stats_.hash_request(r.where.disk, r.where.index, /*is_write=*/false);
    ++stats_.disk_reads[r.where.disk];
  }
  const u64 rounds = count_rounds<ReadReq>(reqs, backend_->num_disks());
  const double sim = static_cast<double>(rounds) *
                     cost_.round_cost(backend_->block_bytes());
  stats_.read_ops += rounds;
  stats_.blocks_read += reqs.size();
  stats_.sim_time_s += sim;
  if (totals_ != nullptr) {
    const usize nd = backend_->num_disks();
    totals_->update([&](IoStats& t) {
      if (t.disk_reads.size() < nd) {  // default-constructed aggregate
        t.disk_reads.resize(nd, 0);
        t.disk_writes.resize(nd, 0);
      }
      t.read_ops += rounds;
      t.blocks_read += reqs.size();
      t.sim_time_s += sim;
      for (const auto& r : reqs) ++t.disk_reads[r.where.disk];
    });
  }
  return rounds;
}

u64 IoScheduler::account_write(std::span<const WriteReq> reqs) {
  if (reqs.empty()) return 0;
  for (const auto& w : reqs) {
    PDM_CHECK(w.where.disk < backend_->num_disks(), "write: bad disk");
    stats_.hash_request(w.where.disk, w.where.index, /*is_write=*/true);
    ++stats_.disk_writes[w.where.disk];
  }
  const u64 rounds = count_rounds<WriteReq>(reqs, backend_->num_disks());
  const double sim = static_cast<double>(rounds) *
                     cost_.round_cost(backend_->block_bytes());
  stats_.write_ops += rounds;
  stats_.blocks_written += reqs.size();
  stats_.sim_time_s += sim;
  if (totals_ != nullptr) {
    const usize nd = backend_->num_disks();
    totals_->update([&](IoStats& t) {
      if (t.disk_writes.size() < nd) {  // default-constructed aggregate
        t.disk_reads.resize(nd, 0);
        t.disk_writes.resize(nd, 0);
      }
      t.write_ops += rounds;
      t.blocks_written += reqs.size();
      t.sim_time_s += sim;
      for (const auto& w : reqs) ++t.disk_writes[w.where.disk];
    });
  }
  return rounds;
}

u64 IoScheduler::read(std::span<const ReadReq> reqs) {
  if (reqs.empty()) return 0;
  if (pipeline_ != nullptr && pipeline_->enabled()) {
    return pipeline_->read(reqs);
  }
  const u64 rounds = account_read(reqs);
  const u64 executed = run_rounds<ReadReq>(
      reqs, backend_->num_disks(),
      [this](std::span<const ReadReq> round) { backend_->read_batch(round); });
  PDM_ASSERT(executed == rounds, "round accounting mismatch");
  return rounds;
}

u64 IoScheduler::write(std::span<const WriteReq> reqs) {
  if (reqs.empty()) return 0;
  if (pipeline_ != nullptr && pipeline_->enabled()) {
    return pipeline_->write(reqs);
  }
  const u64 rounds = account_write(reqs);
  const u64 executed = run_rounds<WriteReq>(
      reqs, backend_->num_disks(),
      [this](std::span<const WriteReq> round) { backend_->write_batch(round); });
  PDM_ASSERT(executed == rounds, "round accounting mismatch");
  return rounds;
}

}  // namespace pdm
