#include "pdm/io_scheduler.h"

#include <functional>
#include <type_traits>
#include <vector>

#include "pdm/async_io.h"

namespace pdm {

IoScheduler::IoScheduler(DiskBackend& backend, CostModel cost)
    : backend_(&backend), cost_(cost) {
  stats_.reset(backend_->num_disks());
}

namespace {

template <class Req>
auto req_buf(const Req& r) {
  if constexpr (std::is_same_v<Req, ReadReq>) {
    return r.dst;
  } else {
    return r.src;
  }
}

template <class Req>
i64 req_stride(const Req& r, usize block_bytes) {
  return r.stride_or(block_bytes);
}

template <class Req>
void set_stride(Req& r, i64 stride) {
  if constexpr (std::is_same_v<Req, ReadReq>) {
    r.dst_stride_bytes = stride;
  } else {
    r.src_stride_bytes = stride;
  }
}

// Merges adjacent same-disk requests with physically contiguous block
// indices and a uniform buffer stride into multi-block extent requests.
// Per-disk submission order is preserved (merging only ever fuses a
// request into the *latest* open request of its disk, and an intervening
// non-adjacent request on that disk closes the chain), so executing the
// coalesced batch through any per-disk FIFO is equivalent to executing
// the raw one.
template <class Req>
void coalesce_batch(std::span<const Req> reqs, usize block_bytes,
                    u32 num_disks, std::vector<Req>& out) {
  out.clear();
  out.reserve(reqs.size());
  static thread_local std::vector<i64> open;  // per-disk index into out
  open.assign(num_disks, -1);
  for (const Req& r : reqs) {
    const u32 d = r.where.disk;
    if (open[d] >= 0) {
      Req& o = out[static_cast<usize>(open[d])];
      if (o.where.index + o.count == r.where.index &&
          o.count + r.count <= IoScheduler::kMaxCoalesceBlocks) {
        // The merged request's uniform buffer stride: declared by either
        // multi-block side, else inferred from the pair's buffer gap
        // (a striped run's load buffer gives D * block_bytes here).
        i64 stride;
        if (o.count > 1) {
          stride = req_stride(o, block_bytes);
        } else if (r.count > 1) {
          stride = req_stride(r, block_bytes);
        } else {
          stride = req_buf(r) - req_buf(o);
        }
        const bool adjacent =
            stride != 0 &&
            req_buf(r) == req_buf(o) + static_cast<i64>(o.count) * stride &&
            (o.count == 1 || req_stride(o, block_bytes) == stride) &&
            (r.count == 1 || req_stride(r, block_bytes) == stride);
        if (adjacent) {
          o.count += r.count;
          set_stride(o, stride);
          continue;
        }
      }
    }
    open[d] = static_cast<i64>(out.size());
    out.push_back(r);
  }
}

// Builds per-disk FIFO queues and executes round t = the t-th request of
// every non-empty queue, until all queues drain. Returns the round count.
template <class Req>
u64 run_rounds(std::span<const Req> reqs, u32 num_disks,
               const std::function<void(std::span<const Req>)>& exec) {
  static thread_local std::vector<Req> round_buf;
  static thread_local std::vector<std::vector<u32>> queues;
  if (queues.size() < num_disks) queues.resize(num_disks);
  for (auto& q : queues) q.clear();
  for (usize i = 0; i < reqs.size(); ++i) {
    queues[reqs[i].where.disk].push_back(static_cast<u32>(i));
  }
  u64 rounds = 0;
  for (usize t = 0;; ++t) {
    round_buf.clear();
    for (u32 d = 0; d < num_disks; ++d) {
      if (t < queues[d].size()) round_buf.push_back(reqs[queues[d][t]]);
    }
    if (round_buf.empty()) break;
    exec(std::span<const Req>(round_buf));
    ++rounds;
  }
  return rounds;
}

// Paper ops of a batch without executing it: the longest per-disk queue in
// *blocks* (one parallel op moves at most one block per disk, so a c-block
// extent request still costs c ops' worth of load on its disk).
template <class Req>
u64 count_block_rounds(std::span<const Req> reqs, u32 num_disks) {
  static thread_local std::vector<u64> load;
  load.assign(num_disks, 0);
  u64 rounds = 0;
  for (const auto& r : reqs) {
    load[r.where.disk] += r.count;
    rounds = std::max(rounds, load[r.where.disk]);
  }
  return rounds;
}

// Rounds of the coalesced batch in *requests* per disk: what run_rounds
// will execute. Must agree with run_rounds above.
template <class Req>
u64 count_req_rounds(std::span<const Req> reqs, u32 num_disks) {
  static thread_local std::vector<u64> load;
  load.assign(num_disks, 0);
  u64 rounds = 0;
  for (const auto& r : reqs) {
    rounds = std::max(rounds, ++load[r.where.disk]);
  }
  return rounds;
}

}  // namespace

u64 IoScheduler::account_read(std::span<const ReadReq> reqs) {
  if (reqs.empty()) {
    co_reads_.clear();
    co_read_rounds_ = 0;
    return 0;
  }
  u64 blocks = 0;
  for (const auto& r : reqs) {
    PDM_CHECK(r.where.disk < backend_->num_disks(), "read: bad disk");
    PDM_CHECK(r.count > 0, "read: empty request");
    blocks += r.count;
    for (u64 b = 0; b < r.count; ++b) {
      stats_.hash_request(r.where.disk, r.where.index + b, /*is_write=*/false);
    }
    stats_.disk_reads[r.where.disk] += r.count;
  }
  const u64 rounds = count_block_rounds<ReadReq>(reqs, backend_->num_disks());
  const double sim = static_cast<double>(rounds) *
                     cost_.round_cost(backend_->block_bytes());
  stats_.read_ops += rounds;
  stats_.blocks_read += blocks;
  stats_.sim_time_s += sim;
  if (coalescing_) {
    coalesce_batch<ReadReq>(reqs, backend_->block_bytes(),
                            backend_->num_disks(), co_reads_);
  } else {
    co_reads_.assign(reqs.begin(), reqs.end());
  }
  co_read_rounds_ = count_req_rounds<ReadReq>(co_reads_, backend_->num_disks());
  stats_.read_calls += co_reads_.size();
  for (const auto& c : co_reads_) ++stats_.disk_read_calls[c.where.disk];
  if (totals_ != nullptr) {
    const usize nd = backend_->num_disks();
    const usize calls = co_reads_.size();
    totals_->update([&](IoStats& t) {
      if (t.disk_reads.size() < nd) {  // default-constructed aggregate
        t.disk_reads.resize(nd, 0);
        t.disk_writes.resize(nd, 0);
      }
      if (t.disk_read_calls.size() < nd) {
        t.disk_read_calls.resize(nd, 0);
        t.disk_write_calls.resize(nd, 0);
      }
      t.read_ops += rounds;
      t.blocks_read += blocks;
      t.read_calls += calls;
      t.sim_time_s += sim;
      for (const auto& r : reqs) t.disk_reads[r.where.disk] += r.count;
      for (const auto& c : co_reads_) ++t.disk_read_calls[c.where.disk];
    });
  }
  return rounds;
}

u64 IoScheduler::account_write(std::span<const WriteReq> reqs) {
  if (reqs.empty()) {
    co_writes_.clear();
    co_write_rounds_ = 0;
    return 0;
  }
  u64 blocks = 0;
  for (const auto& w : reqs) {
    PDM_CHECK(w.where.disk < backend_->num_disks(), "write: bad disk");
    PDM_CHECK(w.count > 0, "write: empty request");
    blocks += w.count;
    for (u64 b = 0; b < w.count; ++b) {
      stats_.hash_request(w.where.disk, w.where.index + b, /*is_write=*/true);
    }
    stats_.disk_writes[w.where.disk] += w.count;
  }
  const u64 rounds = count_block_rounds<WriteReq>(reqs, backend_->num_disks());
  const double sim = static_cast<double>(rounds) *
                     cost_.round_cost(backend_->block_bytes());
  stats_.write_ops += rounds;
  stats_.blocks_written += blocks;
  stats_.sim_time_s += sim;
  if (coalescing_) {
    coalesce_batch<WriteReq>(reqs, backend_->block_bytes(),
                             backend_->num_disks(), co_writes_);
  } else {
    co_writes_.assign(reqs.begin(), reqs.end());
  }
  co_write_rounds_ =
      count_req_rounds<WriteReq>(co_writes_, backend_->num_disks());
  stats_.write_calls += co_writes_.size();
  for (const auto& c : co_writes_) ++stats_.disk_write_calls[c.where.disk];
  if (totals_ != nullptr) {
    const usize nd = backend_->num_disks();
    const usize calls = co_writes_.size();
    totals_->update([&](IoStats& t) {
      if (t.disk_writes.size() < nd) {  // default-constructed aggregate
        t.disk_reads.resize(nd, 0);
        t.disk_writes.resize(nd, 0);
      }
      if (t.disk_write_calls.size() < nd) {
        t.disk_read_calls.resize(nd, 0);
        t.disk_write_calls.resize(nd, 0);
      }
      t.write_ops += rounds;
      t.blocks_written += blocks;
      t.write_calls += calls;
      t.sim_time_s += sim;
      for (const auto& w : reqs) t.disk_writes[w.where.disk] += w.count;
      for (const auto& c : co_writes_) ++t.disk_write_calls[c.where.disk];
    });
  }
  return rounds;
}

u64 IoScheduler::read(std::span<const ReadReq> reqs) {
  if (reqs.empty()) return 0;
  if (pipeline_ != nullptr && pipeline_->enabled()) {
    return pipeline_->read(reqs);
  }
  const u64 rounds = account_read(reqs);
  const u64 executed = run_rounds<ReadReq>(
      co_reads_, backend_->num_disks(),
      [this](std::span<const ReadReq> round) { backend_->read_batch(round); });
  PDM_ASSERT(executed == co_read_rounds_, "round accounting mismatch");
  return rounds;
}

u64 IoScheduler::write(std::span<const WriteReq> reqs) {
  if (reqs.empty()) return 0;
  if (pipeline_ != nullptr && pipeline_->enabled()) {
    return pipeline_->write(reqs);
  }
  const u64 rounds = account_write(reqs);
  const u64 executed = run_rounds<WriteReq>(
      co_writes_, backend_->num_disks(),
      [this](std::span<const WriteReq> round) { backend_->write_batch(round); });
  PDM_ASSERT(executed == co_write_rounds_, "round accounting mismatch");
  return rounds;
}

}  // namespace pdm
