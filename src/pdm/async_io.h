// Asynchronous double-buffered I/O pipeline in front of the synchronous
// IoScheduler.
//
// Design:
//  - Accounting happens on the submitting thread, at submission time,
//    through IoScheduler::account_read/account_write — so IoStats (op
//    counts, per-disk block counts, simulated time) are identical to a
//    synchronous run issuing the same batches, regardless of worker timing.
//  - Execution is deferred to a fixed pool of worker threads draining one
//    FIFO queue per disk. At most one worker services a disk at a time, so
//    requests touching the same disk (hence the same block — a block lives
//    on exactly one disk) execute in submission order: a read submitted
//    after a write of the same block always observes the written data.
//    Requests on different disks proceed concurrently, which is what turns
//    the paper's "one parallel op" accounting into real D-way overlap.
//  - A ticket is a monotonically increasing completion handle. wait(t)
//    blocks until every request of submission t has executed; ticket 0 is
//    the always-complete ticket returned for empty or synchronous
//    submissions.
//  - depth bounds the number of in-flight submissions (backpressure): a
//    new submission blocks until fewer than `depth` tickets are pending.
//    depth < 2 disables the pipeline entirely — submissions execute
//    synchronously inline via IoScheduler, byte- and stats-identically.
//
// Threading contract: submissions, waits and stat reads come from one
// "algorithm" thread; only backend transfers run on the workers. Worker
// exceptions (e.g. a read of an unwritten block) are captured and
// rethrown on the next wait()/drain()/submission.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pdm/io_scheduler.h"
#include "util/metrics.h"

namespace pdm {

/// Completion handle for one asynchronous submission. 0 == complete.
using IoTicket = u64;

class AsyncIoScheduler {
 public:
  /// Wraps `sync`; starts disabled (depth 0). Worker threads are spawned
  /// lazily when the depth is raised to >= 2.
  explicit AsyncIoScheduler(IoScheduler& sync);
  ~AsyncIoScheduler();

  AsyncIoScheduler(const AsyncIoScheduler&) = delete;
  AsyncIoScheduler& operator=(const AsyncIoScheduler&) = delete;

  /// Max in-flight submissions. Quiesces (waits for all in-flight work
  /// without rethrowing — a captured worker error stays sticky and
  /// surfaces at the next wait/drain/submit), then reconfigures; < 2
  /// disables the pipeline (and joins the workers). Never throws, so it
  /// is safe from RAII destructors during unwinding.
  void set_depth(usize depth);

  /// Grow-only re-arbitration: raises the depth bound WITHOUT quiescing,
  /// so a long-running job can absorb freed service capacity mid-flight.
  /// In-flight submissions keep executing; backpressure waiters are woken
  /// to observe the wider bound. `depth <= depth()` is a no-op (shrinking
  /// mid-flight would require the quiesce — use set_depth). Accounting is
  /// unaffected: charges happen at submission on the submitting thread,
  /// identically at any depth, so IoStats stay byte-equal across grants.
  void raise_depth(usize depth);

  usize depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return depth() >= 2; }

  /// Submits a batch; the request payload buffers (dst/src) must stay
  /// alive and untouched until the returned ticket completes. Charges the
  /// batch to IoStats immediately (see header comment). When disabled,
  /// executes synchronously and returns 0. `rounds_out`, if non-null,
  /// receives the parallel-op count charged for the batch.
  IoTicket read_async(std::span<const ReadReq> reqs, u64* rounds_out = nullptr);
  IoTicket write_async(std::span<const WriteReq> reqs,
                       u64* rounds_out = nullptr);

  /// Submit + wait: synchronous semantics but still ordered through the
  /// per-disk queues, so it composes with in-flight asynchronous requests.
  u64 read(std::span<const ReadReq> reqs);
  u64 write(std::span<const WriteReq> reqs);

  /// Blocks until ticket `t` has fully executed. Rethrows a worker error.
  /// Errors are sticky: once a worker has failed, every subsequent
  /// wait/drain/submit rethrows (the disk state is suspect) — a swallowed
  /// throw during unwinding cannot lose the error.
  void wait(IoTicket t);

  /// True iff ticket `t` has fully executed (never blocks).
  bool complete(IoTicket t);

  /// Blocks until every submitted request has executed.
  void drain();

  IoScheduler& sync() noexcept { return *sync_; }

 private:
  struct Job {
    IoTicket ticket = 0;
    bool is_write = false;
    std::vector<ReadReq> reads;    // all on one disk, submission order
    std::vector<WriteReq> writes;  // all on one disk, submission order
  };
  struct DiskQueue {
    std::deque<Job> jobs;
    bool busy = false;  // a worker is executing this disk's front job
  };
  /// Outstanding per-disk job count for one ticket, plus what the
  /// observability layer needs to attribute the ticket at completion:
  /// the submit timestamp (submit->complete latency) and the direction.
  struct PendingTicket {
    usize outstanding = 0;
    bool is_write = false;
    std::chrono::steady_clock::time_point t_submit;
    // Causal attribution captured from the submitting thread's jobtrace
    // scope, re-established around the completion retro-span (which is
    // emitted on an aio-worker thread).
    u64 job = 0;
    u64 parent = 0;
  };

  template <class Req>
  IoTicket submit(std::span<const Req> reqs);
  void worker_loop();
  void start_workers_locked();
  void stop_workers();
  void quiesce() noexcept;  // wait for pending work, no rethrow
  void rethrow_error_locked();

  IoScheduler* sync_;
  // Atomic: depth()/enabled() are sampled unlocked by the algorithm
  // thread while raise_depth() widens the bound from a service thread.
  std::atomic<usize> depth_{0};
  std::vector<DiskQueue> queues_;  // one per disk
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job may be runnable
  std::condition_variable done_cv_;  // waiters: a ticket completed
  std::unordered_map<u64, PendingTicket> pending_;  // ticket -> in flight

  // Ticket submit->complete latency distributions (registry-owned; cached
  // references so the hot completion path skips the name lookup).
  metrics::LogHistogram& read_ticket_ns_;
  metrics::LogHistogram& write_ticket_ns_;
  u64 next_ticket_ = 0;
  u32 scan_cursor_ = 0;  // round-robin fairness over disk queues
  bool stop_ = false;
  std::exception_ptr error_;
};

/// RAII depth override: sets the pipeline depth for the lifetime of a
/// sorter invocation and restores (draining) on scope exit. Sorters apply
/// it when their options carry an explicit async_depth.
class AsyncDepthScope {
 public:
  AsyncDepthScope(AsyncIoScheduler& aio, usize depth)
      : aio_(&aio), saved_(aio.depth()) {
    aio_->set_depth(depth);
  }
  ~AsyncDepthScope() { aio_->set_depth(saved_); }

  AsyncDepthScope(const AsyncDepthScope&) = delete;
  AsyncDepthScope& operator=(const AsyncDepthScope&) = delete;

 private:
  AsyncIoScheduler* aio_;
  usize saved_;
};

}  // namespace pdm
