#include "pdm/pdm_context.h"

#include "pdm/file_backend.h"
#include "pdm/memory_backend.h"

namespace pdm {

PdmContext::PdmContext(std::unique_ptr<DiskBackend> backend, CostModel cost,
                       u64 seed)
    : backend_(std::move(backend)),
      sched_(*backend_, cost),
      aio_(sched_),
      write_behind_(aio_, &budget_),
      own_alloc_(std::make_unique<DiskAllocator>(backend_->num_disks())),
      alloc_(own_alloc_.get()),
      rng_(seed) {
  sched_.attach_pipeline(&aio_);
  region_ = alloc_->open_region();
}

PdmContext::PdmContext(std::shared_ptr<DiskBackend> backend,
                       DiskAllocator& shared_alloc, usize memory_limit_bytes,
                       CostModel cost, u64 seed, SharedIoTotals* totals)
    : backend_(std::move(backend)),
      sched_(*backend_, cost),
      aio_(sched_),
      budget_(memory_limit_bytes),
      write_behind_(aio_, &budget_),
      own_alloc_(nullptr),
      alloc_(&shared_alloc),
      rng_(seed) {
  PDM_CHECK(shared_alloc.num_disks() == backend_->num_disks(),
            "shared allocator geometry does not match the backend");
  sched_.attach_pipeline(&aio_);
  if (totals != nullptr) sched_.attach_totals(totals);
  region_ = alloc_->open_region();
}

PdmContext::~PdmContext() {
  // The region's unconsumed arena tails go back to the shared free list;
  // blocks this context's runs still hold stay allocated (an output run
  // may be read after the job context is gone).
  alloc_->close_region(region_);
}

std::unique_ptr<PdmContext> make_memory_context(u32 num_disks,
                                                usize block_bytes, u64 seed) {
  return std::make_unique<PdmContext>(
      std::make_unique<MemoryDiskBackend>(num_disks, block_bytes), CostModel{},
      seed);
}

std::unique_ptr<PdmContext> make_file_context(u32 num_disks, usize block_bytes,
                                              const std::string& dir, u64 seed,
                                              bool keep_files) {
  return std::make_unique<PdmContext>(
      std::make_unique<FileDiskBackend>(num_disks, block_bytes, dir,
                                        keep_files),
      CostModel{}, seed);
}

}  // namespace pdm
