#include "pdm/pdm_context.h"

#include "pdm/file_backend.h"
#include "pdm/memory_backend.h"

namespace pdm {

PdmContext::PdmContext(std::unique_ptr<DiskBackend> backend, CostModel cost,
                       u64 seed)
    : backend_(std::move(backend)),
      sched_(*backend_, cost),
      aio_(sched_),
      write_behind_(aio_, &budget_),
      alloc_(backend_->num_disks()),
      rng_(seed) {
  sched_.attach_pipeline(&aio_);
}

std::unique_ptr<PdmContext> make_memory_context(u32 num_disks,
                                                usize block_bytes, u64 seed) {
  return std::make_unique<PdmContext>(
      std::make_unique<MemoryDiskBackend>(num_disks, block_bytes), CostModel{},
      seed);
}

std::unique_ptr<PdmContext> make_file_context(u32 num_disks, usize block_bytes,
                                              const std::string& dir, u64 seed,
                                              bool keep_files) {
  return std::make_unique<PdmContext>(
      std::make_unique<FileDiskBackend>(num_disks, block_bytes, dir,
                                        keep_files),
      CostModel{}, seed);
}

}  // namespace pdm
