#include "pdm/backend_factory.h"

#include <cstdio>

#include "pdm/file_backend.h"

namespace pdm {

BackendFactory memory_backend_factory(u32 disks_per_shard, usize block_bytes,
                                      u64 latency_us, StreamModel stream) {
  return [=](u32 /*shard*/) -> std::shared_ptr<DiskBackend> {
    auto b = std::make_shared<MemoryDiskBackend>(disks_per_shard, block_bytes);
    b->set_simulated_latency_us(latency_us);
    if (stream.enabled()) b->set_stream_model(stream);
    return b;
  };
}

BackendFactory file_backend_factory(u32 disks_per_shard, usize block_bytes,
                                    std::string base_dir, bool keep_files) {
  return [=](u32 shard) -> std::shared_ptr<DiskBackend> {
    char sub[16];
    std::snprintf(sub, sizeof sub, "/shard%03u", shard);
    return std::make_shared<FileDiskBackend>(disks_per_shard, block_bytes,
                                             base_dir + sub, keep_files);
  };
}

}  // namespace pdm
