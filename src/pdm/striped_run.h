// StripedRun: a logical sequence of records striped block-round-robin over
// the disks, the standard PDM layout (Rajasekaran [23]). Block k of a run
// that starts at disk s lives on disk (s + k) mod D, so any D consecutive
// blocks of a run — and any batch of single blocks taken from D runs with
// staggered start disks — occupy distinct disks and move in one parallel
// I/O.
//
// Physically, each disk's share of the stripe is carved from extents
// (ctx.extent_blocks() contiguous blocks at a time, inside the context's
// allocator region), so logical blocks k, k+D, k+2D, ... of a run sit at
// consecutive disk addresses: a bulk read or write of the run coalesces
// into one extent-sized syscall per disk (see IoScheduler). finish() —
// and, for runs abandoned by a cancelled or failed pass, the destructor
// — returns the unconsumed extent tails to the allocator's free list,
// so tail fragmentation is transient. Runs must not outlive their
// context (they never did; the destructor now relies on it). With ctx.extent_blocks() <= 1 the run
// falls back to legacy single-block bump allocation in the shared default
// region (the block-interleaved baseline).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "pdm/pdm_context.h"
#include "pdm/record.h"
#include "util/math_util.h"

namespace pdm {

template <Record R>
class StripedRun {
 public:
  StripedRun() = default;

  explicit StripedRun(PdmContext& ctx, u32 start_disk = 0)
      : ctx_(&ctx), start_disk_(start_disk % ctx.D()) {
    rpb_ = ctx.rpb<R>();
  }

  /// Releases unconsumed extent tails even when the run never reached
  /// finish() — a cancelled or failed pass must not strand disk space.
  ~StripedRun() {
    if (ctx_ != nullptr) release_extent_tails();
  }

  // Move-only: a copy would duplicate extent-tail ownership and the
  // destructor would return the same spans to the free list twice.
  StripedRun(StripedRun&& o) noexcept
      : ctx_(o.ctx_),
        blocks_(std::move(o.blocks_)),
        extents_(std::move(o.extents_)),
        grow_(std::move(o.grow_)),
        tail_(std::move(o.tail_)),
        size_(o.size_),
        rpb_(o.rpb_),
        start_disk_(o.start_disk_),
        finished_(o.finished_) {
    o.extents_.clear();  // moved-from source owns no tails
  }

  StripedRun& operator=(StripedRun&& o) noexcept {
    if (this != &o) {
      if (ctx_ != nullptr) release_extent_tails();
      ctx_ = o.ctx_;
      blocks_ = std::move(o.blocks_);
      extents_ = std::move(o.extents_);
      grow_ = std::move(o.grow_);
      tail_ = std::move(o.tail_);
      size_ = o.size_;
      rpb_ = o.rpb_;
      start_disk_ = o.start_disk_;
      finished_ = o.finished_;
      o.extents_.clear();
    }
    return *this;
  }

  /// Copies are metadata aliases: block refs are shared (fine — reads
  /// only), but extent-tail ownership is unique and never duplicated, so
  /// only runs with settled tails (finished, or never allocated) may be
  /// copied — copying a mid-append run would strand or double-free its
  /// tails.
  StripedRun(const StripedRun& o)
      : ctx_(o.ctx_),
        blocks_(o.blocks_),
        tail_(o.tail_),
        size_(o.size_),
        rpb_(o.rpb_),
        start_disk_(o.start_disk_),
        finished_(o.finished_) {
    PDM_ASSERT(!o.owns_tails(), "copy of a StripedRun with live extent tails");
  }

  StripedRun& operator=(const StripedRun& o) {
    if (this != &o) {
      PDM_ASSERT(!o.owns_tails(),
                 "copy of a StripedRun with live extent tails");
      if (ctx_ != nullptr) release_extent_tails();
      ctx_ = o.ctx_;
      blocks_ = o.blocks_;
      extents_.clear();
      grow_.clear();
      tail_ = o.tail_;
      size_ = o.size_;
      rpb_ = o.rpb_;
      start_disk_ = o.start_disk_;
      finished_ = o.finished_;
    }
    return *this;
  }

  PdmContext& ctx() const { return *ctx_; }
  u64 size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  usize rpb() const noexcept { return rpb_; }
  u64 num_blocks() const noexcept { return blocks_.size(); }
  u32 start_disk() const noexcept { return start_disk_; }

  BlockRef block_ref(u64 i) const {
    PDM_CHECK(i < blocks_.size(), "block index out of range");
    return blocks_[i];
  }

  /// Logical records stored in block i (the final block may be partial).
  usize records_in_block(u64 i) const {
    PDM_CHECK(i < blocks_.size(), "block index out of range");
    const u64 start = i * rpb_;
    return static_cast<usize>(std::min<u64>(rpb_, size_ - start));
  }

  /// Allocates the next block of the stripe and returns a write request for
  /// it. `src` must stay alive until the caller submits the request. Used
  /// by multi-run writers that batch blocks across runs into one parallel
  /// write. Advances the logical size by a full block.
  WriteReq stage_append_block(const R* src) {
    PDM_CHECK(tail_.empty(), "stage_append_block with buffered tail");
    PDM_CHECK(!finished_, "append after finish()");
    BlockRef ref = alloc_next_block();
    size_ += rpb_;
    return WriteReq{ref, reinterpret_cast<const std::byte*>(src)};
  }

  /// Appends records with write combining: completed blocks are held in
  /// the tail buffer until at least D of them accumulate, then written in
  /// one batched parallel operation — so even record-at-a-time appends
  /// reach full disk parallelism. Call finish() to flush. Writes go
  /// through the context's write-behind ring, so with the async pipeline
  /// enabled the caller's buffer is copied and the transfer overlaps with
  /// whatever the caller does next.
  void append(std::span<const R> recs) {
    PDM_CHECK(!finished_, "append after finish()");
    if (recs.empty()) return;
    size_ += recs.size();
    const usize flush_records = flush_blocks() * rpb_;
    // Fast path: large append with an empty tail writes directly from the
    // caller's memory without the staging copy.
    if (tail_.empty() && recs.size() >= flush_records) {
      const usize full = recs.size() / rpb_;
      std::vector<WriteReq> reqs;
      reqs.reserve(full);
      for (usize b = 0; b < full; ++b) {
        reqs.push_back(WriteReq{
            alloc_next_block(),
            reinterpret_cast<const std::byte*>(recs.data() + b * rpb_)});
      }
      ctx_->write_batch(reqs);
      tail_.assign(recs.begin() + static_cast<std::ptrdiff_t>(full * rpb_),
                   recs.end());
      return;
    }
    tail_.insert(tail_.end(), recs.begin(), recs.end());
    if (tail_.size() >= flush_records) flush_full_blocks();
  }

  /// Flushes any buffered blocks plus a zero-padded partial tail block
  /// (the logical size excludes the padding), and recycles unconsumed
  /// extent tails to the allocator. Idempotent.
  void finish() {
    if (finished_) return;
    if (tail_.size() >= rpb_) flush_full_blocks();
    finished_ = true;
    if (!tail_.empty()) {
      tail_.resize(rpb_, R{});
      WriteReq req{alloc_next_block(),
                   reinterpret_cast<const std::byte*>(tail_.data())};
      ctx_->write_batch(std::span<const WriteReq>(&req, 1));
      tail_.clear();
    }
    release_extent_tails();
  }

  /// Reverses the block order in place — pure metadata, no I/O. Used by
  /// up/down run formation: a descending run is written with the records
  /// of each block reversed, then the block list is flipped here, which
  /// yields an ascending run. Requires a finished run of whole blocks
  /// (a partial tail block would land in the middle of the record order).
  /// The stripe then walks the disks downward, which is still D-distinct
  /// per D consecutive blocks, so batched reads keep full parallelism.
  void reverse_blocks() {
    PDM_CHECK(finished_, "reverse_blocks before finish()");
    PDM_CHECK(size_ % rpb_ == 0,
              "reverse_blocks requires whole blocks (no partial tail)");
    std::reverse(blocks_.begin(), blocks_.end());
    if (!blocks_.empty()) start_disk_ = blocks_.front().disk;
  }

  /// Read request for block i into caller memory (rpb records of space).
  ReadReq read_req(u64 i, R* dst) const {
    return ReadReq{block_ref(i), reinterpret_cast<std::byte*>(dst)};
  }

  /// Reads `count` consecutive blocks starting at `first` into dst (which
  /// must hold count*rpb records) with one batched parallel read.
  void read_blocks(u64 first, u64 count, R* dst) const {
    ctx_->aio().wait(read_blocks_async(first, count, dst));
  }

  /// Asynchronous variant: stages the batch and returns its completion
  /// ticket (0 when the pipeline is disabled and the read already
  /// happened). dst must stay alive until the ticket completes.
  IoTicket read_blocks_async(u64 first, u64 count, R* dst) const {
    PDM_CHECK(first + count <= blocks_.size(), "read_blocks out of range");
    std::vector<ReadReq> reqs;
    reqs.reserve(static_cast<usize>(count));
    for (u64 b = 0; b < count; ++b) {
      reqs.push_back(read_req(first + b, dst + b * rpb_));
    }
    return ctx_->aio().read_async(reqs);
  }

  /// Reads the entire run (convenience for tests; counts I/O normally).
  std::vector<R> read_all() const {
    PDM_CHECK(tail_.empty(), "read_all before finish(): tail not flushed");
    std::vector<R> out(blocks_.size() * rpb_);
    if (!blocks_.empty()) read_blocks(0, blocks_.size(), out.data());
    out.resize(static_cast<usize>(size_));
    return out;
  }

 private:
  usize flush_blocks() const { return std::max<usize>(1, ctx_->D()); }

  void flush_full_blocks() {
    const usize full = tail_.size() / rpb_;
    if (full == 0) return;
    std::vector<WriteReq> reqs;
    reqs.reserve(full);
    for (usize b = 0; b < full; ++b) {
      reqs.push_back(WriteReq{
          alloc_next_block(),
          reinterpret_cast<const std::byte*>(tail_.data() + b * rpb_)});
    }
    ctx_->write_batch(reqs);
    tail_.erase(tail_.begin(),
                tail_.begin() + static_cast<std::ptrdiff_t>(full * rpb_));
  }

  BlockRef alloc_next_block() {
    const u32 disk =
        static_cast<u32>((start_disk_ + blocks_.size()) % ctx_->D());
    const usize eb = ctx_->extent_blocks();
    if (eb <= 1) {
      // Legacy path: single blocks, region selection via the context's
      // one implementation of the convention — concurrent runs
      // interleave block-by-block, nothing coalesces.
      BlockRef ref = ctx_->alloc_block(disk);
      blocks_.push_back(ref);
      return ref;
    }
    if (extents_.empty()) {
      extents_.assign(ctx_->D(), Extent{});
      grow_.assign(ctx_->D(), kInitialExtentBlocks);
    }
    Extent& cur = extents_[disk];
    if (cur.count == 0) {
      // Adaptive sizing: short runs (an unshuffle part may own a single
      // block per disk) waste at most a few tail blocks, long runs ramp
      // up to the context's full extent size within a few refills.
      const u64 want = std::min<u64>(eb, grow_[disk]);
      grow_[disk] = static_cast<u32>(std::min<u64>(eb, u64{grow_[disk]} * 2));
      cur = ctx_->alloc().alloc_extent(disk, want, ctx_->alloc_region());
    }
    BlockRef ref{disk, cur.index};
    ++cur.index;
    --cur.count;
    blocks_.push_back(ref);
    return ref;
  }

  bool owns_tails() const {
    for (const Extent& e : extents_) {
      if (e.count > 0) return true;
    }
    return false;
  }

  void release_extent_tails() {
    for (Extent& e : extents_) {
      if (e.count > 0) {
        ctx_->alloc().free_extent(e, ctx_->alloc_region());
        e.count = 0;
      }
    }
  }

  static constexpr u32 kInitialExtentBlocks = 4;

  PdmContext* ctx_ = nullptr;
  std::vector<BlockRef> blocks_;
  std::vector<Extent> extents_;  // per-disk unconsumed allocation tail
  std::vector<u32> grow_;        // per-disk next extent size (doubling)
  std::vector<R> tail_;
  u64 size_ = 0;
  usize rpb_ = 0;
  u32 start_disk_ = 0;
  bool finished_ = false;
};

/// Writes in-memory data as a striped run. Used to stage experiment inputs;
/// callers that do not want the staging I/O charged to the algorithm should
/// reset the context stats afterwards.
template <Record R>
StripedRun<R> write_input_run(PdmContext& ctx, std::span<const R> data,
                              u32 start_disk = 0) {
  StripedRun<R> run(ctx, start_disk);
  run.append(data);
  run.finish();
  return run;
}

}  // namespace pdm
