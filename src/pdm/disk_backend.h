// Abstract storage backend for the simulated disk array.
//
// Implementations: MemoryDiskBackend (default; per-disk byte arrays) and
// FileDiskBackend (one OS file per disk with I/O issued concurrently from a
// thread pool). The IoScheduler guarantees that each batch passed here
// contains at most one request per disk — i.e. a batch IS one parallel
// I/O. A request may span `count` physically contiguous blocks (an
// extent): backends execute it as one transfer — a single syscall on the
// file backend, one positioning charge plus `count` sequential transfers
// under the memory backend's StreamModel.
#pragma once

#include <span>

#include "pdm/block.h"
#include "util/common.h"

namespace pdm {

class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  virtual u32 num_disks() const noexcept = 0;
  virtual usize block_bytes() const noexcept = 0;

  /// Executes one parallel read (<= 1 request per disk, enforced upstream).
  virtual void read_batch(std::span<const ReadReq> reqs) = 0;

  /// Executes one parallel write (<= 1 request per disk).
  virtual void write_batch(std::span<const WriteReq> reqs) = 0;

  /// Current size of a disk in blocks (written high-water mark).
  virtual u64 disk_blocks(u32 disk) const = 0;
};

}  // namespace pdm
