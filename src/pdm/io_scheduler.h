// Groups arbitrary block-request vectors into parallel I/O operations.
//
// Batching rule: requests are queued per disk in arrival order; round t
// executes the t-th request of every non-empty queue. Thus one call with
// `n` requests costs max_d(load on disk d) parallel operations — an
// algorithm only achieves one-op-per-D-blocks if its *layout* spreads each
// batch evenly over the disks. This is exactly the accounting the paper
// uses when it credits oblivious algorithms with guaranteed parallelism.
//
// Accounting and execution are split so that the asynchronous pipeline
// (async_io.h) can charge a batch at submission time — in submission
// order, with exactly the same round arithmetic — while deferring the
// actual backend transfers to its per-disk worker queues. When a pipeline
// is attached and enabled, read()/write() route through it so that every
// legacy synchronous call site still observes the pipeline's per-disk FIFO
// order (a read issued after a buffered write of the same block sees the
// new data).
#pragma once

#include <span>

#include "pdm/disk_backend.h"
#include "pdm/io_stats.h"

namespace pdm {

class AsyncIoScheduler;

class IoScheduler {
 public:
  explicit IoScheduler(DiskBackend& backend, CostModel cost = {});

  /// Executes all reads; returns the number of parallel operations used.
  u64 read(std::span<const ReadReq> reqs);

  /// Executes all writes; returns the number of parallel operations used.
  u64 write(std::span<const WriteReq> reqs);

  /// Stats-only halves of read()/write(): charge the batch exactly as the
  /// synchronous path would (request hashes in submission order, rounds =
  /// max per-disk load) without touching the backend. Used by the async
  /// pipeline; calling them and then executing the same requests in any
  /// per-disk FIFO order yields byte- and stats-identical results.
  u64 account_read(std::span<const ReadReq> reqs);
  u64 account_write(std::span<const WriteReq> reqs);

  IoStats& stats() noexcept { return stats_; }
  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(backend_->num_disks()); }

  const CostModel& cost() const noexcept { return cost_; }
  void set_cost(CostModel c) { cost_ = c; }

  DiskBackend& backend() noexcept { return *backend_; }

  /// Wires the asynchronous pipeline in front of this scheduler. Owned by
  /// PdmContext; read()/write() delegate to it while it is enabled.
  void attach_pipeline(AsyncIoScheduler* pipeline) { pipeline_ = pipeline; }
  AsyncIoScheduler* pipeline() const noexcept { return pipeline_; }

  /// Wires a shared aggregate: every accounting charge is mirrored into
  /// `totals` (thread-safely) at the same submission points, so a service
  /// holding one aggregate over many job schedulers sees per-job stats sum
  /// exactly to its totals. Not owned; must outlive this scheduler.
  void attach_totals(SharedIoTotals* totals) { totals_ = totals; }

 private:
  DiskBackend* backend_;
  CostModel cost_;
  IoStats stats_;
  AsyncIoScheduler* pipeline_ = nullptr;
  SharedIoTotals* totals_ = nullptr;
};

}  // namespace pdm
