// Groups arbitrary block-request vectors into parallel I/O operations.
//
// Batching rule: requests are queued per disk in arrival order; round t
// executes the t-th request of every non-empty queue. Thus one call with
// `n` requests costs max_d(load on disk d) parallel operations — an
// algorithm only achieves one-op-per-D-blocks if its *layout* spreads each
// batch evenly over the disks. This is exactly the accounting the paper
// uses when it credits oblivious algorithms with guaranteed parallelism.
#pragma once

#include <span>

#include "pdm/disk_backend.h"
#include "pdm/io_stats.h"

namespace pdm {

class IoScheduler {
 public:
  explicit IoScheduler(DiskBackend& backend, CostModel cost = {});

  /// Executes all reads; returns the number of parallel operations used.
  u64 read(std::span<const ReadReq> reqs);

  /// Executes all writes; returns the number of parallel operations used.
  u64 write(std::span<const WriteReq> reqs);

  IoStats& stats() noexcept { return stats_; }
  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(backend_->num_disks()); }

  const CostModel& cost() const noexcept { return cost_; }
  void set_cost(CostModel c) { cost_ = c; }

  DiskBackend& backend() noexcept { return *backend_; }

 private:
  DiskBackend* backend_;
  CostModel cost_;
  IoStats stats_;
};

}  // namespace pdm
