// Groups arbitrary block-request vectors into parallel I/O operations.
//
// Batching rule: requests are queued per disk in arrival order; round t
// executes the t-th request of every non-empty queue. Thus one call with
// requests totalling `n` blocks costs max_d(blocks bound for disk d)
// parallel operations — an algorithm only achieves one-op-per-D-blocks if
// its *layout* spreads each batch evenly over the disks. This is exactly
// the accounting the paper uses when it credits oblivious algorithms with
// guaranteed parallelism, and it is deliberately block-granular: the
// extent coalescing below changes how many backend requests (syscalls)
// move those blocks, never how many paper ops they cost.
//
// Extent coalescing: before execution, adjacent same-disk requests of a
// batch whose block indices are physically contiguous and whose buffers
// sit at a uniform stride merge into one multi-block request — one
// pread/pwrite (or preadv/pwritev) on the file backend, one seek plus
// `count` sequential transfers under the memory backend's StreamModel.
// IoStats keeps both books exact: read_ops/write_ops and per-disk block
// counts from the raw batch (pass counts, schedule hash), read_calls/
// write_calls and per-disk call counts from the coalesced batch
// (coalesced_ratio = blocks per syscall). set_coalescing(false) restores
// the block-at-a-time path bit-for-bit (the bench baseline).
//
// Accounting and execution are split so that the asynchronous pipeline
// (async_io.h) can charge a batch at submission time — in submission
// order, with exactly the same round arithmetic — while deferring the
// actual backend transfers to its per-disk worker queues. When a pipeline
// is attached and enabled, read()/write() route through it so that every
// legacy synchronous call site still observes the pipeline's per-disk FIFO
// order (a read issued after a buffered write of the same block sees the
// new data).
#pragma once

#include <span>
#include <vector>

#include "pdm/disk_backend.h"
#include "pdm/io_stats.h"

namespace pdm {

class AsyncIoScheduler;

class IoScheduler {
 public:
  /// Longest span one coalesced request may cover (preadv/pwritev build at
  /// most this many iovecs; IOV_MAX is the OS bound).
  static constexpr u64 kMaxCoalesceBlocks = 1024;

  explicit IoScheduler(DiskBackend& backend, CostModel cost = {});

  /// Executes all reads; returns the number of parallel operations used.
  u64 read(std::span<const ReadReq> reqs);

  /// Executes all writes; returns the number of parallel operations used.
  u64 write(std::span<const WriteReq> reqs);

  /// Stats-only halves of read()/write(): charge the batch exactly as the
  /// synchronous path would (request hashes in submission order, rounds =
  /// max per-disk block load) without touching the backend, and leave the
  /// coalesced batch in last_coalesced_reads()/writes() (valid until the
  /// next account call). Used by the async pipeline; calling them and then
  /// executing the coalesced requests in any per-disk FIFO order yields
  /// byte- and stats-identical results.
  u64 account_read(std::span<const ReadReq> reqs);
  u64 account_write(std::span<const WriteReq> reqs);

  /// The coalesced form of the last account_read()/account_write() batch.
  std::span<const ReadReq> last_coalesced_reads() const { return co_reads_; }
  std::span<const WriteReq> last_coalesced_writes() const {
    return co_writes_;
  }

  /// Toggles extent coalescing (default on). Off = every request reaches
  /// the backend block-at-a-time, exactly the pre-extent behaviour; ops,
  /// blocks and hashes are identical either way, only calls differ.
  void set_coalescing(bool on) { coalescing_ = on; }
  bool coalescing() const noexcept { return coalescing_; }

  IoStats& stats() noexcept { return stats_; }
  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(backend_->num_disks()); }

  const CostModel& cost() const noexcept { return cost_; }
  void set_cost(CostModel c) { cost_ = c; }

  DiskBackend& backend() noexcept { return *backend_; }

  /// Wires the asynchronous pipeline in front of this scheduler. Owned by
  /// PdmContext; read()/write() delegate to it while it is enabled.
  void attach_pipeline(AsyncIoScheduler* pipeline) { pipeline_ = pipeline; }
  AsyncIoScheduler* pipeline() const noexcept { return pipeline_; }

  /// Wires a shared aggregate: every accounting charge is mirrored into
  /// `totals` (thread-safely) at the same submission points, so a service
  /// holding one aggregate over many job schedulers sees per-job stats sum
  /// exactly to its totals. Not owned; must outlive this scheduler.
  void attach_totals(SharedIoTotals* totals) { totals_ = totals; }

 private:
  DiskBackend* backend_;
  CostModel cost_;
  IoStats stats_;
  AsyncIoScheduler* pipeline_ = nullptr;
  SharedIoTotals* totals_ = nullptr;
  bool coalescing_ = true;
  std::vector<ReadReq> co_reads_;    // coalesced form of the last batch
  std::vector<WriteReq> co_writes_;
  u64 co_read_rounds_ = 0;   // rounds of the coalesced batch (execution)
  u64 co_write_rounds_ = 0;
};

}  // namespace pdm
