#include "pdm/disk_allocator.h"

#include <algorithm>
#include <bit>

namespace pdm {

namespace {

// Size octave of a span: bucket b holds counts in [2^b, 2^(b+1)).
u32 size_bucket(u64 count) {
  return static_cast<u32>(std::bit_width(count)) - 1;
}

}  // namespace

DiskAllocator::DiskAllocator(u32 num_disks)
    : num_disks_(num_disks),
      next_(num_disks, 0),
      free_(num_disks),
      free_by_size_(num_disks) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
}

DiskAllocator::FreeList::iterator DiskAllocator::fl_add_locked(u32 disk,
                                                               u64 index,
                                                               u64 count) {
  auto [it, inserted] = free_[disk].emplace(index, count);
  PDM_ASSERT(inserted, "free-list span already present");
  free_by_size_[disk][size_bucket(count)].insert(index);
  return it;
}

void DiskAllocator::fl_remove_locked(u32 disk, FreeList::iterator it) {
  auto& buckets = free_by_size_[disk];
  auto bit = buckets.find(size_bucket(it->second));
  PDM_ASSERT(bit != buckets.end() && bit->second.erase(it->first) == 1,
             "free-list span missing from its size bucket");
  if (bit->second.empty()) buckets.erase(bit);
  free_[disk].erase(it);
}

Extent DiskAllocator::take_span_locked(u32 disk, u64 want) {
  auto& fl = free_[disk];
  auto& buckets = free_by_size_[disk];
  auto take = [&](FreeList::iterator it) {
    Extent e{disk, it->first, want};
    const u64 rest = it->second - want;
    const u64 rest_at = it->first + want;
    fl_remove_locked(disk, it);
    if (rest > 0) fl_add_locked(disk, rest_at, rest);
    return e;
  };
  // Same-octave spans may still be smaller than `want`; scan a bounded
  // number of candidates (kMaxFreeScan, the old first-fit cap) before
  // moving up.
  const u32 b = size_bucket(want);
  if (auto bit = buckets.find(b); bit != buckets.end()) {
    usize scanned = 0;
    for (u64 index : bit->second) {
      if (scanned++ >= kMaxFreeScan) break;
      auto it = fl.find(index);
      if (it->second >= want) return take(it);
    }
  }
  // Any span in a higher octave is a guaranteed fit: take the lowest
  // address from the smallest such bucket. This is what keeps a big free
  // span reusable behind arbitrarily many small fragments.
  for (auto bit = buckets.upper_bound(b); bit != buckets.end(); ++bit) {
    if (!bit->second.empty()) return take(fl.find(*bit->second.begin()));
  }
  Extent e{disk, next_[disk], want};
  next_[disk] += want;
  return e;
}

void DiskAllocator::insert_free_locked(u32 disk, u64 index, u64 count) {
  if (count == 0) return;
  auto& fl = free_[disk];
  auto next = fl.lower_bound(index);
  // Merge with the predecessor span if it ends exactly at `index`.
  if (next != fl.begin()) {
    auto prev = std::prev(next);
    PDM_ASSERT(prev->first + prev->second <= index, "double free of extent");
    if (prev->first + prev->second == index) {
      index = prev->first;
      count += prev->second;
      fl_remove_locked(disk, prev);
    }
  }
  // Merge with the successor span if it starts exactly at the new end.
  if (next != fl.end()) {
    PDM_ASSERT(index + count <= next->first, "double free of extent");
    if (next->first == index + count) {
      count += next->second;
      fl_remove_locked(disk, next);
    }
  }
  fl_add_locked(disk, index, count);
}

BlockRef DiskAllocator::alloc(u32 disk, u32 region) {
  const Extent e = alloc_extent(disk, 1, region);
  return BlockRef{e.disk, e.index};
}

BlockRef DiskAllocator::alloc_contiguous(u32 disk, u64 count) {
  const Extent e = alloc_extent(disk, count, 0);
  return BlockRef{e.disk, e.index};
}

Extent DiskAllocator::alloc_extent(u32 disk, u64 count, u32 region) {
  PDM_CHECK(disk < num_disks_, "alloc: disk out of range");
  PDM_CHECK(count > 0, "alloc: empty extent");
  std::lock_guard g(mu_);
  if (region == 0) {
    default_live_ += count;
    return take_span_locked(disk, count);
  }
  auto it = regions_.find(region);
  PDM_CHECK(it != regions_.end(), "alloc: unknown or closed region");
  Region& r = it->second;
  Extent& arena = r.arena[disk];
  if (arena.count < count) {
    // Refill: recycle the old tail (too small for this request), then
    // carve a fresh arena chunk big enough for it.
    insert_free_locked(disk, arena.index, arena.count);
    arena = take_span_locked(disk, std::max(count, r.arena_blocks));
  }
  Extent e{disk, arena.index, count};
  arena.index += count;
  arena.count -= count;
  r.live += count;
  return e;
}

void DiskAllocator::free_extent(const Extent& e, u32 region) {
  if (e.count == 0) return;
  PDM_CHECK(e.disk < num_disks_, "free: disk out of range");
  std::lock_guard g(mu_);
  insert_free_locked(e.disk, e.index, e.count);
  if (region == 0) {
    PDM_ASSERT(default_live_ >= e.count, "free: more freed than allocated");
    default_live_ -= e.count;
  } else if (auto it = regions_.find(region); it != regions_.end()) {
    PDM_ASSERT(it->second.live >= e.count,
               "free: more freed than the region allocated");
    it->second.live -= e.count;
  }
}

u32 DiskAllocator::open_region(u64 arena_blocks) {
  std::lock_guard g(mu_);
  const u32 id = next_region_++;
  Region r;
  if (arena_blocks > 0) r.arena_blocks = arena_blocks;
  r.arena.assign(num_disks_, Extent{});
  for (u32 d = 0; d < num_disks_; ++d) r.arena[d].disk = d;
  regions_.emplace(id, std::move(r));
  return id;
}

void DiskAllocator::close_region(u32 region) {
  std::lock_guard g(mu_);
  auto it = regions_.find(region);
  if (it == regions_.end()) return;
  for (const Extent& arena : it->second.arena) {
    insert_free_locked(arena.disk, arena.index, arena.count);
  }
  regions_.erase(it);
}

u64 DiskAllocator::used(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "used: disk out of range");
  std::lock_guard g(mu_);
  return next_[disk];
}

u64 DiskAllocator::total_used() const {
  std::lock_guard g(mu_);
  u64 t = 0;
  for (u64 n : next_) t += n;
  return t;
}

u64 DiskAllocator::used_by(u32 region) const {
  std::lock_guard g(mu_);
  if (region == 0) return default_live_;
  auto it = regions_.find(region);
  return it == regions_.end() ? 0 : it->second.live;
}

u64 DiskAllocator::free_blocks(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "free_blocks: disk out of range");
  std::lock_guard g(mu_);
  u64 t = 0;
  for (const auto& [idx, cnt] : free_[disk]) t += cnt;
  return t;
}

usize DiskAllocator::open_regions() const {
  std::lock_guard g(mu_);
  return regions_.size();
}

void DiskAllocator::reset() {
  std::lock_guard g(mu_);
  PDM_ASSERT(regions_.empty(),
             "DiskAllocator::reset with open regions: live job contexts "
             "still hold reservations");
  for (auto& n : next_) n = 0;
  for (auto& fl : free_) fl.clear();
  for (auto& b : free_by_size_) b.clear();
  default_live_ = 0;
}

}  // namespace pdm
