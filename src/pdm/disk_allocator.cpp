#include "pdm/disk_allocator.h"

namespace pdm {

DiskAllocator::DiskAllocator(u32 num_disks)
    : num_disks_(num_disks), next_(num_disks, 0) {
  PDM_CHECK(num_disks > 0, "need at least one disk");
}

BlockRef DiskAllocator::alloc(u32 disk) {
  PDM_CHECK(disk < num_disks_, "alloc: disk out of range");
  std::lock_guard g(mu_);
  return BlockRef{disk, next_[disk]++};
}

BlockRef DiskAllocator::alloc_contiguous(u32 disk, u64 count) {
  PDM_CHECK(disk < num_disks_, "alloc: disk out of range");
  std::lock_guard g(mu_);
  BlockRef first{disk, next_[disk]};
  next_[disk] += count;
  return first;
}

u64 DiskAllocator::used(u32 disk) const {
  PDM_CHECK(disk < num_disks_, "used: disk out of range");
  std::lock_guard g(mu_);
  return next_[disk];
}

u64 DiskAllocator::total_used() const {
  std::lock_guard g(mu_);
  u64 t = 0;
  for (u64 n : next_) t += n;
  return t;
}

void DiskAllocator::reset() {
  std::lock_guard g(mu_);
  for (auto& n : next_) n = 0;
}

}  // namespace pdm
