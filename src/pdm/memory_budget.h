// Internal-memory accounting. The PDM gives an algorithm M records of
// memory; real implementations need a small constant multiple for staging
// buffers. Every sorter acquires its working buffers through a
// MemoryBudget, the report records the peak, and DESIGN.md documents the
// per-algorithm slack constant that the tests then enforce.
//
// The budget is thread-safe: the sort service carves per-job budgets out
// of a service-wide one, so reservations (admission control) and working
// allocations race across worker threads. try_acquire is the non-throwing
// admission primitive; acquire keeps the throwing contract sorters rely
// on (exceeding a per-job carve is a bug in the slack constant, not a
// schedulable condition).
#pragma once

#include <limits>
#include <mutex>
#include <span>

#include "util/common.h"

namespace pdm {

class MemoryBudget {
 public:
  explicit MemoryBudget(usize limit_bytes = std::numeric_limits<usize>::max())
      : limit_(limit_bytes) {}

  void set_limit(usize bytes) {
    std::lock_guard g(mu_);
    limit_ = bytes;
  }
  usize limit() const noexcept {
    std::lock_guard g(mu_);
    return limit_;
  }

  /// Registers an allocation; throws pdm::Error if the limit is exceeded.
  void acquire(usize bytes);

  /// Registers an allocation iff it fits; never throws. The admission
  /// primitive: a reservation that fails leaves the budget untouched.
  bool try_acquire(usize bytes) noexcept;

  void release(usize bytes) noexcept;

  usize current() const noexcept {
    std::lock_guard g(mu_);
    return current_;
  }
  usize peak() const noexcept {
    std::lock_guard g(mu_);
    return peak_;
  }
  void reset_peak() {
    std::lock_guard g(mu_);
    peak_ = current_;
  }

 private:
  mutable std::mutex mu_;
  usize limit_;
  usize current_ = 0;
  usize peak_ = 0;
};

/// RAII owner of a budget-tracked contiguous buffer of trivially copyable
/// records. Move-only.
template <class T>
class TrackedBuffer {
 public:
  TrackedBuffer() = default;

  TrackedBuffer(MemoryBudget& budget, usize count)
      : budget_(&budget), data_(nullptr), size_(count) {
    budget_->acquire(bytes());
    data_ = new T[count]();
  }

  ~TrackedBuffer() { destroy(); }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

  TrackedBuffer(TrackedBuffer&& o) noexcept
      : budget_(o.budget_), data_(o.data_), size_(o.size_) {
    o.budget_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }

  TrackedBuffer& operator=(TrackedBuffer&& o) noexcept {
    if (this != &o) {
      destroy();
      budget_ = o.budget_;
      data_ = o.data_;
      size_ = o.size_;
      o.budget_ = nullptr;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  usize size() const noexcept { return size_; }
  usize bytes() const noexcept { return size_ * sizeof(T); }
  T& operator[](usize i) { return data_[i]; }
  const T& operator[](usize i) const { return data_[i]; }
  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }

 private:
  void destroy() {
    if (data_ != nullptr) {
      delete[] data_;
      budget_->release(bytes());
      data_ = nullptr;
    }
  }

  MemoryBudget* budget_ = nullptr;
  T* data_ = nullptr;
  usize size_ = 0;
};

}  // namespace pdm
