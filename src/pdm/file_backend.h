// File-backed disk array: one file per simulated disk, I/O issued with
// pread/pwrite concurrently from the global thread pool so a parallel I/O
// operation really does hit all D "disks" at once. Extent requests
// (count > 1) execute as a single pread/pwrite when the buffer is
// contiguous and as preadv/pwritev scatter/gather when the per-block
// buffers sit at a uniform stride — one syscall per extent either way.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "pdm/disk_backend.h"

namespace pdm {

class FileDiskBackend final : public DiskBackend {
 public:
  /// Creates (or truncates) `num_disks` files named disk000.bin.. in `dir`.
  /// The directory is created if missing; files are removed on destruction
  /// unless keep_files is true.
  FileDiskBackend(u32 num_disks, usize block_bytes, std::string dir,
                  bool keep_files = false);
  ~FileDiskBackend() override;

  FileDiskBackend(const FileDiskBackend&) = delete;
  FileDiskBackend& operator=(const FileDiskBackend&) = delete;

  u32 num_disks() const noexcept override { return num_disks_; }
  usize block_bytes() const noexcept override { return block_bytes_; }

  void read_batch(std::span<const ReadReq> reqs) override;
  void write_batch(std::span<const WriteReq> reqs) override;
  u64 disk_blocks(u32 disk) const override;

 private:
  void exec_read(const ReadReq& r) const;
  void exec_write(const WriteReq& w) const;

  u32 num_disks_;
  usize block_bytes_;
  std::string dir_;
  bool keep_files_;
  std::vector<int> fds_;
  // pread/pwrite are intrinsically thread-safe; only the high-water marks
  // need guarding when concurrent job contexts share the backend.
  mutable std::mutex marks_mu_;
  std::vector<u64> blocks_written_;  // high-water mark per disk
};

}  // namespace pdm
