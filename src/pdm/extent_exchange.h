// Extent-grained run export: moving a finished run's records off a
// shard's disks and into caller memory for cross-shard exchange.
//
// A distributed sort ends with one sorted run per shard; gluing them into
// one output means every range crosses the shard boundary exactly once.
// The transfer must not regress to block-at-a-time I/O: a StripedRun's
// blocks were carved from extent-sized contiguous spans per disk
// (DiskAllocator::alloc_extent), so a batch of D * extent_blocks
// consecutive block reads presents each disk with one contiguous span the
// IoScheduler coalesces into a single preadv-style vectored transfer (one
// seek per disk per batch instead of one per block — see IoScheduler's
// extent coalescing and bench_e17).
//
// export_run below chunks the run into such batches. The chunk size also
// bounds the request-vector footprint: a multi-GB run never materializes
// one ReadReq per block at once, only per chunk, while the destination
// span (owned by the caller) receives records in run order.
#pragma once

#include <span>
#include <vector>

#include "pdm/striped_run.h"

namespace pdm {

/// Blocks per export batch for `run`'s context: one allocation extent per
/// disk, the largest span the scheduler can merge into one vectored op.
template <Record R>
u64 exchange_span_blocks(const StripedRun<R>& run) {
  const usize per_disk = std::max<usize>(usize{1}, run.ctx().extent_blocks());
  return static_cast<u64>(per_disk) * run.ctx().D();
}

/// Reads the whole finished run into `dst` (size run.size()), batching
/// `span_blocks` blocks per I/O round (0 = one extent per disk, see
/// exchange_span_blocks). The final partial block's padding is read into
/// scratch and discarded, so dst needs exactly run.size() records.
template <Record R>
void export_run(const StripedRun<R>& run, std::span<R> dst,
                u64 span_blocks = 0) {
  PDM_CHECK(dst.size() == run.size(), "export_run: dst size mismatch");
  if (run.size() == 0) return;
  const u64 rpb = run.ctx().template rpb<R>();
  if (span_blocks == 0) span_blocks = exchange_span_blocks(run);
  const u64 nb = run.num_blocks();
  const u64 full = dst.size() / rpb;  // blocks that land directly in dst
  for (u64 first = 0; first < full; first += span_blocks) {
    const u64 count = std::min(span_blocks, full - first);
    run.read_blocks(first, count, dst.data() + first * rpb);
  }
  if (full < nb) {
    // Tail block: padded to rpb on disk, truncated to size() here.
    std::vector<R> scratch(rpb);
    run.read_blocks(full, 1, scratch.data());
    const u64 rest = dst.size() - full * rpb;
    std::copy(scratch.begin(),
              scratch.begin() + static_cast<std::ptrdiff_t>(rest),
              dst.begin() + static_cast<std::ptrdiff_t>(full * rpb));
  }
}

/// Convenience overload allocating the destination.
template <Record R>
std::vector<R> export_run(const StripedRun<R>& run, u64 span_blocks = 0) {
  std::vector<R> out(static_cast<usize>(run.size()));
  export_run<R>(run, std::span<R>(out), span_blocks);
  return out;
}

}  // namespace pdm
