// (l, m)-merge — the merge phase of Rajasekaran's LMM sort [23], the
// engine behind ThreePass2 (§4), SevenPass (§6.1) and the deterministic
// fallback of the expected-pass algorithms.
//
// Given l sorted runs of length L each:
//   pass A: unshuffle each run stride-m into m parts (each part is itself
//           sorted, being a decimation of a sorted sequence);
//   pass B: for each j, merge part j of all runs into Q_j (each group has
//           l*(L/m) <= M records, so it merges entirely in memory);
//   pass C: shuffle Q_1..Q_m and clean up — by the LMM dirty-sequence
//           lemma every record is then within l*m of its sorted position,
//           so the streamed window cleanup with chunk >= l*m finishes it.
// Total: 3 passes. When the caller already holds unshuffled parts (because
// run formation folded pass A into its write), lmm_merge_from_parts does
// passes B and C only.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "internal/loser_tree.h"
#include "primitives/cleanup.h"
#include "primitives/run_formation.h"

namespace pdm {

struct LmmOptions {
  u64 mem_records = 0;  // M
  u64 m = 0;            // 0 = choose automatically
  ThreadPool* pool = nullptr;
};

namespace detail {

/// Picks the unshuffle arity m: the smallest value with m | L, B | L/m,
/// group size l*(L/m) <= M, dirty bound l*m <= cleanup chunk <= M.
inline u64 choose_lmm_m(u64 l, u64 run_len, u64 mem, u64 rpb) {
  for (u64 m = std::max<u64>(1, ceil_div(l * run_len, mem));
       m * rpb <= mem && m <= run_len; ++m) {
    if (run_len % m != 0) continue;
    const u64 p = run_len / m;
    if (p % rpb != 0) continue;
    if (l * p > mem) continue;
    const u64 chunk = round_down(mem, m * rpb);
    if (chunk == 0 || l * m > chunk) continue;
    return m;
  }
  fail("lmm_merge: no feasible m for l=" + std::to_string(l) +
       " L=" + std::to_string(run_len) + " M=" + std::to_string(mem));
}

/// In-memory k-way merge of l sorted segments of part_len records laid out
/// contiguously in `group`, writing the merged sequence to `out`.
template <Record R, class Cmp>
void merge_segments(const R* group, usize l, u64 part_len, R* out, Cmp cmp) {
  LoserTree<R, Cmp> tree(l, cmp);
  std::vector<u64> pos(l, 0);
  for (usize i = 0; i < l; ++i) {
    tree.set_initial(i, group[i * part_len]);
    pos[i] = 1;
  }
  tree.build();
  usize o = 0;
  while (!tree.empty()) {
    const usize src = tree.min_source();
    out[o++] = tree.min_value();
    if (pos[src] < part_len) {
      tree.replace_min(group[src * part_len + pos[src]++]);
    } else {
      tree.exhaust_min();
    }
  }
}

}  // namespace detail

/// Passes B + C over pre-unshuffled parts: parts[i][j] = part j of run i,
/// all of length part_len (a multiple of B). Emits the fully merged
/// sequence of l*m*part_len records into the sink. Returns the cleanup
/// outcome (ok == false would indicate the deterministic dirty bound was
/// violated — a library bug, asserted upstream).
template <Record R, class Cmp = std::less<R>>
CleanupOutcome lmm_merge_from_parts(PdmContext& ctx,
                                    const FormedRuns<R>& parts, Sink<R>& sink,
                                    const LmmOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const usize l = parts.size();
  PDM_CHECK(l > 0, "no runs");
  const usize m = parts[0].size();
  const u64 part_len = parts[0][0].size();
  PDM_CHECK(part_len % rpb == 0, "part length must be block aligned");
  PDM_CHECK(l * part_len <= mem, "merge group does not fit in memory");
  for (const auto& p : parts) {
    PDM_CHECK(p.size() == m, "ragged part matrix");
  }

  // Pass B: several groups share one memory load whenever a group is
  // smaller than M, so both the batched read and the batched write stay
  // D-wide even when l*part_len << M (e.g. few runs on many disks).
  trace::TraceSpan trace_span("pass", "lmm_group_merge", "groups", m);
  std::vector<StripedRun<R>> q;
  q.reserve(m);
  for (usize j = 0; j < m; ++j) {
    q.emplace_back(ctx, static_cast<u32>(j % ctx.D()));
  }
  {
    const u64 group_sz = l * part_len;
    const usize groups_per_load =
        static_cast<usize>(std::max<u64>(1, mem / group_sz));
    TrackedBuffer<R> buf(ctx.budget(),
                         groups_per_load * static_cast<usize>(group_sz));
    TrackedBuffer<R> merged(ctx.budget(), buf.size());
    // Groups are batched in a *strided* order (j = r, r+S, r+2S, ...):
    // part (i, j) starts on disk (i+j) mod D, so a batch of consecutive
    // groups would pile onto a triangular disk profile; stride-S batches
    // spread i + j uniformly.
    const usize stride = ceil_div(m, groups_per_load);
    for (usize r = 0; r < stride; ++r) {
      ctx.check_cancelled();
      std::vector<usize> batch;
      for (usize j = r; j < m; j += stride) batch.push_back(j);
      if (batch.empty()) continue;
      std::vector<ReadReq> rreqs;
      rreqs.reserve(batch.size() * l * static_cast<usize>(part_len / rpb));
      for (usize g = 0; g < batch.size(); ++g) {
        for (usize i = 0; i < l; ++i) {
          for (u64 b = 0; b < part_len / rpb; ++b) {
            rreqs.push_back(parts[i][batch[g]].read_req(
                b, buf.data() + g * group_sz + i * part_len + b * rpb));
          }
        }
      }
      ctx.io().read(rreqs);
      // Merge the batch's groups across the kernel budget — each group
      // writes a disjoint slice of `merged`, so any budget produces the
      // same bytes — then stage the write batch serially in the original
      // group order (the request sequence the schedule hash pins).
      ctx.cpu_pool().run_chunks(batch.size(), [&](usize g) {
        detail::merge_segments<R, Cmp>(buf.data() + g * group_sz, l, part_len,
                                       merged.data() + g * group_sz, cmp);
      });
      std::vector<WriteReq> wreqs;
      wreqs.reserve(batch.size() * static_cast<usize>(group_sz / rpb));
      for (usize g = 0; g < batch.size(); ++g) {
        R* out = merged.data() + g * group_sz;
        for (u64 b = 0; b < group_sz / rpb; ++b) {
          wreqs.push_back(q[batch[g]].stage_append_block(out + b * rpb));
        }
      }
      ctx.io().write(wreqs);
    }
    for (auto& qj : q) qj.finish();
  }
  trace_span.end();

  // Pass C: shuffle + window cleanup; dirty length <= l*m.
  const u64 chunk = round_down(mem, static_cast<u64>(m) * rpb);
  PDM_CHECK(chunk >= static_cast<u64>(l) * m,
            "cleanup chunk below the l*m dirty bound");
  ShuffleChunkSource<R> source(ctx, std::span<const StripedRun<R>>(q), chunk);
  CleanupOptions copt;
  copt.chunk_records = chunk;
  copt.abort_on_violation = false;
  copt.pool = opt.pool;
  return streamed_cleanup<R>(ctx, source, sink, copt, cmp);
}

/// Full 3-pass (l, m)-merge of l sorted runs of equal, block-aligned
/// length. Used as the deterministic fallback when an expected-pass
/// algorithm detects a displacement violation.
template <Record R, class Cmp = std::less<R>>
CleanupOutcome lmm_merge(PdmContext& ctx, std::span<const StripedRun<R>> runs,
                         Sink<R>& sink, const LmmOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const usize l = runs.size();
  PDM_CHECK(l > 0, "no runs");
  const u64 run_len = runs[0].size();
  for (const auto& r : runs) {
    PDM_CHECK(r.size() == run_len, "lmm_merge requires equal-length runs");
  }
  if (l == 1) {
    // Degenerate: stream-copy (one pass).
    TrackedBuffer<R> buf(ctx.budget(), static_cast<usize>(
                                           std::min<u64>(mem, run_len)));
    const u64 blocks_per_load = buf.size() / rpb;
    for (u64 b = 0; b < runs[0].num_blocks(); b += blocks_per_load) {
      const u64 nb = std::min<u64>(blocks_per_load, runs[0].num_blocks() - b);
      runs[0].read_blocks(b, nb, buf.data());
      const u64 first_rec = b * rpb;
      const u64 nrec = std::min<u64>(nb * rpb, run_len - first_rec);
      sink.push(std::span<const R>(buf.data(), static_cast<usize>(nrec)));
    }
    sink.close();
    return CleanupOutcome{true, run_len, 0};
  }
  const u64 m = opt.m != 0 ? opt.m
                           : detail::choose_lmm_m(l, run_len, mem, rpb);
  PDM_CHECK(run_len % m == 0 && (run_len / m) % rpb == 0,
            "invalid m for lmm_merge");
  const u64 p_len = run_len / m;

  // Pass A: unshuffle every run into m parts, streaming in loads that are
  // multiples of m*B so each part receives whole blocks per load. Short
  // runs are batched several-per-load so the parallel reads still spread
  // over all disks (otherwise sub-D batches would inflate the pass count).
  const u64 load_sz = round_down(mem, m * rpb);
  PDM_CHECK(load_sz > 0, "memory too small for unshuffle load");
  trace::TraceSpan trace_span("pass", "lmm_unshuffle", "runs", l);
  FormedRuns<R> parts(l);
  for (usize i = 0; i < l; ++i) {
    parts[i].reserve(static_cast<usize>(m));
    for (u64 j = 0; j < m; ++j) {
      parts[i].emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
    }
  }
  {
    TrackedBuffer<R> load(ctx.budget(), static_cast<usize>(load_sz));
    TrackedBuffer<R> scatter(ctx.budget(), static_cast<usize>(load_sz));
    auto unshuffle_and_stage = [&](usize run, u64 g, const R* src, R* dst,
                                   std::vector<WriteReq>& reqs) {
      const u64 per_part = g / m;
      // Per-part gathers target disjoint slices of dst: kernel-budget
      // parallel, byte-identical at any budget.
      ctx.cpu_pool().run_chunks(static_cast<usize>(m), [&](usize j) {
        R* d = dst + j * per_part;
        for (u64 t = 0; t < per_part; ++t) d[t] = src[t * m + j];
      });
      // Part-major staging (see run_formation.h): each part's blocks are
      // consecutive in the batch, so per disk they form extent-contiguous
      // spans the scheduler coalesces; per-disk load is unchanged.
      for (u64 j = 0; j < m; ++j) {
        for (u64 b = 0; b < per_part / rpb; ++b) {
          reqs.push_back(parts[run][static_cast<usize>(j)].stage_append_block(
              dst + j * per_part + b * rpb));
        }
      }
    };
    if (run_len <= load_sz) {
      const u64 runs_per_load = std::max<u64>(1, load_sz / run_len);
      for (usize i0 = 0; i0 < l; i0 += runs_per_load) {
        const usize cnt =
            static_cast<usize>(std::min<u64>(runs_per_load, l - i0));
        std::vector<ReadReq> rreqs;
        rreqs.reserve(cnt * static_cast<usize>(run_len / rpb));
        for (usize c = 0; c < cnt; ++c) {
          for (u64 b = 0; b < run_len / rpb; ++b) {
            rreqs.push_back(
                runs[i0 + c].read_req(b, load.data() + c * run_len + b * rpb));
          }
        }
        ctx.io().read(rreqs);
        std::vector<WriteReq> wreqs;
        wreqs.reserve(cnt * static_cast<usize>(run_len / rpb));
        for (usize c = 0; c < cnt; ++c) {
          unshuffle_and_stage(i0 + c, run_len, load.data() + c * run_len,
                              scatter.data() + c * run_len, wreqs);
        }
        ctx.io().write(wreqs);
      }
    } else {
      for (usize i = 0; i < l; ++i) {
        for (u64 t0 = 0; t0 < run_len; t0 += load_sz) {
          const u64 g = std::min<u64>(load_sz, run_len - t0);
          runs[i].read_blocks(t0 / rpb, g / rpb, load.data());
          std::vector<WriteReq> reqs;
          reqs.reserve(static_cast<usize>(g / rpb));
          unshuffle_and_stage(i, g, load.data(), scatter.data(), reqs);
          ctx.io().write(reqs);
        }
      }
    }
    for (auto& run_parts : parts) {
      for (auto& part : run_parts) part.finish();
    }
  }
  trace_span.end();

  LmmOptions bopt = opt;
  bopt.m = m;
  PDM_CHECK(l * p_len <= mem, "lmm group too large");
  return lmm_merge_from_parts<R>(ctx, parts, sink, bopt, cmp);
}

}  // namespace pdm
