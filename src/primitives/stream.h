// Streaming abstractions shared by the out-of-core passes.
//
// A ChunkSource delivers the next chunk of records of a pass's input
// (reading whole blocks with batched parallel I/O); a Sink receives the
// pass's sorted output stream. Concrete sources: ShuffleChunkSource (reads
// round-robin from m striped runs — the "shuffle" of LMM sort without the
// physical interleave, which the subsequent window sort makes redundant)
// and MatrixBandSource (reads row-bands of a BlockMatrix, for the mesh
// algorithm). Concrete sinks: RunSink (plain striped output) and
// UnshuffleSink (splits the stream stride-m into m part-runs, the
// "unshuffle folded into the write" trick of §6.1 step 2).
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "pdm/block_matrix.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "pdm/striped_run.h"
#include "util/math_util.h"

namespace pdm {

template <Record R>
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Fills dst with the next chunk; returns the number of valid records
  /// (0 when exhausted). `capacity` is the size of dst in records and must
  /// be at least chunk_records().
  virtual usize next_chunk(R* dst, usize capacity) = 0;

  /// Nominal records per chunk (the final chunk may be smaller).
  virtual usize chunk_records() const = 0;

  virtual bool exhausted() const = 0;

  /// Total records this source will deliver.
  virtual u64 total_records() const = 0;
};

template <Record R>
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void push(std::span<const R> recs) = 0;
  virtual void close() = 0;
};

/// Reads one logical stripe of blocks per chunk from each of m runs:
/// chunk t consists of blocks [t*k, (t+1)*k) of every run, where
/// k = chunk_records / (m * B). Sorting each chunk afterwards makes the
/// physical shuffle order irrelevant, so blocks are delivered run-major.
template <Record R>
class ShuffleChunkSource final : public ChunkSource<R> {
 public:
  ShuffleChunkSource(PdmContext& ctx, std::span<const StripedRun<R>> runs,
                     u64 chunk_records)
      : ctx_(&ctx), runs_(runs), rpb_(ctx.rpb<R>()) {
    PDM_CHECK(!runs.empty(), "no runs to shuffle");
    const u64 m = runs.size();
    PDM_CHECK(chunk_records % (m * rpb_) == 0,
              "chunk must be a multiple of m*B records");
    blocks_per_run_ = chunk_records / (m * rpb_);
    chunk_records_ = static_cast<usize>(chunk_records);
    cursors_.assign(runs.size(), 0);
    for (const auto& r : runs_) total_ += r.size();
  }

  usize chunk_records() const override { return chunk_records_; }
  u64 total_records() const override { return total_; }
  bool exhausted() const override {
    // With the prefetch ring active the cursors run ahead of consumption:
    // the source is only dry once the ring is, too.
    if (ring_ != nullptr && !ring_->empty()) return false;
    return cursors_done();
  }

  usize next_chunk(R* dst, usize capacity) override {
    PDM_CHECK(capacity >= chunk_records_, "chunk capacity too small");
    // Once the ring exists, stay on the prefetched path even if the
    // pipeline is disabled mid-stream: the cursors have run ahead of
    // consumption, and only the ring knows about the staged chunk.
    if (ctx_->aio().enabled() || ring_ != nullptr) {
      return next_chunk_prefetched(dst);
    }
    std::vector<ReadReq> reqs;
    std::vector<usize> valid;  // records per staged block, in order
    if (!stage_next(dst, reqs, valid)) return 0;
    ctx_->io().read(reqs);
    // Compact away padding from partial tail blocks.
    usize out = 0;
    for (usize i = 0; i < valid.size(); ++i) {
      if (out != i * rpb_ && valid[i] > 0) {
        std::memmove(dst + out, dst + i * rpb_, valid[i] * sizeof(R));
      }
      out += valid[i];
    }
    return out;
  }

 private:
  bool cursors_done() const {
    for (usize j = 0; j < runs_.size(); ++j) {
      if (cursors_[j] < runs_[j].num_blocks()) return false;
    }
    return true;
  }

  /// Builds the next chunk's request list reading into `base` and advances
  /// the cursors; identical batch composition whether or not the reads are
  /// then executed synchronously or prefetched.
  bool stage_next(R* base, std::vector<ReadReq>& reqs,
                  std::vector<usize>& valid) {
    reqs.clear();
    valid.clear();
    usize pos = 0;
    for (usize j = 0; j < runs_.size(); ++j) {
      const auto& run = runs_[j];
      for (u64 b = 0; b < blocks_per_run_; ++b) {
        if (cursors_[j] >= run.num_blocks()) break;
        reqs.push_back(run.read_req(cursors_[j], base + pos));
        valid.push_back(run.records_in_block(cursors_[j]));
        pos += rpb_;
        ++cursors_[j];
      }
    }
    return !reqs.empty();
  }

  /// Prefetched path. One slab suffices for full double buffering: the
  /// compaction copy moves the chunk out of the slab before the next read
  /// is staged into it, so chunk t+1 streams in while the caller
  /// sorts/cleans chunk t. Keeping exactly one chunk in flight also
  /// bounds the cost of speculation: if the consumer aborts (cleanup
  /// violation -> fallback), at most one chunk of reads was charged to
  /// IoStats that a synchronous run would not have issued.
  usize next_chunk_prefetched(R* dst) {
    if (ring_ == nullptr) {
      ring_ = std::make_unique<ReadAheadRing<R>>(
          ctx_->aio(), ctx_->budget(), chunk_records_, /*depth=*/1);
    }
    std::vector<ReadReq> reqs;
    std::vector<usize> valid;
    if (!ring_->full() && stage_next(ring_->stage(), reqs, valid)) {
      ring_->push(reqs, std::move(valid));
      valid = {};
    }
    if (ring_->empty()) return 0;
    const auto view = ring_->front();
    usize out = 0;
    const auto& v = *view.valid;
    for (usize i = 0; i < v.size(); ++i) {
      if (v[i] > 0) {
        std::memcpy(dst + out, view.data + i * rpb_, v[i] * sizeof(R));
      }
      out += v[i];
    }
    ring_->pop();
    if (stage_next(ring_->stage(), reqs, valid)) {
      ring_->push(reqs, std::move(valid));
    }
    return out;
  }

  PdmContext* ctx_;
  std::span<const StripedRun<R>> runs_;
  usize rpb_;
  u64 blocks_per_run_ = 0;
  usize chunk_records_ = 0;
  std::vector<u64> cursors_;
  u64 total_ = 0;
  std::unique_ptr<ReadAheadRing<R>> ring_;
};

/// Delivers the row-bands of a BlockMatrix: chunk k = block-row k (the k-th
/// band of the mesh, all columns). The in-chunk order is column-segment
/// major, which is fine because the consumer sorts each window anyway.
template <Record R>
class MatrixBandSource final : public ChunkSource<R> {
 public:
  explicit MatrixBandSource(BlockMatrix<R>& mat) : mat_(&mat) {}

  usize chunk_records() const override {
    return static_cast<usize>(mat_->block_cols() * mat_->rpb());
  }
  u64 total_records() const override { return mat_->records(); }
  bool exhausted() const override { return next_row_ >= mat_->block_rows(); }

  usize next_chunk(R* dst, usize capacity) override {
    if (exhausted()) return 0;
    PDM_CHECK(capacity >= chunk_records(), "chunk capacity too small");
    mat_->read_block_row(next_row_, dst);
    ++next_row_;
    return chunk_records();
  }

 private:
  BlockMatrix<R>* mat_;
  u64 next_row_ = 0;
};

/// Plain striped-run sink.
template <Record R>
class RunSink final : public Sink<R> {
 public:
  explicit RunSink(StripedRun<R>& run) : run_(&run) {}

  void push(std::span<const R> recs) override { run_->append(recs); }
  void close() override { run_->finish(); }

 private:
  StripedRun<R>* run_;
};

/// Splits the incoming sorted stream stride-m into m part-runs: record t
/// goes to part (t mod m). Blocks of all m parts fill in lockstep, so the
/// sink flushes m blocks in one parallel write — the unshuffle costs no
/// extra pass, exactly as the paper folds §6.1 step 2 into step 1.
template <Record R>
class UnshuffleSink final : public Sink<R> {
 public:
  UnshuffleSink(PdmContext& ctx, std::span<StripedRun<R>> parts)
      : ctx_(&ctx),
        parts_(parts),
        rpb_(ctx.rpb<R>()),
        staging_(ctx.budget(), parts.size() * ctx.rpb<R>()),
        fill_(parts.size(), 0) {}

  void push(std::span<const R> recs) override {
    const usize m = parts_.size();
    for (const auto& r : recs) {
      const usize part = static_cast<usize>(t_ % m);
      staging_[part * rpb_ + fill_[part]] = r;
      ++fill_[part];
      ++t_;
      if (part == m - 1 && fill_[part] == rpb_) flush_full();
    }
  }

  void close() override {
    // Flush any partial part buffers (only happens when the total stream
    // length is not a multiple of m*B).
    for (usize p = 0; p < parts_.size(); ++p) {
      if (fill_[p] > 0) {
        parts_[p].append(std::span<const R>(&staging_[p * rpb_], fill_[p]));
        fill_[p] = 0;
      }
      parts_[p].finish();
    }
  }

 private:
  void flush_full() {
    std::vector<WriteReq> reqs;
    reqs.reserve(parts_.size());
    for (usize p = 0; p < parts_.size(); ++p) {
      PDM_ASSERT(fill_[p] == rpb_, "unshuffle staging out of lockstep");
      reqs.push_back(parts_[p].stage_append_block(&staging_[p * rpb_]));
      fill_[p] = 0;
    }
    ctx_->write_batch(reqs);
  }

  PdmContext* ctx_;
  std::span<StripedRun<R>> parts_;
  usize rpb_;
  TrackedBuffer<R> staging_;
  std::vector<usize> fill_;
  u64 t_ = 0;
};

/// Sink adapter that counts records and forwards (for tests/telemetry).
template <Record R>
class CountingSink final : public Sink<R> {
 public:
  explicit CountingSink(Sink<R>& inner) : inner_(&inner) {}
  void push(std::span<const R> recs) override {
    count_ += recs.size();
    inner_->push(recs);
  }
  void close() override { inner_->close(); }
  u64 count() const { return count_; }

 private:
  Sink<R>* inner_;
  u64 count_ = 0;
};

}  // namespace pdm
