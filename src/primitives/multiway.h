// Forecasting multiway merge: the merge pass of a Dementiev–Sanders /
// STXXL-style external mergesort, used as the paper's implicit baseline.
//
// Unlike the oblivious LMM passes, the order in which a k-way merge
// consumes blocks depends on the data, so parallel-disk utilization is a
// matter of *forecasting* (Knuth 5.4.9): the next block needed from disk is
// the one belonging to the run whose loaded tail has the smallest last
// key. With a lookahead pool and batched refills the expected utilization
// approaches D; with no lookahead every refill is a synchronous single-
// block I/O and utilization collapses to ~1. bench_e12_parallelism
// measures exactly this contrast, which is the paper's §1 motivation for
// oblivious algorithms.
//
// Extent note: the merge's reads are data-dependent single blocks into
// data-dependent slab slots, so they rarely coalesce (neither the disk
// indices nor the buffer strides line up) — forecasting quality, not
// transfer size, is this pass's lever. Its *output* still benefits: the
// sink appends sequentially through StripedRun, whose extent-backed
// blocks flush as coalesced extent writes.
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "internal/loser_tree.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "primitives/stream.h"
#include "util/trace.h"

namespace pdm {

struct MergePassOptions {
  u64 mem_records = 0;    // memory cap for buffers
  usize lookahead = 1;    // prefetched blocks per run beyond the current one
                          // (0 = naive demand paging)
  usize refill_batch = 0;  // blocks fetched per forecast batch; 0 = D
};

/// Merges `runs` (each sorted) into `sink`. One pass over the data; the
/// number of parallel reads it takes depends on forecasting quality.
template <Record R, class Cmp = std::less<R>>
void multiway_merge_pass(PdmContext& ctx,
                         std::span<const StripedRun<R>> runs, Sink<R>& sink,
                         const MergePassOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const usize k = runs.size();
  PDM_CHECK(k > 0, "no runs to merge");
  trace::TraceSpan trace_span("pass", "merge_pass", "fan_in", k);
  const usize slots = k * (1 + opt.lookahead);
  PDM_CHECK(static_cast<u64>(slots + ctx.D()) * rpb <= opt.mem_records,
            "merge buffers exceed memory (reduce fan-in or lookahead)");
  // Batch size for forecast refills: capped by the fan-in (at most one
  // pending block per run per batch) so small merges still refill in
  // batches instead of waiting for D free slots that can never accumulate.
  const usize refill_batch =
      std::min<usize>(k, opt.refill_batch != 0 ? opt.refill_batch : ctx.D());

  TrackedBuffer<R> slab(ctx.budget(), slots * rpb);
  PipelineDrainGuard drain_guard(ctx.aio());  // after the slab it guards
  std::vector<usize> free_slots(slots);
  for (usize i = 0; i < slots; ++i) free_slots[i] = i;

  struct Loaded {
    usize slot;
    usize valid;
    usize pos = 0;
    IoTicket ticket = 0;  // completion of the block's (async) fetch
  };
  struct RunState {
    std::deque<Loaded> queue;
    u64 next_block = 0;   // next block index to fetch
    bool fetch_pending = false;
  };
  std::vector<RunState> st(k);

  // Fetches go through the async pipeline: the batch is charged at
  // submission (same parallel-op accounting as the synchronous path) and
  // each fetched block carries the batch's completion ticket, waited for
  // lazily on first access — so the merge loop overlaps with the reads.
  auto fetch_batch = [&](const std::vector<usize>& which) {
    std::vector<ReadReq> reqs;
    reqs.reserve(which.size());
    std::vector<usize> fetched;
    fetched.reserve(which.size());
    for (usize r : which) {
      PDM_ASSERT(!free_slots.empty(), "no free merge slots");
      const usize slot = free_slots.back();
      free_slots.pop_back();
      const u64 b = st[r].next_block++;
      reqs.push_back(runs[r].read_req(b, slab.data() + slot * rpb));
      st[r].queue.push_back(Loaded{slot, runs[r].records_in_block(b)});
      st[r].fetch_pending = false;
      fetched.push_back(r);
    }
    const IoTicket t = ctx.aio().read_async(reqs);
    for (usize r : fetched) st[r].queue.back().ticket = t;
  };

  auto ensure_loaded = [&](Loaded& l) {
    if (l.ticket != 0) {
      ctx.aio().wait(l.ticket);
      l.ticket = 0;
    }
  };

  // Forecast key of run r = last record of its last loaded block; the run
  // with the smallest tail key will need its next block first.
  auto pick_refills = [&](usize max_count) {
    std::vector<usize> cand;
    for (usize r = 0; r < k; ++r) {
      if (st[r].next_block < runs[r].num_blocks() &&
          st[r].queue.size() <= opt.lookahead) {
        cand.push_back(r);
        // The comparator below reads the tail key of the last loaded
        // block, so that block's fetch must have landed.
        if (!st[r].queue.empty()) ensure_loaded(st[r].queue.back());
      }
    }
    std::sort(cand.begin(), cand.end(), [&](usize a, usize b) {
      const auto& qa = st[a].queue;
      const auto& qb = st[b].queue;
      if (qa.empty() != qb.empty()) return qa.empty();  // starving run first
      if (qa.empty()) return a < b;
      const R& ta = slab[qa.back().slot * rpb + qa.back().valid - 1];
      const R& tb = slab[qb.back().slot * rpb + qb.back().valid - 1];
      if (cmp(ta, tb)) return true;
      if (cmp(tb, ta)) return false;
      return a < b;
    });
    if (cand.size() > max_count) cand.resize(max_count);
    return cand;
  };

  // Initial load: first block of every non-empty run, one batch.
  {
    std::vector<usize> init;
    for (usize r = 0; r < k; ++r) {
      if (runs[r].num_blocks() > 0) init.push_back(r);
    }
    fetch_batch(init);
    if (opt.lookahead > 0) {
      auto more = pick_refills(free_slots.size());
      if (!more.empty()) fetch_batch(more);
    }
  }

  auto head = [&](usize r) -> const R& {
    Loaded& l = st[r].queue.front();
    ensure_loaded(l);
    return slab[l.slot * rpb + l.pos];
  };

  LoserTree<R, Cmp> tree(k, cmp);
  for (usize r = 0; r < k; ++r) {
    if (!st[r].queue.empty()) tree.set_initial(r, head(r));
  }
  tree.build();

  TrackedBuffer<R> emit(ctx.budget(), static_cast<usize>(ctx.D()) * rpb);
  usize emitted = 0;

  auto advance = [&](usize r) -> bool {  // true if run r still has a head
    RunState& s = st[r];
    Loaded& cur = s.queue.front();
    if (++cur.pos < cur.valid) return true;
    free_slots.push_back(cur.slot);
    s.queue.pop_front();
    if (s.queue.empty()) {
      if (s.next_block < runs[r].num_blocks()) {
        // Forecast miss: synchronous single-block fetch (1 parallel I/O
        // moving 1 block — the utilization penalty the bench measures).
        fetch_batch({r});
      } else {
        return false;
      }
    }
    return true;
  };

  u64 since_refill = 0;
  while (!tree.empty()) {
    const usize r = tree.min_source();
    emit[emitted++] = tree.min_value();
    if (emitted == emit.size()) {
      ctx.check_cancelled();
      sink.push(std::span<const R>(emit.data(), emitted));
      emitted = 0;
    }
    if (advance(r)) {
      tree.replace_min(head(r));
    } else {
      tree.exhaust_min();
    }
    // Periodic batched refill driven by forecasting.
    if (opt.lookahead > 0 && ++since_refill >= rpb) {
      since_refill = 0;
      if (free_slots.size() >= refill_batch) {
        auto which = pick_refills(refill_batch);
        if (which.size() >= refill_batch / 2 || !which.empty()) {
          fetch_batch(which);
        }
      }
    }
  }
  if (emitted > 0) sink.push(std::span<const R>(emit.data(), emitted));
  sink.close();
}

}  // namespace pdm
