// Sorted-run formation: one pass that reads memory-loads of the input,
// sorts them, and writes them back as striped runs — optionally unshuffled
// on the way out (each sorted run split stride-m into m part-runs), which
// is how ThreePass2 folds LMM's unshuffle step into the run-formation pass
// (paper §4, step 2: "this unshuffling can be combined with the initial
// runs formation task").
#pragma once

#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "internal/insort.h"
#include "internal/replacement_selection.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "pdm/striped_run.h"
#include "util/math_util.h"
#include "util/trace.h"

namespace pdm {

/// How runs are formed. kFixed is the legacy default: load M records, sort
/// in core, write one run — byte-identical layout and I/O schedule to every
/// prior release. The adaptive modes select through the loser tree and
/// emit variable-length runs (run_len becomes the heap size): expected 2M
/// on random input, a single run on (nearly) sorted input; kUpDown
/// alternates ascending/descending selection (Bender et al.,
/// 2-competitive), which additionally collapses reverse-sorted input.
enum class RunFormationMode {
  kFixed,
  kReplacementSelection,
  kUpDown,
};

inline const char* run_formation_mode_name(RunFormationMode m) {
  switch (m) {
    case RunFormationMode::kFixed: return "fixed";
    case RunFormationMode::kReplacementSelection: return "replacement";
    case RunFormationMode::kUpDown: return "updown";
  }
  return "?";
}

struct RunFormationOptions {
  u64 run_len = 0;          // records per run (<= M, multiple of B)
  u32 unshuffle_parts = 1;  // m; run_len must be a multiple of m*B when m>1
  u64 first_record = 0;     // block-aligned start of the input range
  u64 num_records = 0;      // 0 = to the end of the input
  ThreadPool* pool = nullptr;         // parallel internal sort
  bool parallel_scratch = false;      // allocate scratch for the pool path
  RunFormationMode mode = RunFormationMode::kFixed;  // adaptive modes: m == 1
};

/// parts[i][j] = part j of sorted run i (stride-m decimation, itself
/// sorted). With unshuffle_parts == 1 each inner vector has one entry: the
/// whole sorted run. Part (i, j) starts on disk (i + j) mod D so that the
/// later group-merge pass, which reads part j of every run together,
/// touches all disks.
template <Record R>
using FormedRuns = std::vector<std::vector<StripedRun<R>>>;

/// Start-disk stride for flat (unsplit) runs: run i starts on disk
/// (i * stride) mod D. Coprime to D, so the map is a bijection for every
/// D — D/2+1 alone is even for D = 6 or 10 (colliding start disks), and
/// odd is still not enough for D = 15 (gcd(9, 15) = 3). For power-of-two
/// D the value is unchanged from D/2+1, preserving historical layouts.
/// Exposed so adversarial generators can target the layout.
inline u32 flat_run_start_stride(u32 num_disks) {
  if (num_disks < 4) return 1;
  u32 s = (num_disks / 2 + 1) | 1;
  while (std::gcd(s, num_disks) != 1) s += 2;
  return s;
}

template <Record R, class Cmp = std::less<R>>
FormedRuns<R> form_sorted_runs(PdmContext& ctx, const StripedRun<R>& input,
                               const RunFormationOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 run_len = opt.run_len;
  const u32 m = opt.unshuffle_parts;
  PDM_CHECK(run_len > 0 && run_len % rpb == 0,
            "run_len must be a positive multiple of B");
  if (m > 1) {
    PDM_CHECK(run_len % (static_cast<u64>(m) * rpb) == 0,
              "run_len must be a multiple of m*B for unshuffled output");
  }
  PDM_CHECK(opt.first_record % rpb == 0, "range start must be block aligned");
  PDM_CHECK(opt.first_record <= input.size(), "range start out of bounds");
  const u64 n = opt.num_records == 0 ? input.size() - opt.first_record
                                     : opt.num_records;
  PDM_CHECK(opt.first_record + n <= input.size(), "range end out of bounds");
  PDM_CHECK(n > 0, "empty input");
  if (opt.mode != RunFormationMode::kFixed) {
    // Order-adaptive modes emit flat variable-length runs; the unshuffled
    // (LMM) layout needs uniform run lengths, so it stays on kFixed.
    PDM_CHECK(m == 1, "adaptive run formation emits flat runs only");
    auto flat = replacement_select_runs<R>(
        ctx, input, run_len, opt.first_record, n,
        opt.mode == RunFormationMode::kUpDown, flat_run_start_stride(ctx.D()),
        cmp);
    FormedRuns<R> wrapped;
    wrapped.reserve(flat.size());
    for (auto& r : flat) wrapped.emplace_back().push_back(std::move(r));
    return wrapped;
  }
  const u64 num_runs = ceil_div(n, run_len);
  const u64 blocks_per_run = run_len / rpb;
  trace::TraceSpan trace_span("pass", "run_formation", "records", n);

  TrackedBuffer<R> load(ctx.budget(), static_cast<usize>(run_len));
  TrackedBuffer<R> scratch;
  const bool parallel = opt.pool != nullptr && opt.parallel_scratch;
  // In-core kernel budget (PdmContext::cpu_budget): when the service
  // arbiter granted >= 2 threads, sort each memory load through the
  // budgeted kernel. Scratch is only acquired on that path, so the
  // serial (budget 1) memory footprint is unchanged.
  const bool cpu_parallel = !parallel && ctx.cpu_budget() >= 2;
  if (parallel || cpu_parallel) {
    scratch = TrackedBuffer<R>(ctx.budget(), load.size());
  }
  TrackedBuffer<R> parts_buf;
  if (m > 1) parts_buf = TrackedBuffer<R>(ctx.budget(), load.size());

  // Double-buffered prefetch: while run i is sorted and written, run i+1
  // streams in. Identical read batches to the synchronous path, so IoStats
  // op counts do not change — only the wall-clock overlap does.
  const bool async = ctx.aio().enabled();
  TrackedBuffer<R> load2;
  if (async) load2 = TrackedBuffer<R>(ctx.budget(), load.size());
  PipelineDrainGuard drain_guard(ctx.aio());  // after the buffers it guards

  R* bufs[2] = {load.data(), async ? load2.data() : nullptr};
  IoTicket tickets[2] = {0, 0};
  auto blocks_of = [&](u64 i) {
    const u64 rec0 = opt.first_record + i * run_len;
    const u64 nrec = std::min<u64>(run_len, opt.first_record + n - rec0);
    return std::pair<u64, u64>{rec0 / rpb, ceil_div(nrec, rpb)};
  };
  auto issue = [&](u64 i, usize slot) {
    const auto [b0, nblocks] = blocks_of(i);
    tickets[slot] = input.read_blocks_async(b0, nblocks, bufs[slot]);
  };

  FormedRuns<R> out;
  out.reserve(static_cast<usize>(num_runs));

  usize cur = 0;
  if (async) issue(0, 0);
  for (u64 i = 0; i < num_runs; ++i) {
    ctx.check_cancelled();
    const u64 rec0 = opt.first_record + i * run_len;
    const u64 nrec = std::min<u64>(run_len, opt.first_record + n - rec0);
    R* buf;
    if (async) {
      ctx.aio().wait(tickets[cur]);
      buf = bufs[cur];
      if (i + 1 < num_runs) issue(i + 1, cur ^ 1);
    } else {
      const auto [b0, nblocks] = blocks_of(i);
      input.read_blocks(b0, nblocks, load.data());
      buf = load.data();
    }
    if (cpu_parallel) {
      internal_sort_budgeted(std::span<R>(buf, static_cast<usize>(nrec)), cmp,
                             ctx.cpu_pool(), scratch.span());
    } else {
      internal_sort(std::span<R>(buf, static_cast<usize>(nrec)), cmp,
                    parallel ? opt.pool : nullptr,
                    parallel ? scratch.span() : std::span<R>{});
    }

    std::vector<StripedRun<R>>& runs_i = out.emplace_back();
    if (m == 1) {
      // Staggered start disks: an odd stride makes i -> start_disk a
      // bijection mod D (D is a power of two in the standard geometry),
      // so a cleanup chunk that reads a few blocks from every run spreads
      // evenly even when the run count does not divide M/B.
      const u32 stride = flat_run_start_stride(ctx.D());
      runs_i.emplace_back(ctx, static_cast<u32>((i * stride) % ctx.D()));
      runs_i[0].append(std::span<const R>(buf, static_cast<usize>(nrec)));
      runs_i[0].finish();
      cur ^= 1;
      continue;
    }
    if (nrec < run_len) {
      // Ragged final run: the stride-m decimations of the sorted tail are
      // still sorted, but their lengths differ (part j holds every record
      // at source index ≡ j mod m, i.e. ceil((nrec - j) / m) records) and
      // are no longer block multiples, so the all-full-blocks staged batch
      // below cannot be used. Fall back to append()/finish(), which pads
      // each part's final block; per-part sizes record the true lengths,
      // so consumers that honor records_in_block() see no padding.
      const u64 p_len_max = ceil_div(nrec, m);
      ctx.cpu_pool().run_chunks(static_cast<usize>(m), [&](usize j) {
        R* dst = parts_buf.data() + j * p_len_max;
        u64 cnt = 0;
        for (u64 t = j; t < nrec; t += m) dst[cnt++] = buf[t];
      });
      runs_i.reserve(m);
      for (u64 j = 0; j < m; ++j) {
        runs_i.emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
        const u64 cnt = j < nrec ? ceil_div(nrec - j, m) : 0;
        runs_i.back().append(std::span<const R>(
            parts_buf.data() + j * p_len_max, static_cast<usize>(cnt)));
        runs_i.back().finish();
      }
      cur ^= 1;
      continue;
    }
    // Gather the m stride-m decimations, then write every part in one
    // batched operation: part j, block b covers part positions
    // [b*B, (b+1)*B), i.e. source indices (b*B + t)*m + j.
    const u64 p_len = run_len / m;
    // Per-part gathers write disjoint slices of parts_buf, so running
    // them across the kernel budget is byte-identical to the serial loop.
    ctx.cpu_pool().run_chunks(static_cast<usize>(m), [&](usize j) {
      R* dst = parts_buf.data() + j * p_len;
      const R* src = buf;
      for (u64 t = 0; t < p_len; ++t) dst[t] = src[t * m + j];
    });
    runs_i.reserve(m);
    std::vector<WriteReq> reqs;
    reqs.reserve(static_cast<usize>(m * (p_len / rpb)));
    for (u64 j = 0; j < m; ++j) {
      runs_i.emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
    }
    // Part-major staging: part j's blocks go out consecutively, so on
    // each disk the batch is a physically contiguous extent per part
    // (blocks b, b+D, ... of one run share an allocation extent) and the
    // scheduler coalesces it into one syscall. Per-disk load — hence the
    // parallel-op count — is identical to block-major order.
    for (u64 j = 0; j < m; ++j) {
      for (u64 b = 0; b < p_len / rpb; ++b) {
        reqs.push_back(runs_i[static_cast<usize>(j)].stage_append_block(
            parts_buf.data() + j * p_len + b * rpb));
      }
    }
    ctx.write_batch(reqs);
    for (auto& part : runs_i) part.finish();
    (void)blocks_per_run;
    cur ^= 1;
  }
  return out;
}

/// Convenience for the unshuffle_parts == 1 case: flat run list.
template <Record R, class Cmp = std::less<R>>
std::vector<StripedRun<R>> form_runs_flat(PdmContext& ctx,
                                          const StripedRun<R>& input,
                                          const RunFormationOptions& opt,
                                          Cmp cmp = {}) {
  PDM_CHECK(opt.unshuffle_parts == 1, "use form_sorted_runs for parts");
  auto formed = form_sorted_runs<R>(ctx, input, opt, cmp);
  std::vector<StripedRun<R>> flat;
  flat.reserve(formed.size());
  for (auto& f : formed) flat.push_back(std::move(f[0]));
  return flat;
}

}  // namespace pdm
