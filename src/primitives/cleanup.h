// Streamed shuffle-cleanup: the single-pass realization of Observation 4.2.
//
// The paper's cleanup of a shuffled sequence Z is: split Z into chunks
// Z_1..Z_t of d records, sort each, merge (Z_1,Z_2), (Z_3,Z_4), ... then
// (Z_2,Z_3), (Z_4,Z_5), ... — correct whenever every record of Z sits
// within d of its sorted position. The streaming equivalent implemented
// here holds a window W of two chunks: read the next chunk, sort the whole
// window, emit the lower chunk, retain the upper.
//
// Equivalence sketch: the streamed pass emits, for window p, the smallest
// d records of (retained_p ∪ Z_{p+1}); by induction retained_p contains
// every unemitted record from Z_1..Z_p. A record destined for output
// window p (final position < p*d) lies at shuffled position < (p+1)*d by
// the displacement bound, i.e. in some chunk <= p+1 — always visible by
// the time window p is emitted. The paper's two merge rounds compute the
// same multisets (adding Z_{p+2}'s elements to the second round's merge
// cannot change the lower half, since any such element that entered the
// lower half would already have been in Z_{p+1}' after round one).
//
// On-line failure detection (§5): the output windows are sorted by
// construction, so the full output is sorted iff every window's minimum is
// >= the previous window's maximum. When a violation is found the pass
// aborts and the caller falls back to a deterministic sort, exactly as
// ExpectedTwoPass prescribes.
//
// Extent note: both ends of this pass are sequential streams — the source
// reads whole chunk-spans of each input run (run-major batches, see
// ShuffleChunkSource) and the sink appends through StripedRun — so with
// extent-backed runs the whole pass moves in extent-sized transfers; the
// window sort in between never touches the disks.
#pragma once

#include <algorithm>
#include <span>

#include "internal/insort.h"
#include "pdm/memory_budget.h"
#include "primitives/stream.h"
#include "util/trace.h"

namespace pdm {

struct CleanupOutcome {
  bool ok = true;       // false => displacement bound violated, pass aborted
  u64 emitted = 0;      // records pushed to the sink before abort/finish
  u64 windows = 0;      // windows emitted
};

struct CleanupOptions {
  u64 chunk_records = 0;            // d; window is 2d
  bool abort_on_violation = true;   // expected algorithms abort; the
                                    // deterministic ones treat it as a bug
  ThreadPool* pool = nullptr;       // optional parallel window sort
  std::span<std::byte> unused{};    // reserved
};

template <Record R, class Cmp = std::less<R>>
CleanupOutcome streamed_cleanup(PdmContext& ctx, ChunkSource<R>& source,
                                Sink<R>& sink, const CleanupOptions& opt,
                                Cmp cmp = {}) {
  const usize chunk = static_cast<usize>(opt.chunk_records);
  PDM_CHECK(chunk > 0, "cleanup chunk must be positive");
  PDM_CHECK(source.chunk_records() <= chunk,
            "source chunks larger than cleanup chunk");
  trace::TraceSpan trace_span("pass", "cleanup", "chunk_records", chunk);

  TrackedBuffer<R> window(ctx.budget(), 2 * chunk);
  // Optional scratch for the parallel window sort (documented extra
  // slack): legacy pool path, or the kernel budget granted by the
  // service's CPU arbiter (serial budget-1 jobs acquire nothing extra).
  const bool cpu_parallel = opt.pool == nullptr && ctx.cpu_budget() >= 2;
  TrackedBuffer<R> scratch;
  if (opt.pool != nullptr || cpu_parallel) {
    scratch = TrackedBuffer<R>(ctx.budget(), 2 * chunk);
  }

  CleanupOutcome out;
  usize held = 0;
  R last_max{};
  bool have_last = false;

  while (!source.exhausted()) {
    ctx.check_cancelled();
    const usize got = source.next_chunk(window.data() + held, chunk);
    if (got == 0 && source.exhausted()) break;
    const usize total = held + got;
    if (cpu_parallel) {
      internal_sort_budgeted(std::span<R>(window.data(), total), cmp,
                             ctx.cpu_pool(), scratch.span());
    } else {
      internal_sort(std::span<R>(window.data(), total), cmp, opt.pool,
                    opt.pool != nullptr
                        ? std::span<R>(scratch.data(), scratch.size())
                        : std::span<R>{});
    }
    usize emit;
    if (source.exhausted()) {
      emit = total;  // final flush
    } else {
      emit = total > chunk ? total - chunk : 0;
    }
    if (emit > 0) {
      if (have_last && cmp(window[0], last_max)) {
        out.ok = false;
        if (opt.abort_on_violation) return out;
      }
      sink.push(std::span<const R>(window.data(), emit));
      out.emitted += emit;
      ++out.windows;
      last_max = window[emit - 1];
      have_last = true;
      std::copy(window.data() + emit, window.data() + total, window.data());
      held = total - emit;
    } else {
      held = total;
    }
  }
  if (held > 0) {
    // Source went dry exactly at a window boundary: flush the holdover.
    if (have_last && cmp(window[0], last_max)) {
      out.ok = false;
      if (opt.abort_on_violation) return out;
    }
    sink.push(std::span<const R>(window.data(), held));
    out.emitted += held;
    ++out.windows;
  }
  sink.close();
  return out;
}

}  // namespace pdm
