// Aggregated serving metrics: per-job records plus the queue-latency and
// throughput figures a capacity planner actually reads.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "service/sort_job.h"

namespace pdm {

struct ServiceStats {
  u64 submitted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 rejected = 0;
  u64 deadline_missed = 0;
  u64 batches_run = 0;  // worker tasks, counting a coalesced batch once

  u64 plan_cache_hits = 0;
  u64 plan_cache_misses = 0;

  double queue_p50_s = 0;  // over jobs that reached a worker
  double queue_p99_s = 0;
  double queue_max_s = 0;

  /// Completed jobs divided by the busy window (first start to last end).
  double jobs_per_sec = 0;
  double busy_window_s = 0;

  /// Peak of the service-wide budget (sum of concurrent reservations).
  usize peak_memory_bytes = 0;

  /// Live service-wide I/O totals; per-job `JobInfo::io` deltas sum to
  /// these exactly (see SharedIoTotals).
  IoStats io;

  /// One entry per submitted job, in submission order.
  std::vector<JobInfo> jobs;
};

/// q-quantile (q in [0,1]) of a sample by the nearest-rank method.
inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<usize>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

}  // namespace pdm
