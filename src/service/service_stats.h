// Aggregated serving metrics: the queue-latency and throughput figures a
// capacity planner actually reads, maintained incrementally at job
// terminal transitions (stats() is O(1) in the number of retained jobs;
// per-job snapshots are a separate jobs() call).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "service/sort_job.h"

namespace pdm {

struct ServiceStats {
  u32 shard_id = 0;

  /// Lifetime counters: these survive forget() and retention eviction
  /// (they are bumped once when a job reaches its terminal state).
  u64 submitted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 rejected = 0;
  u64 deadline_missed = 0;
  u64 batches_run = 0;  // worker tasks, counting a coalesced batch once

  /// Terminal job records currently held (inspectable via jobs()/info());
  /// evicted counts records dropped by the retention policy (not by an
  /// explicit forget()).
  u64 retained = 0;
  u64 evicted = 0;

  u64 plan_cache_hits = 0;
  u64 plan_cache_misses = 0;

  /// Wall-clock calibration of the deadline-admission estimate: EMA of
  /// observed run seconds over model-predicted seconds across completed
  /// jobs (0 = no samples yet, estimates taken at face value). >1 means
  /// the backend is slower than the CostModel believes.
  double deadline_cal = 0;

  /// Queue-latency distribution over the service's LIFETIME (every job
  /// that went kDone/kFailed), from a log-bucketed histogram: p50/p99 are
  /// within the bucket resolution (~6%), max is exact and can never be
  /// evicted by later samples.
  double queue_p50_s = 0;
  double queue_p99_s = 0;
  double queue_max_s = 0;

  /// Completed jobs divided by the busy window (first start to last end).
  double jobs_per_sec = 0;
  double busy_window_s = 0;

  /// Peak of the service-wide budget (sum of concurrent reservations).
  usize peak_memory_bytes = 0;

  /// Live service-wide I/O totals; per-job `JobInfo::io` deltas sum to
  /// these exactly (see SharedIoTotals).
  IoStats io;
};

/// Instantaneous load of one service, cheap enough to poll per placement
/// decision: what a cluster router weighs shards by.
struct ShardLoad {
  u32 shard = 0;
  usize queued = 0;          // jobs waiting for a worker
  usize running = 0;         // worker tasks in flight
  usize reserved_bytes = 0;  // admission reservations currently held
  usize budget_limit = 0;    // the shard's total memory budget
  usize depth_in_use = 0;    // granted async pipeline depth
  usize cpu_in_use = 0;      // granted kernel threads (CPU arbiter)
  usize cpu_total = 0;       // the shard's cpu_threads_total budget
  usize workers = 0;         // the shard's worker-pool size

  /// Scalar used to compare shards: in-flight work plus the reserved
  /// memory fraction, so a shard with free workers but a nearly-exhausted
  /// budget still reads as loaded.
  double score() const {
    const double mem = budget_limit == 0
                           ? 0.0
                           : static_cast<double>(reserved_bytes) /
                                 static_cast<double>(budget_limit);
    return static_cast<double>(queued + running) + mem;
  }

  /// Admission-headroom probe: could the shard start a job with this
  /// memory carve right now — a free worker AND room in the budget? The
  /// cluster hold queue parks jobs that fail this and lets shards that
  /// pass it steal them, instead of burying the job in a hot shard's
  /// local queue.
  bool fits_now(usize carve) const {
    return queued + running < workers &&
           reserved_bytes + carve <= budget_limit;
  }
};

/// q-quantile (q in [0,1]) of a sample by the nearest-rank method.
inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<usize>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

}  // namespace pdm
