// Job-facing types of the sort service: the submission spec, the job
// lifecycle states, the per-job execution environment handed to the typed
// closure, and the shared plan cache that coalesces planner work across
// jobs with the same (N, M, B, alpha) shape.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "core/adaptive.h"
#include "core/sort_report.h"
#include "pdm/pdm_context.h"

namespace pdm {

using JobId = u64;

enum class JobState {
  kQueued,     // accepted, waiting for a worker + memory reservation
  kRunning,    // executing on a worker
  kDone,       // completed; report and output callback delivered
  kFailed,     // threw (infeasible plan, I/O error, budget bug)
  kCancelled,  // cancelled while still queued
  kRejected,   // admission control: can never be staged in this service
  kMigrated,   // extracted off a draining shard; terminal HERE only — the
               // owning cluster re-admits the job elsewhere, so a shard-
               // level waiter seeing kMigrated must re-resolve placement
};

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
    case JobState::kMigrated: return "migrated";
  }
  return "?";
}

inline bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled || s == JobState::kRejected ||
         s == JobState::kMigrated;
}

/// What a tenant submits alongside its dataset.
struct SortJobSpec {
  std::string name;

  /// The M records the planner budgets this job with (required, > 0).
  /// The service carves `carve_bytes` (or mem_slack * M * record size)
  /// out of its memory budget before the job may start.
  u64 mem_records = 0;

  /// Higher priorities are admitted first; FIFO within a priority.
  int priority = 0;

  /// w.h.p. exponent for the expected-pass algorithms.
  double alpha = 1.0;

  /// Deadline in seconds from submission; 0 = none. Within a priority
  /// band the queue orders deadlined jobs first (earliest deadline first,
  /// then FIFO); misses are counted in the stats, and with
  /// ServiceConfig::deadline_admission a job whose deadline is already
  /// unmeetable under the planned pass count and queue state is rejected
  /// at submission.
  double deadline_s = 0;

  /// Explicit memory carve override in bytes; 0 derives it from
  /// mem_records and the record size via ServiceConfig::mem_slack.
  usize carve_bytes = 0;

  /// Stable routing key for cluster serving: jobs sharing a locality key
  /// (a tenant id, a dataset name) hash to the same shard under the
  /// kLocalityHash policy, so repeat tenants land where their plan-cache
  /// and page-cache state is warm. Empty = no affinity.
  std::string locality_key;

  /// Hard placement pin for cluster serving: kAnyShard (default) lets the
  /// router choose; any other value places the job on exactly that shard
  /// — it may still park in the hold queue until the shard has headroom,
  /// but it is never spilled or stolen elsewhere. A pinned job whose
  /// shard can never admit it is rejected cluster-wide; a pin whose
  /// target has been drained dissolves back to router placement. Used by
  /// Cluster::submit_distributed to keep each key range on the shard its
  /// splitter assignment chose.
  static constexpr u32 kAnyShard = 0xffffffffu;
  u32 target_shard = kAnyShard;

  /// Job-scoped causal trace id (pdm::jobtrace). 0 = unassigned: the first
  /// admission point that sees the job (cluster submit, or the service for
  /// standalone submissions) mints one. Distributed range sub-jobs carry
  /// the coordinator-minted id here plus the parent distributed job's id
  /// in parent_trace_id, so one Chrome trace reconstructs the whole causal
  /// tree by id alone.
  u64 trace_id = 0;
  u64 parent_trace_id = 0;

  /// Opt-in order-adaptive planning: before staging, the service probes
  /// the in-memory payload for presortedness (O(M) sampled comparisons,
  /// zero I/O) and hands the run-count estimate to the plan cache; a
  /// near-sorted payload then plans the one-pass order-adaptive sort.
  /// Off by default — the probe-less plan is byte-identical to history.
  bool order_adaptive = false;
};

/// Snapshot of one job for stats/introspection.
struct JobInfo {
  JobId id = 0;
  u32 shard = 0;  // ServiceConfig::shard_id of the serving shard
  std::string name;
  JobState state = JobState::kQueued;
  u64 n = 0;
  int priority = 0;
  std::string algorithm;  // planner's pick, once known
  std::string error;      // set for kFailed / kRejected
  SortReport report;      // valid when state == kDone
  IoStats io;             // whole-job I/O: staging + sort + callbacks
  double queue_s = 0;     // submit -> start (or cancel)
  double run_s = 0;       // start -> terminal (running: elapsed so far)
  bool deadline_missed = false;
  bool batched = false;   // ran coalesced with same-type small jobs
  u64 trace_id = 0;         // jobtrace id (0 if flight/trace disabled it)
  u64 parent_trace_id = 0;  // distributed parent, for range sub-jobs
};

/// Caches AdaptiveSorter decisions by shape so a fleet of jobs sharing a
/// record type (and hence B) costs one planner invocation per distinct
/// (N, M, B, alpha) instead of one per job.
class PlanCache {
 public:
  /// Full plan entry for the shape (algorithm + expected pass count); the
  /// pass count also drives deadline admission. est_runs is the probed
  /// presortedness estimate (0 = unprobed); it is part of the cache key,
  /// so probed and unprobed submissions of the same shape never alias —
  /// admission paths that pass no estimate keep hitting the legacy
  /// entries.
  PlanEntry entry(u64 n, u64 mem, u64 rpb, double alpha, u64 est_runs = 0) {
    const Key k{n, mem, rpb, alpha, est_runs};
    {
      std::lock_guard g(mu_);
      auto it = cache_.find(k);
      if (it != cache_.end()) {
        ++hits_;
        return it->second;
      }
    }
    // Planning outside the lock: choose_plan may throw (no feasible
    // plan), which must not poison the cache or the mutex.
    const PlanEntry e = choose_plan(n, mem, rpb, alpha, est_runs);
    std::lock_guard g(mu_);
    ++misses_;
    cache_.emplace(k, e);
    return e;
  }

  Algo choose(u64 n, u64 mem, u64 rpb, double alpha, u64 est_runs = 0) {
    return entry(n, mem, rpb, alpha, est_runs).algo;
  }

  /// Cache peek that never plans: the admission path uses it to tighten
  /// memory carves for shapes whose algorithm is already known without
  /// paying a planner invocation per submission. Not counted as a hit or
  /// miss (it is a lookup, not a planning request).
  std::optional<PlanEntry> try_entry(u64 n, u64 mem, u64 rpb,
                                     double alpha) const {
    std::lock_guard g(mu_);
    auto it = cache_.find(Key{n, mem, rpb, alpha, 0});
    if (it == cache_.end()) return std::nullopt;
    return it->second;
  }

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  using Key = std::tuple<u64, u64, u64, double, u64>;
  mutable std::mutex mu_;
  std::map<Key, PlanEntry> cache_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
};

/// A type-erased, not-yet-admitted sort job: everything a SortService
/// needs to admit, schedule and run it, independent of the record type.
/// Built by SortService::prepare<R>() (which stages the typed dataset and
/// comparator inside the closure); consumed by submit_prepared(). This is
/// the unit of mobility in the cluster: hold-queue parking, work stealing
/// and drain-time migration all move PreparedJobs between shards without
/// caring what R is.
struct PreparedJob {
  SortJobSpec spec;
  u64 n = 0;             // records in the dataset
  usize record_bytes = 0;
  u64 type_key = 0;      // typeid hash, for small-job batching affinity
  std::function<void(struct JobExec&)> run;
};

/// Execution environment the service hands to a job's typed closure: the
/// per-job context (budget carved, async depth granted, stats isolated),
/// the budgeted M, and the shared plan cache. The closure deposits its
/// SortReport here.
struct JobExec {
  PdmContext& ctx;
  u64 mem_records;
  double alpha;
  PlanCache& plans;
  ThreadPool* pool = nullptr;
  SortReport report;
};

}  // namespace pdm
