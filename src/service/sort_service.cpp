#include "service/sort_service.h"

#include <algorithm>
#include <chrono>

namespace pdm {

namespace {

double seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

std::shared_ptr<DiskBackend> require_backend(std::shared_ptr<DiskBackend> b) {
  PDM_CHECK(b != nullptr, "SortService needs a backend");
  return b;
}

}  // namespace

/// One submitted job. Queue-visible fields are guarded by the service
/// mutex; while kRunning the executing worker stages results in locals
/// and commits them under the mutex, so info()/stats() never race it.
struct SortService::Job {
  JobId id = 0;
  SortJobSpec spec;
  u64 n = 0;
  usize record_bytes = 0;
  u64 type_key = 0;
  usize carve_bytes = 0;
  bool batchable = false;
  std::function<void(JobExec&)> run;

  JobState state = JobState::kQueued;
  std::string algorithm;
  std::string error;
  SortReport report;
  IoStats io;
  Clock::time_point t_submit;
  Clock::time_point t_start;
  Clock::time_point t_end;
  bool deadline_missed = false;
  bool batched = false;
};

SortService::SortService(std::shared_ptr<DiskBackend> backend,
                         ServiceConfig cfg)
    : backend_(require_backend(std::move(backend))),
      cfg_(cfg),
      alloc_(backend_->num_disks()),
      budget_(cfg.total_memory_bytes),
      io_totals_(backend_->num_disks()) {
  PDM_CHECK(cfg_.workers > 0, "SortService needs at least one worker");
  PDM_CHECK(cfg_.mem_slack >= 1.0, "mem_slack below 1 cannot stage a sort");
  PDM_CHECK(cfg_.batch_max > 0, "batch_max must be positive");
  workers_.reserve(cfg_.workers);
  for (usize i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SortService::~SortService() {
  {
    std::lock_guard g(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

JobId SortService::submit_impl(SortJobSpec spec, u64 n, usize record_bytes,
                               u64 type_key,
                               std::function<void(JobExec&)> run) {
  PDM_CHECK(spec.mem_records > 0, "SortJobSpec.mem_records must be > 0");
  PDM_CHECK(n > 0, "cannot submit an empty sort job");
  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  job->n = n;
  job->record_bytes = record_bytes;
  job->type_key = type_key;
  job->carve_bytes =
      job->spec.carve_bytes != 0
          ? job->spec.carve_bytes
          : static_cast<usize>(cfg_.mem_slack *
                               static_cast<double>(job->spec.mem_records) *
                               static_cast<double>(record_bytes));
  job->run = std::move(run);
  job->t_submit = Clock::now();

  std::lock_guard g(mu_);
  PDM_CHECK(!stop_, "SortService is shutting down");
  job->id = next_id_++;
  const JobId id = job->id;
  if (job->carve_bytes > budget_.limit()) {
    // Admission control: this job can never be staged here.
    job->state = JobState::kRejected;
    job->error = "admission control: memory carve of " +
                 std::to_string(job->carve_bytes) +
                 " bytes exceeds the service budget of " +
                 std::to_string(budget_.limit());
    job->t_end = job->t_submit;
    job->run = {};  // terminal: release the dataset the closure co-owns
    jobs_.emplace(id, std::move(job));
    return id;
  }
  job->batchable =
      cfg_.small_job_records > 0 && n <= cfg_.small_job_records;
  Job* raw = job.get();
  const auto pos = std::upper_bound(
      pending_.begin(), pending_.end(), raw, [](const Job* a, const Job* b) {
        if (a->spec.priority != b->spec.priority) {
          return a->spec.priority > b->spec.priority;
        }
        return a->id < b->id;
      });
  pending_.insert(pos, raw);
  jobs_.emplace(id, std::move(job));
  work_cv_.notify_one();
  return id;
}

bool SortService::cancel(JobId id) {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state != JobState::kQueued) return false;
  job.state = JobState::kCancelled;
  job.t_end = Clock::now();
  job.run = {};  // safe: a claimed member is only run while still kQueued
  std::erase(pending_, &job);
  done_cv_.notify_all();
  return true;
}

JobInfo SortService::wait(JobId id) {
  std::unique_lock lock(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "wait: unknown job id");
  Job* job = it->second.get();
  done_cv_.wait(lock, [&] { return job_state_terminal(job->state); });
  return snapshot_locked(*job);
}

void SortService::drain() {
  std::unique_lock lock(mu_);
  done_cv_.wait(lock,
                [&] { return pending_.empty() && active_tasks_ == 0; });
}

bool SortService::forget(JobId id) {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !job_state_terminal(it->second->state)) {
    return false;
  }
  jobs_.erase(it);
  return true;
}

JobInfo SortService::info(JobId id) const {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "info: unknown job id");
  return snapshot_locked(*it->second);
}

JobInfo SortService::snapshot_locked(const Job& job) const {
  JobInfo out;
  out.id = job.id;
  out.name = job.spec.name;
  out.state = job.state;
  out.n = job.n;
  out.priority = job.spec.priority;
  out.algorithm = job.algorithm;
  out.error = job.error;
  out.report = job.report;
  out.io = job.io;
  out.deadline_missed = job.deadline_missed;
  out.batched = job.batched;
  // A job failed by run_claim's catch never started; t_start is the
  // ground truth, not the state.
  const bool started = job.t_start != Clock::time_point{};
  if (started) {
    out.queue_s = seconds(job.t_start - job.t_submit);
    if (job_state_terminal(job.state)) {
      out.run_s = seconds(job.t_end - job.t_start);
    }
  } else if (job_state_terminal(job.state)) {
    out.queue_s = seconds(job.t_end - job.t_submit);
  } else {
    out.queue_s = seconds(Clock::now() - job.t_submit);
  }
  return out;
}

ServiceStats SortService::stats() const {
  std::lock_guard g(mu_);
  ServiceStats s;
  s.submitted = jobs_.size();
  std::vector<double> queue_lat;
  for (const auto& [id, jp] : jobs_) {
    JobInfo info = snapshot_locked(*jp);
    switch (info.state) {
      case JobState::kDone: ++s.completed; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kCancelled: ++s.cancelled; break;
      case JobState::kRejected: ++s.rejected; break;
      default: break;
    }
    if (info.state == JobState::kDone || info.state == JobState::kFailed) {
      queue_lat.push_back(info.queue_s);
    }
    if (info.deadline_missed) ++s.deadline_missed;
    s.jobs.push_back(std::move(info));
  }
  if (!queue_lat.empty()) {
    s.queue_p50_s = quantile(queue_lat, 0.5);
    s.queue_p99_s = quantile(queue_lat, 0.99);
    s.queue_max_s = *std::max_element(queue_lat.begin(), queue_lat.end());
  }
  s.batches_run = batches_run_;
  s.plan_cache_hits = plans_.hits();
  s.plan_cache_misses = plans_.misses();
  s.peak_memory_bytes = budget_.peak();
  s.io = io_totals_.snapshot();
  if (s.completed > 0 && any_start_) {
    s.busy_window_s = seconds(last_end_ - first_start_);
    s.jobs_per_sec =
        static_cast<double>(s.completed) / std::max(1e-9, s.busy_window_s);
  }
  return s;
}

SortService::Claim SortService::try_claim_locked() {
  for (usize i = 0; i < pending_.size(); ++i) {
    Job* head = pending_[i];
    Claim claim;
    claim.members.push_back(head);
    claim.carve = head->carve_bytes;
    if (head->batchable) {
      for (usize k = i + 1;
           k < pending_.size() && claim.members.size() < cfg_.batch_max;
           ++k) {
        Job* other = pending_[k];
        if (other->batchable && other->type_key == head->type_key) {
          claim.members.push_back(other);
          // Members run sequentially over one context, so the batch needs
          // only the largest member's carve at any moment.
          claim.carve = std::max(claim.carve, other->carve_bytes);
        }
      }
    }
    // Backfill: if the head of the queue cannot reserve memory right now,
    // a smaller job further back may still be admittable.
    if (!budget_.try_acquire(claim.carve)) continue;
    if (claim.members.size() > 1) {
      for (Job* j : claim.members) j->batched = true;
    }
    std::erase_if(pending_, [&](Job* j) {
      return std::find(claim.members.begin(), claim.members.end(), j) !=
             claim.members.end();
    });
    return claim;
  }
  return {};
}

usize SortService::grant_depth_locked() {
  if (cfg_.io_depth_total < 2) return 0;
  const usize share =
      std::max<usize>(2, cfg_.io_depth_total / std::max<usize>(1, cfg_.workers));
  const usize avail = cfg_.io_depth_total - depth_in_use_;
  const usize depth = std::min(share, avail);
  if (depth < 2) return 0;
  depth_in_use_ += depth;
  return depth;
}

void SortService::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    Claim claim = try_claim_locked();
    if (claim.members.empty()) {
      if (stop_ && pending_.empty()) return;
      work_cv_.wait(lock);
      continue;
    }
    ++active_tasks_;
    const usize depth = grant_depth_locked();
    ++batches_run_;
    lock.unlock();

    run_claim(claim, depth);
    budget_.release(claim.carve);

    lock.lock();
    --active_tasks_;
    depth_in_use_ -= depth;
    work_cv_.notify_all();  // freed memory and depth: others may admit
    done_cv_.notify_all();
  }
}

void SortService::run_claim(Claim& claim, usize depth) {
  try {
    PdmContext ctx(backend_, alloc_, claim.carve, cfg_.cost,
                   cfg_.seed + claim.members.front()->id, &io_totals_);
    if (depth >= 2) ctx.set_async_depth(depth);
    for (Job* j : claim.members) run_one(*j, ctx);
  } catch (const std::exception& e) {
    // Context setup or teardown failed: every member that has not reached
    // a terminal state goes down with it.
    const auto now = Clock::now();
    std::lock_guard g(mu_);
    for (Job* j : claim.members) {
      if (job_state_terminal(j->state)) continue;
      j->state = JobState::kFailed;
      j->error = e.what();
      j->t_end = now;
      j->run = {};
    }
    done_cv_.notify_all();
  }
}

void SortService::run_one(Job& job, PdmContext& ctx) {
  {
    std::lock_guard g(mu_);
    if (job.state != JobState::kQueued) return;  // cancelled after claim
    job.state = JobState::kRunning;
    job.t_start = Clock::now();
    if (!any_start_ || job.t_start < first_start_) {
      first_start_ = job.t_start;
      any_start_ = true;
    }
  }
  // Bound write-behind staging to ~M bytes per slab so a bulk write of
  // the whole dataset cannot blow the job's carve; oversized batches run
  // as ordered synchronous writes instead (stats-identical).
  ctx.write_behind().set_max_slab_bytes(
      std::max<usize>(static_cast<usize>(job.spec.mem_records) *
                          job.record_bytes,
                      2 * ctx.D() * ctx.block_bytes()));
  const IoStats before = ctx.stats();
  SortReport report;
  std::string error;
  bool ok = true;
  try {
    JobExec ex{ctx,         job.spec.mem_records, job.spec.alpha,
               plans_,      cfg_.sort_pool,       {}};
    job.run(ex);
    report = std::move(ex.report);
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  }
  try {
    // Settle in-flight writes so the stats delta below is this job's
    // complete I/O (ReportBuilder drained the success path already; this
    // covers failures and callback-issued reads).
    ctx.aio().drain();
  } catch (const std::exception& e) {
    if (ok) {
      ok = false;
      error = e.what();
    }
  }
  const IoStats after = ctx.stats();
  const auto end = Clock::now();

  std::lock_guard g(mu_);
  job.t_end = end;
  last_end_ = std::max(last_end_, end);
  job.run = {};  // terminal: release the dataset/callback captures
  job.io = delta(after, before);
  if (ok) {
    job.state = JobState::kDone;
    job.algorithm = report.algorithm;
    job.report = std::move(report);
  } else {
    job.state = JobState::kFailed;
    job.error = std::move(error);
  }
  job.deadline_missed =
      job.spec.deadline_s > 0 &&
      seconds(job.t_end - job.t_submit) > job.spec.deadline_s;
  done_cv_.notify_all();
}

}  // namespace pdm
