#include "service/sort_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "util/jobtrace.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pdm {

namespace {

double seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

std::shared_ptr<DiskBackend> require_backend(std::shared_ptr<DiskBackend> b) {
  PDM_CHECK(b != nullptr, "SortService needs a backend");
  return b;
}

}  // namespace

/// One submitted job. Queue-visible fields are guarded by the service
/// mutex; while kRunning the executing worker stages results in locals
/// and commits them under the mutex, so info()/stats() never race it.
struct SortService::Job {
  JobId id = 0;
  SortJobSpec spec;
  u64 n = 0;
  usize record_bytes = 0;
  u64 type_key = 0;
  usize carve_bytes = 0;
  bool batchable = false;
  std::function<void(JobExec&)> run;

  JobState state = JobState::kQueued;
  std::string algorithm;
  std::string error;
  SortReport report;
  IoStats io;
  Clock::time_point t_submit;
  Clock::time_point t_start;
  Clock::time_point t_end;
  Clock::time_point deadline_abs = Clock::time_point::max();
  double est_run_s = 0;  // model-time estimate (deadline admission only)
  bool deadline_missed = false;
  bool batched = false;
  // Set by cancel() while kRunning; polled by the sorter at batch
  // boundaries through PdmContext::check_cancelled.
  std::atomic<bool> cancel_flag{false};
};

SortService::SortService(std::shared_ptr<DiskBackend> backend,
                         ServiceConfig cfg)
    : backend_(require_backend(std::move(backend))),
      cfg_(cfg),
      alloc_(backend_->num_disks()),
      budget_(cfg.total_memory_bytes),
      io_totals_(backend_->num_disks()) {
  PDM_CHECK(cfg_.workers > 0, "SortService needs at least one worker");
  PDM_CHECK(cfg_.mem_slack >= 1.0, "mem_slack below 1 cannot stage a sort");
  PDM_CHECK(cfg_.batch_max > 0, "batch_max must be positive");
  workers_.reserve(cfg_.workers);
  for (usize i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SortService::~SortService() {
  {
    std::lock_guard g(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {

/// Per-algorithm working-set model for admission: carve =
/// m_mult * M * record_bytes + block_overhead * D * block_bytes, covering
/// the sort's tracked buffers plus the async pipeline's second load
/// buffer and write-behind slabs (each bounded by ~M under the service's
/// slab cap). Calibrated by binary-searching the minimal feasible job
/// budget per algorithm across geometries (measured minima: InternalSort
/// 3.0M; the LMM family 4.0M + 8·D·B at square-ish geometries, up to
/// 5.0M at extreme M/B ratios) and padded ~10-15%. Algorithms not
/// calibrated here fall back to the conservative uniform mem_slack.
struct AdmissionSlack {
  double m_mult = 0;
  double block_overhead = 0;
  bool calibrated = false;
};

AdmissionSlack algo_admission_slack(Algo a) {
  switch (a) {
    case Algo::kInternal:
      // One M-record load + the pipeline's ping-pong load and slab.
      return {3.25, 2.0, true};
    case Algo::kExpectedTwoPass:
    case Algo::kThreePassLmm:
    case Algo::kExpectedThreePass:
      // LMM family: unshuffle/merge/window buffers + pipeline slack
      // (observed peaks reach 5.0M at extreme M/B ratios).
      return {5.5, 8.0, true};
    default:
      return {};
  }
}

}  // namespace

usize SortService::admission_carve(const SortJobSpec& spec,
                                   usize record_bytes, u64 n) const {
  if (spec.carve_bytes != 0) return spec.carve_bytes;
  const double mrec_bytes = static_cast<double>(spec.mem_records) *
                            static_cast<double>(record_bytes);
  const auto uniform = static_cast<usize>(cfg_.mem_slack * mrec_bytes);
  // Parallel in-core kernels acquire tracked scratch (ping-pong merge
  // buffers) only when the job's CPU grant is >= 2: one extra M-load for
  // the internal sort, up to two for the LMM family's cleanup window.
  // Added AFTER the per-algorithm/uniform min below, so the cap cannot
  // under-carve a job that will run parallel; zero when cpu_threads_total
  // leaves every job serial (carves stay byte-identical to the serial
  // configuration).
  double par_mult = cfg_.cpu_threads_total >= 2 ? 2.0 : 0.0;
  usize base = uniform;
  const usize bb = backend_->block_bytes();
  if (cfg_.plan_aware_admission && n > 0 && record_bytes > 0 &&
      bb % record_bytes == 0) {
    if (auto e = plans_.try_entry(n, spec.mem_records, bb / record_bytes,
                                  spec.alpha)) {
      const AdmissionSlack s = algo_admission_slack(e->algo);
      if (s.calibrated) {
        const auto carve = static_cast<usize>(
            s.m_mult * mrec_bytes +
            s.block_overhead * static_cast<double>(backend_->num_disks()) *
                static_cast<double>(bb));
        // Never raise a carve above the conservative bound: a tighter
        // global mem_slack keeps capping every admission.
        base = std::min(carve, uniform);
        if (cfg_.cpu_threads_total >= 2) {
          par_mult = e->algo == Algo::kInternal ? 1.0 : 2.0;
        }
      }
    }
  }
  return base + static_cast<usize>(par_mult * mrec_bytes);
}

bool SortService::queue_before(const Job& a, const Job& b) const {
  if (a.spec.priority != b.spec.priority) {
    return a.spec.priority > b.spec.priority;
  }
  // EDF within the band; no-deadline jobs (deadline_abs = max) run after
  // every deadlined one, FIFO among themselves.
  if (a.deadline_abs != b.deadline_abs) return a.deadline_abs < b.deadline_abs;
  return a.id < b.id;
}

double SortService::estimate_run_s(const SortJobSpec& spec, usize record_bytes,
                                   u64 n) {
  const usize bb = backend_->block_bytes();
  if (record_bytes == 0 || bb % record_bytes != 0) return 0;
  const u64 rpb = bb / record_bytes;
  PlanEntry e;
  try {
    e = plans_.entry(n, spec.mem_records, rpb, spec.alpha);
  } catch (const Error&) {
    return 0;  // no feasible plan: the job fails on a worker, as always
  }
  // A pass is N/(D*B) parallel reads plus as many writes, each costing one
  // seek + one block transfer under the service's cost model.
  const double rounds_per_pass =
      std::ceil(static_cast<double>(n) /
                (static_cast<double>(rpb) * backend_->num_disks()));
  return e.expected_passes * 2.0 * rounds_per_pass * cfg_.cost.round_cost(bb);
}

double SortService::estimate_run_s(const Job& job) {
  return estimate_run_s(job.spec, job.record_bytes, job.n);
}

double SortService::deadline_cal() const {
  std::lock_guard g(mu_);
  return cal_ratio_;
}

JobId SortService::submit_impl(SortJobSpec spec, u64 n, usize record_bytes,
                               u64 type_key,
                               std::function<void(JobExec&)> run) {
  PDM_CHECK(spec.mem_records > 0, "SortJobSpec.mem_records must be > 0");
  PDM_CHECK(n > 0, "cannot submit an empty sort job");
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->n = n;
  job->record_bytes = record_bytes;
  job->type_key = type_key;
  job->carve_bytes = admission_carve(job->spec, record_bytes, n);
  job->run = std::move(run);
  job->t_submit = Clock::now();
  if (job->spec.deadline_s > 0) {
    job->deadline_abs =
        job->t_submit + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                job->spec.deadline_s));
  }
  // Planning for the admission estimate happens before the lock (the plan
  // cache has its own); skipped entirely unless deadline admission is on.
  if (cfg_.deadline_admission) job->est_run_s = estimate_run_s(*job);
  // Standalone submissions mint their causal id here; cluster-routed jobs
  // arrive with one already stamped at cluster admission.
  if (job->spec.trace_id == 0) job->spec.trace_id = jobtrace::mint();
  jobtrace::Scope trace_scope(job->spec.trace_id, job->spec.parent_trace_id);
  auto& flight = jobtrace::FlightRecorder::instance();

  std::lock_guard g(mu_);
  PDM_CHECK(!stop_, "SortService is shutting down");
  job->id = next_id_++;
  const JobId id = job->id;
  ++submitted_;
  auto reject = [&](std::string why) {
    job->state = JobState::kRejected;
    flight.note_end(job->spec.trace_id, jobtrace::EventKind::kRejected,
                    why.c_str(), /*bad=*/true, cfg_.shard_id);
    job->error = std::move(why);
    job->t_end = job->t_submit;
    job->run = {};  // terminal: release the dataset the closure co-owns
    jobs_.emplace(id, job);
    on_terminal_locked(*job);
    PDM_TRACE_INSTANT_ARG("service", "admission_reject", "job", id);
    return id;
  };
  if (job->carve_bytes > budget_.limit()) {
    // Admission control: this job can never be staged here.
    return reject("admission control: memory carve of " +
                  std::to_string(job->carve_bytes) +
                  " bytes exceeds the service budget of " +
                  std::to_string(budget_.limit()));
  }
  if (cfg_.deadline_admission && job->spec.deadline_s > 0 &&
      job->est_run_s > 0) {
    // Backlog the job would queue behind, spread over the workers, plus
    // its own planned run time. Jobs whose shapes defeat estimation
    // contribute zero — the check stays conservative toward admission.
    // Both terms are model time; the calibration EMA (observed wall
    // seconds per modeled second on THIS shard's backend) rescales them
    // so the check stays honest when CostModel and wall clock diverge.
    double backlog = 0;
    for (const Job* p : pending_) {
      if (queue_before(*p, *job)) backlog += p->est_run_s;
    }
    const double cal =
        cfg_.deadline_calibration && cal_ratio_ > 0 ? cal_ratio_ : 1.0;
    const double wait = cal * backlog / static_cast<double>(cfg_.workers);
    const double run = cal * job->est_run_s;
    if (wait + run > job->spec.deadline_s) {
      return reject("deadline admission: estimated wait " +
                    std::to_string(wait) + "s + run " +
                    std::to_string(run) +
                    "s exceeds deadline of " +
                    std::to_string(job->spec.deadline_s) + "s");
    }
  }
  job->batchable =
      cfg_.small_job_records > 0 && n <= cfg_.small_job_records;
  Job* raw = job.get();
  const auto pos = std::upper_bound(
      pending_.begin(), pending_.end(), raw, [this](const Job* a,
                                                    const Job* b) {
        return queue_before(*a, *b);
      });
  pending_.insert(pos, raw);
  flight.record(raw->spec.trace_id, jobtrace::EventKind::kAdmitted,
                raw->spec.name.c_str(), cfg_.shard_id);
  jobs_.emplace(id, std::move(job));
  work_cv_.notify_one();
  PDM_TRACE_INSTANT_ARG("service", "job_submitted", "job", id);
  return id;
}

std::vector<SortService::ExtractedJob> SortService::extract_queued() {
  std::vector<ExtractedJob> out;
  std::lock_guard g(mu_);
  out.reserve(pending_.size());
  const auto now = Clock::now();
  for (Job* raw : pending_) {
    auto it = jobs_.find(raw->id);
    PDM_ASSERT(it != jobs_.end(), "pending job without a record");
    std::shared_ptr<Job> job = it->second;
    ExtractedJob ex;
    ex.local_id = job->id;
    ex.t_submit = job->t_submit;
    ex.job.spec = std::move(job->spec);
    ex.job.n = job->n;
    ex.job.record_bytes = job->record_bytes;
    ex.job.type_key = job->type_key;
    ex.job.run = std::move(job->run);
    job->run = {};
    // kMigrated is terminal only from this shard's point of view: any
    // waiter (current or future) wakes, sees kMigrated and re-resolves
    // placement with the cluster. The record stays as a tombstone — not
    // counted by on_terminal_locked (the job is not done, it is
    // leaving), zero I/O, dropped with the service at retirement.
    job->state = JobState::kMigrated;
    job->t_end = now;
    // The job un-submits: it re-counts on whichever shard re-admits it,
    // so cluster-level per-shard sums stay exact.
    --submitted_;
    out.push_back(std::move(ex));
  }
  pending_.clear();
  done_cv_.notify_all();
  return out;
}

void SortService::set_capacity_callback(std::function<void()> cb) {
  std::lock_guard g(mu_);
  capacity_cb_ = std::move(cb);
}

bool SortService::cancel(JobId id) {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job_state_terminal(job.state)) return false;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kCancelled;
    job.t_end = Clock::now();
    job.run = {};  // safe: a claimed member is only run while still kQueued
    std::erase(pending_, &job);
    jobtrace::FlightRecorder::instance().note_end(
        job.spec.trace_id, jobtrace::EventKind::kCancelled,
        "cancelled while queued", /*bad=*/true, cfg_.shard_id);
    on_terminal_locked(job);
    done_cv_.notify_all();
    return true;
  }
  // kRunning: cooperative preemption. The worker observes the flag at the
  // next batch boundary (or, at the latest, right before the completion
  // callback) and commits the job as kCancelled.
  job.cancel_flag.store(true, std::memory_order_relaxed);
  return true;
}

JobInfo SortService::wait(JobId id) {
  std::unique_lock lock(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "wait: unknown job id");
  // Keep the record alive: retention may evict it while we sleep.
  std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] { return job_state_terminal(job->state); });
  return snapshot_locked(*job);
}

void SortService::drain() {
  std::unique_lock lock(mu_);
  done_cv_.wait(lock,
                [&] { return pending_.empty() && active_tasks_ == 0; });
}

bool SortService::forget(JobId id) {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !job_state_terminal(it->second->state)) {
    return false;
  }
  if (it->second->state == JobState::kMigrated) {
    // Migration tombstone: not a retained record (never counted by
    // on_terminal_locked) — it belongs to the drain machinery, not to
    // the caller.
    return false;
  }
  jobs_.erase(it);
  --retained_;
  return true;
}

JobInfo SortService::info(JobId id) const {
  std::lock_guard g(mu_);
  auto it = jobs_.find(id);
  PDM_CHECK(it != jobs_.end(), "info: unknown job id");
  return snapshot_locked(*it->second);
}

bool SortService::known(JobId id) const {
  std::lock_guard g(mu_);
  return jobs_.count(id) != 0;
}

JobInfo SortService::snapshot_locked(const Job& job) const {
  JobInfo out;
  out.id = job.id;
  out.shard = cfg_.shard_id;
  out.name = job.spec.name;
  out.state = job.state;
  out.n = job.n;
  out.priority = job.spec.priority;
  out.algorithm = job.algorithm;
  out.error = job.error;
  out.report = job.report;
  out.io = job.io;
  out.deadline_missed = job.deadline_missed;
  out.batched = job.batched;
  out.trace_id = job.spec.trace_id;
  out.parent_trace_id = job.spec.parent_trace_id;
  // A job failed by run_claim's catch never started; t_start is the
  // ground truth, not the state.
  const bool started = job.t_start != Clock::time_point{};
  if (started) {
    out.queue_s = seconds(job.t_start - job.t_submit);
    if (job_state_terminal(job.state)) {
      out.run_s = seconds(job.t_end - job.t_start);
    } else {
      // Still running: elapsed so far, for live introspection.
      out.run_s = seconds(Clock::now() - job.t_start);
    }
  } else if (job_state_terminal(job.state)) {
    out.queue_s = seconds(job.t_end - job.t_submit);
  } else {
    out.queue_s = seconds(Clock::now() - job.t_submit);
  }
  return out;
}

void SortService::on_terminal_locked(Job& job) {
  switch (job.state) {
    case JobState::kDone: ++completed_; break;
    case JobState::kFailed: ++failed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    case JobState::kRejected: ++rejected_; break;
    default: PDM_ASSERT(false, "on_terminal_locked on a live job"); break;
  }
  if (job.deadline_missed) ++deadline_missed_;
  u64 queued_ns = 0;
  if (job.state == JobState::kDone || job.state == JobState::kFailed) {
    const bool started = job.t_start != Clock::time_point{};
    const auto queued =
        started ? job.t_start - job.t_submit : job.t_end - job.t_submit;
    queued_ns = static_cast<u64>(std::max<std::chrono::nanoseconds::rep>(
        0, std::chrono::duration_cast<std::chrono::nanoseconds>(queued)
               .count()));
    queue_hist_.record(queued_ns);
  }
  if (!job.spec.locality_key.empty()) {
    // Per-tenant accounting, keyed by the routing/locality key. Registry
    // lookup takes its own (independent) mutex; terminal transitions are
    // infrequent enough that the by-name lookup is fine here.
    auto& reg = metrics::Registry::global();
    const std::string p = "tenant." + job.spec.locality_key;
    reg.counter(p + ".jobs").add(1);
    reg.counter(p + ".bytes").add(job.n * job.record_bytes);
    if (job.spec.deadline_s > 0) {
      reg.counter(job.deadline_missed ? p + ".deadline_missed"
                                      : p + ".deadline_hit")
          .add(1);
    }
    if (queued_ns > 0) reg.histogram(p + ".queue_wait_ns").record(queued_ns);
  }
  ++retained_;
  terminal_fifo_.emplace_back(job.id, job.t_end);
  evict_locked(job.t_end);
}

void SortService::evict_locked(Clock::time_point now) {
  auto drop_front = [&] {
    const JobId id = terminal_fifo_.front().first;
    terminal_fifo_.pop_front();
    auto it = jobs_.find(id);
    // The entry may be stale: forget() erases records without scrubbing
    // the FIFO.
    if (it != jobs_.end() && job_state_terminal(it->second->state)) {
      jobs_.erase(it);
      --retained_;
      ++evicted_;
    }
  };
  if (cfg_.retain_ttl_s > 0) {
    while (!terminal_fifo_.empty() &&
           seconds(now - terminal_fifo_.front().second) > cfg_.retain_ttl_s) {
      drop_front();
    }
  }
  if (cfg_.retain_terminal_max > 0) {
    while (retained_ > cfg_.retain_terminal_max && !terminal_fifo_.empty()) {
      drop_front();
    }
  }
}

ServiceStats SortService::stats() const {
  std::lock_guard g(mu_);
  ServiceStats s;
  s.shard_id = cfg_.shard_id;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.rejected = rejected_;
  s.deadline_missed = deadline_missed_;
  s.retained = retained_;
  s.evicted = evicted_;
  s.batches_run = batches_run_;
  s.plan_cache_hits = plans_.hits();
  s.plan_cache_misses = plans_.misses();
  s.deadline_cal = cal_ratio_;
  s.peak_memory_bytes = budget_.peak();
  s.io = io_totals_.snapshot();
  if (queue_hist_.count() > 0) {
    s.queue_p50_s = static_cast<double>(queue_hist_.quantile(0.5)) * 1e-9;
    s.queue_p99_s = static_cast<double>(queue_hist_.quantile(0.99)) * 1e-9;
    s.queue_max_s = static_cast<double>(queue_hist_.max()) * 1e-9;
  }
  if (completed_ > 0 && any_start_) {
    s.busy_window_s = seconds(last_end_ - first_start_);
    s.jobs_per_sec =
        static_cast<double>(completed_) / std::max(1e-9, s.busy_window_s);
  }
  return s;
}

std::vector<JobInfo> SortService::jobs() const {
  std::lock_guard g(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, jp] : jobs_) out.push_back(snapshot_locked(*jp));
  return out;
}

ShardLoad SortService::load() const {
  std::lock_guard g(mu_);
  ShardLoad l;
  l.shard = cfg_.shard_id;
  l.queued = pending_.size();
  l.running = active_tasks_;
  l.reserved_bytes = budget_.current();
  l.budget_limit = budget_.limit();
  l.depth_in_use = depth_in_use_;
  l.cpu_in_use = cpu_in_use_;
  l.cpu_total = cfg_.cpu_threads_total;
  l.workers = cfg_.workers;
  return l;
}

SortService::Claim SortService::try_claim_locked() {
  for (usize i = 0; i < pending_.size(); ++i) {
    Job* head = pending_[i];
    Claim claim;
    claim.members.push_back(jobs_.at(head->id));
    claim.carve = head->carve_bytes;
    if (head->batchable) {
      for (usize k = i + 1;
           k < pending_.size() && claim.members.size() < cfg_.batch_max;
           ++k) {
        Job* other = pending_[k];
        if (other->batchable && other->type_key == head->type_key) {
          claim.members.push_back(jobs_.at(other->id));
          // Members run sequentially over one context, so the batch needs
          // only the largest member's carve at any moment.
          claim.carve = std::max(claim.carve, other->carve_bytes);
        }
      }
    }
    // Backfill: if the head of the queue cannot reserve memory right now,
    // a smaller job further back may still be admittable.
    if (!budget_.try_acquire(claim.carve)) continue;
    if (claim.members.size() > 1) {
      for (auto& j : claim.members) j->batched = true;
    }
    std::erase_if(pending_, [&](Job* j) {
      return std::any_of(claim.members.begin(), claim.members.end(),
                         [&](const std::shared_ptr<Job>& m) {
                           return m.get() == j;
                         });
    });
    return claim;
  }
  return {};
}

usize SortService::grant_depth_locked() {
  if (cfg_.io_depth_total < 2) return 0;
  const usize share =
      std::max<usize>(2, cfg_.io_depth_total / std::max<usize>(1, cfg_.workers));
  const usize avail = cfg_.io_depth_total - depth_in_use_;
  const usize depth = std::min(share, avail);
  if (depth < 2) return 0;
  depth_in_use_ += depth;
  return depth;
}

usize SortService::grant_cpu_locked() {
  if (cfg_.cpu_threads_total < 2) return 0;
  const usize share = std::max<usize>(
      2, cfg_.cpu_threads_total / std::max<usize>(1, cfg_.workers));
  const usize avail = cfg_.cpu_threads_total - cpu_in_use_;
  const usize cpu = std::min(share, avail);
  if (cpu < 2) return 0;
  cpu_in_use_ += cpu;
  return cpu;
}

void SortService::regrant_locked() {
  // A finished job returned its grants: top the survivors up toward the
  // fair share at the *current* occupancy instead of letting the freed
  // budget idle until the next admission. Raises only — a job's budget
  // never shrinks mid-flight (CpuPool::set_budget takes effect at the next
  // parallel region; AsyncIoScheduler::raise_depth widens the pipeline
  // without a quiesce). Stats stay byte-identical because both knobs are
  // accounted at submission, not at completion.
  const usize tasks = std::max<usize>(1, active_grants_.size());
  if (cfg_.io_depth_total >= 2) {
    const usize fair = std::max<usize>(2, cfg_.io_depth_total / tasks);
    for (auto& g : active_grants_) {
      if (g.depth >= fair) continue;
      const usize avail = cfg_.io_depth_total - depth_in_use_;
      const usize target = std::min(fair, g.depth + avail);
      if (target <= g.depth || target < 2) continue;
      depth_in_use_ += target - g.depth;
      g.depth = target;
      g.ctx->raise_async_depth(target);
    }
  }
  if (cfg_.cpu_threads_total >= 2) {
    const usize fair = std::max<usize>(2, cfg_.cpu_threads_total / tasks);
    for (auto& g : active_grants_) {
      if (g.cpu >= fair) continue;
      const usize avail = cfg_.cpu_threads_total - cpu_in_use_;
      const usize target = std::min(fair, g.cpu + avail);
      if (target <= g.cpu || target < 2) continue;
      cpu_in_use_ += target - g.cpu;
      g.cpu = target;
      g.ctx->set_cpu_budget(target);
    }
  }
  update_cpu_gauges_locked();
}

void SortService::update_cpu_gauges_locked() {
  auto& reg = metrics::Registry::global();
  reg.gauge("cpu.granted").set(static_cast<std::int64_t>(cpu_in_use_));
  usize waiting = 0;
  if (cfg_.cpu_threads_total >= 2) {
    for (const auto& g : active_grants_) {
      if (g.cpu < 2) ++waiting;  // running serial for lack of threads
    }
  }
  reg.gauge("cpu.waiting").set(static_cast<std::int64_t>(waiting));
}

void SortService::worker_loop() {
  trace::TraceLog::instance().set_thread_name("svc-worker");
  std::unique_lock lock(mu_);
  for (;;) {
    Claim claim = try_claim_locked();
    if (claim.members.empty()) {
      if (stop_ && pending_.empty()) return;
      work_cv_.wait(lock);
      continue;
    }
    ++active_tasks_;
    const usize depth = grant_depth_locked();
    const usize cpu = grant_cpu_locked();
    ++batches_run_;
    lock.unlock();

    // run_claim returns the grants (and re-grants the freed budget to the
    // survivors) itself, before its context is destroyed.
    run_claim(claim, depth, cpu);
    budget_.release(claim.carve);

    lock.lock();
    --active_tasks_;
    work_cv_.notify_all();  // freed memory and depth: others may admit
    done_cv_.notify_all();
    if (capacity_cb_) {
      // Capacity freed: let the owning cluster pump its hold queue. The
      // callback runs outside the service mutex — it takes the cluster
      // mutex and then other shards' mutexes, never the reverse.
      auto cb = capacity_cb_;
      lock.unlock();
      cb();
      lock.lock();
    }
  }
}

void SortService::run_claim(Claim& claim, usize depth, usize cpu) {
  trace::TraceSpan trace_span("service", "batch_execute", "jobs",
                              claim.members.size());
  // Returns this claim's grants exactly once, on every exit path, and
  // BEFORE the context dies (regrant_locked must never see a dangling
  // ctx). The re-grant happens here rather than in worker_loop so freed
  // threads/depth reach long-running neighbours immediately. The grants
  // released are read back from the registry entry — regrant_locked may
  // have topped them up past the initial (depth, cpu).
  bool released = false;
  auto release_grants = [&](PdmContext* ctx) noexcept {
    if (released) return;
    released = true;
    std::lock_guard g(mu_);
    usize d = depth;
    usize c = cpu;
    auto it = std::find_if(active_grants_.begin(), active_grants_.end(),
                           [&](const ActiveGrant& a) { return a.ctx == ctx; });
    if (it != active_grants_.end()) {
      d = it->depth;
      c = it->cpu;
      active_grants_.erase(it);
    }
    depth_in_use_ -= d;
    cpu_in_use_ -= c;
    regrant_locked();
  };
  try {
    PdmContext ctx(backend_, alloc_, claim.carve, cfg_.cost,
                   cfg_.seed + claim.members.front()->id, &io_totals_);
    ctx.set_extent_blocks(cfg_.extent_blocks);
    ctx.io().set_coalescing(cfg_.coalesce_io);
    if (depth >= 2) ctx.set_async_depth(depth);
    if (cpu >= 2) ctx.set_cpu_budget(cpu);
    {
      std::lock_guard g(mu_);
      active_grants_.push_back(ActiveGrant{&ctx, depth, cpu});
      update_cpu_gauges_locked();
    }
    try {
      for (auto& j : claim.members) run_one(*j, ctx);
    } catch (...) {
      release_grants(&ctx);
      throw;
    }
    release_grants(&ctx);
  } catch (const std::exception& e) {
    release_grants(nullptr);  // no-op unless PdmContext setup itself threw
    // Context setup or teardown failed: every member that has not reached
    // a terminal state goes down with it.
    const auto now = Clock::now();
    std::lock_guard g(mu_);
    for (auto& j : claim.members) {
      if (job_state_terminal(j->state)) continue;
      j->state = JobState::kFailed;
      j->error = e.what();
      j->t_end = now;
      j->run = {};
      on_terminal_locked(*j);
    }
    done_cv_.notify_all();
  }
}

void SortService::run_one(Job& job, PdmContext& ctx) {
  {
    std::lock_guard g(mu_);
    if (job.state != JobState::kQueued) return;  // cancelled after claim
    job.state = JobState::kRunning;
    job.t_start = Clock::now();
    if (!any_start_ || job.t_start < first_start_) {
      first_start_ = job.t_start;
      any_start_ = true;
    }
  }
  // Everything this worker records for the job — the queue-wait retro
  // span, the job_run span, every sorter phase span and counter beneath
  // it — is stamped with the job's causal id. The scope must outlive
  // trace_span (which emits at end()).
  jobtrace::Scope trace_scope(job.spec.trace_id, job.spec.parent_trace_id);
  ctx.set_trace(job.spec.trace_id, job.spec.parent_trace_id);
  auto& flight = jobtrace::FlightRecorder::instance();
  flight.record(job.spec.trace_id, jobtrace::EventKind::kStarted, nullptr,
                cfg_.shard_id);
  if (trace::TraceLog::instance().enabled()) {
    // Retroactive queue-wait span: submission happened on another thread,
    // so the wait is emitted here as a complete event ending now.
    const u64 queued_ns = static_cast<u64>(
        std::max<std::chrono::nanoseconds::rep>(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   job.t_start - job.t_submit)
                   .count()));
    const u64 now_ns = trace::TraceLog::now_ns();
    trace::TraceLog::instance().complete(
        "service", "queue_wait", now_ns - std::min(now_ns, queued_ns),
        queued_ns, "job", job.id);
  }
  trace::TraceSpan trace_span("service", "job_run", "job", job.id);
  // This member's cooperative cancellation flag; cleared before the
  // (batch-shared) context moves on to the next member.
  ctx.set_cancel_flag(&job.cancel_flag);
  // Bound write-behind staging to ~M bytes per slab so a bulk write of
  // the whole dataset cannot blow the job's carve; oversized batches run
  // as ordered synchronous writes instead (stats-identical).
  ctx.write_behind().set_max_slab_bytes(
      std::max<usize>(static_cast<usize>(job.spec.mem_records) *
                          job.record_bytes,
                      2 * ctx.D() * ctx.block_bytes()));
  const IoStats before = ctx.stats();
  SortReport report;
  std::string error;
  bool ok = true;
  try {
    JobExec ex{ctx,         job.spec.mem_records, job.spec.alpha,
               plans_,      cfg_.sort_pool,       {}};
    job.run(ex);
    report = std::move(ex.report);
  } catch (const Cancelled& e) {
    ok = false;
    error = e.what();
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  }
  try {
    // Settle in-flight writes so the stats delta below is this job's
    // complete I/O (ReportBuilder drained the success path already; this
    // covers failures, cancellations and callback-issued reads).
    ctx.aio().drain();
  } catch (const std::exception& e) {
    if (ok) {
      ok = false;
      error = e.what();
    }
  }
  ctx.set_cancel_flag(nullptr);
  const IoStats after = ctx.stats();
  const auto end = Clock::now();
  trace_span.end();

  std::lock_guard g(mu_);
  job.t_end = end;
  last_end_ = std::max(last_end_, end);
  job.run = {};  // terminal: release the dataset/callback captures
  // The delta is recorded whatever the outcome: a cancelled or failed
  // job's charges were mirrored into the service totals, so the per-job
  // sums stay exact.
  job.io = delta(after, before);
  if (job.cancel_flag.load(std::memory_order_relaxed)) {
    // cancel() promised kCancelled the moment it returned true — even if
    // the sort outran the flag, the completed work is discarded.
    job.state = JobState::kCancelled;
    job.error = error.empty() ? "cancelled while running" : error;
  } else if (ok) {
    job.state = JobState::kDone;
    job.algorithm = report.algorithm;
    job.report = std::move(report);
    job.deadline_missed =
        job.spec.deadline_s > 0 &&
        seconds(job.t_end - job.t_submit) > job.spec.deadline_s;
    if (cfg_.deadline_calibration && job.est_run_s > 0) {
      // Observed wall seconds per modeled second, smoothed: the factor
      // future deadline-admission estimates are scaled by.
      const double run_s = seconds(job.t_end - job.t_start);
      if (run_s > 0) {
        const double r = run_s / job.est_run_s;
        cal_ratio_ = cal_ratio_ == 0
                         ? r
                         : kCalibrationEma * r +
                               (1.0 - kCalibrationEma) * cal_ratio_;
      }
    }
  } else {
    job.state = JobState::kFailed;
    job.error = std::move(error);
    job.deadline_missed =
        job.spec.deadline_s > 0 &&
        seconds(job.t_end - job.t_submit) > job.spec.deadline_s;
  }
  // Flight-record the terminal transition. A deadline miss gets its own
  // event before the terminal one, and any bad end (failed, cancelled,
  // missed) triggers the dump-on-bad-end sink exactly once.
  if (job.deadline_missed) {
    flight.record(job.spec.trace_id, jobtrace::EventKind::kDeadlineMiss,
                  job.spec.name.c_str(), cfg_.shard_id);
  }
  const bool bad = job.state != JobState::kDone || job.deadline_missed;
  flight.note_end(job.spec.trace_id,
                  job.state == JobState::kCancelled
                      ? jobtrace::EventKind::kCancelled
                      : jobtrace::EventKind::kFinished,
                  job_state_name(job.state), bad, cfg_.shard_id);
  on_terminal_locked(job);
  done_cv_.notify_all();
}

}  // namespace pdm
