// pdm::SortService — a multi-tenant sort-job scheduler.
//
// The paper's algorithms answer "how do I sort one dataset in the fewest
// passes?"; the service answers "how do I serve many such sorts at once
// over shared disks and shared memory?". It composes the existing pieces:
//
//  - admission control: every job must reserve a memory carve
//    (try_acquire on the service-wide MemoryBudget) before it may start;
//    jobs whose carve can never fit are rejected at submission, the rest
//    queue until memory frees up;
//  - planning: each admitted job is planned through AdaptiveSorter with
//    its *budgeted* M (not the machine's), via a PlanCache so jobs
//    sharing a shape cost one planner invocation;
//  - execution: a fixed pool of service workers runs jobs concurrently,
//    each in its own job PdmContext (shared backend + shared thread-safe
//    block allocator, private scheduler/budget/RNG);
//  - I/O arbitration: the async pipeline depth granted to a job is its
//    share of ServiceConfig::io_depth_total, so the aggregate
//    prefetch/write-behind buffering across active jobs never exceeds
//    the service's I/O budget (jobs that cannot get a depth >= 2 run
//    synchronously);
//  - batching: small jobs sharing a record type coalesce into one worker
//    task over one context;
//  - observability: ServiceStats aggregates per-job reports, queue
//    latency percentiles, throughput and live service-wide IoStats that
//    per-job deltas sum to exactly.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <typeinfo>
#include <vector>

#include "pdm/striped_run.h"
#include "service/service_stats.h"
#include "service/sort_job.h"

namespace pdm {

struct ServiceConfig {
  /// Concurrent worker threads (= max jobs/batches in flight).
  usize workers = 4;

  /// Service-wide memory budget that job carves are reserved from.
  usize total_memory_bytes = usize{256} << 20;

  /// Aggregate async pipeline depth shared by active jobs; < 2 keeps
  /// every job synchronous.
  usize io_depth_total = 8;

  /// Default carve = mem_slack * mem_records * sizeof(record): the
  /// documented per-algorithm working-set slack (~2.5M) plus the async
  /// pipeline's extra load buffer and write-behind slabs, rounded up.
  double mem_slack = 6.0;

  /// Jobs with n <= this coalesce with same-record-type jobs into one
  /// worker task (0 disables batching).
  u64 small_job_records = 0;

  /// Max jobs coalesced into one batch.
  usize batch_max = 8;

  CostModel cost{};
  u64 seed = 1;

  /// Optional pool for internal sorting, shared across jobs (ThreadPool
  /// is thread-safe). Null keeps each job's CPU work on its worker.
  ThreadPool* sort_pool = nullptr;
};

class SortService {
 public:
  /// Co-owns `backend`; the service's allocator and I/O totals are sized
  /// to its geometry. Workers start immediately.
  explicit SortService(std::shared_ptr<DiskBackend> backend,
                       ServiceConfig cfg = {});

  /// Drains every queued and running job, then joins the workers.
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Submits a sort job over `data` (moved in; freed as soon as the job
  /// has staged it onto the disks). `on_complete`, if given, runs on the
  /// worker thread right after the sort, while the job's output run and
  /// context are still alive — read the output there. Returns the job id
  /// immediately; rejected jobs get JobState::kRejected (never throw).
  template <Record R, class Cmp = std::less<R>>
  JobId submit(SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
               std::function<void(const SortResult<R>&)> on_complete = {}) {
    const u64 n = data.size();
    auto payload = std::make_shared<std::vector<R>>(std::move(data));
    auto run = [payload, cmp, cb = std::move(on_complete)](JobExec& ex) {
      auto in = write_input_run<R>(ex.ctx, std::span<const R>(*payload));
      payload->clear();
      payload->shrink_to_fit();
      AdaptiveOptions o;
      o.mem_records = ex.mem_records;
      o.alpha = ex.alpha;
      o.pool = ex.pool;
      o.force = ex.plans.choose(in.size(), ex.mem_records,
                                ex.ctx.rpb<R>(), ex.alpha);
      auto res = pdm_sort<R>(ex.ctx, in, o, cmp);
      ex.report = res.report;
      if (cb) cb(res);
    };
    return submit_impl(std::move(spec), n, sizeof(R), typeid(R).hash_code(),
                       std::move(run));
  }

  /// Cancels a job that is still queued (including claimed-but-not-yet-
  /// started batch members). Returns false if unknown or already past
  /// the queue — running jobs are not interrupted.
  bool cancel(JobId id);

  /// Blocks until the job reaches a terminal state; returns its record.
  JobInfo wait(JobId id);

  /// Blocks until no job is queued or running.
  void drain();

  /// Snapshot of one job (throws on unknown id).
  JobInfo info(JobId id) const;

  /// Drops the record of a terminal job so a long-lived service does not
  /// retain every job ever submitted. Returns false if the id is unknown
  /// or the job is still queued/running. Aggregate counters in stats()
  /// lose the forgotten job's contribution except the live I/O totals.
  bool forget(JobId id);

  /// Snapshot of the whole service.
  ServiceStats stats() const;

  /// The service-wide budget (reservations; peak = admission pressure).
  MemoryBudget& budget() noexcept { return budget_; }

  DiskBackend& backend() noexcept { return *backend_; }
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Job;
  struct Claim {
    std::vector<Job*> members;
    usize carve = 0;
  };
  using Clock = std::chrono::steady_clock;

  JobId submit_impl(SortJobSpec spec, u64 n, usize record_bytes, u64 type_key,
                    std::function<void(JobExec&)> run);
  void worker_loop();
  Claim try_claim_locked();
  usize grant_depth_locked();
  void run_claim(Claim& claim, usize depth);
  void run_one(Job& job, PdmContext& ctx);
  JobInfo snapshot_locked(const Job& job) const;

  std::shared_ptr<DiskBackend> backend_;
  ServiceConfig cfg_;
  DiskAllocator alloc_;
  MemoryBudget budget_;
  SharedIoTotals io_totals_;
  PlanCache plans_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue or memory changed
  std::condition_variable done_cv_;  // waiters: a job reached terminal
  std::vector<std::thread> workers_;
  std::map<JobId, std::unique_ptr<Job>> jobs_;  // id order = submit order
  std::vector<Job*> pending_;  // sorted: priority desc, then id asc
  JobId next_id_ = 1;
  bool stop_ = false;
  usize active_tasks_ = 0;
  usize depth_in_use_ = 0;
  u64 batches_run_ = 0;
  bool any_start_ = false;
  Clock::time_point first_start_;
  Clock::time_point last_end_;
};

}  // namespace pdm
