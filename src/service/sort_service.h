// pdm::SortService — a multi-tenant sort-job scheduler.
//
// The paper's algorithms answer "how do I sort one dataset in the fewest
// passes?"; the service answers "how do I serve many such sorts at once
// over shared disks and shared memory?". It composes the existing pieces:
//
//  - admission control: every job must reserve a memory carve
//    (try_acquire on the service-wide MemoryBudget) before it may start;
//    jobs whose carve can never fit are rejected at submission, the rest
//    queue until memory frees up. With deadline_admission on, a job whose
//    deadline cannot be met under its planned pass count and the current
//    queue backlog is rejected up front instead of missing silently;
//  - scheduling: priority bands, and within a band earliest-deadline-
//    first (no-deadline jobs after deadlined ones, FIFO among equals);
//  - planning: each admitted job is planned through AdaptiveSorter with
//    its *budgeted* M (not the machine's), via a PlanCache so jobs
//    sharing a shape cost one planner invocation;
//  - execution: a fixed pool of service workers runs jobs concurrently,
//    each in its own job PdmContext (shared backend + shared thread-safe
//    block allocator, private scheduler/budget/RNG); running jobs observe
//    a cooperative cancellation flag at batch boundaries;
//  - I/O arbitration: the async pipeline depth granted to a job is its
//    share of ServiceConfig::io_depth_total, so the aggregate
//    prefetch/write-behind buffering across active jobs never exceeds
//    the service's I/O budget (jobs that cannot get a depth >= 2 run
//    synchronously);
//  - batching: small jobs sharing a record type coalesce into one worker
//    task over one context;
//  - retention: terminal job records are bounded (count and/or TTL), and
//    the aggregate stats are maintained incrementally so a long-lived
//    service neither grows without bound nor pays O(jobs) per stats();
//  - observability: ServiceStats aggregates counters, queue latency
//    percentiles, throughput and live service-wide IoStats that per-job
//    deltas sum to exactly; ShardLoad is the cheap instantaneous load
//    snapshot a cluster router places by.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <typeinfo>
#include <vector>

#include "pdm/striped_run.h"
#include "service/service_stats.h"
#include "service/sort_job.h"
#include "util/metrics.h"

namespace pdm {

struct ServiceConfig {
  /// Concurrent worker threads (= max jobs/batches in flight).
  usize workers = 4;

  /// Service-wide memory budget that job carves are reserved from.
  usize total_memory_bytes = usize{256} << 20;

  /// Aggregate async pipeline depth shared by active jobs; < 2 keeps
  /// every job synchronous.
  usize io_depth_total = 8;

  /// Aggregate in-core kernel threads shared by active jobs, arbitrated
  /// like io_depth_total: each started job is granted its share (>= 2 or
  /// nothing), the grant is released when the job finishes, and freed
  /// capacity is re-granted to still-running jobs mid-flight. 1 (the
  /// default) keeps every job's in-memory work on its worker thread —
  /// the bit-identical legacy serial path.
  usize cpu_threads_total = 1;

  /// Default carve = mem_slack * mem_records * sizeof(record): the
  /// documented per-algorithm working-set slack (~2.5M) plus the async
  /// pipeline's extra load buffer and write-behind slabs, rounded up.
  /// This is the conservative bound used when the job's shape has no
  /// cached plan yet; see plan_aware_admission.
  double mem_slack = 6.0;

  /// Plan-cache-aware admission: when a submitted shape's PlanEntry is
  /// already cached, the carve uses that algorithm's calibrated
  /// working-set model (InternalSort ~3.25M + 2·D·B, the LMM family
  /// ~5.5M + 8·D·B, both including the pipeline's second load buffer
  /// and write-behind slabs — see algo_admission_slack in the .cpp for
  /// the measured minima) instead of the uniform mem_slack — admitting
  /// more jobs at the same safety margin. The per-algorithm carve is
  /// never raised above mem_slack's, so tightening the global knob
  /// still caps every admission. Uncached shapes (and explicit
  /// SortJobSpec::carve_bytes) are unaffected.
  bool plan_aware_admission = true;

  /// Blocks per allocation extent for job contexts (the per-syscall
  /// coalescing ceiling); <= 1 reverts to single-block bump allocation,
  /// interleaving concurrent jobs block-by-block (the bench baseline).
  usize extent_blocks = 32;

  /// Extent coalescing in job schedulers (see IoScheduler); off restores
  /// the block-at-a-time backend path with identical ops/blocks/hashes.
  bool coalesce_io = true;

  /// Jobs with n <= this coalesce with same-record-type jobs into one
  /// worker task (0 disables batching).
  u64 small_job_records = 0;

  /// Max jobs coalesced into one batch.
  usize batch_max = 8;

  /// Identifies this service within a cluster (stamped into JobInfo and
  /// ServiceStats; shard 0 = standalone).
  u32 shard_id = 0;

  /// Reject-at-admission for unmeetable deadlines: a deadlined job is
  /// rejected if (estimated queue wait + planned pass count * parallel-op
  /// cost under `cost`) already exceeds its deadline. Off by default —
  /// the estimate is model time, which only tracks wall clock when the
  /// backend is configured to simulate the same CostModel.
  bool deadline_admission = false;

  /// Calibrate the deadline-admission estimate against observed wall
  /// clock: an EMA of (actual run seconds / model-predicted seconds)
  /// over completed jobs scales both the backlog and the run term, so
  /// the check stays honest on real disks where CostModel time and wall
  /// time diverge (ServiceStats::deadline_cal exposes the ratio). Only
  /// consulted when deadline_admission is on.
  bool deadline_calibration = true;

  /// Retention policy for terminal job records: keep at most this many
  /// (0 = unbounded) ...
  usize retain_terminal_max = 0;

  /// ... and drop records older than this many seconds past their
  /// terminal transition (0 = no TTL; checked whenever a job goes
  /// terminal). Lifetime counters in stats() are unaffected.
  double retain_ttl_s = 0;

  CostModel cost{};
  u64 seed = 1;

  /// Optional pool for internal sorting, shared across jobs (ThreadPool
  /// is thread-safe). Null keeps each job's CPU work on its worker.
  ThreadPool* sort_pool = nullptr;
};

class SortService {
 public:
  /// Co-owns `backend`; the service's allocator and I/O totals are sized
  /// to its geometry. Workers start immediately.
  explicit SortService(std::shared_ptr<DiskBackend> backend,
                       ServiceConfig cfg = {});

  /// Drains every queued and running job, then joins the workers.
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Stages a typed sort job into a type-erased PreparedJob without
  /// admitting it anywhere: the dataset and comparator move into the run
  /// closure (freed as soon as the job has staged the data onto whatever
  /// shard's disks eventually run it). This is the mobile form the
  /// cluster parks in its hold queue and migrates between shards; feed it
  /// to submit_prepared() to admit it.
  template <Record R, class Cmp = std::less<R>>
  static PreparedJob prepare(
      SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
      std::function<void(const SortResult<R>&)> on_complete = {}) {
    PreparedJob job;
    job.n = data.size();
    job.record_bytes = sizeof(R);
    job.type_key = typeid(R).hash_code();
    auto payload = std::make_shared<std::vector<R>>(std::move(data));
    job.run = [payload, cmp, cb = std::move(on_complete),
               order_adaptive = spec.order_adaptive](JobExec& ex) {
      // Opt-in presortedness probe on the still-in-memory payload: O(M)
      // sampled comparisons, zero I/O, before the payload is staged and
      // freed. The run-count estimate becomes part of the plan-cache key;
      // unprobed jobs (est_runs = 0) hit the legacy entries untouched.
      u64 est_runs = 0;
      if (order_adaptive && payload->size() > ex.mem_records) {
        est_runs = probe_presortedness<R>(std::span<const R>(*payload),
                                          ex.mem_records, cmp)
                       .est_runs;
      }
      auto in = write_input_run<R>(ex.ctx, std::span<const R>(*payload));
      payload->clear();
      payload->shrink_to_fit();
      AdaptiveOptions o;
      o.mem_records = ex.mem_records;
      o.alpha = ex.alpha;
      o.pool = ex.pool;
      o.force = ex.plans.choose(in.size(), ex.mem_records,
                                ex.ctx.rpb<R>(), ex.alpha, est_runs);
      auto res = pdm_sort<R>(ex.ctx, in, o, cmp);
      ex.report = res.report;
      // A cancellation that lands after the last in-sort check still
      // suppresses the completion callback.
      ex.ctx.check_cancelled();
      if (cb) cb(res);
    };
    job.spec = std::move(spec);
    return job;
  }

  /// Submits a sort job over `data` (moved in; freed as soon as the job
  /// has staged it onto the disks). `on_complete`, if given, runs on the
  /// worker thread right after the sort, while the job's output run and
  /// context are still alive — read the output there. Returns the job id
  /// immediately; rejected jobs get JobState::kRejected (never throw).
  template <Record R, class Cmp = std::less<R>>
  JobId submit(SortJobSpec spec, std::vector<R> data, Cmp cmp = {},
               std::function<void(const SortResult<R>&)> on_complete = {}) {
    return submit_prepared(
        prepare<R>(std::move(spec), std::move(data), cmp,
                   std::move(on_complete)));
  }

  /// Admits a prepared job (see prepare()); same contract as submit().
  JobId submit_prepared(PreparedJob job) {
    return submit_impl(std::move(job.spec), job.n, job.record_bytes,
                       job.type_key, std::move(job.run));
  }

  /// A still-queued job pulled back out of the service for migration,
  /// with the local id it held here and its original submission time
  /// (so the receiving shard can preserve wall-clock deadline
  /// semantics).
  struct ExtractedJob {
    JobId local_id = 0;
    PreparedJob job;
    std::chrono::steady_clock::time_point t_submit;
  };

  /// Drain support: removes EVERY still-queued job (claimed and running
  /// ones are untouched — they finish here) and returns them in queue
  /// order as re-submittable PreparedJobs. Each extracted job's record
  /// goes JobState::kMigrated and is dropped from this service — waiters
  /// blocked on it wake with kMigrated and must re-resolve the job's
  /// placement with the owning cluster. The shard's `submitted` lifetime
  /// counter is decremented per extracted job (the job re-counts on
  /// whichever shard re-admits it), keeping cluster-level sums exact.
  std::vector<ExtractedJob> extract_queued();

  /// Hook invoked (on a worker thread, outside the service mutex) each
  /// time a finished task frees memory, a worker slot and pipeline
  /// depth. The owning cluster uses it to pump its hold queue — the
  /// event that drives work stealing. The callback must not call back
  /// into wait()/drain() of this service.
  void set_capacity_callback(std::function<void()> cb);

  /// Cancels a job. Queued jobs (including claimed-but-not-yet-started
  /// batch members) go terminal immediately; running jobs get their
  /// cooperative flag set and stop at the next batch boundary. Returns
  /// true iff the job will reach JobState::kCancelled — for a running job
  /// the sort may already be past its last checkpoint, in which case the
  /// finished work is discarded and the job still reports kCancelled
  /// (the completion callback is suppressed from the last checkpoint on).
  /// False for unknown ids and jobs already terminal.
  bool cancel(JobId id);

  /// Blocks until the job reaches a terminal state; returns its record.
  /// Throws for unknown ids — including records already dropped by the
  /// retention policy, so with retention on, size retain_terminal_max /
  /// retain_ttl_s to cover the window in which callers still wait on
  /// terminal jobs. (A waiter already blocked inside wait() is safe:
  /// it holds the record and returns normally even if evicted meanwhile.)
  JobInfo wait(JobId id);

  /// Blocks until no job is queued or running.
  void drain();

  /// Snapshot of one job (throws on unknown — possibly evicted — id).
  JobInfo info(JobId id) const;

  /// Whether a record (live or terminal) still exists for `id` — false
  /// once forget() or the retention policy dropped it.
  bool known(JobId id) const;

  /// Drops the record of a terminal job explicitly (retention works even
  /// without this — see ServiceConfig::retain_terminal_max/retain_ttl_s).
  /// Returns false if the id is unknown or the job is still
  /// queued/running. Lifetime counters in stats() are unaffected.
  bool forget(JobId id);

  /// Aggregate snapshot. O(1) in the number of retained job records: the
  /// counters are maintained at terminal transitions, and the queue
  /// percentiles come from a lifetime log-bucketed histogram (exact count/
  /// max; quantiles within the histogram's ~6% bucket resolution).
  ServiceStats stats() const;

  /// Per-job snapshots of every retained job, in submission order.
  std::vector<JobInfo> jobs() const;

  /// Instantaneous load (one mutex acquisition) for routing decisions.
  ShardLoad load() const;

  /// The memory carve this service would require of `spec` at admission:
  /// spec.carve_bytes, or slack * mem_records * record_bytes — where the
  /// slack is the per-algorithm constant when `n` is non-zero and the
  /// shape's plan is cached (plan_aware_admission), else the conservative
  /// mem_slack. A carve above budget().limit() means the job would be
  /// rejected — the cluster router spills such jobs to a shard where
  /// they fit.
  usize admission_carve(const SortJobSpec& spec, usize record_bytes,
                        u64 n = 0) const;

  /// Model-time estimate of `spec`'s run (the deadline-admission term):
  /// planned pass count under the cached/derived plan times the parallel-
  /// op cost of `cost`. 0 when the shape defeats estimation. The cluster
  /// pump multiplies this by deadline_cal() to decide whether a parked job
  /// can still meet its deadline.
  double estimate_run_s(const SortJobSpec& spec, usize record_bytes, u64 n);

  /// EMA of observed wall seconds per modeled second over completed jobs
  /// (see ServiceConfig::deadline_calibration); 0 until the first sample.
  double deadline_cal() const;

  /// The service-wide budget (reservations; peak = admission pressure).
  MemoryBudget& budget() noexcept { return budget_; }

  DiskBackend& backend() noexcept { return *backend_; }
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Job;
  struct Claim {
    // shared_ptr: a member that goes terminal mid-batch may be evicted by
    // the retention policy while the batch still runs.
    std::vector<std::shared_ptr<Job>> members;
    usize carve = 0;
  };
  using Clock = std::chrono::steady_clock;

  JobId submit_impl(SortJobSpec spec, u64 n, usize record_bytes, u64 type_key,
                    std::function<void(JobExec&)> run);
  void worker_loop();
  Claim try_claim_locked();
  usize grant_depth_locked();
  usize grant_cpu_locked();
  /// Re-grants freed async depth and CPU threads to still-running jobs
  /// (called when a task releases its grants): each registered running
  /// context is topped up toward the fair share at the current task
  /// count. Depth growth is quiesce-free (AsyncIoScheduler::raise_depth);
  /// CPU growth applies at the job's next parallel region.
  void regrant_locked();
  void update_cpu_gauges_locked();
  void run_claim(Claim& claim, usize depth, usize cpu);
  void run_one(Job& job, PdmContext& ctx);
  JobInfo snapshot_locked(const Job& job) const;
  bool queue_before(const Job& a, const Job& b) const;
  double estimate_run_s(const Job& job);
  /// Bumps the lifetime counters, records the queue-latency sample, and
  /// applies the retention policy. Call once, right after a job's state
  /// goes terminal (t_end set), still under the mutex.
  void on_terminal_locked(Job& job);
  void evict_locked(Clock::time_point now);

  std::shared_ptr<DiskBackend> backend_;
  ServiceConfig cfg_;
  DiskAllocator alloc_;
  MemoryBudget budget_;
  SharedIoTotals io_totals_;
  PlanCache plans_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue or memory changed
  std::condition_variable done_cv_;  // waiters: a job reached terminal
  std::vector<std::thread> workers_;
  // shared_ptr so a wait()er survives a concurrent forget()/eviction.
  std::map<JobId, std::shared_ptr<Job>> jobs_;  // id order = submit order
  std::vector<Job*> pending_;  // sorted: priority desc, EDF, id asc
  JobId next_id_ = 1;
  bool stop_ = false;
  usize active_tasks_ = 0;
  usize depth_in_use_ = 0;
  usize cpu_in_use_ = 0;
  /// Running tasks' contexts with their current grants, registered for
  /// the lifetime of run_claim so regrant_locked can top them up. The
  /// context outlives its entry (deregistered under mu_ before
  /// destruction).
  struct ActiveGrant {
    PdmContext* ctx;
    usize depth;
    usize cpu;
  };
  std::vector<ActiveGrant> active_grants_;
  u64 batches_run_ = 0;
  bool any_start_ = false;
  Clock::time_point first_start_;
  Clock::time_point last_end_;

  // Incremental aggregates (all guarded by mu_).
  u64 submitted_ = 0;
  u64 completed_ = 0;
  u64 failed_ = 0;
  u64 cancelled_ = 0;
  u64 rejected_ = 0;
  u64 deadline_missed_ = 0;
  u64 retained_ = 0;
  u64 evicted_ = 0;
  /// EMA of observed/modeled run time for completed jobs (deadline
  /// calibration); 0 until the first sample.
  double cal_ratio_ = 0;
  static constexpr double kCalibrationEma = 0.3;
  /// Capacity-freed hook (cluster hold-queue pump); guarded by mu_,
  /// invoked outside it.
  std::function<void()> capacity_cb_;
  /// Lifetime queue-latency histogram (nanoseconds). Unlike the bounded
  /// sample ring it replaced, p50/p99 cover every terminal job and the
  /// max can never be evicted by later samples.
  metrics::LogHistogram queue_hist_;
  std::deque<std::pair<JobId, Clock::time_point>> terminal_fifo_;
};

}  // namespace pdm
