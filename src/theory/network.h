// Oblivious "block-sort networks": sequences of operations that each sort
// a fixed index set in a fixed direction. Comparators are the special case
// of 2-element sets, so classical sorting networks embed directly; the
// mesh algorithms' row/column sorts embed as larger ops. The 0-1 principle
// (and our Theorem 3.3 generalization) applies to exactly this class of
// oblivious comparison algorithms.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "util/common.h"

namespace pdm::theory {

struct SortOp {
  std::vector<u32> idx;     // positions to sort together
  bool descending = false;  // direction
};

class BlockSortNetwork {
 public:
  explicit BlockSortNetwork(u32 n) : n_(n) {}

  u32 lines() const noexcept { return n_; }
  usize num_ops() const noexcept { return ops_.size(); }
  const std::vector<SortOp>& ops() const noexcept { return ops_; }

  void add_comparator(u32 a, u32 b);
  void add_sort(std::vector<u32> idx, bool descending = false);

  /// Applies the network to values (size n).
  template <class T>
  void apply(std::span<T> v) const {
    PDM_CHECK(v.size() == n_, "network arity mismatch");
    std::vector<T> tmp;
    for (const auto& op : ops_) {
      if (op.idx.size() == 2) {
        T& a = v[op.idx[0]];
        T& b = v[op.idx[1]];
        const bool swap_needed = op.descending ? (a < b) : (b < a);
        if (swap_needed) std::swap(a, b);
        continue;
      }
      tmp.clear();
      for (u32 i : op.idx) tmp.push_back(v[i]);
      std::sort(tmp.begin(), tmp.end());
      if (op.descending) std::reverse(tmp.begin(), tmp.end());
      for (usize k = 0; k < op.idx.size(); ++k) v[op.idx[k]] = tmp[k];
    }
  }

  /// Drops all but the first `keep` ops (used to build "sorts most inputs"
  /// networks for the generalized 0-1 experiments).
  BlockSortNetwork truncated(usize keep) const;

 private:
  u32 n_;
  std::vector<SortOp> ops_;
};

/// Batcher's odd-even merge sort network (n a power of two).
BlockSortNetwork batcher_sort(u32 n);

/// Bitonic sort network (n a power of two).
BlockSortNetwork bitonic_sort(u32 n);

/// Odd-even transposition sort truncated to `rounds` rounds (full sort
/// needs n rounds).
BlockSortNetwork odd_even_transposition(u32 n, u32 rounds);

/// Shearsort on a rows x cols mesh in snake order, `iterations` row+column
/// phases (full sort needs ceil(log2(rows)) + 1 phases). The sorted order
/// is snake-major.
BlockSortNetwork shearsort(u32 rows, u32 cols, u32 iterations);

/// Indices of the snake order for a rows x cols mesh: entry k is the
/// linear (row-major) position of snake rank k.
std::vector<u32> snake_order(u32 rows, u32 cols);

/// Leighton's 8-step columnsort on an r x c matrix (stored column-major;
/// sorted order is column-major). Correct iff r >= 2(c-1)^2 — the
/// constraint behind the capacity comparisons of Observations 4.1/5.1,
/// whose tightness the theory tests probe by sweeping r below the bound.
BlockSortNetwork columnsort_network(u32 r, u32 c);

}  // namespace pdm::theory
