#include "theory/shuffling_lemma.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace pdm::theory {

double shuffling_bound(u64 n, u64 q, double alpha) {
  const double nd = static_cast<double>(n);
  const double qd = static_cast<double>(q);
  return nd / std::sqrt(qd) *
             std::sqrt((alpha + 2.0) * std::log(nd) + 1.0) +
         nd / qd;
}

ShuffleLemmaResult shuffling_experiment(u64 n, u64 q, double alpha,
                                        Rng& rng) {
  PDM_CHECK(q > 0 && n % q == 0, "q must divide n");
  const u64 m = n / q;
  ShuffleLemmaResult res;
  res.n = n;
  res.q = q;
  res.alpha = alpha;
  res.bound = shuffling_bound(n, q, alpha);

  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  shuffle(perm, rng);
  // Parts are consecutive q-slices of the random permutation (equivalent
  // to a random partition, as the lemma notes). Sort each part.
  for (u64 p = 0; p < m; ++p) {
    std::sort(perm.begin() + static_cast<std::ptrdiff_t>(p * q),
              perm.begin() + static_cast<std::ptrdiff_t>((p + 1) * q));
  }
  // Shuffle: Z[t*m + p] = part_p[t]; value v's sorted position is v.
  u64 max_d = 0;
  double sum_d = 0;
  for (u64 p = 0; p < m; ++p) {
    for (u64 t = 0; t < q; ++t) {
      const u64 z_pos = t * m + p;
      const u64 v = perm[p * q + t];
      const u64 d = z_pos > v ? z_pos - v : v - z_pos;
      max_d = std::max(max_d, d);
      sum_d += static_cast<double>(d);
    }
  }
  res.max_displacement = max_d;
  res.mean_displacement = sum_d / static_cast<double>(n);
  res.within_bound = static_cast<double>(max_d) <= res.bound;
  return res;
}

ShuffleLemmaAggregate shuffling_trials(u64 n, u64 q, double alpha, u64 trials,
                                       Rng& rng) {
  ShuffleLemmaAggregate agg;
  agg.trials = trials;
  for (u64 t = 0; t < trials; ++t) {
    auto r = shuffling_experiment(n, q, alpha, rng);
    if (!r.within_bound) ++agg.violations;
    if (r.max_displacement >= agg.worst.max_displacement) agg.worst = r;
  }
  return agg;
}

}  // namespace pdm::theory
