#include "theory/zero_one.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pdm::theory {

namespace {

template <class T>
bool sorted_under_order(std::span<const T> v, std::span<const u32> order) {
  if (order.empty()) {
    return std::is_sorted(v.begin(), v.end());
  }
  for (usize i = 1; i < order.size(); ++i) {
    if (v[order[i]] < v[order[i - 1]]) return false;
  }
  return true;
}

// log2 of C(n, k), to decide exhaustive vs sampled per-k testing.
double log2_choose(u32 n, u32 k) {
  double s = 0;
  for (u32 i = 0; i < k; ++i) {
    s += std::log2(static_cast<double>(n - i)) -
         std::log2(static_cast<double>(i + 1));
  }
  return s;
}

}  // namespace

BinaryTestReport test_all_binary(const BlockSortNetwork& net,
                                 std::span<const u32> order) {
  const u32 n = net.lines();
  PDM_CHECK(n <= 26, "exhaustive binary test limited to n <= 26");
  BinaryTestReport rep;
  rep.exhaustive = true;
  std::vector<u8> v(n);
  const u64 total = u64{1} << n;
  for (u64 mask = 0; mask < total; ++mask) {
    for (u32 i = 0; i < n; ++i) v[i] = static_cast<u8>((mask >> i) & 1);
    net.apply(std::span<u8>(v));
    ++rep.tested;
    if (!sorted_under_order<u8>(std::span<const u8>(v), order)) {
      ++rep.failures;
    }
  }
  rep.sorts_all = rep.failures == 0;
  return rep;
}

std::vector<u8> sample_k_string(u32 n, u32 k, Rng& rng) {
  std::vector<u8> v(n, 1);
  // Reservoir-style: choose k positions for the zeros.
  std::vector<u32> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  for (u32 i = 0; i < k; ++i) {
    const u32 j = i + static_cast<u32>(rng.below(n - i));
    std::swap(idx[i], idx[j]);
    v[idx[i]] = 0;
  }
  return v;
}

PerKReport estimate_alpha_per_k(const BlockSortNetwork& net,
                                u64 samples_per_k, Rng& rng,
                                std::span<const u32> order,
                                u64 exhaustive_limit) {
  const u32 n = net.lines();
  PerKReport rep;
  rep.alpha_hat.resize(n + 1, 1.0);
  rep.tested.resize(n + 1, 0);
  std::vector<u8> v(n);
  for (u32 k = 0; k <= n; ++k) {
    const double log_cnk = log2_choose(n, k);
    u64 ok = 0;
    u64 tested = 0;
    if (log_cnk <= std::log2(static_cast<double>(exhaustive_limit))) {
      // Enumerate all strings with k zeros via combinations.
      std::vector<u32> comb(k);
      std::iota(comb.begin(), comb.end(), 0u);
      const bool empty_comb = (k == 0);
      bool done = false;
      while (!done) {
        std::fill(v.begin(), v.end(), u8{1});
        for (u32 pos : comb) v[pos] = 0;
        std::vector<u8> w = v;
        net.apply(std::span<u8>(w));
        ++tested;
        if (sorted_under_order<u8>(std::span<const u8>(w), order)) ++ok;
        if (empty_comb) break;
        // Next combination.
        i64 i = static_cast<i64>(k) - 1;
        while (i >= 0 && comb[static_cast<usize>(i)] ==
                             n - k + static_cast<u32>(i)) {
          --i;
        }
        if (i < 0) {
          done = true;
        } else {
          ++comb[static_cast<usize>(i)];
          for (usize j = static_cast<usize>(i) + 1; j < k; ++j) {
            comb[j] = comb[j - 1] + 1;
          }
        }
      }
      rep.exhaustive = true;
    } else {
      for (u64 t = 0; t < samples_per_k; ++t) {
        auto w = sample_k_string(n, k, rng);
        net.apply(std::span<u8>(w));
        ++tested;
        if (sorted_under_order<u8>(std::span<const u8>(w), order)) ++ok;
      }
    }
    rep.alpha_hat[k] =
        tested == 0 ? 1.0
                    : static_cast<double>(ok) / static_cast<double>(tested);
    rep.tested[k] = tested;
    rep.min_alpha = std::min(rep.min_alpha, rep.alpha_hat[k]);
  }
  return rep;
}

double permutation_success_rate(const BlockSortNetwork& net, u64 trials,
                                Rng& rng, std::span<const u32> order) {
  const u32 n = net.lines();
  std::vector<u32> v(n);
  u64 ok = 0;
  for (u64 t = 0; t < trials; ++t) {
    std::iota(v.begin(), v.end(), 0u);
    shuffle(v, rng);
    net.apply(std::span<u32>(v));
    if (sorted_under_order<u32>(std::span<const u32>(v), order)) ++ok;
  }
  return trials == 0 ? 1.0
                     : static_cast<double>(ok) / static_cast<double>(trials);
}

double generalized_zero_one_bound(double alpha, u32 n) {
  const double b = 1.0 - (1.0 - alpha) * (static_cast<double>(n) + 1.0);
  return std::clamp(b, 0.0, 1.0);
}

}  // namespace pdm::theory
