// The generalized 0-1 principle (paper Theorem 3.3 and Appendix A) as an
// executable experiment.
//
// Theorem 3.3: if an oblivious sorting circuit on n lines sorts at least
// an alpha fraction of S_k (the binary strings with exactly k zeros) for
// every k, then it sorts at least 1 - (1-alpha)(n+1) of all permutations.
// zero_one.cpp estimates alpha-hat per k (exhaustively for small n,
// sampled otherwise), evaluates the bound with alpha = min_k alpha-hat_k,
// and measures the true permutation success rate for comparison —
// bench_e10 prints all three so the bound can be checked empirically.
#pragma once

#include <optional>
#include <vector>

#include "theory/network.h"
#include "util/rng.h"

namespace pdm::theory {

struct BinaryTestReport {
  u64 tested = 0;
  u64 failures = 0;
  bool exhaustive = false;
  bool sorts_all = false;
};

/// Tests every binary input (n <= 24 recommended). `order` optionally maps
/// sorted rank -> line index (snake order for meshes); identity if empty.
BinaryTestReport test_all_binary(const BlockSortNetwork& net,
                                 std::span<const u32> order = {});

struct PerKReport {
  std::vector<double> alpha_hat;   // per k = 0..n success fraction
  std::vector<u64> tested;         // samples per k
  double min_alpha = 1.0;
  bool exhaustive = false;
};

/// Estimates the per-k success fractions. Exhaustive when C(n,k) totals
/// are below `exhaustive_limit`, otherwise `samples_per_k` random k-strings.
PerKReport estimate_alpha_per_k(const BlockSortNetwork& net,
                                u64 samples_per_k, Rng& rng,
                                std::span<const u32> order = {},
                                u64 exhaustive_limit = 1u << 20);

/// Fraction of random permutations the network sorts.
double permutation_success_rate(const BlockSortNetwork& net, u64 trials,
                                Rng& rng, std::span<const u32> order = {});

/// Theorem 3.3's guarantee: >= 1 - (1-alpha)(n+1), clamped to [0, 1].
double generalized_zero_one_bound(double alpha, u32 n);

/// Uniformly samples a binary string with exactly k zeros.
std::vector<u8> sample_k_string(u32 n, u32 k, Rng& rng);

}  // namespace pdm::theory
