#include "theory/network.h"

#include <algorithm>

#include "util/math_util.h"

namespace pdm::theory {

void BlockSortNetwork::add_comparator(u32 a, u32 b) {
  PDM_CHECK(a < n_ && b < n_ && a != b, "bad comparator");
  ops_.push_back(SortOp{{a, b}, false});
}

void BlockSortNetwork::add_sort(std::vector<u32> idx, bool descending) {
  for (u32 i : idx) PDM_CHECK(i < n_, "sort op index out of range");
  ops_.push_back(SortOp{std::move(idx), descending});
}

BlockSortNetwork BlockSortNetwork::truncated(usize keep) const {
  BlockSortNetwork t(n_);
  t.ops_.assign(ops_.begin(),
                ops_.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(keep, ops_.size())));
  return t;
}

namespace {

// Batcher odd-even merge of two sorted halves within idx range [lo, lo+n)
// with stride r (classic recursive construction).
void oe_merge(BlockSortNetwork& net, u32 lo, u32 n, u32 r) {
  const u32 step = r * 2;
  if (step < n) {
    oe_merge(net, lo, n, step);
    oe_merge(net, lo + r, n, step);
    for (u32 i = lo + r; i + r < lo + n; i += step) {
      net.add_comparator(i, i + r);
    }
  } else {
    net.add_comparator(lo, lo + r);
  }
}

void oe_sort(BlockSortNetwork& net, u32 lo, u32 n) {
  if (n > 1) {
    const u32 m = n / 2;
    oe_sort(net, lo, m);
    oe_sort(net, lo + m, m);
    oe_merge(net, lo, n, 1);
  }
}

void bitonic_merge(u32 lo, u32 n, bool dir,
                   std::vector<std::pair<std::pair<u32, u32>, bool>>& cmps) {
  if (n > 1) {
    const u32 m = n / 2;
    for (u32 i = lo; i < lo + m; ++i) {
      cmps.push_back({{i, i + m}, dir});
    }
    bitonic_merge(lo, m, dir, cmps);
    bitonic_merge(lo + m, m, dir, cmps);
  }
}

void bitonic_build(u32 lo, u32 n, bool dir,
                   std::vector<std::pair<std::pair<u32, u32>, bool>>& cmps) {
  if (n > 1) {
    const u32 m = n / 2;
    bitonic_build(lo, m, true, cmps);
    bitonic_build(lo + m, m, false, cmps);
    bitonic_merge(lo, n, dir, cmps);
  }
}

}  // namespace

BlockSortNetwork batcher_sort(u32 n) {
  PDM_CHECK(is_pow2(n), "batcher_sort needs a power of two");
  BlockSortNetwork net(n);
  oe_sort(net, 0, n);
  return net;
}

BlockSortNetwork bitonic_sort(u32 n) {
  PDM_CHECK(is_pow2(n), "bitonic_sort needs a power of two");
  BlockSortNetwork net(n);
  std::vector<std::pair<std::pair<u32, u32>, bool>> cmps;
  bitonic_build(0, n, true, cmps);
  for (const auto& [pair, ascending] : cmps) {
    if (ascending) {
      net.add_comparator(pair.first, pair.second);
    } else {
      net.add_sort({pair.first, pair.second}, /*descending=*/true);
    }
  }
  return net;
}

BlockSortNetwork odd_even_transposition(u32 n, u32 rounds) {
  BlockSortNetwork net(n);
  for (u32 r = 0; r < rounds; ++r) {
    for (u32 i = (r % 2); i + 1 < n; i += 2) {
      net.add_comparator(i, i + 1);
    }
  }
  return net;
}

std::vector<u32> snake_order(u32 rows, u32 cols) {
  std::vector<u32> order;
  order.reserve(static_cast<usize>(rows) * cols);
  for (u32 r = 0; r < rows; ++r) {
    if (r % 2 == 0) {
      for (u32 c = 0; c < cols; ++c) order.push_back(r * cols + c);
    } else {
      for (u32 c = cols; c-- > 0;) order.push_back(r * cols + c);
    }
  }
  return order;
}

BlockSortNetwork columnsort_network(u32 r, u32 c) {
  // Matrix stored column-major: position of (row i, col j) is j*r + i.
  BlockSortNetwork net(r * c);
  auto sort_columns = [&net, r, c] {
    for (u32 j = 0; j < c; ++j) {
      std::vector<u32> idx(r);
      for (u32 i = 0; i < r; ++i) idx[i] = j * r + i;
      net.add_sort(std::move(idx), false);
    }
  };
  // Permutations are never materialized; each sort acts on the *source*
  // positions. With network index = column-major rank k = j*r + i:
  // transpose+reshape maps m2's row-major rank k to m1's column-major
  // rank k, so m2's column j' (row-major ranks {i*c + j'}) is the
  // stride-c index set {i*c + j' : i < r}; untranspose maps m3's
  // column-major rank back to m2's row-major rank, i.e. m3's columns are
  // the native columns again.
  sort_columns();  // step 1
  for (u32 j2 = 0; j2 < c; ++j2) {  // steps 2+3
    std::vector<u32> idx;
    idx.reserve(r);
    for (u32 i = 0; i < r; ++i) idx.push_back(i * c + j2);
    net.add_sort(std::move(idx), false);
  }
  sort_columns();  // steps 4+5
  // Steps 6-8: shift by r/2 — sort the r-windows of the column-major
  // order offset by r/2 (the first and last half-windows included).
  {
    const u32 n = r * c;
    const u32 half = r / 2;
    std::vector<u32> first(half);
    for (u32 i = 0; i < half; ++i) first[i] = i;
    net.add_sort(std::move(first), false);
    for (u32 start = half; start < n; start += r) {
      std::vector<u32> idx;
      for (u32 i = start; i < std::min(n, start + r); ++i) idx.push_back(i);
      net.add_sort(std::move(idx), false);
    }
  }
  return net;
}

BlockSortNetwork shearsort(u32 rows, u32 cols, u32 iterations) {
  BlockSortNetwork net(rows * cols);
  for (u32 it = 0; it < iterations; ++it) {
    // Row phase: snake directions.
    for (u32 r = 0; r < rows; ++r) {
      std::vector<u32> idx;
      idx.reserve(cols);
      for (u32 c = 0; c < cols; ++c) idx.push_back(r * cols + c);
      net.add_sort(std::move(idx), /*descending=*/(r % 2) == 1);
    }
    // Column phase.
    for (u32 c = 0; c < cols; ++c) {
      std::vector<u32> idx;
      idx.reserve(rows);
      for (u32 r = 0; r < rows; ++r) idx.push_back(r * cols + c);
      net.add_sort(std::move(idx), false);
    }
  }
  // Final row phase so snake order is fully sorted.
  for (u32 r = 0; r < rows; ++r) {
    std::vector<u32> idx;
    idx.reserve(cols);
    for (u32 c = 0; c < cols; ++c) idx.push_back(r * cols + c);
    net.add_sort(std::move(idx), /*descending=*/(r % 2) == 1);
  }
  return net;
}

}  // namespace pdm::theory
