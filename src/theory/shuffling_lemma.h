// The shuffling lemma (paper §4.1, Lemma 4.2) as a Monte-Carlo
// experiment: partition a random permutation of 1..n into m = n/q parts,
// sort each, shuffle (stride-m interleave), and measure how far records
// land from their sorted positions. The lemma bounds the displacement by
//   (n/sqrt(q)) * sqrt((alpha+2) ln n + 1) + n/q
// with probability >= 1 - n^-alpha. bench_e11 sweeps (n, q) and reports
// measured max displacement against the bound.
#pragma once

#include "util/common.h"
#include "util/rng.h"

namespace pdm::theory {

struct ShuffleLemmaResult {
  u64 n = 0;
  u64 q = 0;
  double alpha = 0;
  u64 max_displacement = 0;
  double mean_displacement = 0;
  double bound = 0;
  bool within_bound = false;
};

/// The lemma's displacement bound.
double shuffling_bound(u64 n, u64 q, double alpha);

/// One trial: random permutation, partition into n/q parts of q, sort
/// parts, shuffle, measure displacements.
ShuffleLemmaResult shuffling_experiment(u64 n, u64 q, double alpha, Rng& rng);

/// Repeats `trials` experiments and returns the worst (max displacement)
/// observation, with `violations` = number of trials exceeding the bound.
struct ShuffleLemmaAggregate {
  ShuffleLemmaResult worst;
  u64 trials = 0;
  u64 violations = 0;
};

ShuffleLemmaAggregate shuffling_trials(u64 n, u64 q, double alpha, u64 trials,
                                       Rng& rng);

}  // namespace pdm::theory
