// A small work-stealing-free thread pool used for (a) issuing parallel disk
// I/O in the file backend and (b) parallel in-memory sorting.
//
// Design notes (C++ Core Guidelines CP.*): tasks are plain std::function
// jobs; the pool is joined in the destructor (RAII); parallel_for blocks the
// caller until all chunks complete, so no dangling references can escape.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"

namespace pdm {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (respecting
  /// the PDMSORT_THREADS environment variable when set).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a job; does not block.
  void submit(std::function<void()> job);

  /// Blocks until every job submitted so far has completed.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Work is split into ~3x-oversubscribed contiguous chunks.
  void parallel_for(usize begin, usize end,
                    const std::function<void(usize, usize)>& chunk_fn);

  /// Process-wide pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  usize in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace pdm
