// Workload generators for tests, examples and benches.
//
// The paper's probability space is "random permutations of N keys"; the
// uniform generators below sample that space. The skewed and structured
// generators exercise correctness on non-random inputs (where only the
// deterministic algorithms give guarantees) and the adversarial generators
// deliberately construct inputs that defeat the expected-pass algorithms'
// displacement bound, forcing the documented fallback path.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "pdm/record.h"
#include "util/common.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace pdm {

/// A sortable record with a payload, for tests/examples that need to verify
/// that payloads travel with their keys.
struct KV64 {
  u64 key;
  u64 value;

  friend bool operator==(const KV64&, const KV64&) = default;
  friend auto operator<=>(const KV64& a, const KV64& b) {
    return a.key <=> b.key;
  }
};
static_assert(sizeof(KV64) == 16);

template <>
struct KeyTraits<KV64> {
  static constexpr u64 key(const KV64& r) noexcept { return r.key; }
};

enum class Dist {
  kUniform,       // i.i.d. uniform u64 keys
  kPermutation,   // random permutation of 0..n-1 (the paper's input model)
  kSorted,        // already sorted
  kReverse,       // reverse sorted
  kFewDistinct,   // keys drawn from a tiny alphabet
  kZipf,          // zipf(1.0)-skewed keys
  kAllEqual,      // one key value
  kNearlySorted,  // sorted with a few random swaps
  kNearSortedDisplaced,  // sorted, shuffled within windows of n/32 (bounded
                         // displacement: replacement selection -> 1 run
                         // whenever the window is at most M/2)
  kClustered,     // 16 ascending key bands, random values within each band
};

inline const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kPermutation: return "permutation";
    case Dist::kSorted: return "sorted";
    case Dist::kReverse: return "reverse";
    case Dist::kFewDistinct: return "few-distinct";
    case Dist::kZipf: return "zipf";
    case Dist::kAllEqual: return "all-equal";
    case Dist::kNearlySorted: return "nearly-sorted";
    case Dist::kNearSortedDisplaced: return "near-sorted-displaced";
    case Dist::kClustered: return "clustered";
  }
  return "?";
}

/// Generates n u64 keys from the given distribution.
inline std::vector<u64> make_keys(usize n, Dist d, Rng& rng) {
  std::vector<u64> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = rng.next();
      break;
    case Dist::kPermutation:
      std::iota(v.begin(), v.end(), u64{0});
      shuffle(v, rng);
      break;
    case Dist::kSorted:
      std::iota(v.begin(), v.end(), u64{0});
      break;
    case Dist::kReverse:
      for (usize i = 0; i < n; ++i) v[i] = static_cast<u64>(n - i);
      break;
    case Dist::kFewDistinct:
      for (auto& x : v) x = rng.below(7) * 1000003ULL;
      break;
    case Dist::kZipf: {
      // Approximate zipf(1.0) over 1..n via inverse-power transform.
      for (auto& x : v) {
        double u = rng.uniform01();
        double rank = std::exp(u * std::log(static_cast<double>(n) + 1.0));
        x = static_cast<u64>(rank);
      }
      break;
    }
    case Dist::kAllEqual:
      std::fill(v.begin(), v.end(), u64{42});
      break;
    case Dist::kNearlySorted: {
      std::iota(v.begin(), v.end(), u64{0});
      const usize swaps = std::max<usize>(1, n / 64);
      for (usize i = 0; i < swaps; ++i) {
        usize a = static_cast<usize>(rng.below(n));
        usize b = static_cast<usize>(rng.below(n));
        std::swap(v[a], v[b]);
      }
      break;
    }
    case Dist::kNearSortedDisplaced: {
      // k-displaced permutation: sorted order shuffled within disjoint
      // windows of k = n/32, so no key sits more than k positions from
      // its sorted slot. Unlike kNearlySorted's sparse global swaps, the
      // disorder here is dense but *bounded* — exactly the structure a
      // replacement-selection heap of M >= 2k absorbs into a single run.
      std::iota(v.begin(), v.end(), u64{0});
      const usize k = std::max<usize>(2, n / 32);
      for (usize w = 0; w < n; w += k) {
        const usize hi = std::min(n, w + k);
        for (usize i = hi - 1; i > w; --i) {  // Fisher-Yates on [w, hi)
          const usize j = w + static_cast<usize>(rng.below(i - w + 1));
          std::swap(v[i], v[j]);
        }
      }
      break;
    }
    case Dist::kClustered: {
      // 16 coarse key bands in ascending order, values uniform within
      // each band: globally ordered structure with local randomness
      // (time-partitioned log ingest). Not a permutation — duplicates
      // can occur within a band.
      const usize clusters = 16;
      const usize per = std::max<usize>(1, ceil_div(n, clusters));
      for (usize i = 0; i < n; ++i) {
        const u64 c = i / per;
        v[i] = (c << 40) | rng.below(u64{1} << 30);
      }
      break;
    }
  }
  return v;
}

/// Generates n KV64 records; the value field encodes the original index so
/// tests can verify payload integrity and stability-agnostic permutation.
inline std::vector<KV64> make_kv(usize n, Dist d, Rng& rng) {
  auto keys = make_keys(n, d, rng);
  std::vector<KV64> v(n);
  for (usize i = 0; i < n; ++i) v[i] = KV64{keys[i], static_cast<u64>(i)};
  return v;
}

/// Integer keys uniform in [0, range) — the §7 IntegerSort input model.
inline std::vector<u64> make_int_keys(usize n, u64 range, Rng& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(range);
  return v;
}

/// Integer keys with zipf-like skew over [0, range) — stress-tests the
/// bucket-occupancy analysis of Theorem 7.1.
inline std::vector<u64> make_skewed_int_keys(usize n, u64 range, Rng& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) {
    double u = rng.uniform01();
    double r = std::exp(u * std::log(static_cast<double>(range)));
    x = std::min<u64>(range - 1, static_cast<u64>(r) - 1);
  }
  return v;
}

/// Adversarial input for the expected-pass algorithms: a rotation by `shift`
/// of the sorted order. Every key's displacement after run formation +
/// shuffle exceeds any chunk bound when shift is large, so the on-line
/// check must fire and the fallback path must run.
inline std::vector<u64> make_rotated(usize n, usize shift) {
  std::vector<u64> v(n);
  for (usize i = 0; i < n; ++i) v[i] = static_cast<u64>((i + shift) % n);
  return v;
}

/// All zeros except a block of ones at the front: maximal displacement 0-1
/// pattern (useful for cleanup failure-detection tests).
inline std::vector<u64> make_ones_block_first(usize n, usize ones) {
  std::vector<u64> v(n, 0);
  for (usize i = 0; i < std::min(n, ones); ++i) v[i] = 1;
  return v;
}

/// Merge adversary: input whose sorted runs force a k-way merge to
/// consume blocks in "waves" that all live on the same disk, defeating
/// forecasting prefetch at ANY lookahead depth.
///
/// Layout assumption: run i starts on disk (i*stride) mod D and its block
/// b sits on disk (start_i + b) mod D (the StripedRun layout; stride from
/// flat_run_start_stride). Construction: run r first consumes a prologue
/// of (D - start_r) mod D blocks of globally-tiny keys, aligning every
/// run's next block on disk 0; thereafter keys interleave round-robin by
/// wave, so in wave k all runs need their block on disk k mod D
/// simultaneously — a 1-block-per-op schedule no prefetch policy can
/// avoid. Oblivious algorithms are unaffected by construction.
inline std::vector<u64> make_merge_adversary(u64 num_runs, u64 run_len,
                                             usize records_per_block,
                                             u32 num_disks, u32 stride) {
  const u64 rpb = records_per_block;
  PDM_CHECK(run_len % rpb == 0, "run_len must be block aligned");
  const u64 blocks_per_run = run_len / rpb;
  std::vector<u64> v;
  v.reserve(static_cast<usize>(num_runs * run_len));
  const u64 main_offset = num_runs * num_disks * rpb * 2;
  for (u64 r = 0; r < num_runs; ++r) {
    const u32 start = static_cast<u32>((r * stride) % num_disks);
    const u64 prologue = (num_disks - start) % num_disks;
    for (u64 b = 0; b < blocks_per_run; ++b) {
      for (u64 t = 0; t < rpb; ++t) {
        if (b < prologue) {
          v.push_back((r * num_disks + b) * rpb + t);  // tiny, per-run
        } else {
          const u64 wave = b - prologue;
          v.push_back(main_offset + (wave * num_runs + r) * rpb + t);
        }
      }
    }
  }
  return v;
}

}  // namespace pdm
