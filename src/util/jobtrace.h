// pdm::jobtrace — job-scoped causal tracing and the failure flight
// recorder.
//
// Every submitted job gets a TraceId minted at admission (cluster or
// service, whichever sees it first) and carried in its SortJobSpec. A
// jobtrace::Scope installed around any code running on the job's behalf
// stamps the id (and the parent id, for distributed range sub-jobs) into
// every pdm::trace event recorded on that thread — so one Chrome trace
// reconstructs the full causal tree of a distributed sort by id alone:
// parent job -> per-range sub-jobs -> their phase spans and I/O tickets.
//
// The FlightRecorder is the always-on half: a small per-job ring of the
// job's last K lifecycle events (admitted, parked, dispatched, stolen,
// migrated, started, phase, finished...), kept even when the full tracer
// is disabled or compiled out (-DPDMSORT_TRACING=OFF), and dumped as
// structured text/JSON when a job ends badly (kFailed / kCancelled /
// deadline-missed) or on demand. Rings are bounded two ways: K events per
// job and a FIFO-evicted cap on tracked jobs, so a long-lived service
// pays a fixed memory cost. Its runtime flag is independent of the
// tracer's (on by default; a disabled recorder costs one relaxed load).
//
// This header depends on nothing but <cstdint>/<string>/<vector>, so
// util/trace can include it to stamp ids without a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdm::jobtrace {

/// Process-unique job trace id; 0 = "no job" (events stay unstamped).
using TraceId = std::uint64_t;

/// Mints a fresh non-zero id (one relaxed atomic increment).
TraceId mint();

namespace detail {
// Thread-local current job identity. Inline so the accessors compile to a
// TLS load — cheap enough to sit on every trace push path.
inline thread_local TraceId t_current = 0;
inline thread_local TraceId t_parent = 0;
}  // namespace detail

/// The job id work on this thread is currently attributed to (0 = none).
inline TraceId current() { return detail::t_current; }
/// The parent id (the distributed job, for range sub-jobs; else 0).
inline TraceId current_parent() { return detail::t_parent; }

/// RAII attribution: everything recorded on this thread while the scope
/// lives is stamped with (id, parent). Nests; restores on destruction.
class Scope {
 public:
  explicit Scope(TraceId id, TraceId parent = 0)
      : saved_id_(detail::t_current), saved_parent_(detail::t_parent) {
    detail::t_current = id;
    detail::t_parent = parent;
  }
  ~Scope() {
    detail::t_current = saved_id_;
    detail::t_parent = saved_parent_;
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  TraceId saved_id_;
  TraceId saved_parent_;
};

/// Lifecycle events a job's flight ring collects.
enum class EventKind : std::uint8_t {
  kAdmitted,      // accepted by a service/cluster (arg0 = shard)
  kRejected,      // admission or pump rejection (detail = why)
  kParked,        // entered the cluster hold queue (detail = park reason)
  kDispatched,    // left the hold queue for a shard (arg0 = shard)
  kStolen,        // dispatched off-home (arg0 = home, arg1 = target)
  kMigrated,      // extracted off a draining shard (arg0 = shard)
  kStarted,       // began executing on a worker (arg0 = shard)
  kPhase,         // sorter phase transition (detail = phase name)
  kFinished,      // terminal (detail = final state name)
  kCancelled,     // cancelled (queued or running)
  kDeadlineMiss,  // finished past its deadline
};

const char* event_kind_name(EventKind k);

/// One flight-ring entry. `detail` is a truncated inline copy (the ring
/// must not hold pointers into job state that dies before the dump).
struct FlightEvent {
  static constexpr std::size_t kDetailBuf = 48;
  std::uint64_t ts_ns = 0;  // monotonic ns since process start
  EventKind kind = EventKind::kAdmitted;
  char detail[kDetailBuf] = {0};
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Per-job bounded event rings, process-global. All methods are
/// thread-safe; record() with id 0 is a no-op.
class FlightRecorder {
 public:
  static constexpr std::size_t kEventsPerJob = 32;
  static constexpr std::size_t kMaxJobs = 1024;  // FIFO-evicted

  static FlightRecorder& instance();

  /// Runtime gate, independent of the tracer's (default ON — the recorder
  /// is the always-on black box; disable it only to shave the last cycles
  /// off admission paths).
  void set_enabled(bool on);
  bool enabled() const;

  /// Sink invoked (synchronously, on the recording thread) with the text
  /// dump of any job finished via note_end() with bad=true. Default null:
  /// dumps are pull-only. Exposed for servers that want crash-log style
  /// emission on failures/deadline misses.
  using DumpSink = void (*)(TraceId id, const std::string& dump);
  void set_dump_on_bad_end(DumpSink sink);

  void record(TraceId id, EventKind kind, const char* detail = nullptr,
              std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// record() + (when `bad`) the dump-on-bad-end sink. Terminal commit
  /// paths call this exactly once per job.
  void note_end(TraceId id, EventKind kind, const char* detail, bool bad,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// The job's retained events, oldest first (empty for unknown ids).
  std::vector<FlightEvent> events(TraceId id) const;
  /// Name of the job's most recent event ("" for unknown ids) — the
  /// introspection "current phase" (the detail of a kPhase, else the
  /// kind name).
  std::string last_event_name(TraceId id) const;

  /// Structured dumps of one job's ring ("" / "{}" for unknown ids).
  std::string dump_text(TraceId id) const;
  std::string dump_json(TraceId id) const;

  /// Drops one job's ring / every ring (tests; long-lived servers rely on
  /// the FIFO cap instead).
  void forget(TraceId id);
  void clear();

 private:
  FlightRecorder();
  struct Impl;
  Impl* impl_;
};

}  // namespace pdm::jobtrace
