// Process-wide metrics: named counters, gauges, and log-bucketed histograms
// with a text exposition dump. Histograms are lifetime-exact in count/sum/max
// and bound quantile error by bucket shape (8 linear sub-buckets per
// power-of-two octave => representative values within ~6.3% of the true
// sample), so p50/p99 never lose the tail the way a bounded sample ring does.
//
// All mutation paths are lock-free atomics; registry lookup (name -> series)
// takes a mutex and is meant for setup/infrequent paths, so callers on hot
// paths should capture the returned reference once (references are stable for
// the registry's lifetime).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pdm::metrics {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Log-bucketed histogram over u64 values. Values 0..7 get exact buckets;
// larger values land in (octave, sub-bucket) cells where octave =
// floor(log2(v)) and the sub-bucket is the next 3 bits, i.e. 8 linear cells
// per octave. quantile() walks the cells nearest-rank style and returns the
// cell midpoint (exact for 0..7; quantile(1) returns the exact max).
class LogHistogram {
 public:
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSub = 1u << kSubBits;  // 8
  static constexpr std::size_t kBuckets = 64 * kSub;   // octave * 8 + sub

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Nearest-rank quantile, q in [0, 1]. Concurrent record() calls may skew a
  // live read by the in-flight samples; exact once writers are quiet.
  std::uint64_t quantile(double q) const;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned octave = std::bit_width(v) - 1;  // >= kSubBits
    const std::uint64_t sub = (v >> (octave - kSubBits)) & (kSub - 1);
    return octave * kSub + static_cast<std::size_t>(sub);
  }
  // Midpoint of the bucket's value range (exact for the 0..7 buckets).
  static std::uint64_t bucket_midpoint(std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Named series. Lookup creates on first use; returned references stay valid
// for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  // Text exposition, one series per line, sorted by name:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   hist <name> count=N sum=S mean=M p50=... p90=... p99=... max=...
  std::string text() const;

  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

// Route trace-span durations into `span.<name>` histograms of the global
// registry (installs the pdm::trace span sink). Idempotent.
void install_span_histograms();

}  // namespace pdm::metrics
