#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace pdm {
namespace {

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& si : s_) si = splitmix64(x);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  PDM_CHECK(bound > 0, "Rng::below(0)");
  // Lemire's nearly-divisionless method.
  u64 x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  u64 l = static_cast<u64>(m);
  if (l < bound) {
    u64 t = (~bound + 1) % bound;  // == 2^64 mod bound
    while (l < t) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

i64 Rng::range(i64 lo, i64 hi) {
  PDM_CHECK(lo <= hi, "Rng::range: lo > hi");
  return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
}

double Rng::normal() {
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace pdm
