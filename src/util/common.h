// Basic shared types and error-checking macros for pdmsort.
//
// The library throws pdm::Error for user-facing misuse (bad geometry,
// capacity exceeded) and uses PDM_ASSERT for internal invariants that
// indicate a bug in the library itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace pdm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Exception type for all user-facing library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a sorter observes a cooperative cancellation flag at a
/// batch boundary (PdmContext::check_cancelled). Callers that run sorts
/// on behalf of others — the sort service — catch it separately from
/// Error so a cancelled job is not reported as a failed one.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc =
                                  std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" +
              std::to_string(loc.line()) + ": " + msg);
}

/// Checks a user-facing precondition; throws pdm::Error on violation.
#define PDM_CHECK(cond, msg)     \
  do {                           \
    if (!(cond)) ::pdm::fail(msg); \
  } while (0)

/// Internal invariant; indicates a library bug if it fires.
#define PDM_ASSERT(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) ::pdm::fail(std::string("internal invariant: ") + msg); \
  } while (0)

}  // namespace pdm
