// Low-overhead phase tracer. Threads record spans ("X" complete events) and
// instants into per-thread ring buffers; TraceLog::write_chrome_json dumps the
// whole session as Chrome trace_event JSON that opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Two gates:
//  - compile time: PDMSORT_TRACING (CMake option, default ON). When OFF the
//    macros expand to nothing and TraceLog becomes an inline no-op stub, so
//    call sites compile either way.
//  - run time: TraceLog::set_enabled(true). Default off; a disabled tracer
//    costs one relaxed atomic load per span.
//
// Span names and categories must be string literals (the ring stores the
// pointer). Dynamic names (algorithm strings) go through the *_dyn calls,
// which copy into a fixed inline buffer. Span durations are mirrored into the
// global metrics registry as `span.<name>` histograms when a sink is
// installed, so metrics_text() shows per-phase totals next to the trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef PDMSORT_TRACING
#define PDMSORT_TRACING 1
#endif

namespace pdm::trace {

/// Per-thread ring usage (TraceLog::ring_occupancy): how full each
/// thread's event ring is and how many events it has overwritten. Defined
/// outside the compile gate so the metrics exposition compiles (to empty
/// data) in -DPDMSORT_TRACING=OFF builds.
struct RingOccupancy {
  std::uint32_t tid = 0;
  std::uint64_t used = 0;      // events currently buffered (<= capacity)
  std::uint64_t capacity = 0;  // ring size in events
  std::uint64_t dropped = 0;   // events overwritten by wrap-around
};

}  // namespace pdm::trace

#if PDMSORT_TRACING

#include <iosfwd>

namespace pdm::trace {

struct TraceEvent {
  static constexpr std::size_t kNameBuf = 32;
  const char* name = nullptr;  // literal; nullptr => name_buf holds a copy
  const char* cat = "";
  char ph = 'X';               // 'X' complete, 'i' instant, 'C' counter
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;    // 'X' only
  const char* arg0_name = nullptr;
  const char* arg1_name = nullptr;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  // Job attribution (pdm::jobtrace): the job id work on the recording
  // thread was scoped to, and its parent id for distributed range
  // sub-jobs. 0 = unattributed. Emitted as "job"/"parent" args in the
  // Chrome JSON so a viewer query reconstructs a job's causal tree.
  std::uint64_t job = 0;
  std::uint64_t parent = 0;
  char name_buf[kNameBuf] = {0};

  const char* name_str() const { return name != nullptr ? name : name_buf; }
};

class TraceLog {
 public:
  static TraceLog& instance();

  void set_enabled(bool on);
  bool enabled() const;

  // Drop all buffered events (rings of exited threads included).
  void clear();
  // Events overwritten because a thread ring wrapped.
  std::uint64_t dropped() const;
  // Per-thread ring usage, for the metrics exposition (trace.ring.* gauges).
  std::vector<RingOccupancy> ring_occupancy() const;

  // Complete event with explicit timestamps — for retro spans whose start was
  // captured on another thread (queue wait, hold park, I/O tickets).
  void complete(const char* cat, const char* name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, const char* arg0_name = nullptr,
                std::uint64_t arg0 = 0, const char* arg1_name = nullptr,
                std::uint64_t arg1 = 0);
  void complete_dyn(const char* cat, const std::string& name,
                    std::uint64_t ts_ns, std::uint64_t dur_ns,
                    const char* arg0_name = nullptr, std::uint64_t arg0 = 0);
  void instant(const char* cat, const char* name,
               const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
               const char* arg1_name = nullptr, std::uint64_t arg1 = 0);
  // Counter track (e.g. per-disk queue depth); renders as a graph in Perfetto.
  void counter(const char* cat, const char* name, std::uint64_t value);
  // Counter with a runtime-built name (copied into the inline buffer).
  void counter_dyn(const char* cat, const std::string& name,
                   std::uint64_t value);

  // Label the calling thread in the trace viewer ("M" metadata row).
  void set_thread_name(const char* name);

  std::vector<TraceEvent> snapshot() const;
  void write_chrome_json(std::ostream& os) const;
  bool write_chrome_json(const std::string& path) const;

  // Monotonic nanoseconds since process start (trace timebase).
  static std::uint64_t now_ns();

 private:
  TraceLog();
  struct Impl;
  Impl* impl_;
};

// RAII span: records a complete event (and a `span.<name>` histogram sample)
// from construction to destruction or end(). No-op if tracing was disabled at
// construction time.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, const char* arg0_name = nullptr,
            std::uint64_t arg0 = 0);
  ~TraceSpan() { end(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void end();
  // Attach/overwrite the arg after construction (e.g. bytes discovered late).
  void set_arg(const char* name, std::uint64_t value);

 private:
  const char* cat_;
  const char* name_;
  const char* arg0_name_;
  std::uint64_t arg0_;
  std::uint64_t start_ns_;
  bool active_;
};

// Mirror span durations into the metrics registry (installed by metrics.h's
// install_span_histograms(); kept as a hook so util/trace has no hard
// dependency on util/metrics).
using SpanSink = void (*)(const char* name, std::uint64_t dur_ns);
void set_span_sink(SpanSink sink);

}  // namespace pdm::trace

#define PDM_TRACE_CAT2(a, b) a##b
#define PDM_TRACE_CAT(a, b) PDM_TRACE_CAT2(a, b)
#define PDM_TRACE_SPAN(cat, name) \
  ::pdm::trace::TraceSpan PDM_TRACE_CAT(pdm_trace_span_, __COUNTER__)(cat, name)
#define PDM_TRACE_SPAN_ARG(cat, name, arg_name, arg_value)          \
  ::pdm::trace::TraceSpan PDM_TRACE_CAT(pdm_trace_span_, __COUNTER__)( \
      cat, name, arg_name, static_cast<std::uint64_t>(arg_value))
#define PDM_TRACE_INSTANT(cat, name) \
  ::pdm::trace::TraceLog::instance().instant(cat, name)
#define PDM_TRACE_INSTANT_ARG(cat, name, arg_name, arg_value)   \
  ::pdm::trace::TraceLog::instance().instant(                   \
      cat, name, arg_name, static_cast<std::uint64_t>(arg_value))
#define PDM_TRACE_COUNTER(cat, name, value)      \
  ::pdm::trace::TraceLog::instance().counter(    \
      cat, name, static_cast<std::uint64_t>(value))

#else  // !PDMSORT_TRACING — every call site compiles to nothing.

namespace pdm::trace {

struct TraceEvent {
  const char* name_str() const { return ""; }
};

class TraceLog {
 public:
  static TraceLog& instance() {
    static TraceLog log;
    return log;
  }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void clear() {}
  std::uint64_t dropped() const { return 0; }
  std::vector<RingOccupancy> ring_occupancy() const { return {}; }
  void complete(const char*, const char*, std::uint64_t, std::uint64_t,
                const char* = nullptr, std::uint64_t = 0,
                const char* = nullptr, std::uint64_t = 0) {}
  void complete_dyn(const char*, const std::string&, std::uint64_t,
                    std::uint64_t, const char* = nullptr,
                    std::uint64_t = 0) {}
  void instant(const char*, const char*, const char* = nullptr,
               std::uint64_t = 0, const char* = nullptr, std::uint64_t = 0) {}
  void counter(const char*, const char*, std::uint64_t) {}
  void counter_dyn(const char*, const std::string&, std::uint64_t) {}
  void set_thread_name(const char*) {}
  std::vector<TraceEvent> snapshot() const { return {}; }
  template <typename Os>
  void write_chrome_json(Os&) const {}
  bool write_chrome_json(const std::string&) const { return false; }
  static std::uint64_t now_ns() { return 0; }
};

class TraceSpan {
 public:
  TraceSpan(const char*, const char*, const char* = nullptr,
            std::uint64_t = 0) {}
  void end() {}
  void set_arg(const char*, std::uint64_t) {}
};

using SpanSink = void (*)(const char*, std::uint64_t);
inline void set_span_sink(SpanSink) {}

}  // namespace pdm::trace

#define PDM_TRACE_SPAN(cat, name) \
  do {                            \
  } while (0)
#define PDM_TRACE_SPAN_ARG(cat, name, arg_name, arg_value) \
  do {                                                     \
  } while (0)
#define PDM_TRACE_INSTANT(cat, name) \
  do {                               \
  } while (0)
#define PDM_TRACE_INSTANT_ARG(cat, name, arg_name, arg_value) \
  do {                                                        \
  } while (0)
#define PDM_TRACE_COUNTER(cat, name, value) \
  do {                                      \
  } while (0)

#endif  // PDMSORT_TRACING
