// Markdown / aligned-text table printer used by the benchmark harness so
// every bench binary prints the paper-style rows in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/common.h"

namespace pdm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(double v, int precision = 3);
  Table& cell(u64 v);
  Table& cell(i64 v);
  Table& cell(int v);
  Table& cell(bool v);

  /// Renders as a GitHub-flavoured markdown table with aligned columns.
  std::string to_string() const;

  /// Prints to the stream followed by a blank line.
  void print(std::ostream& os) const;

  usize num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string fmt_double(double v, int precision = 3);

/// Formats 12345678 as "12.35M" etc. for readable record counts.
std::string fmt_count(u64 v);

}  // namespace pdm
