#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace pdm {
namespace {

std::atomic<int> g_level{-1};
std::mutex g_emit_mu;

LogLevel level_from_env() {
  const char* env = std::getenv("PDMSORT_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  // Build the whole line first and emit it as ONE stream write. std::cerr is
  // unit-buffered: with piecewise insertion each `<<` reaches the terminal
  // separately, so output from threads writing to cerr outside this mutex
  // (tests redirecting rdbuf, third-party code) could land mid-line.
  std::string line;
  line.reserve(msg.size() + 24);
  line += "[pdmsort ";
  line += names[static_cast<int>(level)];
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard lock(g_emit_mu);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace detail
}  // namespace pdm
