// Leveled logging. Default level is WARN so tests stay quiet; examples and
// benches raise it via pdm::set_log_level or the PDMSORT_LOG env variable
// (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace pdm {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define PDM_LOG(level, expr)                                        \
  do {                                                              \
    if (static_cast<int>(level) <= static_cast<int>(::pdm::log_level())) { \
      std::ostringstream pdm_log_os;                                \
      pdm_log_os << expr;                                           \
      ::pdm::detail::log_emit(level, pdm_log_os.str());             \
    }                                                               \
  } while (0)

#define PDM_INFO(expr) PDM_LOG(::pdm::LogLevel::kInfo, expr)
#define PDM_WARN(expr) PDM_LOG(::pdm::LogLevel::kWarn, expr)
#define PDM_DEBUG(expr) PDM_LOG(::pdm::LogLevel::kDebug, expr)

}  // namespace pdm
