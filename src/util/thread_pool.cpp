#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace pdm {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    if (const char* env = std::getenv("PDMSORT_THREADS")) {
      threads = static_cast<unsigned>(std::atoi(env));
    }
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    usize begin, usize end,
    const std::function<void(usize, usize)>& chunk_fn) {
  if (begin >= end) return;
  const usize n = end - begin;
  const usize chunks = std::min<usize>(n, static_cast<usize>(size()) * 3);
  if (chunks <= 1) {
    chunk_fn(begin, end);
    return;
  }
  const usize step = (n + chunks - 1) / chunks;
  std::mutex done_mu;
  std::condition_variable done_cv;
  usize remaining = 0;
  for (usize lo = begin; lo < end; lo += step) ++remaining;
  usize left = remaining;
  std::exception_ptr first_error;
  for (usize lo = begin; lo < end; lo += step) {
    const usize hi = std::min(end, lo + step);
    submit([&, lo, hi] {
      try {
        chunk_fn(lo, hi);
      } catch (...) {
        std::lock_guard g(done_mu);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard g(done_mu);
      if (--left == 0) done_cv.notify_one();
    });
  }
  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return left == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pdm
