#include "util/metrics.h"

#include <cmath>
#include <sstream>

#include "util/trace.h"

namespace pdm::metrics {

std::uint64_t LogHistogram::bucket_midpoint(std::size_t index) {
  if (index < kSub) return index;
  const unsigned octave = static_cast<unsigned>(index / kSub);
  const std::uint64_t sub = index % kSub;
  const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
  const std::uint64_t lo = (std::uint64_t{1} << octave) + sub * width;
  return lo + width / 2;
}

std::uint64_t LogHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q >= 1.0) return max();
  if (q < 0.0) q = 0.0;
  // Nearest-rank: the ceil(q*n)-th smallest sample (1-based), min rank 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_midpoint(i);
  }
  return max();  // racing writers: fall back to the tracked max
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::string Registry::text() const {
  // Refresh tracer-health gauges first: gauge() takes mu_, which is not
  // recursive, so this must happen before the exposition lock below. In
  // -DPDMSORT_TRACING=OFF builds dropped() is constant 0 and the ring list
  // is empty, so the exposition still carries the trace.dropped_total line.
  Registry& self = const_cast<Registry&>(*this);
  self.gauge("trace.dropped_total")
      .set(static_cast<std::int64_t>(trace::TraceLog::instance().dropped()));
  for (const auto& occ : trace::TraceLog::instance().ring_occupancy()) {
    const std::string prefix = "trace.ring.tid" + std::to_string(occ.tid);
    self.gauge(prefix + ".used").set(static_cast<std::int64_t>(occ.used));
    self.gauge(prefix + ".dropped")
        .set(static_cast<std::int64_t>(occ.dropped));
  }
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << "counter " << name << ' ' << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    os << "gauge " << name << ' ' << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    os << "hist " << name << " count=" << h->count() << " sum=" << h->sum()
       << " mean=" << h->mean() << " p50=" << h->quantile(0.5)
       << " p90=" << h->quantile(0.9) << " p99=" << h->quantile(0.99)
       << " max=" << h->max() << '\n';
  }
  return os.str();
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: usable during static dtors
  return *reg;
}

namespace {

void span_sink(const char* name, std::uint64_t dur_ns) {
  Registry::global().histogram(std::string("span.") + name).record(dur_ns);
}

}  // namespace

void install_span_histograms() {
  trace::set_span_sink(&span_sink);
}

}  // namespace pdm::metrics
