#include "util/cli.h"

#include <cstdlib>

namespace pdm {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

u64 Cli::get_u64(const std::string& key, u64 def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace pdm
