// Minimal --key=value command-line parser for examples and bench binaries.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/common.h"

namespace pdm {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  u64 get_u64(const std::string& key, u64 def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace pdm
