// pdm::introspect — live state snapshots for serving debuggability.
//
// A StateDump is one coherent picture of a cluster (or a single service)
// at a point in time: every in-flight job with its current phase and
// elapsed times, the hold queue with park reasons, per-shard load, and
// the metrics registry's text exposition. Cluster::dump_state() fills
// one; to_text()/to_json() render it for logs, SIGUSR1 handlers and the
// `--introspect-every` loop of example_cluster_serve.
//
// This header is dependency-light (plain structs over std types) so the
// cluster can include it without cycles, and so it compiles unchanged in
// -DPDMSORT_TRACING=OFF builds: phases come from the flight recorder,
// which is always on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdm::introspect {

/// One job queued or running on a shard.
struct JobSnapshot {
  std::uint64_t id = 0;        // cluster (or service) job id
  std::uint64_t trace_id = 0;  // jobtrace causal id
  std::string name;
  std::uint32_t shard = 0;
  std::string state;  // "queued" / "running"
  std::string phase;  // flight recorder's latest event (algorithm once known)
  std::uint64_t n = 0;
  int priority = 0;
  double queue_s = 0;  // submit -> start (or elapsed in queue)
  double run_s = 0;    // elapsed since start (0 while queued)
};

/// One job parked in the cluster hold queue.
struct HeldSnapshot {
  std::uint64_t id = 0;
  std::uint64_t trace_id = 0;
  std::string name;
  std::uint32_t home = 0;  // placed shard that lacked headroom
  std::string park_reason;
  std::uint64_t n = 0;
  int priority = 0;
  double parked_s = 0;
};

/// One shard's load at snapshot time.
struct ShardSnapshot {
  std::uint32_t shard = 0;
  bool active = false;
  std::uint64_t queued = 0;
  std::uint64_t running = 0;
  std::uint64_t workers = 0;
  std::uint64_t reserved_bytes = 0;
  std::uint64_t budget_limit = 0;
  std::uint64_t cpu_in_use = 0;  // kernel threads granted by the arbiter
  std::uint64_t cpu_total = 0;   // the shard's cpu_threads_total budget
};

struct StateDump {
  std::vector<JobSnapshot> in_flight;
  std::vector<HeldSnapshot> held;
  std::vector<ShardSnapshot> shards;
  std::uint64_t distributed_active = 0;
  std::string metrics;  // metrics::Registry text exposition
};

/// Human-readable multi-line rendering (stable, grep-friendly prefixes:
/// "introspect:", "  job ", "  held ", "  shard ").
std::string to_text(const StateDump& d);

/// Single-object JSON rendering (keys mirror the struct fields).
std::string to_json(const StateDump& d);

}  // namespace pdm::introspect
