#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pdm {

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  PDM_CHECK(!rows_.empty(), "Table::cell before row()");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }
Table& Table::cell(double v, int precision) { return cell(fmt_double(v, precision)); }
Table& Table::cell(u64 v) { return cell(std::to_string(v)); }
Table& Table::cell(i64 v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(bool v) { return cell(std::string(v ? "yes" : "no")); }

std::string Table::to_string() const {
  std::vector<usize> width(headers_.size());
  for (usize c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (usize c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (usize c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << " " << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (usize c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string() << "\n"; }

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_count(u64 v) {
  const char* suffix[] = {"", "K", "M", "G", "T"};
  double d = static_cast<double>(v);
  int i = 0;
  while (d >= 1000.0 && i < 4) {
    d /= 1000.0;
    ++i;
  }
  std::ostringstream os;
  if (i == 0) {
    os << v;
  } else {
    os << std::fixed << std::setprecision(d < 10 ? 2 : (d < 100 ? 1 : 0)) << d
       << suffix[i];
  }
  return os.str();
}

}  // namespace pdm
