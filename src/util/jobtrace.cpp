#include "util/jobtrace.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

namespace pdm::jobtrace {

namespace {

std::atomic<TraceId> g_next_id{1};

// The recorder keeps its own epoch so flight timestamps work even in
// builds where the tracer (and its clock) is compiled out.
std::chrono::steady_clock::time_point flight_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

[[maybe_unused]] const auto g_epoch_init = flight_epoch();

std::uint64_t flight_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - flight_epoch())
          .count());
}

void write_json_string(std::ostringstream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

TraceId mint() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAdmitted: return "admitted";
    case EventKind::kRejected: return "rejected";
    case EventKind::kParked: return "parked";
    case EventKind::kDispatched: return "dispatched";
    case EventKind::kStolen: return "stolen";
    case EventKind::kMigrated: return "migrated";
    case EventKind::kStarted: return "started";
    case EventKind::kPhase: return "phase";
    case EventKind::kFinished: return "finished";
    case EventKind::kCancelled: return "cancelled";
    case EventKind::kDeadlineMiss: return "deadline_miss";
  }
  return "?";
}

/// One job's ring: a fixed array cycled by a head counter (same shape as
/// the tracer's per-thread rings, scaled down to K lifecycle events).
struct FlightRing {
  FlightEvent events[FlightRecorder::kEventsPerJob];
  std::uint64_t head = 0;  // total ever pushed; slot = head % K

  void push(const FlightEvent& ev) {
    events[head % FlightRecorder::kEventsPerJob] = ev;
    ++head;
  }
};

struct FlightRecorder::Impl {
  std::atomic<bool> enabled{true};
  std::atomic<DumpSink> sink{nullptr};
  mutable std::mutex mu;
  std::map<TraceId, FlightRing> rings;
  std::deque<TraceId> fifo;  // insertion order, for the kMaxJobs cap

  FlightRing& ring_locked(TraceId id) {
    auto [it, inserted] = rings.try_emplace(id);
    if (inserted) {
      fifo.push_back(id);
      // FIFO entries may be stale after forget(); popping one just
      // advances the cursor.
      while (rings.size() > kMaxJobs && !fifo.empty()) {
        rings.erase(fifo.front());
        fifo.pop_front();
      }
    }
    return it->second;
  }

  std::vector<FlightEvent> snapshot(TraceId id) const {
    std::lock_guard lock(mu);
    auto it = rings.find(id);
    if (it == rings.end()) return {};
    const FlightRing& r = it->second;
    const std::uint64_t n = std::min<std::uint64_t>(r.head, kEventsPerJob);
    std::vector<FlightEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = r.head - n; i < r.head; ++i) {
      out.push_back(r.events[i % kEventsPerJob]);
    }
    return out;
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* rec = new FlightRecorder();  // leaked: static-dtor safe
  return *rec;
}

void FlightRecorder::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::set_dump_on_bad_end(DumpSink sink) {
  impl_->sink.store(sink, std::memory_order_release);
}

void FlightRecorder::record(TraceId id, EventKind kind, const char* detail,
                            std::uint64_t arg0, std::uint64_t arg1) {
  if (id == 0 || !enabled()) return;
  FlightEvent ev;
  ev.ts_ns = flight_now_ns();
  ev.kind = kind;
  if (detail != nullptr) {
    std::strncpy(ev.detail, detail, FlightEvent::kDetailBuf - 1);
  }
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  std::lock_guard lock(impl_->mu);
  impl_->ring_locked(id).push(ev);
}

void FlightRecorder::note_end(TraceId id, EventKind kind, const char* detail,
                              bool bad, std::uint64_t arg0,
                              std::uint64_t arg1) {
  record(id, kind, detail, arg0, arg1);
  if (!bad || id == 0 || !enabled()) return;
  if (DumpSink sink = impl_->sink.load(std::memory_order_acquire)) {
    sink(id, dump_text(id));
  }
}

std::vector<FlightEvent> FlightRecorder::events(TraceId id) const {
  return impl_->snapshot(id);
}

std::string FlightRecorder::last_event_name(TraceId id) const {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->rings.find(id);
  if (it == impl_->rings.end() || it->second.head == 0) return "";
  const FlightEvent& ev =
      it->second.events[(it->second.head - 1) % kEventsPerJob];
  if (ev.kind == EventKind::kPhase && ev.detail[0] != '\0') return ev.detail;
  return event_kind_name(ev.kind);
}

std::string FlightRecorder::dump_text(TraceId id) const {
  const auto evs = impl_->snapshot(id);
  if (evs.empty()) return "";
  std::ostringstream os;
  os << "flight job=" << id << " events=" << evs.size() << '\n';
  for (const FlightEvent& ev : evs) {
    os << "  +" << ev.ts_ns / 1000000 << '.' << (ev.ts_ns / 1000) % 1000
       << "ms " << event_kind_name(ev.kind);
    if (ev.detail[0] != '\0') os << " \"" << ev.detail << '"';
    if (ev.arg0 != 0 || ev.arg1 != 0) {
      os << " [" << ev.arg0 << ", " << ev.arg1 << ']';
    }
    os << '\n';
  }
  return os.str();
}

std::string FlightRecorder::dump_json(TraceId id) const {
  const auto evs = impl_->snapshot(id);
  std::ostringstream os;
  os << "{\"job\":" << id << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& ev : evs) {
    if (!first) os << ',';
    first = false;
    os << "{\"ts_ns\":" << ev.ts_ns << ",\"kind\":";
    write_json_string(os, event_kind_name(ev.kind));
    if (ev.detail[0] != '\0') {
      os << ",\"detail\":";
      write_json_string(os, ev.detail);
    }
    if (ev.arg0 != 0 || ev.arg1 != 0) {
      os << ",\"arg0\":" << ev.arg0 << ",\"arg1\":" << ev.arg1;
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void FlightRecorder::forget(TraceId id) {
  std::lock_guard lock(impl_->mu);
  impl_->rings.erase(id);
}

void FlightRecorder::clear() {
  std::lock_guard lock(impl_->mu);
  impl_->rings.clear();
  impl_->fifo.clear();
}

}  // namespace pdm::jobtrace
