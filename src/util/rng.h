// Deterministic, seedable RNG (xoshiro256**) plus distribution helpers.
//
// All randomized components of the library draw from pdm::Rng so every
// experiment is reproducible from a single seed printed in its report.
#pragma once

#include <array>
#include <limits>

#include "util/common.h"

namespace pdm {

/// xoshiro256** by Blackman & Vigna; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(u64 seed);

  /// Uniform u64 over the full range.
  u64 next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  u64 below(u64 bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi);

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal via Box-Muller (no state caching; fine for our use).
  double normal();

 private:
  std::array<u64, 4> s_{};
};

/// Fisher-Yates shuffle of an arbitrary indexable container.
template <class Container>
void shuffle(Container& c, Rng& rng) {
  const usize n = c.size();
  for (usize i = n; i > 1; --i) {
    usize j = static_cast<usize>(rng.below(i));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace pdm
