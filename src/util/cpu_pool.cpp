#include "util/cpu_pool.h"

#include "util/trace.h"

namespace pdm {

CpuPool::CpuPool(usize budget) : budget_(budget == 0 ? usize{1} : budget) {}

CpuPool::~CpuPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : helpers_) t.join();
}

void CpuPool::set_budget(usize threads) {
  budget_.store(threads == 0 ? usize{1} : threads, std::memory_order_relaxed);
}

void CpuPool::ensure_helpers_locked(usize want) {
  while (helpers_.size() < want) {
    helpers_.emplace_back([this] { helper_loop(); });
  }
}

void CpuPool::work(Region& r) {
  for (;;) {
    const usize i = r.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= r.num_chunks) return;
    try {
      (*r.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!r.error) r.error = std::current_exception();
      // Fast-forward so every participant drains without running more
      // chunks; the caller rethrows after the region quiesces.
      r.next.store(r.num_chunks, std::memory_order_relaxed);
    }
  }
}

void CpuPool::helper_loop() {
  trace::TraceLog::instance().set_thread_name("pdm-cpu");
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return stop_ || (region_ != nullptr && region_->slots > 0);
    });
    if (stop_) return;
    Region& r = *region_;
    --r.slots;
    ++r.active;
    lk.unlock();
    {
      PDM_TRACE_SPAN("kernel", "cpu_pool.helper");
      work(r);
    }
    lk.lock();
    if (--r.active == 0) done_cv_.notify_all();
  }
}

void CpuPool::run_chunks(usize num_chunks,
                         const std::function<void(usize)>& fn) {
  if (num_chunks == 0) return;
  const usize budget = budget_.load(std::memory_order_relaxed);
  if (budget <= 1 || num_chunks == 1) {
    // Serial path: inline, in index order — bit-identical to the legacy
    // single-threaded kernels and free of any pool state.
    for (usize i = 0; i < num_chunks; ++i) fn(i);
    return;
  }

  Region r;
  r.fn = &fn;
  r.num_chunks = num_chunks;
  r.slots = std::min(budget - 1, num_chunks - 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    PDM_ASSERT(region_ == nullptr, "cpu_pool: nested parallel region");
    ensure_helpers_locked(r.slots);
    region_ = &r;
  }
  work_cv_.notify_all();

  work(r);  // the caller is a full participant

  std::unique_lock<std::mutex> lk(mu_);
  region_ = nullptr;  // helpers that missed the window stay parked
  done_cv_.wait(lk, [&r] { return r.active == 0; });
  std::exception_ptr err = r.error;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

void CpuPool::parallel_ranges(usize begin, usize end, usize chunks,
                              const std::function<void(usize, usize)>& fn) {
  const usize n = end - begin;
  if (n == 0) return;
  if (chunks > n) chunks = n;
  if (chunks == 0) chunks = 1;
  run_chunks(chunks, [&](usize c) {
    const usize lo = begin + n * c / chunks;
    const usize hi = begin + n * (c + 1) / chunks;
    fn(lo, hi);
  });
}

}  // namespace pdm
