#include "util/trace.h"

#include "util/jobtrace.h"

#if PDMSORT_TRACING

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

namespace pdm::trace {
namespace {

constexpr std::size_t kRingCapacity = 16384;  // events per thread

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so the first span does not pay for it.
[[maybe_unused]] const auto g_epoch_init = process_epoch();

std::atomic<SpanSink> g_span_sink{nullptr};

struct Ring {
  explicit Ring(std::uint32_t tid_in) : tid(tid_in) { events.resize(kRingCapacity); }
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t head = 0;  // total events ever pushed; slot = head % capacity
  std::uint32_t tid;
  char thread_name[TraceEvent::kNameBuf] = {0};

  void push(const TraceEvent& ev) {
    std::lock_guard lock(mu);
    events[head % kRingCapacity] = ev;
    ++head;
  }
};

}  // namespace

// Per-thread slot: the ring is created lazily on the first recorded event,
// so threads that only name themselves (or never trace) cost no ring memory.
struct LocalSlot {
  std::shared_ptr<Ring> ring;
  char pending_name[TraceEvent::kNameBuf] = {0};
};

LocalSlot& local_slot() {
  thread_local LocalSlot slot;
  return slot;
}

struct TraceLog::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex registry_mu;
  // shared_ptr so rings survive thread exit until snapshot/clear.
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint32_t next_tid = 1;

  Ring& local_ring() {
    LocalSlot& slot = local_slot();
    if (!slot.ring) {
      std::lock_guard lock(registry_mu);
      slot.ring = std::make_shared<Ring>(next_tid++);
      std::memcpy(slot.ring->thread_name, slot.pending_name,
                  TraceEvent::kNameBuf);
      rings.push_back(slot.ring);
    }
    return *slot.ring;
  }

  std::vector<std::shared_ptr<Ring>> ring_snapshot() const {
    std::lock_guard lock(registry_mu);
    return rings;
  }
};

TraceLog::TraceLog() : impl_(new Impl) {}

TraceLog& TraceLog::instance() {
  static TraceLog* log = new TraceLog();  // leaked: usable during static dtors
  return *log;
}

void TraceLog::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool TraceLog::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TraceLog::clear() {
  auto rings = impl_->ring_snapshot();
  for (auto& r : rings) {
    std::lock_guard lock(r->mu);
    r->head = 0;
  }
}

std::uint64_t TraceLog::dropped() const {
  std::uint64_t total = 0;
  for (auto& r : impl_->ring_snapshot()) {
    std::lock_guard lock(r->mu);
    if (r->head > kRingCapacity) total += r->head - kRingCapacity;
  }
  return total;
}

std::vector<RingOccupancy> TraceLog::ring_occupancy() const {
  std::vector<RingOccupancy> out;
  for (auto& r : impl_->ring_snapshot()) {
    std::lock_guard lock(r->mu);
    RingOccupancy occ;
    occ.tid = r->tid;
    occ.used = std::min<std::uint64_t>(r->head, kRingCapacity);
    occ.capacity = kRingCapacity;
    occ.dropped = r->head > kRingCapacity ? r->head - kRingCapacity : 0;
    out.push_back(occ);
  }
  return out;
}

std::uint64_t TraceLog::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

void TraceLog::complete(const char* cat, const char* name, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, const char* arg0_name,
                        std::uint64_t arg0, const char* arg1_name,
                        std::uint64_t arg1) {
  if (!enabled()) return;
  Ring& ring = impl_->local_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.tid = ring.tid;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.job = jobtrace::current();
  ev.parent = jobtrace::current_parent();
  ring.push(ev);
  if (SpanSink sink = g_span_sink.load(std::memory_order_acquire))
    sink(name, dur_ns);
}

void TraceLog::complete_dyn(const char* cat, const std::string& name,
                            std::uint64_t ts_ns, std::uint64_t dur_ns,
                            const char* arg0_name, std::uint64_t arg0) {
  if (!enabled()) return;
  Ring& ring = impl_->local_ring();
  TraceEvent ev;
  ev.name = nullptr;
  std::strncpy(ev.name_buf, name.c_str(), TraceEvent::kNameBuf - 1);
  ev.cat = cat;
  ev.ph = 'X';
  ev.tid = ring.tid;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.job = jobtrace::current();
  ev.parent = jobtrace::current_parent();
  ring.push(ev);
  if (SpanSink sink = g_span_sink.load(std::memory_order_acquire))
    sink(ev.name_buf, dur_ns);
}

void TraceLog::instant(const char* cat, const char* name,
                       const char* arg0_name, std::uint64_t arg0,
                       const char* arg1_name, std::uint64_t arg1) {
  if (!enabled()) return;
  Ring& ring = impl_->local_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.tid = ring.tid;
  ev.ts_ns = now_ns();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.job = jobtrace::current();
  ev.parent = jobtrace::current_parent();
  ring.push(ev);
}

void TraceLog::counter(const char* cat, const char* name, std::uint64_t value) {
  if (!enabled()) return;
  Ring& ring = impl_->local_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'C';
  ev.tid = ring.tid;
  ev.ts_ns = now_ns();
  ev.arg0_name = "value";
  ev.arg0 = value;
  ev.job = jobtrace::current();
  ev.parent = jobtrace::current_parent();
  ring.push(ev);
}

void TraceLog::counter_dyn(const char* cat, const std::string& name,
                           std::uint64_t value) {
  if (!enabled()) return;
  Ring& ring = impl_->local_ring();
  TraceEvent ev;
  ev.name = nullptr;
  std::strncpy(ev.name_buf, name.c_str(), TraceEvent::kNameBuf - 1);
  ev.cat = cat;
  ev.ph = 'C';
  ev.tid = ring.tid;
  ev.ts_ns = now_ns();
  ev.arg0_name = "value";
  ev.arg0 = value;
  ev.job = jobtrace::current();
  ev.parent = jobtrace::current_parent();
  ring.push(ev);
}

void TraceLog::set_thread_name(const char* name) {
  LocalSlot& slot = local_slot();
  if (slot.ring) {
    std::lock_guard lock(slot.ring->mu);
    std::strncpy(slot.ring->thread_name, name, TraceEvent::kNameBuf - 1);
  } else {
    // No ring yet (tracing may be off): stash the name; local_ring() copies
    // it over if this thread ever records.
    std::strncpy(slot.pending_name, name, TraceEvent::kNameBuf - 1);
  }
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::vector<TraceEvent> out;
  for (auto& r : impl_->ring_snapshot()) {
    std::lock_guard lock(r->mu);
    const std::uint64_t n = std::min<std::uint64_t>(r->head, kRingCapacity);
    const std::uint64_t start = r->head - n;
    for (std::uint64_t i = start; i < r->head; ++i)
      out.push_back(r->events[i % kRingCapacity]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

namespace {

void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // control chars never appear in our names; keep it simple
    } else {
      os << c;
    }
  }
  os << '"';
}

// ts/dur in microseconds with nanosecond precision, no float rounding.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

}  // namespace

void TraceLog::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows first.
  for (auto& r : impl_->ring_snapshot()) {
    std::lock_guard lock(r->mu);
    if (r->thread_name[0] == '\0') continue;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << r->tid
       << ",\"args\":{\"name\":";
    write_json_string(os, r->thread_name);
    os << "}}";
  }
  for (const TraceEvent& ev : snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_string(os, ev.name_str());
    os << ",\"cat\":";
    write_json_string(os, ev.cat);
    os << ",\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":";
    write_us(os, ev.ts_ns);
    if (ev.ph == 'X') {
      os << ",\"dur\":";
      write_us(os, ev.dur_ns);
    }
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    if (ev.arg0_name != nullptr || ev.arg1_name != nullptr || ev.job != 0) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (ev.arg0_name != nullptr) {
        write_json_string(os, ev.arg0_name);
        os << ':' << ev.arg0;
        first_arg = false;
      }
      if (ev.arg1_name != nullptr) {
        if (!first_arg) os << ',';
        write_json_string(os, ev.arg1_name);
        os << ':' << ev.arg1;
        first_arg = false;
      }
      if (ev.job != 0) {
        if (!first_arg) os << ',';
        os << "\"job\":" << ev.job;
        if (ev.parent != 0) os << ",\"parent\":" << ev.parent;
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}\n";
}

bool TraceLog::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  write_chrome_json(out);
  return out.good();
}

TraceSpan::TraceSpan(const char* cat, const char* name, const char* arg0_name,
                     std::uint64_t arg0)
    : cat_(cat),
      name_(name),
      arg0_name_(arg0_name),
      arg0_(arg0),
      start_ns_(0),
      active_(TraceLog::instance().enabled()) {
  if (active_) start_ns_ = TraceLog::now_ns();
}

void TraceSpan::end() {
  if (!active_) return;
  active_ = false;
  const std::uint64_t end_ns = TraceLog::now_ns();
  TraceLog::instance().complete(cat_, name_, start_ns_, end_ns - start_ns_,
                                arg0_name_, arg0_);
}

void TraceSpan::set_arg(const char* name, std::uint64_t value) {
  arg0_name_ = name;
  arg0_ = value;
}

void set_span_sink(SpanSink sink) {
  g_span_sink.store(sink, std::memory_order_release);
}

}  // namespace pdm::trace

#endif  // PDMSORT_TRACING
