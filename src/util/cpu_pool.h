// pdm::CpuPool — a budgeted work-span pool for the in-core kernels.
//
// Unlike ThreadPool (a plain task queue sized once at construction),
// CpuPool is built around a *budget*: the number of threads a parallel
// region may occupy, caller included. The budget is a thread-safe knob an
// external arbiter (the sort service's CPU-budget arbiter) can raise or
// lower while the owner is mid-sort; the new value takes effect at the
// next parallel region, which is exactly the granularity at which the
// kernels are deterministic.
//
// Determinism contract: run_chunks(k, fn) executes fn(0..k-1) with
// disjoint outputs per chunk, so the result is independent of which
// thread runs which chunk. Kernels derive k from the PROBLEM SIZE ONLY
// (never from the budget), so any budget >= 2 produces byte-identical
// results; budget <= 1 runs every chunk inline on the caller in index
// order — zero pool interaction, bit-identical to the legacy serial code.
//
// Helper threads (budget - 1 of them, capped by the high-water budget)
// are spawned lazily at the first region that can use them, named
// "pdm-cpu" for the tracer, and joined in the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"

namespace pdm {

class CpuPool {
 public:
  /// Starts with `budget` usable threads (caller included); 1 = serial.
  explicit CpuPool(usize budget = 1);
  ~CpuPool();

  CpuPool(const CpuPool&) = delete;
  CpuPool& operator=(const CpuPool&) = delete;

  /// The number of threads (caller included) the next parallel region may
  /// use. Thread-safe: the service arbiter re-grants budget to a running
  /// job from another thread; the change applies at the next region.
  void set_budget(usize threads);
  usize budget() const noexcept {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Runs fn(i) for i in [0, num_chunks) across at most budget() threads
  /// (caller included), blocking until every chunk has completed. Chunks
  /// must write disjoint outputs; execution order is unspecified. With
  /// budget() <= 1 (or a single chunk) every chunk runs inline on the
  /// caller in index order. The first chunk exception is rethrown here
  /// after the region quiesces.
  void run_chunks(usize num_chunks, const std::function<void(usize)>& fn);

  /// Convenience: deterministic contiguous split of [begin, end) into
  /// `chunks` pieces (boundaries i*n/chunks — a function of the range and
  /// chunk count only), fn(lo, hi) per piece via run_chunks.
  void parallel_ranges(usize begin, usize end, usize chunks,
                       const std::function<void(usize, usize)>& fn);

 private:
  struct Region {
    const std::function<void(usize)>* fn = nullptr;
    usize num_chunks = 0;
    std::atomic<usize> next{0};
    usize slots = 0;   // helper participation permits left (guarded by mu_)
    usize active = 0;  // helpers currently inside the region (mu_)
    std::exception_ptr error;  // first chunk failure (mu_)
  };

  void helper_loop();
  void ensure_helpers_locked(usize want);
  /// Pulls chunks from `r` until exhausted; stores the first error in the
  /// region and fast-forwards the cursor so peers stop early.
  void work(Region& r);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // helpers: a region wants hands
  std::condition_variable done_cv_;  // caller: all helpers left the region
  std::vector<std::thread> helpers_;
  std::atomic<usize> budget_;
  Region* region_ = nullptr;  // open region accepting helpers (mu_)
  bool stop_ = false;
};

}  // namespace pdm
