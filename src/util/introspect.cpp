#include "util/introspect.h"

#include <sstream>

namespace pdm::introspect {

namespace {

void write_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string to_text(const StateDump& d) {
  std::ostringstream os;
  os << "introspect: in_flight=" << d.in_flight.size()
     << " held=" << d.held.size() << " shards=" << d.shards.size()
     << " distributed_active=" << d.distributed_active << '\n';
  for (const auto& j : d.in_flight) {
    os << "  job " << j.id << " trace=" << j.trace_id << " \"" << j.name
       << "\" shard=" << j.shard << ' ' << j.state;
    if (!j.phase.empty()) os << " phase=" << j.phase;
    os << " n=" << j.n << " prio=" << j.priority << " queue_s=" << j.queue_s
       << " run_s=" << j.run_s << '\n';
  }
  for (const auto& h : d.held) {
    os << "  held " << h.id << " trace=" << h.trace_id << " \"" << h.name
       << "\" home=" << h.home << " n=" << h.n << " prio=" << h.priority
       << " parked_s=" << h.parked_s;
    if (!h.park_reason.empty()) os << " reason=\"" << h.park_reason << '"';
    os << '\n';
  }
  for (const auto& s : d.shards) {
    os << "  shard " << s.shard << (s.active ? " active" : " retired")
       << " queued=" << s.queued << " running=" << s.running << '/'
       << s.workers << " reserved=" << s.reserved_bytes << '/'
       << s.budget_limit << " cpu=" << s.cpu_in_use << '/' << s.cpu_total
       << '\n';
  }
  if (!d.metrics.empty()) {
    os << "  metrics:\n";
    std::istringstream lines(d.metrics);
    for (std::string line; std::getline(lines, line);) {
      os << "    " << line << '\n';
    }
  }
  return os.str();
}

std::string to_json(const StateDump& d) {
  std::ostringstream os;
  os << "{\"in_flight\":[";
  bool first = true;
  for (const auto& j : d.in_flight) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << j.id << ",\"trace_id\":" << j.trace_id
       << ",\"name\":";
    write_json_string(os, j.name);
    os << ",\"shard\":" << j.shard << ",\"state\":";
    write_json_string(os, j.state);
    os << ",\"phase\":";
    write_json_string(os, j.phase);
    os << ",\"n\":" << j.n << ",\"priority\":" << j.priority
       << ",\"queue_s\":" << j.queue_s << ",\"run_s\":" << j.run_s << '}';
  }
  os << "],\"held\":[";
  first = true;
  for (const auto& h : d.held) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << h.id << ",\"trace_id\":" << h.trace_id
       << ",\"name\":";
    write_json_string(os, h.name);
    os << ",\"home\":" << h.home << ",\"park_reason\":";
    write_json_string(os, h.park_reason);
    os << ",\"n\":" << h.n << ",\"priority\":" << h.priority
       << ",\"parked_s\":" << h.parked_s << '}';
  }
  os << "],\"shards\":[";
  first = true;
  for (const auto& s : d.shards) {
    if (!first) os << ',';
    first = false;
    os << "{\"shard\":" << s.shard
       << ",\"active\":" << (s.active ? "true" : "false")
       << ",\"queued\":" << s.queued << ",\"running\":" << s.running
       << ",\"workers\":" << s.workers
       << ",\"reserved_bytes\":" << s.reserved_bytes
       << ",\"budget_limit\":" << s.budget_limit
       << ",\"cpu_in_use\":" << s.cpu_in_use
       << ",\"cpu_total\":" << s.cpu_total << '}';
  }
  os << "],\"distributed_active\":" << d.distributed_active
     << ",\"metrics\":";
  write_json_string(os, d.metrics);
  os << '}';
  return os.str();
}

}  // namespace pdm::introspect
