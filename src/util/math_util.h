// Small integer math helpers used throughout the PDM layer.
#pragma once

#include <bit>
#include <cmath>

#include "util/common.h"

namespace pdm {

/// Ceiling division for unsigned integers.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b`.
constexpr u64 round_up(u64 a, u64 b) { return ceil_div(a, b) * b; }

/// Rounds `a` down to a multiple of `b`.
constexpr u64 round_down(u64 a, u64 b) { return (a / b) * b; }

/// True if `x` is a power of two (and nonzero).
constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
constexpr u32 ilog2(u64 x) {
  return static_cast<u32>(63 - std::countl_zero(x));
}

/// ceil(log2(x)); requires x > 0.
constexpr u32 ilog2_ceil(u64 x) {
  return x <= 1 ? 0 : static_cast<u32>(64 - std::countl_zero(x - 1));
}

/// Exact integer square root (floor).
constexpr u64 isqrt(u64 x) {
  if (x < 2) return x;
  u64 r = static_cast<u64>(std::sqrt(static_cast<double>(x)));
  while (r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// The paper's log factor lambda(M, alpha) = sqrt((alpha+2) ln M + 2).
/// Used by every "expected" capacity bound (Theorems 5.1, 6.1, 6.3).
inline double lambda_factor(u64 m, double alpha) {
  return std::sqrt((alpha + 2.0) * std::log(static_cast<double>(m)) + 2.0);
}

/// Largest multiple of `b` that is <= a (and >= b).
constexpr u64 floor_multiple(u64 a, u64 b) {
  u64 r = round_down(a, b);
  return r == 0 ? b : r;
}

}  // namespace pdm
