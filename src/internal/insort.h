// In-memory sorting kernels.
//
// The PDM model charges nothing for local computation, but the wall-clock
// benches still want a fast internal sort: internal_sort uses std::sort for
// small inputs and a chunked parallel mergesort (scratch-based ping-pong)
// when a pool and scratch space are supplied.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/cpu_pool.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace pdm {

/// Sorts `data`. If `pool` is non-null and `scratch.size() >= data.size()`,
/// sorts chunks in parallel and merges pairwise through the scratch buffer;
/// otherwise falls back to std::sort (in-place, no extra memory).
template <class R, class Cmp = std::less<R>>
void internal_sort(std::span<R> data, Cmp cmp = {}, ThreadPool* pool = nullptr,
                   std::span<R> scratch = {}) {
  constexpr usize kParallelThreshold = 1u << 15;
  if (pool == nullptr || scratch.size() < data.size() ||
      data.size() < kParallelThreshold || pool->size() < 2) {
    std::sort(data.begin(), data.end(), cmp);
    return;
  }
  const usize n = data.size();
  const usize chunks0 = std::min<usize>(pool->size(), n / (1u << 13));
  usize chunks = std::max<usize>(2, chunks0);
  const usize step = (n + chunks - 1) / chunks;

  std::vector<usize> bounds;
  for (usize b = 0; b <= n; b += step) bounds.push_back(std::min(b, n));
  if (bounds.back() != n) bounds.push_back(n);

  pool->parallel_for(0, bounds.size() - 1, [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) {
      std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[i]),
                data.begin() + static_cast<std::ptrdiff_t>(bounds[i + 1]), cmp);
    }
  });

  // Pairwise merge rounds, ping-ponging between data and scratch.
  R* src = data.data();
  R* dst = scratch.data();
  while (bounds.size() > 2) {
    std::vector<usize> next_bounds;
    next_bounds.push_back(0);
    const usize pairs = (bounds.size() - 1 + 1) / 2;
    pool->parallel_for(0, pairs, [&](usize lo, usize hi) {
      for (usize p = lo; p < hi; ++p) {
        const usize a = bounds[2 * p];
        const usize b = bounds[std::min(bounds.size() - 1, 2 * p + 1)];
        const usize c = bounds[std::min(bounds.size() - 1, 2 * p + 2)];
        std::merge(src + a, src + b, src + b, src + c, dst + a, cmp);
      }
    });
    for (usize p = 0; p < pairs; ++p) {
      next_bounds.push_back(bounds[std::min(bounds.size() - 1, 2 * p + 2)]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

/// Budgeted variant for the in-core kernel layer (PdmContext::cpu_pool()).
///
/// Determinism: the chunk tree is a function of n ONLY — never of the
/// budget — so every budget >= 2 sorts the same chunks and merges the same
/// pairs, producing identical bytes regardless of how many threads pull
/// chunks. Budget < 2 (or a small input, or missing scratch) takes plain
/// std::sort — the exact legacy serial path. The two paths agree
/// byte-for-byte whenever elements that compare equal are indistinguishable
/// (true for the repo's key-only record types).
template <class R, class Cmp = std::less<R>>
void internal_sort_budgeted(std::span<R> data, Cmp cmp, CpuPool& pool,
                            std::span<R> scratch) {
  constexpr usize kParallelThreshold = 1u << 14;
  const usize n = data.size();
  if (pool.budget() < 2 || scratch.size() < n || n < kParallelThreshold) {
    std::sort(data.begin(), data.end(), cmp);
    return;
  }
  PDM_TRACE_SPAN_ARG("kernel", "insort_parallel", "records", n);
  // ~8K records per chunk, capped: enough slack that 4 threads stay busy
  // without making the merge tree deep.
  const usize chunks = std::clamp<usize>(n >> 13, usize{2}, usize{16});
  std::vector<usize> bounds(chunks + 1);
  for (usize c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  pool.run_chunks(chunks, [&](usize c) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
              data.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]), cmp);
  });

  // Pairwise merge rounds, ping-ponging between data and scratch. An odd
  // tail segment merges against an empty range (b == c), i.e. a copy, so
  // every round moves all n records into dst.
  R* src = data.data();
  R* dst = scratch.data();
  while (bounds.size() > 2) {
    const usize last = bounds.size() - 1;
    const usize pairs = last / 2 + last % 2;
    pool.run_chunks(pairs, [&](usize p) {
      const usize a = bounds[2 * p];
      const usize b = bounds[std::min(last, 2 * p + 1)];
      const usize c = bounds[std::min(last, 2 * p + 2)];
      std::merge(src + a, src + b, src + b, src + c, dst + a, cmp);
    });
    std::vector<usize> next_bounds;
    next_bounds.push_back(0);
    for (usize p = 0; p < pairs; ++p) {
      next_bounds.push_back(bounds[std::min(last, 2 * p + 2)]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

/// Convenience: returns true iff the span is sorted under cmp.
template <class R, class Cmp = std::less<R>>
bool is_sorted_span(std::span<const R> data, Cmp cmp = {}) {
  return std::is_sorted(data.begin(), data.end(), cmp);
}

}  // namespace pdm
