// In-memory sorting kernels.
//
// The PDM model charges nothing for local computation, but the wall-clock
// benches still want a fast internal sort: internal_sort uses std::sort for
// small inputs and a chunked parallel mergesort (scratch-based ping-pong)
// when a pool and scratch space are supplied.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/thread_pool.h"

namespace pdm {

/// Sorts `data`. If `pool` is non-null and `scratch.size() >= data.size()`,
/// sorts chunks in parallel and merges pairwise through the scratch buffer;
/// otherwise falls back to std::sort (in-place, no extra memory).
template <class R, class Cmp = std::less<R>>
void internal_sort(std::span<R> data, Cmp cmp = {}, ThreadPool* pool = nullptr,
                   std::span<R> scratch = {}) {
  constexpr usize kParallelThreshold = 1u << 15;
  if (pool == nullptr || scratch.size() < data.size() ||
      data.size() < kParallelThreshold || pool->size() < 2) {
    std::sort(data.begin(), data.end(), cmp);
    return;
  }
  const usize n = data.size();
  const usize chunks0 = std::min<usize>(pool->size(), n / (1u << 13));
  usize chunks = std::max<usize>(2, chunks0);
  const usize step = (n + chunks - 1) / chunks;

  std::vector<usize> bounds;
  for (usize b = 0; b <= n; b += step) bounds.push_back(std::min(b, n));
  if (bounds.back() != n) bounds.push_back(n);

  pool->parallel_for(0, bounds.size() - 1, [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) {
      std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[i]),
                data.begin() + static_cast<std::ptrdiff_t>(bounds[i + 1]), cmp);
    }
  });

  // Pairwise merge rounds, ping-ponging between data and scratch.
  R* src = data.data();
  R* dst = scratch.data();
  while (bounds.size() > 2) {
    std::vector<usize> next_bounds;
    next_bounds.push_back(0);
    const usize pairs = (bounds.size() - 1 + 1) / 2;
    pool->parallel_for(0, pairs, [&](usize lo, usize hi) {
      for (usize p = lo; p < hi; ++p) {
        const usize a = bounds[2 * p];
        const usize b = bounds[std::min(bounds.size() - 1, 2 * p + 1)];
        const usize c = bounds[std::min(bounds.size() - 1, 2 * p + 2)];
        std::merge(src + a, src + b, src + b, src + c, dst + a, cmp);
      }
    });
    for (usize p = 0; p < pairs; ++p) {
      next_bounds.push_back(bounds[std::min(bounds.size() - 1, 2 * p + 2)]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(src, src + n, data.data());
  }
}

/// Convenience: returns true iff the span is sorted under cmp.
template <class R, class Cmp = std::less<R>>
bool is_sorted_span(std::span<const R> data, Cmp cmp = {}) {
  return std::is_sorted(data.begin(), data.end(), cmp);
}

}  // namespace pdm
