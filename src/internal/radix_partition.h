// In-memory counting partition by a key digit: the CPU kernel inside
// IntegerSort's distribution phase (§7).
#pragma once

#include <span>
#include <vector>

#include "pdm/record.h"
#include "util/common.h"

namespace pdm {

/// Extracts `bits` key bits starting at `shift` (from bit 0 = LSB).
template <Record R>
u64 digit_of(const R& rec, u32 shift, u32 bits) {
  const u64 mask = bits >= 64 ? ~u64{0} : ((u64{1} << bits) - 1);
  return (record_key(rec) >> shift) & mask;
}

/// Counts digit occurrences into `counts` (must be sized 2^bits, zeroed by
/// this function).
template <Record R>
void count_digits(std::span<const R> recs, u32 shift, u32 bits,
                  std::span<u64> counts) {
  std::fill(counts.begin(), counts.end(), u64{0});
  for (const auto& r : recs) ++counts[digit_of(r, shift, bits)];
}

/// Scatters records into `out` grouped by digit; `offsets` must contain the
/// exclusive prefix sums of the counts and is consumed (advanced) in place.
template <Record R>
void scatter_by_digit(std::span<const R> recs, std::span<R> out, u32 shift,
                      u32 bits, std::span<u64> offsets) {
  for (const auto& r : recs) {
    out[offsets[digit_of(r, shift, bits)]++] = r;
  }
}

/// Partitions `recs` by digit into `out`, returning the bucket boundaries
/// (size 2^bits + 1, exclusive prefix sums).
template <Record R>
std::vector<u64> partition_by_digit(std::span<const R> recs, std::span<R> out,
                                    u32 shift, u32 bits) {
  const usize nb = usize{1} << bits;
  std::vector<u64> counts(nb);
  count_digits(recs, shift, bits, std::span<u64>(counts));
  std::vector<u64> bounds(nb + 1, 0);
  for (usize i = 0; i < nb; ++i) bounds[i + 1] = bounds[i] + counts[i];
  std::vector<u64> cursor(bounds.begin(), bounds.end() - 1);
  scatter_by_digit(recs, out, shift, bits, std::span<u64>(cursor));
  return bounds;
}

}  // namespace pdm
