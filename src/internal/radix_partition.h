// In-memory counting partition by a key digit: the CPU kernel inside
// IntegerSort's distribution phase (§7).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "pdm/record.h"
#include "util/common.h"
#include "util/cpu_pool.h"
#include "util/trace.h"

namespace pdm {

/// Extracts `bits` key bits starting at `shift` (from bit 0 = LSB).
template <Record R>
u64 digit_of(const R& rec, u32 shift, u32 bits) {
  const u64 mask = bits >= 64 ? ~u64{0} : ((u64{1} << bits) - 1);
  return (record_key(rec) >> shift) & mask;
}

/// Counts digit occurrences into `counts` (must be sized 2^bits, zeroed by
/// this function).
template <Record R>
void count_digits(std::span<const R> recs, u32 shift, u32 bits,
                  std::span<u64> counts) {
  std::fill(counts.begin(), counts.end(), u64{0});
  for (const auto& r : recs) ++counts[digit_of(r, shift, bits)];
}

/// Scatters records into `out` grouped by digit; `offsets` must contain the
/// exclusive prefix sums of the counts and is consumed (advanced) in place.
template <Record R>
void scatter_by_digit(std::span<const R> recs, std::span<R> out, u32 shift,
                      u32 bits, std::span<u64> offsets) {
  for (const auto& r : recs) {
    out[offsets[digit_of(r, shift, bits)]++] = r;
  }
}

/// Partitions `recs` by digit into `out`, returning the bucket boundaries
/// (size 2^bits + 1, exclusive prefix sums).
template <Record R>
std::vector<u64> partition_by_digit(std::span<const R> recs, std::span<R> out,
                                    u32 shift, u32 bits) {
  const usize nb = usize{1} << bits;
  std::vector<u64> counts(nb);
  count_digits(recs, shift, bits, std::span<u64>(counts));
  std::vector<u64> bounds(nb + 1, 0);
  for (usize i = 0; i < nb; ++i) bounds[i + 1] = bounds[i] + counts[i];
  std::vector<u64> cursor(bounds.begin(), bounds.end() - 1);
  scatter_by_digit(recs, out, shift, bits, std::span<u64>(cursor));
  return bounds;
}

/// Stable counting partition by an arbitrary digit function, parallel when
/// the pool budget allows. Fills `counts` (size num_buckets) with the
/// bucket histogram and groups `recs` into `out` bucket-by-bucket,
/// preserving input order within each bucket.
///
/// Determinism: the serial path is the classic count / prefix / cursor
/// scatter. The parallel path splits the input into a chunk count derived
/// from n ONLY, takes per-chunk histograms, and gives chunk c a
/// precomputed slice [bounds[b] + sum_{c'<c} hist[c'][b], ...) of every
/// bucket b — so record placement is a pure function of the input,
/// byte-identical to the serial cursor scatter at any budget >= 2.
template <class R, class DigitFn>
void partition_stable(std::span<const R> recs, std::span<R> out,
                      usize num_buckets, DigitFn&& digit_fn, CpuPool& pool,
                      std::span<u64> counts) {
  const usize n = recs.size();
  std::fill(counts.begin(), counts.end(), u64{0});
  constexpr usize kParallelThreshold = 1u << 14;
  if (pool.budget() < 2 || n < kParallelThreshold) {
    // Legacy serial kernel: count, exclusive prefix, cursor scatter.
    for (const auto& r : recs) ++counts[digit_fn(r)];
    std::vector<u64> cursor(num_buckets);
    u64 acc = 0;
    for (usize b = 0; b < num_buckets; ++b) {
      cursor[b] = acc;
      acc += counts[b];
    }
    for (const auto& r : recs) out[cursor[digit_fn(r)]++] = r;
    return;
  }
  PDM_TRACE_SPAN_ARG("kernel", "partition_parallel", "records", n);
  const usize chunks = std::clamp<usize>(n >> 14, usize{2}, usize{16});
  auto chunk_lo = [&](usize c) { return n * c / chunks; };
  // Per-chunk digit histograms, then turned in place into per-(chunk,
  // bucket) scatter cursors.
  std::vector<u64> hist(chunks * num_buckets, 0);
  pool.run_chunks(chunks, [&](usize c) {
    u64* h = hist.data() + c * num_buckets;
    for (usize i = chunk_lo(c); i < chunk_lo(c + 1); ++i) {
      ++h[digit_fn(recs[i])];
    }
  });
  u64 acc = 0;
  for (usize b = 0; b < num_buckets; ++b) {
    u64 total = 0;
    for (usize c = 0; c < chunks; ++c) {
      u64& h = hist[c * num_buckets + b];
      const u64 cnt = h;
      h = acc + total;  // chunk c's first slot in bucket b
      total += cnt;
    }
    counts[b] = total;
    acc += total;
  }
  pool.run_chunks(chunks, [&](usize c) {
    u64* cursor = hist.data() + c * num_buckets;
    for (usize i = chunk_lo(c); i < chunk_lo(c + 1); ++i) {
      out[cursor[digit_fn(recs[i])]++] = recs[i];
    }
  });
}

}  // namespace pdm
