// Order-adaptive run formation engines (Bender et al., "Run Generation
// Revisited", PAPERS.md): replacement selection through the loser tree
// emits runs of expected length 2M on random input and a *single* run on
// any input whose records are displaced by at most M/2 positions from
// sorted order; the alternating up/down variant additionally collapses
// reverse-sorted input (and is 2-competitive in general). Both stream the
// input with the same memory-load read batches as the fixed-run path, so
// the read-side I/O schedule is identical — only run boundaries move.
//
// Memory: the M-record tournament heap plus one staging block and the
// double-buffered input loads are charged to the context budget; the loser
// tree's internal arrays (~2 * bit_ceil(M) entries of {tag, record}) are
// not, matching how the merge passes already account for their trees.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "internal/loser_tree.h"
#include "pdm/memory_budget.h"
#include "pdm/prefetch_buffer.h"
#include "pdm/striped_run.h"
#include "util/math_util.h"
#include "util/trace.h"

namespace pdm {
namespace detail {

/// Tournament entry: records compare first by run tag — an earlier run
/// drains completely before any record of a later run surfaces — then by
/// key, ascending for even tags and descending for odd tags when the
/// up/down policy is active.
template <class R>
struct RsItem {
  u64 run = 0;
  R rec{};
};

template <class R, class Cmp>
struct RsLess {
  Cmp cmp;
  bool updown;
  bool operator()(const RsItem<R>& a, const RsItem<R>& b) const {
    if (a.run != b.run) return a.run < b.run;
    if (updown && (a.run & 1) != 0) return cmp(b.rec, a.rec);
    return cmp(a.rec, b.rec);
  }
};

}  // namespace detail

/// Replacement-selection run formation over a striped input range.
/// Emits variable-length ascending runs: every run except possibly the
/// last holds at least `heap_records` records (the heap is full when the
/// run opens), expected 2*heap_records on random input, and sorted input
/// yields exactly one run. With `updown`, odd-numbered runs are selected
/// descending — written with per-block record reversal and a metadata
/// block-list flip (StripedRun::reverse_blocks), so every emitted run is
/// stored ascending with zero extra I/O. A descending run's sub-block
/// tail cannot be block-reversed; it is emitted as its own mini-run of
/// fewer than B records (at most one per down run).
///
/// Run i starts on disk (i * start_stride) mod D, the same staggering as
/// the fixed path, so cleanup/merge reads spread over all disks.
template <Record R, class Cmp = std::less<R>>
std::vector<StripedRun<R>> replacement_select_runs(
    PdmContext& ctx, const StripedRun<R>& input, u64 heap_records,
    u64 first_record, u64 num_records, bool updown, u32 start_stride,
    Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  PDM_CHECK(heap_records > 0 && heap_records % rpb == 0,
            "heap size must be a positive multiple of B");
  PDM_CHECK(first_record % rpb == 0, "range start must be block aligned");
  PDM_CHECK(first_record <= input.size(), "range start out of bounds");
  const u64 n = num_records == 0 ? input.size() - first_record : num_records;
  PDM_CHECK(first_record + n <= input.size(), "range end out of bounds");
  PDM_CHECK(n > 0, "empty input");
  trace::TraceSpan trace_span("pass", "run_formation_adaptive", "records", n);

  // Input streaming: heap-sized batched reads, double buffered through the
  // async pipeline — the same load geometry as the fixed path, so the
  // read-side op and block counts match it exactly.
  const u64 load_len = heap_records;
  const u64 num_loads = ceil_div(n, load_len);
  TrackedBuffer<R> load(ctx.budget(), static_cast<usize>(load_len));
  const bool async = ctx.aio().enabled();
  TrackedBuffer<R> load2;
  if (async) load2 = TrackedBuffer<R>(ctx.budget(), load.size());
  PipelineDrainGuard drain_guard(ctx.aio());

  R* bufs[2] = {load.data(), async ? load2.data() : nullptr};
  IoTicket tickets[2] = {0, 0};
  auto blocks_of = [&](u64 li) {
    const u64 rec0 = first_record + li * load_len;
    const u64 nrec = std::min<u64>(load_len, first_record + n - rec0);
    return std::pair<u64, u64>{rec0 / rpb, ceil_div(nrec, rpb)};
  };
  auto issue = [&](u64 li, usize slot) {
    const auto [b0, nblocks] = blocks_of(li);
    tickets[slot] = input.read_blocks_async(b0, nblocks, bufs[slot]);
  };

  usize slot = 0;
  u64 next_load = 0;  // next load index to consume
  u64 valid = 0;      // records in the current load
  usize pos = 0;      // cursor within the current load
  R* buf = nullptr;
  if (async) issue(0, 0);
  auto next_record = [&](R& dst) -> bool {
    if (pos >= valid) {
      if (next_load >= num_loads) return false;
      if (async) {
        ctx.aio().wait(tickets[slot]);
        buf = bufs[slot];
        if (next_load + 1 < num_loads) issue(next_load + 1, slot ^ 1);
        slot ^= 1;
      } else {
        const auto [b0, nblocks] = blocks_of(next_load);
        input.read_blocks(b0, nblocks, load.data());
        buf = load.data();
      }
      valid = std::min<u64>(load_len, n - next_load * load_len);
      pos = 0;
      ++next_load;
    }
    dst = buf[pos++];
    return true;
  };

  // Fill the tournament: the first min(M, N) records all carry run tag 0,
  // which is what guarantees every non-final run's length is >= M — when
  // run r opens, all M tree slots hold tag-r records, and each of them
  // must be emitted into run r before any tag-(r+1) record surfaces.
  using Item = detail::RsItem<R>;
  using Less = detail::RsLess<R, Cmp>;
  const usize k = static_cast<usize>(std::min<u64>(heap_records, n));
  LoserTree<Item, Less> tree(k, Less{cmp, updown});
  {
    R r{};
    for (usize i = 0; i < k; ++i) {
      const bool ok = next_record(r);
      PDM_CHECK(ok, "input exhausted during heap fill");
      tree.set_initial(i, Item{0, r});
    }
  }
  tree.build();

  std::vector<StripedRun<R>> out;
  TrackedBuffer<R> block_buf(ctx.budget(), rpb);
  usize fill = 0;
  constexpr u64 kNoRun = static_cast<u64>(-1);
  u64 cur_run = kNoRun;
  bool down = false;  // current run is selected descending

  auto open_run = [&](u64 run_no) {
    out.emplace_back(ctx,
                     static_cast<u32>((out.size() * start_stride) % ctx.D()));
    cur_run = run_no;
    down = updown && (run_no & 1) != 0;
  };
  auto flush_block = [&]() {
    if (fill == 0) return;
    // Down runs reverse each block's records at staging; after the run
    // finishes, reverse_blocks() flips the block order and the stored run
    // reads ascending.
    if (down) std::reverse(block_buf.data(), block_buf.data() + fill);
    out.back().append(std::span<const R>(block_buf.data(), fill));
    fill = 0;
  };
  auto close_run = [&]() {
    if (cur_run == kNoRun) return;
    if (!down) {
      flush_block();  // a partial tail is fine for an ascending run
      out.back().finish();
      return;
    }
    out.back().finish();
    out.back().reverse_blocks();
    if (out.back().empty()) out.pop_back();  // down run shorter than B
    if (fill > 0) {
      // Sub-block tail of a down run: becomes its own tiny ascending run.
      std::reverse(block_buf.data(), block_buf.data() + fill);
      out.emplace_back(
          ctx, static_cast<u32>((out.size() * start_stride) % ctx.D()));
      out.back().append(std::span<const R>(block_buf.data(), fill));
      out.back().finish();
      fill = 0;
    }
  };

  while (!tree.empty()) {
    const Item top = tree.min_value();  // copy: replace_min overwrites it
    if (top.run != cur_run) {
      close_run();
      open_run(top.run);
    }
    R incoming{};
    if (next_record(incoming)) {
      // Classic replacement selection: the incoming record joins the
      // current run iff emitting it after `top.rec` keeps the run's order
      // (>= for ascending runs, <= for descending); otherwise it waits in
      // the heap under the next run's tag.
      const bool eligible =
          down ? !cmp(top.rec, incoming) : !cmp(incoming, top.rec);
      tree.replace_min(Item{eligible ? top.run : top.run + 1, incoming});
    } else {
      tree.exhaust_min();
    }
    block_buf.data()[fill++] = top.rec;
    if (fill == rpb) {
      ctx.check_cancelled();
      flush_block();
    }
  }
  close_run();
  return out;
}

}  // namespace pdm
