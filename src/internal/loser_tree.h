// Tournament (loser) tree for k-way merging: O(log k) comparisons per
// extracted record with a single comparison path per replacement. Used by
// the LMM merge pass and the forecasting multiway merge baseline.
#pragma once

#include <bit>
#include <functional>
#include <vector>

#include "util/common.h"

namespace pdm {

template <class R, class Cmp = std::less<R>>
class LoserTree {
 public:
  explicit LoserTree(usize k, Cmp cmp = {})
      : k_(k), cap_(std::bit_ceil(std::max<usize>(k, 2))), cmp_(cmp),
        tree_(cap_, kNone), val_(cap_), alive_(cap_, false) {}

  /// Sets the initial head record of source i. Call for every live source,
  /// then build().
  void set_initial(usize i, const R& v) {
    PDM_CHECK(i < k_, "source out of range");
    val_[i] = v;
    alive_[i] = true;
  }

  /// Plays the initial tournament.
  void build() { winner_ = play(1); }

  bool empty() const { return winner_ == kNone || !alive_[winner_]; }

  /// Source index holding the current minimum.
  usize min_source() const { return winner_; }

  const R& min_value() const { return val_[winner_]; }

  /// Replaces the minimum with the next record from the same source.
  void replace_min(const R& v) {
    val_[winner_] = v;
    replay();
  }

  /// Marks the minimum's source as exhausted.
  void exhaust_min() {
    alive_[winner_] = false;
    replay();
  }

 private:
  static constexpr usize kNone = static_cast<usize>(-1);

  // Returns the winner (smaller) of the two leaf indices; dead leaves lose.
  // Ties break toward the lower source index. In the initial play() the
  // left subtree always holds the lower leaf range, so "prefer a" was
  // enough there — but replay() calls better(cur, other) with cur on
  // either side, and preferring cur would resolve ties toward whichever
  // source replaced last, making the k-way merge unstable by source
  // index. The explicit index comparison keeps both paths stable.
  usize better(usize a, usize b) const {
    if (a == kNone || !alive_[a]) return b;
    if (b == kNone || !alive_[b]) return a;
    if (cmp_(val_[b], val_[a])) return b;
    if (cmp_(val_[a], val_[b])) return a;
    return a < b ? a : b;  // tie: lower source index wins
  }

  usize play(usize node) {
    if (node >= cap_) {
      const usize leaf = node - cap_;
      return leaf < k_ ? leaf : kNone;
    }
    const usize l = play(2 * node);
    const usize r = play(2 * node + 1);
    const usize w = better(l, r);
    tree_[node] = (w == l) ? r : l;  // store the loser
    return w;
  }

  void replay() {
    usize cur = winner_;
    for (usize node = (winner_ + cap_) / 2; node >= 1; node /= 2) {
      const usize other = tree_[node];
      const usize w = better(cur, other);
      if (w != cur) {
        tree_[node] = cur;
        cur = other;
      }
    }
    winner_ = cur;
  }

  usize k_;
  usize cap_;
  Cmp cmp_;
  std::vector<usize> tree_;
  std::vector<R> val_;
  std::vector<bool> alive_;
  usize winner_ = kNone;
};

}  // namespace pdm
