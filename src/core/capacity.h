// Capacity formulas: how many records each algorithm sorts at its stated
// pass budget (paper §1 "New Results" list and the per-section theorems),
// plus the Arge–Knudsen–Larsen lower bound of Lemma 2.1.
#pragma once

#include <cmath>

#include "util/common.h"
#include "util/math_util.h"

namespace pdm {

/// Theorem 3.1 / Lemma 4.1: deterministic three-pass capacity M^{3/2}
/// (with B = sqrt(M)). For general B the LMM constraint is
/// N <= M * min(B, M/B).
inline u64 cap_three_pass(u64 m, u64 b) {
  return m * std::min<u64>(b, m / b);
}

/// Theorem 5.1: ExpectedTwoPass sorts M^{3/2} / sqrt((a+2) ln M + 2) keys
/// in two passes w.p. >= 1 - M^-a.
inline u64 cap_expected_two_pass(u64 m, double alpha) {
  const double cap = static_cast<double>(m) * isqrt(m) /
                     lambda_factor(m, alpha);
  return static_cast<u64>(cap);
}

/// Theorem 3.2 (mesh formulation): M^{3/2} / (c * a * ln M), with the
/// paper's unstated constant taken as c = 1 (the generalized-0-1 route
/// gives weaker constants than the shuffling lemma; see Observation 5.1).
inline u64 cap_expected_two_pass_mesh(u64 m, double alpha) {
  const double denom = std::max(1.0, alpha * std::log(static_cast<double>(m)));
  return static_cast<u64>(static_cast<double>(m) * isqrt(m) / denom);
}

/// Theorem 6.1: ExpectedThreePass sorts M^{7/4} / ((a+2) ln M + 2)^{3/4}.
inline u64 cap_expected_three_pass(u64 m, double alpha) {
  const double md = static_cast<double>(m);
  const double lam = lambda_factor(m, alpha);
  return static_cast<u64>(std::pow(md, 1.75) / std::pow(lam, 1.5));
}

/// Theorem 6.2: SevenPass sorts M^2.
inline u64 cap_seven_pass(u64 m) { return m * m; }

/// Theorem 6.3: ExpectedSixPass sorts M^2 / sqrt((a+2) ln M + 2).
inline u64 cap_expected_six_pass(u64 m, double alpha) {
  return static_cast<u64>(static_cast<double>(m) * static_cast<double>(m) /
                          lambda_factor(m, alpha));
}

/// Observation 4.1 / 5.1: Chaudhry–Cormen 3-pass columnsort handles
/// M * sqrt(M/2) keys.
inline u64 cap_columnsort_cc(u64 m) {
  return m * isqrt(m / 2);
}

/// Observation 6.1: subblock columnsort (4 passes) handles M^{5/3}/4^{2/3};
/// analytic entry for the capacity table (the paper discusses but does not
/// use it).
inline u64 cap_subblock_columnsort(u64 m) {
  return static_cast<u64>(std::pow(static_cast<double>(m), 5.0 / 3.0) /
                          std::pow(4.0, 2.0 / 3.0));
}

/// Lemma 2.1 (from Arge, Knudsen & Larsen): any comparison sort needs
///   I >= (lg(N!) - N lg B) / (B lg((M-B)/B) + 3B)
/// block I/Os; normalized by N/B block-reads per pass this is the lower
/// bound on passes. Returns fractional passes.
inline double lower_bound_passes(u64 n, u64 m, u64 b) {
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  const double md = static_cast<double>(m);
  const double lg_n_fact = std::lgamma(nd + 1.0) / std::log(2.0);
  const double numer = lg_n_fact - nd * std::log2(bd);
  const double denom = bd * std::log2((md - bd) / bd) + 3.0 * bd;
  const double ios = numer / denom;
  return ios / (nd / bd);
}

/// The asymptotic (M -> infinity) form of the same bound, dropping the
/// paper's (1 +- O(1/log M)) factors: log(N/B) / log(M/B). This is what
/// Lemma 2.1 quotes as "two passes for M^{3/2}" and "three for M^2" (and
/// 1.75 passes for B = M^{1/3}, §8).
inline double lower_bound_passes_asymptotic(u64 n, u64 m, u64 b) {
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  const double md = static_cast<double>(m);
  return std::log2(nd / bd) / std::log2(md / bd);
}

}  // namespace pdm
