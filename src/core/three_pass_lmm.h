// ThreePass2 (paper §4, Lemma 4.1): LMM sort specialized to B = sqrt(M),
// N <= M^{3/2}, running in exactly three passes:
//   pass 1: form N/M sorted runs of length M, written unshuffled into
//           m = M/B parts of one block each (folds LMM's unshuffle into
//           the run-formation write);
//   pass 2: merge the j-th parts of all runs — each group is exactly M
//           records, so every merge happens fully in memory;
//   pass 3: shuffle the merged sequences and window-clean (dirty length
//           <= l*m <= M).
// Oblivious: the I/O schedule depends only on (N, M, B, D).
#pragma once

#include "core/capacity.h"
#include "core/sort_report.h"
#include "primitives/lmm_merge.h"

namespace pdm {

struct ThreePassLmmOptions {
  u64 mem_records = 0;
  ThreadPool* pool = nullptr;
};

template <Record R, class Cmp = std::less<R>>
SortResult<R> three_pass_lmm_sort(PdmContext& ctx, const StripedRun<R>& input,
                                  const ThreePassLmmOptions& opt,
                                  Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  PDM_CHECK(mem > 0 && mem % rpb == 0, "M must be a multiple of B");
  PDM_CHECK(n % mem == 0, "ThreePass2 requires N to be a multiple of M");
  PDM_CHECK(n <= cap_three_pass(mem, rpb),
            "ThreePass2 capacity is M*min(B, M/B) records");

  ReportBuilder rb(ctx, "ThreePass2(LMM)", n, mem, rpb);

  // Pass 1 (+ folded unshuffle): m = M/B parts of exactly one block each.
  RunFormationOptions fopt;
  fopt.run_len = mem;
  fopt.unshuffle_parts = static_cast<u32>(mem / rpb);
  fopt.pool = opt.pool;
  auto parts = form_sorted_runs<R>(ctx, input, fopt, cmp);

  // Passes 2 + 3.
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);
  RunSink<R> sink(result.output);
  LmmOptions lopt;
  lopt.mem_records = mem;
  lopt.pool = opt.pool;
  const CleanupOutcome oc = lmm_merge_from_parts<R>(ctx, parts, sink, lopt, cmp);
  PDM_ASSERT(oc.ok, "deterministic LMM dirty bound violated");
  PDM_ASSERT(oc.emitted == n, "record count mismatch in ThreePass2");

  result.report = rb.finish();
  return result;
}

}  // namespace pdm
