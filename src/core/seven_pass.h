// SevenPass (paper §6.1, Theorem 6.2): sorts up to M^2 records in seven
// passes with B = sqrt(M), as an outer (l, m)-merge with l = m = sqrt(M)
// over sorted sequences of length M^{3/2} built by ThreePass2.
//
//   passes 1-3: per M^{3/2}-record segment, ThreePass2 — with the final
//               cleanup emitted through an UnshuffleSink, folding the
//               outer unshuffle (step 2) into step 1's write;
//   passes 4-6: sqrt(M) jobs, each an (l,m)-merge of the j-th parts;
//   pass 7:     shuffle + window cleanup (dirty <= l*m = M).
// Oblivious and deterministic.
#pragma once

#include "core/capacity.h"
#include "core/lmm_outer.h"
#include "core/sort_report.h"
#include "primitives/run_formation.h"

namespace pdm {

struct SevenPassOptions {
  u64 mem_records = 0;
  ThreadPool* pool = nullptr;
};

template <Record R, class Cmp = std::less<R>>
SortResult<R> seven_pass_sort(PdmContext& ctx, const StripedRun<R>& input,
                              const SevenPassOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 s = isqrt(mem);
  const u64 n = input.size();
  const u64 seg_len = mem * s;  // M^{3/2}
  PDM_CHECK(s * s == mem, "SevenPass requires M to be a perfect square");
  PDM_CHECK(rpb == s, "SevenPass requires B = sqrt(M)");
  PDM_CHECK(n % seg_len == 0,
            "SevenPass requires N to be a multiple of M^{3/2}");
  PDM_CHECK(n <= cap_seven_pass(mem), "SevenPass capacity is M^2");
  const u64 segments = n / seg_len;

  ReportBuilder rb(ctx, "SevenPass", n, mem, rpb);

  // Stage 1 (3 passes): ThreePass2 per segment, output unshuffled into
  // s part-runs of M records each.
  FormedRuns<R> outer_parts(static_cast<usize>(segments));
  for (u64 i = 0; i < segments; ++i) {
    RunFormationOptions fopt;
    fopt.run_len = mem;
    fopt.unshuffle_parts = static_cast<u32>(mem / rpb);  // = s
    fopt.first_record = i * seg_len;
    fopt.num_records = seg_len;
    fopt.pool = opt.pool;
    auto inner_parts = form_sorted_runs<R>(ctx, input, fopt, cmp);

    auto& parts_i = outer_parts[static_cast<usize>(i)];
    parts_i.reserve(static_cast<usize>(s));
    for (u64 j = 0; j < s; ++j) {
      parts_i.emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
    }
    UnshuffleSink<R> usink(ctx,
                           std::span<StripedRun<R>>(parts_i.data(), s));
    LmmOptions lopt;
    lopt.mem_records = mem;
    lopt.pool = opt.pool;
    const CleanupOutcome oc =
        lmm_merge_from_parts<R>(ctx, inner_parts, usink, lopt, cmp);
    PDM_ASSERT(oc.ok, "SevenPass stage-1 dirty bound violated");
  }

  // Stages 2 + 3 (3 + 1 passes).
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);
  RunSink<R> sink(result.output);
  const CleanupOutcome oc =
      lmm_outer_tail<R>(ctx, outer_parts, sink, mem, opt.pool, cmp);
  PDM_ASSERT(oc.ok, "SevenPass outer dirty bound violated");
  PDM_ASSERT(oc.emitted == n, "record count mismatch in SevenPass");

  result.report = rb.finish();
  return result;
}

}  // namespace pdm
