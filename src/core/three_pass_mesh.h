// ThreePass1 (paper §3.1): the mesh-based three-pass sort of N = M^{3/2}
// records viewed as an M x sqrt(M) mesh with B = sqrt(M).
//
//   pass 1: sort each sqrt(M) x sqrt(M) band row-major, consecutive bands
//           with rows in opposite directions (the shearsort pairing that
//           halves the dirty band); write bands as column-blocks with
//           diagonal striping so pass 2 can read full columns in parallel;
//   pass 2: sort every mesh column (M records) vertically, write back;
//   pass 3: row-major window cleanup over bands — after pass 2 at most
//           sqrt(M)/2 (+1) rows are dirty (<= M/2 + sqrt(M) records), well
//           within the window's chunk tolerance of M records.
//
// Correctness follows from the 0-1 principle: all steps are oblivious, and
// for 0-1 inputs the dirty band after pass 2 fits in one cleanup window.
// Oblivious: the I/O schedule depends only on (N, M, B, D).
#pragma once

#include "core/capacity.h"
#include "core/sort_report.h"
#include "pdm/block_matrix.h"
#include "primitives/cleanup.h"

namespace pdm {

struct ThreePassMeshOptions {
  u64 mem_records = 0;
  ThreadPool* pool = nullptr;
};

template <Record R, class Cmp = std::less<R>>
SortResult<R> three_pass_mesh_sort(PdmContext& ctx,
                                   const StripedRun<R>& input,
                                   const ThreePassMeshOptions& opt,
                                   Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 s = isqrt(mem);
  const u64 n = input.size();
  PDM_CHECK(s * s == mem, "ThreePass1 requires M to be a perfect square");
  PDM_CHECK(rpb == s, "ThreePass1 requires B = sqrt(M)");
  PDM_CHECK(n == mem * s, "ThreePass1 sorts exactly M*sqrt(M) records");

  ReportBuilder rb(ctx, "ThreePass1(mesh)", n, mem, rpb);

  // The mesh: M rows x s columns; bands of s rows; the matrix stores one
  // block per (band, column) = a column segment of s records.
  BlockMatrix<R> mat(ctx, /*block_rows=*/s, /*block_cols=*/s);

  {  // Pass 1: band sort + transpose-to-column-blocks write.
    TrackedBuffer<R> load(ctx.budget(), static_cast<usize>(mem));
    TrackedBuffer<R> colmajor(ctx.budget(), static_cast<usize>(mem));
    TrackedBuffer<R> scratch;
    if (opt.pool != nullptr) {
      scratch = TrackedBuffer<R>(ctx.budget(), static_cast<usize>(mem));
    }
    for (u64 band = 0; band < s; ++band) {
      input.read_blocks(band * s, s, load.data());
      internal_sort(load.span(), cmp, opt.pool,
                    opt.pool != nullptr ? scratch.span() : std::span<R>{});
      const bool reversed = (band % 2) == 1;
      // Sorted band, row-major; rows of odd bands run right-to-left.
      // Column block c = entries of column c for rows 0..s-1.
      for (u64 c = 0; c < s; ++c) {
        R* dst = colmajor.data() + c * s;
        const u64 col = reversed ? (s - 1 - c) : c;
        for (u64 r = 0; r < s; ++r) dst[r] = load[r * s + col];
      }
      mat.write_block_row(band, colmajor.data());
    }
  }

  {  // Pass 2: sort every mesh column.
    TrackedBuffer<R> col(ctx.budget(), static_cast<usize>(mem));
    TrackedBuffer<R> scratch;
    if (opt.pool != nullptr) {
      scratch = TrackedBuffer<R>(ctx.budget(), static_cast<usize>(mem));
    }
    for (u64 c = 0; c < s; ++c) {
      mat.read_block_col(c, col.data());
      internal_sort(col.span(), cmp, opt.pool,
                    opt.pool != nullptr ? scratch.span() : std::span<R>{});
      mat.write_block_col(c, col.data());
    }
  }

  // Pass 3: row-major window cleanup, chunk = one band = M records.
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);
  RunSink<R> sink(result.output);
  MatrixBandSource<R> source(mat);
  CleanupOptions copt;
  copt.chunk_records = mem;
  copt.abort_on_violation = false;
  copt.pool = opt.pool;
  const CleanupOutcome oc = streamed_cleanup<R>(ctx, source, sink, copt, cmp);
  PDM_ASSERT(oc.ok, "mesh dirty band exceeded the cleanup window");
  PDM_ASSERT(oc.emitted == n, "record count mismatch in ThreePass1");

  result.report = rb.finish();
  return result;
}

}  // namespace pdm
