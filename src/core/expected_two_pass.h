// ExpectedTwoPass (paper §5, Theorem 5.1) and the §3.2 mesh variant
// (Theorem 3.2) — one engine:
//   pass 1: form sorted runs of length q (q = M for §5; q = N/sqrt(M) for
//           the mesh reading, where the runs are the mesh columns);
//   pass 2: shuffle the runs and window-clean with chunk M, checking on
//           the fly that each emitted window's minimum is >= the previous
//           window's maximum.
// By the shuffling lemma (Lemma 4.2) every record of the shuffled sequence
// is within (N/sqrt(q))*sqrt((a+2) ln N + 1) + N/q of its sorted position
// with probability >= 1 - N^-a; when N is within cap_expected_two_pass the
// displacement bound is below M and pass 2 succeeds. Otherwise the on-line
// check fires and the sorter falls back to a deterministic 3-pass
// (l,m)-merge of the runs it already formed (the paper re-sorts with
// Lemma 4.1 from scratch — same +3 passes; set resort_from_scratch for the
// literal behaviour).
#pragma once

#include <optional>

#include "core/capacity.h"
#include "core/sort_report.h"
#include "core/three_pass_lmm.h"
#include "primitives/cleanup.h"
#include "primitives/lmm_merge.h"
#include "primitives/run_formation.h"
#include "util/logging.h"

namespace pdm {

struct ExpectedTwoPassOptions {
  u64 mem_records = 0;
  double alpha = 1.0;          // failure probability target M^-alpha
  u64 run_len = 0;             // 0 => M (§5); mesh variant: N/sqrt(M)
  bool resort_from_scratch = false;  // paper-literal fallback
  bool enforce_capacity = false;     // refuse N beyond the w.h.p. bound
  ThreadPool* pool = nullptr;
  usize async_depth = 0;  // >= 2: async I/O pipeline depth; 0 = inherit
};

template <Record R, class Cmp = std::less<R>>
SortResult<R> expected_two_pass_sort(PdmContext& ctx,
                                     const StripedRun<R>& input,
                                     const ExpectedTwoPassOptions& opt,
                                     Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  const u64 run_len = opt.run_len == 0 ? mem : opt.run_len;
  PDM_CHECK(mem % rpb == 0, "M must be a multiple of B");
  PDM_CHECK(run_len % rpb == 0 && run_len <= mem,
            "run length must be block-aligned and <= M");
  PDM_CHECK(n % run_len == 0,
            "ExpectedTwoPass requires N to be a multiple of the run length");
  const u64 l = n / run_len;
  PDM_CHECK(l * rpb <= mem,
            "too many runs: the cleanup pass reads one block per run");
  if (opt.enforce_capacity) {
    PDM_CHECK(n <= cap_expected_two_pass(mem, opt.alpha),
              "N exceeds the Theorem 5.1 capacity");
  }

  std::optional<AsyncDepthScope> async_scope;
  if (opt.async_depth != 0) async_scope.emplace(ctx.aio(), opt.async_depth);
  ReportBuilder rb(ctx, "ExpectedTwoPass", n, mem, rpb);

  // Pass 1.
  RunFormationOptions fopt;
  fopt.run_len = run_len;
  fopt.pool = opt.pool;
  auto runs = form_runs_flat<R>(ctx, input, fopt, cmp);

  // Pass 2: shuffle + window cleanup with on-line verification.
  SortResult<R> result;
  {
    StripedRun<R> attempt(ctx, 0);
    RunSink<R> sink(attempt);
    const u64 chunk = round_down(mem, l * rpb);
    ShuffleChunkSource<R> source(
        ctx, std::span<const StripedRun<R>>(runs.data(), runs.size()), chunk);
    CleanupOptions copt;
    copt.chunk_records = chunk;
    copt.abort_on_violation = true;
    copt.pool = opt.pool;
    const CleanupOutcome oc = streamed_cleanup<R>(ctx, source, sink, copt, cmp);
    if (oc.ok) {
      PDM_ASSERT(oc.emitted == n, "record count mismatch in ExpectedTwoPass");
      result.output = std::move(attempt);
      result.report = rb.finish();
      return result;
    }
  }

  // Fallback: +3 deterministic passes.
  rb.set_fallback();
  PDM_LOG(LogLevel::kInfo,
          "ExpectedTwoPass: displacement bound violated, taking the "
          "3-pass fallback");
  result.output = StripedRun<R>(ctx, 0);
  if (opt.resort_from_scratch) {
    ThreePassLmmOptions topt;
    topt.mem_records = mem;
    topt.pool = opt.pool;
    auto res = three_pass_lmm_sort<R>(ctx, input, topt, cmp);
    result.output = std::move(res.output);
  } else {
    RunSink<R> sink(result.output);
    LmmOptions lopt;
    lopt.mem_records = mem;
    lopt.pool = opt.pool;
    const CleanupOutcome oc = lmm_merge<R>(
        ctx, std::span<const StripedRun<R>>(runs.data(), runs.size()), sink,
        lopt, cmp);
    PDM_ASSERT(oc.ok, "fallback lmm_merge violated its dirty bound");
    PDM_ASSERT(oc.emitted == n, "record count mismatch in fallback");
  }
  result.report = rb.finish();
  result.report.fallback_taken = true;
  return result;
}

/// Theorem 3.2 front door: the mesh formulation with N/sqrt(M) columns of
/// q = N/sqrt(M) records each (must divide evenly). Same engine as §5.
template <Record R, class Cmp = std::less<R>>
SortResult<R> expected_two_pass_mesh_sort(PdmContext& ctx,
                                          const StripedRun<R>& input,
                                          ExpectedTwoPassOptions opt,
                                          Cmp cmp = {}) {
  const u64 s = isqrt(opt.mem_records);
  PDM_CHECK(s * s == opt.mem_records, "mesh variant needs square M");
  PDM_CHECK(input.size() % s == 0, "N must be a multiple of sqrt(M)");
  opt.run_len = input.size() / s;  // the mesh column length
  auto res = expected_two_pass_sort<R>(ctx, input, opt, cmp);
  res.report.algorithm = "ExpThreePass1(mesh,2-pass)";
  return res;
}

}  // namespace pdm
