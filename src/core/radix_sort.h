// RadixSort (paper §7, Theorem 7.2): forward (MSB-first) radix sort using
// IntegerSort's distribution pass on log2(M/B)-bit digits.
//
// Each round refines every oversized bucket by its next digit; once a
// bucket fits in memory it is read, sorted internally and appended to the
// output (the paper's step A, folded into the recursion as the leaf case).
// For random keys each round shrinks buckets by ~M/B, giving the
// (1+nu) * log(N/M)/log(M/B) + 1 pass bound; Observation 7.2's example
// (N = M^2, B = sqrt(M), C = 4) lands at <= 3.6 passes, which
// bench_e9_radix_sort reproduces.
#pragma once

#include "core/integer_sort.h"
#include "core/sort_report.h"
#include "internal/insort.h"

namespace pdm {

struct RadixSortOptions {
  u64 mem_records = 0;
  u32 key_bits = 64;    // significant key bits (keys < 2^key_bits)
  u32 digit_bits = 0;   // 0 = floor(log2(M/B))
  bool staged = false;  // use the staged distribution (extension)
  BucketPlacement placement = BucketPlacement::kRotation;
  usize async_depth = 0;  // >= 2: async I/O pipeline depth; 0 = inherit
};

namespace detail {

template <Record R>
struct RadixState {
  PdmContext* ctx;
  u64 mem;
  u32 digit_bits;
  bool staged;
  BucketPlacement placement;
  StripedRun<R>* out;
  TrackedBuffer<R>* leaf_buf;
  TrackedBuffer<R>* scratch_buf;  // parallel leaf-sort scratch; null when
                                  // the kernel budget is 1 (serial path)
  TrackedBuffer<R>* io_buf;  // block-granular staging: a ragged bucket of
                             // <= M records can span far more than M/B
                             // blocks, so reads land here and only the
                             // valid records are appended to leaf_buf
  u64 rounds = 0;         // distribution rounds executed (for reporting)
  u64 max_depth = 0;
};

template <Record R>
void radix_recurse(RadixState<R>& st, RecordReader<R>& reader, u32 shift,
                   u64 depth) {
  st.max_depth = std::max(st.max_depth, depth);
  const u32 w = st.digit_bits;
  auto digit = [shift, w](const R& r) {
    return static_cast<usize>((record_key(r) >> shift) &
                              ((u64{1} << w) - 1));
  };
  auto dist = distribute_pass<R>(*st.ctx, reader, u32{1} << w, st.mem,
                                 st.staged, digit, st.placement);
  ++st.rounds;

  // Leaf handling batches *groups* of consecutive small buckets: their key
  // ranges are disjoint and ordered, so reading several together (one
  // batched parallel read over all their segments), sorting the union once
  // and appending once preserves the output order while keeping both the
  // reads and the writes at full disk parallelism — per-bucket handling of
  // tiny buckets would degenerate to 1-2 block I/Os.
  const usize rpb = st.ctx->template rpb<R>();
  const usize io_blocks = st.io_buf->size() / rpb;
  usize group_n = 0;        // records already compacted into leaf_buf
  usize pending_valid = 0;  // records covered by pending read reqs
  std::vector<ReadReq> reqs;
  std::vector<u32> valids;

  auto read_pending = [&] {
    if (reqs.empty()) return;
    trace::TraceSpan trace_span("pass", "radix_leaf_read", "reqs",
                                reqs.size());
    st.ctx->io().read(reqs);
    for (usize i = 0; i < valids.size(); ++i) {
      std::copy(st.io_buf->data() + i * rpb,
                st.io_buf->data() + i * rpb + valids[i],
                st.leaf_buf->data() + group_n);
      group_n += valids[i];
    }
    reqs.clear();
    valids.clear();
    pending_valid = 0;
  };
  auto flush_group = [&] {
    read_pending();
    if (group_n == 0) return;
    trace::TraceSpan trace_span("pass", "radix_leaf_sort", "records",
                                group_n);
    std::span<R> recs(st.leaf_buf->data(), group_n);
    auto cmp = [](const R& a, const R& b) {
      return record_key(a) < record_key(b);
    };
    if (st.scratch_buf != nullptr) {
      internal_sort_budgeted(recs, cmp, st.ctx->cpu_pool(),
                             st.scratch_buf->span());
    } else {
      std::sort(recs.begin(), recs.end(), cmp);
    }
    st.out->append(std::span<const R>(recs.data(), recs.size()));
    group_n = 0;
  };

  for (auto& bucket : dist.buckets) {
    if (bucket.size() == 0) continue;
    if (bucket.size() <= st.mem) {
      if (group_n + pending_valid + bucket.size() > st.leaf_buf->size()) {
        flush_group();
      }
      for (u64 s = 0; s < bucket.num_segments(); ++s) {
        if (valids.size() == io_blocks) read_pending();
        const auto& seg = bucket.segment(s);
        reqs.push_back(ReadReq{
            seg.where, reinterpret_cast<std::byte*>(
                           st.io_buf->data() + valids.size() * rpb)});
        valids.push_back(seg.count);
        pending_valid += seg.count;
      }
    } else if (shift == 0) {
      // All remaining key bits equal: any order of the bucket is sorted
      // by key; stream-copy it out.
      flush_group();
      trace::TraceSpan trace_span("pass", "radix_stream_copy", "records",
                                  bucket.size());
      RaggedRunReader<R> br(bucket);
      while (!br.exhausted()) {
        const usize got = br.read_up_to(st.io_buf->data(), st.io_buf->size());
        if (got == 0) break;
        st.out->append(std::span<const R>(st.io_buf->data(), got));
      }
    } else {
      flush_group();
      RaggedRunReader<R> br(bucket);
      const u32 next_shift = shift >= w ? shift - w : 0;
      radix_recurse(st, br, next_shift, depth + 1);
    }
  }
  flush_group();
}

}  // namespace detail

template <Record R>
SortResult<R> radix_sort(PdmContext& ctx, const StripedRun<R>& input,
                         const RadixSortOptions& opt) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u32 w = opt.digit_bits != 0
                    ? opt.digit_bits
                    : std::max<u32>(1, ilog2(mem / rpb));
  PDM_CHECK((u64{1} << w) * rpb <= mem, "digit width exceeds M/B buckets");

  std::optional<AsyncDepthScope> async_scope;
  if (opt.async_depth != 0) async_scope.emplace(ctx.aio(), opt.async_depth);
  ReportBuilder rb(ctx, "RadixSort", input.size(), mem, rpb);
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);

  auto key_cmp = [](const R& a, const R& b) {
    return record_key(a) < record_key(b);
  };
  if (input.size() <= mem) {
    // Fits in memory: one read + one write pass.
    TrackedBuffer<R> buf(ctx.budget(), static_cast<usize>(mem));
    TrackedBuffer<R> scratch;  // acquired only on the parallel path
    if (ctx.cpu_budget() >= 2) {
      scratch = TrackedBuffer<R>(ctx.budget(), buf.size());
    }
    StripedRunReader<R> reader(input);
    usize n = 0;
    while (!reader.exhausted()) {
      n += reader.read_up_to(buf.data() + n, buf.size() - n);
    }
    std::span<R> recs(buf.data(), n);
    if (ctx.cpu_budget() >= 2) {
      internal_sort_budgeted(recs, key_cmp, ctx.cpu_pool(), scratch.span());
    } else {
      std::sort(recs.begin(), recs.end(), key_cmp);
    }
    result.output.append(std::span<const R>(recs.data(), n));
    result.output.finish();
    result.report = rb.finish();
    return result;
  }

  TrackedBuffer<R> leaf_buf(ctx.budget(), static_cast<usize>(mem));
  TrackedBuffer<R> leaf_scratch;  // acquired only on the parallel path
  if (ctx.cpu_budget() >= 2) {
    leaf_scratch = TrackedBuffer<R>(ctx.budget(), leaf_buf.size());
  }
  TrackedBuffer<R> io_buf(ctx.budget(), static_cast<usize>(mem));
  detail::RadixState<R> st{&ctx,
                           mem,
                           w,
                           opt.staged,
                           opt.placement,
                           &result.output,
                           &leaf_buf,
                           ctx.cpu_budget() >= 2 ? &leaf_scratch : nullptr,
                           &io_buf};
  const u32 kb = std::max<u32>(opt.key_bits, 1);
  const u32 top_shift = kb <= w ? 0 : ((kb - 1) / w) * w;
  StripedRunReader<R> reader(input);
  detail::radix_recurse<R>(st, reader, top_shift, 1);
  result.output.finish();
  PDM_ASSERT(result.output.size() == input.size(),
             "RadixSort record count mismatch");
  result.report = rb.finish();
  return result;
}

}  // namespace pdm
