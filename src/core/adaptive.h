// AdaptiveSorter: the planner a downstream user calls when they just want
// the data sorted in as few passes as the paper's toolbox allows. Given
// (N, M, B, D, alpha) it enumerates the feasible algorithms with their
// expected pass counts (paper §1's "New Results" list) and dispatches to
// the cheapest.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/expected_six_pass.h"
#include "core/expected_three_pass.h"
#include "core/expected_two_pass.h"
#include "core/order_adaptive.h"
#include "core/seven_pass.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "baselines/multiway_merge.h"

namespace pdm {

enum class Algo {
  kInternal,
  kExpectedTwoPass,
  kThreePassLmm,
  kThreePassMesh,
  kExpectedThreePass,
  kExpectedSixPass,
  kSevenPass,
  kMultiwayMerge,
  kOrderAdaptive,
};

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kInternal: return "InternalSort";
    case Algo::kExpectedTwoPass: return "ExpectedTwoPass";
    case Algo::kThreePassLmm: return "ThreePass2(LMM)";
    case Algo::kThreePassMesh: return "ThreePass1(mesh)";
    case Algo::kExpectedThreePass: return "ExpectedThreePass";
    case Algo::kExpectedSixPass: return "ExpectedSixPass";
    case Algo::kSevenPass: return "SevenPass";
    case Algo::kMultiwayMerge: return "MultiwayMerge";
    case Algo::kOrderAdaptive: return "OrderAdaptive";
  }
  return "?";
}

struct PlanEntry {
  Algo algo{};
  bool feasible = false;
  double expected_passes = 0;
  u64 capacity = 0;        // max N this algorithm handles at these params
  u64 est_runs = 0;        // kOrderAdaptive: probed run-count estimate
  std::string note;
};

/// Enumerates every algorithm with feasibility for the given shape. B and
/// M are in records; alpha is the w.h.p. exponent for expected variants.
/// est_runs > 0 is a presortedness-probe run-count estimate (see
/// core/order_adaptive.h); without it the order-adaptive plan is
/// unranked — the planner refuses to guess how much order the input has.
inline std::vector<PlanEntry> plan_options(u64 n, u64 mem, u64 rpb,
                                           double alpha, u64 est_runs = 0) {
  std::vector<PlanEntry> out;
  const u64 s = isqrt(mem);
  const bool square = s * s == mem;
  const bool b_is_sqrt = square && rpb == s;

  {
    PlanEntry e;
    e.algo = Algo::kInternal;
    e.capacity = mem;
    e.expected_passes = 1;
    e.feasible = n <= mem;
    e.note = "N <= M";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kExpectedTwoPass;
    e.capacity = cap_expected_two_pass(mem, alpha);
    e.expected_passes = 2;
    e.feasible = n > mem && n <= e.capacity && n % mem == 0;
    e.note = "Theorem 5.1";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kThreePassLmm;
    e.capacity = cap_three_pass(mem, rpb);
    e.expected_passes = 3;
    e.feasible = n > mem && n <= e.capacity && n % mem == 0;
    e.note = "Lemma 4.1";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kThreePassMesh;
    e.capacity = b_is_sqrt ? mem * s : 0;
    e.expected_passes = 3;
    e.feasible = b_is_sqrt && n == mem * s;
    e.note = "Theorem 3.1 (exact N = M^1.5, B = sqrt(M))";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kExpectedThreePass;
    e.capacity = cap_expected_three_pass(mem, alpha);
    e.expected_passes = 3;
    e.feasible =
        n > mem && n <= e.capacity && n % mem == 0 &&
        detail::choose_three_pass_segment(n, mem, rpb, alpha) != 0;
    e.note = "Theorem 6.1";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kExpectedSixPass;
    e.capacity = cap_expected_six_pass(mem, alpha);
    e.expected_passes = 6;
    e.feasible = b_is_sqrt && n <= e.capacity &&
                 detail::choose_six_pass_segment(n, mem, rpb, alpha) != 0;
    e.note = "Theorem 6.3";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kSevenPass;
    e.capacity = cap_seven_pass(mem);
    e.expected_passes = 7;
    e.feasible = b_is_sqrt && n <= e.capacity && n % (mem * s) == 0;
    e.note = "Theorem 6.2";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kMultiwayMerge;
    e.capacity = ~u64{0};
    e.expected_passes =
        multiway_predicted_passes(n, mem, std::max<u64>(2, mem / rpb / 2));
    e.feasible = n % rpb == 0;
    e.note = "baseline; parallelism expected, not guaranteed";
    out.push_back(e);
  }
  {
    PlanEntry e;
    e.algo = Algo::kOrderAdaptive;
    e.capacity = ~u64{0};
    e.est_runs = est_runs;
    if (est_runs > 0) {
      // Same approximate fan as the multiway entry (plan_options has no D).
      const u64 fan = std::max<u64>(2, mem / rpb / 2);
      e.expected_passes = order_adaptive_predicted_passes(est_runs, fan);
      e.feasible = n > mem && n % rpb == 0;
      e.note = "probe: ~" + std::to_string(est_runs) +
               " replacement-selection runs";
    } else {
      e.expected_passes = 0;
      e.feasible = false;
      e.note = "needs presortedness probe (est_runs unknown)";
    }
    out.push_back(e);
  }
  return out;
}

/// Picks the feasible plan with the fewest expected passes among the
/// paper's algorithms (whose parallelism is guaranteed); the multiway
/// baseline — whose *data* passes are few but whose parallel-I/O count is
/// only an expectation — is chosen only when nothing else fits. A probed
/// order-adaptive plan (est_runs > 0) wins only when its predicted pass
/// count is *strictly* lower: ties keep the legacy choice, so random
/// input (probe ≈ N/2M runs ⇒ the same pass count as the fixed plans)
/// stays byte-identical to historical behavior.
inline PlanEntry choose_plan(u64 n, u64 mem, u64 rpb, double alpha,
                             u64 est_runs = 0) {
  auto options = plan_options(n, mem, rpb, alpha, est_runs);
  const PlanEntry* best = nullptr;
  for (const auto& e : options) {
    if (!e.feasible || e.algo == Algo::kMultiwayMerge ||
        e.algo == Algo::kOrderAdaptive) {
      continue;
    }
    if (best == nullptr || e.expected_passes < best->expected_passes) {
      best = &e;
    }
  }
  for (const auto& e : options) {
    if (e.algo != Algo::kOrderAdaptive || !e.feasible) continue;
    if (best == nullptr || e.expected_passes < best->expected_passes) {
      best = &e;
    }
  }
  if (best == nullptr) {
    for (const auto& e : options) {
      if (e.feasible && e.algo == Algo::kMultiwayMerge) best = &e;
    }
  }
  PDM_CHECK(best != nullptr,
            "no feasible plan: N must be a multiple of B (and of M for the "
            "small-pass algorithms)");
  return *best;
}

struct AdaptiveOptions {
  u64 mem_records = 0;
  double alpha = 1.0;
  ThreadPool* pool = nullptr;
  std::optional<Algo> force;  // override the planner
  u64 est_runs = 0;           // presortedness estimate (0 = none)
  bool probe = false;         // probe the input when est_runs == 0
  RunFormationMode adaptive_mode = RunFormationMode::kReplacementSelection;
};

/// Sorts with the planner-selected algorithm.
template <Record R, class Cmp = std::less<R>>
SortResult<R> pdm_sort(PdmContext& ctx, const StripedRun<R>& input,
                       const AdaptiveOptions& opt, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  u64 est_runs = opt.est_runs;
  if (!opt.force.has_value() && est_runs == 0 && opt.probe &&
      input.size() > opt.mem_records) {
    est_runs =
        probe_presortedness<R>(ctx, input, opt.mem_records, cmp).est_runs;
  }
  const Algo algo = opt.force.has_value()
                        ? *opt.force
                        : choose_plan(input.size(), opt.mem_records, rpb,
                                      opt.alpha, est_runs)
                              .algo;
  switch (algo) {
    case Algo::kInternal: {
      ReportBuilder rb(ctx, "InternalSort", input.size(), opt.mem_records,
                       rpb);
      TrackedBuffer<R> buf(ctx.budget(), static_cast<usize>(opt.mem_records));
      TrackedBuffer<R> scratch;  // only acquired on the parallel path
      if (ctx.cpu_budget() >= 2) {
        scratch = TrackedBuffer<R>(ctx.budget(), buf.size());
      }
      const u64 nb = input.num_blocks();
      input.read_blocks(0, nb, buf.data());
      std::span<R> recs(buf.data(), static_cast<usize>(input.size()));
      if (ctx.cpu_budget() >= 2) {
        internal_sort_budgeted(recs, cmp, ctx.cpu_pool(), scratch.span());
      } else {
        internal_sort(recs, cmp, opt.pool);
      }
      SortResult<R> res;
      res.output = StripedRun<R>(ctx, 0);
      res.output.append(std::span<const R>(recs.data(), recs.size()));
      res.output.finish();
      res.report = rb.finish();
      return res;
    }
    case Algo::kExpectedTwoPass: {
      ExpectedTwoPassOptions o;
      o.mem_records = opt.mem_records;
      o.alpha = opt.alpha;
      o.pool = opt.pool;
      return expected_two_pass_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kThreePassLmm: {
      ThreePassLmmOptions o;
      o.mem_records = opt.mem_records;
      o.pool = opt.pool;
      return three_pass_lmm_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kThreePassMesh: {
      ThreePassMeshOptions o;
      o.mem_records = opt.mem_records;
      o.pool = opt.pool;
      return three_pass_mesh_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kExpectedThreePass: {
      ExpectedThreePassOptions o;
      o.mem_records = opt.mem_records;
      o.alpha = opt.alpha;
      o.pool = opt.pool;
      return expected_three_pass_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kExpectedSixPass: {
      ExpectedSixPassOptions o;
      o.mem_records = opt.mem_records;
      o.alpha = opt.alpha;
      o.pool = opt.pool;
      return expected_six_pass_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kSevenPass: {
      SevenPassOptions o;
      o.mem_records = opt.mem_records;
      o.pool = opt.pool;
      return seven_pass_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kMultiwayMerge: {
      MultiwaySortOptions o;
      o.mem_records = opt.mem_records;
      o.pool = opt.pool;
      return multiway_merge_sort<R>(ctx, input, o, cmp);
    }
    case Algo::kOrderAdaptive: {
      OrderAdaptiveOptions o;
      o.mem_records = opt.mem_records;
      o.mode = opt.adaptive_mode;
      o.pool = opt.pool;
      return order_adaptive_sort<R>(ctx, input, o, cmp);
    }
  }
  fail("unreachable: unknown algorithm");
}

}  // namespace pdm
