// SortReport: what every sorter returns — the paper's figures of merit
// (pass counts under the PDM definition), plus utilization, simulated
// time, wall time, peak memory and whether the expected-case algorithm had
// to take its fallback.
#pragma once

#include <string>

#include "pdm/pdm_context.h"
#include "pdm/striped_run.h"
#include "util/jobtrace.h"
#include "util/timer.h"
#include "util/trace.h"

namespace pdm {

struct SortReport {
  std::string algorithm;
  u64 n = 0;             // records sorted
  u64 mem_records = 0;   // M
  usize rpb = 0;         // B in records
  u32 disks = 0;         // D
  IoStats io;            // delta for this sort only
  double passes = 0;     // (reads+writes) / (2 N / (D B))
  double read_passes = 0;
  double write_passes = 0;
  double utilization = 0;  // mean blocks per parallel op (in [1, D])
  bool fallback_taken = false;
  usize peak_memory_bytes = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
};

/// RAII-ish collector: snapshot at construction, finalize with finish().
class ReportBuilder {
 public:
  ReportBuilder(PdmContext& ctx, std::string algorithm, u64 n,
                u64 mem_records, usize rpb)
      : ctx_(&ctx),
        before_(ctx.stats()),
        report_() {
    report_.algorithm = std::move(algorithm);
    report_.n = n;
    report_.mem_records = mem_records;
    report_.rpb = rpb;
    report_.disks = ctx.D();
    ctx.budget().reset_peak();
    budget_floor_ = ctx.budget().peak();
    trace_start_ns_ = trace::TraceLog::now_ns();
    // Every sorter passes through here once per sort, so this is the one
    // chokepoint that tells the flight ring (and hence introspection's
    // "current phase") which algorithm the job is executing.
    jobtrace::FlightRecorder::instance().record(
        ctx.trace_id(), jobtrace::EventKind::kPhase,
        report_.algorithm.c_str(), n);
  }

  SortReport finish() {
    // The async pipeline may still be executing write-behind batches that
    // were already charged to the stats; finishing a sort means its data
    // is on disk, so the drain belongs inside the wall-clock measurement.
    ctx_->aio().drain();
    const IoStats d = delta(ctx_->stats(), before_);
    report_.io = d;
    report_.passes = d.passes(report_.n, report_.rpb, report_.disks);
    report_.read_passes = d.read_passes(report_.n, report_.rpb, report_.disks);
    report_.write_passes =
        d.write_passes(report_.n, report_.rpb, report_.disks);
    report_.utilization = d.utilization();
    report_.peak_memory_bytes = ctx_->budget().peak();
    report_.wall_seconds = timer_.seconds();
    report_.sim_seconds = d.sim_time_s;
    (void)budget_floor_;
    // Whole-sort span named after the algorithm; child phase spans (run
    // formation, merge passes, cleanup) nest under it in the trace viewer.
    trace::TraceLog::instance().complete_dyn(
        "sort", "sort." + report_.algorithm, trace_start_ns_,
        trace::TraceLog::now_ns() - trace_start_ns_, "n", report_.n);
    return report_;
  }

  void set_fallback() { report_.fallback_taken = true; }

 private:
  PdmContext* ctx_;
  IoStats before_;
  SortReport report_;
  Timer timer_;
  usize budget_floor_ = 0;
  u64 trace_start_ns_ = 0;
};

/// Output run + report pair returned by every sorter.
template <Record R>
struct SortResult {
  StripedRun<R> output;
  SortReport report;
};

}  // namespace pdm
