// IntegerSort (paper §7, Theorem 7.1): single-digit distribution sort for
// keys in [0, R) with R <= M/B buckets.
//
// Each phase reads M records, partitions them by value in memory, and
// writes every bucket's blocks in as few parallel write steps as possible.
// The final block of each bucket per phase is partial (zero padded); those
// pads are the (mu < 1) extra write fraction of Theorem 7.1. The optional
// placement pass (step A) rereads the buckets and writes the records
// contiguously — doubling the cost to 2(1+mu) passes, as the paper states.
//
// Extension (benched as an ablation in E8): "staged" mode keeps each
// bucket's partial block in memory across phases, eliminating nearly all
// pad blocks at the price of one extra M of staging memory.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/sort_report.h"
#include "internal/radix_partition.h"
#include "pdm/ragged_run.h"
#include "primitives/stream.h"

namespace pdm {

/// Streaming block-batched reader (striped or ragged source).
template <Record R>
class RecordReader {
 public:
  virtual ~RecordReader() = default;
  /// Reads up to max_records (whole blocks; compacting any padding);
  /// returns the number of valid records delivered.
  virtual usize read_up_to(R* dst, usize max_records) = 0;

  /// Asynchronous variant: stages the reads without blocking, stores the
  /// completion ticket in *ticket (0 = already done) and returns the
  /// record count dst will hold once finalize(dst) has been called after
  /// the ticket completes. Default: synchronous read, nothing to finalize.
  virtual usize read_up_to_async(R* dst, usize max_records, IoTicket* ticket) {
    *ticket = 0;
    return read_up_to(dst, max_records);
  }

  /// Post-completion fixup for a buffer staged by read_up_to_async (e.g.
  /// compaction of ragged blocks). Must be called after the ticket
  /// completes and before the data is consumed. Default: no-op.
  virtual void finalize(R* dst) { (void)dst; }

  virtual bool exhausted() const = 0;
  virtual u64 total() const = 0;
};

template <Record R>
class StripedRunReader final : public RecordReader<R> {
 public:
  explicit StripedRunReader(const StripedRun<R>& run) : run_(&run) {}

  usize read_up_to(R* dst, usize max_records) override {
    IoTicket t = 0;
    const usize valid = read_up_to_async(dst, max_records, &t);
    run_->ctx().aio().wait(t);
    return valid;
  }

  usize read_up_to_async(R* dst, usize max_records,
                         IoTicket* ticket) override {
    const usize rpb = run_->rpb();
    const u64 nb = std::min<u64>(max_records / rpb,
                                 run_->num_blocks() - next_block_);
    *ticket = 0;
    if (nb == 0) return 0;
    *ticket = run_->read_blocks_async(next_block_, nb, dst);
    usize valid = 0;
    for (u64 b = 0; b < nb; ++b) {
      valid += run_->records_in_block(next_block_ + b);
    }
    next_block_ += nb;
    return valid;  // only the final block can be partial, pad is at the end
  }

  bool exhausted() const override { return next_block_ >= run_->num_blocks(); }
  u64 total() const override { return run_->size(); }

 private:
  const StripedRun<R>* run_;
  u64 next_block_ = 0;
};

template <Record R>
class RaggedRunReader final : public RecordReader<R> {
 public:
  explicit RaggedRunReader(const RaggedRun<R>& run) : run_(&run) {}

  usize read_up_to(R* dst, usize max_records) override {
    const usize rpb = run_->rpb();
    const u64 nb = std::min<u64>(max_records / rpb,
                                 run_->num_segments() - next_seg_);
    if (nb == 0) return 0;
    const usize valid = run_->read_segments(next_seg_, nb, dst);
    next_seg_ += nb;
    return valid;
  }

  usize read_up_to_async(R* dst, usize max_records,
                         IoTicket* ticket) override {
    const usize rpb = run_->rpb();
    const u64 nb = std::min<u64>(max_records / rpb,
                                 run_->num_segments() - next_seg_);
    *ticket = 0;
    if (nb == 0) return 0;
    *ticket = run_->read_segments_async(next_seg_, nb, dst);
    pending_.push_back(Pending{dst, next_seg_, nb});
    const usize valid = run_->valid_in_segments(next_seg_, nb);
    next_seg_ += nb;
    return valid;
  }

  void finalize(R* dst) override {
    for (usize i = 0; i < pending_.size(); ++i) {
      if (pending_[i].dst == dst) {
        run_->compact_segments(pending_[i].first, pending_[i].count, dst);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    PDM_ASSERT(false, "finalize for a buffer with no staged ragged read");
  }

  bool exhausted() const override {
    return next_seg_ >= run_->num_segments();
  }
  u64 total() const override { return run_->size(); }

 private:
  struct Pending {
    R* dst;
    u64 first;
    u64 count;
  };

  const RaggedRun<R>* run_;
  u64 next_seg_ = 0;
  std::vector<Pending> pending_;
};

/// Bucket block placement policy. kRotation keeps each bucket's blocks on
/// consecutive disks (sequential reads of one bucket hit all disks — the
/// striping of [23]); kBalancedBatch balances every phase's write batch
/// perfectly instead, at the price of scattered reads. bench_e8 ablates
/// the two; rotation wins overall because every distribution round's
/// output is reread by the next round.
enum class BucketPlacement { kRotation, kBalancedBatch };

template <Record R>
struct DistributeOutcome {
  std::vector<RaggedRun<R>> buckets;
  u64 data_blocks = 0;  // ceil-free count of blocks that carry data
  u64 pad_records = 0;  // padding written (the mu overhead, in records)
  u64 phases = 0;
};

/// One distribution pass: reads the input in M-record phases and appends
/// each record to bucket digit_fn(record) (must be < num_buckets). All of
/// a phase's blocks are written in one batched parallel operation.
template <Record R, class DigitFn>
DistributeOutcome<R> distribute_pass(
    PdmContext& ctx, RecordReader<R>& in, u32 num_buckets, u64 mem_records,
    bool staged, DigitFn digit_fn,
    BucketPlacement placement = BucketPlacement::kRotation) {
  const usize rpb = ctx.rpb<R>();
  PDM_CHECK(num_buckets > 0 && static_cast<u64>(num_buckets) * rpb <=
                                    mem_records,
            "bucket staging exceeds M (need R <= M/B)");
  const u64 load_sz =
      staged ? std::max<u64>(rpb, round_down(mem_records / 2, rpb))
             : round_down(mem_records, rpb);
  trace::TraceSpan trace_span("pass", "distribute_pass", "buckets",
                              num_buckets);

  DistributeOutcome<R> out;
  out.buckets.reserve(num_buckets);
  for (u32 i = 0; i < num_buckets; ++i) {
    out.buckets.emplace_back(ctx, i % ctx.D());
  }

  TrackedBuffer<R> load(ctx.budget(), static_cast<usize>(load_sz));
  // Double-buffered input when the async pipeline is on: the next phase's
  // load streams in while this phase partitions and scatters.
  const bool async = ctx.aio().enabled();
  TrackedBuffer<R> load2;
  if (async) load2 = TrackedBuffer<R>(ctx.budget(), load.size());
  // Only used by kBalancedBatch: rotates across each phase's whole batch.
  u64 disk_cursor = 0;
  TrackedBuffer<R> grouped(ctx.budget(), static_cast<usize>(load_sz));
  // Per-bucket one-block staging: pad assembly (paper mode) or carry-over
  // (staged mode).
  TrackedBuffer<R> staging(ctx.budget(),
                           static_cast<usize>(num_buckets) * rpb);
  std::vector<usize> staged_cnt(num_buckets, 0);
  std::vector<u64> counts(num_buckets);
  std::vector<u64> bounds(num_buckets + 1);
  // After every buffer an in-flight read could target.
  PipelineDrainGuard drain_guard(ctx.aio());

  auto stage = [&](RaggedRun<R>& bucket, const R* buf, usize count) {
    if (placement == BucketPlacement::kBalancedBatch) {
      return bucket.stage_block_on(static_cast<u32>(disk_cursor++), buf,
                                   count);
    }
    return bucket.stage_block(buf, count);
  };

  auto flush_phase = [&](std::span<const R> recs) {
    ctx.check_cancelled();
    // Group in memory: the stable counting partition runs across the
    // kernel budget when granted (>= 2), byte-identically to the serial
    // count + cursor scatter it replaces. The write batch below is built
    // from `grouped`/`counts` alone, so its request order is untouched.
    partition_stable(recs, grouped.span(), num_buckets, digit_fn,
                     ctx.cpu_pool(), std::span<u64>(counts));
    bounds[0] = 0;
    for (u32 i = 0; i < num_buckets; ++i) bounds[i + 1] = bounds[i] + counts[i];
    // Emit: one batched parallel write for the whole phase.
    std::vector<WriteReq> reqs;
    for (u32 i = 0; i < num_buckets; ++i) {
      const R* g = grouped.data() + bounds[i];
      u64 cnt = counts[i];
      R* carry = staging.data() + static_cast<usize>(i) * rpb;
      if (staged) {
        // Top up the carried partial block first.
        if (staged_cnt[i] > 0) {
          const usize take =
              std::min<u64>(rpb - staged_cnt[i], cnt);
          std::copy(g, g + take, carry + staged_cnt[i]);
          staged_cnt[i] += take;
          g += take;
          cnt -= take;
          if (staged_cnt[i] == rpb) {
            reqs.push_back(stage(out.buckets[i], carry, rpb));
            ++out.data_blocks;
            staged_cnt[i] = 0;
          } else {
            continue;  // still partial; nothing else to write
          }
        }
        const u64 full = cnt / rpb;
        for (u64 b = 0; b < full; ++b) {
          reqs.push_back(stage(out.buckets[i], g + b * rpb, rpb));
          ++out.data_blocks;
        }
        const u64 rest = cnt - full * rpb;
        if (rest > 0) {
          std::copy(g + full * rpb, g + cnt, carry);
          staged_cnt[i] = static_cast<usize>(rest);
        }
      } else {
        // Paper mode: ceil(cnt/B) blocks, last one zero padded.
        const u64 full = cnt / rpb;
        for (u64 b = 0; b < full; ++b) {
          reqs.push_back(stage(out.buckets[i], g + b * rpb, rpb));
          ++out.data_blocks;
        }
        const u64 rest = cnt - full * rpb;
        if (rest > 0) {
          std::copy(g + full * rpb, g + cnt, carry);
          std::fill(carry + rest, carry + rpb, R{});
          reqs.push_back(
              stage(out.buckets[i], carry, static_cast<usize>(rest)));
          ++out.data_blocks;
          out.pad_records += rpb - rest;
        }
      }
    }
    ctx.write_batch(reqs);
    ++out.phases;
  };

  if (async) {
    // Ping-pong: issue the next load before partitioning the current one.
    R* bufs[2] = {load.data(), load2.data()};
    IoTicket tickets[2] = {0, 0};
    usize cur = 0;
    usize got = in.exhausted()
                    ? usize{0}
                    : in.read_up_to_async(bufs[0], static_cast<usize>(load_sz),
                                          &tickets[0]);
    while (got > 0) {
      const usize next = cur ^ 1;
      const usize next_got =
          in.exhausted() ? usize{0}
                         : in.read_up_to_async(
                               bufs[next], static_cast<usize>(load_sz),
                               &tickets[next]);
      ctx.aio().wait(tickets[cur]);
      in.finalize(bufs[cur]);
      flush_phase(std::span<const R>(bufs[cur], got));
      cur = next;
      got = next_got;
    }
  } else {
    while (!in.exhausted()) {
      const usize got =
          in.read_up_to(load.data(), static_cast<usize>(load_sz));
      if (got == 0) break;
      flush_phase(std::span<const R>(load.data(), got));
    }
  }

  if (staged) {
    // Final flush of the carried partial blocks (zero padded).
    std::vector<WriteReq> reqs;
    for (u32 i = 0; i < num_buckets; ++i) {
      if (staged_cnt[i] == 0) continue;
      R* carry = staging.data() + static_cast<usize>(i) * rpb;
      std::fill(carry + staged_cnt[i], carry + rpb, R{});
      reqs.push_back(stage(out.buckets[i], carry, staged_cnt[i]));
      ++out.data_blocks;
      out.pad_records += rpb - staged_cnt[i];
      staged_cnt[i] = 0;
    }
    ctx.write_batch(reqs);
  }
  return out;
}

struct IntegerSortOptions {
  u64 mem_records = 0;
  u64 range = 0;            // keys are in [0, range); range <= M/B
  bool placement_pass = true;  // paper's step A
  bool staged = false;         // extension: carry partial blocks in memory
  BucketPlacement placement = BucketPlacement::kRotation;
  usize async_depth = 0;  // >= 2: run with the async I/O pipeline at this
                          // depth for this sort; 0 = inherit the context
};

template <Record R>
struct IntegerSortResult {
  StripedRun<R> output;                 // only if placement_pass
  std::vector<RaggedRun<R>> buckets;    // the per-value runs
  SortReport report;
  u64 pad_records = 0;
};

/// Theorem 7.1. Records must have keys (via KeyTraits) in [0, range).
template <Record R>
IntegerSortResult<R> integer_sort(PdmContext& ctx, const StripedRun<R>& input,
                                  const IntegerSortOptions& opt) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  PDM_CHECK(opt.range > 0 && opt.range * rpb <= mem,
            "IntegerSort needs range <= M/B");
  std::optional<AsyncDepthScope> async_scope;
  if (opt.async_depth != 0) async_scope.emplace(ctx.aio(), opt.async_depth);
  ReportBuilder rb(ctx, "IntegerSort", input.size(), mem, rpb);

  IntegerSortResult<R> result;
  StripedRunReader<R> reader(input);
  auto dist = distribute_pass<R>(
      ctx, reader, static_cast<u32>(opt.range), mem, opt.staged,
      [range = opt.range](const R& r) {
        const u64 k = record_key(r);
        PDM_CHECK(k < range, "key out of declared range");
        return static_cast<usize>(k);
      },
      opt.placement);
  result.pad_records = dist.pad_records;

  if (opt.placement_pass) {
    // Step A: reread the buckets in order, write contiguously.
    result.output = StripedRun<R>(ctx, 0);
    TrackedBuffer<R> buf(ctx.budget(), static_cast<usize>(round_down(mem, rpb)));
    for (auto& bucket : dist.buckets) {
      RaggedRunReader<R> br(bucket);
      while (!br.exhausted()) {
        const usize got = br.read_up_to(buf.data(), buf.size());
        if (got == 0) break;
        result.output.append(std::span<const R>(buf.data(), got));
      }
    }
    result.output.finish();
    PDM_ASSERT(result.output.size() == input.size(),
               "IntegerSort record count mismatch");
  }
  result.buckets = std::move(dist.buckets);
  result.report = rb.finish();
  return result;
}

}  // namespace pdm
