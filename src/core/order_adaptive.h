// Order-adaptive external sort: replacement-selection (or up/down) run
// formation followed by forecasting multiway merge levels over the
// variable-length runs. On random input this behaves like the multiway
// baseline with half the runs (expected run length 2M, Bender et al.);
// on nearly-sorted input run formation emits a single run and the sort
// finishes in one pass — strictly fewer than any fixed-run plan.
//
// The planner cannot know the run count without looking at the data, so
// this header also provides the cheap presortedness probe: O(M) sampled
// comparisons at lag M estimate the replacement-selection run count
// (adjacent-pair descents would be wrong — they miss displacement
// magnitude entirely; a k-displaced permutation with k = M/2 looks almost
// random to adjacent pairs yet collapses to one run). The estimate feeds
// plan_options/choose_plan as the est_runs key.
#pragma once

#include <cmath>
#include <functional>
#include <span>

#include "core/sort_report.h"
#include "primitives/multiway.h"
#include "primitives/run_formation.h"

namespace pdm {

struct PresortednessProbe {
  u64 est_runs = 1;     // predicted replacement-selection run count
  double inv_frac = 0;  // fraction of sampled lag-M pairs out of order
  u64 samples = 0;
};

inline u64 probe_runs_estimate(double inv_frac, u64 n, u64 mem) {
  const u64 chunks = ceil_div(std::max<u64>(n, 1), std::max<u64>(mem, 1));
  const auto est = static_cast<u64>(std::llround(inv_frac * static_cast<double>(chunks)));
  return std::max<u64>(1, est);
}

/// In-memory probe over a record span (free when the payload is still in
/// memory, e.g. service ingest): samples up to `mem` evenly spaced pairs
/// at lag `mem` and counts inversions. A pair (i, i+M) inverted means the
/// displacement there exceeds the heap's absorption range, i.e. a run
/// boundary per memory-load of such pairs — so est_runs ≈ inv_frac * N/M,
/// which is N/2M on random input (each pair inverts with probability 1/2),
/// matching replacement selection's expected run count.
template <class R, class Cmp = std::less<R>>
PresortednessProbe probe_presortedness(std::span<const R> data, u64 mem,
                                       Cmp cmp = {}) {
  PresortednessProbe p;
  const u64 n = data.size();
  if (n == 0 || mem == 0 || n <= mem) return p;  // fits the heap: one run
  const u64 lag = mem;
  const u64 span = n - lag;  // valid pair starts
  const u64 want = std::min<u64>(span, mem);
  u64 inv = 0;
  for (u64 i = 0; i < want; ++i) {
    const u64 pos = static_cast<u64>(static_cast<double>(i) *
                                     static_cast<double>(span) /
                                     static_cast<double>(want));
    if (cmp(data[pos + lag], data[pos])) ++inv;
  }
  p.samples = want;
  p.inv_frac = static_cast<double>(inv) / static_cast<double>(want);
  p.est_runs = probe_runs_estimate(p.inv_frac, n, mem);
  return p;
}

/// On-disk probe: same estimator at block granularity — compares the last
/// record of block b against the first record of block b + M/B (record
/// distance within one record of M). Reads at most M records in one
/// batched parallel operation, charged to IoStats like any other read.
template <Record R, class Cmp = std::less<R>>
PresortednessProbe probe_presortedness(PdmContext& ctx,
                                       const StripedRun<R>& input, u64 mem,
                                       Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  PDM_CHECK(mem > 0 && mem % rpb == 0, "M must be a multiple of B");
  PresortednessProbe p;
  const u64 n = input.size();
  if (n == 0 || n <= mem) return p;
  const u64 lag_blocks = mem / rpb;
  const u64 nb = input.num_blocks();
  if (nb <= lag_blocks) return p;
  const u64 span = nb - lag_blocks;  // valid pair starts (block index)
  const u64 want = std::min<u64>(span, std::max<u64>(1, mem / (2 * rpb)));
  TrackedBuffer<R> buf(ctx.budget(), static_cast<usize>(2 * want) * rpb);
  std::vector<ReadReq> reqs;
  reqs.reserve(static_cast<usize>(2 * want));
  std::vector<u64> lows(static_cast<usize>(want));
  for (u64 i = 0; i < want; ++i) {
    const u64 b = static_cast<u64>(static_cast<double>(i) *
                                   static_cast<double>(span) /
                                   static_cast<double>(want));
    lows[static_cast<usize>(i)] = b;
    reqs.push_back(input.read_req(b, buf.data() + (2 * i) * rpb));
    reqs.push_back(
        input.read_req(b + lag_blocks, buf.data() + (2 * i + 1) * rpb));
  }
  ctx.aio().wait(ctx.aio().read_async(reqs));
  u64 inv = 0;
  for (u64 i = 0; i < want; ++i) {
    const u64 b = lows[static_cast<usize>(i)];
    const R& low_last =
        buf.data()[(2 * i) * rpb + input.records_in_block(b) - 1];
    const R& high_first = buf.data()[(2 * i + 1) * rpb];
    if (cmp(high_first, low_last)) ++inv;
  }
  p.samples = want;
  p.inv_frac = static_cast<double>(inv) / static_cast<double>(want);
  p.est_runs = probe_runs_estimate(p.inv_frac, n, mem);
  return p;
}

struct OrderAdaptiveOptions {
  u64 mem_records = 0;
  RunFormationMode mode = RunFormationMode::kReplacementSelection;
  usize lookahead = 1;     // forecasting prefetch per run (0 = naive)
  usize refill_batch = 0;  // 0 = D
  u64 fan_in = 0;          // 0 = maximum that fits in memory
  ThreadPool* pool = nullptr;
};

/// Merge fan-in at the given shape (same memory split as the multiway
/// baseline: one active + `lookahead` forecast blocks per run, D blocks of
/// write headroom).
inline u64 order_adaptive_fan_in(u64 mem, u64 rpb, u32 disks,
                                 usize lookahead = 1) {
  const u64 slots = mem / rpb;
  PDM_CHECK(slots > disks + 2, "memory too small for merging");
  return std::max<u64>(2, (slots - disks) / (1 + lookahead));
}

/// Predicted pass count from a run-count estimate: 1 formation pass plus
/// one per merge level. est_runs == 1 means the formation pass IS the
/// sort.
inline double order_adaptive_predicted_passes(u64 est_runs, u64 fan_in) {
  double levels = 0;
  u64 runs = std::max<u64>(est_runs, 1);
  while (runs > 1) {
    runs = ceil_div(runs, std::max<u64>(fan_in, 2));
    levels += 1;
  }
  return 1.0 + levels;
}

template <Record R, class Cmp = std::less<R>>
SortResult<R> order_adaptive_sort(PdmContext& ctx, const StripedRun<R>& input,
                                  const OrderAdaptiveOptions& opt,
                                  Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  PDM_CHECK(mem % rpb == 0, "M must be a multiple of B");
  PDM_CHECK(opt.mode != RunFormationMode::kFixed,
            "use multiway_merge_sort for fixed runs");
  const u64 fan = opt.fan_in != 0
                      ? opt.fan_in
                      : order_adaptive_fan_in(mem, rpb, ctx.D(), opt.lookahead);

  ReportBuilder rb(ctx, "OrderAdaptive", n, mem, rpb);

  RunFormationOptions fopt;
  fopt.run_len = mem;
  fopt.pool = opt.pool;
  fopt.mode = opt.mode;
  auto runs = form_runs_flat<R>(ctx, input, fopt, cmp);

  // Merge levels over the variable-length runs: multiway_merge_pass
  // already honors per-run sizes and partial final blocks, so nothing
  // about the level loop cares that runs are no longer uniform.
  SortResult<R> result;
  while (true) {
    if (runs.size() == 1) {
      result.output = std::move(runs[0]);
      break;
    }
    std::vector<StripedRun<R>> next;
    for (usize g = 0; g < runs.size(); g += fan) {
      const usize cnt = std::min<usize>(static_cast<usize>(fan),
                                        runs.size() - g);
      std::span<const StripedRun<R>> group(runs.data() + g, cnt);
      StripedRun<R> merged(ctx, static_cast<u32>(g % ctx.D()));
      RunSink<R> sink(merged);
      MergePassOptions mopt;
      mopt.mem_records = mem;
      mopt.lookahead = opt.lookahead;
      mopt.refill_batch = opt.refill_batch;
      multiway_merge_pass<R>(ctx, group, sink, mopt, cmp);
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }
  PDM_ASSERT(result.output.size() == n, "order-adaptive record count mismatch");
  result.report = rb.finish();
  return result;
}

}  // namespace pdm
