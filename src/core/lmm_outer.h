// The shared tail of SevenPass (§6.1 steps 3-5) and ExpectedSixPass
// (§6.2): given the outer unshuffle parts P[i][j] (part j of sorted
// sequence i, produced by folding the unshuffle into the previous stage's
// write), run the outer (l, m)-merge:
//   stage B (3 passes): for each j, (l,m)-merge {P[i][j] : i} into Q_j;
//   stage C (1 pass):   shuffle Q_1..Q_m and window-clean (dirty <= l*m).
#pragma once

#include "core/sort_report.h"
#include "primitives/lmm_merge.h"

namespace pdm {

template <Record R, class Cmp = std::less<R>>
CleanupOutcome lmm_outer_tail(PdmContext& ctx, const FormedRuns<R>& parts,
                              Sink<R>& sink, u64 mem_records,
                              ThreadPool* pool, Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const usize l = parts.size();          // outer sequences
  PDM_CHECK(l > 0, "no outer parts");
  const usize m = parts[0].size();       // outer unshuffle arity
  const u64 part_len = parts[0][0].size();
  PDM_CHECK(part_len % rpb == 0, "outer parts must be block aligned");

  // Stage B: m jobs, each an (l, m_inner)-merge of l runs of part_len.
  std::vector<StripedRun<R>> q;
  q.reserve(m);
  LmmOptions lopt;
  lopt.mem_records = mem_records;
  lopt.pool = pool;
  for (usize j = 0; j < m; ++j) {
    std::vector<StripedRun<R>> group;
    group.reserve(l);
    for (usize i = 0; i < l; ++i) {
      PDM_CHECK(parts[i].size() == m && parts[i][j].size() == part_len,
                "ragged outer part matrix");
      group.push_back(parts[i][j]);  // copy of run metadata (blocks shared)
    }
    StripedRun<R> qj(ctx, static_cast<u32>(j % ctx.D()));
    RunSink<R> qsink(qj);
    const CleanupOutcome oc = lmm_merge<R>(
        ctx, std::span<const StripedRun<R>>(group.data(), group.size()),
        qsink, lopt, cmp);
    PDM_ASSERT(oc.ok, "outer stage-B merge violated its dirty bound");
    q.push_back(std::move(qj));
  }

  // Stage C: shuffle the Q_j and clean; dirty <= l*m <= chunk.
  const u64 chunk = round_down(mem_records, static_cast<u64>(m) * rpb);
  PDM_CHECK(chunk >= static_cast<u64>(l) * m,
            "outer cleanup chunk below the l*m dirty bound");
  ShuffleChunkSource<R> source(ctx, std::span<const StripedRun<R>>(q), chunk);
  CleanupOptions copt;
  copt.chunk_records = chunk;
  copt.abort_on_violation = false;
  copt.pool = pool;
  return streamed_cleanup<R>(ctx, source, sink, copt, cmp);
}

}  // namespace pdm
