// ExpectedSixPass (paper §6.2, Theorem 6.3): SevenPass with stage 1
// replaced by ExpectedTwoPass — runs of length ~M^{3/2}/lambda are formed
// in an expected two passes instead of ThreePass2's three, sorting
// M^2/lambda records in six expected passes.
//
//   passes 1-2: form M-record runs (1 pass); per segment, shuffle-clean
//               the segment's runs into one sorted sequence, emitted
//               through an UnshuffleSink into sqrt(M) outer parts (1
//               pass, verified on line; +3-pass deterministic fallback
//               per segment on violation);
//   passes 3-5: the outer group merges;  pass 6: final shuffle-cleanup.
#pragma once

#include "core/capacity.h"
#include "core/lmm_outer.h"
#include "core/sort_report.h"
#include "primitives/run_formation.h"
#include "util/logging.h"

namespace pdm {

struct ExpectedSixPassOptions {
  u64 mem_records = 0;
  double alpha = 1.0;
  u64 segment_len = 0;  // 0 = choose: largest multiple of M^{?}; see below
  ThreadPool* pool = nullptr;
};

namespace detail {

/// Segment length for the expected stage-1: a multiple of sqrt(M)*B (so
/// the outer parts are block aligned), at most min(cap2, M^{3/2}), and
/// dividing N evenly. Returns 0 if no feasible choice exists.
inline u64 choose_six_pass_segment(u64 n, u64 mem, u64 rpb, double alpha) {
  const u64 s = isqrt(mem);
  const u64 align = s * rpb;  // part alignment: L/s must be a multiple of B
  const u64 cap2 = cap_expected_two_pass(mem, alpha);
  const u64 lmax = std::min<u64>(round_down(cap2, align), mem * s);
  for (u64 segs = ceil_div(n, std::max<u64>(lmax, 1)); segs <= s; ++segs) {
    if (n % segs != 0) continue;
    const u64 len = n / segs;
    if (len % align != 0) continue;
    if (len > mem * s) continue;
    if (len / mem == 0) continue;
    return len;
  }
  return 0;
}

}  // namespace detail

template <Record R, class Cmp = std::less<R>>
SortResult<R> expected_six_pass_sort(PdmContext& ctx,
                                     const StripedRun<R>& input,
                                     const ExpectedSixPassOptions& opt,
                                     Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 s = isqrt(mem);
  const u64 n = input.size();
  PDM_CHECK(s * s == mem, "ExpectedSixPass requires M to be a perfect square");
  PDM_CHECK(rpb == s, "ExpectedSixPass requires B = sqrt(M)");
  const u64 seg_len = opt.segment_len != 0
                          ? opt.segment_len
                          : detail::choose_six_pass_segment(n, mem, rpb,
                                                            opt.alpha);
  PDM_CHECK(seg_len != 0 && n % seg_len == 0 && seg_len % (s * rpb) == 0,
            "no feasible segment length (need N = k * L, L a multiple of "
            "sqrt(M)*B, k <= sqrt(M))");
  PDM_CHECK(seg_len % mem == 0, "segment length must be a multiple of M");
  const u64 segments = n / seg_len;
  PDM_CHECK(segments <= s, "too many segments for the outer merge");

  ReportBuilder rb(ctx, "ExpectedSixPass", n, mem, rpb);
  bool any_fallback = false;

  // Pass 1: M-record runs over the whole input.
  RunFormationOptions fopt;
  fopt.run_len = mem;
  fopt.pool = opt.pool;
  auto runs = form_runs_flat<R>(ctx, input, fopt, cmp);
  const u64 runs_per_seg = seg_len / mem;

  // Pass 2 (expected): per segment, shuffle-clean into the outer parts.
  FormedRuns<R> outer_parts(static_cast<usize>(segments));
  for (u64 i = 0; i < segments; ++i) {
    auto& parts_i = outer_parts[static_cast<usize>(i)];
    parts_i.reserve(static_cast<usize>(s));
    for (u64 j = 0; j < s; ++j) {
      parts_i.emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
    }
    std::span<const StripedRun<R>> seg_runs(
        runs.data() + i * runs_per_seg, static_cast<usize>(runs_per_seg));
    const u64 chunk = round_down(mem, runs_per_seg * rpb);
    bool ok = false;
    {
      UnshuffleSink<R> usink(ctx, std::span<StripedRun<R>>(parts_i.data(), s));
      ShuffleChunkSource<R> source(ctx, seg_runs, chunk);
      CleanupOptions copt;
      copt.chunk_records = chunk;
      copt.abort_on_violation = true;
      copt.pool = opt.pool;
      ok = streamed_cleanup<R>(ctx, source, usink, copt, cmp).ok;
    }
    if (!ok) {
      // Fallback: deterministic (l,m)-merge of this segment's runs (+3
      // passes over this segment only). Discard the partial parts.
      any_fallback = true;
      PDM_LOG(LogLevel::kInfo, "ExpectedSixPass: segment " << i
                                << " fell back to lmm_merge");
      parts_i.clear();
      for (u64 j = 0; j < s; ++j) {
        parts_i.emplace_back(ctx, static_cast<u32>((i + j) % ctx.D()));
      }
      UnshuffleSink<R> usink(ctx, std::span<StripedRun<R>>(parts_i.data(), s));
      LmmOptions lopt;
      lopt.mem_records = mem;
      lopt.pool = opt.pool;
      const CleanupOutcome oc = lmm_merge<R>(ctx, seg_runs, usink, lopt, cmp);
      PDM_ASSERT(oc.ok, "segment fallback violated its dirty bound");
    }
  }

  // Passes 3-6.
  SortResult<R> result;
  result.output = StripedRun<R>(ctx, 0);
  RunSink<R> sink(result.output);
  const CleanupOutcome oc =
      lmm_outer_tail<R>(ctx, outer_parts, sink, mem, opt.pool, cmp);
  PDM_ASSERT(oc.ok, "ExpectedSixPass outer dirty bound violated");
  PDM_ASSERT(oc.emitted == n, "record count mismatch in ExpectedSixPass");

  result.report = rb.finish();
  result.report.fallback_taken = any_fallback;
  return result;
}

}  // namespace pdm
