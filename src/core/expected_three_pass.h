// ExpectedThreePass (paper §6, Theorem 6.1): sorts ~M^{7/4}/lambda^{3/2}
// records in three expected passes.
//
//   passes 1-2: ExpectedTwoPass per segment of length L ~ cap2(M, alpha)
//               (run formation is one pass over the whole input; the
//               per-segment shuffle-cleanups together are the second);
//   pass 3:     shuffle the segment outputs and window-clean, verified on
//               line (Lemma 4.2 with q = L bounds the displacement by M
//               whenever N <= cap_expected_three_pass).
// On a violation in any phase the affected scope falls back to a
// deterministic (l,m)-merge (+3 passes over that scope).
#pragma once

#include <optional>

#include "core/capacity.h"
#include "core/sort_report.h"
#include "primitives/cleanup.h"
#include "primitives/lmm_merge.h"
#include "primitives/multiway.h"
#include "primitives/run_formation.h"
#include "util/logging.h"

namespace pdm {

struct ExpectedThreePassOptions {
  u64 mem_records = 0;
  double alpha = 1.0;
  u64 segment_len = 0;  // 0 = choose automatically
  ThreadPool* pool = nullptr;
  usize async_depth = 0;  // >= 2: async I/O pipeline depth; 0 = inherit
};

namespace detail {

/// Segment length for phase 1: a multiple of M, at most cap2, dividing N
/// with at most M/B segments. Returns 0 when infeasible.
inline u64 choose_three_pass_segment(u64 n, u64 mem, u64 rpb, double alpha) {
  const u64 cap2 = cap_expected_two_pass(mem, alpha);
  const u64 lmax = round_down(std::min(cap2, n), mem);
  const u64 max_segments = mem / rpb;
  for (u64 segs = ceil_div(n, std::max<u64>(lmax, mem)); segs <= max_segments;
       ++segs) {
    if (n % segs != 0) continue;
    const u64 len = n / segs;
    if (len % mem != 0) continue;
    return len;
  }
  return 0;
}

}  // namespace detail

template <Record R, class Cmp = std::less<R>>
SortResult<R> expected_three_pass_sort(PdmContext& ctx,
                                       const StripedRun<R>& input,
                                       const ExpectedThreePassOptions& opt,
                                       Cmp cmp = {}) {
  const usize rpb = ctx.rpb<R>();
  const u64 mem = opt.mem_records;
  const u64 n = input.size();
  PDM_CHECK(mem % rpb == 0, "M must be a multiple of B");
  const u64 seg_len =
      opt.segment_len != 0
          ? opt.segment_len
          : detail::choose_three_pass_segment(n, mem, rpb, opt.alpha);
  PDM_CHECK(seg_len != 0 && n % seg_len == 0 && seg_len % mem == 0,
            "no feasible segment length (need N = k*L, L a multiple of M, "
            "k <= M/B)");
  const u64 segments = n / seg_len;
  PDM_CHECK(segments * rpb <= mem,
            "too many segments: final pass reads one block per segment");

  std::optional<AsyncDepthScope> async_scope;
  if (opt.async_depth != 0) async_scope.emplace(ctx.aio(), opt.async_depth);
  ReportBuilder rb(ctx, "ExpectedThreePass", n, mem, rpb);
  bool any_fallback = false;

  // Pass 1: M-record runs over the whole input.
  RunFormationOptions fopt;
  fopt.run_len = mem;
  fopt.pool = opt.pool;
  auto runs = form_runs_flat<R>(ctx, input, fopt, cmp);
  const u64 runs_per_seg = seg_len / mem;

  // Pass 2 (expected): per segment, shuffle-clean into one sorted run.
  std::vector<StripedRun<R>> seg_sorted;
  seg_sorted.reserve(static_cast<usize>(segments));
  for (u64 g = 0; g < segments; ++g) {
    std::span<const StripedRun<R>> seg_runs(
        runs.data() + g * runs_per_seg, static_cast<usize>(runs_per_seg));
    const u64 chunk = round_down(mem, runs_per_seg * rpb);
    StripedRun<R> sorted(ctx, static_cast<u32>(g % ctx.D()));
    bool ok = false;
    {
      RunSink<R> sink(sorted);
      ShuffleChunkSource<R> source(ctx, seg_runs, chunk);
      CleanupOptions copt;
      copt.chunk_records = chunk;
      copt.abort_on_violation = true;
      copt.pool = opt.pool;
      ok = streamed_cleanup<R>(ctx, source, sink, copt, cmp).ok;
    }
    if (!ok) {
      any_fallback = true;
      PDM_LOG(LogLevel::kInfo, "ExpectedThreePass: segment " << g
                                << " fell back to lmm_merge");
      sorted = StripedRun<R>(ctx, static_cast<u32>(g % ctx.D()));
      RunSink<R> sink(sorted);
      LmmOptions lopt;
      lopt.mem_records = mem;
      lopt.pool = opt.pool;
      const CleanupOutcome oc = lmm_merge<R>(ctx, seg_runs, sink, lopt, cmp);
      PDM_ASSERT(oc.ok, "segment fallback violated its dirty bound");
    }
    seg_sorted.push_back(std::move(sorted));
  }

  // Pass 3 (expected): shuffle the segment outputs and clean, verified.
  SortResult<R> result;
  {
    StripedRun<R> attempt(ctx, 0);
    RunSink<R> sink(attempt);
    const u64 chunk = round_down(mem, segments * rpb);
    ShuffleChunkSource<R> source(
        ctx, std::span<const StripedRun<R>>(seg_sorted), chunk);
    CleanupOptions copt;
    copt.chunk_records = chunk;
    copt.abort_on_violation = true;
    copt.pool = opt.pool;
    const CleanupOutcome oc = streamed_cleanup<R>(ctx, source, sink, copt, cmp);
    if (oc.ok) {
      PDM_ASSERT(oc.emitted == n, "record count mismatch");
      result.output = std::move(attempt);
      result.report = rb.finish();
      result.report.fallback_taken = any_fallback;
      return result;
    }
  }

  // Final-phase fallback: deterministic (l,m)-merge of the segment outputs
  // when feasible, else a forecasting multiway merge (deterministically
  // correct; parallelism is expected rather than guaranteed).
  any_fallback = true;
  PDM_LOG(LogLevel::kInfo,
          "ExpectedThreePass: final phase fell back to a deterministic merge");
  result.output = StripedRun<R>(ctx, 0);
  RunSink<R> sink(result.output);
  bool lmm_feasible = true;
  try {
    (void)detail::choose_lmm_m(segments, seg_len, mem, rpb);
  } catch (const Error&) {
    lmm_feasible = false;
  }
  if (lmm_feasible) {
    LmmOptions lopt;
    lopt.mem_records = mem;
    lopt.pool = opt.pool;
    const CleanupOutcome oc = lmm_merge<R>(
        ctx, std::span<const StripedRun<R>>(seg_sorted), sink, lopt, cmp);
    PDM_ASSERT(oc.ok && oc.emitted == n, "final fallback merge failed");
  } else {
    MergePassOptions mopt;
    mopt.mem_records = mem;
    mopt.lookahead = 1;
    multiway_merge_pass<R>(ctx, std::span<const StripedRun<R>>(seg_sorted),
                           sink, mopt, cmp);
  }
  result.report = rb.finish();
  result.report.fallback_taken = true;
  return result;
}

}  // namespace pdm
