// SortService: multi-tenant scheduling over shared disks and memory.
// Covers admission control (blocking and rejection), mid-queue
// cancellation, small-job batching, failure isolation, concurrent
// stress with mixed record types, and the accounting invariant that
// per-job IoStats sum exactly to the service-wide totals. The whole
// file must be TSan-clean (CI runs it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;          // per-job M in records
constexpr usize kBlockBytes = 256;  // rpb: u64=32, KV64=16, i32=64
constexpr u32 kDisks = 8;

std::shared_ptr<MemoryDiskBackend> make_backend(u64 latency_us = 0) {
  auto b = std::make_shared<MemoryDiskBackend>(kDisks, kBlockBytes);
  b->set_simulated_latency_us(latency_us);
  return b;
}

SortJobSpec spec_of(std::string name, int priority = 0) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  s.priority = priority;
  return s;
}

/// Submits a u64 job whose callback verifies the output equals std::sort
/// of the input; `ok` counts verified jobs, `bad` counts any mismatch.
JobId submit_verified(SortService& svc, SortJobSpec spec,
                      std::vector<u64> data, std::atomic<int>& ok,
                      std::atomic<int>& bad) {
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  return svc.submit<u64>(
      std::move(spec), std::move(data), std::less<u64>{},
      [expected = std::move(expected), &ok, &bad](const SortResult<u64>& res) {
        auto got = res.output.read_all();
        if (got == expected) {
          ++ok;
        } else {
          ++bad;
        }
      });
}

TEST(SortService, PlanAwareAdmissionTightensCachedShapes)
{
  SortService svc(make_backend(), {});
  Rng rng(21);
  SortJobSpec spec = spec_of("shape");
  const u64 n_small = kMem;       // InternalSort shape
  const u64 n_big = 16 * kMem;    // LMM-family shape
  const usize uniform = svc.admission_carve(spec, sizeof(u64), n_small);
  EXPECT_EQ(uniform,
            static_cast<usize>(svc.config().mem_slack * kMem * sizeof(u64)))
      << "uncached shapes must use the conservative uniform slack";

  // Run one job of each shape so their PlanEntries land in the cache.
  std::atomic<int> ok{0}, bad{0};
  submit_verified(svc, spec, make_keys(n_small, Dist::kUniform, rng), ok,
                  bad);
  submit_verified(svc, spec, make_keys(n_big, Dist::kPermutation, rng), ok,
                  bad);
  svc.drain();
  EXPECT_EQ(ok.load(), 2);
  EXPECT_EQ(bad.load(), 0);

  // Cached InternalSort shape: per-algorithm slack, well under uniform.
  const usize internal_carve = svc.admission_carve(spec, sizeof(u64), n_small);
  EXPECT_LT(internal_carve, uniform);
  // Cached LMM shape: looser than InternalSort, never above the
  // conservative bound (at tiny M the fixed D*B overhead dominates and
  // the model clamps to uniform — LMM genuinely needs ~6M there).
  const usize lmm_carve = svc.admission_carve(spec, sizeof(u64), n_big);
  EXPECT_LE(lmm_carve, uniform);
  EXPECT_GT(lmm_carve, internal_carve);
  // An explicit carve always wins.
  SortJobSpec manual = spec_of("manual");
  manual.carve_bytes = 12345;
  EXPECT_EQ(svc.admission_carve(manual, sizeof(u64), n_small), 12345u);

  // The tightened carves are still sufficient: resubmitting the cached
  // shapes (now admitted with per-algorithm slack) completes correctly.
  submit_verified(svc, spec, make_keys(n_small, Dist::kUniform, rng), ok,
                  bad);
  submit_verified(svc, spec, make_keys(n_big, Dist::kPermutation, rng), ok,
                  bad);
  svc.drain();
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(SortService, BasicJobsCompleteSorted)
{
  SortService svc(make_backend(), ServiceConfig{.workers = 2});
  Rng rng(1);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(submit_verified(
        svc, spec_of("job" + std::to_string(i)),
        make_keys(4 * kMem, Dist::kPermutation, rng), ok, bad));
  }
  for (JobId id : ids) {
    JobInfo info = svc.wait(id);
    EXPECT_EQ(info.state, JobState::kDone);
    EXPECT_FALSE(info.algorithm.empty());
    EXPECT_EQ(info.report.n, 4 * kMem);
    EXPECT_GT(info.report.passes, 0.0);
    EXPECT_GT(info.io.total_ops(), 0u);
  }
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(bad.load(), 0);
}

TEST(SortService, AdmissionRejectsJobThatCanNeverFit)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.total_memory_bytes = usize{1} << 20;
  SortService svc(make_backend(), cfg);
  SortJobSpec spec = spec_of("hog");
  spec.mem_records = u64{1} << 20;  // carve = slack * 1M * 8B >> 1MB
  Rng rng(2);
  const JobId id =
      svc.submit<u64>(spec, make_keys(1024, Dist::kUniform, rng));
  JobInfo info = svc.wait(id);  // terminal immediately, no blocking
  EXPECT_EQ(info.state, JobState::kRejected);
  EXPECT_NE(info.error.find("admission control"), std::string::npos);
}

TEST(SortService, AdmissionBlocksUntilMemoryFrees)
{
  ServiceConfig cfg;
  cfg.workers = 2;
  // Room for exactly one default carve at a time.
  cfg.total_memory_bytes =
      static_cast<usize>(cfg.mem_slack * kMem * sizeof(u64)) + 1024;
  SortService svc(make_backend(), cfg);
  Rng rng(3);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(submit_verified(
        svc, spec_of("serial" + std::to_string(i)),
        make_keys(2 * kMem, Dist::kPermutation, rng), ok, bad));
  }
  for (JobId id : ids) EXPECT_EQ(svc.wait(id).state, JobState::kDone);
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(bad.load(), 0);
  // Reservations never exceeded the service budget.
  EXPECT_LE(svc.stats().peak_memory_bytes, cfg.total_memory_bytes);
}

TEST(SortService, CancelMidQueue)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  SortService svc(make_backend(200), cfg);  // latency keeps the worker busy
  Rng rng(4);
  std::atomic<int> ok{0}, bad{0};
  const JobId running = submit_verified(
      svc, spec_of("running"), make_keys(8 * kMem, Dist::kPermutation, rng),
      ok, bad);
  std::atomic<int> cancelled_ran{0};
  std::vector<JobId> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(svc.submit<u64>(
        spec_of("victim" + std::to_string(i)),
        make_keys(2 * kMem, Dist::kUniform, rng), std::less<u64>{},
        [&](const SortResult<u64>&) { ++cancelled_ran; }));
  }
  usize cancelled = 0;
  for (JobId id : queued) cancelled += svc.cancel(id) ? 1 : 0;
  EXPECT_GE(cancelled, 3u);  // the worker can have started at most one
  svc.drain();
  EXPECT_EQ(svc.wait(running).state, JobState::kDone);
  usize observed_cancelled = 0;
  for (JobId id : queued) {
    const JobInfo info = svc.info(id);
    EXPECT_TRUE(info.state == JobState::kCancelled ||
                info.state == JobState::kDone);
    observed_cancelled += info.state == JobState::kCancelled ? 1 : 0;
  }
  EXPECT_EQ(observed_cancelled, cancelled);
  EXPECT_EQ(static_cast<usize>(cancelled_ran.load()),
            queued.size() - cancelled);
  // Cancelling a finished or unknown job is a no-op.
  EXPECT_FALSE(svc.cancel(running));
  EXPECT_FALSE(svc.cancel(9999));
  // Terminal records can be dropped; unknown ids cannot. Lifetime
  // counters survive the forget — only the retained record count drops.
  EXPECT_TRUE(svc.forget(running));
  EXPECT_FALSE(svc.forget(running));
  EXPECT_EQ(svc.stats().submitted, queued.size() + 1);
  EXPECT_EQ(svc.stats().retained, queued.size());
}

TEST(SortService, InfeasibleShapeFailsCleanly)
{
  SortService svc(make_backend(), ServiceConfig{.workers = 1});
  Rng rng(5);
  // n > M and not block-aligned: no paper algorithm or baseline fits.
  const JobId id = svc.submit<u64>(spec_of("misaligned"),
                                   make_keys(1234, Dist::kUniform, rng));
  JobInfo info = svc.wait(id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_NE(info.error.find("no feasible plan"), std::string::npos);
  // The failure did not poison the service.
  std::atomic<int> ok{0}, bad{0};
  const JobId good = submit_verified(svc, spec_of("after"),
                                     make_keys(2 * kMem, Dist::kPermutation,
                                               rng),
                                     ok, bad);
  EXPECT_EQ(svc.wait(good).state, JobState::kDone);
  EXPECT_EQ(ok.load(), 1);
}

TEST(SortService, BatchingCoalescesSmallJobs)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.small_job_records = kMem;  // n <= M: internal-sort sized
  cfg.batch_max = 4;
  SortService svc(make_backend(100), cfg);
  Rng rng(6);
  std::atomic<int> ok{0}, bad{0};
  // Blocker occupies the single worker while the small jobs queue up.
  const JobId blocker = submit_verified(
      svc, spec_of("blocker"), make_keys(8 * kMem, Dist::kPermutation, rng),
      ok, bad);
  std::vector<JobId> smalls;
  for (int i = 0; i < 6; ++i) {
    smalls.push_back(submit_verified(
        svc, spec_of("small" + std::to_string(i)),
        make_keys(kMem / 2, Dist::kUniform, rng), ok, bad));
  }
  svc.drain();
  EXPECT_EQ(svc.wait(blocker).state, JobState::kDone);
  for (JobId id : smalls) EXPECT_EQ(svc.wait(id).state, JobState::kDone);
  EXPECT_EQ(ok.load(), 7);
  EXPECT_EQ(bad.load(), 0);
  const ServiceStats st = svc.stats();
  // 6 small jobs coalesced into at most ceil(6/4)+1 extra claims; without
  // batching this would be 7 worker tasks.
  EXPECT_LT(st.batches_run, 7u);
  // One planner invocation per distinct shape, not per job.
  EXPECT_LE(st.plan_cache_misses, 2u);
  EXPECT_GE(st.plan_cache_hits, 5u);
}

TEST(SortService, ConcurrentPassCountsMatchSingleJobBaseline)
{
  Rng rng(7);
  const auto data = make_keys(4 * kMem, Dist::kPermutation, rng);
  double solo_passes = 0;
  std::string solo_algo;
  {
    SortService svc(make_backend(), ServiceConfig{.workers = 1});
    const JobId id = svc.submit<u64>(spec_of("solo"), data);
    const JobInfo info = svc.wait(id);
    ASSERT_EQ(info.state, JobState::kDone);
    solo_passes = info.report.passes;
    solo_algo = info.algorithm;
  }
  SortService svc(make_backend(), ServiceConfig{.workers = 4});
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(svc.submit<u64>(spec_of("par" + std::to_string(i)), data));
  }
  for (JobId id : ids) {
    const JobInfo info = svc.wait(id);
    ASSERT_EQ(info.state, JobState::kDone);
    EXPECT_EQ(info.algorithm, solo_algo);
    EXPECT_DOUBLE_EQ(info.report.passes, solo_passes)
        << "contention must not change a job's I/O complexity";
  }
}

TEST(SortService, StressMixedWorkloadAccountingInvariant)
{
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.io_depth_total = 8;
  cfg.small_job_records = 512;
  cfg.total_memory_bytes = usize{64} << 20;
  SortService svc(make_backend(20), cfg);
  Rng rng(8);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> all;

  for (int round = 0; round < 6; ++round) {
    // Large and medium u64 jobs at mixed priorities.
    all.push_back(submit_verified(
        svc, spec_of("u64-big" + std::to_string(round), round % 3),
        make_keys(8 * kMem, Dist::kPermutation, rng), ok, bad));
    all.push_back(submit_verified(
        svc, spec_of("u64-mid" + std::to_string(round), 1),
        make_keys(2 * kMem, Dist::kZipf, rng), ok, bad));
    // Batchable small jobs.
    all.push_back(submit_verified(
        svc, spec_of("u64-small" + std::to_string(round)),
        make_keys(256, Dist::kUniform, rng), ok, bad));
    // KV64 payload jobs.
    all.push_back(svc.submit<KV64>(
        spec_of("kv" + std::to_string(round), 2),
        make_kv(2 * kMem, Dist::kFewDistinct, rng)));
    // Signed-key jobs through the new KeyTraits.
    std::vector<std::int32_t> signed_data(2 * kMem);
    for (auto& x : signed_data) x = static_cast<std::int32_t>(rng.next());
    all.push_back(svc.submit<std::int32_t>(
        spec_of("i32-" + std::to_string(round)), std::move(signed_data)));
  }
  // A failure and a rejection mixed into the running system.
  all.push_back(svc.submit<u64>(spec_of("infeasible"),
                                make_keys(1234, Dist::kUniform, rng)));
  SortJobSpec hog = spec_of("hog");
  hog.mem_records = u64{1} << 24;
  all.push_back(svc.submit<u64>(hog, make_keys(64, Dist::kUniform, rng)));
  // Cancel a few queued jobs while workers churn.
  usize cancelled = 0;
  for (usize i = 0; i < all.size(); i += 7) {
    cancelled += svc.cancel(all[i]) ? 1 : 0;
  }
  svc.drain();

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, all.size());
  EXPECT_EQ(st.completed + st.failed + st.cancelled + st.rejected,
            st.submitted);
  EXPECT_EQ(st.cancelled, cancelled);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_GE(st.failed, 1u);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(st.peak_memory_bytes, cfg.total_memory_bytes);
  EXPECT_GT(st.jobs_per_sec, 0.0);
  EXPECT_GE(st.queue_p99_s, st.queue_p50_s);

  // Every job's report stayed within its memory carve.
  const std::vector<JobInfo> job_infos = svc.jobs();
  EXPECT_EQ(job_infos.size(), st.retained);
  for (const JobInfo& j : job_infos) {
    if (j.state != JobState::kDone) continue;
    EXPECT_LE(j.report.peak_memory_bytes,
              static_cast<usize>(cfg.mem_slack * kMem * sizeof(KV64)))
        << j.name;
  }

  // The accounting invariant: per-job deltas sum exactly to the live
  // service totals — nothing double-counted, nothing lost.
  IoStats sum;
  sum.reset(kDisks);
  for (const JobInfo& j : job_infos) {
    sum.read_ops += j.io.read_ops;
    sum.write_ops += j.io.write_ops;
    sum.blocks_read += j.io.blocks_read;
    sum.blocks_written += j.io.blocks_written;
    for (usize d = 0; d < j.io.disk_reads.size(); ++d) {
      sum.disk_reads[d] += j.io.disk_reads[d];
      sum.disk_writes[d] += j.io.disk_writes[d];
    }
  }
  EXPECT_EQ(sum.read_ops, st.io.read_ops);
  EXPECT_EQ(sum.write_ops, st.io.write_ops);
  EXPECT_EQ(sum.blocks_read, st.io.blocks_read);
  EXPECT_EQ(sum.blocks_written, st.io.blocks_written);
  ASSERT_EQ(st.io.disk_reads.size(), kDisks);
  for (usize d = 0; d < kDisks; ++d) {
    EXPECT_EQ(sum.disk_reads[d], st.io.disk_reads[d]) << "disk " << d;
    EXPECT_EQ(sum.disk_writes[d], st.io.disk_writes[d]) << "disk " << d;
  }
}

TEST(SortService, PreemptiveCancelStopsRunningJob)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  Rng rng(20);
  const auto data = make_keys(16 * kMem, Dist::kPermutation, rng);

  // Baseline: the same job run to completion, for its full I/O cost.
  u64 solo_ops = 0;
  {
    SortService svc(make_backend(100), cfg);
    const JobId id = svc.submit<u64>(spec_of("solo"), data);
    const JobInfo info = svc.wait(id);
    ASSERT_EQ(info.state, JobState::kDone);
    solo_ops = info.io.total_ops();
  }

  SortService svc(make_backend(100), cfg);
  std::atomic<int> callback_ran{0};
  const JobId id = svc.submit<u64>(
      spec_of("victim"), data, std::less<u64>{},
      [&](const SortResult<u64>&) { ++callback_ran; });
  // Wait until the worker has actually started it, then preempt.
  while (svc.info(id).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(svc.info(id).state, JobState::kRunning);
  EXPECT_TRUE(svc.cancel(id));
  const JobInfo info = svc.wait(id);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_NE(info.error.find("cancel"), std::string::npos);
  EXPECT_EQ(callback_ran.load(), 0);
  // It stopped mid-flight: strictly less I/O than the full sort.
  EXPECT_LT(info.io.total_ops(), solo_ops);
  EXPECT_EQ(svc.stats().cancelled, 1u);
  // The service keeps serving after a mid-flight stop.
  std::atomic<int> ok{0}, bad{0};
  const JobId after = submit_verified(
      svc, spec_of("after"), make_keys(2 * kMem, Dist::kPermutation, rng),
      ok, bad);
  EXPECT_EQ(svc.wait(after).state, JobState::kDone);
  EXPECT_EQ(ok.load(), 1);
}

TEST(SortService, EdfOrdersWithinPriorityBand)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  SortService svc(make_backend(200), cfg);  // keep the worker busy
  Rng rng(21);
  // Blocker occupies the single worker while the deadlined jobs queue; a
  // higher priority makes it first even if the worker wakes late.
  const JobId blocker = svc.submit<u64>(
      spec_of("blocker", 1), make_keys(8 * kMem, Dist::kPermutation, rng));
  std::mutex order_mu;
  std::vector<std::string> order;
  auto tracked = [&](std::string name, double deadline_s) {
    SortJobSpec s = spec_of(name);
    s.deadline_s = deadline_s;
    return svc.submit<u64>(
        std::move(s), make_keys(2 * kMem, Dist::kUniform, rng),
        std::less<u64>{}, [&order, &order_mu, name](const SortResult<u64>&) {
          std::lock_guard g(order_mu);
          order.push_back(name);
        });
  };
  // Submission order deliberately inverts deadline order.
  tracked("no-deadline", 0);
  tracked("loose", 60.0);
  tracked("tight", 30.0);
  svc.drain();
  EXPECT_EQ(svc.wait(blocker).state, JobState::kDone);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "tight");
  EXPECT_EQ(order[1], "loose");
  EXPECT_EQ(order[2], "no-deadline");
}

TEST(SortService, DeadlineAdmissionRejectsUnmeetable)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.deadline_admission = true;
  SortService svc(make_backend(), cfg);
  Rng rng(22);
  // Planned cost under the default CostModel is ~seconds; a millisecond
  // deadline is unmeetable before the job even queues.
  SortJobSpec hopeless = spec_of("hopeless");
  hopeless.deadline_s = 1e-3;
  const JobId r =
      svc.submit<u64>(hopeless, make_keys(8 * kMem, Dist::kPermutation, rng));
  const JobInfo rejected = svc.wait(r);
  EXPECT_EQ(rejected.state, JobState::kRejected);
  EXPECT_NE(rejected.error.find("deadline admission"), std::string::npos);
  // A generous deadline still admits and completes.
  SortJobSpec fine = spec_of("fine");
  fine.deadline_s = 3600;
  const JobId a =
      svc.submit<u64>(fine, make_keys(8 * kMem, Dist::kPermutation, rng));
  EXPECT_EQ(svc.wait(a).state, JobState::kDone);
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(SortService, RetentionEvictsTerminalRecords)
{
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.retain_terminal_max = 3;
  SortService svc(make_backend(), cfg);
  Rng rng(23);
  std::atomic<int> ok{0}, bad{0};
  for (int i = 0; i < 8; ++i) {
    submit_verified(svc, spec_of("r" + std::to_string(i)),
                    make_keys(2 * kMem, Dist::kPermutation, rng), ok, bad);
  }
  svc.drain();
  const ServiceStats st = svc.stats();
  // Lifetime counters see all 8; the record store is bounded at 3.
  EXPECT_EQ(st.submitted, 8u);
  EXPECT_EQ(st.completed, 8u);
  EXPECT_EQ(st.retained, 3u);
  EXPECT_EQ(st.evicted, 5u);
  EXPECT_EQ(svc.jobs().size(), 3u);
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(bad.load(), 0);

  // TTL mode: every record older than the (tiny) TTL is dropped as soon
  // as a later job goes terminal; only records younger than the TTL — in
  // practice the last transition — survive.
  ServiceConfig ttl_cfg;
  ttl_cfg.workers = 1;
  ttl_cfg.retain_ttl_s = 1e-9;
  SortService ttl_svc(make_backend(), ttl_cfg);
  for (int i = 0; i < 4; ++i) {
    submit_verified(ttl_svc, spec_of("t" + std::to_string(i)),
                    make_keys(2 * kMem, Dist::kPermutation, rng), ok, bad);
  }
  ttl_svc.drain();
  const ServiceStats ts = ttl_svc.stats();
  EXPECT_EQ(ts.completed, 4u);
  EXPECT_LE(ts.retained, 1u);
  EXPECT_GE(ts.evicted, 3u);
}

TEST(SortService, DeadlineMissIsRecorded)
{
  ServiceConfig cfg;
  cfg.workers = 1;
  SortService svc(make_backend(200), cfg);
  Rng rng(9);
  SortJobSpec tight = spec_of("tight");
  tight.deadline_s = 1e-9;  // unmeetable
  const JobId id =
      svc.submit<u64>(tight, make_keys(4 * kMem, Dist::kPermutation, rng));
  const JobInfo info = svc.wait(id);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_TRUE(info.deadline_missed);
  EXPECT_EQ(svc.stats().deadline_missed, 1u);
}

}  // namespace
}  // namespace pdm
