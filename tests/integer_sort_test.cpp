// Tests for §7: IntegerSort (Theorem 7.1) and RadixSort (Theorem 7.2),
// including the pass bounds, the staged-mode ablation, skewed keys and
// the bucket/reader plumbing.
#include <gtest/gtest.h>

#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

TEST(Readers, StripedRunReaderStreamsEverything) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(1);
  auto data = make_keys(1000, Dist::kUniform, rng);  // ragged tail
  auto in = test::stage_input<u64>(*ctx, data);
  StripedRunReader<u64> r(in);
  std::vector<u64> got;
  std::vector<u64> buf(256);
  while (!r.exhausted()) {
    const usize n = r.read_up_to(buf.data(), buf.size());
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(got, data);
}

TEST(IntegerSort, SortsUniformKeys) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(2);
  auto data = make_int_keys(4096, 16, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = 256;
  opt.range = 16;
  auto res = integer_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(IntegerSort, BucketsHoldExactlyTheirValue) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(3);
  auto data = make_int_keys(2048, 16, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = 256;
  opt.range = 16;
  opt.placement_pass = false;
  auto res = integer_sort<u64>(*ctx, in, opt);
  ASSERT_EQ(res.buckets.size(), 16u);
  u64 total = 0;
  for (usize v = 0; v < 16; ++v) {
    auto recs = res.buckets[v].read_all();
    total += recs.size();
    for (u64 r : recs) EXPECT_EQ(r, v);
  }
  EXPECT_EQ(total, data.size());
}

TEST(IntegerSort, WithoutPlacementIsAboutOnePassPlusMu) {
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(4);
  auto data = make_int_keys(32768, 32, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = 1024;
  opt.range = 32;
  opt.placement_pass = false;
  auto res = integer_sort<u64>(*ctx, in, opt);
  // Theorem 7.1: (1+mu) passes, mu < 1.
  EXPECT_GE(res.report.passes, 1.0);
  EXPECT_LT(res.report.passes, 2.0);
}

TEST(IntegerSort, StagedModeCutsPadding) {
  const auto g = Geometry::square(1024);
  Rng rng(5);
  auto data = make_int_keys(32768, 32, rng);
  u64 pad_paper, pad_staged;
  double passes_paper, passes_staged;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    IntegerSortOptions opt;
    opt.mem_records = 1024;
    opt.range = 32;
    auto res = integer_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    pad_paper = res.pad_records;
    passes_paper = res.report.passes;
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    IntegerSortOptions opt;
    opt.mem_records = 1024;
    opt.range = 32;
    opt.staged = true;
    auto res = integer_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
    pad_staged = res.pad_records;
    passes_staged = res.report.passes;
  }
  EXPECT_LT(pad_staged, pad_paper / 4);
  EXPECT_LE(passes_staged, passes_paper + 0.01);
}

TEST(IntegerSort, SkewedKeysStillSortWithBoundedOverhead) {
  // Theorem 7.1's bucket-balance analysis assumes uniform keys. With
  // striped ragged buckets the scheduler still interleaves buckets across
  // disks, so zipf skew does not blow up the pass count — it stays within
  // the same (1 + mu), mu < 1 envelope. (Skew can even *reduce* padding:
  // fat buckets emit more full blocks.)
  const auto g = Geometry::square(1024);
  Rng rng(6);
  auto skewed = make_skewed_int_keys(16384, 32, rng);
  auto ctx = test::make_ctx<u64>(g);
  auto in = test::stage_input<u64>(*ctx, skewed);
  IntegerSortOptions opt;
  opt.mem_records = 1024;
  opt.range = 32;
  auto res = integer_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, skewed);
  EXPECT_GE(res.report.write_passes, 2.0);  // distribute + placement
  EXPECT_LT(res.report.write_passes, 4.0);  // 2(1 + mu), mu < 1
}

TEST(IntegerSort, RejectsRangeOverMOverB) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(256, 0);
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = 256;
  opt.range = 17;  // > M/B = 16
  EXPECT_THROW(integer_sort<u64>(*ctx, in, opt), Error);
}

TEST(IntegerSort, RejectsOutOfRangeKey) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(256, 0);
  data[100] = 99;  // >= range
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = 256;
  opt.range = 16;
  EXPECT_THROW(integer_sort<u64>(*ctx, in, opt), Error);
}

class RadixSortRange : public ::testing::TestWithParam<u32> {};

TEST_P(RadixSortRange, SortsKeysOfAnyWidth) {
  const u32 key_bits = GetParam();
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(key_bits);
  const u64 range = key_bits >= 64 ? ~u64{0} : (u64{1} << key_bits);
  std::vector<u64> data(8192);
  for (auto& x : data) x = key_bits >= 64 ? rng.next() : rng.below(range);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = 256;
  opt.key_bits = key_bits;
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

INSTANTIATE_TEST_SUITE_P(Widths, RadixSortRange,
                         ::testing::Values(1, 4, 8, 16, 32, 48, 64));

TEST(RadixSort, SmallInputSingleLoad) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(9);
  auto data = make_int_keys(200, 1000, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = 256;
  opt.key_bits = 10;
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_LE(res.report.passes, 2.2);  // read + write
}

TEST(RadixSort, Observation72PassBudget) {
  // N = M^2, B = sqrt(M), keys in [0, M^2): Observation 7.2 promises
  // <= 3.6 passes for C = 4. The paper's write-step analysis counts one
  // phase's padding but not its compounding: every MSD round rereads the
  // previous round's padded blocks (~1.5x volume per level), so the
  // honestly-measured figure is ~5.9 passes in paper mode and ~5.3 with
  // the staged extension (EXPERIMENTS.md E9 discusses the gap). Constant
  // number of passes for any N — the theorem's substance — holds.
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(10);
  const u64 n = mem * mem;  // 1M records
  std::vector<u64> data(static_cast<usize>(n));
  for (auto& x : data) x = rng.below(n);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = mem;
  opt.key_bits = 20;  // keys < M^2 = 2^20
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_LE(res.report.passes, 6.5);
  EXPECT_GE(res.report.passes, 3.0);
}

TEST(RadixSort, StagedModeNotWorse) {
  const u64 mem = 1024;
  const auto g = Geometry::square(mem);
  Rng rng(11);
  std::vector<u64> data(65536);
  for (auto& x : data) x = rng.below(1u << 20);
  double p_paper, p_staged;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    RadixSortOptions opt;
    opt.mem_records = mem;
    opt.key_bits = 20;
    p_paper = radix_sort<u64>(*ctx, in, opt).report.passes;
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    RadixSortOptions opt;
    opt.mem_records = mem;
    opt.key_bits = 20;
    opt.staged = true;
    p_staged = radix_sort<u64>(*ctx, in, opt).report.passes;
  }
  EXPECT_LE(p_staged, p_paper + 0.05);
}

TEST(RadixSort, AllEqualKeys) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(4096, 7);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = 256;
  opt.key_bits = 8;
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(RadixSort, KvPayloadsSurvive) {
  const auto g = Geometry::square(256);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  Rng rng(12);
  std::vector<KV64> data(4096);
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = KV64{rng.below(1u << 16), static_cast<u64>(i)};
  }
  auto in = test::stage_input<KV64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = 256;
  opt.key_bits = 16;
  auto res = radix_sort<KV64>(*ctx, in, opt);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

}  // namespace
}  // namespace pdm
