// Distributed sample-sort across shards (Cluster::submit_distributed),
// locked down by a determinism/property harness:
//
//  - splitter quality as a property over input distributions (random /
//    sorted / reverse / duplicate-heavy / adversarial-skew): the largest
//    range stays within (1+eps) * N/P for the configured oversampling,
//    partitions are deterministic per seed, multiset-exact, ordered, and
//    feasibility-rounded so every per-range plan stays within the
//    paper's pass bounds;
//  - end-to-end correctness against a single-shard baseline sort with an
//    exact permutation check (key histogram + sorted-order scan);
//  - the two-level exact-sum IoStats invariant extended across a
//    distributed job's per-range sub-jobs;
//  - elasticity fencing: drain_shard on a shard owning an in-flight
//    range is vetoed (graceful-shrink guard regression), add_shard
//    mid-sort is safe;
//  - a TSan scenario: distributed sort concurrent with small-job
//    traffic, one add_shard mid-sort and one cancel of a distributed
//    job. The whole file must be TSan-clean (CI runs it under
//    -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/adaptive.h"
#include "pdm/backend_factory.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;          // per-job M in records
constexpr usize kBlockBytes = 256;  // rpb: u64=32, KV64=16
constexpr u32 kDisksPerShard = 4;

SortJobSpec spec_of(std::string name, u32 target = SortJobSpec::kAnyShard) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  s.target_shard = target;
  return s;
}

ClusterConfig cluster_cfg(usize shards, usize workers = 2) {
  ClusterConfig cfg;
  cfg.shards = shards;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = workers;
  cfg.shard.io_depth_total = 4;
  return cfg;
}

/// Occupies one worker of `shard` until the returned future's gate opens
/// (the completion callback blocks on it). Lets tests pin the cluster in
/// a known mid-flight state deterministically.
JobId submit_blocker(Cluster& cluster, u32 shard,
                     std::shared_future<void> gate, int idx) {
  Rng rng(100 + static_cast<u64>(idx));
  return cluster.submit<u64>(
      spec_of("blocker" + std::to_string(idx), shard),
      make_keys(kMem, Dist::kUniform, rng), std::less<u64>{},
      [gate](const SortResult<u64>&) { gate.wait(); });
}

// --- splitter quality properties ---------------------------------------

TEST(DistributedSort, SplitterQualityProperty)
{
  const u32 ranges = 4;
  const u32 oversample = 64;
  const u64 n = 32 * kMem;
  const double eps = 0.5;  // max range <= (1+eps) * n/P, w.h.p.
  const Dist dists[] = {Dist::kUniform,     Dist::kPermutation,
                        Dist::kSorted,      Dist::kReverse,
                        Dist::kFewDistinct, Dist::kZipf,
                        Dist::kAllEqual};
  Rng rng(7);
  for (Dist d : dists) {
    auto data = make_keys(n, d, rng);
    RangePartitionStats st;
    auto parts = partition_ranges<u64>(std::span<const u64>(data), ranges,
                                       oversample, kMem, /*seed=*/11,
                                       std::less<u64>{}, &st);
    ASSERT_EQ(parts.size(), ranges) << dist_name(d);
    // Balance: the sampling bound applies to the raw splitter partition
    // for ANY input (position tie-breaking makes all records distinct).
    u64 raw_max = 0;
    u64 total = 0;
    for (u64 s : st.raw_sizes) {
      raw_max = std::max(raw_max, s);
      total += s;
    }
    EXPECT_EQ(total, n) << dist_name(d);
    EXPECT_LE(static_cast<double>(raw_max),
              (1.0 + eps) * static_cast<double>(n) / ranges)
        << dist_name(d);
    EXPECT_GE(st.skew, 1.0) << dist_name(d);
    EXPECT_LE(st.skew, 1.0 + eps) << dist_name(d);
    // Feasibility rounding: every range a multiple of M, total exact.
    u64 sum = 0;
    for (u32 r = 0; r < ranges; ++r) {
      EXPECT_EQ(parts[r].size() % kMem, 0u)
          << dist_name(d) << " range " << r;
      EXPECT_EQ(parts[r].size(), st.sizes[r]);
      sum += parts[r].size();
    }
    EXPECT_EQ(sum, n) << dist_name(d);
    // Ordered ranges: nothing in range r exceeds anything in range r+1.
    for (u32 r = 0; r + 1 < ranges; ++r) {
      if (parts[r].empty() || parts[r + 1].empty()) continue;
      const u64 hi = *std::max_element(parts[r].begin(), parts[r].end());
      const u64 lo =
          *std::min_element(parts[r + 1].begin(), parts[r + 1].end());
      EXPECT_LE(hi, lo) << dist_name(d) << " boundary " << r;
    }
    // Exact multiset: concatenation is a permutation of the input.
    std::vector<u64> cat;
    cat.reserve(n);
    for (const auto& p : parts) cat.insert(cat.end(), p.begin(), p.end());
    std::sort(cat.begin(), cat.end());
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(cat, expected) << dist_name(d);
    // Determinism: same seed, same partition — byte for byte.
    auto again = partition_ranges<u64>(std::span<const u64>(data), ranges,
                                       oversample, kMem, /*seed=*/11);
    EXPECT_EQ(parts, again) << dist_name(d);
  }
}

TEST(DistributedSort, AdversarialRotationStaysBalanced)
{
  // make_rotated defeats the expected-pass algorithms' displacement
  // bound; the sampler must not care.
  const u64 n = 32 * kMem;
  auto data = make_rotated(n, n / 2);
  RangePartitionStats st;
  auto parts = partition_ranges<u64>(std::span<const u64>(data), 4, 64,
                                     kMem, 5, std::less<u64>{}, &st);
  EXPECT_LE(st.skew, 1.5);
  u64 sum = 0;
  for (const auto& p : parts) sum += p.size();
  EXPECT_EQ(sum, n);
}

TEST(DistributedSort, FirstCutRankRoundingToZeroStaysSound)
{
  // Regression: a first splitter whose rank rounds to 0 (fewer than M/2
  // records below it) must yield an EMPTY range 0 bounded by the true
  // rank-0 minimum — not whatever record sits at original position 0,
  // which made range sizes non-multiples of M and could leave the
  // boundary array unsorted.
  const u32 ranges = 4;
  const u64 n = 8 * kMem;
  Rng rng(43);
  const auto data = make_keys(n, Dist::kUniform, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  int zero_cut_seeds = 0;
  for (u64 seed = 0; seed < 600; ++seed) {
    RangePartitionStats st;
    auto parts = partition_ranges<u64>(std::span<const u64>(data), ranges,
                                       /*oversample=*/1, kMem, seed,
                                       std::less<u64>{}, &st);
    if (st.raw_sizes[0] < kMem / 2) {  // this seed's first cut rounds to 0
      ++zero_cut_seeds;
      EXPECT_EQ(st.sizes[0], 0u) << "seed " << seed;
    }
    u64 sum = 0;
    for (u32 r = 0; r < ranges; ++r) {
      EXPECT_EQ(parts[r].size() % kMem, 0u)
          << "seed " << seed << " range " << r;
      sum += parts[r].size();
    }
    EXPECT_EQ(sum, n) << "seed " << seed;
    for (u32 r = 0; r + 1 < ranges; ++r) {
      if (parts[r].empty() || parts[r + 1].empty()) continue;
      EXPECT_LE(*std::max_element(parts[r].begin(), parts[r].end()),
                *std::min_element(parts[r + 1].begin(), parts[r + 1].end()))
          << "seed " << seed << " boundary " << r;
    }
    std::vector<u64> cat;
    cat.reserve(n);
    for (const auto& p : parts) cat.insert(cat.end(), p.begin(), p.end());
    std::sort(cat.begin(), cat.end());
    EXPECT_EQ(cat, expected) << "seed " << seed;
  }
  // With oversample=1 the first splitter's rank rounds to 0 for ~2% of
  // seeds on uniform data; 600 draws make missing them all vanishingly
  // unlikely — a zero here means the scenario went untested.
  EXPECT_GT(zero_cut_seeds, 0);
}

TEST(DistributedSort, RoundedRangesKeepPaperPlans)
{
  // Every rounded range size must admit a plan, and a range no bigger
  // than a shard-sized job must never need more passes than the paper
  // grants that size (plan expected_passes is the paper bound).
  const u64 n = 64 * kMem;
  const u64 rpb = kBlockBytes / sizeof(u64);
  Rng rng(3);
  auto data = make_keys(n, Dist::kZipf, rng);
  RangePartitionStats st;
  partition_ranges<u64>(std::span<const u64>(data), 4, 64, kMem, 9,
                        std::less<u64>{}, &st);
  for (u64 s : st.sizes) {
    if (s == 0) continue;
    const PlanEntry e = choose_plan(s, kMem, rpb, 1.0);
    EXPECT_TRUE(e.feasible);
    // A quarter-sized range needs at most the whole dataset's passes.
    const PlanEntry whole = choose_plan(n, kMem, rpb, 1.0);
    EXPECT_LE(e.expected_passes, whole.expected_passes);
  }
}

// --- end-to-end --------------------------------------------------------

TEST(DistributedSort, EndToEndMatchesSingleShardBaseline)
{
  const u64 n = 16 * kMem;
  Rng rng(21);
  auto data = make_keys(n, Dist::kPermutation, rng);

  // Single-shard baseline: the same dataset through a one-shard cluster.
  std::vector<u64> baseline;
  {
    Cluster one(memory_backend_factory(kDisksPerShard, kBlockBytes),
                cluster_cfg(1));
    const JobId id = one.submit<u64>(
        spec_of("baseline"), data, std::less<u64>{},
        [&baseline](const SortResult<u64>& res) {
          baseline = res.output.read_all();
        });
    EXPECT_EQ(one.wait(id).state, JobState::kDone);
  }
  ASSERT_EQ(baseline.size(), n);

  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(4));
  std::vector<u64> out;
  std::atomic<int> called{0};
  const JobId id = cluster.submit_distributed<u64>(
      spec_of("giant"), data, DistributedOptions{}, std::less<u64>{},
      [&out, &called](const DistributedSortResult<u64>& res) {
        out = res.output;
        ++called;
      });
  const DistributedInfo info = cluster.distributed_wait(id);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_EQ(info.n, n);
  EXPECT_EQ(called.load(), 1);

  // Exact match with the single-shard baseline (u64: sorted output is
  // unique, so this is the full permutation check).
  ASSERT_EQ(out.size(), baseline.size());
  EXPECT_EQ(out, baseline);

  // Per-range pass counts match the paper's bounds for each range size:
  // the planner's expected_passes IS the paper bound for the shape.
  const u64 rpb = kBlockBytes / sizeof(u64);
  ASSERT_EQ(info.range_records.size(), info.range_reports.size());
  u64 accounted = 0;
  for (usize r = 0; r < info.range_records.size(); ++r) {
    const u64 nr = info.range_records[r];
    accounted += nr;
    if (nr == 0) continue;
    const PlanEntry e = choose_plan(nr, kMem, rpb, 1.0);
    EXPECT_EQ(info.range_reports[r].algorithm, algo_name(e.algo))
        << "range " << r;
    test::expect_passes_near(info.range_reports[r], e.expected_passes, 0.2);
  }
  EXPECT_EQ(accounted, n);
  EXPECT_GE(info.skew, 1.0);

  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.distributed_jobs, 1u);
  EXPECT_EQ(st.distributed_completed, 1u);
  EXPECT_EQ(st.distributed_active, 0u);
  EXPECT_EQ(st.dist_range_records, info.range_records);
  EXPECT_DOUBLE_EQ(st.dist_skew, info.skew);
  EXPECT_GE(st.dist_skew_max, st.dist_skew);
}

TEST(DistributedSort, DuplicateHeavyKvIsExactPermutation)
{
  // Duplicate-heavy KV: equal keys carry distinct payloads, so a lost or
  // duplicated record shows in the histogram even when key order looks
  // right.
  const u64 n = 16 * kMem;
  Rng rng(22);
  auto data = make_kv(n, Dist::kFewDistinct, rng);
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(4));
  std::vector<KV64> out;
  const JobId id = cluster.submit_distributed<KV64>(
      spec_of("kv-giant"), data, DistributedOptions{}, std::less<KV64>{},
      [&out](const DistributedSortResult<KV64>& res) { out = res.output; });
  EXPECT_EQ(cluster.distributed_wait(id).state, JobState::kDone);
  ASSERT_EQ(out.size(), n);
  // Sorted-order scan over keys...
  for (usize i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].key, out[i].key) << "disorder at " << i;
  }
  // ...plus an exact record histogram: same multiset, payloads included.
  std::map<std::pair<u64, u64>, i64> hist;
  for (const KV64& r : data) ++hist[{r.key, r.value}];
  for (const KV64& r : out) --hist[{r.key, r.value}];
  for (const auto& [rec, count] : hist) {
    EXPECT_EQ(count, 0) << "record {" << rec.first << "," << rec.second
                        << "} lost or duplicated";
  }
}

TEST(DistributedSort, IoStatsInvariantAcrossRangeSubJobs)
{
  // The two-level exact-sum invariant, with a distributed job's range
  // sub-jobs in the mix: every sub-job is an ordinary shard job whose
  // IoStats delta sums into its shard's totals, and shard totals sum
  // into the cluster totals.
  const usize kShards = 2;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 10),
                  cluster_cfg(kShards));
  Rng rng(23);
  std::vector<JobId> regular;
  for (int i = 0; i < 4; ++i) {
    regular.push_back(cluster.submit<u64>(
        spec_of("small" + std::to_string(i)),
        make_keys(2 * kMem, Dist::kUniform, rng)));
  }
  const JobId dist = cluster.submit_distributed<u64>(
      spec_of("dist"), make_keys(8 * kMem, Dist::kPermutation, rng));
  const DistributedInfo info = cluster.distributed_wait(dist);
  EXPECT_EQ(info.state, JobState::kDone);
  cluster.drain();

  // Every range sub-job is visible through the cluster handles and did
  // real I/O (staging + sorting + the extent-layer export).
  for (usize r = 0; r < info.sub_jobs.size(); ++r) {
    if (info.sub_jobs[r] == 0) continue;
    const JobInfo ji = cluster.info(info.sub_jobs[r]);
    EXPECT_EQ(ji.state, JobState::kDone);
    EXPECT_EQ(ji.n, info.range_records[r]);
    EXPECT_GT(ji.io.read_ops, 0u);
    EXPECT_GT(ji.io.write_ops, 0u);
    EXPECT_EQ(ji.shard, info.range_shards[r]);
  }

  const ClusterStats st = cluster.stats();
  // Level 1: per-job deltas (sub-jobs included) sum exactly to each
  // shard's totals.
  for (usize s = 0; s < cluster.num_shards(); ++s) {
    const ServiceStats& ss = st.per_shard[s];
    IoStats sum;
    sum.reset(kDisksPerShard);
    for (const JobInfo& j : cluster.shard(s).jobs()) {
      sum.read_ops += j.io.read_ops;
      sum.write_ops += j.io.write_ops;
      sum.blocks_read += j.io.blocks_read;
      sum.blocks_written += j.io.blocks_written;
    }
    EXPECT_EQ(sum.read_ops, ss.io.read_ops) << "shard " << s;
    EXPECT_EQ(sum.write_ops, ss.io.write_ops) << "shard " << s;
    EXPECT_EQ(sum.blocks_read, ss.io.blocks_read) << "shard " << s;
    EXPECT_EQ(sum.blocks_written, ss.io.blocks_written) << "shard " << s;
  }
  // Level 2: shard totals sum exactly to cluster totals.
  IoStats shard_sum;
  shard_sum.reset(0);
  for (const ServiceStats& ss : st.per_shard) {
    shard_sum.read_ops += ss.io.read_ops;
    shard_sum.write_ops += ss.io.write_ops;
    shard_sum.blocks_read += ss.io.blocks_read;
    shard_sum.blocks_written += ss.io.blocks_written;
  }
  EXPECT_EQ(shard_sum.read_ops, st.io.read_ops);
  EXPECT_EQ(shard_sum.write_ops, st.io.write_ops);
  EXPECT_EQ(shard_sum.blocks_read, st.io.blocks_read);
  EXPECT_EQ(shard_sum.blocks_written, st.io.blocks_written);
}

TEST(DistributedSort, ThrowingCompletionCallbackFailsJobSafely)
{
  // A user callback that throws must not std::terminate the coordinator
  // thread or leave the job's fence held: the job goes kFailed with the
  // exception message, and the cluster keeps serving.
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(2));
  Rng rng(41);
  const JobId id = cluster.submit_distributed<u64>(
      spec_of("thrower"), make_keys(8 * kMem, Dist::kPermutation, rng),
      DistributedOptions{}, std::less<u64>{},
      [](const DistributedSortResult<u64>&) {
        throw std::runtime_error("user callback boom");
      });
  const DistributedInfo info = cluster.distributed_wait(id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_NE(info.error.find("user callback boom"), std::string::npos)
      << info.error;
  cluster.drain();  // fence lifted: drain() returns
  EXPECT_EQ(cluster.stats().distributed_failed, 1u);

  std::vector<u64> out;
  const JobId ok = cluster.submit_distributed<u64>(
      spec_of("after"), make_keys(8 * kMem, Dist::kPermutation, rng),
      DistributedOptions{}, std::less<u64>{},
      [&out](const DistributedSortResult<u64>& res) { out = res.output; });
  EXPECT_EQ(cluster.distributed_wait(ok).state, JobState::kDone);
  EXPECT_EQ(out.size(), 8 * kMem);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(DistributedSort, ForgetDropsTerminalDistributedRecord)
{
  // forget() covers distributed records: refused while the coordinator
  // is live, drops the terminal record exactly once, and lookups of the
  // forgotten id throw instead of growing dist_records_ forever.
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(2, /*workers=*/1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  submit_blocker(cluster, 0, opened, 0);
  submit_blocker(cluster, 1, opened, 1);
  Rng rng(42);
  const JobId id = cluster.submit_distributed<u64>(
      spec_of("ephemeral"), make_keys(8 * kMem, Dist::kPermutation, rng));
  EXPECT_FALSE(cluster.forget(id));  // ranges parked: coordinator live
  gate.set_value();
  EXPECT_EQ(cluster.distributed_wait(id).state, JobState::kDone);
  EXPECT_TRUE(cluster.forget(id));
  EXPECT_FALSE(cluster.forget(id));
  EXPECT_THROW(cluster.distributed_info(id), Error);
  EXPECT_THROW(cluster.distributed_wait(id), Error);
}

// --- elasticity fencing ------------------------------------------------

TEST(DistributedSort, DrainShardVetoWhileRangeInFlight)
{
  // Graceful-shrink guard regression: while a distributed job is live,
  // draining a shard that owns one of its ranges throws — before any
  // topology change — and succeeds again once the job is done.
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(2, /*workers=*/1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  const JobId b0 = submit_blocker(cluster, 0, opened, 0);
  const JobId b1 = submit_blocker(cluster, 1, opened, 1);

  Rng rng(31);
  auto data = make_keys(8 * kMem, Dist::kPermutation, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<u64> out;
  const JobId dist = cluster.submit_distributed<u64>(
      spec_of("fenced"), std::move(data), DistributedOptions{},
      std::less<u64>{},
      [&out](const DistributedSortResult<u64>& res) { out = res.output; });

  // Both shards own an in-flight range (parked behind the blockers).
  EXPECT_THROW(cluster.drain_shard(0), Error);
  EXPECT_THROW(cluster.drain_shard(1), Error);
  EXPECT_TRUE(cluster.shard_active(0));
  EXPECT_TRUE(cluster.shard_active(1));
  EXPECT_EQ(cluster.stats().shards_drained, 0u);

  gate.set_value();
  EXPECT_EQ(cluster.distributed_wait(dist).state, JobState::kDone);
  EXPECT_EQ(out, expected);
  EXPECT_EQ(cluster.wait(b0).state, JobState::kDone);
  EXPECT_EQ(cluster.wait(b1).state, JobState::kDone);

  // Fence lifted: the same drain now goes through.
  cluster.drain_shard(1);
  EXPECT_FALSE(cluster.shard_active(1));
  EXPECT_EQ(cluster.stats().shards_drained, 1u);
}

TEST(DistributedSort, AddShardMidSortIsSafe)
{
  // add_shard during a distributed sort must not disturb the pinned
  // ranges: the job completes exactly, and the newcomer serves traffic.
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                  cluster_cfg(2, /*workers=*/1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  submit_blocker(cluster, 0, opened, 0);
  submit_blocker(cluster, 1, opened, 1);

  Rng rng(32);
  auto data = make_keys(8 * kMem, Dist::kPermutation, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<u64> out;
  const JobId dist = cluster.submit_distributed<u64>(
      spec_of("elastic"), std::move(data), DistributedOptions{},
      std::less<u64>{},
      [&out](const DistributedSortResult<u64>& res) { out = res.output; });

  const u32 newcomer = cluster.add_shard();  // mid-sort: ranges are parked
  gate.set_value();
  const DistributedInfo info = cluster.distributed_wait(dist);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_EQ(out, expected);
  // Ranges stayed on their originally pinned shards.
  for (u32 owner : info.range_shards) EXPECT_NE(owner, newcomer);
  // The new shard is live for ordinary traffic.
  const JobId extra = cluster.submit<u64>(
      spec_of("after", newcomer), make_keys(kMem, Dist::kUniform, rng));
  EXPECT_EQ(cluster.wait(extra).state, JobState::kDone);
  EXPECT_EQ(cluster.shard_of(extra), newcomer);
}

// --- TSan scenario -----------------------------------------------------

TEST(DistributedSort, ConcurrentTrafficElasticityAndCancel)
{
  // Distributed sort + independent small-job traffic + one add_shard
  // mid-sort + one cancel of a distributed job, all concurrent: no lost
  // or duplicated records, every range sub-job reaches a terminal state,
  // hold-queue accounting balances.
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 10),
                  cluster_cfg(3, /*workers=*/1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  for (u32 s = 0; s < 3; ++s) submit_blocker(cluster, s, opened, s);

  Rng rng(33);
  // The victim: parked behind the blockers, cancelled before release.
  const JobId victim = cluster.submit_distributed<u64>(
      spec_of("victim"), make_keys(8 * kMem, Dist::kPermutation, rng));
  EXPECT_TRUE(cluster.cancel(victim));

  // The survivor, plus concurrent small traffic and an add_shard.
  auto data = make_keys(16 * kMem, Dist::kPermutation, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<u64> out;
  const JobId survivor = cluster.submit_distributed<u64>(
      spec_of("survivor"), std::move(data), DistributedOptions{},
      std::less<u64>{},
      [&out](const DistributedSortResult<u64>& res) { out = res.output; });

  std::atomic<int> ok{0}, bad{0};
  std::thread traffic([&] {
    Rng trng(34);
    for (int i = 0; i < 10; ++i) {
      auto small = make_keys(kMem, Dist::kUniform, trng);
      auto want = small;
      std::sort(want.begin(), want.end());
      cluster.submit<u64>(
          spec_of("t" + std::to_string(i)), std::move(small),
          std::less<u64>{},
          [want = std::move(want), &ok, &bad](const SortResult<u64>& res) {
            if (res.output.read_all() == want) {
              ++ok;
            } else {
              ++bad;
            }
          });
    }
  });
  std::thread elastic([&] { cluster.add_shard(); });
  gate.set_value();
  traffic.join();
  elastic.join();

  const DistributedInfo vinfo = cluster.distributed_wait(victim);
  EXPECT_EQ(vinfo.state, JobState::kCancelled);
  const DistributedInfo sinfo = cluster.distributed_wait(survivor);
  EXPECT_EQ(sinfo.state, JobState::kDone);
  EXPECT_EQ(out, expected);  // no lost or duplicated records
  cluster.drain();

  // Every range sub-job of both distributed jobs is terminal.
  for (const DistributedInfo* info : {&vinfo, &sinfo}) {
    for (JobId sub : info->sub_jobs) {
      if (sub == 0) continue;
      EXPECT_TRUE(job_state_terminal(cluster.info(sub).state));
    }
  }

  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.distributed_jobs, 2u);
  EXPECT_EQ(st.distributed_completed, 1u);
  EXPECT_EQ(st.distributed_cancelled, 1u);
  EXPECT_EQ(st.distributed_active, 0u);
  EXPECT_EQ(ok.load(), 10);
  EXPECT_EQ(bad.load(), 0);
  // Hold-queue accounting balances: nothing parked, nothing live, and
  // the terminal states sum back to every submission.
  EXPECT_EQ(st.held_now, 0u);
  EXPECT_EQ(st.submitted,
            st.completed + st.failed + st.cancelled + st.rejected);
  EXPECT_EQ(st.shards_added, 1u);
}

}  // namespace
}  // namespace pdm
