// Deep tests for the two deterministic three-pass sorts (Theorem 3.1 and
// Lemma 4.1): multiple geometries, all input distributions, 0-1 stress
// patterns aimed at the dirty-band arguments, and exact pass counts.
#include <gtest/gtest.h>

#include <numeric>

#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

struct Case {
  u64 mem;
  Dist dist;
};

class ThreePassBoth : public ::testing::TestWithParam<Case> {};

TEST_P(ThreePassBoth, LmmSortsAtCapacity) {
  const auto [mem, dist] = GetParam();
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(mem * 7 + static_cast<u64>(dist));
  const u64 n = mem * isqrt(mem);
  auto data = make_keys(static_cast<usize>(n), dist, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = mem;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0);
}

TEST_P(ThreePassBoth, MeshSortsAtCapacity) {
  const auto [mem, dist] = GetParam();
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(mem * 13 + static_cast<u64>(dist));
  const u64 n = mem * isqrt(mem);
  auto data = make_keys(static_cast<usize>(n), dist, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = mem;
  auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = "M" + std::to_string(info.param.mem) + "_" +
                  dist_name(info.param.dist);
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ThreePassBoth,
    ::testing::Values(Case{64, Dist::kUniform}, Case{64, Dist::kSorted},
                      Case{64, Dist::kReverse}, Case{64, Dist::kAllEqual},
                      Case{256, Dist::kUniform}, Case{256, Dist::kPermutation},
                      Case{256, Dist::kSorted}, Case{256, Dist::kReverse},
                      Case{256, Dist::kFewDistinct}, Case{256, Dist::kZipf},
                      Case{256, Dist::kAllEqual},
                      Case{256, Dist::kNearlySorted},
                      Case{1024, Dist::kUniform}, Case{1024, Dist::kZipf},
                      Case{1024, Dist::kReverse}),
    case_name);

// 0-1 stress: the mesh proof is a dirty-band argument over binary inputs.
// Sweep structured binary patterns that maximize the dirty band.
class MeshZeroOne : public ::testing::TestWithParam<int> {};

TEST_P(MeshZeroOne, StructuredBinaryPatterns) {
  const int pattern = GetParam();
  const u64 mem = 256;
  const u64 s = 16;
  const u64 n = mem * s;  // 4096
  const auto g = Geometry::square(mem);
  Rng rng(static_cast<u64>(pattern) * 31 + 5);
  std::vector<u64> data(static_cast<usize>(n));
  switch (pattern) {
    case 0:  // alternating
      for (usize i = 0; i < n; ++i) data[i] = i % 2;
      break;
    case 1:  // ones block first (max displacement for 0-1)
      data = make_ones_block_first(n, n / 2);
      break;
    case 2:  // each row constant, rows alternating
      for (usize i = 0; i < n; ++i) data[i] = (i / s) % 2;
      break;
    case 3:  // random binary, p = 1/2
      for (auto& x : data) x = rng.below(2);
      break;
    case 4:  // random binary, sparse ones
      for (auto& x : data) x = rng.below(16) == 0 ? 1 : 0;
      break;
    case 5:  // random binary, sparse zeros
      for (auto& x : data) x = rng.below(16) == 0 ? 0 : 1;
      break;
    case 6:  // descending ramp of 8 values (stresses ties + band)
      for (usize i = 0; i < n; ++i) data[i] = 7 - (i * 8) / n;
      break;
    default:  // single one at front / back
      data.assign(n, pattern == 7 ? 0 : 1);
      data[pattern == 7 ? 0 : n - 1] = pattern == 7 ? 1 : 0;
      break;
  }
  auto ctx = test::make_ctx<u64>(g);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = mem;
  auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

INSTANTIATE_TEST_SUITE_P(Patterns, MeshZeroOne, ::testing::Range(0, 9));

TEST(ThreePassLmm, ManyRandomSeeds) {
  const u64 mem = 64;  // s = 8: tiny, so run many seeds
  const auto g = Geometry::square(mem);
  for (u64 seed = 0; seed < 25; ++seed) {
    auto ctx = test::make_ctx<u64>(g, seed + 1);
    Rng rng(seed);
    auto data = make_keys(static_cast<usize>(mem * 8), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
  }
}

TEST(ThreePassMesh, ManyRandomSeeds) {
  const u64 mem = 64;
  const auto g = Geometry::square(mem);
  for (u64 seed = 0; seed < 25; ++seed) {
    auto ctx = test::make_ctx<u64>(g, seed + 1);
    Rng rng(seed + 1000);
    auto data = make_keys(static_cast<usize>(mem * 8), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassMeshOptions opt;
    opt.mem_records = mem;
    auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
  }
}

TEST(ThreePassLmm, BelowCapacityMultiplesOfM) {
  const auto g = Geometry::square(256);
  for (u64 l : {1ull, 2ull, 5ull, 9ull, 16ull}) {
    auto ctx = test::make_ctx<u64>(g, l);
    Rng rng(l);
    auto data = make_keys(static_cast<usize>(l * 256), Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = 256;
    auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
    test::expect_sorted_output<u64>(res.output, data);
  }
}

TEST(ThreePassLmm, RejectsOverCapacity) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(256 * 17, 1);  // > M*B = 16M
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 256;
  EXPECT_THROW(three_pass_lmm_sort<u64>(*ctx, in, opt), Error);
}

TEST(ThreePassLmm, RejectsNonMultipleOfM) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(256 + 16, 1);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 256;
  EXPECT_THROW(three_pass_lmm_sort<u64>(*ctx, in, opt), Error);
}

TEST(ThreePassMesh, RejectsWrongShape) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> data(256 * 8, 1);  // not M*sqrt(M)
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = 256;
  EXPECT_THROW(three_pass_mesh_sort<u64>(*ctx, in, opt), Error);
}

TEST(ThreePass, ReadWritePassesBalanced) {
  // Both algorithms do exactly 3 read passes and 3 write passes.
  const auto g = Geometry::square(256);
  {
    auto ctx = test::make_ctx<u64>(g);
    Rng rng(3);
    auto data = make_keys(4096, Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = 256;
    auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
    EXPECT_NEAR(res.report.read_passes, 3.0, 0.1);
    EXPECT_NEAR(res.report.write_passes, 3.0, 0.1);
  }
  {
    auto ctx = test::make_ctx<u64>(g);
    Rng rng(4);
    auto data = make_keys(4096, Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassMeshOptions opt;
    opt.mem_records = 256;
    auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
    EXPECT_NEAR(res.report.read_passes, 3.0, 0.1);
    EXPECT_NEAR(res.report.write_passes, 3.0, 0.1);
  }
}

TEST(ThreePass, FullDiskUtilization) {
  // Oblivious layouts must earn (near-)full parallelism.
  const auto g = Geometry::square(1024);  // D = 8
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(5);
  auto data = make_keys(1024 * 32, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 1024;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
  EXPECT_GT(res.report.utilization, 0.95 * g.disks);
}

TEST(ThreePass, MemoryBudgetWithinDocumentedSlack)
{
  // DESIGN.md: ThreePass2 peak is ~2M records (+ O(D*B) staging).
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  const usize slack_bytes =
      static_cast<usize>(2.5 * 1024 * sizeof(u64)) +
      g.disks * g.rpb * sizeof(u64) * 2;
  ctx->budget().set_limit(slack_bytes);
  Rng rng(6);
  auto data = make_keys(1024 * 32, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = 1024;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);  // must not throw
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_LE(res.report.peak_memory_bytes, slack_bytes);
}

}  // namespace
}  // namespace pdm
