// End-to-end smoke tests: every sorter on a small geometry, checking both
// correctness and the headline pass counts. The deeper per-algorithm
// suites live in the dedicated *_test.cpp files.
#include <gtest/gtest.h>

#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/adaptive.h"
#include "core/expected_six_pass.h"
#include "core/expected_three_pass.h"
#include "core/expected_two_pass.h"
#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "core/seven_pass.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

constexpr u64 kM = 256;  // s = B = 16, D = 4

std::vector<u64> make_input(u64 n, u64 seed) {
  Rng rng(seed);
  return make_keys(static_cast<usize>(n), Dist::kUniform, rng);
}

TEST(Smoke, ThreePassLmm) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  auto data = make_input(kM * 16, 1);  // M^1.5
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = kM;
  auto res = three_pass_lmm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0);
}

TEST(Smoke, ThreePassMesh) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  auto data = make_input(kM * 16, 2);
  auto in = test::stage_input<u64>(*ctx, data);
  ThreePassMeshOptions opt;
  opt.mem_records = kM;
  auto res = three_pass_mesh_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0);
}

TEST(Smoke, ExpectedTwoPass) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 4 * kM;  // well inside cap2
  auto data = make_input(n, 3);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions opt;
  opt.mem_records = kM;
  auto res = expected_two_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_FALSE(res.report.fallback_taken);
  test::expect_passes_near(res.report, 2.0);
}

TEST(Smoke, ExpectedThreePass) {
  const auto g = Geometry::square(1024);  // bigger M so segments exist
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 16 * 1024 * 4;  // 64K = 4 segments of 16K (16 runs each)
  auto data = make_input(n, 4);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedThreePassOptions opt;
  opt.mem_records = 1024;
  opt.segment_len = 16 * 1024;
  auto res = expected_three_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0, 0.3);
}

TEST(Smoke, SevenPass) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = kM * kM;  // M^2 = 65536
  auto data = make_input(n, 5);
  auto in = test::stage_input<u64>(*ctx, data);
  SevenPassOptions opt;
  opt.mem_records = kM;
  auto res = seven_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 7.0, 0.3);
}

TEST(Smoke, ExpectedSixPass) {
  const u64 m = 1024;  // s = 32: enough headroom for lambda at alpha=1
  const auto g = Geometry::square(m);
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = 8 * 4096;  // 8 segments of 4M records, within cap6
  auto data = make_input(n, 6);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedSixPassOptions opt;
  opt.mem_records = m;
  auto res = expected_six_pass_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 6.0, 0.5);
}

TEST(Smoke, IntegerSort) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(7);
  auto data = make_int_keys(kM * 16, kM / 16, rng);  // range = M/B
  auto in = test::stage_input<u64>(*ctx, data);
  IntegerSortOptions opt;
  opt.mem_records = kM;
  opt.range = kM / 16;
  auto res = integer_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  // Theorem 7.1: 2(1+mu) passes with mu < 1; measured mu here is ~0.4
  // (padding plus write-round imbalance at this small C).
  EXPECT_LT(res.report.passes, 3.5);
  EXPECT_GE(res.report.passes, 2.0);
}

TEST(Smoke, RadixSort) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(8);
  auto data = make_int_keys(kM * 64, kM * kM, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RadixSortOptions opt;
  opt.mem_records = kM;
  opt.key_bits = 16;  // keys < M^2 = 2^16
  auto res = radix_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(Smoke, ColumnsortCC) {
  const auto g = Geometry::square(1024);  // M=1024, B=32
  auto ctx = test::make_ctx<u64>(g);
  const u64 n = max_columnsort_n(1024, 32);
  ASSERT_GT(n, 0u);
  auto data = make_input(n, 9);
  auto in = test::stage_input<u64>(*ctx, data);
  ColumnsortOptions opt;
  opt.mem_records = 1024;
  auto res = columnsort_cc_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  test::expect_passes_near(res.report, 3.0, 0.3);
}

TEST(Smoke, MultiwayMerge) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  auto data = make_input(kM * 8, 10);
  auto in = test::stage_input<u64>(*ctx, data);
  MultiwaySortOptions opt;
  opt.mem_records = kM;
  auto res = multiway_merge_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(Smoke, AdaptivePicksAndSorts) {
  const auto g = Geometry::square(kM);
  auto ctx = test::make_ctx<u64>(g);
  auto data = make_input(kM * 3, 11);  // within cap_expected_two_pass
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions opt;
  opt.mem_records = kM;
  auto res = pdm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  EXPECT_EQ(res.report.algorithm, "ExpectedTwoPass");
}

TEST(Smoke, KvRecordsCarryPayloads) {
  const auto g = Geometry::square(kM);
  auto ctx = make_memory_context(g.disks, g.rpb * sizeof(KV64));
  Rng rng(12);
  auto data = make_kv(kM * 16, Dist::kUniform, rng);
  auto in = test::stage_input<KV64>(*ctx, data);
  ThreePassLmmOptions opt;
  opt.mem_records = kM;
  auto res = three_pass_lmm_sort<KV64>(*ctx, in, opt);
  test::expect_key_sorted_permutation<KV64>(res.output, data);
}

}  // namespace
}  // namespace pdm
