// Tests for the adaptive planner (core/adaptive.h).
#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

TEST(Planner, TinyInputUsesInternalSort) {
  auto e = choose_plan(200, 1024, 32, 1.0);
  EXPECT_EQ(e.algo, Algo::kInternal);
  EXPECT_EQ(e.expected_passes, 1.0);
}

TEST(Planner, WithinCap2UsesExpectedTwoPass) {
  const u64 mem = 1024;
  auto e = choose_plan(4 * mem, mem, 32, 1.0);
  EXPECT_EQ(e.algo, Algo::kExpectedTwoPass);
}

TEST(Planner, BeyondCap2PrefersThreePassFamilies) {
  const u64 mem = 1024;
  const u64 n = 24 * mem;  // > cap2 (~6.8k records), <= M^1.5
  auto e = choose_plan(n, mem, 32, 1.0);
  // The planner prefers the paper's guaranteed-parallelism algorithms.
  EXPECT_TRUE(e.algo == Algo::kExpectedThreePass ||
              e.algo == Algo::kThreePassLmm);
  EXPECT_LE(e.expected_passes, 3.0);
}

TEST(Planner, EveryOptionReportsCapacity) {
  auto opts = plan_options(1u << 20, 1u << 12, 1u << 6, 1.0);
  EXPECT_EQ(opts.size(), 9u);
  for (const auto& o : opts) {
    EXPECT_GT(o.capacity, 0u) << algo_name(o.algo);
    // The order-adaptive entry is unranked (passes 0, infeasible) until a
    // presortedness probe supplies est_runs; every other entry has a
    // concrete pass count.
    if (o.algo == Algo::kOrderAdaptive) {
      EXPECT_FALSE(o.feasible);
    } else {
      EXPECT_GT(o.expected_passes, 0.0);
    }
    EXPECT_FALSE(o.note.empty());
  }
  auto probed = plan_options(1u << 20, 1u << 12, 1u << 6, 1.0, 16);
  for (const auto& o : probed) {
    if (o.algo == Algo::kOrderAdaptive) {
      EXPECT_TRUE(o.feasible);
      EXPECT_GT(o.expected_passes, 0.0);
      EXPECT_EQ(o.est_runs, 16u);
    }
  }
}

TEST(Planner, InfeasibleShapesRejected) {
  // N > M and not a multiple of B: nothing fits.
  EXPECT_THROW(choose_plan(3001, 1024, 32, 1.0), Error);
  // N <= M is always fine (internal sort), even unaligned.
  EXPECT_EQ(choose_plan(1001, 1024, 32, 1.0).algo, Algo::kInternal);
}

TEST(Planner, ForcedAlgorithmIsUsed) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(2);
  auto data = make_keys(4096, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions opt;
  opt.mem_records = 256;
  opt.force = Algo::kThreePassMesh;
  auto res = pdm_sort<u64>(*ctx, in, opt);
  EXPECT_EQ(res.report.algorithm, "ThreePass1(mesh)");
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(Planner, DispatchesSevenPassForMSquared) {
  const u64 mem = 256;
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(3);
  auto data = make_keys(static_cast<usize>(mem * mem), Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions opt;
  opt.mem_records = mem;
  auto res = pdm_sort<u64>(*ctx, in, opt);
  test::expect_sorted_output<u64>(res.output, data);
  // At N = M^2 only SevenPass fits among the guaranteed algorithms.
  EXPECT_EQ(res.report.algorithm, "SevenPass");
  EXPECT_LE(res.report.passes, 7.5);
}

TEST(Planner, InternalSortPath) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(4);
  auto data = make_keys(128, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  AdaptiveOptions opt;
  opt.mem_records = 256;
  auto res = pdm_sort<u64>(*ctx, in, opt);
  EXPECT_EQ(res.report.algorithm, "InternalSort");
  test::expect_sorted_output<u64>(res.output, data);
}

TEST(Planner, CapacitiesOrderedByPassBudget) {
  // More passes => more capacity (at fixed M, B, alpha).
  const u64 mem = 1u << 16;
  const u64 b = 1u << 8;
  const double a = 1.0;
  auto opts = plan_options(mem * 4, mem, b, a);
  u64 cap2 = 0, cap3 = 0, cap6 = 0, cap7 = 0;
  for (const auto& o : opts) {
    if (o.algo == Algo::kExpectedTwoPass) cap2 = o.capacity;
    if (o.algo == Algo::kThreePassLmm) cap3 = o.capacity;
    if (o.algo == Algo::kExpectedSixPass) cap6 = o.capacity;
    if (o.algo == Algo::kSevenPass) cap7 = o.capacity;
  }
  EXPECT_LT(cap2, cap3);
  EXPECT_LT(cap3, cap6);
  EXPECT_LT(cap6, cap7);
}

}  // namespace
}  // namespace pdm
