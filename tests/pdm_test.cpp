#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "pdm/block_matrix.h"
#include "pdm/memory_backend.h"
#include "pdm/pdm_context.h"
#include "pdm/ragged_run.h"
#include "pdm/striped_run.h"
#include "test_support.h"

namespace pdm {
namespace {

TEST(MemoryBackend, RoundTrip) {
  MemoryDiskBackend be(4, 64);
  std::vector<std::byte> w(64), r(64);
  for (usize i = 0; i < 64; ++i) w[i] = static_cast<std::byte>(i);
  WriteReq wr{{2, 5}, w.data()};
  be.write_batch(std::span<const WriteReq>(&wr, 1));
  ReadReq rr{{2, 5}, r.data()};
  be.read_batch(std::span<const ReadReq>(&rr, 1));
  EXPECT_EQ(w, r);
  EXPECT_EQ(be.disk_blocks(2), 6u);
  EXPECT_EQ(be.disk_blocks(0), 0u);
}

TEST(MemoryBackend, ReadUnwrittenThrows) {
  MemoryDiskBackend be(2, 64);
  std::vector<std::byte> r(64);
  ReadReq rr{{0, 0}, r.data()};
  EXPECT_THROW(be.read_batch(std::span<const ReadReq>(&rr, 1)), Error);
}

TEST(FileBackend, RoundTripAndCleanup) {
  const std::string dir = "/tmp/pdmsort_test_disks";
  {
    auto ctx = make_file_context(4, 128, dir);
    std::vector<u64> data(16 * 4);  // 4 blocks of 16 u64
    std::iota(data.begin(), data.end(), u64{0});
    auto run = write_input_run<u64>(*ctx, std::span<const u64>(data));
    auto back = run.read_all();
    EXPECT_EQ(back, data);
    EXPECT_TRUE(std::filesystem::exists(dir + "/disk000.bin"));
  }
  EXPECT_FALSE(std::filesystem::exists(dir + "/disk000.bin"));
}

TEST(IoScheduler, BatchesRespectOnePerDisk) {
  // 8 blocks spread over 4 disks, 2 each => exactly 2 parallel ops.
  auto ctx = make_memory_context(4, 64);
  std::vector<std::byte> buf(8 * 64);
  std::vector<WriteReq> reqs;
  for (u32 i = 0; i < 8; ++i) {
    reqs.push_back(WriteReq{{i % 4, i / 4}, buf.data() + i * 64});
  }
  const u64 rounds = ctx->io().write(reqs);
  EXPECT_EQ(rounds, 2u);
  EXPECT_EQ(ctx->stats().write_ops, 2u);
  EXPECT_EQ(ctx->stats().blocks_written, 8u);
}

TEST(IoScheduler, SkewedBatchCostsMaxPerDisk) {
  // 5 blocks all on disk 0 => 5 parallel ops even with 4 disks.
  auto ctx = make_memory_context(4, 64);
  std::vector<std::byte> buf(5 * 64);
  std::vector<WriteReq> reqs;
  for (u32 i = 0; i < 5; ++i) {
    reqs.push_back(WriteReq{{0, i}, buf.data() + i * 64});
  }
  EXPECT_EQ(ctx->io().write(reqs), 5u);
  EXPECT_NEAR(ctx->stats().utilization(), 1.0, 1e-9);
}

TEST(IoScheduler, SimTimeAccumulates) {
  auto ctx = make_memory_context(2, 64);
  std::vector<std::byte> buf(64);
  WriteReq w{{0, 0}, buf.data()};
  ctx->io().write(std::span<const WriteReq>(&w, 1));
  const double expect = ctx->io().cost().round_cost(64);
  EXPECT_NEAR(ctx->stats().sim_time_s, expect, 1e-12);
}

TEST(IoScheduler, ScheduleHashChangesWithSchedule) {
  auto a = make_memory_context(2, 64);
  auto b = make_memory_context(2, 64);
  std::vector<std::byte> buf(64);
  WriteReq w0{{0, 0}, buf.data()};
  WriteReq w1{{1, 0}, buf.data()};
  a->io().write(std::span<const WriteReq>(&w0, 1));
  b->io().write(std::span<const WriteReq>(&w1, 1));
  EXPECT_NE(a->stats().schedule_hash, b->stats().schedule_hash);
}

TEST(DiskAllocator, BumpPerDisk) {
  DiskAllocator alloc(3);
  EXPECT_EQ(alloc.alloc(0).index, 0u);
  EXPECT_EQ(alloc.alloc(0).index, 1u);
  EXPECT_EQ(alloc.alloc(1).index, 0u);
  auto c = alloc.alloc_contiguous(2, 10);
  EXPECT_EQ(c.index, 0u);
  EXPECT_EQ(alloc.used(2), 10u);
  EXPECT_EQ(alloc.total_used(), 13u);
  alloc.reset();
  EXPECT_EQ(alloc.total_used(), 0u);
}

TEST(MemoryBudget, EnforcesLimit) {
  MemoryBudget b(100);
  b.acquire(60);
  EXPECT_EQ(b.current(), 60u);
  EXPECT_THROW(b.acquire(50), Error);
  b.release(60);
  b.acquire(100);
  EXPECT_EQ(b.peak(), 100u);
}

TEST(MemoryBudget, TrackedBufferRaii) {
  MemoryBudget b(1024);
  {
    TrackedBuffer<u64> buf(b, 64);
    EXPECT_EQ(b.current(), 512u);
    buf[0] = 7;
    EXPECT_EQ(buf[0], 7u);
    TrackedBuffer<u64> moved = std::move(buf);
    EXPECT_EQ(b.current(), 512u);
    EXPECT_EQ(moved[0], 7u);
  }
  EXPECT_EQ(b.current(), 0u);
  EXPECT_EQ(b.peak(), 512u);
}

TEST(StripedRun, RoundRobinStriping) {
  auto ctx = make_memory_context(4, 8 * sizeof(u64));
  std::vector<u64> data(8 * 10);
  std::iota(data.begin(), data.end(), u64{0});
  auto run = write_input_run<u64>(*ctx, std::span<const u64>(data), 2);
  EXPECT_EQ(run.num_blocks(), 10u);
  for (u64 b = 0; b < 10; ++b) {
    EXPECT_EQ(run.block_ref(b).disk, (2 + b) % 4);
  }
  EXPECT_EQ(run.read_all(), data);
}

TEST(StripedRun, PartialTailPaddedButSizeLogical) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  std::vector<u64> data(19, 5);
  auto run = write_input_run<u64>(*ctx, std::span<const u64>(data));
  EXPECT_EQ(run.size(), 19u);
  EXPECT_EQ(run.num_blocks(), 3u);
  EXPECT_EQ(run.records_in_block(2), 3u);
  EXPECT_EQ(run.read_all(), data);
}

TEST(StripedRun, IncrementalAppendsAccumulate) {
  auto ctx = make_memory_context(2, 4 * sizeof(u64));
  StripedRun<u64> run(*ctx);
  std::vector<u64> expect;
  for (u64 i = 0; i < 23; ++i) {
    u64 v = i * 3;
    run.append(std::span<const u64>(&v, 1));
    expect.push_back(v);
  }
  run.finish();
  EXPECT_EQ(run.read_all(), expect);
}

TEST(StripedRun, FullBlockAppendIsSingleBatch) {
  auto ctx = make_memory_context(4, 8 * sizeof(u64));
  StripedRun<u64> run(*ctx);
  std::vector<u64> data(8 * 8, 1);  // 8 blocks over 4 disks
  run.append(std::span<const u64>(data));
  EXPECT_EQ(ctx->stats().write_ops, 2u);  // 8 blocks / 4 disks
  EXPECT_NEAR(ctx->stats().utilization(), 4.0, 1e-9);
}

TEST(StripedRun, ReadBlocksBatched) {
  auto ctx = make_memory_context(4, 4 * sizeof(u64));
  std::vector<u64> data(4 * 12);
  std::iota(data.begin(), data.end(), u64{0});
  auto run = write_input_run<u64>(*ctx, std::span<const u64>(data));
  ctx->io().reset_stats();
  std::vector<u64> buf(4 * 8);
  run.read_blocks(2, 8, buf.data());
  EXPECT_EQ(ctx->stats().read_ops, 2u);  // 8 blocks over 4 disks
  for (usize i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 8 + i);
}

TEST(RaggedRun, StagesAndCompacts) {
  auto ctx = make_memory_context(2, 4 * sizeof(u64));
  RaggedRun<u64> run(*ctx);
  std::vector<u64> b1{1, 2, 3, 0};  // 3 valid
  std::vector<u64> b2{4, 5, 6, 7};  // full
  std::vector<u64> b3{8, 0, 0, 0};  // 1 valid
  std::vector<WriteReq> reqs;
  reqs.push_back(run.stage_block(b1.data(), 3));
  reqs.push_back(run.stage_block(b2.data(), 4));
  reqs.push_back(run.stage_block(b3.data(), 1));
  ctx->io().write(reqs);
  EXPECT_EQ(run.size(), 8u);
  EXPECT_EQ(run.blocks_on_disk(), 3u);
  auto all = run.read_all();
  EXPECT_EQ(all, (std::vector<u64>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(BlockMatrix, DiagonalStripingFullParallel) {
  auto ctx = make_memory_context(4, 4 * sizeof(u64));
  BlockMatrix<u64> mat(*ctx, 4, 4);
  std::vector<u64> rowbuf(16);
  std::iota(rowbuf.begin(), rowbuf.end(), u64{0});
  ctx->io().reset_stats();
  mat.write_block_row(1, rowbuf.data());
  EXPECT_EQ(ctx->stats().write_ops, 1u);  // 4 blocks on 4 distinct disks
  std::vector<u64> colbuf(16);
  ctx->io().reset_stats();
  // Fill column 2 then read it back: also one op per batch.
  mat.write_block_col(2, colbuf.data());
  EXPECT_EQ(ctx->stats().write_ops, 1u);
  ctx->io().reset_stats();
  mat.read_block_col(2, colbuf.data());
  EXPECT_EQ(ctx->stats().read_ops, 1u);
}

TEST(BlockMatrix, RowColumnConsistency) {
  auto ctx = make_memory_context(4, 2 * sizeof(u64));
  BlockMatrix<u64> mat(*ctx, 3, 5);
  // Write rows with identifiable contents, then read columns.
  std::vector<u64> row(10);
  for (u64 r = 0; r < 3; ++r) {
    for (u64 c = 0; c < 5; ++c) {
      row[c * 2] = r * 100 + c * 10;
      row[c * 2 + 1] = r * 100 + c * 10 + 1;
    }
    mat.write_block_row(r, row.data());
  }
  std::vector<u64> col(6);
  mat.read_block_col(3, col.data());
  EXPECT_EQ(col, (std::vector<u64>{30, 31, 130, 131, 230, 231}));
}

TEST(PdmContext, RpbChecksDivisibility) {
  auto ctx = make_memory_context(2, 100);
  EXPECT_THROW(ctx->rpb<u64>(), Error);  // 100 % 8 != 0
  auto ok = make_memory_context(2, 96);
  EXPECT_EQ(ok->rpb<u64>(), 12u);
}

}  // namespace
}  // namespace pdm
