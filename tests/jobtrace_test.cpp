// PR 8: job-scoped causal tracing, the failure flight recorder, and live
// introspection.
//
//  - jobtrace primitives: unique non-zero ids, nested Scope save/restore
//    of the thread's (id, parent) attribution.
//  - FlightRecorder: event order, detail truncation, per-job last-K ring,
//    FIFO job-cap eviction, disabled-mode silence, and the bad-end dump
//    sink.
//  - Lifecycle coverage through the serving stack: a service job's ring
//    holds admitted -> started -> phase -> finished; a deadline-missed
//    cluster job's ring holds the full parked -> dispatched -> started ->
//    deadline_miss -> finished sequence; a stolen job records both shard
//    ids; a drain-migrated job keeps its trace id across shards.
//  - Distributed causal tree: every range sub-job of submit_distributed
//    carries the parent's trace id, and (tracing builds) the Chrome trace
//    reconstructs parent -> sub-job -> phase spans by id alone.
//  - The observability invariant extended to the recorder: per-job
//    IoStats and the order-sensitive schedule hash are identical with the
//    flight recorder on and off.
//  - Introspection: Cluster::dump_state()/introspect_text() see parked
//    and running jobs with trace ids; Registry::text() carries
//    trace.dropped_total and the per-tenant rollups.
//  - A TSan scenario: concurrent submit/cancel against one cluster while
//    a reader thread dumps flight rings and introspection (CI runs this
//    binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "test_support.h"
#include "util/generators.h"
#include "util/introspect.h"
#include "util/jobtrace.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;          // per-job M in records
constexpr usize kBlockBytes = 256;  // rpb: u64=32
constexpr u32 kDisksPerShard = 4;

SortJobSpec spec_of(std::string name, std::string locality_key = "",
                    int priority = 0) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  s.priority = priority;
  s.locality_key = std::move(locality_key);
  return s;
}

/// A locality key routing to `shard` on the cluster's consistent-hash
/// ring.
std::string key_for_shard(const Cluster& cluster, u32 shard,
                          std::string seed) {
  std::string key = seed;
  while (cluster.router().ring().route(locality_hash(key)) != shard) {
    key += seed;
  }
  return key;
}

ClusterConfig cluster_cfg(usize shards, usize workers = 1) {
  ClusterConfig cfg;
  cfg.shards = shards;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = workers;
  cfg.shard.io_depth_total = 4;
  return cfg;
}

/// Fresh, enabled flight recorder per test; restores the default
/// (enabled, empty, no sink) on exit so tests stay independent.
struct FlightScope {
  FlightScope() {
    auto& f = jobtrace::FlightRecorder::instance();
    f.set_dump_on_bad_end(nullptr);
    f.set_enabled(true);
    f.clear();
  }
  ~FlightScope() {
    auto& f = jobtrace::FlightRecorder::instance();
    f.set_dump_on_bad_end(nullptr);
    f.set_enabled(true);
    f.clear();
  }
};

std::vector<jobtrace::EventKind> kinds_of(jobtrace::TraceId id) {
  std::vector<jobtrace::EventKind> out;
  for (const auto& ev : jobtrace::FlightRecorder::instance().events(id)) {
    out.push_back(ev.kind);
  }
  return out;
}

/// Index of the first event of `kind` in `ks`, or npos.
usize index_of(const std::vector<jobtrace::EventKind>& ks,
               jobtrace::EventKind kind) {
  for (usize i = 0; i < ks.size(); ++i) {
    if (ks[i] == kind) return i;
  }
  return static_cast<usize>(-1);
}

// --- primitives --------------------------------------------------------

TEST(JobTrace, MintIsUniqueAndScopeNestsAndRestores) {
  const auto a = jobtrace::mint();
  const auto b = jobtrace::mint();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(jobtrace::current(), 0u);
  {
    jobtrace::Scope outer(a);
    EXPECT_EQ(jobtrace::current(), a);
    EXPECT_EQ(jobtrace::current_parent(), 0u);
    {
      jobtrace::Scope inner(b, a);
      EXPECT_EQ(jobtrace::current(), b);
      EXPECT_EQ(jobtrace::current_parent(), a);
    }
    EXPECT_EQ(jobtrace::current(), a);
    EXPECT_EQ(jobtrace::current_parent(), 0u);
  }
  EXPECT_EQ(jobtrace::current(), 0u);
}

TEST(FlightRecorder, RecordsEventsInOrderWithDetailAndArgs) {
  FlightScope scope;
  auto& f = jobtrace::FlightRecorder::instance();
  const auto id = jobtrace::mint();
  f.record(id, jobtrace::EventKind::kAdmitted, "my-job", 2);
  f.record(id, jobtrace::EventKind::kPhase, "RunFormation", 4096);
  const auto evs = f.events(id);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, jobtrace::EventKind::kAdmitted);
  EXPECT_STREQ(evs[0].detail, "my-job");
  EXPECT_EQ(evs[0].arg0, 2u);
  EXPECT_EQ(evs[1].kind, jobtrace::EventKind::kPhase);
  EXPECT_LE(evs[0].ts_ns, evs[1].ts_ns);
  // The "current phase" is a kPhase's detail, not its kind name.
  EXPECT_EQ(f.last_event_name(id), "RunFormation");
  // Long details are truncated into the inline buffer, never overflowed.
  const std::string longd(200, 'x');
  f.record(id, jobtrace::EventKind::kRejected, longd.c_str());
  const auto evs2 = f.events(id);
  EXPECT_LT(std::string(evs2.back().detail).size(),
            jobtrace::FlightEvent::kDetailBuf);
  // Dumps name the job and the events; unknown ids dump empty.
  const std::string text = f.dump_text(id);
  EXPECT_NE(text.find("flight job="), std::string::npos);
  EXPECT_NE(text.find("admitted"), std::string::npos);
  EXPECT_NE(text.find("RunFormation"), std::string::npos);
  EXPECT_TRUE(f.events(id + 999999).empty());
  EXPECT_TRUE(f.dump_text(id + 999999).empty());
  EXPECT_EQ(f.last_event_name(id + 999999), "");
  // record() with id 0 is the no-job no-op.
  f.record(0, jobtrace::EventKind::kAdmitted, "ghost");
  EXPECT_TRUE(f.events(0).empty());
}

TEST(FlightRecorder, PerJobRingKeepsLastKEvents) {
  FlightScope scope;
  auto& f = jobtrace::FlightRecorder::instance();
  const auto id = jobtrace::mint();
  constexpr usize kExtra = 8;
  constexpr usize kTotal = jobtrace::FlightRecorder::kEventsPerJob + kExtra;
  for (usize i = 0; i < kTotal; ++i) {
    f.record(id, jobtrace::EventKind::kPhase, nullptr, i);
  }
  const auto evs = f.events(id);
  ASSERT_EQ(evs.size(), jobtrace::FlightRecorder::kEventsPerJob);
  // Oldest events cycled out: the ring holds exactly the last K.
  EXPECT_EQ(evs.front().arg0, kExtra);
  EXPECT_EQ(evs.back().arg0, kTotal - 1);
}

TEST(FlightRecorder, JobCapEvictsOldestRingsFifo) {
  FlightScope scope;
  auto& f = jobtrace::FlightRecorder::instance();
  std::vector<jobtrace::TraceId> ids;
  for (usize i = 0; i < jobtrace::FlightRecorder::kMaxJobs + 4; ++i) {
    ids.push_back(jobtrace::mint());
    f.record(ids.back(), jobtrace::EventKind::kAdmitted, nullptr, i);
  }
  // The four oldest jobs were evicted to admit the four newest.
  for (usize i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.events(ids[i]).empty()) << "ring " << i << " survived";
  }
  EXPECT_EQ(f.events(ids.back()).size(), 1u);
}

TEST(FlightRecorder, DisabledRecorderIsSilent) {
  FlightScope scope;
  auto& f = jobtrace::FlightRecorder::instance();
  const auto id = jobtrace::mint();
  f.set_enabled(false);
  EXPECT_FALSE(f.enabled());
  f.record(id, jobtrace::EventKind::kAdmitted);
  f.note_end(id, jobtrace::EventKind::kFinished, "done", /*bad=*/true);
  EXPECT_TRUE(f.events(id).empty());
  f.set_enabled(true);
  f.record(id, jobtrace::EventKind::kAdmitted);
  EXPECT_EQ(f.events(id).size(), 1u);
}

// DumpSink is a plain function pointer, so the capture goes through
// globals (single-threaded test).
std::atomic<int> g_sink_calls{0};
jobtrace::TraceId g_sink_id = 0;
std::string g_sink_dump;  // NOLINT

void test_sink(jobtrace::TraceId id, const std::string& dump) {
  ++g_sink_calls;
  g_sink_id = id;
  g_sink_dump = dump;
}

TEST(FlightRecorder, BadEndInvokesDumpSink) {
  FlightScope scope;
  auto& f = jobtrace::FlightRecorder::instance();
  g_sink_calls = 0;
  g_sink_dump.clear();
  f.set_dump_on_bad_end(&test_sink);
  const auto ok_id = jobtrace::mint();
  f.record(ok_id, jobtrace::EventKind::kAdmitted);
  f.note_end(ok_id, jobtrace::EventKind::kFinished, "done", /*bad=*/false);
  EXPECT_EQ(g_sink_calls.load(), 0);
  const auto bad_id = jobtrace::mint();
  f.record(bad_id, jobtrace::EventKind::kAdmitted, "doomed");
  f.note_end(bad_id, jobtrace::EventKind::kFinished, "failed",
             /*bad=*/true);
  EXPECT_EQ(g_sink_calls.load(), 1);
  EXPECT_EQ(g_sink_id, bad_id);
  EXPECT_NE(g_sink_dump.find("doomed"), std::string::npos);
  EXPECT_NE(g_sink_dump.find("failed"), std::string::npos);
}

// --- lifecycle through the serving stack -------------------------------

TEST(JobTraceService, LifecycleEventsAndInfoCarryTraceId) {
  FlightScope scope;
  auto backend = std::make_shared<MemoryDiskBackend>(kDisksPerShard,
                                                     kBlockBytes);
  ServiceConfig cfg;
  cfg.workers = 2;
  SortService svc(backend, cfg);
  Rng rng(7);
  const JobId id = svc.submit<u64>(spec_of("traced", "tenant-a"),
                                   make_keys(4 * kMem, Dist::kUniform, rng));
  const JobInfo info = svc.wait(id);
  EXPECT_EQ(info.state, JobState::kDone);
  ASSERT_NE(info.trace_id, 0u);
  EXPECT_EQ(info.parent_trace_id, 0u);
  const auto ks = kinds_of(info.trace_id);
  const usize admitted = index_of(ks, jobtrace::EventKind::kAdmitted);
  const usize started = index_of(ks, jobtrace::EventKind::kStarted);
  const usize phase = index_of(ks, jobtrace::EventKind::kPhase);
  const usize finished = index_of(ks, jobtrace::EventKind::kFinished);
  ASSERT_NE(admitted, static_cast<usize>(-1));
  ASSERT_NE(started, static_cast<usize>(-1));
  ASSERT_NE(phase, static_cast<usize>(-1));
  ASSERT_NE(finished, static_cast<usize>(-1));
  EXPECT_LT(admitted, started);
  EXPECT_LT(started, phase);
  EXPECT_LT(phase, finished);
  EXPECT_EQ(finished, ks.size() - 1);
  // A clean end never hits the bad-end sink path; the dump still works
  // on demand.
  const std::string text =
      jobtrace::FlightRecorder::instance().dump_text(info.trace_id);
  EXPECT_NE(text.find("admitted"), std::string::npos);
  EXPECT_NE(text.find("\"done\""), std::string::npos);
  // Tenant rollups and the tracer-drop gauge are in the exposition.
  const std::string metrics = metrics::Registry::global().text();
  EXPECT_NE(metrics.find("tenant.tenant-a.jobs"), std::string::npos);
  EXPECT_NE(metrics.find("tenant.tenant-a.bytes"), std::string::npos);
  EXPECT_NE(metrics.find("trace.dropped_total"), std::string::npos);
}

TEST(JobTraceCluster, DeadlineMissFlightDumpHasFullSequence) {
  FlightScope scope;
  // One shard, one worker, admission control OFF: the deadlined job must
  // park behind the occupier, dispatch, run, and miss — the flight ring
  // is the black box that shows the whole path.
  ClusterConfig cfg = cluster_cfg(1, 1);
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 0), cfg);
  Rng rng(3);
  std::promise<void> a_started;
  std::promise<void> release_a;
  std::shared_future<void> release_f = release_a.get_future().share();
  const JobId a = cluster.submit<u64>(
      spec_of("occupier"), make_keys(2 * kMem, Dist::kUniform, rng),
      std::less<u64>{},
      [&a_started, release_f](const SortResult<u64>&) {
        a_started.set_value();
        release_f.wait();
      });
  a_started.get_future().wait();

  SortJobSpec b_spec = spec_of("misses", "tenant-miss");
  b_spec.deadline_s = 1e-5;  // far below any possible run time
  const JobId b = cluster.submit<u64>(
      b_spec, make_keys(4 * kMem, Dist::kUniform, rng));
  // b is parked (the single worker is held); introspection must see it
  // with its trace id and park reason.
  const u64 b_trace = cluster.info(b).trace_id;
  ASSERT_NE(b_trace, 0u);
  {
    const introspect::StateDump d = cluster.dump_state();
    bool found = false;
    for (const auto& h : d.held) {
      if (h.trace_id == b_trace) {
        found = true;
        EXPECT_FALSE(h.park_reason.empty());
      }
    }
    EXPECT_TRUE(found) << "parked job missing from dump_state().held";
    EXPECT_NE(cluster.introspect_text().find("held "), std::string::npos);
  }

  release_a.set_value();
  EXPECT_EQ(cluster.wait(a).state, JobState::kDone);
  const JobInfo bi = cluster.wait(b);
  EXPECT_EQ(bi.state, JobState::kDone);
  EXPECT_TRUE(bi.deadline_missed);
  EXPECT_EQ(bi.trace_id, b_trace);
  cluster.drain();

  const auto ks = kinds_of(b_trace);
  const usize parked = index_of(ks, jobtrace::EventKind::kParked);
  const usize dispatched = index_of(ks, jobtrace::EventKind::kDispatched);
  const usize admitted = index_of(ks, jobtrace::EventKind::kAdmitted);
  const usize started = index_of(ks, jobtrace::EventKind::kStarted);
  const usize miss = index_of(ks, jobtrace::EventKind::kDeadlineMiss);
  const usize finished = index_of(ks, jobtrace::EventKind::kFinished);
  ASSERT_NE(parked, static_cast<usize>(-1));
  ASSERT_NE(dispatched, static_cast<usize>(-1));
  ASSERT_NE(admitted, static_cast<usize>(-1));
  ASSERT_NE(started, static_cast<usize>(-1));
  ASSERT_NE(miss, static_cast<usize>(-1));
  ASSERT_NE(finished, static_cast<usize>(-1));
  EXPECT_LT(parked, dispatched);
  EXPECT_LT(dispatched, started);
  EXPECT_LT(started, miss);
  EXPECT_LT(miss, finished);
  // A deadline miss is a bad end: the dump has the whole causal path.
  const std::string dump =
      jobtrace::FlightRecorder::instance().dump_text(b_trace);
  for (const char* needle :
       {"parked", "dispatched", "started", "deadline_miss", "finished"}) {
    EXPECT_NE(dump.find(needle), std::string::npos) << needle;
  }
}

TEST(JobTraceCluster, StolenJobRecordsBothShardIds) {
  FlightScope scope;
  ClusterConfig cfg = cluster_cfg(2, 1);
  cfg.policy = RoutePolicy::kLocalityHash;
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 200), cfg);
  Rng rng(33);
  const std::string key0 = key_for_shard(cluster, 0, "z");
  // Saturate shard 0: a large carve holds most of its budget while a
  // long job occupies its only worker, so keyed jobs park and shard 1
  // steals them.
  SortJobSpec big = spec_of("big", key0);
  big.carve_bytes = cluster.shard(0).budget().limit() / 2;
  const JobId big_id = cluster.submit<u64>(
      big, make_keys(64 * kMem, Dist::kPermutation, rng));
  while (cluster.info(big_id).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const JobId small = cluster.submit<u64>(
      spec_of("stealme", key0), make_keys(kMem, Dist::kUniform, rng));
  cluster.drain();
  EXPECT_EQ(cluster.wait(big_id).state, JobState::kDone);
  const JobInfo si = cluster.wait(small);
  EXPECT_EQ(si.state, JobState::kDone);
  EXPECT_EQ(cluster.shard_of(small), 1u);
  ASSERT_NE(si.trace_id, 0u);
  const auto evs = jobtrace::FlightRecorder::instance().events(si.trace_id);
  bool found = false;
  for (const auto& ev : evs) {
    if (ev.kind == jobtrace::EventKind::kStolen) {
      found = true;
      EXPECT_EQ(ev.arg0, 0u);  // home shard
      EXPECT_EQ(ev.arg1, 1u);  // stealing shard
    }
  }
  EXPECT_TRUE(found) << "no kStolen event in the flight ring";
}

TEST(JobTraceCluster, DrainMigratedJobKeepsTraceId) {
  FlightScope scope;
  ClusterConfig cfg = cluster_cfg(2, 1);
  cfg.policy = RoutePolicy::kLocalityHash;
  // Local queues (no cluster hold queue) so the keyed job sits in shard
  // 0's backlog — the extraction path drain_shard migrates.
  cfg.hold_queue = false;
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 0), cfg);
  Rng rng(5);
  const std::string key0 = key_for_shard(cluster, 0, "z");
  // Pin shard 0's worker so a second keyed job sits in its local queue.
  std::promise<void> blocker_started;
  std::promise<void> release;
  std::shared_future<void> release_f = release.get_future().share();
  const JobId blocker = cluster.submit<u64>(
      spec_of("blocker", key0), make_keys(kMem, Dist::kUniform, rng),
      std::less<u64>{},
      [&blocker_started, release_f](const SortResult<u64>&) {
        blocker_started.set_value();
        release_f.wait();
      });
  blocker_started.get_future().wait();
  const JobId q = cluster.submit<u64>(
      spec_of("migrant", key0), make_keys(kMem, Dist::kUniform, rng));
  const u64 q_trace = cluster.info(q).trace_id;
  ASSERT_NE(q_trace, 0u);

  // Drain shard 0 from another thread (it blocks on the running
  // blocker); the queued job must be extracted and finish elsewhere.
  std::thread drainer([&] { cluster.drain_shard(0); });
  // Wait until the migrant left shard 0's queue, then release.
  while (jobtrace::FlightRecorder::instance()
             .events(q_trace)
             .size() < 2) {  // admitted + migrated
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  release.set_value();
  drainer.join();
  EXPECT_EQ(cluster.wait(blocker).state, JobState::kDone);
  const JobInfo qi = cluster.wait(q);
  EXPECT_EQ(qi.state, JobState::kDone);
  // Same causal identity across the migration, and the ring shows it.
  EXPECT_EQ(qi.trace_id, q_trace);
  const auto ks = kinds_of(q_trace);
  const usize migrated = index_of(ks, jobtrace::EventKind::kMigrated);
  const usize finished = index_of(ks, jobtrace::EventKind::kFinished);
  ASSERT_NE(migrated, static_cast<usize>(-1));
  ASSERT_NE(finished, static_cast<usize>(-1));
  EXPECT_LT(migrated, finished);
  const auto evs = jobtrace::FlightRecorder::instance().events(q_trace);
  EXPECT_EQ(evs[migrated].arg0, 0u);  // drained shard
  cluster.drain();
}

// --- distributed causal tree -------------------------------------------

TEST(JobTraceDistributed, SubJobsCarryParentTraceId) {
  FlightScope scope;
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 0),
      cluster_cfg(4, 2));
  Rng rng(18);
  auto data = make_keys(16 * kMem, Dist::kPermutation, rng);
  const JobId id = cluster.submit_distributed<u64>(
      spec_of("giant"), std::move(data), DistributedOptions{},
      std::less<u64>{});
  const DistributedInfo info = cluster.distributed_wait(id);
  EXPECT_EQ(info.state, JobState::kDone);
  ASSERT_NE(info.trace_id, 0u);
  std::set<u64> child_ids;
  for (const JobId sub : info.sub_jobs) {
    if (sub == 0) continue;  // empty range
    const JobInfo ji = cluster.info(sub);
    ASSERT_NE(ji.trace_id, 0u);
    EXPECT_EQ(ji.parent_trace_id, info.trace_id);
    EXPECT_NE(ji.trace_id, info.trace_id);
    child_ids.insert(ji.trace_id);
  }
  EXPECT_GE(child_ids.size(), 2u);  // distinct ids per range
  // The parent's own ring spans admission to a clean finish.
  const auto ks = kinds_of(info.trace_id);
  EXPECT_NE(index_of(ks, jobtrace::EventKind::kAdmitted),
            static_cast<usize>(-1));
  EXPECT_EQ(ks.back(), jobtrace::EventKind::kFinished);
}

#if PDMSORT_TRACING

// Fresh, enabled tracer per test (mirrors trace_test.cpp).
struct TracerScope {
  TracerScope() {
    trace::TraceLog::instance().clear();
    trace::TraceLog::instance().set_enabled(true);
  }
  ~TracerScope() {
    trace::TraceLog::instance().set_enabled(false);
    trace::TraceLog::instance().clear();
  }
};

TEST(JobTraceDistributed, ChromeTraceReconstructsCausalTreeById) {
  FlightScope flight;
  TracerScope tracer;
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 0),
      cluster_cfg(4, 2));
  Rng rng(21);
  auto data = make_keys(16 * kMem, Dist::kPermutation, rng);
  const JobId id = cluster.submit_distributed<u64>(
      spec_of("tree"), std::move(data), DistributedOptions{},
      std::less<u64>{});
  const DistributedInfo info = cluster.distributed_wait(id);
  ASSERT_EQ(info.state, JobState::kDone);
  std::set<u64> child_ids;
  for (const JobId sub : info.sub_jobs) {
    if (sub != 0) child_ids.insert(cluster.info(sub).trace_id);
  }
  ASSERT_GE(child_ids.size(), 2u);

  // Reconstruct the tree from the trace buffer alone: group events by
  // their stamped job id, link children by their stamped parent id.
  std::map<u64, usize> events_by_job;
  std::map<u64, u64> parent_of;
  std::set<u64> jobs_with_phase_span;
  for (const auto& ev : trace::TraceLog::instance().snapshot()) {
    if (ev.job == 0) continue;
    ++events_by_job[ev.job];
    if (ev.parent != 0) parent_of[ev.job] = ev.parent;
    if (std::string(ev.name_str()).rfind("sort.", 0) == 0) {
      jobs_with_phase_span.insert(ev.job);
    }
  }
  // The parent job has spans of its own (partition/coordinate/concat)...
  EXPECT_GT(events_by_job[info.trace_id], 0u);
  // ...and every range sub-job's spans point back at it — the tree needs
  // nothing but the ids.
  for (const u64 child : child_ids) {
    EXPECT_GT(events_by_job[child], 0u) << "child " << child;
    EXPECT_EQ(parent_of[child], info.trace_id) << "child " << child;
    EXPECT_TRUE(jobs_with_phase_span.count(child) == 1)
        << "no phase span for child " << child;
  }
  // The JSON writer externalizes both ids.
  std::ostringstream os;
  trace::TraceLog::instance().write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"job\":" + std::to_string(info.trace_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(info.trace_id)),
            std::string::npos);
}

#endif  // PDMSORT_TRACING

// --- the observability invariant ---------------------------------------

TEST(JobTrace, IoStatsIdenticalRecorderOnAndOff) {
  Rng rng(11);
  const auto data = make_keys(8 * kMem, Dist::kUniform, rng);
  auto run_once = [&]() {
    auto backend = std::make_shared<MemoryDiskBackend>(kDisksPerShard,
                                                       kBlockBytes);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.seed = 42;
    SortService svc(backend, cfg);
    const JobId id = svc.submit<u64>(spec_of("invariant"), data);
    const JobInfo info = svc.wait(id);
    EXPECT_EQ(info.state, JobState::kDone);
    return info.report.io;
  };
  auto& f = jobtrace::FlightRecorder::instance();
  f.set_enabled(false);
  const IoStats off = run_once();
  f.set_enabled(true);
  const IoStats on = run_once();
  // The recorder only copies ids and reads clocks — every accounting
  // figure, including the order-sensitive schedule hash, is identical.
  EXPECT_EQ(off.read_ops, on.read_ops);
  EXPECT_EQ(off.write_ops, on.write_ops);
  EXPECT_EQ(off.blocks_read, on.blocks_read);
  EXPECT_EQ(off.blocks_written, on.blocks_written);
  EXPECT_EQ(off.schedule_hash, on.schedule_hash);
}

// --- concurrency (TSan scenario) ---------------------------------------

TEST(JobTraceStress, ConcurrentSubmitCancelDumpIsRaceFree) {
  FlightScope scope;
  Cluster cluster(
      memory_backend_factory(kDisksPerShard, kBlockBytes, 50),
      cluster_cfg(2, 2));
  constexpr usize kThreads = 4;
  constexpr usize kJobsPerThread = 12;
  std::atomic<bool> stop{false};
  std::mutex ids_mu;
  std::vector<std::pair<JobId, u64>> ids;  // (cluster id, trace id)

  // A reader hammers the dump/introspection surfaces while writers
  // submit and cancel: the whole file runs under TSan in CI.
  std::thread reader([&] {
    auto& f = jobtrace::FlightRecorder::instance();
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::pair<JobId, u64>> copy;
      {
        std::lock_guard g(ids_mu);
        copy = ids;
      }
      for (const auto& [id, trace] : copy) {
        (void)f.events(trace);
        (void)f.dump_text(trace);
        (void)f.last_event_name(trace);
      }
      (void)cluster.dump_state();
      (void)metrics::Registry::global().text();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> writers;
  for (usize t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (usize j = 0; j < kJobsPerThread; ++j) {
        const JobId id = cluster.submit<u64>(
            spec_of("stress-" + std::to_string(t) + "-" + std::to_string(j),
                    "tenant-" + std::to_string(t)),
            make_keys(kMem, Dist::kUniform, rng));
        const u64 trace = cluster.info(id).trace_id;
        {
          std::lock_guard g(ids_mu);
          ids.emplace_back(id, trace);
        }
        if (j % 3 == 0) cluster.cancel(id);
      }
    });
  }
  for (auto& th : writers) th.join();
  cluster.drain();
  stop.store(true);
  reader.join();
  // Every job reached a terminal state and its ring ends terminally.
  usize done = 0;
  usize cancelled = 0;
  for (const auto& [id, trace] : ids) {
    const JobInfo info = cluster.wait(id);
    switch (info.state) {
      case JobState::kDone: ++done; break;
      case JobState::kCancelled: ++cancelled; break;
      default: FAIL() << "unexpected state " << job_state_name(info.state);
    }
    const auto ks = kinds_of(trace);
    ASSERT_FALSE(ks.empty());
    EXPECT_TRUE(ks.back() == jobtrace::EventKind::kFinished ||
                ks.back() == jobtrace::EventKind::kCancelled)
        << event_kind_name(ks.back());
  }
  EXPECT_EQ(done + cancelled, kThreads * kJobsPerThread);
  EXPECT_GT(done, 0u);
}

}  // namespace
}  // namespace pdm
