// PR 7: phase tracer + metrics registry.
//
//  - TraceLog: span nesting, instants/counters with args, disabled-mode
//    silence, ring wraparound accounting, structurally valid Chrome
//    trace_event JSON, and a concurrent-span stress (the TSan job runs
//    this binary — per-ring mutexes must keep writer/snapshot races out).
//  - metrics::LogHistogram: exact small values, exact max, nearest-rank
//    quantiles within the log-bucket resolution against a sorted ground
//    truth.
//  - The observability invariant: IoStats (op/block counts and the
//    order-sensitive schedule hash) are byte-identical with tracing on
//    and off — the tracer reads clocks, never the accounting.
//  - util/logging: concurrent PDM_INFO lines never interleave mid-line.
//  - Cluster pump deadline admission: a parked job whose calibrated
//    estimate cannot meet its remaining deadline is rejected at the pump
//    (held_rejected_deadline), not dispatched to miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/expected_two_pass.h"
#include "pdm/backend_factory.h"
#include "test_support.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace pdm {
namespace {

using test::Geometry;

#if PDMSORT_TRACING

// Fresh, enabled tracer for each test; restores disabled on scope exit so
// unrelated tests in this binary are unaffected.
struct TracerScope {
  TracerScope() {
    trace::TraceLog::instance().clear();
    trace::TraceLog::instance().set_enabled(true);
  }
  ~TracerScope() {
    trace::TraceLog::instance().set_enabled(false);
    trace::TraceLog::instance().clear();
  }
};

std::vector<trace::TraceEvent> events_named(const char* name) {
  std::vector<trace::TraceEvent> out;
  for (const auto& ev : trace::TraceLog::instance().snapshot()) {
    if (std::string(ev.name_str()) == name) out.push_back(ev);
  }
  return out;
}

TEST(TraceTest, SpanNestingRecordsCompleteEvents) {
  TracerScope scope;
  {
    trace::TraceSpan outer("test", "outer_span", "n", 42);
    {
      trace::TraceSpan inner("test", "inner_span");
    }
  }
  const auto outer = events_named("outer_span");
  const auto inner = events_named("inner_span");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].ph, 'X');
  EXPECT_STREQ(outer[0].cat, "test");
  ASSERT_NE(outer[0].arg0_name, nullptr);
  EXPECT_STREQ(outer[0].arg0_name, "n");
  EXPECT_EQ(outer[0].arg0, 42u);
  // Nesting: the inner span lies within [start, end] of the outer one.
  EXPECT_LE(outer[0].ts_ns, inner[0].ts_ns);
  EXPECT_GE(outer[0].ts_ns + outer[0].dur_ns,
            inner[0].ts_ns + inner[0].dur_ns);
}

TEST(TraceTest, EndIsIdempotentAndStopsTheClock) {
  TracerScope scope;
  trace::TraceSpan span("test", "ended_early");
  span.end();
  span.end();  // second end must not emit a second event
  const auto evs = events_named("ended_early");
  ASSERT_EQ(evs.size(), 1u);
}

TEST(TraceTest, InstantCounterAndDynamicNames) {
  TracerScope scope;
  PDM_TRACE_INSTANT_ARG("test", "an_instant", "job", 7);
  PDM_TRACE_COUNTER("test", "a_counter", 13);
  trace::TraceLog::instance().counter_dyn("test", "disk3.queue", 5);
  trace::TraceLog::instance().complete_dyn("test", "sort.dyn_algo", 100, 50,
                                           "n", 9);
  const auto inst = events_named("an_instant");
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0].ph, 'i');
  EXPECT_EQ(inst[0].arg0, 7u);
  const auto ctr = events_named("a_counter");
  ASSERT_EQ(ctr.size(), 1u);
  EXPECT_EQ(ctr[0].ph, 'C');
  EXPECT_EQ(ctr[0].arg0, 13u);
  const auto dyn_ctr = events_named("disk3.queue");
  ASSERT_EQ(dyn_ctr.size(), 1u);
  EXPECT_EQ(dyn_ctr[0].ph, 'C');
  const auto dyn = events_named("sort.dyn_algo");
  ASSERT_EQ(dyn.size(), 1u);
  EXPECT_EQ(dyn[0].ts_ns, 100u);
  EXPECT_EQ(dyn[0].dur_ns, 50u);
}

TEST(TraceTest, DisabledModeRecordsNothing) {
  trace::TraceLog::instance().set_enabled(false);
  trace::TraceLog::instance().clear();
  {
    trace::TraceSpan span("test", "ghost_span");
    PDM_TRACE_INSTANT("test", "ghost_instant");
    PDM_TRACE_COUNTER("test", "ghost_counter", 1);
  }
  EXPECT_TRUE(trace::TraceLog::instance().snapshot().empty());
  // A span constructed while disabled stays silent even if tracing turns
  // on before it ends (enabled-at-construction semantics).
  trace::TraceSpan late("test", "late_span");
  trace::TraceLog::instance().set_enabled(true);
  late.end();
  EXPECT_TRUE(events_named("late_span").empty());
  trace::TraceLog::instance().set_enabled(false);
  trace::TraceLog::instance().clear();
}

TEST(TraceTest, RingWraparoundCountsDrops) {
  TracerScope scope;
  constexpr usize kPush = 20000;  // > ring capacity (16384)
  for (usize i = 0; i < kPush; ++i) {
    PDM_TRACE_INSTANT("test", "wrap_event");
  }
  const auto evs = events_named("wrap_event");
  EXPECT_LE(evs.size(), usize{16384});
  EXPECT_GE(trace::TraceLog::instance().dropped(), u64{kPush - 16384});
}

// Minimal structural JSON check: balanced braces/brackets outside of
// strings, proper string escaping. Enough to catch a malformed writer
// without a JSON dependency; CI additionally runs the output through
// `python3 -m json.tool`.
void expect_balanced_json(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control character inside a JSON string";
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced " << c;
        ASSERT_EQ(stack.back(), c);
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unbalanced JSON nesting";
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  TracerScope scope;
  trace::TraceLog::instance().set_thread_name("trace-test");
  {
    trace::TraceSpan span("pass", "json_span", "records", 1000);
  }
  PDM_TRACE_INSTANT_ARG("service", "json_instant", "job", 3);
  PDM_TRACE_COUNTER("io", "json_counter", 8);
  std::ostringstream os;
  trace::TraceLog::instance().write_chrome_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"records\":1000}"), std::string::npos);
}

TEST(TraceTest, ConcurrentSpanStress) {
  TracerScope scope;
  constexpr usize kThreads = 8;
  constexpr usize kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (usize t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::TraceLog::instance().set_thread_name("stress");
      for (usize i = 0; i < kIters; ++i) {
        trace::TraceSpan span("test", "stress_span", "i", i);
        if (i % 16 == 0) PDM_TRACE_INSTANT_ARG("test", "stress_tick", "t", t);
        if (i % 64 == 0) PDM_TRACE_COUNTER("test", "stress_depth", i);
      }
    });
  }
  // Snapshot while the writers run: the reader path must be race-free.
  std::ostringstream sink;
  for (int i = 0; i < 5; ++i) {
    (void)trace::TraceLog::instance().snapshot();
    trace::TraceLog::instance().write_chrome_json(sink);
  }
  for (auto& th : threads) th.join();
  const auto spans = events_named("stress_span");
  // Every thread has its own 16384-slot ring and wrote 2000 spans: no drops.
  EXPECT_EQ(spans.size(), kThreads * kIters);
  EXPECT_EQ(trace::TraceLog::instance().dropped(), 0u);
}

TEST(TraceTest, SortEmitsPhaseSpans) {
  TracerScope scope;
  const auto g = Geometry::square(1024);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(7);
  auto data = make_keys(8192, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  ExpectedTwoPassOptions o;
  o.mem_records = g.mem;
  auto res = expected_two_pass_sort<u64>(*ctx, in, o);
  test::expect_sorted_output<u64>(res.output, data);
  // The run must be attributable: a run-formation span, at least one
  // merge/distribute span, and the whole-sort span from ReportBuilder.
  EXPECT_FALSE(events_named("run_formation").empty());
  bool has_sort_span = false;
  for (const auto& ev : trace::TraceLog::instance().snapshot()) {
    if (std::string(ev.name_str()).rfind("sort.", 0) == 0) {
      has_sort_span = true;
    }
  }
  EXPECT_TRUE(has_sort_span);
}

TEST(TraceTest, StatsIdenticalTracingOnAndOff) {
  const auto g = Geometry::square(1024);
  Rng rng(11);
  auto data = make_keys(16384, Dist::kUniform, rng);
  auto run_once = [&]() {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedTwoPassOptions o;
    o.mem_records = g.mem;
    auto res = expected_two_pass_sort<u64>(*ctx, in, o);
    test::expect_sorted_output<u64>(res.output, data);
    return ctx->stats();
  };
  trace::TraceLog::instance().set_enabled(false);
  const IoStats off = run_once();
  IoStats on;
  {
    TracerScope scope;
    on = run_once();
  }
  // The tracer only reads clocks: every accounting figure, including the
  // order-sensitive schedule hash, must be identical.
  EXPECT_EQ(off.read_ops, on.read_ops);
  EXPECT_EQ(off.write_ops, on.write_ops);
  EXPECT_EQ(off.blocks_read, on.blocks_read);
  EXPECT_EQ(off.blocks_written, on.blocks_written);
  EXPECT_EQ(off.schedule_hash, on.schedule_hash);
}

TEST(MetricsTest, SpanSinkFillsPerPhaseHistograms) {
  metrics::install_span_histograms();
  TracerScope scope;
  {
    trace::TraceSpan span("test", "sink_probe_span");
  }
  auto& h = metrics::Registry::global().histogram("span.sink_probe_span");
  EXPECT_GE(h.count(), 1u);
}

#endif  // PDMSORT_TRACING

TEST(MetricsTest, HistogramSmallValuesAndMaxAreExact) {
  metrics::LogHistogram h;
  for (u64 v = 0; v < 8; ++v) h.record(v);
  h.record(1000000);
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 1000000);
  // Values below 8 land in exact unit buckets: low quantiles are exact.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 1000000u);  // p100 = exact max
}

TEST(MetricsTest, QuantileAccuracyAgainstSortedGroundTruth) {
  std::mt19937_64 rng(42);
  metrics::LogHistogram h;
  std::vector<u64> truth;
  truth.reserve(20000);
  for (usize i = 0; i < 20000; ++i) {
    // Log-uniform over ~9 decades, the shape of a latency distribution.
    const double exp = std::uniform_real_distribution<double>(0, 9)(rng);
    const u64 v = static_cast<u64>(std::pow(10.0, exp));
    truth.push_back(v);
    h.record(v);
  }
  std::sort(truth.begin(), truth.end());
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const auto rank = static_cast<usize>(
        std::ceil(q * static_cast<double>(truth.size())));
    const double exact =
        static_cast<double>(truth[rank == 0 ? 0 : rank - 1]);
    const double est = static_cast<double>(h.quantile(q));
    // 8 sub-buckets per octave bound the relative error at ~1/16 of the
    // bucket width; 10% gives slack for the nearest-rank edge.
    EXPECT_NEAR(est, exact, std::max(1.0, 0.10 * exact))
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(MetricsTest, RegistryTextExposition) {
  auto& reg = metrics::Registry::global();
  reg.counter("test.requests").add(3);
  reg.gauge("test.depth").set(-2);
  reg.histogram("test.lat_ns").record(100);
  const std::string text = reg.text();
  EXPECT_NE(text.find("counter test.requests 3"), std::string::npos);
  EXPECT_NE(text.find("gauge test.depth -2"), std::string::npos);
  EXPECT_NE(text.find("hist test.lat_ns count=1"), std::string::npos);
  EXPECT_NE(text.find("max=100"), std::string::npos);
}

TEST(LoggingTest, ConcurrentLinesNeverInterleave) {
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  constexpr usize kThreads = 8;
  constexpr usize kLines = 200;
  {
    std::vector<std::thread> threads;
    for (usize t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (usize i = 0; i < kLines; ++i) {
          PDM_INFO("line-" << t << "-" << i << "-end");
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  set_log_level(old_level);
  std::cerr.rdbuf(old);
  // Every line must be whole: correct prefix, correct "-end" suffix, and
  // exactly kThreads * kLines of them.
  std::istringstream in(captured.str());
  std::string line;
  usize total = 0;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.rfind("[pdmsort INFO] line-", 0), 0u)
        << "interleaved or torn line: " << line;
    ASSERT_EQ(line.substr(line.size() - 4), "-end")
        << "torn line: " << line;
    ++total;
  }
  EXPECT_EQ(total, kThreads * kLines);
}

TEST(ClusterTest, PumpRejectsHopelessDeadlinesWithCounter) {
  const u64 mem = 1024;
  const u64 rpb = isqrt(mem);
  ClusterConfig cfg;
  cfg.shards = 1;
  cfg.shard.workers = 1;
  cfg.shard.deadline_admission = true;
  Cluster cluster(memory_backend_factory(4, rpb * sizeof(u64), 0), cfg);

  Rng rng(3);
  // Job A occupies the single worker: its completion callback blocks until
  // released, so job B cannot dispatch and must park in the hold queue.
  std::promise<void> a_started;
  std::promise<void> release_a;
  std::shared_future<void> release_f = release_a.get_future().share();
  SortJobSpec a_spec;
  a_spec.name = "occupier";
  a_spec.mem_records = mem;
  const JobId a = cluster.submit<u64>(
      a_spec, make_keys(2048, Dist::kUniform, rng), std::less<u64>{},
      [&a_started, release_f](const SortResult<u64>&) {
        a_started.set_value();
        release_f.wait();
      });
  a_started.get_future().wait();

  // Job B: a deadline far below any run estimate (one round already costs
  // ~CostModel::seek_s = 4ms >> 10us). The park-time pump must reject it
  // via the calibrated estimate — it never reaches the shard.
  SortJobSpec b_spec;
  b_spec.name = "hopeless";
  b_spec.mem_records = mem;
  b_spec.deadline_s = 1e-5;
  const JobId b = cluster.submit<u64>(
      b_spec, make_keys(4096, Dist::kUniform, rng));

  const JobInfo bi = cluster.info(b);
  EXPECT_EQ(bi.state, JobState::kRejected);
  EXPECT_NE(bi.error.find("deadline admission (pump)"), std::string::npos)
      << bi.error;

  release_a.set_value();
  EXPECT_EQ(cluster.wait(a).state, JobState::kDone);
  cluster.drain();

  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.held_rejected_deadline, 1u);
  EXPECT_EQ(st.held_rejected, 1u);
  EXPECT_EQ(st.rejected, 1u);
  // The exposition surface carries the rejection and the park histogram.
  const std::string text = cluster.metrics_text();
  EXPECT_NE(text.find("cluster.hold_depth"), std::string::npos);
}

}  // namespace
}  // namespace pdm
