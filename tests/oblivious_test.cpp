// Obliviousness tests: the paper (§1) stresses that all its comparison
// sorts except IntegerSort are oblivious — their I/O schedules depend only
// on (N, M, B, D), never on the data. We verify this by hashing the full
// I/O schedule (disk, block, direction per request, in order) and checking
// it is identical across different inputs of the same shape.
#include <gtest/gtest.h>

#include "baselines/columnsort.h"
#include "baselines/multiway_merge.h"
#include "core/seven_pass.h"
#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

template <class SortFn>
u64 schedule_hash_of(u64 mem, u64 n, u64 seed, Dist dist, SortFn&& sort_fn) {
  const auto g = Geometry::square(mem);
  auto ctx = test::make_ctx<u64>(g, 1);
  Rng rng(seed);
  auto data = make_keys(static_cast<usize>(n), dist, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  sort_fn(*ctx, in, mem);
  return ctx->stats().schedule_hash;
}

TEST(Oblivious, ThreePassLmmScheduleIsDataIndependent) {
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    (void)three_pass_lmm_sort<u64>(ctx, in, opt);
  };
  const u64 h1 = schedule_hash_of(256, 4096, 1, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, 4096, 2, Dist::kUniform, run);
  const u64 h3 = schedule_hash_of(256, 4096, 3, Dist::kReverse, run);
  const u64 h4 = schedule_hash_of(256, 4096, 4, Dist::kAllEqual, run);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h3);
  EXPECT_EQ(h1, h4);
}

TEST(Oblivious, ThreePassMeshScheduleIsDataIndependent) {
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    ThreePassMeshOptions opt;
    opt.mem_records = mem;
    (void)three_pass_mesh_sort<u64>(ctx, in, opt);
  };
  const u64 h1 = schedule_hash_of(256, 4096, 5, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, 4096, 6, Dist::kZipf, run);
  EXPECT_EQ(h1, h2);
}

TEST(Oblivious, SevenPassScheduleIsDataIndependent) {
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    SevenPassOptions opt;
    opt.mem_records = mem;
    (void)seven_pass_sort<u64>(ctx, in, opt);
  };
  const u64 h1 = schedule_hash_of(256, 256 * 256, 7, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, 256 * 256, 8, Dist::kReverse, run);
  EXPECT_EQ(h1, h2);
}

TEST(Oblivious, ColumnsortScheduleIsDataIndependent) {
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    ColumnsortOptions opt;
    opt.mem_records = mem;
    (void)columnsort_cc_sort<u64>(ctx, in, opt);
  };
  const u64 n = max_columnsort_n(256, 16);
  const u64 h1 = schedule_hash_of(256, n, 9, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, n, 10, Dist::kFewDistinct, run);
  EXPECT_EQ(h1, h2);
}

TEST(Oblivious, DifferentShapesGiveDifferentSchedules) {
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    ThreePassLmmOptions opt;
    opt.mem_records = mem;
    (void)three_pass_lmm_sort<u64>(ctx, in, opt);
  };
  const u64 h1 = schedule_hash_of(256, 4096, 1, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, 2048, 1, Dist::kUniform, run);
  EXPECT_NE(h1, h2);
}

TEST(Oblivious, MultiwayMergeIsNot) {
  // Included for contrast (the full statement is in baselines_test):
  // identical shape, different data => different schedule.
  auto run = [](PdmContext& ctx, const StripedRun<u64>& in, u64 mem) {
    MultiwaySortOptions opt;
    opt.mem_records = mem;
    (void)multiway_merge_sort<u64>(ctx, in, opt);
  };
  const u64 h1 = schedule_hash_of(256, 4096, 11, Dist::kUniform, run);
  const u64 h2 = schedule_hash_of(256, 4096, 12, Dist::kUniform, run);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace pdm
