// pdm::Cluster: sharded multi-context serving behind a load/locality-
// aware router. Covers the three placement policies, overflow spill to a
// shard with room, cluster-global job handles, and — under a concurrent
// mixed workload — the two-level exact-sum accounting invariant: per-job
// IoStats deltas sum to their shard's totals, and per-shard totals sum to
// the ClusterStats totals. The whole file must be TSan-clean (CI runs it
// under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "pdm/backend_factory.h"
#include "test_support.h"
#include "util/generators.h"

namespace pdm {
namespace {

constexpr u64 kMem = 1024;          // per-job M in records
constexpr usize kBlockBytes = 256;  // rpb: u64=32, KV64=16, i32=64
constexpr u32 kDisksPerShard = 4;

SortJobSpec spec_of(std::string name, std::string locality_key = "",
                    int priority = 0) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kMem;
  s.priority = priority;
  s.locality_key = std::move(locality_key);
  return s;
}

/// A locality key routing to `shard` on the cluster's consistent-hash
/// ring (placement is ring-based since the elastic cluster, not modulo).
std::string key_for_shard(const Cluster& cluster, u32 shard,
                          std::string seed) {
  std::string key = seed;
  while (cluster.router().ring().route(locality_hash(key)) != shard) {
    key += seed;
  }
  return key;
}

JobId submit_verified(Cluster& cluster, SortJobSpec spec,
                      std::vector<u64> data, std::atomic<int>& ok,
                      std::atomic<int>& bad) {
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  return cluster.submit<u64>(
      std::move(spec), std::move(data), std::less<u64>{},
      [expected = std::move(expected), &ok, &bad](const SortResult<u64>& res) {
        auto got = res.output.read_all();
        if (got == expected) {
          ++ok;
        } else {
          ++bad;
        }
      });
}

TEST(Cluster, RoundRobinSpreadsEvenly)
{
  ClusterConfig cfg;
  cfg.shards = 4;
  cfg.policy = RoutePolicy::kRoundRobin;
  cfg.shard.workers = 1;
  // Policy behavior in isolation: no hold-queue stealing, so every job
  // stays on its round-robin shard however busy it is (with 1 worker a
  // shard's later jobs park, and an idle neighbour finishing out of
  // order would otherwise steal them and skew the spread).
  cfg.hold_queue = false;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  Rng rng(1);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(submit_verified(
        cluster, spec_of("rr" + std::to_string(i)),
        make_keys(2 * kMem, Dist::kPermutation, rng), ok, bad));
  }
  cluster.drain();
  for (JobId id : ids) EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
  EXPECT_EQ(ok.load(), 12);
  EXPECT_EQ(bad.load(), 0);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.completed, 12u);
  ASSERT_EQ(st.jobs_per_shard.size(), 4u);
  for (u64 per : st.jobs_per_shard) EXPECT_EQ(per, 3u);
  EXPECT_DOUBLE_EQ(st.job_imbalance, 1.0);
  EXPECT_EQ(st.spilled, 0u);
}

TEST(Cluster, LocalityHashIsStable)
{
  ClusterConfig cfg;
  cfg.shards = 4;
  cfg.policy = RoutePolicy::kLocalityHash;
  cfg.shard.workers = 1;
  // Policy behavior in isolation: no hold-queue stealing, so every job
  // stays on its hash-placed shard however busy it is.
  cfg.hold_queue = false;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  Rng rng(2);
  std::vector<JobId> tenant_a;
  std::vector<JobId> tenant_b;
  for (int i = 0; i < 5; ++i) {
    tenant_a.push_back(cluster.submit<u64>(
        spec_of("a" + std::to_string(i), "tenant-a"),
        make_keys(2 * kMem, Dist::kUniform, rng)));
    tenant_b.push_back(cluster.submit<u64>(
        spec_of("b" + std::to_string(i), "tenant-b"),
        make_keys(2 * kMem, Dist::kUniform, rng)));
  }
  cluster.drain();
  // Every job of a tenant landed on that tenant's (ring-stable) shard.
  const u32 shard_a =
      cluster.router().ring().route(locality_hash("tenant-a"));
  const u32 shard_b =
      cluster.router().ring().route(locality_hash("tenant-b"));
  for (JobId id : tenant_a) {
    EXPECT_EQ(cluster.shard_of(id), shard_a);
    EXPECT_EQ(cluster.info(id).shard, shard_a);
    EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
  }
  for (JobId id : tenant_b) EXPECT_EQ(cluster.shard_of(id), shard_b);
  // Repeat tenants share plan-cache state: one miss per distinct shape on
  // the tenant's shard, the rest hits.
  const ServiceStats sa = cluster.shard(shard_a).stats();
  EXPECT_GE(sa.plan_cache_hits + sa.plan_cache_misses, 5u);
  EXPECT_LE(sa.plan_cache_misses, 2u);
}

TEST(Cluster, LeastLoadedAvoidsBusyShard)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = 1;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 50),
                  cfg);
  Rng rng(3);
  // Pin shard 0 with a long, memory-heavy job submitted directly to it
  // (bypassing the router and its placement counters): its queue depth
  // plus reserved-memory fraction keeps shard 0's load score high.
  SortJobSpec pin_spec = spec_of("pin");
  pin_spec.carve_bytes = cluster.shard(0).budget().limit() / 2;
  const JobId pin = cluster.shard(0).submit<u64>(
      pin_spec, make_keys(64 * kMem, Dist::kPermutation, rng));
  while (cluster.shard(0).info(pin).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Power-of-two-choices over 2 shards compares both every time: while
  // shard 0 is busy, traffic routes to shard 1. Spaced submissions let
  // shard 1 drain between placements so its own queue does not (rightly)
  // tip the balance back.
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(cluster.submit<u64>(
        spec_of("ll" + std::to_string(i)),
        make_keys(kMem, Dist::kUniform, rng)));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (JobId id : ids) EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
  EXPECT_EQ(cluster.shard(0).wait(pin).state, JobState::kDone);
  const ClusterStats st = cluster.stats();
  ASSERT_EQ(st.jobs_per_shard.size(), 2u);
  EXPECT_LE(st.jobs_per_shard[0], 1u);
  EXPECT_GE(st.jobs_per_shard[1], 5u);
}

TEST(Cluster, SpillsToShardWithRoomBeforeRejecting)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLocalityHash;
  // Heterogeneous shards: shard 0 is memory-starved, shard 1 roomy.
  cfg.shard_configs.resize(2, cfg.shard);
  cfg.shard_configs[0].workers = 1;
  cfg.shard_configs[0].total_memory_bytes = usize{1} << 20;
  cfg.shard_configs[1].workers = 1;
  cfg.shard_configs[1].total_memory_bytes = usize{64} << 20;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  // A locality key that prefers the starved shard.
  const std::string key = key_for_shard(cluster, 0, "k");
  Rng rng(4);
  // Carve = 6 * 32Ki * 8B = 1.5 MiB: over shard 0's budget, fine on 1.
  SortJobSpec big = spec_of("big", key);
  big.mem_records = u64{32} << 10;
  const JobId spilled =
      cluster.submit<u64>(big, make_keys(kMem, Dist::kUniform, rng));
  // Small jobs with the same key still land on their preferred shard.
  const JobId small =
      cluster.submit<u64>(spec_of("small", key),
                          make_keys(kMem, Dist::kUniform, rng));
  // A job no shard can admit is rejected cluster-wide, with the record on
  // the preferred shard.
  SortJobSpec huge = spec_of("huge", key);
  huge.mem_records = u64{1} << 26;  // carve ~3 GiB
  const JobId rejected =
      cluster.submit<u64>(huge, make_keys(kMem, Dist::kUniform, rng));
  cluster.drain();

  EXPECT_EQ(cluster.shard_of(spilled), 1u);
  EXPECT_EQ(cluster.wait(spilled).state, JobState::kDone);
  EXPECT_EQ(cluster.shard_of(small), 0u);
  EXPECT_EQ(cluster.wait(small).state, JobState::kDone);
  EXPECT_EQ(cluster.shard_of(rejected), 0u);
  const JobInfo rj = cluster.wait(rejected);
  EXPECT_EQ(rj.state, JobState::kRejected);
  EXPECT_NE(rj.error.find("admission control"), std::string::npos);
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.spilled, 1u);
  EXPECT_EQ(st.rejected_cluster_wide, 1u);
  EXPECT_EQ(st.rejected, 1u);
}

TEST(Cluster, PassCountsUnchangedByShardCount)
{
  // The paper's pass bounds are per-array properties: the same job placed
  // on a 1-shard or a 4-shard cluster (same per-shard geometry) does
  // exactly the same I/O.
  Rng rng(5);
  const auto data = make_keys(4 * kMem, Dist::kPermutation, rng);
  double solo_passes = 0;
  std::string solo_algo;
  {
    ClusterConfig cfg;
    cfg.shards = 1;
    cfg.shard.workers = 1;
    Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes),
                    cfg);
    const JobInfo info =
        cluster.wait(cluster.submit<u64>(spec_of("solo"), data));
    ASSERT_EQ(info.state, JobState::kDone);
    solo_passes = info.report.passes;
    solo_algo = info.algorithm;
  }
  ClusterConfig cfg;
  cfg.shards = 4;
  cfg.policy = RoutePolicy::kRoundRobin;
  cfg.shard.workers = 1;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(cluster.submit<u64>(spec_of("p" + std::to_string(i)),
                                      data));
  }
  for (JobId id : ids) {
    const JobInfo info = cluster.wait(id);
    ASSERT_EQ(info.state, JobState::kDone);
    EXPECT_EQ(info.algorithm, solo_algo);
    EXPECT_DOUBLE_EQ(info.report.passes, solo_passes)
        << "placement must not change a job's I/O complexity";
  }
}

TEST(Cluster, StickySpillBackPinsRepeatedlySpillingTenant)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kLocalityHash;
  cfg.spill_promote_after = 2;
  cfg.shard_configs.resize(2, cfg.shard);
  cfg.shard_configs[0].workers = 1;
  cfg.shard_configs[0].total_memory_bytes = usize{1} << 20;  // starved
  cfg.shard_configs[1].workers = 1;
  cfg.shard_configs[1].total_memory_bytes = usize{64} << 20;  // roomy
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  const std::string key = key_for_shard(cluster, 0, "k");
  Rng rng(9);
  // Every job of this tenant carves ~1.5 MiB: over shard 0's whole
  // budget, so its hash-preferred placement always spills.
  auto big_spec = [&](int i) {
    SortJobSpec s = spec_of("sticky" + std::to_string(i), key);
    s.mem_records = u64{32} << 10;
    return s;
  };
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(
        cluster.submit<u64>(big_spec(i), make_keys(kMem, Dist::kUniform,
                                                   rng)));
  }
  cluster.drain();
  for (JobId id : ids) {
    EXPECT_EQ(cluster.shard_of(id), 1u);
    EXPECT_EQ(cluster.wait(id).state, JobState::kDone);
  }
  // The first spill_promote_after submissions spill (full rescans); after
  // promotion the key is pinned to shard 1 and placements stop counting
  // as spills.
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.spilled, 2u);
  ASSERT_TRUE(cluster.router().pinned_shard(key).has_value());
  EXPECT_EQ(*cluster.router().pinned_shard(key), 1u);
  // An unrelated tenant whose (small) jobs fit its preferred shard 0 is
  // unaffected by the pin and never spills.
  const std::string key0 = key_for_shard(cluster, 0, "a");
  const JobId other = cluster.submit<u64>(
      spec_of("other", key0), make_keys(kMem, Dist::kUniform, rng));
  EXPECT_EQ(cluster.shard_of(other), 0u);
  EXPECT_EQ(cluster.wait(other).state, JobState::kDone);
  EXPECT_FALSE(cluster.router().pinned_shard(key0).has_value());
}

TEST(Cluster, ForgetCleansEvictedMappings)
{
  ClusterConfig cfg;
  cfg.shards = 2;
  cfg.policy = RoutePolicy::kRoundRobin;
  cfg.shard.workers = 1;
  cfg.shard.retain_terminal_max = 2;  // shards evict aggressively
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes), cfg);
  Rng rng(7);
  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(cluster.submit<u64>(
        spec_of("f" + std::to_string(i)),
        make_keys(2 * kMem, Dist::kPermutation, rng)));
  }
  cluster.drain();
  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_LE(st.retained, 4u);  // 2 per shard
  // forget() succeeds for retained AND already-evicted records alike —
  // either way the cluster mapping is released and the id goes unknown.
  for (JobId id : ids) EXPECT_TRUE(cluster.forget(id));
  for (JobId id : ids) EXPECT_FALSE(cluster.forget(id));
  EXPECT_EQ(cluster.stats().retained, 0u);
}

TEST(Cluster, StressAccountingInvariantAcrossShards)
{
  ClusterConfig cfg;
  cfg.shards = 4;
  cfg.policy = RoutePolicy::kLeastLoaded;
  cfg.shard.workers = 2;
  cfg.shard.io_depth_total = 4;
  cfg.shard.small_job_records = 512;
  cfg.shard.total_memory_bytes = usize{32} << 20;
  Cluster cluster(memory_backend_factory(kDisksPerShard, kBlockBytes, 20),
                  cfg);
  Rng rng(6);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> all;
  const char* tenants[] = {"alpha", "beta", "gamma"};
  for (int round = 0; round < 8; ++round) {
    all.push_back(submit_verified(
        cluster,
        spec_of("big" + std::to_string(round), tenants[round % 3],
                round % 2),
        make_keys(8 * kMem, Dist::kPermutation, rng), ok, bad));
    all.push_back(submit_verified(
        cluster, spec_of("mid" + std::to_string(round)),
        make_keys(2 * kMem, Dist::kZipf, rng), ok, bad));
    all.push_back(submit_verified(
        cluster, spec_of("small" + std::to_string(round)),
        make_keys(256, Dist::kUniform, rng), ok, bad));
    all.push_back(cluster.submit<KV64>(
        spec_of("kv" + std::to_string(round), tenants[(round + 1) % 3]),
        make_kv(2 * kMem, Dist::kFewDistinct, rng)));
  }
  // A failure and a cluster-wide rejection mixed into live traffic.
  all.push_back(cluster.submit<u64>(spec_of("infeasible"),
                                    make_keys(1234, Dist::kUniform, rng)));
  SortJobSpec hog = spec_of("hog");
  hog.mem_records = u64{1} << 26;
  all.push_back(
      cluster.submit<u64>(hog, make_keys(64, Dist::kUniform, rng)));
  usize cancelled = 0;
  for (usize i = 0; i < all.size(); i += 9) {
    cancelled += cluster.cancel(all[i]) ? 1 : 0;
  }
  cluster.drain();

  const ClusterStats st = cluster.stats();
  EXPECT_EQ(st.submitted, all.size());
  EXPECT_EQ(st.completed + st.failed + st.cancelled + st.rejected,
            st.submitted);
  EXPECT_EQ(st.cancelled, cancelled);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.rejected_cluster_wide, 1u);
  EXPECT_GE(st.failed, 1u);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(st.shards, 4u);
  EXPECT_GT(st.jobs_per_sec, 0.0);
  EXPECT_GE(st.job_imbalance, 1.0);

  // Level 1: within every shard, per-job deltas sum exactly to the
  // shard's live totals.
  for (usize s = 0; s < cluster.num_shards(); ++s) {
    const ServiceStats ss = st.per_shard[s];
    IoStats sum;
    sum.reset(kDisksPerShard);
    for (const JobInfo& j : cluster.shard(s).jobs()) {
      sum.read_ops += j.io.read_ops;
      sum.write_ops += j.io.write_ops;
      sum.blocks_read += j.io.blocks_read;
      sum.blocks_written += j.io.blocks_written;
      for (usize d = 0; d < j.io.disk_reads.size(); ++d) {
        sum.disk_reads[d] += j.io.disk_reads[d];
        sum.disk_writes[d] += j.io.disk_writes[d];
      }
    }
    EXPECT_EQ(sum.read_ops, ss.io.read_ops) << "shard " << s;
    EXPECT_EQ(sum.write_ops, ss.io.write_ops) << "shard " << s;
    EXPECT_EQ(sum.blocks_read, ss.io.blocks_read) << "shard " << s;
    EXPECT_EQ(sum.blocks_written, ss.io.blocks_written) << "shard " << s;
    ASSERT_EQ(ss.io.disk_reads.size(), kDisksPerShard);
    for (usize d = 0; d < kDisksPerShard; ++d) {
      EXPECT_EQ(sum.disk_reads[d], ss.io.disk_reads[d])
          << "shard " << s << " disk " << d;
      EXPECT_EQ(sum.disk_writes[d], ss.io.disk_writes[d])
          << "shard " << s << " disk " << d;
    }
  }
  // Level 2: shard totals sum exactly to the cluster totals.
  IoStats shard_sum;
  shard_sum.reset(0);
  u64 blocks = 0;
  for (const ServiceStats& ss : st.per_shard) {
    shard_sum.read_ops += ss.io.read_ops;
    shard_sum.write_ops += ss.io.write_ops;
    shard_sum.blocks_read += ss.io.blocks_read;
    shard_sum.blocks_written += ss.io.blocks_written;
    blocks += ss.io.total_blocks();
  }
  EXPECT_EQ(shard_sum.read_ops, st.io.read_ops);
  EXPECT_EQ(shard_sum.write_ops, st.io.write_ops);
  EXPECT_EQ(shard_sum.blocks_read, st.io.blocks_read);
  EXPECT_EQ(shard_sum.blocks_written, st.io.blocks_written);
  EXPECT_EQ(st.io.disk_reads.size(),
            static_cast<usize>(kDisksPerShard) * 4);
  EXPECT_EQ(blocks, st.io.total_blocks());
}

}  // namespace
}  // namespace pdm
