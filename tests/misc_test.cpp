// Edge cases, error paths, and the thread-pool-accelerated internal-sort
// paths through the sorters.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <set>

#include "core/three_pass_lmm.h"
#include "core/three_pass_mesh.h"
#include "pdm/file_backend.h"
#include "pdm/ragged_run.h"
#include "primitives/stream.h"
#include "test_support.h"
#include "util/table.h"

namespace pdm {
namespace {

using test::Geometry;

TEST(ErrorPaths, AppendAfterFinishThrows) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  StripedRun<u64> run(*ctx);
  std::vector<u64> v(8, 1);
  run.append(std::span<const u64>(v));
  run.finish();
  EXPECT_THROW(run.append(std::span<const u64>(v)), Error);
}

TEST(ErrorPaths, ReadAllBeforeFinishWithTailThrows) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  StripedRun<u64> run(*ctx);
  std::vector<u64> v(3, 1);  // partial block stays buffered
  run.append(std::span<const u64>(v));
  EXPECT_THROW(run.read_all(), Error);
  run.finish();
  EXPECT_EQ(run.read_all().size(), 3u);
}

TEST(ErrorPaths, BlockMatrixOutOfRange) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  BlockMatrix<u64> mat(*ctx, 2, 3);
  u64 buf[8];
  EXPECT_THROW((void)mat.read_req(2, 0, buf), Error);
  EXPECT_THROW((void)mat.read_req(0, 3, buf), Error);
}

TEST(ErrorPaths, StripedRunReadBlocksOutOfRange) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  std::vector<u64> v(16, 1);
  auto run = write_input_run<u64>(*ctx, std::span<const u64>(v));
  std::vector<u64> buf(16);
  EXPECT_THROW(run.read_blocks(1, 2, buf.data()), Error);
}

TEST(ErrorPaths, RaggedRunBadCount) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  RaggedRun<u64> run(*ctx);
  std::vector<u64> v(8, 1);
  EXPECT_THROW((void)run.stage_block(v.data(), 0), Error);
  EXPECT_THROW((void)run.stage_block(v.data(), 9), Error);
}

TEST(FileBackendExtra, KeepFilesLeavesDataOnDisk) {
  const std::string dir = "/tmp/pdmsort_keepfiles_test";
  {
    auto be = std::make_unique<FileDiskBackend>(2, 64, dir,
                                                /*keep_files=*/true);
    std::vector<std::byte> w(64, std::byte{7});
    WriteReq req{{0, 0}, w.data()};
    be->write_batch(std::span<const WriteReq>(&req, 1));
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/disk000.bin"));
  std::filesystem::remove_all(dir);
}

TEST(IoStatsExtra, DeltaSubtracts) {
  IoStats a;
  a.reset(2);
  a.read_ops = 10;
  a.blocks_read = 50;
  a.sim_time_s = 1.5;
  IoStats b = a;
  b.read_ops = 25;
  b.blocks_read = 110;
  b.sim_time_s = 4.0;
  IoStats d = delta(b, a);
  EXPECT_EQ(d.read_ops, 15u);
  EXPECT_EQ(d.blocks_read, 60u);
  EXPECT_NEAR(d.sim_time_s, 2.5, 1e-12);
}

TEST(IoStatsExtra, PassesArithmetic) {
  IoStats s;
  s.reset(4);
  s.read_ops = 64;   // N/(D*B) = 4096/(4*16) = 64 => 1 read pass
  s.write_ops = 128;  // 2 write passes
  EXPECT_NEAR(s.read_passes(4096, 16, 4), 1.0, 1e-12);
  EXPECT_NEAR(s.write_passes(4096, 16, 4), 2.0, 1e-12);
  EXPECT_NEAR(s.passes(4096, 16, 4), 1.5, 1e-12);
}

TEST(CountingSinkWorks, ForwardsAndCounts) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  StripedRun<u64> run(*ctx);
  RunSink<u64> inner(run);
  CountingSink<u64> sink(inner);
  std::vector<u64> v(20, 3);
  sink.push(std::span<const u64>(v.data(), 12));
  sink.push(std::span<const u64>(v.data(), 8));
  sink.close();
  EXPECT_EQ(sink.count(), 20u);
  EXPECT_EQ(run.size(), 20u);
}

TEST(UnshuffleSinkExtra, PartialCloseFlushesTails) {
  auto ctx = make_memory_context(2, 4 * sizeof(u64));
  std::vector<StripedRun<u64>> parts;
  for (u32 j = 0; j < 2; ++j) parts.emplace_back(*ctx, j);
  {
    UnshuffleSink<u64> sink(*ctx, std::span<StripedRun<u64>>(parts.data(), 2));
    std::vector<u64> stream(10);
    std::iota(stream.begin(), stream.end(), u64{0});
    sink.push(std::span<const u64>(stream));  // 10 records: uneven tails
    sink.close();
  }
  EXPECT_EQ(parts[0].read_all(), (std::vector<u64>{0, 2, 4, 6, 8}));
  EXPECT_EQ(parts[1].read_all(), (std::vector<u64>{1, 3, 5, 7, 9}));
}

TEST(ParallelSortPath, MeshWithPoolMatchesSerial) {
  const auto g = Geometry::square(1024);
  Rng rng(1);
  auto data = make_keys(static_cast<usize>(1024 * 32), Dist::kUniform, rng);
  std::vector<u64> serial_out, parallel_out;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassMeshOptions opt;
    opt.mem_records = 1024;
    serial_out = three_pass_mesh_sort<u64>(*ctx, in, opt).output.read_all();
  }
  {
    ThreadPool pool(4);
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassMeshOptions opt;
    opt.mem_records = 1024;
    opt.pool = &pool;
    parallel_out = three_pass_mesh_sort<u64>(*ctx, in, opt).output.read_all();
  }
  EXPECT_EQ(serial_out, parallel_out);
}

TEST(ParallelSortPath, LmmWithPoolSameScheduleAndOutput) {
  // The pool only accelerates in-memory sorting; the I/O schedule (and
  // hence obliviousness) must be identical.
  const auto g = Geometry::square(1024);
  Rng rng(2);
  auto data = make_keys(static_cast<usize>(1024 * 16), Dist::kUniform, rng);
  u64 h_serial, h_parallel;
  std::vector<u64> out_serial, out_parallel;
  {
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = 1024;
    out_serial = three_pass_lmm_sort<u64>(*ctx, in, opt).output.read_all();
    h_serial = ctx->stats().schedule_hash;
  }
  {
    ThreadPool pool(4);
    auto ctx = test::make_ctx<u64>(g);
    auto in = test::stage_input<u64>(*ctx, data);
    ThreePassLmmOptions opt;
    opt.mem_records = 1024;
    opt.pool = &pool;
    out_parallel = three_pass_lmm_sort<u64>(*ctx, in, opt).output.read_all();
    h_parallel = ctx->stats().schedule_hash;
  }
  EXPECT_EQ(out_serial, out_parallel);
  EXPECT_EQ(h_serial, h_parallel);
}

TEST(TableExtra, FmtCountBoundaries) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(1000), "1.00K");
  EXPECT_EQ(fmt_count(999999), "1000K");
  EXPECT_EQ(fmt_count(1000000000000ull), "1.00T");
}

TEST(CapacityExtra, LowerBoundMonotoneInN) {
  const u64 m = 1u << 16;
  const u64 b = 1u << 8;
  double prev = 0;
  for (u64 n = m; n <= m * m; n *= 16) {
    const double lb = lower_bound_passes(n, m, b);
    EXPECT_GT(lb, prev);
    prev = lb;
  }
}

TEST(GeneratorsExtra, MergeAdversaryIsRunSorted) {
  const u64 runs = 4, run_len = 256;
  auto v = make_merge_adversary(runs, run_len, 16, 8,
                                flat_run_start_stride(8));
  ASSERT_EQ(v.size(), runs * run_len);
  // Each run-length segment must be sorted (so run formation yields
  // exactly the designed runs), and all keys distinct.
  std::set<u64> seen;
  for (u64 r = 0; r < runs; ++r) {
    for (u64 t = 1; t < run_len; ++t) {
      EXPECT_LT(v[r * run_len + t - 1], v[r * run_len + t]);
    }
    for (u64 t = 0; t < run_len; ++t) seen.insert(v[r * run_len + t]);
  }
  EXPECT_EQ(seen.size(), v.size());
}

}  // namespace
}  // namespace pdm
