// Parallel in-core kernels (cpu_pool.h) and the service CPU-budget
// arbiter. The determinism bar: every sorter must produce byte-identical
// output, identical IoStats accounting (ops, blocks, per-disk vectors)
// and an identical schedule hash at any CPU budget — budget 1 takes the
// exact legacy serial code path, budgets >= 2 take the parallel kernels
// whose chunking is a function of n only. Also covers the mid-flight
// async-depth re-arbitration (raise_depth without a quiesce) and the
// size-indexed allocator free list. The whole file must be TSan-clean
// (CI runs it under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "baselines/multiway_merge.h"
#include "core/adaptive.h"
#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "internal/insort.h"
#include "internal/radix_partition.h"
#include "pdm/memory_backend.h"
#include "service/sort_service.h"
#include "test_support.h"
#include "util/cpu_pool.h"
#include "util/generators.h"
#include "util/metrics.h"

namespace pdm {
namespace {

using test::Geometry;

// ---------------------------------------------------------------- CpuPool

TEST(CpuPool, SerialBudgetRunsInlineInOrder)
{
  CpuPool pool(1);
  const auto me = std::this_thread::get_id();
  std::vector<usize> order;
  pool.run_chunks(8, [&](usize i) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (usize i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(CpuPool, ParallelExecutesEveryChunkExactlyOnce)
{
  CpuPool pool(4);
  constexpr usize kChunks = 257;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](usize i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (usize i = 0; i < kChunks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(CpuPool, ParallelRangesPartitionExactly)
{
  CpuPool pool(3);
  constexpr usize kBegin = 13, kEnd = 1013;
  std::vector<std::atomic<int>> hits(kEnd);
  pool.parallel_ranges(kBegin, kEnd, 7, [&](usize lo, usize hi) {
    for (usize i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (usize i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (usize i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(CpuPool, HelpersRunConcurrentlyWithCaller)
{
  // Chunk 0 blocks until chunk 1 runs: passes only if two threads
  // participate in the region (times out, rather than hangs, on failure).
  CpuPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool flagged = false;
  bool saw = false;
  pool.run_chunks(2, [&](usize i) {
    if (i == 1) {
      {
        std::lock_guard<std::mutex> g(m);
        flagged = true;
      }
      cv.notify_all();
    } else {
      std::unique_lock<std::mutex> lk(m);
      saw = cv.wait_for(lk, std::chrono::seconds(30),
                        [&] { return flagged; });
    }
  });
  EXPECT_TRUE(saw) << "helper thread never picked up chunk 1";
}

TEST(CpuPool, ExceptionPropagatesAndPoolSurvives)
{
  CpuPool pool(4);
  EXPECT_THROW(pool.run_chunks(16,
                               [&](usize i) {
                                 if (i == 3) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  // The pool is reusable after a failed region.
  std::atomic<int> n{0};
  pool.run_chunks(16, [&](usize) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(CpuPool, BudgetRaiseTakesEffectOnNextRegion)
{
  CpuPool pool(1);
  pool.set_budget(4);
  EXPECT_EQ(pool.budget(), 4u);
  std::atomic<int> n{0};
  pool.run_chunks(64, [&](usize) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 64);
}

// ------------------------------------------------- in-core kernel units

TEST(ParallelKernels, BudgetedSortMatchesSerialByteForByte)
{
  Rng rng(7);
  auto data = make_keys(u64{50000}, Dist::kUniform, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  for (usize budget : {2u, 3u, 4u}) {
    CpuPool pool(budget);
    auto got = data;
    std::vector<u64> scratch(got.size());
    internal_sort_budgeted(std::span<u64>(got), std::less<u64>{}, pool,
                           std::span<u64>(scratch));
    EXPECT_EQ(got, expected) << "budget " << budget;
  }
}

TEST(ParallelKernels, BudgetedSortSmallInputAndShortScratchFallBack)
{
  Rng rng(8);
  CpuPool pool(4);
  // Below the parallel threshold: serial path.
  auto small = make_keys(u64{1000}, Dist::kUniform, rng);
  auto small_expected = small;
  std::sort(small_expected.begin(), small_expected.end());
  std::vector<u64> scratch(small.size());
  internal_sort_budgeted(std::span<u64>(small), std::less<u64>{}, pool,
                         std::span<u64>(scratch));
  EXPECT_EQ(small, small_expected);
  // Scratch too short for the merge ping-pong: serial path.
  auto big = make_keys(u64{40000}, Dist::kUniform, rng);
  auto big_expected = big;
  std::sort(big_expected.begin(), big_expected.end());
  std::vector<u64> tiny_scratch(17);
  internal_sort_budgeted(std::span<u64>(big), std::less<u64>{}, pool,
                         std::span<u64>(tiny_scratch));
  EXPECT_EQ(big, big_expected);
}

TEST(ParallelKernels, StablePartitionMatchesSerialScatter)
{
  Rng rng(9);
  const usize n = 60000;
  const usize buckets = 16;
  auto keys = make_keys(n, Dist::kUniform, rng);
  auto digit = [](const u64& k) { return static_cast<usize>(k & 15); };

  CpuPool serial(1);
  std::vector<u64> out_serial(n), counts_serial(buckets);
  partition_stable(std::span<const u64>(keys), std::span<u64>(out_serial),
                   buckets, digit, serial, std::span<u64>(counts_serial));
  for (usize budget : {2u, 4u}) {
    CpuPool pool(budget);
    std::vector<u64> out(n), counts(buckets);
    partition_stable(std::span<const u64>(keys), std::span<u64>(out),
                     buckets, digit, pool, std::span<u64>(counts));
    EXPECT_EQ(out, out_serial) << "budget " << budget;
    EXPECT_EQ(counts, counts_serial) << "budget " << budget;
  }
}

// ------------------------------------- sorter-family budget invariance

void expect_same_io(const IoStats& a, const IoStats& b, usize budget) {
  EXPECT_EQ(a.read_ops, b.read_ops) << "budget " << budget;
  EXPECT_EQ(a.write_ops, b.write_ops) << "budget " << budget;
  EXPECT_EQ(a.blocks_read, b.blocks_read) << "budget " << budget;
  EXPECT_EQ(a.blocks_written, b.blocks_written) << "budget " << budget;
  EXPECT_EQ(a.disk_reads, b.disk_reads) << "budget " << budget;
  EXPECT_EQ(a.disk_writes, b.disk_writes) << "budget " << budget;
  EXPECT_EQ(a.schedule_hash, b.schedule_hash) << "budget " << budget;
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s) << "budget " << budget;
}

// Runs `sort_fn` on identical staged input at CPU budgets {1, 2, 4} and
// requires byte-identical records and I/O accounting including the
// schedule hash: the CPU budget must be invisible to everything but wall
// clock. M = 16384 so leaf sorts and partitions clear the parallel
// kernels' 2^14-record threshold.
constexpr u64 kBigMem = 16384;

template <class Fn>
void expect_budget_invariant(u64 n, Fn&& sort_fn) {
  std::vector<u64> out0;
  IoStats stats0;
  for (usize budget : {1u, 2u, 4u}) {
    auto ctx = test::make_ctx<u64>(Geometry::square(kBigMem), 5);
    Rng rng(1234);
    auto data = make_keys(n, Dist::kUniform, rng);
    auto in = test::stage_input<u64>(*ctx, data);
    ctx->set_cpu_budget(budget);
    auto out = sort_fn(*ctx, in);
    ASSERT_EQ(out.size(), data.size());
    if (budget == 1) {
      out0 = std::move(out);
      stats0 = ctx->stats();
      // Some sorters remap keys before staging (integer/radix ranges), so
      // assert order rather than equality with the original data.
      EXPECT_TRUE(std::is_sorted(out0.begin(), out0.end()));
    } else {
      EXPECT_EQ(out, out0) << "budget " << budget
                           << ": records differ from serial run";
      expect_same_io(ctx->stats(), stats0, budget);
    }
  }
}

TEST(CpuBudgetInvariance, InternalSort)
{
  expect_budget_invariant(kBigMem, [](PdmContext& ctx,
                                      const StripedRun<u64>& in) {
    AdaptiveOptions opt;
    opt.mem_records = kBigMem;
    opt.force = Algo::kInternal;
    return pdm_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, ExpectedTwoPass)
{
  expect_budget_invariant(4 * kBigMem, [](PdmContext& ctx,
                                          const StripedRun<u64>& in) {
    ExpectedTwoPassOptions opt;
    opt.mem_records = kBigMem;
    return expected_two_pass_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, ThreePassLmm)
{
  expect_budget_invariant(8 * kBigMem, [](PdmContext& ctx,
                                          const StripedRun<u64>& in) {
    ThreePassLmmOptions opt;
    opt.mem_records = kBigMem;
    return three_pass_lmm_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, ExpectedThreePass)
{
  expect_budget_invariant(16 * kBigMem, [](PdmContext& ctx,
                                           const StripedRun<u64>& in) {
    ExpectedThreePassOptions opt;
    opt.mem_records = kBigMem;
    return expected_three_pass_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, MultiwayMerge)
{
  expect_budget_invariant(8 * kBigMem, [](PdmContext& ctx,
                                          const StripedRun<u64>& in) {
    MultiwaySortOptions opt;
    opt.mem_records = kBigMem;
    opt.lookahead = 2;
    return multiway_merge_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, IntegerSort)
{
  expect_budget_invariant(4 * kBigMem, [](PdmContext& ctx,
                                          const StripedRun<u64>& in) {
    IntegerSortOptions opt;
    opt.mem_records = kBigMem;
    opt.range = 16;
    auto data = in.read_all();
    for (auto& k : data) k %= opt.range;
    auto remapped = write_input_run<u64>(ctx, std::span<const u64>(data));
    ctx.io().reset_stats();
    return integer_sort<u64>(ctx, remapped, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, RadixSort)
{
  expect_budget_invariant(8 * kBigMem, [](PdmContext& ctx,
                                          const StripedRun<u64>& in) {
    RadixSortOptions opt;
    opt.mem_records = kBigMem;
    opt.key_bits = 24;
    auto data = in.read_all();
    for (auto& k : data) k &= (u64{1} << 24) - 1;
    auto remapped = write_input_run<u64>(ctx, std::span<const u64>(data));
    ctx.io().reset_stats();
    return radix_sort<u64>(ctx, remapped, opt).output.read_all();
  });
}

TEST(CpuBudgetInvariance, AsyncPlusCpuMatchesSerial)
{
  // The two budget knobs compose: async depth pipelines the I/O while the
  // CPU budget parallelizes the in-core leaves. At a FIXED depth the CPU
  // budget must be invisible, schedule hash included; across depths the
  // hash legitimately moves (prefetch reorders batches relative to each
  // other — see async_io_test), so only records are compared there.
  std::vector<u64> out_any;
  for (usize depth : {usize{0}, usize{4}}) {
    std::vector<u64> out0;
    IoStats stats0;
    for (usize cpu : {usize{1}, usize{4}}) {
      auto ctx = test::make_ctx<u64>(Geometry::square(kBigMem), 5);
      Rng rng(77);
      auto data = make_keys(4 * kBigMem, Dist::kUniform, rng);
      auto in = test::stage_input<u64>(*ctx, data);
      if (depth >= 2) ctx->set_async_depth(depth);
      ctx->set_cpu_budget(cpu);
      ExpectedTwoPassOptions opt;
      opt.mem_records = kBigMem;
      auto out = expected_two_pass_sort<u64>(*ctx, in, opt).output.read_all();
      ctx->aio().drain();
      if (cpu == 1) {
        out0 = std::move(out);
        stats0 = ctx->stats();
      } else {
        EXPECT_EQ(out, out0) << "depth " << depth << " cpu " << cpu;
        expect_same_io(ctx->stats(), stats0, cpu);
      }
    }
    if (out_any.empty()) {
      out_any = std::move(out0);
    } else {
      EXPECT_EQ(out0, out_any) << "records changed across async depths";
    }
  }
}

// --------------------------------------- async depth re-arbitration

TEST(AsyncRaiseDepth, GrowWithoutQuiesceKeepsBytesAndAccounting)
{
  // Random write batches through the write-behind ring while the depth is
  // raised mid-flight (2 -> 6 -> 8), as the service re-grant does when a
  // neighbour job finishes. Bytes and accounting must match a synchronous
  // run exactly: depth is charged at submission, never at completion.
  auto sync_ctx = make_memory_context(8, 256, 3);
  auto async_ctx = make_memory_context(8, 256, 3);
  async_ctx->set_async_depth(2);
  const usize bb = sync_ctx->block_bytes();
  Rng rng(11);
  std::vector<std::pair<BlockRef, std::vector<std::byte>>> written;
  for (int batch = 0; batch < 30; ++batch) {
    if (batch == 10) async_ctx->raise_async_depth(6);
    if (batch == 20) async_ctx->raise_async_depth(8);
    const usize nreq = 1 + static_cast<usize>(rng.next() % 16);
    std::vector<std::vector<std::byte>> payloads(nreq);
    std::vector<WriteReq> sreqs, areqs;
    for (usize i = 0; i < nreq; ++i) {
      const u32 disk = static_cast<u32>(rng.next() % 8);
      payloads[i].resize(bb);
      for (auto& b : payloads[i]) b = static_cast<std::byte>(rng.next());
      const BlockRef sref = sync_ctx->alloc().alloc(disk);
      const BlockRef aref = async_ctx->alloc().alloc(disk);
      ASSERT_EQ(sref, aref);
      sreqs.push_back(WriteReq{sref, payloads[i].data()});
      areqs.push_back(WriteReq{aref, payloads[i].data()});
      written.emplace_back(sref, payloads[i]);
    }
    sync_ctx->io().write(sreqs);
    async_ctx->write_batch(areqs);
  }
  async_ctx->aio().drain();
  EXPECT_EQ(async_ctx->aio().depth(), 8u);
  // Shrinking back still quiesces via the legacy path.
  async_ctx->set_async_depth(2);
  EXPECT_EQ(async_ctx->aio().depth(), 2u);

  std::vector<std::byte> sbuf(bb), abuf(bb);
  for (const auto& [ref, bytes] : written) {
    const ReadReq sreq{ref, sbuf.data()};
    const ReadReq areq{ref, abuf.data()};
    sync_ctx->io().read(std::span<const ReadReq>(&sreq, 1));
    async_ctx->io().read(std::span<const ReadReq>(&areq, 1));
    ASSERT_EQ(sbuf, bytes);
    ASSERT_EQ(abuf, bytes);
  }
  const IoStats& a = sync_ctx->stats();
  const IoStats& b = async_ctx->stats();
  EXPECT_EQ(a.write_ops, b.write_ops);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.read_ops, b.read_ops);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
}

TEST(AsyncRaiseDepth, RaiseFromDisabledStartsWorkers)
{
  auto ctx = make_memory_context(4, 256, 3);
  EXPECT_FALSE(ctx->aio().enabled());
  ctx->raise_async_depth(4);
  EXPECT_TRUE(ctx->aio().enabled());
  EXPECT_EQ(ctx->aio().depth(), 4u);
  // Lower-or-equal raises are no-ops (never shrinks mid-flight).
  ctx->raise_async_depth(2);
  EXPECT_EQ(ctx->aio().depth(), 4u);
  std::vector<std::byte> payload(ctx->block_bytes(), std::byte{0x5a});
  const BlockRef ref = ctx->alloc().alloc(0);
  const WriteReq wreq{ref, payload.data()};
  ctx->write_batch(std::span<const WriteReq>(&wreq, 1));
  ctx->aio().drain();
  std::vector<std::byte> back(ctx->block_bytes());
  const ReadReq rreq{ref, back.data()};
  ctx->io().read(std::span<const ReadReq>(&rreq, 1));
  EXPECT_EQ(back, payload);
}

// ------------------------------------------- size-indexed free list

TEST(DiskAllocator, SizeIndexedFreeListFindsBigSpanBehindFragments)
{
  DiskAllocator a(1);
  // Fragment the low addresses: 256 singles, every other one freed, so
  // the address-ordered free list starts with 128 one-block spans — more
  // than kMaxFreeScan. The old bounded first-fit would give up and bump
  // the cursor; the size index must still find the big span behind them.
  std::vector<Extent> freed;
  for (int i = 0; i < 256; ++i) {
    Extent e = a.alloc_extent(0, 1);
    if (i % 2 == 0) freed.push_back(e);
  }
  for (const auto& e : freed) a.free_extent(e);
  Extent big = a.alloc_extent(0, 64);
  a.free_extent(big);
  const u64 high_water = a.used(0);
  const u64 free_before = a.free_blocks(0);

  Extent got = a.alloc_extent(0, 64);
  EXPECT_EQ(got.index, big.index) << "big span leaked to the bump cursor";
  EXPECT_EQ(a.used(0), high_water) << "cursor advanced despite a free fit";
  EXPECT_EQ(a.free_blocks(0), free_before - 64);

  // Octave fallback: a 48-block ask has no 48..63 span; it must split a
  // span from a higher octave (here a fresh 128) rather than bump.
  Extent wide = a.alloc_extent(0, 128);
  a.free_extent(wide);
  const u64 hw2 = a.used(0);
  Extent part = a.alloc_extent(0, 48);
  EXPECT_EQ(part.index, wide.index);
  EXPECT_EQ(a.used(0), hw2);
  // The 80-block remainder is reusable too.
  Extent rest = a.alloc_extent(0, 80);
  EXPECT_EQ(rest.index, wide.index + 48);
  EXPECT_EQ(a.used(0), hw2);

  // Single-block churn still reuses the small fragments.
  Extent one = a.alloc_extent(0, 1);
  EXPECT_EQ(a.used(0), hw2);
  a.free_extent(one);
  a.free_extent(part);
  a.free_extent(rest);
  EXPECT_EQ(a.free_blocks(0), free_before + 64);
}

// --------------------------------------------- service CPU arbiter

constexpr u64 kSvcMem = 1024;
constexpr usize kSvcBlockBytes = 256;

std::shared_ptr<MemoryDiskBackend> make_svc_backend(u64 latency_us = 0) {
  auto b = std::make_shared<MemoryDiskBackend>(8, kSvcBlockBytes);
  b->set_simulated_latency_us(latency_us);
  return b;
}

SortJobSpec svc_spec(std::string name) {
  SortJobSpec s;
  s.name = std::move(name);
  s.mem_records = kSvcMem;
  return s;
}

JobId submit_svc(SortService& svc, SortJobSpec spec, std::vector<u64> data,
                 std::atomic<int>& ok, std::atomic<int>& bad,
                 std::function<void()> on_done = {}) {
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  return svc.submit<u64>(
      std::move(spec), std::move(data), std::less<u64>{},
      [expected = std::move(expected), &ok, &bad,
       on_done = std::move(on_done)](const SortResult<u64>& res) {
        if (res.output.read_all() == expected) {
          ++ok;
        } else {
          ++bad;
        }
        if (on_done) on_done();
      });
}

TEST(CpuArbiter, PerJobIoInvariantUnderCpuBudget)
{
  // The same submission sequence on a serial service and a 4-thread
  // service: per-job I/O deltas, pass counts and outputs must match
  // exactly (one worker keeps job interleave deterministic).
  std::vector<IoStats> per_job[2];
  for (int round = 0; round < 2; ++round) {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.cpu_threads_total = round == 0 ? 1 : 4;
    SortService svc(make_svc_backend(), cfg);
    Rng rng(31);
    std::atomic<int> ok{0}, bad{0};
    std::vector<JobId> ids;
    for (int j = 0; j < 3; ++j) {
      ids.push_back(submit_svc(
          svc, svc_spec("inv" + std::to_string(j)),
          make_keys((j + 1) * 4 * kSvcMem, Dist::kUniform, rng), ok, bad));
    }
    svc.drain();
    EXPECT_EQ(ok.load(), 3);
    EXPECT_EQ(bad.load(), 0);
    for (JobId id : ids) {
      const JobInfo ji = svc.info(id);
      EXPECT_EQ(ji.state, JobState::kDone);
      per_job[round].push_back(ji.io);
    }
  }
  ASSERT_EQ(per_job[0].size(), per_job[1].size());
  for (usize j = 0; j < per_job[0].size(); ++j) {
    expect_same_io(per_job[1][j], per_job[0][j], 4);
  }
}

TEST(CpuArbiter, FairShareGrantAndRegrantOnFinish)
{
  // 3 workers, 4 threads: the first two running jobs get 2 threads each,
  // the third runs serial (cpu.waiting). When the short jobs finish their
  // threads are re-granted, so the survivor ends up holding all 4.
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.cpu_threads_total = 4;
  SortService svc(make_svc_backend(), cfg);
  Rng rng(13);
  std::atomic<int> ok{0}, bad{0};
  std::atomic<bool> release{false};

  // The long job parks in its completion callback (grants still held)
  // until the test has observed the re-grant.
  std::mutex m;
  std::condition_variable cv;
  const JobId long_id = submit_svc(
      svc, svc_spec("long"), make_keys(8 * kSvcMem, Dist::kUniform, rng), ok,
      bad, [&] {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return release.load(); });
      });
  JobId short_a = submit_svc(svc, svc_spec("short-a"),
                             make_keys(4 * kSvcMem, Dist::kUniform, rng), ok,
                             bad);
  JobId short_b = submit_svc(svc, svc_spec("short-b"),
                             make_keys(4 * kSvcMem, Dist::kUniform, rng), ok,
                             bad);

  // Wait for both short jobs to reach a terminal state.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  auto terminal = [&](JobId id) {
    return job_state_terminal(svc.info(id).state);
  };
  while ((!terminal(short_a) || !terminal(short_b)) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(terminal(short_a) && terminal(short_b));

  // The parked survivor should be topped up to the whole budget once the
  // short jobs' release + re-grant runs (poll: release happens just after
  // the terminal state is published).
  usize seen = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const ShardLoad l = svc.load();
    EXPECT_LE(l.cpu_in_use, l.cpu_total);
    seen = l.cpu_in_use;
    if (l.running == 1 && seen == 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(seen, 4u) << "survivor was not re-granted the freed threads";
  EXPECT_EQ(svc.load().cpu_total, 4u);

  {
    std::lock_guard<std::mutex> g(m);
    release.store(true);
  }
  cv.notify_all();
  svc.drain();
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(svc.info(long_id).state, JobState::kDone);
  EXPECT_EQ(svc.load().cpu_in_use, 0u);
  EXPECT_EQ(metrics::Registry::global().gauge("cpu.granted").value(), 0);
  EXPECT_EQ(metrics::Registry::global().gauge("cpu.waiting").value(), 0);
}

TEST(CpuArbiter, SerialServiceGrantsNothing)
{
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.cpu_threads_total = 1;  // default: kernels stay serial
  SortService svc(make_svc_backend(), cfg);
  Rng rng(17);
  std::atomic<int> ok{0}, bad{0};
  for (int j = 0; j < 4; ++j) {
    submit_svc(svc, svc_spec("s" + std::to_string(j)),
               make_keys(4 * kSvcMem, Dist::kUniform, rng), ok, bad);
  }
  svc.drain();
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(svc.load().cpu_in_use, 0u);
  EXPECT_EQ(svc.load().cpu_total, 1u);
}

// ------------------------------------------------------- TSan stress

TEST(CpuPoolStress, KernelParallelismWithAsyncIoAndCancellation)
{
  // Kernel threads, async I/O workers, concurrent service workers and
  // racing cancellations all at once; TSan (CI) is the real assertion.
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.cpu_threads_total = 8;
  cfg.io_depth_total = 8;
  SortService svc(make_svc_backend(2), cfg);
  Rng rng(23);
  std::atomic<int> ok{0}, bad{0};
  std::vector<JobId> ids;
  for (int j = 0; j < 24; ++j) {
    const u64 n = (1 + static_cast<u64>(rng.next() % 8)) * kSvcMem;
    ids.push_back(submit_svc(svc, svc_spec("stress" + std::to_string(j)),
                             make_keys(n, Dist::kUniform, rng), ok, bad));
  }
  // Race cancellations against execution from a separate thread.
  std::thread canceller([&] {
    for (usize j = 0; j < ids.size(); j += 3) {
      svc.cancel(ids[j]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  canceller.join();
  svc.drain();
  EXPECT_EQ(bad.load(), 0);
  int done = 0, cancelled = 0, other = 0;
  for (JobId id : ids) {
    switch (svc.info(id).state) {
      case JobState::kDone: ++done; break;
      case JobState::kCancelled: ++cancelled; break;
      default: ++other; break;
    }
  }
  EXPECT_EQ(done + cancelled, 24);
  EXPECT_EQ(other, 0);
  // kDone => exactly one verified callback; kCancelled => at most one (a
  // cancel can latch after the callback already ran — the service promises
  // kCancelled to the canceller, not callback suppression, in that race).
  EXPECT_GE(ok.load(), done);
  EXPECT_LE(ok.load(), done + cancelled);
  EXPECT_EQ(svc.load().cpu_in_use, 0u);
}

}  // namespace
}  // namespace pdm
