// Stress tests for the asynchronous I/O pipeline (async_io.h,
// prefetch_buffer.h): the async scheduler must produce byte-identical disk
// contents and identical IoStats parallel-op accounting to the synchronous
// scheduler, across randomized batch shapes, both backends, and every core
// algorithm that threads the pipeline through its hot path.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/multiway_merge.h"
#include "core/expected_three_pass.h"
#include "core/expected_two_pass.h"
#include "core/integer_sort.h"
#include "core/radix_sort.h"
#include "pdm/file_backend.h"
#include "pdm/memory_backend.h"
#include "pdm/prefetch_buffer.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

// Ops/blocks/per-disk accounting must match exactly on success paths (all
// runs below). Two intentional exclusions: the schedule hash (prefetch
// reorders batches relative to each other — never within a batch, never
// per disk — so the submission *interleave* differs even though every
// batch is charged identically), and verified-cleanup *fallback* paths,
// where the prefetcher may have charged up to one speculative chunk of
// reads a synchronous run would not have issued (see stream.h).
void expect_same_accounting(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.read_ops, b.read_ops);
  EXPECT_EQ(a.write_ops, b.write_ops);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
}

// Issues the same randomized write/read workload against a synchronous and
// an async-depth-`depth` context and checks bytes + accounting match.
void randomized_batches_roundtrip(PdmContext& sync_ctx, PdmContext& async_ctx,
                                  usize depth, u64 seed) {
  async_ctx.set_async_depth(depth);
  const usize bb = sync_ctx.block_bytes();
  const u32 d = sync_ctx.D();
  Rng rng(seed);

  // Random write batches: varying size, skewed disk choice, fresh blocks.
  std::vector<std::pair<BlockRef, std::vector<std::byte>>> blocks;
  for (int batch = 0; batch < 20; ++batch) {
    const usize nreq = 1 + static_cast<usize>(rng.next() % (3 * d));
    std::vector<std::vector<std::byte>> payloads(nreq);
    std::vector<WriteReq> sync_reqs;
    std::vector<WriteReq> async_reqs;
    for (usize i = 0; i < nreq; ++i) {
      // Skew: half the requests pile onto disk 0 so batches are uneven.
      const u32 disk = (rng.next() % 2 == 0)
                           ? 0
                           : static_cast<u32>(rng.next() % d);
      payloads[i].resize(bb);
      for (auto& byte : payloads[i]) {
        byte = static_cast<std::byte>(rng.next());
      }
      const BlockRef sref = sync_ctx.alloc().alloc(disk);
      const BlockRef aref = async_ctx.alloc().alloc(disk);
      ASSERT_EQ(sref, aref);  // same allocation sequence on both contexts
      sync_reqs.push_back(WriteReq{sref, payloads[i].data()});
      async_reqs.push_back(WriteReq{aref, payloads[i].data()});
      blocks.emplace_back(sref, payloads[i]);
    }
    sync_ctx.io().write(sync_reqs);
    // Route through the write-behind ring, like the algorithms do.
    async_ctx.write_batch(async_reqs);
  }

  // Random read batches over everything written, in shuffled order.
  std::vector<usize> order(blocks.size());
  for (usize i = 0; i < order.size(); ++i) order[i] = i;
  for (usize i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next() % i]);
  }
  std::vector<std::byte> got_sync(bb), got_async(bb);
  for (usize idx : order) {
    ReadReq rs{blocks[idx].first, got_sync.data()};
    ReadReq ra{blocks[idx].first, got_async.data()};
    sync_ctx.io().read(std::span<const ReadReq>(&rs, 1));
    async_ctx.aio().read(std::span<const ReadReq>(&ra, 1));
    EXPECT_EQ(got_sync, blocks[idx].second);
    EXPECT_EQ(got_async, blocks[idx].second);
  }
  async_ctx.aio().drain();
  expect_same_accounting(sync_ctx.stats(), async_ctx.stats());
}

TEST(AsyncIo, RandomizedBatchesMemoryBackend) {
  for (usize depth : {2u, 4u, 8u}) {
    for (u64 seed : {1u, 7u, 42u}) {
      auto sync_ctx = make_memory_context(8, 256, seed);
      auto async_ctx = make_memory_context(8, 256, seed);
      randomized_batches_roundtrip(*sync_ctx, *async_ctx, depth, seed);
    }
  }
}

TEST(AsyncIo, RandomizedBatchesFileBackend) {
  const std::string dir = "/tmp/pdmsort_async_test";
  for (usize depth : {2u, 4u}) {
    auto sync_ctx = make_file_context(4, 256, dir + "/sync");
    auto async_ctx = make_file_context(4, 256, dir + "/async");
    randomized_batches_roundtrip(*sync_ctx, *async_ctx, depth, 99);
  }
  std::filesystem::remove_all(dir);
}

TEST(AsyncIo, ReadAfterWriteBehindSameBlock) {
  // A read submitted after a write-behind of the same block must observe
  // the written data (per-disk FIFO ordering).
  auto ctx = make_memory_context(4, 128);
  ctx->set_async_depth(4);
  std::vector<std::byte> buf(128);
  for (int round = 0; round < 50; ++round) {
    for (auto& b : buf) b = static_cast<std::byte>(round);
    const BlockRef ref = ctx->alloc().alloc(static_cast<u32>(round % 4));
    WriteReq w{ref, buf.data()};
    ctx->write_batch(std::span<const WriteReq>(&w, 1));
    // Overwrite the staging buffer immediately: write_batch must have
    // copied the payload.
    for (auto& b : buf) b = std::byte{0xFF};
    std::vector<std::byte> got(128);
    ReadReq r{ref, got.data()};
    ctx->aio().read(std::span<const ReadReq>(&r, 1));
    EXPECT_EQ(got, std::vector<std::byte>(128, static_cast<std::byte>(round)));
  }
}

TEST(AsyncIo, WorkerErrorPropagatesAndSticks) {
  auto ctx = make_memory_context(2, 128);
  ctx->set_async_depth(2);
  std::vector<std::byte> buf(128);
  ReadReq r{{0, 999}, buf.data()};  // never written: backend throws
  EXPECT_THROW(
      {
        IoTicket t = ctx->aio().read_async(std::span<const ReadReq>(&r, 1));
        ctx->aio().wait(t);
      },
      Error);
  // The error is sticky: even if the first throw was swallowed during
  // unwinding (drain guards, ring destructors), later pipeline
  // interactions must still report it — no silent data loss.
  EXPECT_THROW(ctx->aio().drain(), Error);
  EXPECT_THROW(ctx->aio().wait(0), Error);
}

TEST(AsyncIo, DepthOneStaysSynchronous) {
  auto ctx = make_memory_context(2, 128);
  ctx->set_async_depth(1);
  EXPECT_FALSE(ctx->aio().enabled());
  std::vector<std::byte> buf(128, std::byte{0x5A});
  const BlockRef ref = ctx->alloc().alloc(0);
  WriteReq w{ref, buf.data()};
  EXPECT_EQ(ctx->aio().write_async(std::span<const WriteReq>(&w, 1)),
            IoTicket{0});
  std::vector<std::byte> got(128);
  ReadReq r{ref, got.data()};
  ctx->io().read(std::span<const ReadReq>(&r, 1));
  EXPECT_EQ(got, buf);
}

// ---- Algorithm-level equivalence: identical outputs and accounting ----

template <class RunFn>
void expect_async_matches_sync(u64 n, const RunFn& run, u64 seed = 3) {
  const auto g = Geometry::square(1024);
  Rng rng(seed);
  auto data = make_keys(static_cast<usize>(n), Dist::kUniform, rng);

  auto sync_ctx = test::make_ctx<u64>(g);
  auto in_sync = test::stage_input<u64>(*sync_ctx, data);
  auto out_sync = run(*sync_ctx, in_sync, usize{0});
  const IoStats sync_stats = sync_ctx->stats();

  for (usize depth : {2u, 4u}) {
    auto async_ctx = test::make_ctx<u64>(g);
    auto in_async = test::stage_input<u64>(*async_ctx, data);
    auto out_async = run(*async_ctx, in_async, depth);
    async_ctx->aio().drain();
    expect_same_accounting(sync_stats, async_ctx->stats());
    ASSERT_EQ(out_async.size(), out_sync.size());
    EXPECT_EQ(out_async, out_sync) << "depth " << depth;
  }
}

TEST(AsyncAlgorithms, ExpectedTwoPass) {
  expect_async_matches_sync(4 * 1024, [](PdmContext& ctx,
                                         const StripedRun<u64>& in,
                                         usize depth) {
    ExpectedTwoPassOptions opt;
    opt.mem_records = 1024;
    opt.async_depth = depth;
    return expected_two_pass_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(AsyncAlgorithms, ExpectedThreePass) {
  expect_async_matches_sync(16 * 1024, [](PdmContext& ctx,
                                          const StripedRun<u64>& in,
                                          usize depth) {
    ExpectedThreePassOptions opt;
    opt.mem_records = 1024;
    opt.async_depth = depth;
    return expected_three_pass_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(AsyncAlgorithms, MultiwayMerge) {
  expect_async_matches_sync(8 * 1024, [](PdmContext& ctx,
                                         const StripedRun<u64>& in,
                                         usize depth) {
    MultiwaySortOptions opt;
    opt.mem_records = 1024;
    opt.lookahead = 2;
    opt.async_depth = depth;
    return multiway_merge_sort<u64>(ctx, in, opt).output.read_all();
  });
}

TEST(AsyncAlgorithms, IntegerSort) {
  expect_async_matches_sync(8 * 1024, [](PdmContext& ctx,
                                         const StripedRun<u64>& in,
                                         usize depth) {
    // IntegerSort needs keys in [0, range): remap the staged input.
    IntegerSortOptions opt;
    opt.mem_records = 1024;
    opt.range = 16;
    opt.async_depth = depth;
    auto data = in.read_all();
    for (auto& k : data) k %= opt.range;
    auto remapped = write_input_run<u64>(ctx, std::span<const u64>(data));
    ctx.io().reset_stats();
    return integer_sort<u64>(ctx, remapped, opt).output.read_all();
  });
}

TEST(AsyncAlgorithms, RadixSort) {
  expect_async_matches_sync(16 * 1024, [](PdmContext& ctx,
                                          const StripedRun<u64>& in,
                                          usize depth) {
    RadixSortOptions opt;
    opt.mem_records = 1024;
    opt.key_bits = 20;
    opt.async_depth = depth;
    auto data = in.read_all();
    for (auto& k : data) k &= (u64{1} << 20) - 1;
    auto remapped = write_input_run<u64>(ctx, std::span<const u64>(data));
    ctx.io().reset_stats();
    return radix_sort<u64>(ctx, remapped, opt).output.read_all();
  });
}

TEST(AsyncAlgorithms, FileBackendExpectedTwoPass) {
  const std::string dir = "/tmp/pdmsort_async_algo_test";
  const auto g = Geometry::square(1024);
  Rng rng(5);
  auto data = make_keys(4 * 1024, Dist::kPermutation, rng);

  std::vector<u64> outs[2];
  IoStats stats[2];
  for (int pass = 0; pass < 2; ++pass) {
    auto ctx = make_file_context(g.disks, g.rpb * sizeof(u64),
                                 dir + "/" + std::to_string(pass));
    auto in = test::stage_input<u64>(*ctx, data);
    ExpectedTwoPassOptions opt;
    opt.mem_records = 1024;
    opt.async_depth = pass == 0 ? 0 : 4;
    outs[pass] = expected_two_pass_sort<u64>(*ctx, in, opt).output.read_all();
    ctx->aio().drain();
    stats[pass] = ctx->stats();
  }
  EXPECT_EQ(outs[0], outs[1]);
  expect_same_accounting(stats[0], stats[1]);
  std::filesystem::remove_all(dir);
}

// ---- Ring-buffer units ----

TEST(PrefetchBuffer, WriteBehindRingCopiesPayload) {
  auto ctx = make_memory_context(2, 64);
  ctx->set_async_depth(2);
  WriteBehindRing ring(ctx->aio(), &ctx->budget(), 2);
  std::vector<std::byte> buf(64, std::byte{0x11});
  std::vector<BlockRef> refs;
  for (int i = 0; i < 6; ++i) {
    std::fill(buf.begin(), buf.end(), static_cast<std::byte>(i));
    const BlockRef ref = ctx->alloc().alloc(static_cast<u32>(i % 2));
    refs.push_back(ref);
    WriteReq w{ref, buf.data()};
    ring.submit_copy(std::span<const WriteReq>(&w, 1));
  }
  ring.drain();
  for (int i = 0; i < 6; ++i) {
    std::vector<std::byte> got(64);
    ReadReq r{refs[static_cast<usize>(i)], got.data()};
    ctx->aio().read(std::span<const ReadReq>(&r, 1));
    EXPECT_EQ(got, std::vector<std::byte>(64, static_cast<std::byte>(i)));
  }
}

TEST(PrefetchBuffer, ReadAheadRingDeliversInOrder) {
  auto ctx = make_memory_context(4, 8 * sizeof(u64));
  const usize rpb = ctx->rpb<u64>();
  std::vector<u64> data(8 * rpb);
  for (usize i = 0; i < data.size(); ++i) data[i] = i;
  auto run = write_input_run<u64>(*ctx, std::span<const u64>(data));
  ctx->set_async_depth(3);

  ReadAheadRing<u64> ring(ctx->aio(), ctx->budget(), rpb, 2);
  u64 next_block = 0;
  auto push_one = [&] {
    if (next_block >= run.num_blocks() || ring.full()) return;
    ReadReq req = run.read_req(next_block, ring.stage());
    ring.push(std::span<const ReadReq>(&req, 1),
              {run.records_in_block(next_block)});
    ++next_block;
  };
  push_one();
  push_one();
  usize seen = 0;
  while (!ring.empty()) {
    auto view = ring.front();
    for (usize i = 0; i < (*view.valid)[0]; ++i) {
      EXPECT_EQ(view.data[i], seen++);
    }
    ring.pop();
    push_one();
  }
  EXPECT_EQ(seen, data.size());
}

}  // namespace
}  // namespace pdm
