// Tests for the theory module: sorting networks, the classical and
// generalized 0-1 principles (Theorem 3.3), and the shuffling lemma
// (Lemma 4.2).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "theory/network.h"
#include "theory/shuffling_lemma.h"
#include "theory/zero_one.h"

namespace pdm::theory {
namespace {

class SortingNetworks : public ::testing::TestWithParam<u32> {};

TEST_P(SortingNetworks, BatcherSortsAllBinary) {
  const u32 n = GetParam();
  auto net = batcher_sort(n);
  auto rep = test_all_binary(net);
  EXPECT_TRUE(rep.sorts_all) << "n=" << n << " failures=" << rep.failures;
  EXPECT_EQ(rep.tested, u64{1} << n);
}

TEST_P(SortingNetworks, BitonicSortsAllBinary) {
  const u32 n = GetParam();
  auto net = bitonic_sort(n);
  auto rep = test_all_binary(net);
  EXPECT_TRUE(rep.sorts_all) << "n=" << n;
}

TEST_P(SortingNetworks, OddEvenTranspositionFullRoundsSorts) {
  const u32 n = GetParam();
  auto net = odd_even_transposition(n, n);
  auto rep = test_all_binary(net);
  EXPECT_TRUE(rep.sorts_all) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortingNetworks,
                         ::testing::Values(2, 4, 8, 16));

TEST(SortingNetworks, BatcherSortsPermutations) {
  Rng rng(1);
  auto net = batcher_sort(16);
  EXPECT_EQ(permutation_success_rate(net, 200, rng), 1.0);
}

TEST(SortingNetworks, TruncatedBatcherFailsSomeBinary) {
  auto net = batcher_sort(16);
  auto cut = net.truncated(net.num_ops() * 2 / 3);
  auto rep = test_all_binary(cut);
  EXPECT_FALSE(rep.sorts_all);
  EXPECT_GT(rep.failures, 0u);
}

TEST(SortingNetworks, ShearsortFullIterationsSortsSnake) {
  // Shearsort needs ceil(log2(rows)) + 1 iterations; 4x4 keeps the
  // exhaustive binary sweep at 2^16 inputs.
  const u32 rows = 4, cols = 4;
  auto net = shearsort(rows, cols, 3);
  auto order = snake_order(rows, cols);
  auto rep = test_all_binary(net, std::span<const u32>(order));
  EXPECT_TRUE(rep.sorts_all) << rep.failures;
}

TEST(SortingNetworks, ShearsortOneIterationDoesNot) {
  const u32 rows = 4, cols = 4;
  auto net = shearsort(rows, cols, 1);
  auto order = snake_order(rows, cols);
  auto rep = test_all_binary(net, std::span<const u32>(order));
  EXPECT_FALSE(rep.sorts_all);
  // ...but it already sorts the majority of binary inputs — the
  // "sorts most inputs" regime of Theorem 3.3 (~73% at one iteration).
  const double frac_ok =
      1.0 - static_cast<double>(rep.failures) / static_cast<double>(rep.tested);
  EXPECT_GT(frac_ok, 0.5);
}

TEST(SortingNetworks, SnakeOrderShape) {
  auto o = snake_order(2, 3);
  EXPECT_EQ(o, (std::vector<u32>{0, 1, 2, 5, 4, 3}));
}

TEST(SortingNetworks, ColumnsortNetworkSortsWithinConstraint) {
  // Leighton: correct iff r >= 2(c-1)^2. Exhaustive 0-1 for small c = 2
  // shapes; the c = 3 boundary shape (r = 8: 8 >= 2*4) by per-k sampling
  // plus permutations (2^24 exhaustive is too slow for a unit test).
  for (auto [r, c] : {std::pair<u32, u32>{2, 2}, {8, 2}}) {
    ASSERT_GE(r, 2u * (c - 1) * (c - 1));
    auto net = columnsort_network(r, c);
    auto rep = test_all_binary(net);
    EXPECT_TRUE(rep.sorts_all) << "r=" << r << " c=" << c;
  }
  Rng rng(19);
  auto net = columnsort_network(8, 3);
  auto per_k = estimate_alpha_per_k(net, 500, rng, {}, 1u << 14);
  EXPECT_EQ(per_k.min_alpha, 1.0);
  EXPECT_EQ(permutation_success_rate(net, 500, rng), 1.0);
}

TEST(SortingNetworks, ColumnsortConstraintIsNearlyTight) {
  // Push r below 2(c-1)^2: the network must fail — this boundary is what
  // caps columnsort's capacity at M*sqrt(M/2) (Observation 4.1) and
  // motivates the paper's LMM-based alternative.
  auto net = columnsort_network(4, 4);  // needs r >= 18, has 4
  auto rep = test_all_binary(net);
  EXPECT_FALSE(rep.sorts_all);
  EXPECT_GT(rep.failures, 0u);
}

// ------------------------------------------------- generalized 0-1 bound

TEST(GeneralizedZeroOne, BoundIsTightDirectionally) {
  // For a full sorting network alpha = 1 and the bound is 1.
  EXPECT_EQ(generalized_zero_one_bound(1.0, 16), 1.0);
  // Bound degrades linearly in (1 - alpha) with slope n+1.
  EXPECT_NEAR(generalized_zero_one_bound(1.0 - 0.001, 9), 0.99, 1e-9);
  EXPECT_EQ(generalized_zero_one_bound(0.5, 16), 0.0);  // clamped
}

TEST(GeneralizedZeroOne, PermutationRateRespectsBound) {
  // Theorem 3.3: permutation success >= 1 - (1-min_alpha)(n+1). Check on
  // truncated odd-even transposition networks of several depths.
  Rng rng(7);
  const u32 n = 12;
  for (u32 rounds : {8u, 10u, 11u, 12u}) {
    auto net = odd_even_transposition(n, rounds);
    auto per_k = estimate_alpha_per_k(net, 0, rng);  // exhaustive: n small
    ASSERT_TRUE(per_k.exhaustive);
    const double bound = generalized_zero_one_bound(per_k.min_alpha, n);
    const double rate = permutation_success_rate(net, 4000, rng);
    EXPECT_GE(rate + 0.02, bound)
        << "rounds=" << rounds << " alpha=" << per_k.min_alpha;
  }
}

TEST(GeneralizedZeroOne, FullNetworkHasAlphaOne) {
  Rng rng(3);
  auto net = batcher_sort(16);
  auto per_k = estimate_alpha_per_k(net, 0, rng);
  EXPECT_EQ(per_k.min_alpha, 1.0);
}

TEST(GeneralizedZeroOne, CorollaryZeroAlphaKillsEverything) {
  // Appendix corollary: a circuit failing ALL of some S_k sorts no
  // permutation. Build a "network" that reverses instead of sorting:
  // it fails every nontrivial k.
  const u32 n = 8;
  BlockSortNetwork net(n);
  std::vector<u32> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  net.add_sort(idx, /*descending=*/true);
  Rng rng(5);
  auto per_k = estimate_alpha_per_k(net, 0, rng);
  EXPECT_EQ(per_k.min_alpha, 0.0);
  EXPECT_EQ(permutation_success_rate(net, 500, rng), 0.0);
}

TEST(GeneralizedZeroOne, SampledKStringsHaveExactlyKZeros) {
  Rng rng(9);
  for (u32 k : {0u, 1u, 7u, 15u, 16u}) {
    auto s = sample_k_string(16, k, rng);
    EXPECT_EQ(static_cast<u32>(std::count(s.begin(), s.end(), 0)), k);
  }
}

// ---------------------------------------------------------- shuffling

TEST(ShufflingLemma, BoundHoldsOverManyTrials) {
  Rng rng(11);
  for (u64 q : {64ull, 256ull}) {
    auto agg = shuffling_trials(4096, q, 1.0, 50, rng);
    EXPECT_EQ(agg.violations, 0u)
        << "q=" << q << " worst=" << agg.worst.max_displacement
        << " bound=" << agg.worst.bound;
  }
}

TEST(ShufflingLemma, DisplacementShrinksWithLargerQ) {
  Rng rng(13);
  auto small_q = shuffling_trials(8192, 64, 1.0, 20, rng);
  auto large_q = shuffling_trials(8192, 1024, 1.0, 20, rng);
  EXPECT_LT(large_q.worst.max_displacement, small_q.worst.max_displacement);
}

TEST(ShufflingLemma, BoundFormula) {
  // bound = n/sqrt(q) * sqrt((alpha+2) ln n + 1) + n/q.
  const double b = shuffling_bound(1 << 16, 1 << 8, 1.0);
  const double expect = 65536.0 / 16.0 *
                            std::sqrt(3.0 * std::log(65536.0) + 1.0) +
                        65536.0 / 256.0;
  EXPECT_NEAR(b, expect, 1e-9);
}

TEST(ShufflingLemma, MeanWellBelowMax) {
  Rng rng(17);
  auto r = shuffling_experiment(16384, 256, 1.0, rng);
  EXPECT_LT(r.mean_displacement, static_cast<double>(r.max_displacement));
  EXPECT_GT(r.max_displacement, 0u);
}

TEST(ShufflingLemma, RejectsBadQ) {
  Rng rng(19);
  EXPECT_THROW(shuffling_experiment(100, 33, 1.0, rng), Error);
}

}  // namespace
}  // namespace pdm::theory
