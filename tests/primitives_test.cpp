#include <gtest/gtest.h>

#include <numeric>

#include "primitives/cleanup.h"
#include "primitives/lmm_merge.h"
#include "primitives/multiway.h"
#include "primitives/run_formation.h"
#include "test_support.h"

namespace pdm {
namespace {

using test::Geometry;

// --------------------------------------------------------- run formation

TEST(RunFormation, RunsAreSortedAndCoverInput) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(1);
  auto data = make_keys(1024, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  auto runs = form_runs_flat<u64>(*ctx, in, opt);
  ASSERT_EQ(runs.size(), 4u);
  std::vector<u64> all;
  for (auto& r : runs) {
    auto v = r.read_all();
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    EXPECT_EQ(v.size(), 256u);
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  std::sort(data.begin(), data.end());
  EXPECT_EQ(all, data);
}

TEST(RunFormation, ExactlyOnePass) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(2);
  auto data = make_keys(4096, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  (void)form_runs_flat<u64>(*ctx, in, opt);
  const auto& s = ctx->stats();
  const double per_pass = 4096.0 / (g.rpb * g.disks);
  EXPECT_EQ(s.read_ops, static_cast<u64>(per_pass));
  EXPECT_EQ(s.write_ops, static_cast<u64>(per_pass));
  EXPECT_NEAR(s.utilization(), g.disks, 0.01);
}

TEST(RunFormation, UnshuffledPartsAreSortedDecimations) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(3);
  auto data = make_keys(512, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  opt.unshuffle_parts = 16;  // M/B
  auto parts = form_sorted_runs<u64>(*ctx, in, opt);
  ASSERT_EQ(parts.size(), 2u);
  for (usize i = 0; i < 2; ++i) {
    ASSERT_EQ(parts[i].size(), 16u);
    // Reconstruct the sorted run from its decimations.
    std::vector<u64> sorted_run(256);
    for (usize j = 0; j < 16; ++j) {
      auto pj = parts[i][j].read_all();
      ASSERT_EQ(pj.size(), 16u);
      EXPECT_TRUE(std::is_sorted(pj.begin(), pj.end()));
      for (usize t = 0; t < 16; ++t) sorted_run[t * 16 + j] = pj[t];
    }
    EXPECT_TRUE(std::is_sorted(sorted_run.begin(), sorted_run.end()));
    std::vector<u64> expect(data.begin() + static_cast<std::ptrdiff_t>(i * 256),
                            data.begin() +
                                static_cast<std::ptrdiff_t>((i + 1) * 256));
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sorted_run, expect);
  }
}

TEST(RunFormation, RangeRestriction) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(4);
  auto data = make_keys(1024, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  opt.first_record = 256;
  opt.num_records = 512;
  auto runs = form_runs_flat<u64>(*ctx, in, opt);
  ASSERT_EQ(runs.size(), 2u);
  std::vector<u64> all;
  for (auto& r : runs) {
    auto v = r.read_all();
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<u64> expect(data.begin() + 256, data.begin() + 768);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(all, expect);
}

// Regression for flat_run_start_stride(): D/2+1 is even for D = 6 or 10
// (start-disk collisions) and gcd(9, 15) = 3 spoils D = 15 even after
// forcing odd. The stride must make i -> (i * stride) mod D a bijection
// for every D, and must keep the historical value for power-of-two D
// (byte-identical layouts on the standard geometry).
TEST(RunFormation, StartStrideIsBijectionForAllDiskCounts) {
  for (u32 d = 2; d <= 16; ++d) {
    const u32 stride = flat_run_start_stride(d);
    std::vector<bool> hit(d, false);
    for (u32 i = 0; i < d; ++i) {
      const u32 disk = (i * stride) % d;
      EXPECT_FALSE(hit[disk]) << "D=" << d << " stride=" << stride
                              << ": start disk " << disk << " repeats";
      hit[disk] = true;
    }
  }
  EXPECT_EQ(flat_run_start_stride(8), 5u);    // unchanged power-of-two values
  EXPECT_EQ(flat_run_start_stride(16), 9u);
  EXPECT_EQ(flat_run_start_stride(6), 5u);    // was 4 (even) before the fix
  EXPECT_EQ(flat_run_start_stride(15), 11u);  // odd 9 shares a factor with 15
}

// Regression: a ragged final run with unshuffle_parts > 1 used to abort
// via PDM_CHECK. The tail now falls back to append()/finish() per part;
// parts stay sorted decimations of the sorted tail with the true lengths.
TEST(RunFormation, RaggedFinalRunWithUnshuffledParts) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(17);
  // Ragged tail of 96 records: 6 per part — below one block (B = 16), so
  // every part run exercises the padded partial-block append path.
  const usize n = 256 + 96;
  auto data = make_keys(n, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  opt.unshuffle_parts = 16;
  auto parts = form_sorted_runs<u64>(*ctx, in, opt);
  ASSERT_EQ(parts.size(), 2u);
  ASSERT_EQ(parts[1].size(), 16u);
  std::vector<u64> tail_sorted(data.begin() + 256, data.end());
  std::sort(tail_sorted.begin(), tail_sorted.end());
  std::vector<u64> rebuilt(tail_sorted.size());
  for (usize j = 0; j < 16; ++j) {
    auto pj = parts[1][j].read_all();
    const usize expect_len = (96 - j + 15) / 16;  // ceil((nrec - j) / m)
    ASSERT_EQ(pj.size(), expect_len) << "part " << j;
    EXPECT_TRUE(std::is_sorted(pj.begin(), pj.end()));
    for (usize t = 0; t < pj.size(); ++t) rebuilt[t * 16 + j] = pj[t];
  }
  EXPECT_EQ(rebuilt, tail_sorted);
}

TEST(RunFormation, RaggedFinalRun) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(5);
  auto data = make_keys(256 + 64, Dist::kUniform, rng);  // 1.25 runs
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  auto runs = form_runs_flat<u64>(*ctx, in, opt);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].size(), 64u);
  const auto tail = runs[1].read_all();
  EXPECT_TRUE(std::is_sorted(tail.begin(), tail.end()));
}

// --------------------------------------------------------------- cleanup

// A synthetic chunk source serving a fixed vector in fixed-size chunks.
class VectorChunkSource final : public ChunkSource<u64> {
 public:
  VectorChunkSource(std::vector<u64> data, usize chunk)
      : data_(std::move(data)), chunk_(chunk) {}

  usize next_chunk(u64* dst, usize cap) override {
    PDM_CHECK(cap >= chunk_, "cap");
    const usize n = std::min(chunk_, data_.size() - pos_);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n), dst);
    pos_ += n;
    return n;
  }
  usize chunk_records() const override { return chunk_; }
  bool exhausted() const override { return pos_ >= data_.size(); }
  u64 total_records() const override { return data_.size(); }

 private:
  std::vector<u64> data_;
  usize chunk_;
  usize pos_ = 0;
};

class VectorSink final : public Sink<u64> {
 public:
  void push(std::span<const u64> recs) override {
    out.insert(out.end(), recs.begin(), recs.end());
  }
  void close() override { closed = true; }
  std::vector<u64> out;
  bool closed = false;
};

// Any sequence where every element is within `chunk` of its sorted
// position must be fully sorted by the streamed cleanup.
TEST(Cleanup, SortsBoundedDisplacementInputs) {
  Rng rng(6);
  auto ctx = make_memory_context(4, 16 * sizeof(u64));
  for (int trial = 0; trial < 20; ++trial) {
    const usize n = 1024;
    const usize chunk = 64;
    // Build a displaced sequence: sorted + local shuffles within blocks of
    // `chunk` records (displacement < chunk).
    std::vector<u64> v(n);
    std::iota(v.begin(), v.end(), u64{0});
    for (usize b = 0; b < n; b += chunk) {
      std::span<u64> blockspan(v.data() + b, chunk);
      for (usize i = chunk; i > 1; --i) {
        std::swap(blockspan[i - 1],
                  blockspan[static_cast<usize>(rng.below(i))]);
      }
    }
    VectorChunkSource src(v, chunk);
    VectorSink sink;
    CleanupOptions opt;
    opt.chunk_records = chunk;
    auto oc = streamed_cleanup<u64>(*ctx, src, sink, opt);
    EXPECT_TRUE(oc.ok);
    EXPECT_TRUE(sink.closed);
    EXPECT_TRUE(std::is_sorted(sink.out.begin(), sink.out.end()));
    EXPECT_EQ(sink.out.size(), n);
  }
}

TEST(Cleanup, CrossChunkDisplacementWithinBoundSorts) {
  // An element displaced by exactly chunk-1 across a boundary.
  const usize chunk = 32;
  std::vector<u64> v(256);
  std::iota(v.begin(), v.end(), u64{0});
  std::swap(v[40], v[40 + chunk - 1]);
  auto ctx = make_memory_context(2, 16 * sizeof(u64));
  VectorChunkSource src(v, chunk);
  VectorSink sink;
  CleanupOptions opt;
  opt.chunk_records = chunk;
  auto oc = streamed_cleanup<u64>(*ctx, src, sink, opt);
  EXPECT_TRUE(oc.ok);
  EXPECT_TRUE(std::is_sorted(sink.out.begin(), sink.out.end()));
}

TEST(Cleanup, DetectsViolationAndAborts) {
  // Move the global minimum to the end: displacement ~n >> chunk.
  const usize chunk = 32;
  std::vector<u64> v(256);
  std::iota(v.begin(), v.end(), u64{1});
  v.back() = 0;
  auto ctx = make_memory_context(2, 16 * sizeof(u64));
  VectorChunkSource src(v, chunk);
  VectorSink sink;
  CleanupOptions opt;
  opt.chunk_records = chunk;
  opt.abort_on_violation = true;
  auto oc = streamed_cleanup<u64>(*ctx, src, sink, opt);
  EXPECT_FALSE(oc.ok);
  EXPECT_LT(sink.out.size(), v.size());  // aborted early
}

TEST(Cleanup, ViolationWithoutAbortStillReportsNotOk) {
  const usize chunk = 32;
  std::vector<u64> v(256);
  std::iota(v.begin(), v.end(), u64{1});
  v.back() = 0;
  auto ctx = make_memory_context(2, 16 * sizeof(u64));
  VectorChunkSource src(v, chunk);
  VectorSink sink;
  CleanupOptions opt;
  opt.chunk_records = chunk;
  opt.abort_on_violation = false;
  auto oc = streamed_cleanup<u64>(*ctx, src, sink, opt);
  EXPECT_FALSE(oc.ok);
  EXPECT_EQ(sink.out.size(), v.size());  // completed anyway
}

TEST(Cleanup, SingleChunkInputJustSorts) {
  std::vector<u64> v{5, 3, 1, 4, 2};
  auto ctx = make_memory_context(2, 16 * sizeof(u64));
  VectorChunkSource src(v, 8);
  VectorSink sink;
  CleanupOptions opt;
  opt.chunk_records = 8;
  auto oc = streamed_cleanup<u64>(*ctx, src, sink, opt);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(sink.out, (std::vector<u64>{1, 2, 3, 4, 5}));
}

// ---------------------------------------------------- shuffle chunk source

TEST(ShuffleChunkSource, DeliversAllRecordsOnce) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(7);
  auto data = make_keys(1024, Dist::kUniform, rng);
  auto in = test::stage_input<u64>(*ctx, data);
  RunFormationOptions opt;
  opt.run_len = 256;
  auto runs = form_runs_flat<u64>(*ctx, in, opt);
  ShuffleChunkSource<u64> src(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), 256);
  std::vector<u64> got;
  std::vector<u64> buf(256);
  while (!src.exhausted()) {
    const usize n = src.next_chunk(buf.data(), buf.size());
    got.insert(got.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(got.size(), data.size());
  std::sort(got.begin(), got.end());
  std::sort(data.begin(), data.end());
  EXPECT_EQ(got, data);
}

TEST(ShuffleChunkSource, HandlesRaggedTails) {
  auto ctx = make_memory_context(2, 8 * sizeof(u64));
  std::vector<u64> a(20, 1), b(20, 2);  // 2.5 blocks each
  auto ra = write_input_run<u64>(*ctx, std::span<const u64>(a), 0);
  auto rb = write_input_run<u64>(*ctx, std::span<const u64>(b), 1);
  std::vector<StripedRun<u64>> runs;
  runs.push_back(std::move(ra));
  runs.push_back(std::move(rb));
  ShuffleChunkSource<u64> src(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), 2), 16);
  std::vector<u64> got;
  std::vector<u64> buf(16);
  while (!src.exhausted()) {
    const usize n = src.next_chunk(buf.data(), 16);
    got.insert(got.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(got.size(), 40u);
  EXPECT_EQ(std::count(got.begin(), got.end(), 1u), 20);
  EXPECT_EQ(std::count(got.begin(), got.end(), 2u), 20);
}

// ------------------------------------------------------------- unshuffle

TEST(UnshuffleSink, SplitsStrideM) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<StripedRun<u64>> parts;
  for (u32 j = 0; j < 4; ++j) parts.emplace_back(*ctx, j);
  {
    UnshuffleSink<u64> sink(*ctx, std::span<StripedRun<u64>>(parts.data(), 4));
    std::vector<u64> stream(256);
    std::iota(stream.begin(), stream.end(), u64{0});
    sink.push(std::span<const u64>(stream.data(), 100));
    sink.push(std::span<const u64>(stream.data() + 100, 156));
    sink.close();
  }
  for (u32 j = 0; j < 4; ++j) {
    auto v = parts[j].read_all();
    ASSERT_EQ(v.size(), 64u);
    for (usize t = 0; t < v.size(); ++t) EXPECT_EQ(v[t], t * 4 + j);
  }
}

// -------------------------------------------------------------- lmm merge

class LmmMergeParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LmmMergeParam, MergesSortedRuns) {
  const int l = std::get<0>(GetParam());
  const int run_blocks = std::get<1>(GetParam());
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(static_cast<u64>(l * 100 + run_blocks));
  const u64 run_len = static_cast<u64>(run_blocks) * g.rpb;
  std::vector<StripedRun<u64>> runs;
  std::vector<u64> all;
  for (int i = 0; i < l; ++i) {
    auto v = make_keys(static_cast<usize>(run_len), Dist::kUniform, rng);
    std::sort(v.begin(), v.end());
    runs.push_back(
        write_input_run<u64>(*ctx, std::span<const u64>(v), static_cast<u32>(i)));
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  LmmOptions opt;
  opt.mem_records = 256;
  auto oc = lmm_merge<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), sink,
      opt);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(out.read_all(), all);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LmmMergeParam,
    ::testing::Values(std::make_tuple(2, 16), std::make_tuple(4, 16),
                      std::make_tuple(8, 16), std::make_tuple(16, 16),
                      std::make_tuple(2, 8), std::make_tuple(4, 4),
                      std::make_tuple(3, 12), std::make_tuple(1, 16)));

TEST(LmmMerge, ThreePassesAtFullShape) {
  // l = B = 16 runs of length M: the Lemma 4.1 shape; pass count must be 3
  // excluding the run formation (which the full sorter counts).
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(11);
  std::vector<StripedRun<u64>> runs;
  const u64 n = 16 * 256;
  for (int i = 0; i < 16; ++i) {
    auto v = make_keys(256, Dist::kUniform, rng);
    std::sort(v.begin(), v.end());
    runs.push_back(
        write_input_run<u64>(*ctx, std::span<const u64>(v), static_cast<u32>(i)));
  }
  ctx->io().reset_stats();
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  LmmOptions opt;
  opt.mem_records = 256;
  auto oc = lmm_merge<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), sink,
      opt);
  EXPECT_TRUE(oc.ok);
  const double passes = ctx->stats().passes(n, g.rpb, g.disks);
  EXPECT_NEAR(passes, 3.0, 0.1);
}

TEST(LmmMerge, RejectsUnequalRuns) {
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  std::vector<u64> a(256, 1), b(128, 2);
  std::vector<StripedRun<u64>> runs;
  runs.push_back(write_input_run<u64>(*ctx, std::span<const u64>(a)));
  runs.push_back(write_input_run<u64>(*ctx, std::span<const u64>(b)));
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  LmmOptions opt;
  opt.mem_records = 256;
  EXPECT_THROW(lmm_merge<u64>(*ctx,
                              std::span<const StripedRun<u64>>(runs.data(), 2),
                              sink, opt),
               Error);
}

// --------------------------------------------------------------- multiway

class MultiwayParam : public ::testing::TestWithParam<usize> {};

TEST_P(MultiwayParam, MergePassCorrectAtAnyLookahead) {
  const usize lookahead = GetParam();
  const auto g = Geometry::square(256);
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(lookahead + 77);
  std::vector<StripedRun<u64>> runs;
  std::vector<u64> all;
  for (int i = 0; i < 6; ++i) {
    auto v = make_keys(320, Dist::kUniform, rng);
    std::sort(v.begin(), v.end());
    runs.push_back(
        write_input_run<u64>(*ctx, std::span<const u64>(v), static_cast<u32>(i)));
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  MergePassOptions opt;
  opt.mem_records = 1024;  // room for the larger lookahead pools
  opt.lookahead = lookahead;
  multiway_merge_pass<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), sink,
      opt);
  EXPECT_EQ(out.read_all(), all);
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, MultiwayParam,
                         ::testing::Values(0, 1, 2, 4));

TEST(Multiway, NaiveLookaheadHasLowUtilization) {
  const auto g = Geometry::square(1024);  // D = 8
  auto ctx = test::make_ctx<u64>(g);
  Rng rng(5);
  std::vector<StripedRun<u64>> runs;
  for (int i = 0; i < 8; ++i) {
    auto v = make_keys(2048, Dist::kUniform, rng);
    std::sort(v.begin(), v.end());
    runs.push_back(
        write_input_run<u64>(*ctx, std::span<const u64>(v), static_cast<u32>(i)));
  }
  ctx->io().reset_stats();
  StripedRun<u64> out(*ctx, 0);
  RunSink<u64> sink(out);
  MergePassOptions opt;
  opt.mem_records = 1024;
  opt.lookahead = 0;
  multiway_merge_pass<u64>(
      *ctx, std::span<const StripedRun<u64>>(runs.data(), runs.size()), sink,
      opt);
  // Demand paging: most reads are synchronous single-block fetches.
  const auto& s = ctx->stats();
  const double read_util =
      static_cast<double>(s.blocks_read) / static_cast<double>(s.read_ops);
  EXPECT_LT(read_util, 2.5) << "naive merge should not parallelize reads";
}

}  // namespace
}  // namespace pdm
